// Churn demo (Contribution 4): nodes join and leave a live Skeap system
// while heap traffic keeps flowing. The topology is restored after every
// change, stored elements move with their keyspace arcs, and the anchor
// role migrates together with its interval state when the minimum label
// changes hands.
//
//   $ ./examples/churn_demo
#include <cstdio>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/semantics.hpp"
#include "skeap/skeap_system.hpp"

using namespace sks;
using skeap::SkeapSystem;

int main() {
  SkeapSystem sys({.num_nodes = 8, .num_priorities = 3, .seed = 1337});
  Rng rng(55);
  std::size_t matched = 0, bottoms = 0;

  std::printf("starting with %zu nodes (anchor at node %u)\n\n",
              sys.active_nodes().size(), sys.anchor());

  for (int step = 0; step < 10; ++step) {
    // Every active node issues some traffic.
    std::size_t inserts = 0, deletes = 0;
    for (NodeId v : sys.active_nodes()) {
      if (rng.flip(0.8)) {
        sys.insert(v, rng.range(1, 3));
        ++inserts;
      }
      if (rng.flip(0.4)) {
        sys.delete_min(v, [&](std::optional<Element> e) {
          (e ? matched : bottoms)++;
        });
        ++deletes;
      }
    }
    const auto rounds = sys.run_batch();
    std::printf("step %2d: %zu inserts + %zu deletes in %4llu rounds "
                "(heap size %llu)\n",
                step, inserts, deletes,
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(
                    sys.node(sys.anchor()).anchor_heap_size()));

    // Churn between batches: grow for a while, then shrink.
    if (step < 5) {
      const NodeId id = sys.join_node();
      std::printf("         node %u joined (now %zu nodes, anchor %u)\n", id,
                  sys.active_nodes().size(), sys.anchor());
    } else if (sys.active_nodes().size() > 4) {
      std::vector<NodeId> nodes(sys.active_nodes().begin(),
                                sys.active_nodes().end());
      const NodeId victim = nodes[rng.below(nodes.size())];
      const bool was_anchor = victim == sys.anchor();
      sys.leave_node(victim);
      std::printf("         node %u left%s (now %zu nodes, anchor %u)\n",
                  victim, was_anchor ? " [was the anchor]" : "",
                  sys.active_nodes().size(), sys.anchor());
    }
  }

  // Drain what's left.
  while (sys.node(sys.anchor()).anchor_heap_size() > 0) {
    for (NodeId v : sys.active_nodes()) {
      sys.delete_min(v, [&](std::optional<Element> e) {
        (e ? matched : bottoms)++;
      });
    }
    sys.run_batch();
  }

  std::printf("\n%zu DeleteMins matched, %zu returned bottom\n", matched,
              bottoms);

  // The runtime layer recorded every batch's substrate cost.
  const auto& history = sys.cluster().epoch_history();
  std::uint64_t total_rounds = 0, total_msgs = 0;
  for (const auto& e : history) {
    total_rounds += e.rounds;
    total_msgs += e.messages;
  }
  std::printf("%zu batches: %llu rounds, %llu messages "
              "(avg %.1f rounds/batch)\n",
              history.size(), static_cast<unsigned long long>(total_rounds),
              static_cast<unsigned long long>(total_msgs),
              history.empty() ? 0.0
                              : static_cast<double>(total_rounds) /
                                    static_cast<double>(history.size()));

  const auto check = core::check_skeap_trace(sys.gather_trace());
  std::printf("sequential consistency across all churn: %s\n",
              check.ok ? "OK" : check.error.c_str());
  return check.ok ? 0 : 1;
}
