// KSelect demo: distributed order statistics without moving the data.
//
// A cluster of 64 nodes holds 10,000 measurements (say, request latencies)
// spread uniformly. KSelect finds exact percentiles in O(log n) rounds
// with O(log n)-bit messages — no node ever sees more than its own shard
// plus O(1) sampled candidates.
//
//   $ ./examples/kselect_demo
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "kselect/kselect_system.hpp"

using namespace sks;
using kselect::CandidateKey;
using kselect::KSelectSystem;

int main() {
  constexpr std::size_t kNodes = 64;
  constexpr std::size_t kMeasurements = 10'000;

  KSelectSystem sys({.num_nodes = kNodes, .seed = 7});

  // Synthetic latencies: log-normal-ish mixture in microseconds.
  Rng rng(123);
  std::vector<CandidateKey> latencies;
  for (std::uint64_t i = 1; i <= kMeasurements; ++i) {
    std::uint64_t us = 100 + rng.below(900);          // fast path
    if (rng.flip(0.10)) us = 1'000 + rng.below(9'000);   // slow path
    if (rng.flip(0.01)) us = 50'000 + rng.below(200'000);  // tail
    latencies.push_back(CandidateKey{us, i});
  }
  sys.seed_elements(latencies);

  auto sorted = latencies;
  std::sort(sorted.begin(), sorted.end());

  std::printf("%zu latency samples across %zu nodes\n\n", kMeasurements,
              kNodes);
  std::printf("%-12s %-12s %-12s %-8s\n", "percentile", "KSelect(us)",
              "oracle(us)", "rounds");
  for (const double pct : {50.0, 90.0, 99.0, 99.9}) {
    const auto k = static_cast<std::uint64_t>(
        pct / 100.0 * static_cast<double>(kMeasurements));
    const auto out = sys.select(k);
    if (!out.result) {
      std::printf("p%-11g (no result)\n", pct);
      continue;
    }
    const CandidateKey oracle = sorted[k - 1];
    std::printf("p%-11g %-12llu %-12llu %-8llu%s\n", pct,
                static_cast<unsigned long long>(out.result->prio),
                static_cast<unsigned long long>(oracle.prio),
                static_cast<unsigned long long>(out.rounds),
                *out.result == oracle ? "" : "  MISMATCH");
    if (!(*out.result == oracle)) return 1;
  }

  std::printf("\nall percentiles exact.\n");
  return 0;
}
