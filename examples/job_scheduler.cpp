// Job scheduling on a distributed heap — the application the paper's
// introduction motivates: "one may insert jobs that have been assigned
// priorities and workers may pull these jobs from the heap based on their
// priority."
//
// A 32-node cluster: 8 producer nodes submit jobs with deadline-derived
// priorities; 24 worker nodes repeatedly pull the most urgent job. We use
// the Seap backend because deadlines are arbitrary 64-bit timestamps, and
// the paper recommends Seap "for applications like job-allocation where
// local consistency is not that important".
//
//   $ ./examples/job_scheduler
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/distributed_heap.hpp"

using sks::Element;
using sks::NodeId;
using sks::Rng;
using sks::core::DistributedHeap;

namespace {

constexpr std::size_t kProducers = 8;
constexpr std::size_t kWorkers = 24;
constexpr std::size_t kNodes = kProducers + kWorkers;

struct Job {
  std::string description;
  std::uint64_t deadline;  // priority: earlier deadline = more urgent
};

}  // namespace

int main() {
  DistributedHeap::Options opts;
  opts.backend = DistributedHeap::Backend::kSeap;
  opts.num_nodes = kNodes;
  opts.seed = 2026;
  DistributedHeap heap(opts);

  Rng rng(7);
  std::map<sks::ElementId, Job> jobs;  // payloads live beside the heap

  // --- Submission wave: producers enqueue jobs with random deadlines. ---
  const char* kinds[] = {"render", "compile", "backup", "index", "report"};
  for (int round = 0; round < 3; ++round) {
    std::size_t submitted = 0;
    for (NodeId p = 0; p < kProducers; ++p) {
      const int burst = static_cast<int>(rng.range(1, 4));
      for (int j = 0; j < burst; ++j) {
        const std::uint64_t deadline = 1'000'000 + rng.range(0, 999'999);
        const Element e = heap.insert(p, deadline);
        jobs[e.id] = Job{std::string(kinds[rng.below(5)]) + "-" +
                             std::to_string(e.id),
                         deadline};
        ++submitted;
      }
    }
    const auto rounds = heap.run_batch();
    std::printf("wave %d: %zu jobs submitted by %zu producers, "
                "processed in %llu rounds (heap now holds %zu jobs)\n",
                round, submitted, kProducers,
                static_cast<unsigned long long>(rounds),
                heap.stored_elements());
  }

  // --- Work-pulling: every worker pulls until the queue drains. ---------
  std::printf("\nworkers pull jobs by urgency:\n");
  std::uint64_t last_deadline_seen = 0;
  bool deadline_order_ok = true;
  std::size_t pulled_total = 0;
  while (heap.stored_elements() > 0) {
    std::vector<std::pair<NodeId, Element>> pulled;
    for (NodeId w = kProducers; w < kNodes; ++w) {
      heap.delete_min(w, [w, &pulled](std::optional<Element> e) {
        if (e) pulled.emplace_back(w, *e);
      });
    }
    heap.run_batch();
    if (pulled.empty()) break;

    // Within one batch the pulled set is exactly the most urgent jobs
    // (heap consistency property 3); across batches urgency can only
    // decrease.
    std::uint64_t batch_min = ~0ULL, batch_max = 0;
    for (const auto& [w, e] : pulled) {
      batch_min = std::min(batch_min, e.prio);
      batch_max = std::max(batch_max, e.prio);
    }
    if (batch_min < last_deadline_seen) deadline_order_ok = false;
    last_deadline_seen = batch_max;
    pulled_total += pulled.size();

    const auto& [w0, e0] = pulled.front();
    std::printf("  batch: %2zu jobs pulled; most urgent '%s' "
                "(deadline %llu) went to worker %u\n",
                pulled.size(), jobs[e0.id].description.c_str(),
                static_cast<unsigned long long>(e0.prio), w0);
  }

  std::printf("\n%zu jobs scheduled in total; cross-batch deadline order %s\n",
              pulled_total, deadline_order_ok ? "respected" : "VIOLATED");
  const auto check = heap.verify_semantics();
  std::printf("serializability + heap consistency: %s\n",
              check.ok ? "OK" : check.error.c_str());
  return check.ok && deadline_order_ok ? 0 : 1;
}
