// Inspect a binary trace dump (src/trace/binary.hpp): print the header,
// then per-action, per-epoch and per-phase summary tables — the run-report
// view of one captured execution.
//
//   trace_inspect <dump.bin>       inspect an existing dump
//   trace_inspect --demo <prefix>  run a small Skeap execution (n = 64,
//                                  one batch) with tracing on, write
//                                  <prefix>.bin / .json / .txt, then
//                                  inspect the .bin. The .json opens at
//                                  https://ui.perfetto.dev
//   trace_inspect --timeline <telemetry.ndjson>
//                                  render a continuous-telemetry stream
//                                  (a bench's --telemetry output) as the
//                                  per-sample timeline table plus a
//                                  cumulative summary line
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "obs/timeline.hpp"
#include "skeap/skeap_system.hpp"
#include "trace/binary.hpp"
#include "trace/perfetto.hpp"
#include "trace/summary.hpp"
#include "trace/text.hpp"

using namespace sks;

namespace {

void inspect(const std::string& path) {
  const trace::Trace t = trace::load_binary(path);
  const trace::TraceSummary s = trace::summarize(t);

  std::printf("%s: %zu nodes, %zu events, %llu rounds\n", path.c_str(),
              t.num_nodes, t.events.size(),
              static_cast<unsigned long long>(s.rounds));
  std::printf("  sends=%llu deliveries=%llu bits=%llu\n\n",
              static_cast<unsigned long long>(s.sends),
              static_cast<unsigned long long>(s.deliveries),
              static_cast<unsigned long long>(s.total_bits));

  std::printf("%-24s %10s %14s\n", "action", "messages", "bits");
  for (const auto& a : s.actions) {
    std::printf("%-24s %10llu %14llu\n", a.action.c_str(),
                static_cast<unsigned long long>(a.messages),
                static_cast<unsigned long long>(a.bits));
  }

  if (!s.epochs.empty()) {
    std::printf("\n%-8s %8s %10s %14s\n", "epoch", "rounds", "messages",
                "bits");
    for (const auto& e : s.epochs) {
      std::printf("%-8llu %8llu %10llu %14llu\n",
                  static_cast<unsigned long long>(e.epoch),
                  static_cast<unsigned long long>(e.rounds),
                  static_cast<unsigned long long>(e.messages),
                  static_cast<unsigned long long>(e.bits));
    }
  }

  if (!s.phases.empty()) {
    std::printf("\n%-24s %6s %8s %10s %14s %10s\n", "phase", "spans",
                "rounds", "messages", "bits", "max_cong");
    for (const auto& p : s.phases) {
      std::printf("%-24s %6llu %8llu %10llu %14llu %10llu\n",
                  p.phase.c_str(),
                  static_cast<unsigned long long>(p.spans),
                  static_cast<unsigned long long>(p.rounds),
                  static_cast<unsigned long long>(p.messages),
                  static_cast<unsigned long long>(p.bits),
                  static_cast<unsigned long long>(p.max_congestion));
    }
  }
}

std::string demo(const std::string& prefix) {
  constexpr std::size_t kNodes = 64;
  skeap::SkeapSystem sys(
      {.num_nodes = kNodes, .num_priorities = 4, .seed = 64});
  Rng rng(9);
  sys.net().tracer().enable();
  for (NodeId v = 0; v < kNodes; ++v) {
    for (int i = 0; i < 3; ++i) {
      if (rng.flip(0.6)) {
        sys.insert(v, rng.range(1, 4));
      } else {
        sys.delete_min(v);
      }
    }
  }
  sys.run_batch();
  sys.net().tracer().disable();

  const trace::Trace t = sys.net().take_trace();
  trace::write_binary(t, prefix + ".bin");
  trace::write_perfetto_json(t, prefix + ".json");
  std::FILE* f = std::fopen((prefix + ".txt").c_str(), "w");
  SKS_CHECK_MSG(f != nullptr, "cannot open '" << prefix << ".txt'");
  const std::string text = trace::to_text(t);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s.bin, %s.json (ui.perfetto.dev), %s.txt\n\n",
              prefix.c_str(), prefix.c_str(), prefix.c_str());
  return prefix + ".bin";
}

int timeline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_inspect: cannot open '%s'\n", path.c_str());
    return 1;
  }
  const std::vector<obs::TimelineRow> rows = obs::read_timeline(in);
  if (rows.empty()) {
    std::fprintf(stderr, "trace_inspect: no telemetry samples in '%s'\n",
                 path.c_str());
    return 1;
  }
  std::printf("%s: telemetry timeline\n\n", path.c_str());
  obs::render_timeline(std::cout, rows);
  std::printf("\n");
  obs::render_timeline_summary(std::cout, rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--demo") == 0) {
    inspect(demo(argv[2]));
    return 0;
  }
  if (argc == 3 && std::strcmp(argv[1], "--timeline") == 0) {
    return timeline(argv[2]);
  }
  if (argc == 2 && std::strncmp(argv[1], "--", 2) != 0) {
    inspect(argv[1]);
    return 0;
  }
  std::fprintf(stderr,
               "usage: trace_inspect <dump.bin>\n"
               "       trace_inspect --demo <prefix>\n"
               "       trace_inspect --timeline <telemetry.ndjson>\n");
  return 1;
}
