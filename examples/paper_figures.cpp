// Executable reproduction of the paper's two figures.
//
// Figure 1 — the Skeap phase walkthrough for n = 3, P = {1, 2}: three
// nodes hold the batches ((1,0),2), ((1,0),0) and ((2,1),1); the combined
// batch ((4,1),3) is assigned positions from the anchor's interval state,
// and the assignment is decomposed back into per-node intervals.
//
// Figure 2 — the LDB for two real nodes u, v: six virtual nodes on the
// sorted cycle whose bold (tree) edges form the aggregation tree.
//
//   $ ./examples/paper_figures
#include <cstdio>
#include <vector>

#include "common/hash.hpp"
#include "overlay/topology.hpp"
#include "skeap/assignment.hpp"

using namespace sks;

namespace {

skeap::Batch make_batch(std::uint64_t i1, std::uint64_t i2, std::uint64_t d) {
  skeap::Batch b(2);
  for (std::uint64_t k = 0; k < i1; ++k) b.record_insert(1);
  for (std::uint64_t k = 0; k < i2; ++k) b.record_insert(2);
  for (std::uint64_t k = 0; k < d; ++k) b.record_delete();
  return b;
}

void print_entry(const char* who, const skeap::EntryAssignment& e) {
  std::printf("    %-18s inserts p1=%-7s p2=%-7s deletes=%s",
              who, to_string(e.inserts.at(1)).c_str(),
              to_string(e.inserts.at(2)).c_str(),
              to_string(e.deletes.spans).c_str());
  if (e.deletes.bottoms > 0) {
    std::printf(" +%llu bottom",
                static_cast<unsigned long long>(e.deletes.bottoms));
  }
  std::printf("\n");
}

void figure1() {
  std::printf("== Figure 1: Skeap phases for n = 3, P = {1, 2} ==\n\n");

  const std::vector<skeap::Batch> node_batches{
      make_batch(1, 0, 0),  // v0's own batch
      make_batch(1, 0, 2),  // first child
      make_batch(2, 1, 1),  // second child
  };
  std::printf("(a) per-node batches: %s  %s  %s\n",
              to_string(node_batches[0]).c_str(),
              to_string(node_batches[1]).c_str(),
              to_string(node_batches[2]).c_str());

  skeap::Batch combined(2);
  for (const auto& b : node_batches) combined.combine(b);
  std::printf("(b) after Phase 1, the anchor holds the combined batch %s\n",
              to_string(combined).c_str());

  skeap::AnchorState anchor(2);
  std::printf("    anchor state: first1=%llu last1=%llu first2=%llu "
              "last2=%llu\n",
              (unsigned long long)anchor.first(1),
              (unsigned long long)anchor.last(1),
              (unsigned long long)anchor.first(2),
              (unsigned long long)anchor.last(2));

  const skeap::BatchAssignment asg = anchor.assign(combined);
  std::printf("(c) after Phase 2, positions are assigned:\n");
  print_entry("combined", asg.entries[0]);
  std::printf("    anchor state: first1=%llu last1=%llu first2=%llu "
              "last2=%llu\n",
              (unsigned long long)anchor.first(1),
              (unsigned long long)anchor.last(1),
              (unsigned long long)anchor.first(2),
              (unsigned long long)anchor.last(2));

  const auto parts = skeap::split_assignment(asg, node_batches);
  std::printf("(d) after Phase 3, the decomposition per node:\n");
  print_entry("v0   ((1,0),0):", parts[0].entries[0]);
  print_entry("left ((1,0),2):", parts[1].entries[0]);
  print_entry("right((2,1),1):", parts[2].entries[0]);
  std::printf("\n");
}

void figure2() {
  std::printf("== Figure 2: LDB and aggregation tree for two nodes ==\n\n");

  // Search for a seed giving the figure's label ordering
  // l(u) < l(v) < m(u) < m(v) < r(u) < r(v).
  for (std::uint64_t seed = 0; seed < 5000; ++seed) {
    HashFunction h(seed);
    Point mu = h.point(0), mv = h.point(1);
    NodeId u = 0, v = 1;
    if (mu > mv) {
      std::swap(mu, mv);
      std::swap(u, v);
    }
    const Point lu = mu >> 1, lv = mv >> 1;
    const Point ru = (mu >> 1) + overlay::kHalf;
    const Point rv = (mv >> 1) + overlay::kHalf;
    if (!(lu < lv && lv < mu && mu < mv && mv < ru && ru < rv)) continue;

    const auto links = overlay::build_topology(2, h);
    std::printf("seed %llu gives the figure's ordering "
                "l(u) < l(v) < m(u) < m(v) < r(u) < r(v)\n\n",
                (unsigned long long)seed);
    std::printf("  cycle (by label):  ");
    struct Entry { const char* name; overlay::VirtualId id; };
    const Entry order[] = {
        {"l(u)", links[u].at(overlay::VKind::kLeft).self},
        {"l(v)", links[v].at(overlay::VKind::kLeft).self},
        {"m(u)", links[u].at(overlay::VKind::kMiddle).self},
        {"m(v)", links[v].at(overlay::VKind::kMiddle).self},
        {"r(u)", links[u].at(overlay::VKind::kRight).self},
        {"r(v)", links[v].at(overlay::VKind::kRight).self},
    };
    for (const auto& e : order) std::printf("%s  ", e.name);
    std::printf("\n\n  aggregation tree (parent <- child):\n");
    for (NodeId w : {u, v}) {
      for (overlay::VKind k : overlay::kAllKinds) {
        const auto& st = links[w].at(k);
        const char* self_name = nullptr;
        for (const auto& e : order) {
          if (e.id == st.self) self_name = e.name;
        }
        if (st.is_anchor) {
          std::printf("    %s is the anchor (root)\n", self_name);
          continue;
        }
        const char* parent_name = "?";
        for (const auto& e : order) {
          if (e.id == st.parent) parent_name = e.name;
        }
        std::printf("    %s <- %s\n", parent_name, self_name);
      }
    }
    std::printf("\n");
    return;
  }
  std::printf("no seed reproduced the figure's ordering (unexpected)\n");
}

}  // namespace

int main() {
  figure1();
  figure2();
  return 0;
}
