# Smoke test for the telemetry console consumers: writes a two-sample
# ndjson stream (with one malformed line the readers must skip), then
# checks that `trace_inspect --timeline` and `sks_top --once` both render
# it. Run via the `timeline_smoke` ctest (see CMakeLists.txt).
set(stream "${WORK_DIR}/timeline_smoke.ndjson")
file(WRITE "${stream}"
  "{\"t\":32,\"epoch\":1,\"rounds\":32,\"wall_ms\":1.5,\"rounds_per_sec\":21000,\"messages\":120,\"bits\":9600,\"drops\":0,\"retransmits\":0,\"suspects\":0,\"declared_dead\":0,\"recoveries\":0,\"pool_allocated\":64,\"pool_parked\":0,\"in_flight\":12,\"shard_imbalance\":1}\n"
  "not json\n"
  "{\"t\":64,\"epoch\":2,\"rounds\":32,\"wall_ms\":3.1,\"rounds_per_sec\":20000,\"messages\":90,\"bits\":7200,\"drops\":2,\"retransmits\":1,\"suspects\":0,\"declared_dead\":0,\"recoveries\":0,\"pool_allocated\":64,\"pool_parked\":8,\"in_flight\":0,\"shard_imbalance\":1.25}\n")

execute_process(COMMAND "${TRACE_INSPECT}" --timeline "${stream}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace_inspect --timeline failed (${rc}): ${err}")
endif()
if(NOT out MATCHES "2 samples" OR NOT out MATCHES "210 messages")
  message(FATAL_ERROR "trace_inspect --timeline summary wrong:\n${out}")
endif()

execute_process(COMMAND "${SKS_TOP}" "${stream}" --once
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sks_top --once failed (${rc}): ${err}")
endif()
if(NOT out MATCHES "rounds_per_sec" OR NOT out MATCHES "2 samples")
  message(FATAL_ERROR "sks_top --once output wrong:\n${out}")
endif()
