// sks_top — live console dashboard over a continuous-telemetry stream.
//
// Any bench started with --telemetry appends one ndjson sample per
// interval to TELEMETRY_<name>.ndjson; sks_top tails that file and
// redraws a top(1)-style view: the most recent samples as a timeline
// table, per-series last/min/max over the retained window, and a
// cumulative status row.
//
//   sks_top <telemetry.ndjson>            follow mode: redraw as samples
//                                         arrive (Ctrl-C to quit)
//   sks_top <telemetry.ndjson> --once     render once and exit (CI-able)
//   --interval <ms>                       poll period in follow mode
//                                         (default 500)
//   --lines <N>                           timeline rows shown (default 20)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/series.hpp"
#include "obs/timeline.hpp"

using namespace sks;

namespace {

struct TopOptions {
  std::string path;
  bool once = false;
  int interval_ms = 500;
  std::size_t lines = 20;
};

/// Last/min/max of one series across the retained rows.
void series_stats(const std::vector<obs::TimelineRow>& rows,
                  obs::SeriesId id, double* last, double* mn, double* mx) {
  const std::size_t i = static_cast<std::size_t>(id);
  *last = rows.back().values[i];
  *mn = *mx = rows.front().values[i];
  for (const obs::TimelineRow& r : rows) {
    *mn = std::min(*mn, r.values[i]);
    *mx = std::max(*mx, r.values[i]);
  }
}

void render(const TopOptions& opt, const std::vector<obs::TimelineRow>& rows,
            bool clear) {
  // ANSI clear + home keeps follow mode flicker-free on any terminal.
  if (clear) std::printf("\033[2J\033[H");
  std::printf("sks_top — %s (%zu samples)\n\n", opt.path.c_str(),
              rows.size());
  obs::render_timeline(std::cout, rows, opt.lines);

  std::printf("\n%-16s %12s %12s %12s\n", "series", "last", "min", "max");
  for (const obs::SeriesId id :
       {obs::SeriesId::kRoundsPerSec, obs::SeriesId::kMessages,
        obs::SeriesId::kInFlight, obs::SeriesId::kPoolAllocated,
        obs::SeriesId::kPoolParked, obs::SeriesId::kImbalance}) {
    double last = 0.0, mn = 0.0, mx = 0.0;
    series_stats(rows, id, &last, &mn, &mx);
    std::printf("%-16s %12.1f %12.1f %12.1f\n", obs::series_name(id), last,
                mn, mx);
  }
  std::printf("\n");
  obs::render_timeline_summary(std::cout, rows);
  std::fflush(stdout);
}

std::vector<obs::TimelineRow> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  return obs::read_timeline(in);
}

}  // namespace

int main(int argc, char** argv) {
  TopOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--once") == 0) {
      opt.once = true;
    } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      opt.interval_ms = std::max(50, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--lines") == 0 && i + 1 < argc) {
      opt.lines = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--", 2) != 0 && opt.path.empty()) {
      opt.path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: sks_top <telemetry.ndjson> [--once] "
                   "[--interval ms] [--lines N]\n");
      return 1;
    }
  }
  if (opt.path.empty()) {
    std::fprintf(stderr,
                 "usage: sks_top <telemetry.ndjson> [--once] "
                 "[--interval ms] [--lines N]\n");
    return 1;
  }

  if (opt.once) {
    const std::vector<obs::TimelineRow> rows = read_file(opt.path);
    if (rows.empty()) {
      std::fprintf(stderr, "sks_top: no telemetry samples in '%s'\n",
                   opt.path.c_str());
      return 1;
    }
    render(opt, rows, /*clear=*/false);
    return 0;
  }

  // Follow mode: re-read and redraw whenever the sample count changes.
  // The writer flushes whole lines, and the reader drops a trailing
  // partial line, so mid-write polls never show torn samples.
  std::size_t last_count = 0;
  for (;;) {
    const std::vector<obs::TimelineRow> rows = read_file(opt.path);
    if (rows.size() != last_count && !rows.empty()) {
      last_count = rows.size();
      render(opt, rows, /*clear=*/true);
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opt.interval_ms));
  }
}
