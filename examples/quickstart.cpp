// Quickstart: a distributed priority queue in a few lines.
//
// Builds a 16-node system, issues operations *at* different nodes (there
// is no central entry point — that is the point of the paper), drives a
// couple of batches, and verifies the semantics guarantee of each backend.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <optional>

#include "core/distributed_heap.hpp"

using sks::Element;
using sks::NodeId;
using sks::core::DistributedHeap;

namespace {

void demo(DistributedHeap::Backend backend, const char* name) {
  std::printf("== %s ==\n", name);

  DistributedHeap::Options opts;
  opts.backend = backend;
  opts.num_nodes = 16;
  opts.num_priorities = 4;  // Skeap: P = {1..4}; Seap ignores this
  DistributedHeap heap(opts);

  // Sixteen nodes each insert one element. With the Seap backend the
  // priority universe is the full 64-bit range.
  for (NodeId v = 0; v < 16; ++v) {
    const sks::Priority prio =
        backend == DistributedHeap::Backend::kSkeap ? 1 + v % 4
                                                    : 1000u * (16 - v);
    const Element e = heap.insert(v, prio);
    std::printf("  node %2u buffers Insert%s\n", v, to_string(e).c_str());
  }
  // One batch processes *all* buffered operations in O(log n) rounds.
  const auto rounds = heap.run_batch();
  std::printf("  batch of 16 inserts processed in %llu simulated rounds\n",
              static_cast<unsigned long long>(rounds));

  // Four nodes each pull the current minimum.
  for (NodeId v = 0; v < 4; ++v) {
    heap.delete_min(v, [v](std::optional<Element> e) {
      if (e) {
        std::printf("  node %2u DeleteMin -> %s\n", v, to_string(*e).c_str());
      } else {
        std::printf("  node %2u DeleteMin -> bottom (heap empty)\n", v);
      }
    });
  }
  heap.run_batch();

  const auto check = heap.verify_semantics();
  std::printf("  semantics check (%s): %s\n",
              backend == DistributedHeap::Backend::kSkeap
                  ? "sequential consistency"
                  : "serializability",
              check.ok ? "OK" : check.error.c_str());
  std::printf("  elements still stored: %zu\n\n", heap.stored_elements());
}

}  // namespace

int main() {
  demo(DistributedHeap::Backend::kSkeap, "Skeap (constant priorities)");
  demo(DistributedHeap::Backend::kSeap, "Seap (arbitrary priorities)");
  return 0;
}
