// Distributed sorting — the second application named in the paper's
// introduction. Every node holds an unsorted shard of the input; all
// shards are inserted into the heap, and draining the heap with
// DeleteMin() yields a globally sorted sequence, with the work (and the
// data) spread evenly over the cluster at every step.
//
//   $ ./examples/distributed_sorting
#include <algorithm>
#include <cstdio>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/distributed_heap.hpp"

using sks::Element;
using sks::NodeId;
using sks::Priority;
using sks::Rng;
using sks::core::DistributedHeap;

int main() {
  constexpr std::size_t kNodes = 32;
  constexpr std::size_t kValuesPerNode = 8;

  DistributedHeap::Options opts;
  opts.backend = DistributedHeap::Backend::kSeap;
  opts.num_nodes = kNodes;
  opts.seed = 424242;
  DistributedHeap heap(opts);

  // Each node contributes a shard of random 64-bit values.
  Rng rng(99);
  std::vector<Priority> all_values;
  for (NodeId v = 0; v < kNodes; ++v) {
    for (std::size_t i = 0; i < kValuesPerNode; ++i) {
      const Priority value = rng.range(1, ~0ULL >> 16);
      heap.insert(v, value);
      all_values.push_back(value);
    }
  }
  const auto insert_rounds = heap.run_batch();
  std::printf("inserted %zu values from %zu nodes in %llu rounds\n",
              all_values.size(), kNodes,
              static_cast<unsigned long long>(insert_rounds));

  // Drain: every node pulls one value per batch; concatenating the
  // per-batch pulls in batch order gives the sorted output.
  std::vector<Priority> sorted_out;
  std::uint64_t drain_rounds = 0;
  std::size_t batches = 0;
  while (heap.stored_elements() > 0) {
    std::vector<Priority> batch_vals;
    for (NodeId v = 0; v < kNodes; ++v) {
      heap.delete_min(v, [&batch_vals](std::optional<Element> e) {
        if (e) batch_vals.push_back(e->prio);
      });
    }
    drain_rounds += heap.run_batch();
    ++batches;
    std::sort(batch_vals.begin(), batch_vals.end());
    sorted_out.insert(sorted_out.end(), batch_vals.begin(), batch_vals.end());
  }

  std::sort(all_values.begin(), all_values.end());
  const bool correct = sorted_out == all_values;
  std::printf("drained %zu values in %zu batches (%llu rounds total)\n",
              sorted_out.size(), batches,
              static_cast<unsigned long long>(drain_rounds));
  std::printf("globally sorted output: %s\n",
              correct ? "CORRECT" : "WRONG");
  std::printf("first values: ");
  for (std::size_t i = 0; i < 6 && i < sorted_out.size(); ++i) {
    std::printf("%llu ", static_cast<unsigned long long>(sorted_out[i]));
  }
  std::printf("...\n");

  const auto check = heap.verify_semantics();
  std::printf("semantics: %s\n", check.ok ? "OK" : check.error.c_str());
  return correct && check.ok ? 0 : 1;
}
