#include "overlay/topology.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/check.hpp"

namespace sks::overlay {

std::vector<NodeLinks> build_topology(std::size_t n, const HashFunction& h) {
  SKS_CHECK_MSG(n >= 1, "topology needs at least one node");

  std::vector<NodeLinks> links(n);
  std::vector<VirtualId> cycle;
  cycle.reserve(3 * n);

  for (NodeId v = 0; v < n; ++v) {
    const Point m = h.point(v);
    links[v].middle_label = m;
    for (VKind k : kAllKinds) {
      cycle.push_back(VirtualId{v, k, label_of(m, k)});
    }
  }

  std::sort(cycle.begin(), cycle.end(),
            [](const VirtualId& a, const VirtualId& b) {
              return a.label < b.label;
            });
  for (std::size_t i = 1; i < cycle.size(); ++i) {
    SKS_CHECK_MSG(cycle[i - 1].label != cycle[i].label,
                  "virtual label collision; reseed the hash function");
  }

  const std::size_t total = cycle.size();
  auto vstate_of = [&](const VirtualId& vid) -> VirtualState& {
    return links[vid.host].at(vid.kind);
  };

  // Cycle links.
  for (std::size_t i = 0; i < total; ++i) {
    const VirtualId& self = cycle[i];
    VirtualState& st = vstate_of(self);
    st.self = self;
    st.pred = cycle[(i + total - 1) % total];
    st.succ = cycle[(i + 1) % total];
  }

  // Tree links, derived only from local information (self kind, host
  // siblings, pred/succ kinds) exactly as a node would derive them.
  for (NodeId v = 0; v < n; ++v) derive_tree_links(links[v]);

  return links;
}

std::map<NodeId, NodeLinks> build_topology(const std::vector<NodeId>& members,
                                           const HashFunction& h) {
  SKS_CHECK_MSG(!members.empty(), "topology needs at least one node");

  std::map<NodeId, NodeLinks> links;
  std::vector<VirtualId> cycle;
  cycle.reserve(3 * members.size());

  for (NodeId v : members) {
    SKS_CHECK_MSG(!links.count(v), "duplicate member " << v);
    const Point m = h.point(v);
    links[v].middle_label = m;
    for (VKind k : kAllKinds) {
      cycle.push_back(VirtualId{v, k, label_of(m, k)});
    }
  }

  std::sort(cycle.begin(), cycle.end(),
            [](const VirtualId& a, const VirtualId& b) {
              return a.label < b.label;
            });
  for (std::size_t i = 1; i < cycle.size(); ++i) {
    SKS_CHECK_MSG(cycle[i - 1].label != cycle[i].label,
                  "virtual label collision; reseed the hash function");
  }

  const std::size_t total = cycle.size();
  for (std::size_t i = 0; i < total; ++i) {
    const VirtualId& self = cycle[i];
    VirtualState& st = links[self.host].at(self.kind);
    st.self = self;
    st.pred = cycle[(i + total - 1) % total];
    st.succ = cycle[(i + 1) % total];
  }

  for (auto& [v, nl] : links) {
    (void)v;
    derive_tree_links(nl);
  }
  return links;
}

void derive_tree_links(NodeLinks& nl) {
  const NodeId v = nl.at(VKind::kMiddle).self.host;
  const Point m = nl.middle_label;
  const VirtualId left{v, VKind::kLeft, label_of(m, VKind::kLeft)};
  const VirtualId middle{v, VKind::kMiddle, m};
  const VirtualId right{v, VKind::kRight, label_of(m, VKind::kRight)};

  {  // middle node
    VirtualState& st = nl.at(VKind::kMiddle);
    st.is_anchor = false;
    st.parent = left;
    st.children.clear();
    st.children.push_back(right);
    if (st.succ.kind == VKind::kLeft) st.children.push_back(st.succ);
  }
  {  // left node
    VirtualState& st = nl.at(VKind::kLeft);
    st.is_anchor = st.pred.label > st.self.label;  // pred wraps => minimum
    st.parent = st.is_anchor ? VirtualId{} : st.pred;
    st.children.clear();
    st.children.push_back(middle);
    if (st.succ.kind == VKind::kLeft) st.children.push_back(st.succ);
  }
  {  // right node
    VirtualState& st = nl.at(VKind::kRight);
    st.is_anchor = false;
    st.parent = middle;
    st.children.clear();  // right nodes are leaves
  }
}

TopologyStats analyze_topology(const std::vector<NodeLinks>& links) {
  TopologyStats stats;
  stats.num_virtual = 3 * links.size();

  // Depth of every vertex by walking parent chains with memoization.
  std::map<std::pair<NodeId, VKind>, std::uint64_t> depth;
  auto key = [](const VirtualId& v) { return std::make_pair(v.host, v.kind); };

  for (const auto& nl : links) {
    for (VKind k : kAllKinds) {
      const VirtualState& st = nl.at(k);
      if (st.is_anchor) stats.anchor_host = st.self.host;
      stats.max_tree_degree =
          std::max(stats.max_tree_degree, std::uint64_t{st.children.size()});
      // Walk up to the anchor, collecting the path, then assign depths.
      std::vector<VirtualId> path;
      VirtualId cur = st.self;
      while (true) {
        auto it = depth.find(key(cur));
        if (it != depth.end()) {
          std::uint64_t d = it->second;
          for (auto rit = path.rbegin(); rit != path.rend(); ++rit) {
            depth[key(*rit)] = ++d;
            stats.tree_height = std::max(stats.tree_height, d);
          }
          break;
        }
        const VirtualState& cst = links[cur.host].at(cur.kind);
        if (cst.is_anchor) {
          depth[key(cur)] = 0;
          std::uint64_t d = 0;
          for (auto rit = path.rbegin(); rit != path.rend(); ++rit) {
            depth[key(*rit)] = ++d;
            stats.tree_height = std::max(stats.tree_height, d);
          }
          break;
        }
        SKS_CHECK_MSG(cst.parent.valid(), "non-anchor vertex without parent");
        SKS_CHECK_MSG(path.size() <= 3 * links.size(),
                      "parent chain does not terminate (cycle in tree)");
        path.push_back(cur);
        cur = cst.parent;
      }
    }
  }
  return stats;
}

}  // namespace sks::overlay
