// Join() and Leave() (Contribution 4 / Appendix A).
//
// The paper defers the details to Skueue [FSS18a] and only states the
// guarantees: requests are admitted lazily in O(1) rounds, the topology is
// restored within O(log n) rounds w.h.p., and no data is lost. This module
// implements the natural LDB realization those guarantees describe:
//
//  Join — the joining node hashes its id to its middle label and, for each
//  of its three virtual labels, routes a splice request to the current
//  owner of that label. The owner inserts the new virtual node after
//  itself on the cycle, hands over the DHT entries in the arc that now
//  belongs to the newcomer, and notifies its old successor. Tree links
//  (parents/children/anchor flag) are re-derived locally at every affected
//  host from the Appendix A rules, so a label smaller than the previous
//  minimum automatically migrates the anchor role.
//
//  Leave — the leaving node hands each virtual node's stored arc to its
//  predecessor (whose arc grows to cover it) and splices itself out by
//  telling both neighbours about each other.
//
// Lazy processing: membership requests are buffered and applied at batch
// boundaries (the driver triggers them while no heap batch is in flight),
// matching the paper's "through lazy processing, joining or leaving can be
// done in a constant amount of rounds" — the requester is admitted
// immediately; the restoration runs in the background.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"
#include "dht/dht.hpp"
#include "overlay/overlay_node.hpp"
#include "overlay/topology.hpp"

namespace sks::overlay {

/// Phase 1 of a join: read-only query for the would-be neighbours of
/// `label`; routed to the current owner of `label`.
struct JoinReserve final : sim::Action<JoinReserve> {
  static constexpr const char* kActionName = "member.join_reserve";
  NodeId joiner = kNoNode;
  VKind kind = VKind::kMiddle;
  Point label = 0;
  std::uint64_t size_bits() const override { return 2 * 64 + 16; }

  void encode(wire::WireWriter& w) const override {
    w.leb(joiner);
    w.bits(static_cast<std::uint64_t>(kind), 2);
    w.bits(label, 64);
  }

  static sim::Owned<JoinReserve> decode(wire::WireReader& r) {
    auto m = sim::make_payload<JoinReserve>();
    m->joiner = static_cast<NodeId>(r.leb());
    const std::uint64_t kind = r.bits(2);
    SKS_CHECK_MSG(kind <= 2, "wire: bad VKind");
    m->kind = static_cast<VKind>(kind);
    m->label = r.bits(64);
    return m;
  }
};

/// The owner's read-only answer: who the newcomer's neighbours will be.
struct ReserveAck final : sim::Action<ReserveAck> {
  static constexpr const char* kActionName = "member.reserve_ack";
  VKind kind = VKind::kMiddle;
  VirtualId pred;
  VirtualId succ;
  std::uint64_t size_bits() const override { return 2 * 80 + 16; }

  void encode(wire::WireWriter& w) const override {
    w.bits(static_cast<std::uint64_t>(kind), 2);
    pred.encode(w);
    succ.encode(w);
  }

  static sim::Owned<ReserveAck> decode(wire::WireReader& r) {
    auto m = sim::make_payload<ReserveAck>();
    const std::uint64_t kind = r.bits(2);
    SKS_CHECK_MSG(kind <= 2, "wire: bad VKind");
    m->kind = static_cast<VKind>(kind);
    m->pred = VirtualId::decode(r);
    m->succ = VirtualId::decode(r);
    return m;
  }
};

/// Phase 2: the joiner (now fully linked, so reachable by any in-flight
/// walk) asks the owner to make the splice visible. The owner extracts
/// the handed-over arc *now*, so no put that raced the join is lost.
struct JoinConfirm final : sim::Action<JoinConfirm> {
  static constexpr const char* kActionName = "member.join_confirm";
  NodeId joiner = kNoNode;
  VKind owner_kind = VKind::kMiddle;  ///< which vertex of the owner host
  VirtualId first;                    ///< head of the joiner's vertex run
  VirtualId last;                     ///< tail of the run (old_succ's pred)
  std::uint64_t size_bits() const override { return 2 * 80 + 20; }

  void encode(wire::WireWriter& w) const override {
    w.leb(joiner);
    w.bits(static_cast<std::uint64_t>(owner_kind), 2);
    first.encode(w);
    last.encode(w);
  }

  static sim::Owned<JoinConfirm> decode(wire::WireReader& r) {
    auto m = sim::make_payload<JoinConfirm>();
    m->joiner = static_cast<NodeId>(r.leb());
    const std::uint64_t kind = r.bits(2);
    SKS_CHECK_MSG(kind <= 2, "wire: bad VKind");
    m->owner_kind = static_cast<VKind>(kind);
    m->first = VirtualId::decode(r);
    m->last = VirtualId::decode(r);
    return m;
  }
};

/// The handed-over arc, completing the join for one virtual node.
struct ArcTransfer final : sim::Action<ArcTransfer> {
  static constexpr const char* kActionName = "member.arc_transfer";
  VKind kind = VKind::kMiddle;
  dht::DhtComponent::ArcData arc;
  std::uint64_t size_bits() const override {
    return 16 + 64 * arc.element_count();
  }

  void encode(wire::WireWriter& w) const override {
    w.bits(static_cast<std::uint64_t>(kind), 2);
    arc.encode(w);
  }

  static sim::Owned<ArcTransfer> decode(wire::WireReader& r) {
    auto m = sim::make_payload<ArcTransfer>();
    const std::uint64_t kind = r.bits(2);
    SKS_CHECK_MSG(kind <= 2, "wire: bad VKind");
    m->kind = static_cast<VKind>(kind);
    m->arc = dht::DhtComponent::ArcData::decode(r);
    return m;
  }
};

/// "Your pred/succ pointer now points at `neighbor`."
struct NeighborUpdate final : sim::Action<NeighborUpdate> {
  static constexpr const char* kActionName = "member.neighbor_update";
  VKind target_kind = VKind::kMiddle;
  bool is_pred = false;
  VirtualId neighbor;
  std::uint64_t size_bits() const override { return 80 + 18; }

  void encode(wire::WireWriter& w) const override {
    w.bits(static_cast<std::uint64_t>(target_kind), 2);
    w.boolean(is_pred);
    neighbor.encode(w);
  }

  static sim::Owned<NeighborUpdate> decode(wire::WireReader& r) {
    auto m = sim::make_payload<NeighborUpdate>();
    const std::uint64_t kind = r.bits(2);
    SKS_CHECK_MSG(kind <= 2, "wire: bad VKind");
    m->target_kind = static_cast<VKind>(kind);
    m->is_pred = r.boolean();
    m->neighbor = VirtualId::decode(r);
    return m;
  }
};

/// A leaving node hands its arc to its predecessor.
struct LeaveHandover final : sim::Action<LeaveHandover> {
  static constexpr const char* kActionName = "member.leave_handover";
  VKind pred_kind = VKind::kMiddle;  ///< which vertex of the receiving host
  VirtualId new_succ;                ///< the leaver's old successor
  dht::DhtComponent::ArcData arc;
  std::uint64_t size_bits() const override {
    return 80 + 16 + 64 * arc.element_count();
  }

  void encode(wire::WireWriter& w) const override {
    w.bits(static_cast<std::uint64_t>(pred_kind), 2);
    new_succ.encode(w);
    arc.encode(w);
  }

  static sim::Owned<LeaveHandover> decode(wire::WireReader& r) {
    auto m = sim::make_payload<LeaveHandover>();
    const std::uint64_t kind = r.bits(2);
    SKS_CHECK_MSG(kind <= 2, "wire: bad VKind");
    m->pred_kind = static_cast<VKind>(kind);
    m->new_succ = VirtualId::decode(r);
    m->arc = dht::DhtComponent::ArcData::decode(r);
    return m;
  }
};

class MembershipComponent {
 public:
  using JoinedFn = std::function<void()>;

  MembershipComponent(OverlayNode& host, dht::DhtComponent& dht)
      : host_(host), dht_(dht) {
    host_.on_routed_payload<JoinReserve>(
        [this](Point, VKind owner, NodeId, sim::Owned<JoinReserve> m) {
          handle_reserve(owner, std::move(m));
        });
    host_.on_direct_payload<ReserveAck>(
        [this](NodeId, sim::Owned<ReserveAck> m) {
          handle_reserve_ack(std::move(m));
        });
    host_.on_direct_payload<JoinConfirm>(
        [this](NodeId, sim::Owned<JoinConfirm> m) {
          handle_confirm(std::move(m));
        });
    host_.on_direct_payload<ArcTransfer>(
        [this](NodeId, sim::Owned<ArcTransfer> m) {
          absorb_split_by_ownership(std::move(m->arc));
          if (--transfers_needed_ == 0) {
            joined_ = true;
            if (on_joined_) {
              auto cb = std::move(on_joined_);
              on_joined_ = nullptr;
              cb();
            }
          }
        });
    host_.on_direct_payload<NeighborUpdate>(
        [this](NodeId, sim::Owned<NeighborUpdate> m) {
          NodeLinks links = host_.links();
          VirtualState& st = links.at(m->target_kind);
          (m->is_pred ? st.pred : st.succ) = m->neighbor;
          derive_tree_links(links);
          host_.install_links(std::move(links));
        });
    host_.on_direct_payload<LeaveHandover>(
        [this](NodeId, sim::Owned<LeaveHandover> m) {
          NodeLinks links = host_.links();
          links.at(m->pred_kind).succ = m->new_succ;
          derive_tree_links(links);
          host_.install_links(std::move(links));
          dht_.absorb_arc(m->pred_kind, std::move(m->arc));
        });
    host_.on_direct_payload<JoinRelay>(
        [this](NodeId, sim::Owned<JoinRelay> m) {
          // Relay a joiner's reserve into the overlay on its behalf.
          auto reserve = sim::make_payload<JoinReserve>(m->reserve);
          const Point label = reserve->label;
          host_.route(label, std::move(reserve));
        });
  }

  /// Begin joining: this host must already be registered in the network
  /// (so it can receive messages) but carries no overlay links yet. The
  /// middle label is the public hash of the node id, exactly as in the
  /// bootstrap topology. `bootstrap` is any node already in the overlay.
  /// The splice requests are *sent through* the bootstrap node since the
  /// joiner cannot route yet.
  void join(NodeId bootstrap, const HashFunction& label_hash,
            JoinedFn on_joined = nullptr) {
    SKS_CHECK_MSG(!joined_, "already joined");
    on_joined_ = std::move(on_joined);
    const Point m = label_hash.point(host_.id());
    NodeLinks links;
    links.middle_label = m;
    for (VKind k : kAllKinds) {
      links.at(k).self = VirtualId{host_.id(), k, label_of(m, k)};
    }
    pending_links_ = std::make_unique<NodeLinks>(std::move(links));
    acks_needed_ = 3;
    for (VKind k : kAllKinds) {
      auto req = sim::make_payload<JoinRelay>();
      req->reserve.joiner = host_.id();
      req->reserve.kind = k;
      req->reserve.label = label_of(m, k);
      host_.send_direct(bootstrap, std::move(req));
    }
  }

  /// Leave the overlay: hand every arc to the nearest remaining
  /// predecessor and splice out. This node's three virtual vertices may
  /// be cycle-adjacent, so they are grouped into maximal runs of own
  /// vertices; each run's combined arc goes to the run's external
  /// predecessor, and the run's external successor learns its new pred.
  /// After this, the node keeps receiving (and must ignore) stray
  /// traffic; the caller should stop issuing operations at it.
  void leave() {
    SKS_CHECK_MSG(joined_, "not part of the overlay");
    const NodeLinks links = host_.links();  // copy: we mutate via installs
    const NodeId self = host_.id();

    for (VKind start : kAllKinds) {
      const VirtualState& first = links.at(start);
      if (first.pred.host == self) continue;  // not the head of a run
      SKS_CHECK_MSG(first.pred.host != kNoNode &&
                        (first.pred.host != self || first.succ.host != self),
                    "cannot leave: this node is the only member");

      // Walk the run of consecutive own vertices and merge their arcs.
      auto handover = sim::make_payload<LeaveHandover>();
      handover->pred_kind = first.pred.kind;
      VKind cur = start;
      VirtualId succ;
      for (;;) {
        const VirtualState& st = links.at(cur);
        auto arc = dht_.extract_arc(cur, st.self.label, st.succ.label);
        for (std::size_t sp = 0; sp < dht::DhtComponent::kNumSpaces; ++sp) {
          for (auto& [key, elems] : arc.elements[sp]) {
            auto& dst = handover->arc.elements[sp][key];
            dst.insert(dst.end(), elems.begin(), elems.end());
          }
          for (auto& [key, gets] : arc.waiting[sp]) {
            auto& dst = handover->arc.waiting[sp][key];
            dst.insert(dst.end(), gets.begin(), gets.end());
          }
        }
        succ = st.succ;
        if (succ.host != self) break;
        cur = succ.kind;
      }
      handover->new_succ = succ;

      auto update = sim::make_payload<NeighborUpdate>();
      update->target_kind = succ.kind;
      update->is_pred = true;
      update->neighbor = first.pred;

      host_.send_direct(first.pred.host, std::move(handover));
      host_.send_direct(succ.host, std::move(update));
    }
    joined_ = false;
  }

  /// True once all three virtual nodes are spliced in (or after bootstrap
  /// installation).
  bool joined() const { return joined_; }

  /// Mark a bootstrap-installed node as joined.
  void mark_bootstrapped() { joined_ = true; }

 private:
  /// The joiner cannot route before it has links, so the initial reserve
  /// requests are relayed through the bootstrap node.
  struct JoinRelay final : sim::Action<JoinRelay> {
    static constexpr const char* kActionName = "member.join_relay";
    JoinReserve reserve;
    std::uint64_t size_bits() const override { return reserve.size_bits(); }

    void encode(wire::WireWriter& w) const override { reserve.encode(w); }

    static sim::Owned<JoinRelay> decode(wire::WireReader& r) {
      auto m = sim::make_payload<JoinRelay>();
      m->reserve = *JoinReserve::decode(r);
      return m;
    }
  };

  void handle_reserve(VKind owner, sim::Owned<JoinReserve> m) {
    const VirtualState& st = host_.vstate(owner);
    // Ownership may have moved while the request was in flight; re-route
    // if the label is no longer in our arc.
    if (!arc_contains(st.self.label, st.succ.label, m->label)) {
      const Point label = m->label;
      host_.route(label, std::move(m));
      return;
    }
    auto ack = sim::make_payload<ReserveAck>();
    ack->kind = m->kind;
    ack->pred = st.self;
    ack->succ = st.succ;
    host_.send_direct(m->joiner, std::move(ack));
  }

  void handle_reserve_ack(sim::Owned<ReserveAck> m) {
    SKS_CHECK(pending_links_ != nullptr);
    VirtualState& st = pending_links_->at(m->kind);
    st.pred = m->pred;
    st.succ = m->succ;
    if (--acks_needed_ > 0) return;

    // Two (or three) of our labels may fall into the same owner arc, in
    // which case the acks don't know about each other: fix up pred/succ
    // pointers that should point at our own sibling vertices.
    NodeLinks& L = *pending_links_;
    for (VKind k : kAllKinds) {
      VirtualState& vst = L.at(k);
      for (VKind o : kAllKinds) {
        if (o == k) continue;
        const VirtualId& cand = L.at(o).self;
        if (forward_distance(vst.pred.label, cand.label) <
            forward_distance(vst.pred.label, vst.self.label)) {
          vst.pred = cand;
        }
        if (forward_distance(vst.self.label, cand.label) <
            forward_distance(vst.self.label, vst.succ.label)) {
          vst.succ = cand;
        }
      }
    }

    // Fully linked: install first, so any walk that reaches one of our
    // vertices after the confirms can continue; then make each run of
    // consecutive own vertices visible with one confirm to its external
    // predecessor.
    derive_tree_links(L);
    NodeLinks installed = L;
    host_.install_links(std::move(*pending_links_));
    pending_links_.reset();

    transfers_needed_ = 0;
    const NodeId self = host_.id();
    for (VKind k : kAllKinds) {
      const VirtualState& head = installed.at(k);
      if (head.pred.host == self) continue;  // not the head of a run
      VirtualId last = head.self;
      while (installed.at(last.kind).succ.host == self) {
        last = installed.at(last.kind).succ;
      }
      auto confirm = sim::make_payload<JoinConfirm>();
      confirm->joiner = self;
      confirm->owner_kind = head.pred.kind;
      confirm->first = head.self;
      confirm->last = last;
      ++transfers_needed_;
      host_.send_direct(head.pred.host, std::move(confirm));
    }
    SKS_CHECK(transfers_needed_ >= 1);
  }

  void handle_confirm(sim::Owned<JoinConfirm> m) {
    NodeLinks links = host_.links();
    VirtualState& st = links.at(m->owner_kind);
    SKS_CHECK_MSG(arc_contains(st.self.label, st.succ.label, m->first.label),
                  "join confirm raced another membership change; "
                  "membership operations must be serialized");
    const VirtualId old_succ = st.succ;
    st.succ = m->first;
    derive_tree_links(links);
    host_.install_links(std::move(links));

    // The run owns [first.label, old_succ.label) now; ship the whole arc —
    // the joiner splits it between its own vertices by ownership.
    auto transfer = sim::make_payload<ArcTransfer>();
    transfer->kind = m->first.kind;
    transfer->arc =
        dht_.extract_arc(m->owner_kind, m->first.label, old_succ.label);

    auto update = sim::make_payload<NeighborUpdate>();
    update->target_kind = old_succ.kind;
    update->is_pred = true;
    update->neighbor = m->last;

    host_.send_direct(old_succ.host, std::move(update));
    host_.send_direct(m->joiner, std::move(transfer));
  }

  /// Distribute handed-over entries between this host's virtual nodes by
  /// which arc each key falls into.
  void absorb_split_by_ownership(dht::DhtComponent::ArcData arc) {
    std::array<dht::DhtComponent::ArcData, 3> split;
    auto kind_for = [&](Point key) {
      for (VKind k : kAllKinds) {
        const VirtualState& st = host_.vstate(k);
        if (arc_contains(st.self.label, st.succ.label, key)) return k;
      }
      // Not in any of our arcs (stale transfer); keep it at the vertex
      // closest below so it is at least not lost.
      VKind best = VKind::kLeft;
      Point best_d = ~0ULL;
      for (VKind k : kAllKinds) {
        const Point d = forward_distance(host_.vstate(k).self.label, key);
        if (d < best_d) {
          best_d = d;
          best = k;
        }
      }
      return best;
    };
    for (std::size_t sp = 0; sp < dht::DhtComponent::kNumSpaces; ++sp) {
      for (auto& [key, elems] : arc.elements[sp]) {
        split[static_cast<std::size_t>(kind_for(key))]
            .elements[sp][key] = std::move(elems);
      }
      for (auto& [key, gets] : arc.waiting[sp]) {
        split[static_cast<std::size_t>(kind_for(key))]
            .waiting[sp][key] = std::move(gets);
      }
    }
    for (VKind k : kAllKinds) {
      dht_.absorb_arc(k, std::move(split[static_cast<std::size_t>(k)]));
    }
  }

  OverlayNode& host_;
  dht::DhtComponent& dht_;
  bool joined_ = false;
  JoinedFn on_joined_;
  std::unique_ptr<NodeLinks> pending_links_;
  int acks_needed_ = 0;
  int transfers_needed_ = 0;
};

}  // namespace sks::overlay
