// Virtual nodes of the Linearized de Bruijn network (Definition A.1).
//
// Every real node v emulates three virtual nodes: a middle node with label
// m(v) (pseudorandom hash of v's id), a left node l(v) = m(v)/2 and a right
// node r(v) = (m(v)+1)/2. Labels live on the fixed-point unit cycle
// [0, 2^64), so l and r are exact: l = m >> 1, r = (m >> 1) + 2^63.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "common/types.hpp"
#include "common/wire.hpp"

namespace sks::overlay {

enum class VKind : std::uint8_t { kLeft = 0, kMiddle = 1, kRight = 2 };

inline constexpr std::array<VKind, 3> kAllKinds{VKind::kLeft, VKind::kMiddle,
                                                VKind::kRight};

inline const char* to_string(VKind k) {
  switch (k) {
    case VKind::kLeft: return "l";
    case VKind::kMiddle: return "m";
    case VKind::kRight: return "r";
  }
  return "?";
}

/// Fixed-point half: the label offset of a right node above a left node.
inline constexpr Point kHalf = Point{1} << 63;

/// Labels of the three virtual nodes emulated by a real node whose middle
/// label is `middle`.
inline constexpr Point label_of(Point middle, VKind kind) {
  switch (kind) {
    case VKind::kLeft: return middle >> 1;
    case VKind::kMiddle: return middle;
    case VKind::kRight: return (middle >> 1) + kHalf;
  }
  return 0;  // unreachable
}

/// A reference to a virtual node: which real node hosts it, which of the
/// three roles it plays, and its label (cached so neighbours don't need to
/// recompute hashes).
struct VirtualId {
  NodeId host = kNoNode;
  VKind kind = VKind::kMiddle;
  Point label = 0;

  bool valid() const { return host != kNoNode; }

  friend bool operator==(const VirtualId&, const VirtualId&) = default;

  /// Wire layout: 1 flag bit for the default (invalid) id; otherwise a
  /// varint of (host, kind) packed into one number, then the raw 64-bit
  /// label (labels are full-width hash points; varints would only inflate
  /// them).
  void encode(wire::WireWriter& w) const {
    const bool is_default = *this == VirtualId{};
    w.boolean(is_default);
    if (is_default) return;
    w.leb((static_cast<std::uint64_t>(host) << 2) |
          static_cast<std::uint64_t>(kind));
    w.bits(label, 64);
  }

  static VirtualId decode(wire::WireReader& r) {
    if (r.boolean()) return VirtualId{};
    const std::uint64_t packed = r.leb();
    VirtualId v;
    v.host = static_cast<NodeId>(packed >> 2);
    const std::uint64_t kind = packed & 3;
    SKS_CHECK_MSG(kind <= 2, "wire: bad VKind");
    v.kind = static_cast<VKind>(kind);
    v.label = r.bits(64);
    return v;
  }
};

inline std::string to_string(const VirtualId& v) {
  if (!v.valid()) return "<none>";
  return std::string(to_string(v.kind)) + "(" + std::to_string(v.host) + ")";
}

/// Cyclic forward distance from a to b on [0, 2^64): how far b is ahead of
/// a walking in the successor (increasing-label) direction.
inline constexpr Point forward_distance(Point a, Point b) { return b - a; }

/// Does the arc [lo, succ_lo) — walking forward from lo to succ_lo — contain
/// point p? This is the ownership test: the virtual node with label lo owns
/// p iff p lies in [lo, succ(lo).label) cyclically.
inline constexpr bool arc_contains(Point lo, Point succ_lo, Point p) {
  return forward_distance(lo, p) < forward_distance(lo, succ_lo);
}

/// True if walking in the successor direction from `from` reaches `to` no
/// later than walking in the predecessor direction (shortest-arc choice).
inline constexpr bool succ_direction_shorter(Point from, Point to) {
  return forward_distance(from, to) <= forward_distance(to, from);
}

}  // namespace sks::overlay
