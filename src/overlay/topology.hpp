// Bootstrap construction of the LDB and its aggregation tree (Appendix A).
//
// The paper assumes the nodes "are arranged in such an aggregation tree"
// and sketches the construction; this builder performs it for the initial
// membership: hash each node id to its middle label, sort the 3n virtual
// labels into the cycle, and derive — purely from local pred/succ kinds —
// each virtual node's parent and children in the aggregation tree:
//
//   parent(m(v)) = l(v)                    (local/virtual edge)
//   parent(l(v)) = pred(l(v))              (linear edge)
//   parent(r(v)) = m(v)                    (local/virtual edge)
//   children(m(v)) = { r(v) } ∪ { succ(m(v)) if it is a left node }
//   children(l(v)) = { m(v) } ∪ { succ(l(v)) if it is a left node }
//   children(r(v)) = ∅                     (right nodes are the leaves)
//
// The anchor (root) is the virtual node with the globally minimal label —
// always a left node, locally detectable because its pred wraps around.
// Labels strictly decrease along every parent path, which is what makes
// the structure a tree.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "overlay/virtual_node.hpp"

namespace sks::overlay {

/// Everything one virtual node knows about its surroundings.
struct VirtualState {
  VirtualId self;
  VirtualId pred;
  VirtualId succ;
  bool is_anchor = false;
  VirtualId parent;               ///< invalid for the anchor
  std::vector<VirtualId> children;  ///< 0, 1 or 2 entries
};

/// The complete local overlay state of one real node.
struct NodeLinks {
  Point middle_label = 0;
  std::array<VirtualState, 3> vstates;  // indexed by VKind

  VirtualState& at(VKind k) { return vstates[static_cast<std::size_t>(k)]; }
  const VirtualState& at(VKind k) const {
    return vstates[static_cast<std::size_t>(k)];
  }
};

/// Deterministically build the LDB for nodes {0, ..., n-1} using the given
/// public hash for middle labels. Middle labels are h(node_id); the builder
/// verifies all 3n labels are distinct (w.h.p. for a 64-bit hash).
std::vector<NodeLinks> build_topology(std::size_t n, const HashFunction& h);

/// Build the LDB for an arbitrary (sorted or not) member set — the
/// recovery coordinator uses this to rebuild the overlay after a declared
/// death removed a node from the middle of the id space. Labels are pure
/// hashes of the node ids, so the surviving nodes' labels are unchanged
/// and their ownership arcs only grow.
std::map<NodeId, NodeLinks> build_topology(const std::vector<NodeId>& members,
                                           const HashFunction& h);

/// Re-derive a node's aggregation-tree links (parents, children, anchor
/// flag) from its current pred/succ pointers — the purely local rules of
/// Appendix A. Called after bootstrap and after every membership splice.
void derive_tree_links(NodeLinks& nl);

/// Diagnostics used by tests and benchmarks.
struct TopologyStats {
  std::uint64_t tree_height = 0;       ///< max root-to-leaf depth (edges)
  std::uint64_t num_virtual = 0;       ///< 3n
  NodeId anchor_host = kNoNode;        ///< host of the anchor left node
  std::uint64_t max_tree_degree = 0;   ///< max children of any vertex
};

TopologyStats analyze_topology(const std::vector<NodeLinks>& links);

}  // namespace sks::overlay
