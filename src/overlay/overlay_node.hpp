// A real node participating in the LDB overlay.
//
// OverlayNode provides the two communication primitives every protocol in
// the paper is built from:
//
//  * route(target, inner) — de Bruijn routing (Lemma A.2): the message
//    performs d ≈ log(3n) halving steps (each taken at a middle virtual
//    node, moving locally to that host's left/right virtual node, then
//    walking along the cycle to the next middle node) followed by a final
//    linear walk to the virtual node owning `target`. O(log n) host-
//    crossing hops w.h.p.
//
//  * send_to_vertex(src, dst, inner) — direct message between virtual
//    nodes that know each other (cycle neighbours, tree parent/children).
//    Hops between virtual nodes of the same host are local and free.
//
// Protocols register typed handlers for the inner payloads they expect via
// on_routed_payload<T>() and on_vertex_payload<T>(), which lets several
// protocol components (DHT, aggregation, heap logic) coexist on one node.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/types.hpp"
#include "overlay/topology.hpp"
#include "overlay/virtual_node.hpp"
#include "sim/dispatch.hpp"

namespace sks::overlay {

/// Routing parameters shared by all nodes of one system.
struct RouteParams {
  std::uint32_t debruijn_steps = 16;   ///< d: halving steps per route
  std::uint64_t hop_guard = 4096;      ///< deadlock/loop detector
  std::uint64_t header_bits = 32;      ///< charged per routed hop
  std::uint64_t vertex_header_bits = 12;  ///< charged per vertex message

  static RouteParams for_system(std::size_t n) {
    RouteParams p;
    p.debruijn_steps =
        static_cast<std::uint32_t>(bits_for_max(3 * n) + 3);
    p.hop_guard = 128 * (p.debruijn_steps + 8);
    // Target point, random bits ρ and addressing — all O(log n) bits.
    p.header_bits = 3 * bits_for_max(3 * n) + 12;
    p.vertex_header_bits = bits_for_max(3 * n) + 2;
    return p;
  }
};

/// One de Bruijn routing hop crossing a host boundary.
///
/// Routing follows the continuous-discrete approach of [NW07] as adapted
/// by [RSS11] for the LDB (Lemma A.2): phase A performs d halving steps
/// with *random* bits ρ (each taken at a middle virtual node via its
/// virtual edge, walking along the cycle to the next middle in between),
/// landing at z ≈ 0.ρ_d…ρ_1. Phase B traverses, in reverse, the halving
/// path the *target* would take with the same random bits: its points
/// v_j = 0.ρ_{d-j}…ρ_1 t_1 t_2… are exactly computable from (ρ, t), and
/// each doubling step is a virtual edge from a left/right vertex to its
/// middle (2·l(v) = m(v), 2·r(v) ≡ m(v) mod 1). Anchoring every step to
/// the exact ideal point keeps deviations at O(1) cycle gaps, and the
/// random intermediate regions de-correlate the walk lengths, giving
/// O(log n) hops w.h.p. with small constants.
struct RouteHop final : sim::Action<RouteHop> {
  static constexpr const char* kActionName = "route";
  Point target = 0;
  std::uint64_t rho = 0;            ///< random halving bits (phase A)
  Point ideal = 0;                  ///< phase A: exact ideal trajectory point
  std::uint32_t d = 0;              ///< total halving steps (origin's view;
                                    ///< nodes may disagree about n after churn)
  std::uint32_t phase_a_left = 0;   ///< halving steps remaining
  std::uint32_t phase_b_done = 0;   ///< doubling steps completed
  bool anchored = false;            ///< phase B: reached owner(v_j)?
  VKind at_kind = VKind::kMiddle;   ///< receiving host's virtual node
  NodeId origin = kNoNode;
  std::uint64_t hops = 0;
  std::uint64_t header_bits = 32;
  sim::PayloadPtr inner;

  RouteHop() = default;
  /// Deep copy (clones the carried payload) so in-flight hops can be
  /// retained and retransmitted by the reliable transport.
  RouteHop(const RouteHop& o)
      : Action(o),
        target(o.target),
        rho(o.rho),
        ideal(o.ideal),
        d(o.d),
        phase_a_left(o.phase_a_left),
        phase_b_done(o.phase_b_done),
        anchored(o.anchored),
        at_kind(o.at_kind),
        origin(o.origin),
        hops(o.hops),
        header_bits(o.header_bits),
        inner(o.inner ? o.inner->clone_payload() : nullptr) {}

  std::uint64_t size_bits() const override {
    return header_bits + (inner ? inner->size_bits() : 0);
  }
  /// Metrics attribute each hop to the payload being routed.
  const char* name() const override {
    return inner ? inner->name() : kActionName;
  }
  sim::ActionId metrics_tag() const override {
    return inner ? inner->metrics_tag() : tag();
  }

  /// Wire layout: the routing header (target/ideal are full-width cycle
  /// points; ρ carries exactly d random bits), then the carried payload
  /// tagged with its own action id — the recursive frame of the format.
  void encode(wire::WireWriter& w) const override {
    w.bits(target, 64);
    w.gamma(d);
    SKS_CHECK_MSG(d == 64 || (rho >> d) == 0,
                  "route: rho wider than d bits");
    w.bits(rho, d);
    w.bits(ideal, 64);
    w.gamma(phase_a_left);
    w.gamma(phase_b_done);
    w.boolean(anchored);
    w.bits(static_cast<std::uint64_t>(at_kind), 2);
    w.leb(origin);
    w.gamma(hops);
    w.leb(header_bits);
    w.boolean(inner != nullptr);
    if (inner) {
      w.gamma(inner->tag());
      w.note_inner_start();
      inner->encode(w);
    }
  }

  static sim::Owned<RouteHop> decode(wire::WireReader& r) {
    auto hop = sim::make_payload<RouteHop>();
    hop->target = r.bits(64);
    hop->d = static_cast<std::uint32_t>(r.gamma());
    SKS_CHECK_MSG(hop->d <= 64, "wire: route d out of range");
    hop->rho = r.bits(hop->d);
    hop->ideal = r.bits(64);
    hop->phase_a_left = static_cast<std::uint32_t>(r.gamma());
    hop->phase_b_done = static_cast<std::uint32_t>(r.gamma());
    hop->anchored = r.boolean();
    const std::uint64_t kind = r.bits(2);
    SKS_CHECK_MSG(kind <= 2, "wire: bad VKind");
    hop->at_kind = static_cast<VKind>(kind);
    hop->origin = static_cast<NodeId>(r.leb());
    hop->hops = r.gamma();
    hop->header_bits = r.leb();
    if (r.boolean()) {
      const std::uint64_t tag = r.gamma();
      SKS_CHECK_MSG(tag <= 0xffffffffull, "wire: action tag out of range");
      hop->inner = sim::ActionRegistry::instance().decode(
          static_cast<sim::ActionId>(tag), r);
    }
    return hop;
  }
};

/// A direct message between two virtual nodes that know each other.
struct VertexMsg final : sim::Action<VertexMsg> {
  static constexpr const char* kActionName = "vertex";
  VirtualId src;
  VKind dst_kind = VKind::kMiddle;
  std::uint64_t header_bits = 16;
  sim::PayloadPtr inner;

  VertexMsg() = default;
  /// Deep copy (clones the carried payload); see RouteHop.
  VertexMsg(const VertexMsg& o)
      : Action(o),
        src(o.src),
        dst_kind(o.dst_kind),
        header_bits(o.header_bits),
        inner(o.inner ? o.inner->clone_payload() : nullptr) {}

  std::uint64_t size_bits() const override {
    return header_bits + (inner ? inner->size_bits() : 0);
  }
  /// Metrics attribute tree traffic to the payload being carried.
  const char* name() const override {
    return inner ? inner->name() : kActionName;
  }
  sim::ActionId metrics_tag() const override {
    return inner ? inner->metrics_tag() : tag();
  }

  void encode(wire::WireWriter& w) const override {
    src.encode(w);
    w.bits(static_cast<std::uint64_t>(dst_kind), 2);
    w.leb(header_bits);
    w.boolean(inner != nullptr);
    if (inner) {
      w.gamma(inner->tag());
      w.note_inner_start();
      inner->encode(w);
    }
  }

  static sim::Owned<VertexMsg> decode(wire::WireReader& r) {
    auto msg = sim::make_payload<VertexMsg>();
    msg->src = VirtualId::decode(r);
    const std::uint64_t kind = r.bits(2);
    SKS_CHECK_MSG(kind <= 2, "wire: bad VKind");
    msg->dst_kind = static_cast<VKind>(kind);
    msg->header_bits = r.leb();
    if (r.boolean()) {
      const std::uint64_t tag = r.gamma();
      SKS_CHECK_MSG(tag <= 0xffffffffull, "wire: action tag out of range");
      msg->inner = sim::ActionRegistry::instance().decode(
          static_cast<sim::ActionId>(tag), r);
    }
    return msg;
  }
};

class OverlayNode : public sim::DispatchingNode {
 public:
  explicit OverlayNode(RouteParams params) : params_(params) {
    on<RouteHop>([this](NodeId, sim::Owned<RouteHop> h) {
      continue_route(std::move(h));
    });
    on<VertexMsg>([this](NodeId, sim::Owned<VertexMsg> m) {
      deliver_vertex(std::move(m));
    });
  }

  /// Install the overlay links (bootstrap or after a membership change).
  void install_links(NodeLinks links) { links_ = std::move(links); }

  /// The network's metrics facade — public so components attached to a
  /// node (the failure detector) can record health counters alongside
  /// their tracer events.
  sim::Metrics& metrics() { return net().metrics(); }

  const NodeLinks& links() const { return links_; }
  const VirtualState& vstate(VKind k) const { return links_.at(k); }
  bool hosts_anchor() const { return links_.at(VKind::kLeft).is_anchor; }
  const RouteParams& route_params() const { return params_; }

  /// Route `inner` to the virtual node owning `target`; it is delivered to
  /// the handler registered for its type via on_routed_payload.
  void route(Point target, sim::PayloadPtr inner) {
    auto hop = sim::make_payload<RouteHop>();
    hop->target = target;
    // Only the low d bits of ρ steer the halving walk; keep the rest off
    // the wire (the encoder sends exactly d bits).
    hop->rho = net().rng().next() &
               (params_.debruijn_steps >= 64
                    ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << params_.debruijn_steps) - 1);
    hop->ideal = links_.at(VKind::kMiddle).self.label;
    hop->d = params_.debruijn_steps;
    hop->phase_a_left = params_.debruijn_steps;
    hop->phase_b_done = 0;
    hop->at_kind = VKind::kMiddle;  // start at own middle node
    hop->origin = id();
    hop->header_bits = params_.header_bits;
    hop->inner = std::move(inner);
    continue_route(std::move(hop));
  }

  /// One emulated de Bruijn halving hop (Lemma 2.2(v)): deliver `inner`
  /// to the owner of the point (w + bit)/2, where w is the label of this
  /// host's `at` virtual node. Costs O(1) host crossings in expectation
  /// (walk to the next middle node, exact virtual-edge halving, short
  /// final walk). KSelect's copy trees (Section 4.3) ride on this.
  void debruijn_hop(VKind at, bool bit, sim::PayloadPtr inner) {
    const Point w = links_.at(at).self.label;
    auto hop = sim::make_payload<RouteHop>();
    hop->target = (w >> 1) | (bit ? kHalf : Point{0});
    hop->ideal = w;
    hop->d = params_.debruijn_steps;
    hop->rho = std::uint64_t{bit} << (params_.debruijn_steps - 1);
    hop->phase_a_left = 1;            // one halving step
    hop->phase_b_done = hop->d;       // skip phase B
    hop->at_kind = at;
    hop->origin = id();
    hop->header_bits = params_.header_bits;
    hop->inner = std::move(inner);
    continue_route(std::move(hop));
  }

  /// Send `inner` from our virtual node `src_kind` to `dst`. Local if dst
  /// is hosted here (free), one message otherwise.
  void send_to_vertex(VKind src_kind, const VirtualId& dst,
                      sim::PayloadPtr inner) {
    SKS_CHECK(dst.valid());
    auto msg = sim::make_payload<VertexMsg>();
    msg->src = links_.at(src_kind).self;
    msg->dst_kind = dst.kind;
    msg->header_bits = params_.vertex_header_bits;
    msg->inner = std::move(inner);
    if (dst.host == id()) {
      deliver_vertex(std::move(msg));
    } else {
      send(dst.host, std::move(msg));
    }
  }

  /// Send a direct message to a node whose id we learned from a request
  /// (the paper's model: carrying a node reference in a message creates
  /// the edge needed to reply).
  void send_direct(NodeId to, sim::PayloadPtr payload) {
    SKS_CHECK(to != kNoNode);
    if (to == id()) {
      on_message(id(), std::move(payload));
    } else {
      send(to, std::move(payload));
    }
  }

  /// Send fire-and-forget background traffic (failure-detector heartbeats
  /// and probes): untracked by the reliable transport and excluded from
  /// network quiescence — see Network::send_background.
  void send_background(NodeId to, sim::PayloadPtr payload) {
    SKS_CHECK(to != kNoNode);
    if (to == id()) {
      on_message(id(), std::move(payload));
    } else {
      net().send_background(id(), to, std::move(payload));
    }
  }

  /// Register a per-activation hook (called once per round in synchronous
  /// mode, whenever the node is live). The failure detector drives its
  /// lease timers from this.
  void set_activate_hook(std::function<void()> hook) {
    activate_hook_ = std::move(hook);
  }

  // Handler registration is public so protocol components (DHT,
  // aggregation, heap logic) can attach themselves to a host node.

  /// Register a handler for direct (non-routed, non-vertex) payloads of
  /// type T: void(NodeId from, std::unique_ptr<T>).
  template <class T, class F>
  void on_direct_payload(F&& handler) {
    this->template on<T>(std::forward<F>(handler));
  }

  /// Register a handler for routed payloads of type T:
  /// void(Point target, VKind owner_kind, NodeId origin, sim::Owned<T>).
  template <class T, class F>
  void on_routed_payload(F&& handler) {
    const sim::ActionId tag = sim::action_tag_of<T>();
    if (routed_handlers_.size() <= tag) routed_handlers_.resize(tag + 1);
    SKS_CHECK_MSG(!routed_handlers_[tag],
                  "duplicate routed handler for '" << T::kActionName << "'");
    routed_handlers_[tag] = [h = std::forward<F>(handler)](
                                Point t, VKind k, NodeId o, sim::PayloadPtr p) {
      h(t, k, o, sim::Owned<T>(static_cast<T*>(p.release())));
    };
  }

  /// Register a handler for vertex payloads of type T:
  /// void(VKind at, const VirtualId& from, sim::Owned<T>).
  template <class T, class F>
  void on_vertex_payload(F&& handler) {
    const sim::ActionId tag = sim::action_tag_of<T>();
    if (vertex_handlers_.size() <= tag) vertex_handlers_.resize(tag + 1);
    SKS_CHECK_MSG(!vertex_handlers_[tag],
                  "duplicate vertex handler for '" << T::kActionName << "'");
    vertex_handlers_[tag] = [h = std::forward<F>(handler)](
                                VKind at, const VirtualId& from,
                                sim::PayloadPtr p) {
      h(at, from, sim::Owned<T>(static_cast<T*>(p.release())));
    };
  }

 protected:
  void on_activate() override {
    if (activate_hook_) activate_hook_();
  }

 private:
  /// Phase B ideal point v_j = 0.ρ_{d-j}…ρ_1 t_1 t_2…  (the point the
  /// target's own phase-A trajectory would pass through after d-j steps).
  Point phase_b_ideal(const RouteHop& hop, std::uint32_t j) const {
    const std::uint32_t d = hop.d;
    SKS_CHECK(j <= d);
    const std::uint32_t k = d - j;  // random bits still on top
    if (k == 0) return hop.target;
    Point rev = 0;  // ρ_k ρ_{k-1} … ρ_1 as the top k bits (ρ_k is the MSB)
    for (std::uint32_t i = k; i >= 1; --i) {
      rev = (rev << 1) | ((hop.rho >> (i - 1)) & 1ULL);
    }
    return (rev << (64 - k)) | (hop.target >> k);
  }

  void continue_route(sim::Owned<RouteHop> hop) {
    const std::uint32_t d = hop->d;
    VKind at = hop->at_kind;
    std::uint64_t local_iterations = 0;
    for (;;) {
      SKS_CHECK_MSG(++local_iterations < params_.hop_guard,
                    "routing local-walk guard tripped");
      const VirtualState& st = links_.at(at);

      if (hop->phase_a_left > 0) {
        // ---- Phase A: halving with random bits. ----
        if (at == VKind::kMiddle) {
          // Step i = d - phase_a_left + 1 applies ρ_i to the exact ideal
          // trajectory. The actual position (this middle's label) deviates
          // from the ideal by a few cycle gaps; because halving is not
          // equivariant under modular wrap, we pick whichever virtual side
          // (l and r are exactly half a circle apart) lands closest to the
          // ideal next point — this keeps the deviation bounded even when
          // a walk crossed the 0/1 boundary.
          const bool bit = (hop->rho >> (d - hop->phase_a_left)) & 1ULL;
          --hop->phase_a_left;
          hop->ideal = (hop->ideal >> 1) |
                       (bit ? kHalf : Point{0});
          const Point left_label = st.self.label >> 1;
          const Point fwd_from_left = hop->ideal - left_label;
          // left is closer iff the modular distance to the ideal is < 1/4
          // in either direction (the two candidates are exactly 1/2 apart).
          const bool left_closer =
              std::min(fwd_from_left, Point{0} - fwd_from_left) < kHalf / 2;
          at = left_closer ? VKind::kLeft : VKind::kRight;
          continue;
        }
        // Walk to the next middle node to take the next halving step.
        const VirtualId nxt = st.succ;
        if (nxt.host == id()) {
          at = nxt.kind;
          continue;
        }
        forward_hop(std::move(hop), nxt);
        return;
      }

      if (hop->phase_b_done < d) {
        // ---- Phase B: doubling along the target's reversed trajectory. --
        const Point ideal = phase_b_ideal(*hop, hop->phase_b_done);
        if (!hop->anchored) {
          // First reach the owner of the exact ideal point v_j.
          if (arc_contains(st.self.label, st.succ.label, ideal)) {
            hop->anchored = true;
            continue;
          }
          const bool fwd = succ_direction_shorter(st.self.label, ideal);
          const VirtualId nxt = fwd ? st.succ : st.pred;
          if (nxt.host == id()) {
            at = nxt.kind;
            continue;
          }
          forward_hop(std::move(hop), nxt);
          return;
        }
        // Anchored: find the nearest left/right vertex (walking forward)
        // and take its virtual edge to the middle — an exact doubling
        // since 2·l(v) = m(v) and 2·r(v) ≡ m(v) (mod 1).
        if (at != VKind::kMiddle) {
          ++hop->phase_b_done;
          hop->anchored = false;
          at = VKind::kMiddle;  // local virtual hop to this host's middle
          continue;
        }
        const VirtualId nxt = st.succ;
        if (nxt.host == id()) {
          at = nxt.kind;
          continue;
        }
        forward_hop(std::move(hop), nxt);
        return;
      }

      // ---- Final linear walk to the owner of the target point. ----
      if (arc_contains(st.self.label, st.succ.label, hop->target)) {
        deliver_routed(at, std::move(hop));
        return;
      }
      const bool fwd = succ_direction_shorter(st.self.label, hop->target);
      const VirtualId nxt = fwd ? st.succ : st.pred;
      if (nxt.host == id()) {
        at = nxt.kind;
        continue;
      }
      forward_hop(std::move(hop), nxt);
      return;
    }
  }

  void forward_hop(sim::Owned<RouteHop> hop, const VirtualId& nxt) {
    hop->at_kind = nxt.kind;
    ++hop->hops;
    SKS_CHECK_MSG(hop->hops < params_.hop_guard, "routing hop guard tripped");
    send(nxt.host, std::move(hop));
  }

  void deliver_routed(VKind owner_kind, sim::Owned<RouteHop> hop) {
    const sim::ActionId tag = hop->inner->tag();
    SKS_CHECK_MSG(tag < routed_handlers_.size() && routed_handlers_[tag],
                  "node " << id() << " has no routed handler for '"
                          << hop->inner->name() << "'");
    routed_handlers_[tag](hop->target, owner_kind, hop->origin,
                          std::move(hop->inner));
  }

  void deliver_vertex(sim::Owned<VertexMsg> msg) {
    const sim::ActionId tag = msg->inner->tag();
    SKS_CHECK_MSG(tag < vertex_handlers_.size() && vertex_handlers_[tag],
                  "node " << id() << " has no vertex handler for '"
                          << msg->inner->name() << "'");
    vertex_handlers_[tag](msg->dst_kind, msg->src, std::move(msg->inner));
  }

  RouteParams params_;
  NodeLinks links_;
  std::function<void()> activate_hook_;
  // Flat tables indexed by the inner payload's ActionId.
  std::vector<std::function<void(Point, VKind, NodeId, sim::PayloadPtr)>>
      routed_handlers_;
  std::vector<std::function<void(VKind, const VirtualId&, sim::PayloadPtr)>>
      vertex_handlers_;
};

}  // namespace sks::overlay
