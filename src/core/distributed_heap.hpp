// The library's front door: a distributed priority queue with selectable
// backend.
//
//   * Backend::kSkeap — Section 3: constant priority universe
//     P = {1, ..., c}; sequential consistency; O(Λ log² n)-bit messages.
//   * Backend::kSeap  — Section 5: arbitrary priorities; serializability;
//     O(log n)-bit messages regardless of the injection rate.
//
// Usage (see examples/quickstart.cpp):
//
//   DistributedHeap::Options opts;
//   opts.backend = DistributedHeap::Backend::kSeap;
//   opts.num_nodes = 64;
//   DistributedHeap heap(opts);
//   heap.insert(/*node=*/3, /*priority=*/42);
//   heap.delete_min(/*node=*/7, [](std::optional<Element> e) { ... });
//   heap.run_batch();   // drive one batch/cycle to completion
//
// Operations are issued *at* a node (this is a decentralized structure —
// there is no single entry point) and buffered until the next batch.
//
// Layering: both backends are thin typed wrappers over the shared
// runtime::Cluster deployment engine (src/runtime/cluster.hpp); this
// facade only selects the protocol and normalizes the API. Use
// epoch_history() to observe per-batch substrate costs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <variant>

#include "common/check.hpp"
#include "common/types.hpp"
#include "core/semantics.hpp"
#include "seap/seap_system.hpp"
#include "skeap/skeap_system.hpp"

namespace sks::core {

class DistributedHeap {
 public:
  enum class Backend { kSkeap, kSeap };

  /// Min-heap (the paper's default) or max-heap — Definition 1.2's note:
  /// "this property can be inverted such that our heap behaves like a
  /// MaxHeap". Realized by storing order-reversed priorities; callers see
  /// their original values.
  enum class Ordering { kMin, kMax };

  using DeleteCallback = std::function<void(std::optional<Element>)>;

  struct Options {
    Backend backend = Backend::kSeap;
    Ordering ordering = Ordering::kMin;
    std::size_t num_nodes = 8;
    /// Skeap only: size of the constant priority universe P = {1..c}.
    std::size_t num_priorities = 4;
    std::uint64_t seed = 0xb1a5edULL;
    sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous;
    std::uint64_t max_delay = 8;
  };

  explicit DistributedHeap(const Options& opts) : opts_(opts) {
    if (opts.backend == Backend::kSkeap) {
      skeap_ = std::make_unique<skeap::SkeapSystem>(skeap::SkeapSystem::Options{
          .num_nodes = opts.num_nodes,
          .num_priorities = opts.num_priorities,
          .seed = opts.seed,
          .mode = opts.mode,
          .max_delay = opts.max_delay});
    } else {
      seap_ = std::make_unique<seap::SeapSystem>(seap::SeapSystem::Options{
          .num_nodes = opts.num_nodes,
          .seed = opts.seed,
          .mode = opts.mode,
          .max_delay = opts.max_delay});
    }
  }

  Backend backend() const { return opts_.backend; }
  std::size_t size() const { return opts_.num_nodes; }

  /// Issue Insert(e) at `node`. Skeap requires prio in {1..num_priorities};
  /// Seap accepts any 64-bit priority. Returns the element (with its
  /// auto-assigned unique id).
  Element insert(NodeId node, Priority prio) {
    if (skeap_) {
      SKS_CHECK_MSG(prio >= 1 && prio <= opts_.num_priorities,
                    "Skeap backend requires priorities in {1.."
                        << opts_.num_priorities << "}; use the Seap backend "
                        << "for arbitrary priorities");
      Element stored = skeap_->insert(node, to_internal(prio));
      stored.prio = prio;
      return stored;
    }
    Element stored = seap_->insert(node, to_internal(prio));
    stored.prio = prio;
    return stored;
  }

  /// Issue DeleteMin() (or DeleteMax() under Ordering::kMax) at `node`;
  /// `cb` runs at that node with the matched element, or std::nullopt if
  /// the heap was empty when the operation was serialized.
  void delete_min(NodeId node, DeleteCallback cb = nullptr) {
    DeleteCallback wrapped = cb;
    if (opts_.ordering == Ordering::kMax && cb) {
      wrapped = [this, cb = std::move(cb)](std::optional<Element> e) {
        if (e) e->prio = from_internal(e->prio);
        cb(e);
      };
    }
    if (skeap_) {
      skeap_->delete_min(node, std::move(wrapped));
    } else {
      seap_->delete_min(node, std::move(wrapped));
    }
  }

  /// Process everything buffered so far: one Skeap batch or one Seap
  /// cycle. Returns the number of simulated rounds it took.
  std::uint64_t run_batch() {
    return skeap_ ? skeap_->run_batch() : seap_->run_cycle();
  }

  /// Per-batch substrate measurements (rounds, messages, bits), recorded
  /// by the runtime layer for every run_batch call.
  const std::vector<runtime::EpochStats>& epoch_history() {
    return skeap_ ? skeap_->cluster().epoch_history()
                  : seap_->cluster().epoch_history();
  }

  /// Verify the semantics guarantee of the chosen backend over the whole
  /// run so far (sequential consistency for Skeap, serializability for
  /// Seap — both with heap consistency, Definitions 1.1/1.2).
  CheckResult verify_semantics() {
    if (skeap_) return check_skeap_trace(skeap_->gather_trace());
    return check_seap_trace(seap_->gather_trace());
  }

  /// Total elements currently stored across all nodes' DHT shards.
  std::size_t stored_elements() {
    std::size_t total = 0;
    for (NodeId v = 0; v < opts_.num_nodes; ++v) {
      total += skeap_ ? skeap_->node(v).dht().stored_count()
                      : seap_->node(v).dht().stored_count();
    }
    return total;
  }

  sim::Network& net() { return skeap_ ? skeap_->net() : seap_->net(); }

  /// Backend escape hatches for advanced use.
  skeap::SkeapSystem* skeap() { return skeap_.get(); }
  seap::SeapSystem* seap() { return seap_.get(); }

 private:
  /// Order-reversing priority map for Ordering::kMax: Skeap's constant
  /// universe flips within {1..c}; Seap's 64-bit universe flips by
  /// complement (both are strictly order-reversing involutions).
  Priority to_internal(Priority p) const {
    if (opts_.ordering == Ordering::kMin) return p;
    return skeap_ ? opts_.num_priorities + 1 - p : ~p;
  }
  Priority from_internal(Priority p) const { return to_internal(p); }

  Options opts_;
  std::unique_ptr<skeap::SkeapSystem> skeap_;
  std::unique_ptr<seap::SeapSystem> seap_;
};

}  // namespace sks::core
