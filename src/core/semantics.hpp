// Semantics verification (Definitions 1.1 and 1.2).
//
// Given the gathered operation trace of a protocol run, these checkers
// reconstruct the serialization order ≺ the protocol claims to provide and
// replay it against a sequential oracle heap:
//
//  * heap consistency — (1) matched inserts precede their deletes, (2) a
//    delete returns ⊥ only when the heap is empty at its point in ≺, and
//    (3) deletes always remove the minimum-priority element. All three are
//    equivalent to: the sequential replay of ≺ reproduces exactly the
//    recorded matchings.
//  * sequential consistency (Skeap) — additionally, ≺ respects every
//    node's local issue order.
//  * serializability (Seap) — some ≺ exists; we verify the phase-ordered
//    one the proof of Lemma 5.2 constructs.
//
// The Skeap order ≺ is reconstructed as: (epoch, entry, inserts-before-
// deletes); same-entry inserts ordered by (node, issue_seq) — inserts
// commute, so this preserves local order without affecting the heap
// replay; same-entry deletes ordered by their carve order, which is
// exactly lexicographic (priority, position), bottoms last.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/types.hpp"
#include "seap/seap_node.hpp"
#include "skeap/skeap_node.hpp"

namespace sks::core {

struct CheckResult {
  bool ok = true;
  std::string error;

  static CheckResult failure(const std::string& why) {
    return CheckResult{false, why};
  }
  explicit operator bool() const { return ok; }
};

namespace detail {

/// Total-order key for Skeap's serialization ≺.
struct SkeapSerKey {
  std::uint64_t epoch;
  std::uint64_t entry;
  int phase;  // 0 = insert, 1 = delete
  int bottom; // deletes only; ⊥ results are serialized last in the entry
  Priority prio;
  Position pos;
  NodeId node;
  std::uint64_t issue_seq;

  static SkeapSerKey of(const skeap::OpRecord& r) {
    SkeapSerKey k{};
    k.epoch = r.epoch;
    k.entry = r.entry;
    k.phase = r.is_insert ? 0 : 1;
    k.bottom = r.bottom ? 1 : 0;
    // Inserts commute: order them by issuer to preserve local order.
    // Deletes must follow the anchor's carve order (prio, pos).
    k.prio = r.is_insert ? 0 : r.prio;
    k.pos = r.is_insert ? 0 : r.pos;
    k.node = r.node;
    k.issue_seq = r.issue_seq;
    return k;
  }

  friend bool operator<(const SkeapSerKey& a, const SkeapSerKey& b) {
    return std::tie(a.epoch, a.entry, a.phase, a.bottom, a.prio, a.pos,
                    a.node, a.issue_seq) <
           std::tie(b.epoch, b.entry, b.phase, b.bottom, b.prio, b.pos,
                    b.node, b.issue_seq);
  }
};

inline std::string describe(const skeap::OpRecord& r) {
  std::ostringstream os;
  os << (r.is_insert ? "Ins" : "Del") << "[node " << r.node << " seq "
     << r.issue_seq << " epoch " << r.epoch << " entry " << r.entry;
  if (r.bottom) {
    os << " ⊥";
  } else {
    os << " (p" << r.prio << ",pos" << r.pos << ") elem "
       << to_string(r.element);
  }
  os << "]";
  return os.str();
}

}  // namespace detail

/// Verify a Skeap trace: completeness, sequential consistency and heap
/// consistency. The trace must contain every operation of the run.
inline CheckResult check_skeap_trace(std::vector<skeap::OpRecord> trace) {
  using detail::SkeapSerKey;

  for (const auto& r : trace) {
    if (!r.completed) {
      return CheckResult::failure("incomplete operation: " +
                                  detail::describe(r));
    }
  }

  // --- Local consistency: per node, ≺ respects issue order. -------------
  std::map<NodeId, std::vector<skeap::OpRecord>> by_node;
  for (const auto& r : trace) by_node[r.node].push_back(r);
  for (auto& [node, ops] : by_node) {
    std::sort(ops.begin(), ops.end(),
              [](const auto& a, const auto& b) {
                return a.issue_seq < b.issue_seq;
              });
    for (std::size_t i = 1; i < ops.size(); ++i) {
      if (!(SkeapSerKey::of(ops[i - 1]) < SkeapSerKey::of(ops[i]))) {
        return CheckResult::failure(
            "local consistency violated at node " + std::to_string(node) +
            ": " + detail::describe(ops[i - 1]) + " !< " +
            detail::describe(ops[i]));
      }
    }
  }

  // --- Heap consistency: sequential replay along ≺. ---------------------
  std::sort(trace.begin(), trace.end(),
            [](const auto& a, const auto& b) {
              return SkeapSerKey::of(a) < SkeapSerKey::of(b);
            });

  std::map<std::pair<Priority, Position>, Element> heap;
  std::set<ElementId> inserted_ids;
  std::set<ElementId> deleted_ids;

  for (const auto& r : trace) {
    if (r.is_insert) {
      if (r.prio != r.element.prio) {
        return CheckResult::failure("insert assigned to wrong priority: " +
                                    detail::describe(r));
      }
      if (!inserted_ids.insert(r.element.id).second) {
        return CheckResult::failure("element inserted twice: " +
                                    detail::describe(r));
      }
      auto [it, fresh] = heap.emplace(std::make_pair(r.prio, r.pos),
                                      r.element);
      if (!fresh) {
        return CheckResult::failure("position assigned twice: " +
                                    detail::describe(r));
      }
    } else if (r.bottom) {
      if (!heap.empty()) {
        return CheckResult::failure(
            "DeleteMin returned ⊥ while the heap held " +
            std::to_string(heap.size()) + " elements: " +
            detail::describe(r));
      }
    } else {
      if (heap.empty()) {
        return CheckResult::failure("DeleteMin matched on an empty heap: " +
                                    detail::describe(r));
      }
      const auto min_it = heap.begin();
      if (min_it->first != std::make_pair(r.prio, r.pos)) {
        return CheckResult::failure(
            "DeleteMin did not remove the minimum: expected (p" +
            std::to_string(min_it->first.first) + ",pos" +
            std::to_string(min_it->first.second) + ") got " +
            detail::describe(r));
      }
      if (min_it->second != r.element) {
        return CheckResult::failure("matching mismatch: stored " +
                                    to_string(min_it->second) + " vs " +
                                    detail::describe(r));
      }
      if (!deleted_ids.insert(r.element.id).second) {
        return CheckResult::failure("element deleted twice: " +
                                    detail::describe(r));
      }
      heap.erase(min_it);
    }
  }
  return CheckResult{};
}

namespace detail {

inline std::string describe(const seap::SeapOpRecord& r) {
  std::ostringstream os;
  os << (r.is_insert ? "Ins" : "Del") << "[node " << r.node << " seq "
     << r.issue_seq << " cycle " << r.cycle;
  if (r.bottom) {
    os << " ⊥";
  } else if (!r.is_insert) {
    os << " pos " << r.pos << " elem " << to_string(r.element);
  } else {
    os << " elem " << to_string(r.element);
  }
  os << "]";
  return os.str();
}

}  // namespace detail

/// Verify a Seap trace: serializability and heap consistency under the
/// phase-structured order ≺ of Lemma 5.2 — all inserts of a cycle precede
/// all its deletes, deletes are ordered by their assigned position with ⊥
/// last, and cycles follow one another. Per cycle, the matched deletes
/// must remove exactly the min(d, |heap|) smallest elements of the heap
/// contents at that point, and ⊥ appears only when the heap ran dry.
/// (Seap does not claim local consistency — Section 5 trades it for the
/// O(log n)-bit messages — so it is not checked.)
inline CheckResult check_seap_trace(std::vector<seap::SeapOpRecord> trace) {
  for (const auto& r : trace) {
    if (!r.completed) {
      return CheckResult::failure("incomplete operation: " +
                                  detail::describe(r));
    }
  }

  std::map<std::uint64_t, std::vector<const seap::SeapOpRecord*>> by_cycle;
  std::uint64_t max_cycle = 0;
  for (const auto& r : trace) {
    by_cycle[r.cycle].push_back(&r);
    max_cycle = std::max(max_cycle, r.cycle);
  }

  std::multiset<Element> heap;
  std::set<ElementId> inserted_ids, deleted_ids;

  for (std::uint64_t cycle = 0; cycle <= max_cycle; ++cycle) {
    auto it = by_cycle.find(cycle);
    if (it == by_cycle.end()) continue;

    // Insert phase of the cycle.
    for (const auto* r : it->second) {
      if (!r->is_insert) continue;
      if (!inserted_ids.insert(r->element.id).second) {
        return CheckResult::failure("element inserted twice: " +
                                    detail::describe(*r));
      }
      heap.insert(r->element);
    }

    // DeleteMin phase: the matched deletes must be exactly the smallest
    // min(d, |heap|) elements; positions must be distinct in [1, d].
    std::vector<const seap::SeapOpRecord*> deletes;
    for (const auto* r : it->second) {
      if (!r->is_insert) deletes.push_back(r);
    }
    if (deletes.empty()) continue;

    std::set<Position> positions;
    std::multiset<Element> matched;
    std::size_t bottoms = 0;
    for (const auto* r : deletes) {
      if (!positions.insert(r->pos).second) {
        return CheckResult::failure("position assigned twice: " +
                                    detail::describe(*r));
      }
      if (r->bottom) {
        ++bottoms;
      } else {
        matched.insert(r->element);
        if (!deleted_ids.insert(r->element.id).second) {
          return CheckResult::failure("element deleted twice: " +
                                      detail::describe(*r));
        }
      }
    }
    const std::size_t expect_matched = std::min(deletes.size(), heap.size());
    if (matched.size() != expect_matched) {
      return CheckResult::failure(
          "cycle " + std::to_string(cycle) + " matched " +
          std::to_string(matched.size()) + " deletes, expected " +
          std::to_string(expect_matched));
    }
    if (bottoms != deletes.size() - expect_matched) {
      return CheckResult::failure("cycle " + std::to_string(cycle) +
                                  " returned ⊥ while elements remained");
    }
    // The matched multiset must equal the k smallest heap elements.
    auto heap_it = heap.begin();
    for (const auto& e : matched) {
      if (heap_it == heap.end() || !(*heap_it == e)) {
        return CheckResult::failure(
            "cycle " + std::to_string(cycle) +
            " did not remove the smallest elements (got " + to_string(e) +
            ")");
      }
      ++heap_it;
    }
    heap.erase(heap.begin(), heap_it);
  }
  return CheckResult{};
}

/// Verify the sequentially consistent Seap variant (the Conclusion's
/// extension): serializability + heap consistency as in check_seap_trace,
/// plus local consistency — each node's operations must appear in the
/// phase-structured order ≺ in their issue order. Under ≺, op A precedes
/// op B iff (cycle_A, phase_A) < (cycle_B, phase_B) where phase is 0 for
/// inserts and 1 for deletes; same-(cycle, phase) pairs of one node are
/// ordered by position/commutativity, which the prefix rule guarantees.
inline CheckResult check_seap_sc_trace(
    const std::vector<seap::SeapOpRecord>& trace) {
  CheckResult base = check_seap_trace(trace);
  if (!base.ok) return base;

  std::map<NodeId, std::vector<const seap::SeapOpRecord*>> by_node;
  for (const auto& r : trace) by_node[r.node].push_back(&r);
  for (auto& [node, ops] : by_node) {
    std::sort(ops.begin(), ops.end(), [](const auto* a, const auto* b) {
      return a->issue_seq < b->issue_seq;
    });
    for (std::size_t i = 1; i < ops.size(); ++i) {
      const auto key = [](const seap::SeapOpRecord* r) {
        return std::make_pair(r->cycle, r->is_insert ? 0 : 1);
      };
      if (key(ops[i - 1]) > key(ops[i])) {
        return CheckResult::failure(
            "local consistency violated at node " + std::to_string(node) +
            ": " + detail::describe(*ops[i - 1]) + " serialized after " +
            detail::describe(*ops[i]));
      }
      // Two deletes of one node in the same cycle must keep issue order
      // of their positions (they were carved as one contiguous chunk).
      if (key(ops[i - 1]) == key(ops[i]) && !ops[i]->is_insert &&
          ops[i - 1]->pos >= ops[i]->pos) {
        return CheckResult::failure(
            "same-cycle delete positions out of issue order at node " +
            std::to_string(node));
      }
    }
  }
  return CheckResult{};
}

}  // namespace sks::core
