// Plain-text causal log exporter.
//
// One line per event, in causal (seq) order, with the interned names
// resolved. This is the human-greppable format, the payload of the golden
// trace tests (it is deterministic for a fixed seed), and the fallback
// when no Perfetto UI is at hand.
//
//   seq=17 round=3 deliver v2<-v0 action=skeap.batch_up bits=112
//   seq=18 round=3 phase-begin v0 span=skeap.phase2.assign epoch=0
#pragma once

#include <cstdio>
#include <ostream>
#include <string>

#include "trace/tracer.hpp"

namespace sks::trace {

inline std::string node_str(NodeId v) {
  return v == kNoNode ? std::string("-") : "v" + std::to_string(v);
}

inline std::string to_line(const Trace& t, const Event& e) {
  std::string line = "seq=" + std::to_string(e.seq) +
                     " round=" + std::to_string(e.round) + " " +
                     to_string(e.kind);
  switch (e.kind) {
    case EventKind::kSend:
    case EventKind::kDrop:
    case EventKind::kDuplicate:
    case EventKind::kCorrupt:
    case EventKind::kQuarantine:
    case EventKind::kStall:
      line += " " + node_str(e.node) + "->" + node_str(e.peer) +
              " action=" + action_name(t, e.label) +
              " bits=" + std::to_string(e.value);
      break;
    case EventKind::kDeliver:
      line += " " + node_str(e.node) + "<-" + node_str(e.peer) +
              " action=" + action_name(t, e.label) +
              " bits=" + std::to_string(e.value);
      break;
    case EventKind::kPhaseBegin:
    case EventKind::kPhaseEnd:
      line += " " + node_str(e.node) + " span=" + span_name(t, e.label) +
              " epoch=" + std::to_string(e.epoch);
      break;
    case EventKind::kEpochBegin:
    case EventKind::kEpochEnd:
      line += " epoch=" + std::to_string(e.epoch);
      break;
    case EventKind::kNodeJoin:
    case EventKind::kNodeLeave:
    case EventKind::kCrash:
    case EventKind::kRestart:
    case EventKind::kSuspect:
    case EventKind::kDeclareDead:
    case EventKind::kRecover:
    case EventKind::kScrub:
    case EventKind::kDigestMismatch:
      line += " " + node_str(e.node);
      break;
    case EventKind::kAnnotation:
      line += " " + node_str(e.node) + " " + span_name(t, e.label) + "=" +
              std::to_string(e.value);
      break;
    case EventKind::kRoundBegin:
      break;
  }
  return line;
}

inline void write_text(const Trace& t, std::ostream& os) {
  os << "# trace nodes=" << t.num_nodes << " events=" << t.events.size()
     << "\n";
  for (const Event& e : t.events) os << to_line(t, e) << "\n";
}

inline std::string to_text(const Trace& t) {
  std::string out = "# trace nodes=" + std::to_string(t.num_nodes) +
                    " events=" + std::to_string(t.events.size()) + "\n";
  for (const Event& e : t.events) {
    out += to_line(t, e);
    out += "\n";
  }
  return out;
}

}  // namespace sks::trace
