// Per-phase / per-epoch / per-action summaries of a captured trace.
//
// This is the machine-readable run-report side of the tracing subsystem:
// a single replay of the event list in causal (seq) order attributes every
// delivered message to the protocol phase open on the receiving node at
// that moment, and rolls the result up into the per-phase quantities the
// paper's lemmas speak about — rounds, messages, bits, and per-node
// per-round congestion by phase.
//
// Phase spans may nest (Skeap's anchor opens Phase 2/3 inside its own
// Phase 1 span) and may overlap across epochs when batches pipeline, so
// each node carries a stack of open spans keyed by (span, epoch); a
// deliver is charged to the innermost open span.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/tracer.hpp"

namespace sks::trace {

struct PhaseSummary {
  std::string phase;            ///< span name ("(no phase)" = unattributed)
  std::uint64_t spans = 0;      ///< opened spans with this name
  std::uint64_t rounds = 0;     ///< sum of span lengths in rounds
  std::uint64_t messages = 0;   ///< deliveries attributed to the phase
  std::uint64_t bits = 0;       ///< bits of those deliveries
  std::uint64_t max_congestion = 0;  ///< max msgs one node got in one round
};

struct EpochSummary {
  std::uint64_t epoch = 0;
  std::uint64_t rounds = 0;     ///< kEpochBegin → kEpochEnd
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
};

struct ActionSummary {
  std::string action;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
};

struct TraceSummary {
  std::size_t num_nodes = 0;
  std::uint64_t rounds = 0;        ///< highest round stamped on any event
  std::uint64_t sends = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t total_bits = 0;    ///< bits of delivered messages
  std::uint64_t drops = 0;         ///< fault-injected channel losses
  std::uint64_t duplicates = 0;    ///< fault-injected channel duplications
  std::uint64_t crashes = 0;       ///< node crash events
  std::uint64_t restarts = 0;      ///< node restart events
  std::uint64_t suspects = 0;      ///< failure-detector suspicions raised
  std::uint64_t declared_dead = 0; ///< suspicions that timed out
  std::uint64_t recoveries = 0;    ///< suspected nodes reintegrated
  std::uint64_t corruptions = 0;   ///< corrupted frames rejected pre-decode
  std::uint64_t quarantines = 0;   ///< poison records abandoned by senders
  std::uint64_t scrubs = 0;        ///< scrub-pass owner audits
  std::uint64_t digest_mismatches = 0;  ///< failed replica digest checks
  std::uint64_t stalls = 0;        ///< sends parked by the flow window
  std::vector<PhaseSummary> phases;
  std::vector<EpochSummary> epochs;
  std::vector<ActionSummary> actions;
};

inline TraceSummary summarize(const Trace& trace) {
  TraceSummary out;
  out.num_nodes = trace.num_nodes;

  struct OpenSpan {
    std::uint32_t span = 0;
    std::uint64_t epoch = 0;
    std::uint64_t begin_round = 0;
    std::uint64_t last_round = 0;  ///< congestion run tracking
    std::uint64_t run = 0;         ///< deliveries to this node this round
  };
  struct PhaseAgg {
    std::uint64_t spans = 0, rounds = 0, messages = 0, bits = 0, cong = 0;
  };
  struct EpochAgg {
    std::uint64_t begin_round = 0, end_round = 0, messages = 0, bits = 0;
    bool closed = false;
  };

  std::map<NodeId, std::vector<OpenSpan>> open;  ///< per-node span stacks
  std::map<std::uint32_t, PhaseAgg> phases;      ///< by SpanId
  PhaseAgg unattributed;
  /// (last round, run length) per node for deliveries outside any span.
  std::map<NodeId, std::pair<std::uint64_t, std::uint64_t>> bare_run;
  std::map<std::uint64_t, EpochAgg> epochs;
  std::map<std::uint32_t, ActionSummary> actions;  ///< by ActionId
  std::vector<std::uint64_t> open_epochs;  ///< epochs currently running

  for (const Event& e : trace.events) {
    out.rounds = std::max(out.rounds, e.round);
    switch (e.kind) {
      case EventKind::kSend:
        ++out.sends;
        break;
      case EventKind::kDrop:
        ++out.drops;
        break;
      case EventKind::kDuplicate:
        ++out.duplicates;
        break;
      case EventKind::kCrash:
        ++out.crashes;
        break;
      case EventKind::kRestart:
        ++out.restarts;
        break;
      case EventKind::kSuspect:
        ++out.suspects;
        break;
      case EventKind::kDeclareDead:
        ++out.declared_dead;
        break;
      case EventKind::kRecover:
        ++out.recoveries;
        break;
      case EventKind::kCorrupt:
        ++out.corruptions;
        break;
      case EventKind::kQuarantine:
        ++out.quarantines;
        break;
      case EventKind::kScrub:
        ++out.scrubs;
        break;
      case EventKind::kDigestMismatch:
        ++out.digest_mismatches;
        break;
      case EventKind::kStall:
        ++out.stalls;
        break;
      case EventKind::kDeliver: {
        ++out.deliveries;
        out.total_bits += e.value;
        auto& act = actions[e.label];
        ++act.messages;
        act.bits += e.value;
        for (std::uint64_t ep : open_epochs) {
          auto& ea = epochs[ep];
          ++ea.messages;
          ea.bits += e.value;
        }
        auto it = open.find(e.node);
        if (it != open.end() && !it->second.empty()) {
          OpenSpan& top = it->second.back();
          top.run = top.last_round == e.round ? top.run + 1 : 1;
          top.last_round = e.round;
          PhaseAgg& pa = phases[top.span];
          ++pa.messages;
          pa.bits += e.value;
          pa.cong = std::max(pa.cong, top.run);
        } else {
          auto& [last, run] = bare_run[e.node];
          run = last == e.round ? run + 1 : 1;
          last = e.round;
          ++unattributed.messages;
          unattributed.bits += e.value;
          unattributed.cong = std::max(unattributed.cong, run);
        }
        break;
      }
      case EventKind::kPhaseBegin: {
        OpenSpan s;
        s.span = e.label;
        s.epoch = e.epoch;
        s.begin_round = e.round;
        open[e.node].push_back(s);
        ++phases[e.label].spans;
        break;
      }
      case EventKind::kPhaseEnd: {
        auto it = open.find(e.node);
        if (it == open.end()) break;
        auto& stack = it->second;
        // Close the innermost matching span (pipelined epochs can leave
        // an older same-name span below it).
        for (std::size_t i = stack.size(); i > 0; --i) {
          OpenSpan& s = stack[i - 1];
          if (s.span == e.label && s.epoch == e.epoch) {
            phases[s.span].rounds += e.round - s.begin_round;
            stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i - 1));
            break;
          }
        }
        break;
      }
      case EventKind::kEpochBegin: {
        epochs[e.epoch].begin_round = e.round;
        open_epochs.push_back(e.epoch);
        break;
      }
      case EventKind::kEpochEnd: {
        auto it = epochs.find(e.epoch);
        if (it != epochs.end()) {
          it->second.end_round = e.round;
          it->second.closed = true;
        }
        open_epochs.erase(
            std::remove(open_epochs.begin(), open_epochs.end(), e.epoch),
            open_epochs.end());
        break;
      }
      default:
        break;
    }
  }

  // Spans never closed count up to the last observed round.
  for (auto& [node, stack] : open) {
    (void)node;
    for (const OpenSpan& s : stack) {
      phases[s.span].rounds += out.rounds - s.begin_round;
    }
  }

  for (const auto& [id, pa] : phases) {
    PhaseSummary ps;
    ps.phase = span_name(trace, id);
    ps.spans = pa.spans;
    ps.rounds = pa.rounds;
    ps.messages = pa.messages;
    ps.bits = pa.bits;
    ps.max_congestion = pa.cong;
    out.phases.push_back(std::move(ps));
  }
  if (unattributed.messages > 0) {
    PhaseSummary ps;
    ps.phase = "(no phase)";
    ps.messages = unattributed.messages;
    ps.bits = unattributed.bits;
    ps.max_congestion = unattributed.cong;
    out.phases.push_back(std::move(ps));
  }
  std::sort(out.phases.begin(), out.phases.end(),
            [](const PhaseSummary& a, const PhaseSummary& b) {
              return a.phase < b.phase;
            });

  for (const auto& [ep, ea] : epochs) {
    EpochSummary es;
    es.epoch = ep;
    es.rounds = (ea.closed ? ea.end_round : out.rounds) - ea.begin_round;
    es.messages = ea.messages;
    es.bits = ea.bits;
    out.epochs.push_back(es);
  }

  for (auto& [id, act] : actions) {
    act.action = action_name(trace, id);
    out.actions.push_back(act);
  }
  std::sort(out.actions.begin(), out.actions.end(),
            [](const ActionSummary& a, const ActionSummary& b) {
              return a.action < b.action;
            });
  return out;
}

}  // namespace sks::trace
