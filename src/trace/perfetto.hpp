// Perfetto / chrome://tracing JSON exporter.
//
// Emits the Trace Event Format JSON that ui.perfetto.dev and
// chrome://tracing load directly:
//
//   * one thread track per node ("node 3"), plus track 0 ("cluster") for
//     cluster-wide epoch spans,
//   * protocol-phase spans as complete ("X") duration events on the
//     hosting node's track (Skeap's Phase 1-4 machine, Seap's cycle
//     phases, KSelect's Phase 1/2/3),
//   * send/deliver as instant ("i") events carrying action, peer, bits
//     and the causal seq,
//   * a "delivered/round" counter track, and annotations (e.g. KSelect
//     candidate-set sizes) as counter series.
//
// One simulated round maps to 1 ms (1000 us) of trace time, so round
// counts read directly off the Perfetto ruler; events within one round
// are spread over the millisecond in causal order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "trace/tracer.hpp"

namespace sks::trace {

namespace detail {

inline void json_escaped(std::FILE* f, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      std::fprintf(f, "\\%c", c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(f, "\\u%04x", c);
    } else {
      std::fputc(c, f);
    }
  }
}

/// Track id of a node: 0 is the cluster-wide track.
inline std::uint64_t tid_of(NodeId v) {
  return v == kNoNode ? 0 : static_cast<std::uint64_t>(v) + 1;
}

}  // namespace detail

inline void write_perfetto_json(const Trace& t, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  SKS_CHECK_MSG(f != nullptr, "cannot open trace output '" << path << "'");
  std::fprintf(f, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  std::fprintf(f,
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
               "\"args\":{\"name\":\"skeap-seap simulation\"}}");
  std::fprintf(f,
               ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":0,\"args\":{\"name\":\"cluster\"}}");
  for (std::size_t v = 0; v < t.num_nodes; ++v) {
    std::fprintf(f,
                 ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%llu,\"args\":{\"name\":\"node %zu\"}}",
                 static_cast<unsigned long long>(v + 1), v);
  }
  // Keep the cluster track above the node tracks.
  std::fprintf(f,
               ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":0,\"args\":{\"sort_index\":-1}}");

  // ts = round * 1000 + within-round causal offset (clamped to the round's
  // millisecond).
  std::uint64_t cur_round = ~0ull, in_round = 0;
  auto ts_of = [&](const Event& e) {
    if (e.round != cur_round) {
      cur_round = e.round;
      in_round = 0;
    }
    const std::uint64_t off = in_round < 999 ? in_round : 999;
    ++in_round;
    return e.round * 1000 + off;
  };

  // Open-span bookkeeping so phase/epoch spans become "X" events with a
  // duration; unmatched spans are closed at the trace's last round.
  struct Open {
    std::uint32_t label = 0;
    std::uint64_t epoch = 0;
    std::uint64_t ts = 0;
    NodeId node = kNoNode;
    bool is_epoch = false;
  };
  std::vector<Open> open;
  std::uint64_t last_round = 0;
  for (const Event& e : t.events) last_round = std::max(last_round, e.round);

  std::uint64_t delivered_this_round = 0;
  std::uint64_t counter_round = 0;
  auto flush_counter = [&](std::uint64_t upto_round) {
    // Emit one "delivered/round" sample per finished round.
    while (counter_round < upto_round) {
      std::fprintf(f,
                   ",\n{\"name\":\"delivered/round\",\"ph\":\"C\",\"pid\":1,"
                   "\"ts\":%llu,\"args\":{\"messages\":%llu}}",
                   static_cast<unsigned long long>(counter_round * 1000),
                   static_cast<unsigned long long>(delivered_this_round));
      delivered_this_round = 0;
      ++counter_round;
    }
  };

  auto emit_span = [&](const Open& o, std::uint64_t end_ts) {
    const std::string name = o.is_epoch
                                 ? "epoch " + std::to_string(o.epoch)
                                 : span_name(t, o.label);
    const std::uint64_t dur = end_ts > o.ts ? end_ts - o.ts : 1;
    std::fprintf(f, ",\n{\"name\":\"");
    detail::json_escaped(f, name);
    std::fprintf(f,
                 "\",\"ph\":\"X\",\"pid\":1,\"tid\":%llu,\"ts\":%llu,"
                 "\"dur\":%llu,\"args\":{\"epoch\":%llu}}",
                 static_cast<unsigned long long>(detail::tid_of(o.node)),
                 static_cast<unsigned long long>(o.ts),
                 static_cast<unsigned long long>(dur),
                 static_cast<unsigned long long>(o.epoch));
  };

  for (const Event& e : t.events) {
    flush_counter(e.round);
    const std::uint64_t ts = ts_of(e);
    switch (e.kind) {
      case EventKind::kSend:
      case EventKind::kDeliver: {
        if (e.kind == EventKind::kDeliver) ++delivered_this_round;
        std::fprintf(f, ",\n{\"name\":\"");
        detail::json_escaped(f, action_name(t, e.label));
        std::fprintf(
            f,
            "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%llu,"
            "\"ts\":%llu,\"args\":{\"dir\":\"%s\",\"peer\":%lld,"
            "\"bits\":%llu,\"seq\":%llu}}",
            static_cast<unsigned long long>(detail::tid_of(e.node)),
            static_cast<unsigned long long>(ts),
            e.kind == EventKind::kSend ? "send" : "deliver",
            e.peer == kNoNode ? -1LL : static_cast<long long>(e.peer),
            static_cast<unsigned long long>(e.value),
            static_cast<unsigned long long>(e.seq));
        break;
      }
      case EventKind::kPhaseBegin: {
        Open o;
        o.label = e.label;
        o.epoch = e.epoch;
        o.ts = ts;
        o.node = e.node;
        open.push_back(o);
        break;
      }
      case EventKind::kPhaseEnd: {
        for (std::size_t i = open.size(); i > 0; --i) {
          Open& o = open[i - 1];
          if (!o.is_epoch && o.node == e.node && o.label == e.label &&
              o.epoch == e.epoch) {
            emit_span(o, ts);
            open.erase(open.begin() + static_cast<std::ptrdiff_t>(i - 1));
            break;
          }
        }
        break;
      }
      case EventKind::kEpochBegin: {
        Open o;
        o.epoch = e.epoch;
        o.ts = ts;
        o.is_epoch = true;
        open.push_back(o);
        break;
      }
      case EventKind::kEpochEnd: {
        for (std::size_t i = open.size(); i > 0; --i) {
          Open& o = open[i - 1];
          if (o.is_epoch && o.epoch == e.epoch) {
            emit_span(o, ts);
            open.erase(open.begin() + static_cast<std::ptrdiff_t>(i - 1));
            break;
          }
        }
        break;
      }
      case EventKind::kNodeJoin:
      case EventKind::kNodeLeave:
      case EventKind::kCrash:
      case EventKind::kRestart:
      case EventKind::kSuspect:
      case EventKind::kDeclareDead:
      case EventKind::kRecover:
      case EventKind::kScrub:
      case EventKind::kDigestMismatch: {
        std::fprintf(
            f,
            ",\n{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"p\",\"pid\":1,"
            "\"tid\":%llu,\"ts\":%llu,\"args\":{\"node\":%llu}}",
            to_string(e.kind),
            static_cast<unsigned long long>(detail::tid_of(e.node)),
            static_cast<unsigned long long>(ts),
            static_cast<unsigned long long>(e.node));
        break;
      }
      case EventKind::kDrop:
      case EventKind::kDuplicate:
      case EventKind::kCorrupt:
      case EventKind::kQuarantine:
      case EventKind::kStall: {
        // Fault-injection channel events, shown on the sender's track.
        std::fprintf(f, ",\n{\"name\":\"%s ", to_string(e.kind));
        detail::json_escaped(f, action_name(t, e.label));
        std::fprintf(
            f,
            "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%llu,"
            "\"ts\":%llu,\"args\":{\"peer\":%lld,\"bits\":%llu,"
            "\"seq\":%llu}}",
            static_cast<unsigned long long>(detail::tid_of(e.node)),
            static_cast<unsigned long long>(ts),
            e.peer == kNoNode ? -1LL : static_cast<long long>(e.peer),
            static_cast<unsigned long long>(e.value),
            static_cast<unsigned long long>(e.seq));
        break;
      }
      case EventKind::kAnnotation: {
        std::fprintf(f, ",\n{\"name\":\"");
        detail::json_escaped(f, span_name(t, e.label));
        std::fprintf(f,
                     "\",\"ph\":\"C\",\"pid\":1,\"ts\":%llu,"
                     "\"args\":{\"value\":%llu}}",
                     static_cast<unsigned long long>(ts),
                     static_cast<unsigned long long>(e.value));
        break;
      }
      case EventKind::kRoundBegin:
        break;
    }
  }
  flush_counter(last_round + 1);
  // Close anything still open at the end of the capture window.
  for (const Open& o : open) emit_span(o, (last_round + 1) * 1000);
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

}  // namespace sks::trace
