// Event tracing for simulated executions.
//
// The paper's claims are all per-phase quantities (O(log n) rounds per
// Skeap epoch, per-phase congestion, KSelect candidate-set shrinkage), so
// window-level metric scalars are not enough to localize a regression.
// The Tracer captures one execution as a causally ordered event trace:
// every send/deliver, round boundary, epoch boundary, protocol-phase
// transition and churn event, in the spirit of the event-structure view of
// asynchronous schedules (a schedule is a sequence of send/deliver
// events). Exporters under src/trace/ render a trace for humans
// (Perfetto/chrome://tracing JSON, plain-text causal log) and machines
// (compact binary dump, per-phase summaries).
//
// Overhead contract:
//  * Disabled (the default), the tracer costs one predictable branch per
//    hook site and performs zero heap allocations — the zero-alloc test
//    and the BM_SimulatorRoundTrip budget both hold with the tracer
//    compiled in.
//  * Enabled, every record is a fixed-size POD appended to a per-category
//    buffer; no strings are touched on the hot path (action names are the
//    interned ActionRegistry ids, span names are interned per tracer on
//    first use and must be string literals / static storage).
//
// Causal order: the global `seq` counter stamps a total order consistent
// with causality; replaying a trace in seq order replays the execution's
// happens-before order (Lamport-style: each event carries (round, seq,
// from, to, action, bits)).
//
// Sharded execution (sim/network.hpp): while a shard runs, its thread
// installs a TraceSink via exchange_thread_sink(); every hook then
// appends to that thread-private sink instead of the shared buffers. At
// the round barrier the coordinator folds the sinks back in shard-major
// order, assigning global seq numbers there — so the folded order is a
// pure function of the shard map, never of thread scheduling, and with
// one shard it is byte-identical to the direct (unsharded) path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/payload.hpp"

namespace sks::trace {

/// Dense id of an interned span/annotation name (per-tracer table).
using SpanId = std::uint32_t;

enum class EventKind : std::uint8_t {
  kSend = 0,     ///< message enqueued        (node=from, peer=to)
  kDeliver,      ///< message handed to node  (node=to, peer=from)
  kRoundBegin,   ///< simulator round boundary
  kEpochBegin,   ///< cluster-wide epoch/cycle started
  kEpochEnd,     ///< cluster-wide epoch/cycle quiesced
  kPhaseBegin,   ///< protocol phase span opened on `node`
  kPhaseEnd,     ///< protocol phase span closed on `node`
  kNodeJoin,     ///< churn: node joined the running system
  kNodeLeave,    ///< churn: node left the running system
  kAnnotation,   ///< named value attached to a node at a point in time
  // Fault-injection events (src/sim/faults.hpp). Appended after the
  // original kinds so recorded traces and golden files keep their values.
  kDrop,         ///< message lost in the channel (node=from, peer=to)
  kDuplicate,    ///< channel duplicated a message (node=from, peer=to)
  kCrash,        ///< node crashed (blackholes its channel, skips activate)
  kRestart,      ///< crashed node came back with its state intact
  // Failure-detector events (src/recovery/). Appended after the fault
  // kinds, again to keep recorded traces and golden files stable. The
  // node field is the *subject* (the monitored node), recorded by the
  // monitor that observed the transition.
  kSuspect,      ///< a monitor stopped hearing from the node
  kDeclareDead,  ///< the suspicion timed out: node declared crash-stopped
  kRecover,      ///< a suspected node spoke again and was reintegrated
  // Data-integrity events (checksummed frames + replica digests).
  // Appended after the detector kinds to keep recorded values stable.
  kCorrupt,         ///< corrupted frame rejected pre-decode (node=from)
  kQuarantine,      ///< poison record abandoned by sender (node=from)
  kScrub,           ///< scrub pass audited this owner's replica digests
  kDigestMismatch,  ///< a replica digest check failed on `node`
  // Flow-control events (ReliableConfig::max_in_flight). Appended after
  // the integrity kinds to keep recorded trace values stable.
  kStall,           ///< send parked by a full flow window (node=from)
};

inline const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kSend: return "send";
    case EventKind::kDeliver: return "deliver";
    case EventKind::kRoundBegin: return "round";
    case EventKind::kEpochBegin: return "epoch-begin";
    case EventKind::kEpochEnd: return "epoch-end";
    case EventKind::kPhaseBegin: return "phase-begin";
    case EventKind::kPhaseEnd: return "phase-end";
    case EventKind::kNodeJoin: return "join";
    case EventKind::kNodeLeave: return "leave";
    case EventKind::kAnnotation: return "annotate";
    case EventKind::kDrop: return "drop";
    case EventKind::kDuplicate: return "duplicate";
    case EventKind::kCrash: return "crash";
    case EventKind::kRestart: return "restart";
    case EventKind::kSuspect: return "suspect";
    case EventKind::kDeclareDead: return "declare-dead";
    case EventKind::kRecover: return "recover";
    case EventKind::kCorrupt: return "corrupt";
    case EventKind::kQuarantine: return "quarantine";
    case EventKind::kScrub: return "scrub";
    case EventKind::kDigestMismatch: return "digest-mismatch";
    case EventKind::kStall: return "window-stall";
  }
  return "?";
}

/// Append buffers are split by category so dense message traffic never
/// interleaves with the (much rarer) span/lifecycle records in memory;
/// exporters merge the categories back into seq order.
enum class Category : std::uint8_t { kMessage = 0, kSpan = 1, kLifecycle = 2 };
inline constexpr std::size_t kNumCategories = 3;

/// One fixed-size trace record (48 bytes, POD — the binary dump writes
/// these verbatim).
struct Event {
  std::uint64_t seq = 0;    ///< global causal sequence number
  std::uint64_t round = 0;  ///< simulator round the event occurred in
  std::uint64_t value = 0;  ///< message bits / annotation value
  std::uint64_t epoch = 0;  ///< epoch/cycle/session for span + epoch events
  NodeId node = kNoNode;    ///< send: sender; deliver: receiver; spans: host
  NodeId peer = kNoNode;    ///< send: receiver; deliver: sender
  std::uint32_t label = 0;  ///< ActionId (messages) / SpanId (spans)
  EventKind kind = EventKind::kSend;
};
static_assert(sizeof(Event) == 48, "Event must stay a fixed 48-byte record");

/// The category an event folds into. Matches the direct recording path:
/// channel events are dense (kMessage), epoch/phase spans are kSpan,
/// everything else (round boundaries, churn, faults, detector
/// transitions, annotations) is kLifecycle.
inline constexpr Category category_of(EventKind k) {
  switch (k) {
    case EventKind::kSend:
    case EventKind::kDeliver:
    case EventKind::kDrop:
    case EventKind::kDuplicate:
    case EventKind::kCorrupt:
    case EventKind::kQuarantine:
    case EventKind::kStall:
      return Category::kMessage;
    case EventKind::kEpochBegin:
    case EventKind::kEpochEnd:
    case EventKind::kPhaseBegin:
    case EventKind::kPhaseEnd:
      return Category::kSpan;
    default:
      return Category::kLifecycle;
  }
}

class Tracer;

/// Live listener for protocol-phase transitions, independent of event
/// recording: attaching one makes the phase hooks fire (enabled() turns
/// true so guarded call sites evaluate) without buffering any Event —
/// the recorded trace stays byte-identical whether or not an observer is
/// attached. The telemetry layer (src/obs/) uses this for wall-clock
/// attribution of phase spans. on_phase may be called concurrently from
/// shard worker threads; implementations synchronize internally.
class PhaseObserver {
 public:
  virtual ~PhaseObserver() = default;
  virtual void on_phase(NodeId node, const char* name, bool begin,
                        std::uint64_t epoch) = 0;
};

/// One shard's private event buffer. Hooks append here while the owning
/// shard executes (no shared mutation, no seq assignment); the
/// coordinator folds sinks back into the tracer at the round barrier.
/// Span/annotation names are interned per sink (the `label` of a
/// kPhaseBegin/kPhaseEnd/kAnnotation indexes `names` until fold remaps it
/// to the tracer's global table); message labels are ActionIds, which are
/// already global.
struct TraceSink {
  Tracer* owner = nullptr;         ///< the tracer this sink folds into
  std::vector<Event> events;       ///< emission order; seq assigned at fold
  std::vector<const char*> names;  ///< sink-local span-name table

  SpanId intern(const char* name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name || std::strcmp(names[i], name) == 0) {
        return static_cast<SpanId>(i);
      }
    }
    names.push_back(name);
    return static_cast<SpanId>(names.size() - 1);
  }

  void push(EventKind kind, NodeId node, NodeId peer, std::uint32_t label,
            std::uint64_t value, std::uint64_t epoch, std::uint64_t round) {
    Event e;
    e.round = round;
    e.value = value;
    e.epoch = epoch;
    e.node = node;
    e.peer = peer;
    e.label = label;
    e.kind = kind;
    events.push_back(e);
  }
};

class Tracer {
 public:
  /// True when hooks should fire: recording is on, or a phase observer
  /// needs the phase hooks to be reached. Call sites guard argument
  /// evaluation with this; the recording paths themselves stay gated on
  /// the recording flag alone, so an observer never perturbs the trace.
  bool enabled() const { return enabled_ || phase_observer_ != nullptr; }
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }

  /// Attach (or detach, with nullptr) a live phase listener. See
  /// PhaseObserver.
  void set_phase_observer(PhaseObserver* obs) { phase_observer_ = obs; }
  PhaseObserver* phase_observer() const { return phase_observer_; }

  /// Drop all recorded events (the name table survives: span ids stay
  /// valid across clears so cached ids at call sites never dangle).
  void clear() {
    for (auto& buf : buffers_) buf.clear();
    seq_ = 0;
  }

  std::size_t num_events() const {
    std::size_t total = 0;
    for (const auto& buf : buffers_) total += buf.size();
    return total;
  }

  // ---- Recording hooks -------------------------------------------------
  // All hooks no-op when disabled; hot-path call sites should additionally
  // guard with enabled() so argument evaluation is skipped too.

  /// Simulator round boundary. Called unconditionally by Network::step so
  /// the tracer's round clock stays correct across enable()/disable().
  void begin_round(std::uint64_t round) {
    round_ = round;
    if (!enabled_) return;
    push(Category::kLifecycle, EventKind::kRoundBegin, kNoNode, kNoNode, 0,
         0, 0);
  }

  /// Message-channel event: kSend / kDrop / kDuplicate are recorded from
  /// the sender's point of view (node=from), kDeliver from the receiver's.
  void message(EventKind kind, NodeId from, NodeId to, sim::ActionId action,
               std::uint64_t bits) {
    if (!enabled_) return;
    const bool at_receiver = kind == EventKind::kDeliver;
    const NodeId node = at_receiver ? to : from;
    const NodeId peer = at_receiver ? from : to;
    if (TraceSink* sink = routed_sink()) {
      sink->push(kind, node, peer, action, bits, 0, round_);
      return;
    }
    push(Category::kMessage, kind, node, peer, action, bits, 0);
  }

  void epoch_begin(std::uint64_t epoch) {
    if (!enabled_) return;
    if (TraceSink* sink = routed_sink()) {
      sink->push(EventKind::kEpochBegin, kNoNode, kNoNode, 0, 0, epoch,
                 round_);
      return;
    }
    push(Category::kSpan, EventKind::kEpochBegin, kNoNode, kNoNode, 0, 0,
         epoch);
  }

  void epoch_end(std::uint64_t epoch) {
    if (!enabled_) return;
    if (TraceSink* sink = routed_sink()) {
      sink->push(EventKind::kEpochEnd, kNoNode, kNoNode, 0, 0, epoch,
                 round_);
      return;
    }
    push(Category::kSpan, EventKind::kEpochEnd, kNoNode, kNoNode, 0, 0,
         epoch);
  }

  /// Open a protocol-phase span on `node`. `name` must have static
  /// storage duration (string literal) — it is interned by pointer first.
  void phase_begin(NodeId node, const char* name, std::uint64_t epoch) {
    if (phase_observer_ != nullptr) {
      phase_observer_->on_phase(node, name, /*begin=*/true, epoch);
    }
    if (!enabled_) return;
    if (TraceSink* sink = routed_sink()) {
      sink->push(EventKind::kPhaseBegin, node, kNoNode, sink->intern(name),
                 0, epoch, round_);
      return;
    }
    push(Category::kSpan, EventKind::kPhaseBegin, node, kNoNode,
         span_id(name), 0, epoch);
  }

  void phase_end(NodeId node, const char* name, std::uint64_t epoch) {
    if (phase_observer_ != nullptr) {
      phase_observer_->on_phase(node, name, /*begin=*/false, epoch);
    }
    if (!enabled_) return;
    if (TraceSink* sink = routed_sink()) {
      sink->push(EventKind::kPhaseEnd, node, kNoNode, sink->intern(name), 0,
                 epoch, round_);
      return;
    }
    push(Category::kSpan, EventKind::kPhaseEnd, node, kNoNode,
         span_id(name), 0, epoch);
  }

  void lifecycle(EventKind kind, NodeId node) {
    if (!enabled_) return;
    if (TraceSink* sink = routed_sink()) {
      sink->push(kind, node, kNoNode, 0, 0, 0, round_);
      return;
    }
    push(Category::kLifecycle, kind, node, kNoNode, 0, 0, 0);
  }

  /// Attach a named value to a node at the current point in the trace
  /// (e.g. KSelect candidate-set sizes). `name` rules as in phase_begin.
  void annotate(NodeId node, const char* name, std::uint64_t value,
                std::uint64_t epoch = 0) {
    if (!enabled_) return;
    if (TraceSink* sink = routed_sink()) {
      sink->push(EventKind::kAnnotation, node, kNoNode, sink->intern(name),
                 value, epoch, round_);
      return;
    }
    push(Category::kLifecycle, EventKind::kAnnotation, node, kNoNode,
         span_id(name), value, epoch);
  }

  // ---- Shard-sink routing ----------------------------------------------

  /// Install `sink` as the routing target for hooks called on this thread
  /// (nullptr = record directly). Returns the previous target so callers
  /// save/restore around shard execution. Routing only applies to sinks
  /// owned by the tracer being recorded into, so nested networks with
  /// their own tracers never cross-contaminate.
  static TraceSink* exchange_thread_sink(TraceSink* sink) {
    TraceSink* prev = tls_sink_;
    tls_sink_ = sink;
    return prev;
  }

  /// Fold one shard sink into the shared buffers, assigning global seq
  /// numbers in emission order and remapping sink-local span labels. The
  /// coordinator calls this shard-major at the round barrier; that call
  /// order *is* the canonical trace order.
  void fold(TraceSink& sink) {
    for (Event e : sink.events) {
      if (e.kind == EventKind::kPhaseBegin ||
          e.kind == EventKind::kPhaseEnd ||
          e.kind == EventKind::kAnnotation) {
        e.label = span_id(sink.names[e.label]);
      }
      e.seq = seq_++;
      buffers_[static_cast<std::size_t>(category_of(e.kind))].push_back(e);
    }
    sink.events.clear();
  }

  // ---- Introspection ---------------------------------------------------

  const std::vector<Event>& category(Category c) const {
    return buffers_[static_cast<std::size_t>(c)];
  }

  SpanId span_id(const char* name) {
    for (std::size_t i = 0; i < span_names_.size(); ++i) {
      if (span_names_[i] == name || std::strcmp(span_names_[i], name) == 0) {
        return static_cast<SpanId>(i);
      }
    }
    span_names_.push_back(name);
    return static_cast<SpanId>(span_names_.size() - 1);
  }

  const std::vector<const char*>& span_names() const { return span_names_; }

  std::uint64_t round() const { return round_; }

 private:
  /// This thread's sink, if it belongs to this tracer (see
  /// exchange_thread_sink).
  TraceSink* routed_sink() const {
    TraceSink* sink = tls_sink_;
    return sink != nullptr && sink->owner == this ? sink : nullptr;
  }

  void push(Category cat, EventKind kind, NodeId node, NodeId peer,
            std::uint32_t label, std::uint64_t value, std::uint64_t epoch) {
    Event e;
    e.seq = seq_++;
    e.round = round_;
    e.value = value;
    e.epoch = epoch;
    e.node = node;
    e.peer = peer;
    e.label = label;
    e.kind = kind;
    buffers_[static_cast<std::size_t>(cat)].push_back(e);
  }

  inline static thread_local TraceSink* tls_sink_ = nullptr;

  bool enabled_ = false;
  PhaseObserver* phase_observer_ = nullptr;
  std::uint64_t round_ = 0;
  std::uint64_t seq_ = 0;
  std::vector<Event> buffers_[kNumCategories];
  std::vector<const char*> span_names_;
};

/// A self-contained, exporter-ready view of one captured execution: the
/// merged (seq-ordered) event list plus the string tables the fixed-size
/// records index into. This is also the unit the binary dump round-trips.
struct Trace {
  std::size_t num_nodes = 0;
  std::vector<Event> events;                ///< merged, ascending seq
  std::vector<std::string> action_names;    ///< by ActionId
  std::vector<std::string> span_names;      ///< by SpanId
};

/// Materialize a tracer's buffers into an exportable Trace. `num_nodes`
/// is the network size at capture time (it sizes the per-node tracks).
inline Trace build_trace(const Tracer& tracer, std::size_t num_nodes) {
  Trace out;
  out.num_nodes = num_nodes;
  out.events.reserve(tracer.num_events());
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    const auto& buf = tracer.category(static_cast<Category>(c));
    out.events.insert(out.events.end(), buf.begin(), buf.end());
  }
  std::sort(out.events.begin(), out.events.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  const sim::ActionRegistry& reg = sim::ActionRegistry::instance();
  out.action_names.reserve(reg.size());
  for (std::size_t a = 0; a < reg.size(); ++a) {
    out.action_names.push_back(reg.name(static_cast<sim::ActionId>(a)));
  }
  for (const char* s : tracer.span_names()) out.span_names.emplace_back(s);
  return out;
}

/// Name helpers tolerating records whose table entry is missing (e.g. a
/// truncated dump): they fall back to a numbered placeholder.
inline std::string action_name(const Trace& t, std::uint32_t id) {
  if (id < t.action_names.size()) return t.action_names[id];
  return "action#" + std::to_string(id);
}

inline std::string span_name(const Trace& t, std::uint32_t id) {
  if (id < t.span_names.size()) return t.span_names[id];
  return "span#" + std::to_string(id);
}

}  // namespace sks::trace
