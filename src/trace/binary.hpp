// Compact binary dump of a Trace, with a loader.
//
// Layout (little-endian, as produced by the simulating host):
//
//   magic   "SKTR"                 4 bytes
//   version u32                    (currently 1)
//   num_nodes u64, num_events u64, num_actions u64, num_spans u64
//   events  num_events * sizeof(Event)   (fixed 48-byte POD records)
//   actions num_actions * (u32 len + bytes)
//   spans   num_spans   * (u32 len + bytes)
//
// The fixed-size event records make the dump ~20 bytes/event smaller than
// the Perfetto JSON and loadable without a JSON parser — this is the
// format `trace_inspect` consumes and CI archives.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "trace/tracer.hpp"

namespace sks::trace {

inline constexpr char kBinaryMagic[4] = {'S', 'K', 'T', 'R'};
inline constexpr std::uint32_t kBinaryVersion = 1;

namespace detail {

inline void put(std::FILE* f, const void* p, std::size_t n) {
  SKS_CHECK_MSG(std::fwrite(p, 1, n, f) == n, "trace dump write failed");
}

inline void get(std::FILE* f, void* p, std::size_t n) {
  SKS_CHECK_MSG(std::fread(p, 1, n, f) == n, "trace dump truncated");
}

template <class T>
void put_value(std::FILE* f, T v) {
  put(f, &v, sizeof(T));
}

template <class T>
T get_value(std::FILE* f) {
  T v{};
  get(f, &v, sizeof(T));
  return v;
}

inline void put_string(std::FILE* f, const std::string& s) {
  put_value<std::uint32_t>(f, static_cast<std::uint32_t>(s.size()));
  put(f, s.data(), s.size());
}

inline std::string get_string(std::FILE* f) {
  const auto len = get_value<std::uint32_t>(f);
  SKS_CHECK_MSG(len < (1u << 20), "implausible string length in trace dump");
  std::string s(len, '\0');
  if (len > 0) get(f, s.data(), len);
  return s;
}

}  // namespace detail

inline void write_binary(const Trace& t, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  SKS_CHECK_MSG(f != nullptr, "cannot open trace dump '" << path << "'");
  detail::put(f, kBinaryMagic, sizeof(kBinaryMagic));
  detail::put_value<std::uint32_t>(f, kBinaryVersion);
  detail::put_value<std::uint64_t>(f, t.num_nodes);
  detail::put_value<std::uint64_t>(f, t.events.size());
  detail::put_value<std::uint64_t>(f, t.action_names.size());
  detail::put_value<std::uint64_t>(f, t.span_names.size());
  if (!t.events.empty()) {
    detail::put(f, t.events.data(), t.events.size() * sizeof(Event));
  }
  for (const auto& s : t.action_names) detail::put_string(f, s);
  for (const auto& s : t.span_names) detail::put_string(f, s);
  std::fclose(f);
}

inline Trace load_binary(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  SKS_CHECK_MSG(f != nullptr, "cannot open trace dump '" << path << "'");
  char magic[4];
  detail::get(f, magic, sizeof(magic));
  SKS_CHECK_MSG(std::memcmp(magic, kBinaryMagic, 4) == 0,
                "'" << path << "' is not a trace dump (bad magic)");
  const auto version = detail::get_value<std::uint32_t>(f);
  SKS_CHECK_MSG(version == kBinaryVersion,
                "unsupported trace dump version " << version);
  Trace t;
  t.num_nodes = detail::get_value<std::uint64_t>(f);
  const auto num_events = detail::get_value<std::uint64_t>(f);
  const auto num_actions = detail::get_value<std::uint64_t>(f);
  const auto num_spans = detail::get_value<std::uint64_t>(f);
  SKS_CHECK_MSG(num_events < (1ull << 32), "implausible trace dump size");
  t.events.resize(num_events);
  if (num_events > 0) {
    detail::get(f, t.events.data(), num_events * sizeof(Event));
  }
  t.action_names.reserve(num_actions);
  for (std::uint64_t i = 0; i < num_actions; ++i) {
    t.action_names.push_back(detail::get_string(f));
  }
  t.span_names.reserve(num_spans);
  for (std::uint64_t i = 0; i < num_spans; ++i) {
    t.span_names.push_back(detail::get_string(f));
  }
  std::fclose(f);
  return t;
}

}  // namespace sks::trace
