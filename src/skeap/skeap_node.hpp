// Protocol Skeap (Section 3): a sequentially consistent distributed heap
// for a constant number of priorities.
//
// Lifecycle of one batch (epoch e):
//   Phase 1 — every host snapshots its buffered operations into a batch
//             preserving local order and contributes it at its leaf; the
//             aggregation tree combines batches entrywise up to the anchor.
//   Phase 2 — the anchor assigns position intervals from its per-priority
//             [first_p, last_p] state.
//   Phase 3 — the assignment is decomposed down the tree against the
//             remembered child sub-batches.
//   Phase 4 — each host turns its assigned (p, pos) pairs into DHT
//             operations: Put(h(p,pos), e) for inserts, Get(h(p,pos))
//             for deletes; Gets that outrun their Puts wait at the owner.
//
// Every operation is recorded in a trace (epoch, entry, kind, p, pos,
// element) from which the semantics checkers in src/core reconstruct the
// serialization order ≺ and verify Definitions 1.1/1.2.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "aggregation/aggregator.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"
#include "dht/dht.hpp"
#include "overlay/membership.hpp"
#include "overlay/overlay_node.hpp"
#include "recovery/recovery.hpp"
#include "skeap/assignment.hpp"
#include "skeap/batch.hpp"

namespace sks::skeap {

/// Domain tag separating Skeap's DHT keyspace from other protocols'.
inline constexpr std::uint64_t kSkeapKeyDomain = 0x53ea0001ULL;

struct SkeapConfig {
  std::size_t num_priorities = 2;
  std::uint64_t hash_seed = 0xb1a5edULL;
  dht::DhtWidths widths;
  recovery::RecoveryConfig recovery;
  /// Admission control: cap on buffered (not yet batched) inserts per
  /// node. At the cap a new insert sheds the worst pending insert —
  /// largest (priority, issue order), the element a correct heap would
  /// return last — or is itself rejected when it is the worst. Deletes
  /// are never shed: retracting a delete would break the client API.
  /// 0 = unbounded (the default).
  std::size_t max_buffered_ops = 0;
};

struct SkeapUp {
  static constexpr const char* kName = "skeap.batch_up";
  Batch batch;
  std::uint64_t size_bits() const { return batch.size_bits(); }
  void encode(wire::WireWriter& w) const { batch.encode(w); }
  static SkeapUp decode(wire::WireReader& r) {
    return SkeapUp{Batch::decode(r)};
  }
};

struct SkeapDown {
  static constexpr const char* kName = "skeap.assign_down";
  BatchAssignment assignment;
  std::uint64_t size_bits() const { return assignment.size_bits(); }
  void encode(wire::WireWriter& w) const { assignment.encode(w); }
  static SkeapDown decode(wire::WireReader& r) {
    return SkeapDown{BatchAssignment::decode(r)};
  }
};

/// One completed (or in-flight) heap operation, for the semantics checker.
struct OpRecord {
  NodeId node = kNoNode;        ///< issuing node (filled when gathering)
  std::uint64_t issue_seq = 0;  ///< per-node issue order
  std::uint64_t epoch = 0;
  std::uint64_t entry = 0;
  bool is_insert = false;
  bool bottom = false;      ///< delete that returned ⊥
  Priority prio = 0;        ///< assigned priority class
  Position pos = 0;         ///< assigned position within the class
  Element element{};        ///< inserted, or returned by the delete
  bool completed = false;
};

class SkeapNode : public overlay::OverlayNode {
 public:
  using DeleteCallback = std::function<void(std::optional<Element>)>;

  SkeapNode(overlay::RouteParams params, SkeapConfig config)
      : OverlayNode(params),
        config_(config),
        hash_(config.hash_seed),
        dht_(*this, config.widths),
        membership_(*this, dht_),
        agg_(*this,
             [](SkeapUp& a, const SkeapUp& b) { a.batch.combine(b.batch); },
             [](const SkeapDown& d, const std::vector<SkeapUp>& children) {
               std::vector<Batch> batches;
               batches.reserve(children.size());
               for (const auto& c : children) batches.push_back(c.batch);
               auto parts = split_assignment(d.assignment, batches);
               std::vector<SkeapDown> downs;
               downs.reserve(parts.size());
               for (auto& p : parts) downs.push_back(SkeapDown{std::move(p)});
               return downs;
             },
             [this](std::uint64_t epoch, const SkeapUp& combined) {
               on_anchor_batch(epoch, combined);
             },
             [this](std::uint64_t epoch, SkeapDown down) {
               on_assignment(epoch, std::move(down.assignment));
             }),
        recovery_(*this, config.recovery) {}

  // ---- Client API ------------------------------------------------------

  /// Buffer an Insert(e); it joins the next batch this node starts. Under
  /// admission control (SkeapConfig::max_buffered_ops) the returned
  /// AdmitResult reports whether e was buffered and which element, if
  /// any, was shed to make room; unbounded nodes always accept.
  AdmitResult insert(const Element& e) {
    SKS_CHECK_MSG(e.prio >= 1 && e.prio <= config_.num_priorities,
                  "priority " << e.prio << " outside P = {1..}"
                              << config_.num_priorities);
    AdmitResult out;
    if (config_.max_buffered_ops != 0 &&
        buffered_inserts_ >= config_.max_buffered_ops) [[unlikely]] {
      // Shed the worst pending insert: largest (priority, issue order)
      // over stored ∪ incoming. The incoming op is the newest, so on a
      // priority tie it is the max and gets rejected itself.
      auto victim = buffered_.end();
      for (auto it = buffered_.begin(); it != buffered_.end(); ++it) {
        if (!it->is_insert) continue;
        if (victim == buffered_.end() ||
            it->element.prio > victim->element.prio ||
            (it->element.prio == victim->element.prio &&
             it->issue_seq > victim->issue_seq)) {
          victim = it;
        }
      }
      net().metrics().record_shed();
      if (victim == buffered_.end() || victim->element.prio <= e.prio) {
        out.accepted = false;
        out.shed = e;
        return out;
      }
      out.shed = victim->element;
      buffered_.erase(victim);
      --buffered_inserts_;
    }
    PendingOp op;
    op.is_insert = true;
    op.element = e;
    op.issue_seq = next_issue_seq_++;
    buffered_.push_back(std::move(op));
    ++buffered_inserts_;
    return out;
  }

  /// Buffer a DeleteMin(); `cb` runs locally with the matched element, or
  /// std::nullopt if the operation was serialized against an empty heap.
  void delete_min(DeleteCallback cb) {
    PendingOp op;
    op.is_insert = false;
    op.callback = std::move(cb);
    op.issue_seq = next_issue_seq_++;
    buffered_.push_back(std::move(op));
  }

  std::size_t buffered_ops() const { return buffered_.size(); }

  // ---- Batch driver ----------------------------------------------------

  /// Phase 1 for the next epoch: snapshot the buffer into a batch (possibly
  /// empty) and contribute it. Returns the epoch started.
  std::uint64_t start_batch() { return start_batch(0); }

  /// Phase 1 with a batch-size cap: snapshot at most `limit` buffered ops
  /// (0 = all), oldest first; the rest stay buffered for a later epoch.
  /// Local issue order is preserved, so sequential consistency is
  /// unaffected by where the batch boundary falls.
  std::uint64_t start_batch(std::size_t limit) {
    const std::uint64_t epoch = next_epoch_++;
    // Phase 1 span: covers this host's contribution and the aggregation
    // up/down passes, until the assignment lands back here (Phase 4).
    // The previous epoch's Phase 4 (its DHT traffic) runs until this batch
    // starts, so close it now.
    trace::Tracer& tr = tracer();
    if (tr.enabled()) {
      if (trace_phase4_open_) {
        tr.phase_end(id(), "skeap.phase4.dht", trace_phase4_epoch_);
        trace_phase4_open_ = false;
      }
      tr.phase_begin(id(), "skeap.phase1.aggregate", epoch);
    }
    Batch batch(config_.num_priorities);
    std::vector<PendingOp> snapshot;
    const std::size_t take =
        limit == 0 ? buffered_.size() : std::min(limit, buffered_.size());
    snapshot.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      PendingOp op = std::move(buffered_.front());
      buffered_.pop_front();
      if (op.is_insert) --buffered_inserts_;
      op.entry = op.is_insert ? batch.record_insert(op.element.prio)
                              : batch.record_delete();
      snapshot.push_back(std::move(op));
    }
    in_flight_.emplace(epoch, std::move(snapshot));
    agg_.contribute(epoch, SkeapUp{std::move(batch)});
    return epoch;
  }

  std::uint64_t epochs_started() const { return next_epoch_; }
  std::uint64_t epochs_completed() const { return epochs_completed_; }

  // ---- Introspection ---------------------------------------------------

  const std::vector<OpRecord>& trace() const { return trace_; }
  const dht::DhtComponent& dht() const { return dht_; }
  dht::DhtComponent& dht() { return dht_; }
  overlay::MembershipComponent& membership() { return membership_; }

  // ---- Churn support (driver-coordinated, between batches) -------------

  /// Synchronize a freshly joined node's epoch counter with the system's.
  void set_next_epoch(std::uint64_t epoch) {
    SKS_CHECK(in_flight_.empty());
    next_epoch_ = epoch;
  }

  /// Hand the anchor's interval state to a node that became the anchor
  /// after churn. Must be called between batches.
  struct AnchorHandover {
    std::optional<AnchorState> state;
    std::uint64_t next_anchor_epoch = 0;
  };
  AnchorHandover take_anchor_state() {
    SKS_CHECK_MSG(pending_anchor_batches_.empty(),
                  "anchor handover during an active batch");
    AnchorHandover out{std::move(anchor_state_), next_anchor_epoch_};
    anchor_state_.reset();
    return out;
  }
  void install_anchor_state(AnchorHandover handover) {
    anchor_state_ = std::move(handover.state);
    next_anchor_epoch_ = handover.next_anchor_epoch;
  }

  /// Anchor-side view of the heap size (valid on the anchor host only).
  std::uint64_t anchor_heap_size() const {
    return anchor_state_ ? anchor_state_->total_occupancy() : 0;
  }

  // ---- Crash recovery (coordinated by runtime/cluster.hpp) -------------
  //
  // With recovery enabled, an epoch is transactional: delete callbacks are
  // deferred and fire only at commit_epoch (acknowledged == committed ==
  // replicated), and begin_epoch_checkpoint/rollback_epoch bracket each
  // attempt so a declared death rewinds the survivors to the pre-epoch
  // state before the epoch is re-run.

  recovery::RecoveryComponent& recovery() { return recovery_; }
  const recovery::RecoveryComponent& recovery() const { return recovery_; }

  /// Snapshot all epoch-mutable state. Taken at every epoch start; the
  /// snapshot doubles as the baseline for this epoch's replica delta.
  void begin_epoch_checkpoint() {
    EpochCheckpoint c;
    c.dht = dht_.take_snapshot();
    c.buffered = buffered_;
    c.next_epoch = next_epoch_;
    c.epochs_completed = epochs_completed_;
    c.next_issue_seq = next_issue_seq_;
    c.anchor_state = anchor_state_;
    c.next_anchor_epoch = next_anchor_epoch_;
    c.trace_len = trace_.size();
    c.phase4_open = trace_phase4_open_;
    c.phase4_epoch = trace_phase4_epoch_;
    ckpt_ = std::move(c);
  }

  /// Rewind to the pre-epoch checkpoint. Requires the network drained to
  /// idle first — outstanding DHT callbacks are dropped wholesale.
  void rollback_epoch() {
    SKS_CHECK_MSG(ckpt_.has_value(), "rollback without a checkpoint");
    const EpochCheckpoint& c = *ckpt_;
    dht_.restore_snapshot(c.dht);
    dht_.clear_client_state();
    agg_.abort_all();
    buffered_ = c.buffered;
    buffered_inserts_ = static_cast<std::size_t>(std::count_if(
        buffered_.begin(), buffered_.end(),
        [](const PendingOp& op) { return op.is_insert; }));
    in_flight_.clear();
    pending_anchor_batches_.clear();
    next_epoch_ = c.next_epoch;
    epochs_completed_ = c.epochs_completed;
    next_issue_seq_ = c.next_issue_seq;
    anchor_state_ = c.anchor_state;
    next_anchor_epoch_ = c.next_anchor_epoch;
    trace_.resize(c.trace_len);
    trace_phase4_open_ = c.phase4_open;
    trace_phase4_epoch_ = c.phase4_epoch;
    deferred_.clear();
  }

  /// Fire the deferred delete acknowledgements, in serialization order.
  void commit_epoch() {
    for (auto& [cb, e] : deferred_) {
      if (cb) cb(e);
    }
    deferred_.clear();
  }

  /// Diff the DHT stores against the pre-epoch snapshot and ship the
  /// changed cells (plus the anchor blob, if hosted here) to the mirrors.
  void send_epoch_deltas() {
    if (recovery_.replica_targets().empty()) return;
    SKS_CHECK_MSG(ckpt_.has_value(), "epoch delta without a checkpoint");
    std::vector<recovery::DeltaEntry> entries;
    dht_.delta_since(ckpt_->dht, [&](std::uint8_t space, Point key,
                                     const std::deque<Element>& elems) {
      entries.push_back(
          recovery::DeltaEntry{space, key, {elems.begin(), elems.end()}});
    });
    auto blob = anchor_blob();
    if (entries.empty() && blob.empty()) return;
    // Fingerprint the FULL post-epoch state (not the delta): the mirror
    // holders audit their staged mirrors against it on apply.
    const std::uint64_t digest = recovery::state_digest(
        full_state_entries(), blob, anchor_state_.has_value());
    recovery_.send_delta(std::move(entries), std::move(blob),
                         anchor_state_.has_value(), digest);
  }

  /// Every stored DHT cell — the out-of-band mirror (re)seed.
  std::vector<recovery::DeltaEntry> full_state_entries() const {
    std::vector<recovery::DeltaEntry> out;
    dht_.full_entries([&](std::uint8_t space, Point key,
                          const std::deque<Element>& elems) {
      out.push_back(
          recovery::DeltaEntry{space, key, {elems.begin(), elems.end()}});
    });
    return out;
  }

  /// Install one cell recovered from a dead node's mirror; the key must
  /// fall on one of this node's (post-repair) ownership arcs.
  void absorb_recovered(std::uint8_t space, Point key,
                        std::vector<Element> elems) {
    for (overlay::VKind k : overlay::kAllKinds) {
      const overlay::VirtualState& st = vstate(k);
      if (overlay::arc_contains(st.self.label, st.succ.label, key)) {
        dht_.absorb_entry(space, k, key, std::move(elems));
        return;
      }
    }
    SKS_CHECK_MSG(false, "recovered key " << key << " not owned by node "
                                          << id());
  }

  /// The anchor's replicable metadata: [next_anchor_epoch, P, (first,
  /// last) per priority]. Empty when this host holds no anchor state.
  std::vector<std::uint64_t> anchor_blob() const {
    if (!anchor_state_) return {};
    std::vector<std::uint64_t> w;
    const std::size_t P = anchor_state_->num_priorities();
    w.reserve(2 + 2 * P);
    w.push_back(next_anchor_epoch_);
    w.push_back(P);
    for (Priority p = 1; p <= P; ++p) {
      w.push_back(anchor_state_->first(p));
      w.push_back(anchor_state_->last(p));
    }
    return w;
  }

  /// Install anchor metadata recovered from the dead anchor's mirror.
  void install_anchor_blob(const std::vector<std::uint64_t>& w) {
    SKS_CHECK_MSG(w.size() >= 2, "malformed skeap anchor blob");
    const std::size_t P = static_cast<std::size_t>(w[1]);
    SKS_CHECK_MSG(w.size() == 2 + 2 * P, "malformed skeap anchor blob");
    next_anchor_epoch_ = w[0];
    AnchorState st(P);
    for (Priority p = 1; p <= P; ++p) {
      st.set_interval(p, w[2 + 2 * (p - 1)], w[3 + 2 * (p - 1)]);
    }
    anchor_state_ = std::move(st);
  }

 private:
  struct PendingOp {
    bool is_insert = false;
    Element element{};
    DeleteCallback callback;
    std::uint64_t issue_seq = 0;
    std::uint64_t entry = 0;
  };

  // Phase 2 (anchor only). Batches must be applied to the interval state
  // in epoch order — with pipelined batches and asynchronous delivery,
  // epoch e+1's aggregation can reach the anchor before epoch e's, so
  // out-of-order arrivals are buffered until their turn.
  void on_anchor_batch(std::uint64_t epoch, const SkeapUp& combined) {
    if (!anchor_state_) anchor_state_.emplace(config_.num_priorities);
    pending_anchor_batches_.emplace(epoch, combined.batch);
    while (!pending_anchor_batches_.empty() &&
           pending_anchor_batches_.begin()->first == next_anchor_epoch_) {
      auto it = pending_anchor_batches_.begin();
      trace::Tracer& tr = tracer();
      if (tr.enabled()) tr.phase_begin(id(), "skeap.phase2.assign", it->first);
      BatchAssignment asg = anchor_state_->assign(it->second);
      if (tr.enabled()) {
        tr.phase_end(id(), "skeap.phase2.assign", it->first);
        tr.phase_begin(id(), "skeap.phase3.decompose", it->first);
      }
      agg_.distribute(it->first, SkeapDown{std::move(asg)});
      if (tr.enabled()) {
        tr.phase_end(id(), "skeap.phase3.decompose", it->first);
      }
      pending_anchor_batches_.erase(it);
      ++next_anchor_epoch_;
    }
  }

  // Phase 4: turn assigned positions into DHT operations, consuming the
  // assignment in the exact order the ops were recorded into the batch.
  void on_assignment(std::uint64_t epoch, BatchAssignment asg) {
    auto it = in_flight_.find(epoch);
    SKS_CHECK_MSG(it != in_flight_.end(), "assignment for unknown epoch");
    std::vector<PendingOp> ops = std::move(it->second);
    in_flight_.erase(it);
    trace::Tracer& tr = tracer();
    if (tr.enabled()) {
      tr.phase_end(id(), "skeap.phase1.aggregate", epoch);
      // Phase 4 covers this host's DHT puts/gets; those quiesce with the
      // epoch, so the span closes at the next start_batch (or capture
      // end) rather than here.
      tr.phase_begin(id(), "skeap.phase4.dht", epoch);
      trace_phase4_open_ = true;
      trace_phase4_epoch_ = epoch;
    }

    for (auto& op : ops) {
      SKS_CHECK(op.entry < asg.entries.size());
      EntryAssignment& ea = asg.entries[op.entry];
      OpRecord rec;
      rec.issue_seq = op.issue_seq;
      rec.epoch = epoch;
      rec.entry = op.entry;
      if (op.is_insert) {
        Interval iv = ea.inserts.at(op.element.prio).take_front(1);
        SKS_CHECK_MSG(iv.cardinality() == 1, "missing insert position");
        rec.is_insert = true;
        rec.prio = op.element.prio;
        rec.pos = iv.lo;
        rec.element = op.element;
        rec.completed = true;
        trace_.push_back(rec);
        dht_.put(key_for(op.element.prio, iv.lo), op.element);
      } else {
        DeleteAssignment one = ea.deletes.take_front(1);
        SKS_CHECK_MSG(one.total() == 1, "missing delete position");
        rec.is_insert = false;
        if (one.bottoms == 1) {
          rec.bottom = true;
          rec.completed = true;
          trace_.push_back(rec);
          finish_delete(std::move(op.callback), std::nullopt);
        } else {
          const PrioritySpan& span = one.spans.spans().front();
          rec.prio = span.prio;
          rec.pos = span.iv.lo;
          const std::size_t rec_idx = trace_.size();
          trace_.push_back(rec);
          auto cb = std::move(op.callback);
          dht_.get(key_for(span.prio, span.iv.lo),
                   [this, rec_idx, cb](const Element& e) {
                     trace_[rec_idx].element = e;
                     trace_[rec_idx].completed = true;
                     finish_delete(cb, e);
                   });
        }
      }
    }
    // All positions assigned to this host must have been consumed by its
    // own ops — the decomposition is exact.
    for (const auto& e : asg.entries) {
      SKS_CHECK_MSG(e.inserts.total() == 0 && e.deletes.total() == 0,
                    "host received positions it has no ops for");
    }
    ++epochs_completed_;
  }

  Point key_for(Priority p, Position pos) const {
    return hash_.point({kSkeapKeyDomain, p, pos});
  }

  /// Acknowledge a delete: immediately when recovery is off; deferred to
  /// epoch commit when it is on (an un-committed epoch may be rolled back,
  /// and an acknowledgement must never be retracted).
  void finish_delete(DeleteCallback cb, std::optional<Element> e) {
    if (recovery_.enabled()) {
      deferred_.emplace_back(std::move(cb), e);
    } else if (cb) {
      cb(e);
    }
  }

  /// Everything an epoch may mutate, snapshotted at its start.
  struct EpochCheckpoint {
    dht::DhtComponent::Snapshot dht;
    std::deque<PendingOp> buffered;
    std::uint64_t next_epoch = 0;
    std::uint64_t epochs_completed = 0;
    std::uint64_t next_issue_seq = 0;
    std::optional<AnchorState> anchor_state;
    std::uint64_t next_anchor_epoch = 0;
    std::size_t trace_len = 0;
    bool phase4_open = false;
    std::uint64_t phase4_epoch = 0;
  };

  SkeapConfig config_;
  HashFunction hash_;
  dht::DhtComponent dht_;
  overlay::MembershipComponent membership_;
  agg::Aggregator<SkeapUp, SkeapDown> agg_;
  recovery::RecoveryComponent recovery_;

  std::optional<EpochCheckpoint> ckpt_;
  std::vector<std::pair<DeleteCallback, std::optional<Element>>> deferred_;

  std::deque<PendingOp> buffered_;
  std::size_t buffered_inserts_ = 0;  ///< inserts within buffered_
  std::map<std::uint64_t, std::vector<PendingOp>> in_flight_;
  std::uint64_t next_epoch_ = 0;
  std::uint64_t epochs_completed_ = 0;
  std::uint64_t next_issue_seq_ = 0;

  std::optional<AnchorState> anchor_state_;
  std::map<std::uint64_t, Batch> pending_anchor_batches_;
  std::uint64_t next_anchor_epoch_ = 0;
  std::vector<OpRecord> trace_;

  // Tracing-only state (never touched with the tracer disabled): the open
  // Phase 4 span, closed when the next batch starts on this host.
  bool trace_phase4_open_ = false;
  std::uint64_t trace_phase4_epoch_ = 0;
};

}  // namespace sks::skeap
