// Operation batches (Definition 3.1).
//
// A batch is a sequence (i_1, d_1, ..., i_k, d_k) where i_j is a vector of
// per-priority insert counts and d_j a DeleteMin count. A node's local
// batch preserves the order in which it issued operations — that is the
// property sequential consistency rests on. Batches combine entrywise
// (zero-padding the shorter one), exactly as in Section 3.1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/types.hpp"
#include "common/wire.hpp"

namespace sks::skeap {

/// One (i_j, d_j) pair of a batch.
struct BatchEntry {
  /// inserts[p] = number of inserts with priority p; index 0 unused
  /// (priorities are 1-based, P = {1, ..., c}).
  std::vector<std::uint64_t> inserts;
  std::uint64_t deletes = 0;

  explicit BatchEntry(std::size_t num_priorities = 0)
      : inserts(num_priorities + 1, 0) {}

  std::uint64_t total_inserts() const {
    std::uint64_t t = 0;
    for (auto c : inserts) t += c;
    return t;
  }

  friend bool operator==(const BatchEntry&, const BatchEntry&) = default;
};

class Batch {
 public:
  Batch() = default;
  explicit Batch(std::size_t num_priorities)
      : num_priorities_(num_priorities) {}

  std::size_t num_priorities() const { return num_priorities_; }
  const std::vector<BatchEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t length() const { return entries_.size(); }

  std::uint64_t total_ops() const {
    std::uint64_t t = 0;
    for (const auto& e : entries_) t += e.total_inserts() + e.deletes;
    return t;
  }

  /// Record one insert of priority p, opening a new entry if the current
  /// one already contains deletes (the alternation rule of Section 3.1).
  /// Returns the entry index the op landed in.
  std::size_t record_insert(Priority p) {
    SKS_CHECK_MSG(p >= 1 && p <= num_priorities_, "priority out of range");
    if (entries_.empty() || entries_.back().deletes > 0) {
      entries_.emplace_back(num_priorities_);
    }
    ++entries_.back().inserts[static_cast<std::size_t>(p)];
    return entries_.size() - 1;
  }

  /// Record one DeleteMin. Returns the entry index the op landed in.
  std::size_t record_delete() {
    if (entries_.empty()) entries_.emplace_back(num_priorities_);
    ++entries_.back().deletes;
    return entries_.size() - 1;
  }

  /// Entrywise combination with zero padding (Section 3.1). `other` is
  /// folded in as the *second* batch; the caller is responsible for using
  /// a deterministic fold order (the aggregation tree's child order).
  void combine(const Batch& other) {
    SKS_CHECK(num_priorities_ == other.num_priorities_ ||
              entries_.empty() || other.entries_.empty());
    if (num_priorities_ == 0) num_priorities_ = other.num_priorities_;
    if (entries_.size() < other.entries_.size()) {
      entries_.resize(other.entries_.size(), BatchEntry(num_priorities_));
    }
    for (std::size_t j = 0; j < other.entries_.size(); ++j) {
      const BatchEntry& src = other.entries_[j];
      BatchEntry& dst = entries_[j];
      if (dst.inserts.size() < src.inserts.size()) {
        dst.inserts.resize(src.inserts.size(), 0);
      }
      for (std::size_t p = 0; p < src.inserts.size(); ++p) {
        dst.inserts[p] += src.inserts[p];
      }
      dst.deletes += src.deletes;
    }
  }

  /// Encoded size: one number per priority per entry plus the delete
  /// count, each charged by its magnitude (Lemma 3.8's accounting — this
  /// is the quantity that grows as O(Λ log² n)).
  std::uint64_t size_bits() const {
    std::uint64_t bits = bits_for_max(entries_.size());
    for (const auto& e : entries_) {
      for (std::size_t p = 1; p < e.inserts.size(); ++p) {
        bits += bits_for_value(e.inserts[p]) + 1;
      }
      bits += bits_for_value(e.deletes) + 1;
    }
    return bits;
  }

  friend bool operator==(const Batch&, const Batch&) = default;

  /// Wire layout: P, entry count, then per entry the per-priority insert
  /// counts and the delete count as Elias-gamma numbers (zero-heavy after
  /// the alternation split, so gamma's 1-bit zero keeps the encoding
  /// inside Lemma 3.8's magnitude accounting). Every entry's insert
  /// vector is P + 1 wide by construction (record_*/combine pad with
  /// zeros), so the per-entry width is derived from the header, not sent.
  void encode(wire::WireWriter& w) const {
    w.gamma(num_priorities_);
    w.gamma(entries_.size());
    for (const auto& e : entries_) {
      SKS_CHECK_MSG(e.inserts.size() == num_priorities_ + 1,
                    "batch entry width mismatch");
      for (std::size_t p = 1; p < e.inserts.size(); ++p) {
        w.gamma(e.inserts[p]);
      }
      w.gamma(e.deletes);
    }
  }

  static Batch decode(wire::WireReader& r) {
    Batch b(r.gamma());
    const std::uint64_t len = r.gamma();
    b.entries_.reserve(len);
    for (std::uint64_t j = 0; j < len; ++j) {
      BatchEntry e(b.num_priorities_);
      for (std::size_t p = 1; p < e.inserts.size(); ++p) {
        e.inserts[p] = r.gamma();
      }
      e.deletes = r.gamma();
      b.entries_.push_back(std::move(e));
    }
    return b;
  }

 private:
  std::size_t num_priorities_ = 0;
  std::vector<BatchEntry> entries_;
};

inline std::string to_string(const Batch& b) {
  std::string out = "(";
  for (std::size_t j = 0; j < b.entries().size(); ++j) {
    if (j > 0) out += ", ";
    const auto& e = b.entries()[j];
    out += "(";
    for (std::size_t p = 1; p < e.inserts.size(); ++p) {
      if (p > 1) out += ",";
      out += std::to_string(e.inserts[p]);
    }
    out += ")," + std::to_string(e.deletes);
  }
  return out + ")";
}

}  // namespace sks::skeap
