// Harness for a complete Skeap deployment: a thin typed wrapper over the
// shared runtime::Cluster engine (src/runtime/cluster.hpp), which owns the
// network, topology bootstrap, batch driving and churn. This is also the
// simplest way to use Skeap programmatically — see examples/quickstart.cpp.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "runtime/cluster.hpp"
#include "skeap/skeap_node.hpp"

namespace sks::runtime {

/// Skeap's anchor carries the per-priority interval state; a joiner's
/// epoch counter is synchronized to the batches started so far.
template <>
struct AnchorTraits<skeap::SkeapNode> {
  using Handover = skeap::SkeapNode::AnchorHandover;
  static Handover take(skeap::SkeapNode& n) { return n.take_anchor_state(); }
  static void install(skeap::SkeapNode& n, Handover h) {
    n.install_anchor_state(std::move(h));
  }
  static void sync_counter(skeap::SkeapNode& n, std::uint64_t epochs) {
    n.set_next_epoch(epochs);
  }
};

}  // namespace sks::runtime

namespace sks::skeap {

class SkeapSystem {
 public:
  struct Options {
    std::size_t num_nodes = 8;
    std::size_t num_priorities = 2;
    std::uint64_t seed = 0xb1a5edULL;
    sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous;
    std::uint64_t max_delay = 8;  ///< async mode only
    /// Sizing hints for bit accounting.
    std::uint64_t expected_elements = 1u << 20;
    /// Channel fault schedule (all-zero = the paper's perfect network).
    sim::FaultPlan faults{};
    /// Reliable transport; enable whenever faults lose messages.
    sim::ReliableConfig reliable{};
    /// Crash recovery (failure detector + k-replication + epoch rollback).
    recovery::RecoveryConfig recovery{};
    /// Wire mode: marshal every send through encode -> bytes -> decode.
    bool wire = sim::wire_mode_default();
    /// Worker threads / execution shards for the round executor (see
    /// sim::NetworkConfig; thread count never changes the trace).
    std::size_t threads = sim::thread_count_default();
    std::size_t shards = sim::shard_count_default();
    /// Admission control: per-node cap on buffered inserts (see
    /// SkeapConfig::max_buffered_ops). 0 = unbounded.
    std::size_t max_buffered_ops = 0;
    /// Bound the network's pending-ring growth in rounds (see
    /// sim::NetworkConfig::max_pending_rounds). 0 = unbounded.
    std::uint64_t max_pending_rounds = 0;
    /// Adaptive batching (see runtime::ClusterOptions). max == 0 = off.
    std::size_t adaptive_batch_min = 0;
    std::size_t adaptive_batch_max = 0;
  };

  using Cluster = runtime::Cluster<SkeapNode, SkeapConfig>;

  /// The single place the protocol config (seed-derivation constants, DHT
  /// widths) is derived from the options — used at bootstrap and for every
  /// later join, so the two can never diverge.
  static SkeapConfig make_config(const Options& opts, std::size_t num_nodes) {
    SkeapConfig config;
    config.num_priorities = opts.num_priorities;
    config.hash_seed = opts.seed ^ 0x9e3779b97f4a7c15ULL;
    config.widths = dht::DhtWidths::for_system(
        num_nodes, opts.num_priorities, opts.expected_elements);
    config.recovery = opts.recovery;
    config.max_buffered_ops = opts.max_buffered_ops;
    return config;
  }

  static runtime::ClusterOptions cluster_options(const Options& opts) {
    runtime::ClusterOptions c;
    c.num_nodes = opts.num_nodes;
    c.seed = opts.seed;
    c.mode = opts.mode;
    c.max_delay = opts.max_delay;
    c.expected_elements = opts.expected_elements;
    c.faults = opts.faults;
    c.reliable = opts.reliable;
    c.recovery = opts.recovery;
    c.wire = opts.wire;
    c.threads = opts.threads;
    c.shards = opts.shards;
    c.max_pending_rounds = opts.max_pending_rounds;
    c.adaptive_batch_min = opts.adaptive_batch_min;
    c.adaptive_batch_max = opts.adaptive_batch_max;
    return c;
  }

  explicit SkeapSystem(const Options& opts)
      : opts_(opts),
        cluster_(cluster_options(opts),
                 [opts](std::size_t n) { return make_config(opts, n); }) {}

  std::size_t size() const { return cluster_.size(); }
  sim::Network& net() { return cluster_.net(); }
  SkeapNode& node(NodeId v) { return cluster_.node(v); }
  NodeId anchor() const { return cluster_.anchor(); }

  /// The underlying runtime engine (epoch history, start_all, ...).
  Cluster& cluster() { return cluster_; }

  /// Insert with an auto-assigned unique element id; returns the element.
  /// With admission control on, use try_insert — this asserts acceptance.
  Element insert(NodeId v, Priority prio) {
    const Element e{prio, next_element_id_++};
    const AdmitResult r = node(v).insert(e);
    SKS_CHECK_MSG(r.accepted && !r.shed,
                  "insert shed under admission control; use try_insert");
    return e;
  }

  /// Outcome of try_insert: `element` is the buffered element (nullopt
  /// when the insert itself was rejected); `shed` is whichever element —
  /// this one or a previously buffered one — admission control rejected.
  struct InsertOutcome {
    std::optional<Element> element;
    std::optional<Element> shed;
  };

  /// Admission-control-aware insert: never throws on overload, reporting
  /// the shed element instead so callers (and the shed-aware oracle) can
  /// account for every rejected operation.
  InsertOutcome try_insert(NodeId v, Priority prio) {
    const Element e{prio, next_element_id_++};
    AdmitResult r = node(v).insert(e);
    InsertOutcome out;
    if (r.accepted) out.element = e;
    out.shed = std::move(r.shed);
    return out;
  }

  void delete_min(NodeId v, SkeapNode::DeleteCallback cb = nullptr) {
    node(v).delete_min(std::move(cb));
  }

  /// Run one complete batch: every active node snapshots (Phase 1) and
  /// the network runs until all four phases and all DHT traffic quiesce.
  /// Returns the number of rounds the batch took.
  std::uint64_t run_batch() {
    const std::size_t limit = cluster_.batch_limit();
    return cluster_.run_epoch(
        [limit](SkeapNode& n) { n.start_batch(limit); });
  }

  /// All op records from all nodes (the input to the semantics checkers).
  /// Includes departed nodes: their completed operations still count.
  std::vector<OpRecord> gather_trace() { return cluster_.gather_trace(); }

  /// Trace of a single node, in issue order.
  const std::vector<OpRecord>& trace_of(NodeId v) { return node(v).trace(); }

  // ---- Churn (Contribution 4): applied lazily between batches ----------

  /// Add a node to the running system; see runtime::Cluster::join_node.
  NodeId join_node() { return cluster_.join_node(); }

  /// Remove a node; see runtime::Cluster::leave_node.
  void leave_node(NodeId v) { cluster_.leave_node(v); }

  /// Nodes currently participating (after churn).
  const std::set<NodeId>& active_nodes() const {
    return cluster_.active_nodes();
  }

  const Options& options() const { return opts_; }

 private:
  Options opts_;
  Cluster cluster_;
  ElementId next_element_id_ = 1;
};

}  // namespace sks::skeap
