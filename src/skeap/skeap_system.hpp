// Test/benchmark harness for a complete Skeap deployment: builds the
// overlay, owns the simulated network, drives batch epochs and gathers
// traces. This is also the simplest way to use Skeap programmatically —
// see examples/quickstart.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "overlay/topology.hpp"
#include "sim/network.hpp"
#include "skeap/skeap_node.hpp"

namespace sks::skeap {

class SkeapSystem {
 public:
  struct Options {
    std::size_t num_nodes = 8;
    std::size_t num_priorities = 2;
    std::uint64_t seed = 0xb1a5edULL;
    sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous;
    std::uint64_t max_delay = 8;  ///< async mode only
    /// Sizing hints for bit accounting.
    std::uint64_t expected_elements = 1u << 20;
  };

  explicit SkeapSystem(const Options& opts) : opts_(opts) {
    sim::NetworkConfig cfg;
    cfg.mode = opts.mode;
    cfg.max_delay = opts.max_delay;
    cfg.seed = opts.seed;
    net_ = std::make_unique<sim::Network>(cfg);

    HashFunction label_hash(opts.seed);
    const auto links = overlay::build_topology(opts.num_nodes, label_hash);
    const auto params = overlay::RouteParams::for_system(opts.num_nodes);

    SkeapConfig config;
    config.num_priorities = opts.num_priorities;
    config.hash_seed = opts.seed ^ 0x9e3779b97f4a7c15ULL;
    config.widths = dht::DhtWidths::for_system(
        opts.num_nodes, opts.num_priorities, opts.expected_elements);

    for (std::size_t i = 0; i < opts.num_nodes; ++i) {
      const NodeId id = net_->add_node(
          std::make_unique<SkeapNode>(params, config));
      auto& node = net_->node_as<SkeapNode>(id);
      node.install_links(links[i]);
      node.membership().mark_bootstrapped();
      if (node.hosts_anchor()) anchor_ = id;
      active_.insert(id);
    }
  }

  std::size_t size() const { return opts_.num_nodes; }
  sim::Network& net() { return *net_; }
  SkeapNode& node(NodeId v) { return net_->node_as<SkeapNode>(v); }
  NodeId anchor() const { return anchor_; }

  /// Insert with an auto-assigned unique element id; returns the element.
  Element insert(NodeId v, Priority prio) {
    const Element e{prio, next_element_id_++};
    node(v).insert(e);
    return e;
  }

  void delete_min(NodeId v, SkeapNode::DeleteCallback cb = nullptr) {
    node(v).delete_min(std::move(cb));
  }

  /// Run one complete batch: every active node snapshots (Phase 1) and
  /// the network runs until all four phases and all DHT traffic quiesce.
  /// Returns the number of rounds the batch took.
  std::uint64_t run_batch() {
    for (NodeId v : active_nodes()) node(v).start_batch();
    return net_->run_until_idle();
  }

  /// All op records from all nodes (the input to the semantics checkers).
  /// Includes departed nodes: their completed operations still count.
  std::vector<OpRecord> gather_trace() {
    std::vector<OpRecord> all;
    for (NodeId v = 0; v < net_->size(); ++v) {
      for (const auto& r : node(v).trace()) {
        all.push_back(r);
        all.back().node = v;
      }
    }
    return all;
  }

  /// Trace of a single node, in issue order.
  const std::vector<OpRecord>& trace_of(NodeId v) { return node(v).trace(); }

  // ---- Churn (Contribution 4): applied lazily between batches ----------

  /// Add a node to the running system. The join protocol splices it into
  /// the LDB and hands over its share of the keyspace; if its label is the
  /// new minimum, the anchor role (and state) migrates. Returns the new
  /// node's id. Must be called while no batch is in flight.
  NodeId join_node() {
    SKS_CHECK_MSG(net_->idle(), "join while a batch is in flight");
    SkeapConfig config;
    config.num_priorities = opts_.num_priorities;
    config.hash_seed = opts_.seed ^ 0x9e3779b97f4a7c15ULL;
    config.widths = dht::DhtWidths::for_system(
        opts_.num_nodes, opts_.num_priorities, opts_.expected_elements);
    const auto params = overlay::RouteParams::for_system(opts_.num_nodes);
    const NodeId id =
        net_->add_node(std::make_unique<SkeapNode>(params, config));
    auto& joiner = net_->node_as<SkeapNode>(id);
    HashFunction label_hash(opts_.seed);
    // Any current member can bootstrap; use the anchor host.
    joiner.membership().join(anchor_, label_hash);
    net_->run_until_idle();
    SKS_CHECK(joiner.membership().joined());
    joiner.set_next_epoch(node(anchor_).epochs_started());
    active_.insert(id);
    ++opts_.num_nodes;
    migrate_anchor_if_needed();
    return id;
  }

  /// Remove a node: its keyspace arcs are handed to the neighbours and it
  /// stops participating in batches. Must be called while no batch is in
  /// flight; the sole remaining node cannot leave.
  void leave_node(NodeId v) {
    SKS_CHECK_MSG(net_->idle(), "leave while a batch is in flight");
    SKS_CHECK_MSG(node(v).buffered_ops() == 0,
                  "node has buffered ops; run a batch first");
    const bool was_anchor = node(v).hosts_anchor();
    SkeapNode::AnchorHandover handover;
    if (was_anchor) handover = node(v).take_anchor_state();
    node(v).membership().leave();
    net_->run_until_idle();
    active_.erase(v);
    if (was_anchor) {
      // Find the new anchor and hand it the interval state.
      for (NodeId w : active_) {
        if (node(w).hosts_anchor()) {
          node(w).install_anchor_state(std::move(handover));
          anchor_ = w;
          break;
        }
      }
    }
  }

  /// Nodes currently participating (after churn).
  const std::set<NodeId>& active_nodes() const { return active_; }

  const Options& options() const { return opts_; }

 private:
  void migrate_anchor_if_needed() {
    if (node(anchor_).hosts_anchor()) return;
    auto handover = node(anchor_).take_anchor_state();
    for (NodeId w : active_) {
      if (node(w).hosts_anchor()) {
        node(w).install_anchor_state(std::move(handover));
        anchor_ = w;
        return;
      }
    }
    SKS_CHECK_MSG(false, "no anchor after churn");
  }

  Options opts_;
  std::unique_ptr<sim::Network> net_;
  NodeId anchor_ = kNoNode;
  std::set<NodeId> active_;
  ElementId next_element_id_ = 1;
};

}  // namespace sks::skeap
