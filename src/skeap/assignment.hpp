// Position assignment (Skeap Phases 2 and 3).
//
// The anchor turns a combined batch into a collection of position
// intervals per entry: fresh per-priority intervals for the inserts and a
// most-prioritized-first carve of the occupied intervals for the deletes
// (plus ⊥ slots when the heap runs dry). On the way down the tree the
// assignment is decomposed against the remembered child sub-batches.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/interval.hpp"
#include "common/types.hpp"
#include "common/wire.hpp"
#include "skeap/batch.hpp"

namespace sks::skeap {

/// Positions for one batch entry (i_j, d_j).
struct EntryAssignment {
  InsertAssignment inserts;
  DeleteAssignment deletes;

  friend bool operator==(const EntryAssignment&,
                         const EntryAssignment&) = default;
};

struct BatchAssignment {
  std::vector<EntryAssignment> entries;

  std::uint64_t size_bits() const {
    // Each interval costs two position-sized numbers; this is the O(Λ
    // log² n) object of Lemma 3.8 (as large as the batch itself).
    std::uint64_t bits = bits_for_max(entries.size());
    for (const auto& e : entries) {
      for (Priority p = 1; p <= e.inserts.num_priorities(); ++p) {
        bits += 2 * bits_for_value(e.inserts.at(p).hi) + 2;
      }
      for (const auto& s : e.deletes.spans.spans()) {
        bits += 2 * bits_for_value(s.iv.hi) + bits_for_value(s.prio) + 3;
      }
      bits += bits_for_value(e.deletes.bottoms) + 1;
    }
    return bits;
  }

  std::uint64_t total_ops() const {
    std::uint64_t t = 0;
    for (const auto& e : entries) t += e.inserts.total() + e.deletes.total();
    return t;
  }

  friend bool operator==(const BatchAssignment&,
                         const BatchAssignment&) = default;

  /// Wire layout: entry count, then per entry the insert intervals (one
  /// per priority), the delete spans and the ⊥ count. Interval bounds are
  /// delta-packed against a per-priority running cursor: the anchor carves
  /// positions monotonically per priority (inserts at the top end, deletes
  /// at the bottom end), so consecutive intervals of the same priority are
  /// near-contiguous even after decomposition and deltas stay tiny. This
  /// keeps the encoding inside Lemma 3.8's two-numbers-per-interval
  /// accounting, which plain varints would overshoot for small positions.
  void encode(wire::WireWriter& w) const {
    w.gamma(entries.size());
    std::vector<std::uint64_t> ins_next, del_next;
    for (const auto& e : entries) {
      const std::size_t num = e.inserts.num_priorities();
      w.gamma(num);
      if (ins_next.size() < num + 1) ins_next.resize(num + 1, 0);
      for (Priority p = 1; p <= num; ++p) {
        const Interval& iv = e.inserts.at(p);
        const bool unset = iv.lo == 1 && iv.hi == 0;
        w.boolean(unset);
        if (!unset) {
          w.gamma_zz(iv.lo - ins_next[p]);
          w.gamma(iv.hi - iv.lo);
          ins_next[p] = iv.hi + 1;
        }
      }
      w.gamma(e.deletes.spans.spans().size());
      for (const auto& s : e.deletes.spans.spans()) {
        SKS_CHECK_MSG(s.prio >= 1, "span priority must be 1-based");
        w.gamma(s.prio - 1);
        if (del_next.size() < s.prio + 1) del_next.resize(s.prio + 1, 0);
        w.gamma_zz(s.iv.lo - del_next[s.prio]);
        w.gamma(s.iv.hi - s.iv.lo);
        del_next[s.prio] = s.iv.hi + 1;
      }
      w.gamma(e.deletes.bottoms);
    }
  }

  static BatchAssignment decode(wire::WireReader& r) {
    BatchAssignment out;
    const std::uint64_t len = r.gamma();
    out.entries.reserve(len);
    std::vector<std::uint64_t> ins_next, del_next;
    for (std::uint64_t j = 0; j < len; ++j) {
      EntryAssignment e;
      const std::uint64_t num = r.gamma();
      if (num > 0) e.inserts = InsertAssignment(num);
      if (ins_next.size() < num + 1) ins_next.resize(num + 1, 0);
      for (Priority p = 1; p <= num; ++p) {
        if (r.boolean()) continue;  // unset slot keeps the {1, 0} default
        Interval iv;
        iv.lo = ins_next[p] + r.gamma_zz();
        iv.hi = iv.lo + r.gamma();
        e.inserts.at(p) = iv;
        ins_next[p] = iv.hi + 1;
      }
      const std::uint64_t spans = r.gamma();
      for (std::uint64_t i = 0; i < spans; ++i) {
        const Priority prio = r.gamma() + 1;
        if (del_next.size() < prio + 1) del_next.resize(prio + 1, 0);
        Interval iv;
        iv.lo = del_next[prio] + r.gamma_zz();
        iv.hi = iv.lo + r.gamma();
        e.deletes.spans.push_back(prio, iv);
        del_next[prio] = iv.hi + 1;
      }
      e.deletes.bottoms = r.gamma();
      out.entries.push_back(std::move(e));
    }
    return out;
  }
};

/// The anchor's per-priority interval state (Section 3.2.2): the interval
/// [first_p, last_p] holds the positions currently occupied by elements of
/// priority p, with the invariant first_p <= last_p + 1.
class AnchorState {
 public:
  explicit AnchorState(std::size_t num_priorities)
      : first_(num_priorities + 1, 1), last_(num_priorities + 1, 0) {}

  std::size_t num_priorities() const { return first_.size() - 1; }

  Position first(Priority p) const { return first_[idx(p)]; }
  Position last(Priority p) const { return last_[idx(p)]; }

  /// Elements of priority p currently in the heap.
  std::uint64_t occupancy(Priority p) const {
    return last_[idx(p)] + 1 - first_[idx(p)];
  }

  std::uint64_t total_occupancy() const {
    std::uint64_t t = 0;
    for (Priority p = 1; p <= num_priorities(); ++p) t += occupancy(p);
    return t;
  }

  /// Recovery support: overwrite one priority's interval when restoring
  /// the anchor state from a replica mirror.
  void set_interval(Priority p, Position first, Position last) {
    first_[idx(p)] = first;
    last_[idx(p)] = last;
  }

  /// Phase 2: assign positions to every operation of the combined batch,
  /// advancing the interval state. Entries are processed in order; within
  /// an entry the inserts are assigned before the deletes, so deletes can
  /// consume elements inserted by the same entry.
  BatchAssignment assign(const Batch& batch) {
    BatchAssignment out;
    out.entries.reserve(batch.entries().size());
    for (const auto& entry : batch.entries()) {
      EntryAssignment ea;
      ea.inserts = InsertAssignment(num_priorities());
      for (Priority p = 1; p <= num_priorities(); ++p) {
        const std::uint64_t count =
            idx(p) < entry.inserts.size() ? entry.inserts[idx(p)] : 0;
        if (count > 0) {
          ea.inserts.at(p) = Interval{last_[idx(p)] + 1, last_[idx(p)] + count};
          last_[idx(p)] += count;
        }
      }
      std::uint64_t remaining = entry.deletes;
      for (Priority p = 1; p <= num_priorities() && remaining > 0; ++p) {
        const std::uint64_t take =
            remaining < occupancy(p) ? remaining : occupancy(p);
        if (take > 0) {
          ea.deletes.spans.push_back(
              p, Interval{first_[idx(p)], first_[idx(p)] + take - 1});
          first_[idx(p)] += take;
          remaining -= take;
        }
      }
      ea.deletes.bottoms = remaining;  // heap ran dry: these return ⊥
      for (Priority p = 1; p <= num_priorities(); ++p) {
        SKS_CHECK_MSG(first_[idx(p)] <= last_[idx(p)] + 1,
                      "anchor interval invariant violated at priority " << p);
      }
      out.entries.push_back(std::move(ea));
    }
    return out;
  }

 private:
  static std::size_t idx(Priority p) { return static_cast<std::size_t>(p); }

  std::vector<Position> first_;
  std::vector<Position> last_;
};

/// Phase 3: decompose an assignment for a combined batch into per-child
/// assignments, carving in child order — the same order the batches were
/// combined in, which is what makes the serialization deterministic.
inline std::vector<BatchAssignment> split_assignment(
    const BatchAssignment& combined, const std::vector<Batch>& children) {
  std::vector<BatchAssignment> parts(children.size());
  // Work on a mutable copy we carve from.
  BatchAssignment rest = combined;
  for (std::size_t c = 0; c < children.size(); ++c) {
    const Batch& cb = children[c];
    parts[c].entries.resize(rest.entries.size());
    for (std::size_t j = 0; j < rest.entries.size(); ++j) {
      EntryAssignment& avail = rest.entries[j];
      EntryAssignment& dst = parts[c].entries[j];
      if (j < cb.entries().size()) {
        const BatchEntry& want = cb.entries()[j];
        dst.inserts = avail.inserts.take_front(want.inserts);
        dst.deletes = avail.deletes.take_front(want.deletes);
      } else {
        dst.inserts = InsertAssignment(avail.inserts.num_priorities());
        dst.deletes = DeleteAssignment{};
      }
    }
  }
  // Everything must be consumed: the combined batch is exactly the sum of
  // the children (inner vertices contribute nothing).
  for (const auto& e : rest.entries) {
    SKS_CHECK_MSG(e.inserts.total() == 0 && e.deletes.total() == 0,
                  "assignment decomposition left positions unassigned");
  }
  return parts;
}

}  // namespace sks::skeap
