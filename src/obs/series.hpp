// Fixed-capacity time series for continuous telemetry.
//
// A TimeSeries is a drop-oldest ring of (t, value) points: a run keeps a
// bounded, queryable timeline of each sampled metric instead of one
// terminal aggregate, and a long run's memory stays constant. The time
// axis is the simulator round (the only clock the deterministic engine
// has); wall-clock time rides along as an ordinary series where needed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace sks::obs {

struct SeriesPoint {
  std::uint64_t t = 0;  ///< simulator round of the sample
  double value = 0.0;
};

/// The fixed catalogue of sampled series (obs::Sampler fills one
/// TimeSeries per entry; the ndjson stream and the timeline reader key
/// fields by series_name).
enum class SeriesId : std::size_t {
  kRoundsPerSec = 0,  ///< simulator rounds per wall second, this interval
  kMessages,          ///< messages delivered this interval
  kBits,              ///< message bits this interval
  kDrops,             ///< channel losses this interval
  kRetransmits,       ///< reliable-transport re-sends this interval
  kSuspects,          ///< failure-detector suspicions this interval
  kDeclaredDead,      ///< declared crash-stops this interval
  kRecoveries,        ///< suspects that proved alive this interval
  kPoolAllocated,     ///< payload-pool blocks ever heap-allocated (gauge)
  kPoolParked,        ///< blocks parked in the shared overflows (gauge)
  kInFlight,          ///< data messages in flight at the sample (gauge)
  kImbalance,         ///< max/mean per-shard deliveries this interval
  kCorrupted,         ///< corrupted frames rejected this interval
  kQuarantined,       ///< poison records quarantined this interval
  kScrubs,            ///< scrub-pass owner audits this interval
  kDigestMismatches,  ///< replica digest mismatches this interval
  kWindowStalls,      ///< flow-control window stalls this interval
  kSheds,             ///< admission-control sheds this interval
  kQueueDepth,        ///< client ops buffered across nodes (gauge)
  kBatchSize,         ///< adaptive per-node batch limit (gauge)
  kCount
};

inline constexpr std::size_t kNumSeries =
    static_cast<std::size_t>(SeriesId::kCount);

inline const char* series_name(SeriesId id) {
  switch (id) {
    case SeriesId::kRoundsPerSec: return "rounds_per_sec";
    case SeriesId::kMessages: return "messages";
    case SeriesId::kBits: return "bits";
    case SeriesId::kDrops: return "drops";
    case SeriesId::kRetransmits: return "retransmits";
    case SeriesId::kSuspects: return "suspects";
    case SeriesId::kDeclaredDead: return "declared_dead";
    case SeriesId::kRecoveries: return "recoveries";
    case SeriesId::kPoolAllocated: return "pool_allocated";
    case SeriesId::kPoolParked: return "pool_parked";
    case SeriesId::kInFlight: return "in_flight";
    case SeriesId::kImbalance: return "shard_imbalance";
    case SeriesId::kCorrupted: return "corrupted";
    case SeriesId::kQuarantined: return "quarantined";
    case SeriesId::kScrubs: return "scrubs";
    case SeriesId::kDigestMismatches: return "digest_mismatches";
    case SeriesId::kWindowStalls: return "window_stalls";
    case SeriesId::kSheds: return "sheds";
    case SeriesId::kQueueDepth: return "queue_depth";
    case SeriesId::kBatchSize: return "batch_size";
    case SeriesId::kCount: break;
  }
  return "?";
}

/// Whether a series is a monotone event count (OpenMetrics `counter`,
/// sampled as interval deltas) or a point-in-time level (`gauge`).
inline bool series_is_counter(SeriesId id) {
  switch (id) {
    case SeriesId::kMessages:
    case SeriesId::kBits:
    case SeriesId::kDrops:
    case SeriesId::kRetransmits:
    case SeriesId::kSuspects:
    case SeriesId::kDeclaredDead:
    case SeriesId::kRecoveries:
    case SeriesId::kCorrupted:
    case SeriesId::kQuarantined:
    case SeriesId::kScrubs:
    case SeriesId::kDigestMismatches:
    case SeriesId::kWindowStalls:
    case SeriesId::kSheds:
      return true;
    default:
      return false;
  }
}

class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity = 1024) : ring_(capacity) {
    SKS_CHECK(capacity > 0);
  }

  void push(std::uint64_t t, double value) {
    ring_[head_] = SeriesPoint{t, value};
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size()) ++size_;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  bool empty() const { return size_ == 0; }

  /// i-th retained point in chronological order (0 = oldest retained).
  const SeriesPoint& operator[](std::size_t i) const {
    SKS_CHECK(i < size_);
    return ring_[(head_ + ring_.size() - size_ + i) % ring_.size()];
  }

  const SeriesPoint& back() const { return (*this)[size_ - 1]; }

  double min() const {
    double m = (*this)[0].value;
    for (std::size_t i = 1; i < size_; ++i) {
      if ((*this)[i].value < m) m = (*this)[i].value;
    }
    return m;
  }

  double max() const {
    double m = (*this)[0].value;
    for (std::size_t i = 1; i < size_; ++i) {
      if ((*this)[i].value > m) m = (*this)[i].value;
    }
    return m;
  }

  double sum() const {
    double s = 0.0;
    for (std::size_t i = 0; i < size_; ++i) s += (*this)[i].value;
    return s;
  }

 private:
  std::vector<SeriesPoint> ring_;
  std::size_t head_ = 0;  ///< next write slot
  std::size_t size_ = 0;  ///< points retained (<= capacity)
};

}  // namespace sks::obs
