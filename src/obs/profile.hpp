// Wall-clock attribution for protocol-phase spans.
//
// The tracer's phase hooks describe *logical* spans (begin/end per node
// per epoch) with no notion of wall time — by design, so traces stay
// bit-identical across thread counts. The PhaseProfiler attaches to a
// tracer as a live PhaseObserver and keeps the wall-clock side channel:
// per phase name, how many spans opened/closed and how many wall
// nanoseconds elapsed between each begin and its matching end. Attaching
// it never perturbs the recorded trace (see trace::PhaseObserver).
//
// on_phase may fire concurrently from shard worker threads; a mutex
// serializes the book-keeping. Phase transitions are per-node-per-epoch
// rare, so the lock is noise against the protocol work between them.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "common/types.hpp"
#include "trace/tracer.hpp"

namespace sks::obs {

struct PhaseTotals {
  std::uint64_t begins = 0;
  std::uint64_t ends = 0;
  std::uint64_t wall_ns = 0;  ///< summed begin->end wall time, all nodes
};

class PhaseProfiler final : public trace::PhaseObserver {
 public:
  /// Attach to `tracer` for the profiler's lifetime. The observer slot
  /// is exclusive; the destructor detaches (destroy the profiler before
  /// the network that owns the tracer).
  explicit PhaseProfiler(trace::Tracer& tracer) : tracer_(&tracer) {
    tracer_->set_phase_observer(this);
  }

  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  ~PhaseProfiler() override { detach(); }

  void detach() {
    if (tracer_ != nullptr && tracer_->phase_observer() == this) {
      tracer_->set_phase_observer(nullptr);
    }
    tracer_ = nullptr;
  }

  void on_phase(NodeId node, const char* name, bool begin,
                std::uint64_t epoch) override {
    (void)epoch;
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    if (begin) {
      ++totals_[name].begins;
      // A re-begin without an end (protocol retry) just restarts the
      // span clock.
      open_[{node, name}] = now;
    } else {
      PhaseTotals& t = totals_[name];
      ++t.ends;
      auto it = open_.find({node, name});
      if (it != open_.end()) {
        t.wall_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - it->second)
                .count());
        open_.erase(it);
      }
    }
  }

  /// Per-phase totals so far (copied under the lock).
  std::map<std::string, PhaseTotals> totals() const {
    std::lock_guard<std::mutex> lock(mu_);
    return totals_;
  }

 private:
  trace::Tracer* tracer_;
  mutable std::mutex mu_;
  std::map<std::string, PhaseTotals> totals_;  ///< keyed by phase name
  std::map<std::pair<NodeId, std::string>,
           std::chrono::steady_clock::time_point>
      open_;  ///< spans begun and not yet ended
};

}  // namespace sks::obs
