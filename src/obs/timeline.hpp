// Reader/renderer for the telemetry ndjson stream.
//
// The sampler writes one flat JSON object per sample (numbers only, no
// nesting), so a full JSON parser is overkill: read_timeline extracts
// the known numeric fields with a small key scanner, tolerating unknown
// extra fields and skipping malformed lines (a live stream's last line
// may be mid-write). render_timeline prints the sampled time-series
// table `trace_inspect --timeline` and `sks_top` show.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "obs/series.hpp"

namespace sks::obs {

struct TimelineRow {
  std::uint64_t t = 0;      ///< simulator round of the sample
  std::uint64_t epoch = 0;  ///< epoch tag (0 for round-driven cadence)
  std::uint64_t rounds = 0; ///< rounds elapsed in the interval
  double wall_ms = 0.0;     ///< wall clock since sampler start
  double values[kNumSeries] = {};  ///< indexed by SeriesId
};

namespace detail {
/// Find `"key":` in `line` and parse the number after it. Returns false
/// when the key is absent or not followed by a number.
inline bool scan_field(const std::string& line, const char* key,
                       double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  *out = v;
  return true;
}
}  // namespace detail

/// Parse one ndjson line into a row. Returns false for lines that are
/// not complete sample objects.
inline bool parse_timeline_line(const std::string& line, TimelineRow* row) {
  if (line.empty() || line.front() != '{' ||
      line.find('}') == std::string::npos) {
    return false;
  }
  double t = 0.0;
  if (!detail::scan_field(line, "t", &t)) return false;
  row->t = static_cast<std::uint64_t>(t);
  double tmp = 0.0;
  if (detail::scan_field(line, "epoch", &tmp)) {
    row->epoch = static_cast<std::uint64_t>(tmp);
  }
  if (detail::scan_field(line, "rounds", &tmp)) {
    row->rounds = static_cast<std::uint64_t>(tmp);
  }
  detail::scan_field(line, "wall_ms", &row->wall_ms);
  for (std::size_t i = 0; i < kNumSeries; ++i) {
    detail::scan_field(line, series_name(static_cast<SeriesId>(i)),
                       &row->values[i]);
  }
  return true;
}

inline std::vector<TimelineRow> read_timeline(std::istream& in) {
  std::vector<TimelineRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    TimelineRow row;
    if (parse_timeline_line(line, &row)) rows.push_back(row);
  }
  return rows;
}

/// Print the sampled time series as an aligned table: per-sample epoch,
/// rounds, traffic, fault/recovery events and the live gauges. With
/// `max_rows` > 0 only the most recent rows are shown (sks_top's tail
/// view); 0 prints everything.
inline void render_timeline(std::ostream& os,
                            const std::vector<TimelineRow>& rows,
                            std::size_t max_rows = 0) {
  const std::size_t first =
      max_rows > 0 && rows.size() > max_rows ? rows.size() - max_rows : 0;
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "%8s %6s %7s %10s %10s %12s %6s %7s %8s %8s %8s %9s %7s %6s %6s %6s %7s %6s\n",
                "round", "epoch", "rounds", "wall_ms", "rnds/s", "messages",
                "bits/msg", "drops", "retrans", "corrupt", "suspect",
                "dead+rec", "inflight", "imbal", "stall", "shed",
                "qdepth", "batch");
  os << buf;
  for (std::size_t i = first; i < rows.size(); ++i) {
    const TimelineRow& r = rows[i];
    auto v = [&](SeriesId id) {
      return r.values[static_cast<std::size_t>(id)];
    };
    const double msgs = v(SeriesId::kMessages);
    const double bits_per_msg =
        msgs > 0.0 ? v(SeriesId::kBits) / msgs : 0.0;
    std::snprintf(
        buf, sizeof(buf),
        "%8llu %6llu %7llu %10.1f %10.0f %12.0f %6.1f %7.0f %8.0f %8.0f %8.0f %4.0f+%-4.0f %7.0f %6.2f %6.0f %6.0f %7.0f %6.0f\n",
        static_cast<unsigned long long>(r.t),
        static_cast<unsigned long long>(r.epoch),
        static_cast<unsigned long long>(r.rounds), r.wall_ms,
        v(SeriesId::kRoundsPerSec), msgs, bits_per_msg,
        v(SeriesId::kDrops), v(SeriesId::kRetransmits),
        v(SeriesId::kCorrupted),
        v(SeriesId::kSuspects), v(SeriesId::kDeclaredDead),
        v(SeriesId::kRecoveries), v(SeriesId::kInFlight),
        v(SeriesId::kImbalance), v(SeriesId::kWindowStalls),
        v(SeriesId::kSheds), v(SeriesId::kQueueDepth),
        v(SeriesId::kBatchSize));
    os << buf;
  }
  if (first > 0) {
    os << "(" << first << " earlier sample" << (first == 1 ? "" : "s")
       << " not shown)\n";
  }
}

/// One-line footer summarizing a timeline (sks_top's status row).
inline void render_timeline_summary(std::ostream& os,
                                    const std::vector<TimelineRow>& rows) {
  double msgs = 0.0, drops = 0.0, dead = 0.0, corrupt = 0.0;
  std::uint64_t rounds = 0;
  for (const TimelineRow& r : rows) {
    msgs += r.values[static_cast<std::size_t>(SeriesId::kMessages)];
    drops += r.values[static_cast<std::size_t>(SeriesId::kDrops)];
    dead += r.values[static_cast<std::size_t>(SeriesId::kDeclaredDead)];
    corrupt += r.values[static_cast<std::size_t>(SeriesId::kCorrupted)];
    rounds += r.rounds;
  }
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%zu samples | %llu rounds | %.0f messages | %.0f drops | "
                "%.0f corrupted | %.0f declared dead\n",
                rows.size(), static_cast<unsigned long long>(rounds), msgs,
                drops, corrupt, dead);
  os << buf;
}

}  // namespace sks::obs
