// Continuous-telemetry sampler: folds metric deltas into time series.
//
// The Sampler turns the terminal aggregates the repo already keeps
// (sim::Metrics scalars, payload-pool gauges) into a timeline: each
// sample() cuts a delta since the previous sample and appends one point
// per metric to a fixed-capacity TimeSeries ring, optionally emitting
// the same sample as one ndjson line on a live stream (the format
// `examples/sks_top` and `trace_inspect --timeline` consume).
//
// Sampling cadence is the caller's choice: per epoch (the cluster's
// epoch observer / bench helpers call sample() explicitly) or every R
// rounds (attach() installs the network's round observer). Either way
// every read happens at a round barrier on the coordinator thread — the
// sampler never races the engine — and wall-clock is read only at
// sample points, so the per-round cost of an attached sampler is the
// round-observer branch plus nothing.
//
// Deltas survive metric-window resets: if a cumulative counter went
// backwards since the last sample (a bench called Metrics::take()), the
// current value *is* the delta — the window restarted from zero.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/series.hpp"
#include "sim/network.hpp"
#include "sim/payload.hpp"

namespace sks::obs {

class Sampler {
 public:
  struct Options {
    /// Auto-sample every this many rounds via the network's round
    /// observer (attach()); 0 = manual/per-epoch sampling only.
    std::uint64_t every_rounds = 0;
    std::size_t capacity = 1024;  ///< points retained per series
    std::string label = "run";    ///< exported as the `run` metric label
  };

  /// Cumulative event counts since the sampler was constructed (immune
  /// to bench-side Metrics::take() window resets) — what the OpenMetrics
  /// exposition publishes as counters.
  struct Cumulative {
    std::uint64_t rounds = 0;
    std::uint64_t messages = 0;
    std::uint64_t bits = 0;
    std::uint64_t drops = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t suspects = 0;
    std::uint64_t declared_dead = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t scrubs = 0;
    std::uint64_t digest_mismatches = 0;
    std::uint64_t window_stalls = 0;
    std::uint64_t sheds = 0;
    std::uint64_t samples = 0;
  };

  explicit Sampler(sim::Network& net) : Sampler(net, Options()) {}

  Sampler(sim::Network& net, Options opts, std::ostream* stream = nullptr)
      : net_(&net),
        opts_(std::move(opts)),
        stream_(stream),
        start_(std::chrono::steady_clock::now()),
        last_wall_(start_) {
    series_.reserve(kNumSeries);
    for (std::size_t i = 0; i < kNumSeries; ++i) {
      series_.emplace_back(opts_.capacity);
    }
    // Baseline the deltas at the current totals so the first sample
    // reports the first interval, not the whole pre-attach history.
    read_raw(last_);
    last_round_ = net.round();
    if (opts_.every_rounds > 0) attach();
  }

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  ~Sampler() { detach(); }

  /// Install the network round observer (sample every `every_rounds`).
  /// The observer slot is exclusive; the sampler owns it until detach().
  void attach() {
    SKS_CHECK(opts_.every_rounds > 0);
    net_->set_round_observer([this](std::uint64_t r) {
      if (r % opts_.every_rounds == 0) sample();
    });
    attached_ = true;
  }

  /// Uninstall the round observer. Idempotent; must run before the
  /// network is destroyed (the destructor calls it, so destroying the
  /// sampler first is enough).
  void detach() {
    if (attached_) {
      net_->set_round_observer(nullptr);
      attached_ = false;
    }
  }

  /// Cut one sample point: deltas since the previous sample for the
  /// counter series, current levels for the gauges. `epoch` tags the
  /// point for epoch-driven cadences (0 otherwise).
  void sample(std::uint64_t epoch = 0) {
    Raw cur;
    read_raw(cur);
    const std::uint64_t t = net_->round();
    const std::uint64_t round_delta = t - last_round_;
    const auto now = std::chrono::steady_clock::now();
    const double interval_s =
        std::chrono::duration<double>(now - last_wall_).count();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(now - start_).count();
    last_wall_ = now;
    last_round_ = t;

    double v[kNumSeries] = {};
    v[idx(SeriesId::kRoundsPerSec)] =
        interval_s > 0.0 ? static_cast<double>(round_delta) / interval_s
                         : 0.0;
    v[idx(SeriesId::kMessages)] =
        static_cast<double>(delta(cur.messages, last_.messages));
    v[idx(SeriesId::kBits)] =
        static_cast<double>(delta(cur.bits, last_.bits));
    v[idx(SeriesId::kDrops)] =
        static_cast<double>(delta(cur.drops, last_.drops));
    v[idx(SeriesId::kRetransmits)] =
        static_cast<double>(delta(cur.retransmits, last_.retransmits));
    v[idx(SeriesId::kSuspects)] =
        static_cast<double>(delta(cur.suspects, last_.suspects));
    v[idx(SeriesId::kDeclaredDead)] =
        static_cast<double>(delta(cur.declared_dead, last_.declared_dead));
    v[idx(SeriesId::kRecoveries)] =
        static_cast<double>(delta(cur.recoveries, last_.recoveries));
    v[idx(SeriesId::kCorrupted)] =
        static_cast<double>(delta(cur.corrupted, last_.corrupted));
    v[idx(SeriesId::kQuarantined)] =
        static_cast<double>(delta(cur.quarantined, last_.quarantined));
    v[idx(SeriesId::kScrubs)] =
        static_cast<double>(delta(cur.scrubs, last_.scrubs));
    v[idx(SeriesId::kDigestMismatches)] = static_cast<double>(
        delta(cur.digest_mismatches, last_.digest_mismatches));
    v[idx(SeriesId::kWindowStalls)] =
        static_cast<double>(delta(cur.window_stalls, last_.window_stalls));
    v[idx(SeriesId::kSheds)] =
        static_cast<double>(delta(cur.sheds, last_.sheds));
    const sim::PoolStats pools = sim::PoolDirectory::instance().totals();
    v[idx(SeriesId::kPoolAllocated)] = static_cast<double>(pools.allocated);
    v[idx(SeriesId::kPoolParked)] = static_cast<double>(pools.parked_global);
    v[idx(SeriesId::kInFlight)] = static_cast<double>(net_->data_in_flight());
    v[idx(SeriesId::kImbalance)] = imbalance(cur.shard_messages);
    v[idx(SeriesId::kQueueDepth)] =
        queue_depth_probe_ ? static_cast<double>(queue_depth_probe_()) : 0.0;
    v[idx(SeriesId::kBatchSize)] =
        batch_size_probe_ ? static_cast<double>(batch_size_probe_()) : 0.0;

    for (std::size_t i = 0; i < kNumSeries; ++i) series_[i].push(t, v[i]);

    cum_.rounds += round_delta;
    cum_.messages += delta(cur.messages, last_.messages);
    cum_.bits += delta(cur.bits, last_.bits);
    cum_.drops += delta(cur.drops, last_.drops);
    cum_.retransmits += delta(cur.retransmits, last_.retransmits);
    cum_.suspects += delta(cur.suspects, last_.suspects);
    cum_.declared_dead += delta(cur.declared_dead, last_.declared_dead);
    cum_.recoveries += delta(cur.recoveries, last_.recoveries);
    cum_.corrupted += delta(cur.corrupted, last_.corrupted);
    cum_.quarantined += delta(cur.quarantined, last_.quarantined);
    cum_.scrubs += delta(cur.scrubs, last_.scrubs);
    cum_.digest_mismatches +=
        delta(cur.digest_mismatches, last_.digest_mismatches);
    cum_.window_stalls += delta(cur.window_stalls, last_.window_stalls);
    cum_.sheds += delta(cur.sheds, last_.sheds);
    ++cum_.samples;
    last_ = std::move(cur);

    if (stream_ != nullptr) {
      emit_ndjson(*stream_, t, epoch, round_delta, wall_ms, v);
    }
  }

  const TimeSeries& series(SeriesId id) const { return series_[idx(id)]; }
  const Cumulative& cumulative() const { return cum_; }
  const Options& options() const { return opts_; }
  const sim::Network& net() const { return *net_; }

  // ---- Harness-level gauges --------------------------------------------
  //
  // Queue depth (buffered client ops) and the adaptive batch limit live
  // above the network, so the harness wires probes in; without one the
  // series samples 0. Probes are read at sample points only — same
  // round-barrier safety as every other read here.

  void set_queue_depth_probe(std::function<std::uint64_t()> probe) {
    queue_depth_probe_ = std::move(probe);
  }
  void set_batch_size_probe(std::function<std::uint64_t()> probe) {
    batch_size_probe_ = std::move(probe);
  }

 private:
  /// One consistent read of every cumulative source. Scalar facade
  /// accessors only — no snapshot maps are materialized on a sample.
  struct Raw {
    std::uint64_t messages = 0;
    std::uint64_t bits = 0;
    std::uint64_t drops = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t suspects = 0;
    std::uint64_t declared_dead = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t scrubs = 0;
    std::uint64_t digest_mismatches = 0;
    std::uint64_t window_stalls = 0;
    std::uint64_t sheds = 0;
    std::vector<std::uint64_t> shard_messages;
  };

  static constexpr std::size_t idx(SeriesId id) {
    return static_cast<std::size_t>(id);
  }

  /// Window-reset-tolerant delta (see file comment).
  static std::uint64_t delta(std::uint64_t cur, std::uint64_t prev) {
    return cur >= prev ? cur - prev : cur;
  }

  void read_raw(Raw& out) const {
    const sim::Metrics& m = net_->metrics();
    out.messages = m.total_messages();
    out.bits = m.total_bits();
    out.drops = m.dropped();
    out.retransmits = m.retransmitted();
    out.suspects = m.suspects();
    out.declared_dead = m.declared_dead();
    out.recoveries = m.recoveries();
    out.corrupted = m.corrupted();
    out.quarantined = m.quarantined();
    out.scrubs = m.scrubs();
    out.digest_mismatches = m.digest_mismatches();
    out.window_stalls = m.window_stalls();
    out.sheds = m.sheds();
    out.shard_messages = m.shard_message_counts();
  }

  /// Max/mean of per-shard delivery deltas this interval: 1.0 = evenly
  /// loaded shards, S = all traffic on one of S shards.
  double imbalance(const std::vector<std::uint64_t>& cur) const {
    if (cur.size() != last_.shard_messages.size() || cur.size() < 2) {
      return 1.0;
    }
    std::uint64_t sum = 0, mx = 0;
    for (std::size_t s = 0; s < cur.size(); ++s) {
      const std::uint64_t d = delta(cur[s], last_.shard_messages[s]);
      sum += d;
      mx = std::max(mx, d);
    }
    if (sum == 0) return 1.0;
    return static_cast<double>(mx) * static_cast<double>(cur.size()) /
           static_cast<double>(sum);
  }

  void emit_ndjson(std::ostream& os, std::uint64_t t, std::uint64_t epoch,
                   std::uint64_t round_delta, double wall_ms,
                   const double (&v)[kNumSeries]) const {
    os << "{\"t\":" << t << ",\"epoch\":" << epoch
       << ",\"rounds\":" << round_delta << ",\"wall_ms\":" << wall_ms;
    for (std::size_t i = 0; i < kNumSeries; ++i) {
      os << ",\"" << series_name(static_cast<SeriesId>(i))
         << "\":" << v[i];
    }
    os << "}\n" << std::flush;  // line-buffered so sks_top can tail live
  }

  sim::Network* net_;
  Options opts_;
  std::ostream* stream_;
  bool attached_ = false;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_wall_;
  std::uint64_t last_round_ = 0;
  Raw last_;
  Cumulative cum_;
  std::vector<TimeSeries> series_;
  std::function<std::uint64_t()> queue_depth_probe_;
  std::function<std::uint64_t()> batch_size_probe_;
};

}  // namespace sks::obs
