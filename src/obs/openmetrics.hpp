// OpenMetrics text exposition for the telemetry sampler.
//
// Renders a Sampler's cumulative counters and latest gauge levels in the
// OpenMetrics text format (the Prometheus exposition superset): one
// `# TYPE` header per family, `_total`-suffixed counter samples, and the
// mandatory `# EOF` terminator. Metric names carry the `sks_` prefix;
// every sample carries the sampler's `run` label so expositions from
// several benches can be scraped into one store.
#pragma once

#include <ostream>
#include <string>

#include "obs/sampler.hpp"

namespace sks::obs {

namespace detail {
/// Escape a label value per the exposition format (backslash, quote,
/// newline).
inline std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}
}  // namespace detail

/// Write one complete OpenMetrics exposition of `sampler`'s state.
inline void write_openmetrics(std::ostream& os, const Sampler& sampler) {
  const std::string label =
      "{run=\"" + detail::escape_label(sampler.options().label) + "\"}";
  const Sampler::Cumulative& c = sampler.cumulative();

  auto counter = [&](const char* name, const char* help, std::uint64_t v) {
    os << "# TYPE sks_" << name << " counter\n"
       << "# HELP sks_" << name << " " << help << "\n"
       << "sks_" << name << "_total" << label << " " << v << "\n";
  };
  auto gauge = [&](const char* name, const char* help, double v) {
    os << "# TYPE sks_" << name << " gauge\n"
       << "# HELP sks_" << name << " " << help << "\n"
       << "sks_" << name << label << " " << v << "\n";
  };

  counter("rounds", "simulator rounds elapsed", c.rounds);
  counter("messages", "host-crossing messages delivered", c.messages);
  counter("message_bits", "sum of delivered message sizes", c.bits);
  counter("drops", "messages lost in the channel", c.drops);
  counter("retransmits", "reliable-transport re-sends", c.retransmits);
  counter("suspects", "failure-detector suspicions raised", c.suspects);
  counter("declared_dead", "nodes declared crash-stopped", c.declared_dead);
  counter("recoveries", "suspected nodes reintegrated", c.recoveries);
  counter("corrupted", "corrupted frames rejected by the CRC trailer",
          c.corrupted);
  counter("quarantined", "poison records abandoned by senders",
          c.quarantined);
  counter("scrubs", "replica scrub-pass owner audits", c.scrubs);
  counter("digest_mismatches", "replica state-digest mismatches",
          c.digest_mismatches);
  counter("window_stalls", "sends parked by the flow-control window",
          c.window_stalls);
  counter("sheds", "inserts rejected by admission control", c.sheds);
  counter("telemetry_samples", "sample points cut", c.samples);

  auto latest = [&](SeriesId id) {
    const TimeSeries& s = sampler.series(id);
    return s.empty() ? 0.0 : s.back().value;
  };
  gauge("rounds_per_sec", "simulator rounds per wall second",
        latest(SeriesId::kRoundsPerSec));
  gauge("pool_allocated_blocks", "payload-pool blocks ever heap-allocated",
        latest(SeriesId::kPoolAllocated));
  gauge("pool_parked_blocks", "payload blocks parked in shared overflows",
        latest(SeriesId::kPoolParked));
  gauge("in_flight_messages", "data messages in flight",
        latest(SeriesId::kInFlight));
  gauge("shard_imbalance", "max/mean per-shard deliveries, last interval",
        latest(SeriesId::kImbalance));
  gauge("queue_depth", "client ops buffered across nodes",
        latest(SeriesId::kQueueDepth));
  gauge("batch_size", "adaptive per-node batch limit",
        latest(SeriesId::kBatchSize));

  os << "# EOF\n";
}

}  // namespace sks::obs
