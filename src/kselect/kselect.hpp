// Protocol KSelect (Section 4): distributed k-selection over m = poly(n)
// elements spread across the n nodes of the aggregation tree, in O(log n)
// rounds w.h.p. with O(log n)-bit messages and Õ(1) congestion.
//
// Structure (anchor-driven, all steps broadcast down the tree and answered
// by up-aggregations; per-host steps are sequence-numbered so asynchronous
// non-FIFO delivery cannot reorder them):
//
//  Phase 1 (log q + 1 iterations, m <= n^q):
//    * every node reports the priorities of its ⌊k/n⌋-th and ⌈k/n⌉-th
//      smallest local candidates; the anchor takes min/max (P_min/P_max),
//      verifies by exact counting that the k-th element survives (the
//      paper's Lemma 4.3 argument made unconditional), and prunes
//      candidates outside [P_min, P_max].
//  Phase 2 (until N <= ~sqrt(n)):
//    2a: each candidate is sampled with probability sqrt(n)/N; the anchor
//        learns n' = |C'| and assigns positions 1..n' by interval
//        decomposition (the Skeap Phase 3 mechanism).
//    2b: distributed sorting: every sampled candidate is routed to the
//        node owning its position point, which spawns a copy tree T(v_i)
//        over de Bruijn halving hops; the j-th copy meets the i-th copy of
//        candidate j at the rendezvous point h(i,j) = h(j,i), votes flow
//        back and aggregate up the copy tree, and the root learns the
//        candidate's order, which it publishes on a waiting-get "order
//        board" keyed by (session, iter, order).
//    2c: the anchor fetches the candidates with orders l = ⌊kn'/N - δ⌋ and
//        r = ⌈kn'/N + δ⌉ (δ = Θ(sqrt(log n) n^{1/4})), computes their
//        exact ranks by counting, verifies the k-th element lies between
//        them, and prunes outside [c_l, c_r].
//  Phase 3 (N small): one sorting pass with every candidate sampled makes
//    orders exact ranks; the anchor fetches order k — the answer.
//
// Robustness beyond the paper: every w.h.p. pruning step is verified by an
// exact counting aggregation before any candidate is discarded, so the
// returned element is deterministically correct; the w.h.p. part only
// affects running time. Stragglers from closed iterations are dropped.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "aggregation/aggregator.hpp"
#include "aggregation/broadcast.hpp"
#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/interval.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "overlay/overlay_node.hpp"
#include "trace/tracer.hpp"

namespace sks::kselect {

using CandidateKey = Element;  // (priority, id) — the total order of §1.2

inline constexpr CandidateKey kMinKey{0, 0};
inline constexpr CandidateKey kMaxKey{~0ULL, ~0ULL};

struct KSelectConfig {
  std::size_t num_nodes = 8;
  std::uint64_t hash_seed = 0xca11ab1eULL;
  std::uint64_t rng_seed = 0x5a317ULL;
  std::uint64_t key_bits = 48;    ///< bits charged per candidate key
  std::uint64_t count_bits = 32;  ///< bits charged per count
  double delta_scale = 0.5;       ///< ablation knob for δ
  double sample_scale = 3.0;      ///< C' target is sample_scale * sqrt(n)
  std::uint32_t phase1_iterations = 0;  ///< 0 = auto (⌊log2 q⌋ + 1)
  std::uint32_t max_iterations = 64;
};

// ---------------------------------------------------------------------------
// Broadcast steps and aggregated replies
// ---------------------------------------------------------------------------

enum class StepKind : std::uint8_t {
  kSnapshot,    ///< snapshot local elements into the candidate set
  kQuantiles,   ///< report local ⌊k/n⌋-th / ⌈k/n⌉-th candidates
  kCountRange,  ///< count candidates < lo and > hi
  kPruneRange,  ///< discard candidates outside [lo, hi]
  kSample,      ///< sample candidates w.p. sqrt(n)/N
  kCountKeys,   ///< same as kCountRange (phase 2 naming)
  kPruneKeys,   ///< same as kPruneRange
  kCloseIter,   ///< drop per-iteration state; stragglers are discarded
  kDone,        ///< session finished; result included
};

struct KStep {
  static constexpr const char* kName = "kselect.step";
  std::uint64_t session = 0;
  std::uint32_t step_seq = 0;
  std::uint32_t iter = 0;
  StepKind kind = StepKind::kSnapshot;
  std::uint64_t k = 0;  ///< kQuantiles
  std::uint64_t N = 0;  ///< kQuantiles (n), kSample (N)
  CandidateKey lo = kMinKey;
  CandidateKey hi = kMaxKey;
  bool has_lo = false;
  bool has_hi = false;
  CandidateKey result{};
  bool has_result = false;

  std::uint64_t size_bits() const {
    // Session/step/iter counters plus at most two keys and two counts —
    // O(log n) bits total.
    return 48 + 2 * 48 + 2 * 32;
  }

  void encode(wire::WireWriter& w) const {
    w.leb(session);
    w.leb(step_seq);
    w.leb(iter);
    w.bits(static_cast<std::uint64_t>(kind), 4);
    w.leb(k);
    w.leb(N);
    w.boolean(has_lo);
    if (has_lo) lo.encode(w);
    w.boolean(has_hi);
    if (has_hi) hi.encode(w);
    w.boolean(has_result);
    if (has_result) result.encode(w);
  }

  static KStep decode(wire::WireReader& r) {
    KStep s;
    s.session = r.leb();
    s.step_seq = static_cast<std::uint32_t>(r.leb());
    s.iter = static_cast<std::uint32_t>(r.leb());
    const std::uint64_t kind = r.bits(4);
    SKS_CHECK_MSG(kind <= static_cast<std::uint64_t>(StepKind::kDone),
                  "wire: bad StepKind");
    s.kind = static_cast<StepKind>(kind);
    s.k = r.leb();
    s.N = r.leb();
    s.has_lo = r.boolean();
    if (s.has_lo) s.lo = CandidateKey::decode(r);
    s.has_hi = r.boolean();
    if (s.has_hi) s.hi = CandidateKey::decode(r);
    s.has_result = r.boolean();
    if (s.has_result) s.result = CandidateKey::decode(r);
    return s;
  }
};

struct KReply {
  static constexpr const char* kName = "kselect.reply";
  StepKind kind = StepKind::kSnapshot;
  std::uint64_t a = 0;  ///< count (sum-combined)
  std::uint64_t b = 0;  ///< second count
  CandidateKey ka = kMaxKey;  ///< min-combined key (P_min candidate)
  CandidateKey kb = kMinKey;  ///< max-combined key (P_max candidate)
  bool has_ka = false;
  bool has_kb = false;

  std::uint64_t size_bits() const { return 8 + 2 * 32 + 2 * 48; }

  void encode(wire::WireWriter& w) const {
    w.bits(static_cast<std::uint64_t>(kind), 4);
    w.leb(a);
    w.leb(b);
    w.boolean(has_ka);
    if (has_ka) ka.encode(w);
    w.boolean(has_kb);
    if (has_kb) kb.encode(w);
  }

  static KReply decode(wire::WireReader& r) {
    KReply rep;
    const std::uint64_t kind = r.bits(4);
    SKS_CHECK_MSG(kind <= static_cast<std::uint64_t>(StepKind::kDone),
                  "wire: bad StepKind");
    rep.kind = static_cast<StepKind>(kind);
    rep.a = r.leb();
    rep.b = r.leb();
    rep.has_ka = r.boolean();
    if (rep.has_ka) rep.ka = CandidateKey::decode(r);
    rep.has_kb = r.boolean();
    if (rep.has_kb) rep.kb = CandidateKey::decode(r);
    return rep;
  }

  void combine(const KReply& other) {
    SKS_CHECK(kind == other.kind);
    a += other.a;
    b += other.b;
    if (other.has_ka && (!has_ka || other.ka < ka)) {
      ka = other.ka;
      has_ka = true;
    }
    if (other.has_kb && (!has_kb || kb < other.kb)) {
      kb = other.kb;
      has_kb = true;
    }
  }
};

struct SampleUp {
  static constexpr const char* kName = "kselect.sample_up";
  std::uint64_t count = 0;
  std::uint64_t size_bits() const { return 32; }

  void encode(wire::WireWriter& w) const { w.delta(count); }
  static SampleUp decode(wire::WireReader& r) { return SampleUp{r.delta()}; }
};

struct SampleDown {
  static constexpr const char* kName = "kselect.sample_down";
  Interval iv = Interval::empty_interval();
  std::uint64_t nprime = 0;  ///< |C'| — global knowledge shipped downwards
  std::uint64_t size_bits() const { return 96; }

  void encode(wire::WireWriter& w) const {
    iv.encode(w);
    w.leb(nprime);
  }

  static SampleDown decode(wire::WireReader& r) {
    SampleDown d;
    d.iv = Interval::decode(r);
    d.nprime = r.leb();
    return d;
  }
};

// ---------------------------------------------------------------------------
// Routed payloads of the distributed sorting machinery (Phase 2b)
// ---------------------------------------------------------------------------

/// A sampled candidate routed to the node responsible for its position.
struct SeedMsg final : sim::Action<SeedMsg> {
  static constexpr const char* kActionName = "kselect.seed";
  std::uint64_t session = 0;
  std::uint32_t iter = 0;
  std::uint64_t pos = 0;      ///< i = pos(c_i) ∈ [1, n']
  std::uint64_t nprime = 0;   ///< n'
  CandidateKey c{};
  std::uint64_t size_bits() const override { return 48 + 2 * 32 + 48; }

  void encode(wire::WireWriter& w) const override {
    w.leb(session);
    w.leb(iter);
    w.leb(pos);
    w.leb(nprime);
    c.encode(w);
  }

  static sim::Owned<SeedMsg> decode(wire::WireReader& r) {
    auto m = sim::make_payload<SeedMsg>();
    m->session = r.leb();
    m->iter = static_cast<std::uint32_t>(r.leb());
    m->pos = r.leb();
    m->nprime = r.leb();
    m->c = CandidateKey::decode(r);
    return m;
  }
};

/// A copy-tree split: the pair ([a, b], c_i) of Algorithm 3.
struct CopyMsg final : sim::Action<CopyMsg> {
  static constexpr const char* kActionName = "kselect.copy";
  std::uint64_t session = 0;
  std::uint32_t iter = 0;
  std::uint64_t i = 0;
  std::uint64_t a = 0, b = 0;
  std::uint64_t nprime = 0;
  CandidateKey c{};
  NodeId parent_host = kNoNode;
  std::uint64_t parent_mid = 0;
  std::uint64_t size_bits() const override { return 48 + 5 * 32 + 48; }

  void encode(wire::WireWriter& w) const override {
    w.leb(session);
    w.leb(iter);
    w.leb(i);
    w.leb(a);
    w.leb(b);
    w.leb(nprime);
    c.encode(w);
    w.leb(parent_host);
    w.leb(parent_mid);
  }

  static sim::Owned<CopyMsg> decode(wire::WireReader& r) {
    auto m = sim::make_payload<CopyMsg>();
    m->session = r.leb();
    m->iter = static_cast<std::uint32_t>(r.leb());
    m->i = r.leb();
    m->a = r.leb();
    m->b = r.leb();
    m->nprime = r.leb();
    m->c = CandidateKey::decode(r);
    m->parent_host = static_cast<NodeId>(r.leb());
    m->parent_mid = r.leb();
    return m;
  }
};

/// Copy c_{i,j} arriving at the rendezvous node responsible for h(i, j).
struct RdvMsg final : sim::Action<RdvMsg> {
  static constexpr const char* kActionName = "kselect.rdv";
  std::uint64_t session = 0;
  std::uint32_t iter = 0;
  std::uint64_t i = 0;  ///< candidate index
  std::uint64_t j = 0;  ///< copy index
  CandidateKey c{};
  NodeId back_host = kNoNode;  ///< where copy c_{i,j} lives
  std::uint64_t size_bits() const override { return 48 + 3 * 32 + 48; }

  void encode(wire::WireWriter& w) const override {
    w.leb(session);
    w.leb(iter);
    w.leb(i);
    w.leb(j);
    c.encode(w);
    w.leb(back_host);
  }

  static sim::Owned<RdvMsg> decode(wire::WireReader& r) {
    auto m = sim::make_payload<RdvMsg>();
    m->session = r.leb();
    m->iter = static_cast<std::uint32_t>(r.leb());
    m->i = r.leb();
    m->j = r.leb();
    m->c = CandidateKey::decode(r);
    m->back_host = static_cast<NodeId>(r.leb());
    return m;
  }
};

/// The comparison outcome sent back to a copy holder: smaller = 1 iff the
/// peer candidate precedes c_i in the total order (the paper's (1,0)).
struct VoteMsg final : sim::Action<VoteMsg> {
  static constexpr const char* kActionName = "kselect.vote";
  std::uint64_t session = 0;
  std::uint32_t iter = 0;
  std::uint64_t i = 0;
  std::uint64_t mid = 0;  ///< which copy-tree vertex (its kept index j)
  std::uint32_t smaller = 0;
  std::uint32_t larger = 0;
  std::uint64_t size_bits() const override { return 48 + 3 * 32 + 2; }

  void encode(wire::WireWriter& w) const override {
    w.leb(session);
    w.leb(iter);
    w.leb(i);
    w.leb(mid);
    w.leb(smaller);
    w.leb(larger);
  }

  static sim::Owned<VoteMsg> decode(wire::WireReader& r) {
    auto m = sim::make_payload<VoteMsg>();
    m->session = r.leb();
    m->iter = static_cast<std::uint32_t>(r.leb());
    m->i = r.leb();
    m->mid = r.leb();
    m->smaller = static_cast<std::uint32_t>(r.leb());
    m->larger = static_cast<std::uint32_t>(r.leb());
    return m;
  }
};

/// Partial (L, R) vector aggregated up a copy tree.
struct TreeSumMsg final : sim::Action<TreeSumMsg> {
  static constexpr const char* kActionName = "kselect.treesum";
  std::uint64_t session = 0;
  std::uint32_t iter = 0;
  std::uint64_t i = 0;
  std::uint64_t parent_mid = 0;
  std::uint64_t L = 0, R = 0;
  std::uint64_t size_bits() const override { return 48 + 4 * 32; }

  void encode(wire::WireWriter& w) const override {
    w.leb(session);
    w.leb(iter);
    w.leb(i);
    w.leb(parent_mid);
    w.leb(L);
    w.leb(R);
  }

  static sim::Owned<TreeSumMsg> decode(wire::WireReader& r) {
    auto m = sim::make_payload<TreeSumMsg>();
    m->session = r.leb();
    m->iter = static_cast<std::uint32_t>(r.leb());
    m->i = r.leb();
    m->parent_mid = r.leb();
    m->L = r.leb();
    m->R = r.leb();
    return m;
  }
};

/// Publish "candidate with order `order`" on the order board.
struct OrderPut final : sim::Action<OrderPut> {
  static constexpr const char* kActionName = "kselect.order_put";
  std::uint64_t session = 0;
  std::uint32_t iter = 0;
  std::uint64_t order = 0;
  CandidateKey c{};
  std::uint64_t size_bits() const override { return 48 + 2 * 32 + 48; }

  void encode(wire::WireWriter& w) const override {
    w.leb(session);
    w.leb(iter);
    w.leb(order);
    c.encode(w);
  }

  static sim::Owned<OrderPut> decode(wire::WireReader& r) {
    auto m = sim::make_payload<OrderPut>();
    m->session = r.leb();
    m->iter = static_cast<std::uint32_t>(r.leb());
    m->order = r.leb();
    m->c = CandidateKey::decode(r);
    return m;
  }
};

/// Fetch the candidate with a given order; waits if not yet published.
struct OrderGet final : sim::Action<OrderGet> {
  static constexpr const char* kActionName = "kselect.order_get";
  std::uint64_t session = 0;
  std::uint32_t iter = 0;
  std::uint64_t order = 0;
  NodeId back = kNoNode;
  std::uint64_t tag = 0;
  std::uint64_t size_bits() const override { return 48 + 3 * 32; }

  void encode(wire::WireWriter& w) const override {
    w.leb(session);
    w.leb(iter);
    w.leb(order);
    w.leb(back);
    w.leb(tag);
  }

  static sim::Owned<OrderGet> decode(wire::WireReader& r) {
    auto m = sim::make_payload<OrderGet>();
    m->session = r.leb();
    m->iter = static_cast<std::uint32_t>(r.leb());
    m->order = r.leb();
    m->back = static_cast<NodeId>(r.leb());
    m->tag = r.leb();
    return m;
  }
};

struct OrderReply final : sim::Action<OrderReply> {
  static constexpr const char* kActionName = "kselect.order_reply";
  std::uint64_t tag = 0;
  CandidateKey c{};
  std::uint64_t size_bits() const override { return 32 + 48; }

  void encode(wire::WireWriter& w) const override {
    w.leb(tag);
    c.encode(w);
  }

  static sim::Owned<OrderReply> decode(wire::WireReader& r) {
    auto m = sim::make_payload<OrderReply>();
    m->tag = r.leb();
    m->c = CandidateKey::decode(r);
    return m;
  }
};

// ---------------------------------------------------------------------------
// The component
// ---------------------------------------------------------------------------

/// Per-iteration diagnostics recorded at the anchor (experiments E4/E5).
struct IterationStat {
  int phase = 1;         ///< 1, 2, or 3
  std::uint32_t iter = 0;
  std::uint64_t n_before = 0;
  std::uint64_t n_after = 0;
  std::uint64_t sampled = 0;  ///< n' (phases 2/3)
};

class KSelectComponent {
 public:
  /// Returns the host's local elements (v.E) at snapshot time.
  using Provider = std::function<std::vector<CandidateKey>()>;
  /// Runs at the anchor when the session finishes. nullopt iff k is out of
  /// range (k < 1 or k > m).
  using ResultFn =
      std::function<void(std::uint64_t session, std::optional<CandidateKey>)>;

  KSelectComponent(overlay::OverlayNode& host, KSelectConfig cfg,
                   Provider provider, ResultFn on_result)
      : host_(host),
        cfg_(cfg),
        hash_(cfg.hash_seed),
        rng_(cfg.rng_seed),
        provider_(std::move(provider)),
        on_result_(std::move(on_result)),
        steps_(host,
               [this](std::uint64_t epoch, const KStep& step) {
                 enqueue_step(epoch, step);
               }),
        replies_(host,
                 [](KReply& acc, const KReply& other) { acc.combine(other); },
                 [this](std::uint64_t epoch, const KReply& reply) {
                   on_reply(epoch, reply);
                 }),
        sample_agg_(
            host,
            [](SampleUp& acc, const SampleUp& o) { acc.count += o.count; },
            [](const SampleDown& d, const std::vector<SampleUp>& children) {
              std::vector<SampleDown> parts(children.size());
              Interval rest = d.iv;
              for (std::size_t c = 0; c < children.size(); ++c) {
                parts[c].iv = rest.take_front(children[c].count);
                parts[c].nprime = d.nprime;
              }
              SKS_CHECK(rest.empty());
              return parts;
            },
            [this](std::uint64_t epoch, const SampleUp& total) {
              on_sample_total(epoch, total.count);
            },
            [this](std::uint64_t epoch, SampleDown down) {
              on_positions(epoch, down.iv, down.nprime);
            }) {
    register_routed_handlers();
  }

  /// Start a k-selection; must be called on the anchor host. The session
  /// id must be fresh and strictly larger than any previous session's.
  void start(std::uint64_t session, std::uint64_t k) {
    SKS_CHECK_MSG(host_.hosts_anchor(), "start() requires the anchor host");
    SKS_CHECK_MSG(!anchor_sessions_.count(session), "session id reused");
    AnchorSession& as = anchor_sessions_[session];
    as.k = k;
    broadcast_step(session, StepKind::kSnapshot);
  }

  const std::vector<IterationStat>& stats() const { return stats_; }

  /// Remaining candidates at this host for a session (diagnostics).
  std::size_t candidates_remaining(std::uint64_t session) const {
    auto it = host_sessions_.find(session);
    return it == host_sessions_.end() ? 0 : it->second.candidates.size();
  }

  /// Discard every session's state, host and anchor side — part of an
  /// epoch rollback after a declared crash. Requires the network drained
  /// to idle first; the coordinator then retries the selection under a
  /// fresh (strictly larger) session id.
  void abort_all() {
    host_sessions_.clear();
    anchor_sessions_.clear();
    tree_nodes_.clear();
    rdv_waiting_.clear();
    order_board_.clear();
    order_waiting_.clear();
    replies_.abort_all();
    sample_agg_.abort_all();
  }

 private:
  // ---- keyspaces ---------------------------------------------------------
  Point point_pos(std::uint64_t s, std::uint32_t it, std::uint64_t pos) const {
    return hash_.point({1, s, it, pos});
  }
  Point point_rdv(std::uint64_t s, std::uint32_t it, std::uint64_t i,
                  std::uint64_t j) const {
    if (i > j) std::swap(i, j);
    return hash_.point({2, s, it, i, j});
  }
  Point point_order(std::uint64_t s, std::uint32_t it,
                    std::uint64_t order) const {
    return hash_.point({3, s, it, order});
  }

  // ---- anchor state ------------------------------------------------------
  enum class Phase { kInit, kPhase1, kPhase2, kPhase3 };

  struct AnchorSession {
    Phase phase = Phase::kInit;
    std::uint64_t k = 0;
    std::uint64_t N = 0;
    std::uint64_t m = 0;
    std::uint32_t iter = 0;
    std::uint32_t step_seq = 0;
    std::uint32_t phase1_left = 0;
    std::uint32_t total_iters = 0;
    // Pending range (phase 1: keys from quantiles; phase 2: c_l/c_r).
    CandidateKey lo = kMinKey, hi = kMaxKey;
    bool has_lo = false, has_hi = false;
    // Phase 2/3 sorting state.
    std::uint64_t nprime = 0;
    std::uint64_t want_l = 0, want_r = 0;
    bool need_l = false, need_r = false;
    bool got_l = false, got_r = false;
    CandidateKey cl{}, cr{};
    std::uint64_t n_before_iter = 0;
  };

  // ---- host state --------------------------------------------------------
  struct HostSession {
    std::vector<CandidateKey> candidates;  ///< sorted v.C
    std::uint32_t next_step = 0;
    std::map<std::uint32_t, KStep> buffered;
    std::vector<CandidateKey> sampled;  ///< this iteration's C'_v
    std::uint32_t min_open_iter = 0;    ///< iters below this are closed
    bool done = false;
  };

  struct TreeKey {
    std::uint64_t session;
    std::uint32_t iter;
    std::uint64_t i;
    std::uint64_t mid;
    friend bool operator<(const TreeKey& x, const TreeKey& y) {
      return std::tie(x.session, x.iter, x.i, x.mid) <
             std::tie(y.session, y.iter, y.i, y.mid);
    }
  };

  struct TreeNode {
    CandidateKey c{};
    NodeId parent_host = kNoNode;
    std::uint64_t parent_mid = 0;
    std::uint64_t nprime = 0;
    int waiting = 0;  ///< own vote (1) + child sums
    std::uint64_t L = 0, R = 0;
    bool is_root = false;
  };

  struct RdvKey {
    std::uint64_t session;
    std::uint32_t iter;
    std::uint64_t i;  ///< min index
    std::uint64_t j;  ///< max index
    friend bool operator<(const RdvKey& x, const RdvKey& y) {
      return std::tie(x.session, x.iter, x.i, x.j) <
             std::tie(y.session, y.iter, y.i, y.j);
    }
  };

  struct RdvHalf {
    CandidateKey c{};
    std::uint64_t copy_of = 0;  ///< which candidate this copy belongs to
    std::uint64_t mid = 0;      ///< copy index at its holder
    NodeId back_host = kNoNode;
  };

  struct OrderKey {
    std::uint64_t session;
    std::uint32_t iter;
    std::uint64_t order;
    friend bool operator<(const OrderKey& x, const OrderKey& y) {
      return std::tie(x.session, x.iter, x.order) <
             std::tie(y.session, y.iter, y.order);
    }
  };

  // ---- stepping ----------------------------------------------------------

  static const char* phase_span(Phase p) {
    switch (p) {
      case Phase::kPhase1: return "kselect.phase1";
      case Phase::kPhase2: return "kselect.phase2";
      case Phase::kPhase3: return "kselect.phase3";
      default: return nullptr;
    }
  }

  /// Anchor phase transition; emits the corresponding trace spans (keyed
  /// by session) when tracing is enabled.
  void set_phase(std::uint64_t session, AnchorSession& as, Phase next) {
    if (as.phase == next) return;
    trace::Tracer& tr = host_.tracer();
    if (tr.enabled()) {
      if (const char* prev = phase_span(as.phase)) {
        tr.phase_end(host_.id(), prev, session);
      }
      if (const char* name = phase_span(next)) {
        tr.phase_begin(host_.id(), name, session);
      }
    }
    as.phase = next;
  }

  std::uint64_t reply_epoch(std::uint64_t session, std::uint32_t step) const {
    return session * 65536 + step;
  }
  std::uint64_t iter_epoch(std::uint64_t session, std::uint32_t iter) const {
    return session * 65536 + iter;
  }

  void broadcast_step(std::uint64_t session, StepKind kind,
                      std::function<void(KStep&)> fill = nullptr) {
    AnchorSession& as = anchor_sessions_.at(session);
    KStep step;
    step.session = session;
    step.step_seq = as.step_seq++;
    step.iter = as.iter;
    step.kind = kind;
    if (fill) fill(step);
    steps_.broadcast(reply_epoch(session, step.step_seq), step);
  }

  void enqueue_step(std::uint64_t, const KStep& step) {
    HostSession& hs = host_sessions_[step.session];
    hs.buffered.emplace(step.step_seq, step);
    while (!hs.buffered.empty() &&
           hs.buffered.begin()->first == hs.next_step) {
      KStep next = hs.buffered.begin()->second;
      hs.buffered.erase(hs.buffered.begin());
      ++hs.next_step;
      apply_step(hs, next);
    }
  }

  void reply(const KStep& step, KReply r) {
    r.kind = step.kind;
    replies_.contribute(reply_epoch(step.session, step.step_seq),
                        std::move(r));
  }

  // ---- host-side step execution ------------------------------------------

  void apply_step(HostSession& hs, const KStep& step) {
    switch (step.kind) {
      case StepKind::kSnapshot: {
        hs.candidates = provider_();
        std::sort(hs.candidates.begin(), hs.candidates.end());
        KReply r;
        r.a = hs.candidates.size();
        reply(step, r);
        break;
      }
      case StepKind::kQuantiles: {
        // Local ⌊k/n⌋-th and ⌈k/n⌉-th smallest candidates; a node without
        // enough candidates contributes the neutral element on that side,
        // which the anchor's verification step makes safe.
        const std::uint64_t n = step.N;
        const std::uint64_t idx_lo = step.k / n;
        const std::uint64_t idx_hi = (step.k + n - 1) / n;
        KReply r;
        if (idx_lo >= 1 && idx_lo <= hs.candidates.size()) {
          r.ka = hs.candidates[idx_lo - 1];
          r.has_ka = true;
        }
        if (idx_hi >= 1 && idx_hi <= hs.candidates.size()) {
          r.kb = hs.candidates[idx_hi - 1];
          r.has_kb = true;
        }
        reply(step, r);
        break;
      }
      case StepKind::kCountRange:
      case StepKind::kCountKeys: {
        KReply r;
        if (step.has_lo) {
          r.a = static_cast<std::uint64_t>(
              std::lower_bound(hs.candidates.begin(), hs.candidates.end(),
                               step.lo) -
              hs.candidates.begin());
        }
        if (step.has_hi) {
          r.b = static_cast<std::uint64_t>(
              hs.candidates.end() -
              std::upper_bound(hs.candidates.begin(), hs.candidates.end(),
                               step.hi));
        }
        reply(step, r);
        break;
      }
      case StepKind::kPruneRange:
      case StepKind::kPruneKeys: {
        if (step.has_hi) {
          hs.candidates.erase(
              std::upper_bound(hs.candidates.begin(), hs.candidates.end(),
                               step.hi),
              hs.candidates.end());
        }
        if (step.has_lo) {
          hs.candidates.erase(
              hs.candidates.begin(),
              std::lower_bound(hs.candidates.begin(), hs.candidates.end(),
                               step.lo));
        }
        break;  // no reply; the anchor already knows the exact counts
      }
      case StepKind::kSample: {
        hs.sampled.clear();
        if (!rng_seeded_) {
          // The host id is assigned after construction, so the per-node
          // stream is derived lazily — otherwise every node would sample
          // with an identical sequence.
          rng_.reseed(cfg_.rng_seed ^
                      (0x9e3779b97f4a7c15ULL * (host_.id() + 1)));
          rng_seeded_ = true;
        }
        if (step.N > 0) {
          const double p = cfg_.sample_scale *
                           std::sqrt(static_cast<double>(cfg_.num_nodes)) /
                           static_cast<double>(step.N);
          for (const auto& c : hs.candidates) {
            if (step.N <= phase3_threshold() || rng_.flip(p)) {
              hs.sampled.push_back(c);
            }
          }
        }
#ifdef SKS_KSELECT_DEBUG
        static std::uint64_t g_dbg_cand, g_dbg_samp, g_dbg_hosts;  // NOLINT
        g_dbg_cand += hs.candidates.size();
        g_dbg_samp += hs.sampled.size();
        if (++g_dbg_hosts == cfg_.num_nodes) {
          std::fprintf(stderr, "[hosts] iter=%u cand_total=%llu samp_total=%llu\n",
                       step.iter, (unsigned long long)g_dbg_cand,
                       (unsigned long long)g_dbg_samp);
          g_dbg_cand = g_dbg_samp = g_dbg_hosts = 0;
        }
#endif
        sample_agg_.contribute(iter_epoch(step.session, step.iter),
                               SampleUp{hs.sampled.size()});
        break;
      }
      case StepKind::kCloseIter: {
        hs.sampled.clear();
        hs.min_open_iter = step.iter + 1;
        gc_iteration(step.session, step.iter);
        break;
      }
      case StepKind::kDone: {
        hs.done = true;
        hs.sampled.clear();
        gc_session(step.session);
        if (host_.hosts_anchor()) {
          auto it = anchor_sessions_.find(step.session);
          SKS_CHECK(it != anchor_sessions_.end());
          anchor_sessions_.erase(it);
          if (on_result_) {
            on_result_(step.session,
                       step.has_result
                           ? std::optional<CandidateKey>(step.result)
                           : std::nullopt);
          }
        }
        break;
      }
    }
  }

  bool iter_closed(std::uint64_t session, std::uint32_t iter) const {
    auto it = host_sessions_.find(session);
    if (it == host_sessions_.end()) return false;
    return it->second.done || iter < it->second.min_open_iter;
  }

  void gc_iteration(std::uint64_t session, std::uint32_t iter) {
    auto in_iter = [&](auto const& key) {
      return key.session == session && key.iter == iter;
    };
    std::erase_if(tree_nodes_, [&](auto const& kv) { return in_iter(kv.first); });
    std::erase_if(rdv_waiting_, [&](auto const& kv) { return in_iter(kv.first); });
    std::erase_if(order_board_, [&](auto const& kv) { return in_iter(kv.first); });
    std::erase_if(order_waiting_,
                  [&](auto const& kv) { return in_iter(kv.first); });
  }

  void gc_session(std::uint64_t session) {
    auto in_session = [&](auto const& key) { return key.session == session; };
    std::erase_if(tree_nodes_,
                  [&](auto const& kv) { return in_session(kv.first); });
    std::erase_if(rdv_waiting_,
                  [&](auto const& kv) { return in_session(kv.first); });
    std::erase_if(order_board_,
                  [&](auto const& kv) { return in_session(kv.first); });
    std::erase_if(order_waiting_,
                  [&](auto const& kv) { return in_session(kv.first); });
  }

  // ---- anchor-side reply handling ----------------------------------------

  std::uint64_t delta() const {
    const double n = static_cast<double>(cfg_.num_nodes);
    const double d =
        std::sqrt(std::log2(std::max(n, 2.0))) * std::pow(n, 0.25) *
        cfg_.delta_scale;
    return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(d)));
  }

  std::uint64_t phase3_threshold() const {
    const auto sqrt_n = static_cast<std::uint64_t>(std::ceil(
        cfg_.sample_scale * std::sqrt(static_cast<double>(cfg_.num_nodes))));
    return std::max<std::uint64_t>({sqrt_n, 2 * delta() + 2, 8});
  }

  void on_reply(std::uint64_t epoch, const KReply& reply) {
    const std::uint64_t session = epoch / 65536;
    AnchorSession& as = anchor_sessions_.at(session);

    switch (reply.kind) {
      case StepKind::kSnapshot: {
        as.m = as.N = reply.a;
        if (as.k < 1 || as.k > as.m) {
          finish(session, std::nullopt);
          return;
        }
        const double n = std::max(static_cast<double>(cfg_.num_nodes), 2.0);
        const double m = std::max<double>(static_cast<double>(as.m), 2);
        const double q = std::max(1.0, std::log(m) / std::log(n));
        as.phase1_left =
            cfg_.phase1_iterations > 0
                ? cfg_.phase1_iterations
                : static_cast<std::uint32_t>(
                      std::floor(std::log2(std::max(q, 1.0)))) +
                      1;
        set_phase(session, as, Phase::kPhase1);
        continue_phase1(session);
        break;
      }
      case StepKind::kQuantiles: {
        as.has_lo = reply.has_ka;
        as.lo = reply.ka;
        as.has_hi = reply.has_kb;
        as.hi = reply.kb;
        broadcast_step(session, StepKind::kCountRange, [&](KStep& s) {
          s.has_lo = as.has_lo;
          s.lo = as.lo;
          s.has_hi = as.has_hi;
          s.hi = as.hi;
        });
        break;
      }
      case StepKind::kCountRange:
      case StepKind::kCountKeys: {
        // Verification (unconditional correctness): prune below only if
        // the k smallest survive; prune above only if at least k remain.
        const std::uint64_t below = reply.a;
        const std::uint64_t above = reply.b;
        bool prune_lo = as.has_lo && below < as.k && below > 0;
        bool prune_hi = as.has_hi && as.N - above >= as.k && above > 0;
        as.n_before_iter = as.N;
        if (prune_lo || prune_hi) {
          broadcast_step(session,
                         reply.kind == StepKind::kCountRange
                             ? StepKind::kPruneRange
                             : StepKind::kPruneKeys,
                         [&](KStep& s) {
                           s.has_lo = prune_lo;
                           s.lo = as.lo;
                           s.has_hi = prune_hi;
                           s.hi = as.hi;
                         });
          if (prune_lo) {
            as.k -= below;
            as.N -= below;
          }
          if (prune_hi) as.N -= above;
        }
        stats_.push_back(IterationStat{
            as.phase == Phase::kPhase1 ? 1 : 2, as.iter, as.n_before_iter,
            as.N, as.nprime});
        {
          trace::Tracer& tr = host_.tracer();
          if (tr.enabled()) {
            tr.annotate(host_.id(), "kselect.candidates", as.N, session);
          }
        }
        if (as.phase == Phase::kPhase1) {
          --as.phase1_left;
          continue_phase1(session);
        } else {
          close_iteration_and_continue(session);
        }
        break;
      }
      default:
        SKS_CHECK_MSG(false, "unexpected reply kind");
    }
  }

  void continue_phase1(std::uint64_t session) {
    AnchorSession& as = anchor_sessions_.at(session);
    if (as.phase1_left == 0 || as.N <= phase3_threshold()) {
      set_phase(session, as, Phase::kPhase2);
      start_phase2_iteration(session);
      return;
    }
    broadcast_step(session, StepKind::kQuantiles, [&](KStep& s) {
      s.k = as.k;
      s.N = cfg_.num_nodes;
    });
  }

  void start_phase2_iteration(std::uint64_t session) {
    AnchorSession& as = anchor_sessions_.at(session);
    SKS_CHECK_MSG(as.total_iters++ < cfg_.max_iterations,
                  "KSelect failed to converge");
    ++as.iter;
    if (as.N <= phase3_threshold()) set_phase(session, as, Phase::kPhase3);
    as.got_l = as.got_r = false;
    as.need_l = as.need_r = false;
    as.nprime = 0;
    broadcast_step(session, StepKind::kSample,
                   [&](KStep& s) { s.N = as.N; });
  }

  void on_sample_total(std::uint64_t epoch, std::uint64_t nprime) {
    const std::uint64_t session = epoch / 65536;
    AnchorSession& as = anchor_sessions_.at(session);
#ifdef SKS_KSELECT_DEBUG
    std::fprintf(stderr, "[anchor] iter=%u N=%llu nprime=%llu\n",
                 as.iter, (unsigned long long)as.N,
                 (unsigned long long)nprime);
#endif
    if (nprime == 0) {
      // Nobody sampled (possible only for tiny N with bad luck): retry.
      start_phase2_iteration(session);
      return;
    }
    as.nprime = nprime;
    sample_agg_.distribute(epoch, SampleDown{Interval{1, nprime}, nprime});

    if (as.phase == Phase::kPhase3) {
      // Orders are exact ranks; fetch the k-th directly.
      as.need_l = true;
      as.want_l = as.k;
      as.need_r = false;
      SKS_CHECK(as.k >= 1 && as.k <= nprime);
      send_order_get(session, as.iter, as.k, /*tag_is_l=*/true);
      return;
    }

    // Phase 2c: choose orders l and r with margin δ.
    const std::uint64_t d = delta();
    const std::uint64_t mid = as.k * nprime / as.N;
    std::uint64_t l = mid > d ? mid - d : 0;
    std::uint64_t r = (as.k * nprime + as.N - 1) / as.N + d;
    if (l < 1 && r > nprime) {
      // δ swallows the whole sample; fall back to the sampled extremes —
      // the verification step keeps this safe.
      l = 1;
      r = nprime;
    }
    as.need_l = l >= 1;
    as.want_l = l;
    as.need_r = r <= nprime;
    as.want_r = r;
    if (as.need_l) send_order_get(session, as.iter, l, /*tag_is_l=*/true);
    if (as.need_r) send_order_get(session, as.iter, r, /*tag_is_l=*/false);
    if (!as.need_l && !as.need_r) {
      // Nothing to prune on either side this iteration.
      close_iteration_and_continue(session);
    }
  }

  void send_order_get(std::uint64_t session, std::uint32_t iter,
                      std::uint64_t order, bool tag_is_l) {
    auto get = sim::make_payload<OrderGet>();
    get->session = session;
    get->iter = iter;
    get->order = order;
    get->back = host_.id();
    get->tag = session * 4 + (tag_is_l ? 1 : 2);
    host_.route(point_order(session, iter, order), std::move(get));
  }

  void on_order_reply(std::uint64_t tag, const CandidateKey& c) {
    const std::uint64_t session = tag / 4;
    const bool is_l = (tag % 4) == 1;
    auto it = anchor_sessions_.find(session);
    if (it == anchor_sessions_.end()) return;  // stale
    AnchorSession& as = it->second;
    if (is_l) {
      as.got_l = true;
      as.cl = c;
    } else {
      as.got_r = true;
      as.cr = c;
    }
    if ((as.need_l && !as.got_l) || (as.need_r && !as.got_r)) return;

    if (as.phase == Phase::kPhase3) {
      finish(session, as.cl);
      return;
    }
    // Count exact ranks of c_l / c_r, then (after verification) prune.
    broadcast_step(session, StepKind::kCountKeys, [&](KStep& s) {
      s.has_lo = as.need_l;
      s.lo = as.cl;
      s.has_hi = as.need_r;
      s.hi = as.cr;
    });
    as.has_lo = as.need_l;
    as.lo = as.cl;
    as.has_hi = as.need_r;
    as.hi = as.cr;
  }

  void close_iteration_and_continue(std::uint64_t session) {
    AnchorSession& as = anchor_sessions_.at(session);
    broadcast_step(session, StepKind::kCloseIter);
    if (as.N <= 0) {
      finish(session, std::nullopt);
      return;
    }
    start_phase2_iteration(session);
  }

  void finish(std::uint64_t session, std::optional<CandidateKey> result) {
    {
      // Close the current phase's span (kInit — k out of range — has none).
      AnchorSession& as = anchor_sessions_.at(session);
      trace::Tracer& tr = host_.tracer();
      if (tr.enabled()) {
        if (const char* name = phase_span(as.phase)) {
          tr.phase_end(host_.id(), name, session);
        }
      }
    }
    broadcast_step(session, StepKind::kDone, [&](KStep& s) {
      s.has_result = result.has_value();
      if (result) s.result = *result;
    });
  }

  // ---- routed machinery (sorting) ----------------------------------------

  void register_routed_handlers() {
    host_.on_routed_payload<SeedMsg>(
        [this](Point, overlay::VKind at, NodeId, sim::Owned<SeedMsg> m) {
          if (iter_closed(m->session, m->iter)) return;
          // This vertex is the root v_i of the copy tree T(v_i).
          open_tree_node(at, m->session, m->iter, m->pos, 1, m->nprime,
                         m->nprime, m->c, kNoNode, 0, /*root=*/true);
        });
    host_.on_routed_payload<CopyMsg>(
        [this](Point, overlay::VKind at, NodeId, sim::Owned<CopyMsg> m) {
          if (iter_closed(m->session, m->iter)) return;
          open_tree_node(at, m->session, m->iter, m->i, m->a, m->b,
                         m->nprime, m->c, m->parent_host, m->parent_mid,
                         /*root=*/false);
        });
    host_.on_routed_payload<RdvMsg>(
        [this](Point, overlay::VKind, NodeId, sim::Owned<RdvMsg> m) {
          handle_rendezvous(std::move(m));
        });
    host_.on_direct_payload<VoteMsg>(
        [this](NodeId, sim::Owned<VoteMsg> m) {
          if (iter_closed(m->session, m->iter)) return;
          TreeKey key{m->session, m->iter, m->i, m->mid};
          auto it = tree_nodes_.find(key);
          if (it == tree_nodes_.end()) return;  // straggler
          it->second.L += m->smaller;
          it->second.R += m->larger;
          tree_node_progress(key, it->second);
        });
    host_.on_direct_payload<TreeSumMsg>(
        [this](NodeId, sim::Owned<TreeSumMsg> m) {
          if (iter_closed(m->session, m->iter)) return;
          TreeKey key{m->session, m->iter, m->i, m->parent_mid};
          auto it = tree_nodes_.find(key);
          if (it == tree_nodes_.end()) return;  // straggler
          it->second.L += m->L;
          it->second.R += m->R;
          tree_node_progress(key, it->second);
        });
    host_.on_routed_payload<OrderPut>(
        [this](Point, overlay::VKind, NodeId, sim::Owned<OrderPut> m) {
          if (iter_closed(m->session, m->iter)) return;
          OrderKey key{m->session, m->iter, m->order};
          // Publish before replying: a reply delivered locally can
          // re-enter this component (e.g. the anchor closing the
          // iteration), so no iterator may be held across the sends.
          order_board_[key] = m->c;
          auto waiting = order_waiting_.find(key);
          if (waiting != order_waiting_.end()) {
            auto waiters = std::move(waiting->second);
            order_waiting_.erase(waiting);
            for (const auto& [back, tag] : waiters) {
              auto rep = sim::make_payload<OrderReply>();
              rep->tag = tag;
              rep->c = m->c;
              host_.send_direct(back, std::move(rep));
            }
          }
        });
    host_.on_routed_payload<OrderGet>(
        [this](Point, overlay::VKind, NodeId, sim::Owned<OrderGet> m) {
          if (iter_closed(m->session, m->iter)) return;
          OrderKey key{m->session, m->iter, m->order};
          auto it = order_board_.find(key);
          if (it != order_board_.end()) {
            auto rep = sim::make_payload<OrderReply>();
            rep->tag = m->tag;
            rep->c = it->second;
            host_.send_direct(m->back, std::move(rep));
          } else {
            order_waiting_[key].emplace_back(m->back, m->tag);
          }
        });
    host_.on_direct_payload<OrderReply>(
        [this](NodeId, sim::Owned<OrderReply> m) {
          on_order_reply(m->tag, m->c);
        });
  }

  void on_positions(std::uint64_t epoch, Interval iv, std::uint64_t nprime) {
    const std::uint64_t session = epoch / 65536;
    const auto iter = static_cast<std::uint32_t>(epoch % 65536);
    auto hsit = host_sessions_.find(session);
    if (hsit == host_sessions_.end()) return;
    HostSession& hs = hsit->second;
    if (hs.done || iter < hs.min_open_iter) return;  // straggler
    SKS_CHECK_MSG(iv.cardinality() == hs.sampled.size(),
                  "position interval does not match sample count");
    Position pos = iv.lo;
    for (const auto& c : hs.sampled) {
      auto seed = sim::make_payload<SeedMsg>();
      seed->session = session;
      seed->iter = iter;
      seed->pos = pos;
      seed->nprime = nprime;
      seed->c = c;
      host_.route(point_pos(session, iter, pos), std::move(seed));
      ++pos;
    }
  }

  void open_tree_node(overlay::VKind at, std::uint64_t session,
                      std::uint32_t iter, std::uint64_t i, std::uint64_t a,
                      std::uint64_t b, std::uint64_t nprime,
                      const CandidateKey& c, NodeId parent_host,
                      std::uint64_t parent_mid, bool root) {
    const std::uint64_t mid = (a + b) / 2;
    TreeKey key{session, iter, i, mid};
    SKS_CHECK_MSG(!tree_nodes_.count(key), "duplicate copy-tree vertex");
    TreeNode& node = tree_nodes_[key];
    node.c = c;
    node.parent_host = parent_host;
    node.parent_mid = parent_mid;
    node.nprime = nprime;
    node.is_root = root;
    node.waiting = 1;  // own vote

    // Split the interval along de Bruijn halving edges (Algorithm 3).
    if (a < mid) {
      auto left = sim::make_payload<CopyMsg>();
      left->session = session;
      left->iter = iter;
      left->i = i;
      left->a = a;
      left->b = mid - 1;
      left->nprime = nprime;
      left->c = c;
      left->parent_host = host_.id();
      left->parent_mid = mid;
      ++node.waiting;
      host_.debruijn_hop(at, false, std::move(left));
    }
    if (mid < b) {
      auto right = sim::make_payload<CopyMsg>();
      right->session = session;
      right->iter = iter;
      right->i = i;
      right->a = mid + 1;
      right->b = b;
      right->nprime = nprime;
      right->c = c;
      right->parent_host = host_.id();
      right->parent_mid = mid;
      ++node.waiting;
      host_.debruijn_hop(at, true, std::move(right));
    }

    // Send this copy (j = mid) to its rendezvous with c_{mid, i}.
    auto rdv = sim::make_payload<RdvMsg>();
    rdv->session = session;
    rdv->iter = iter;
    rdv->i = i;
    rdv->j = mid;
    rdv->c = c;
    rdv->back_host = host_.id();
    host_.route(point_rdv(session, iter, i, mid), std::move(rdv));
  }

  void handle_rendezvous(sim::Owned<RdvMsg> m) {
    if (iter_closed(m->session, m->iter)) return;
    if (m->i == m->j) {
      // A copy compared with itself contributes nothing.
      auto vote = sim::make_payload<VoteMsg>();
      vote->session = m->session;
      vote->iter = m->iter;
      vote->i = m->i;
      vote->mid = m->j;
      host_.send_direct(m->back_host, std::move(vote));
      return;
    }
    RdvKey key{m->session, m->iter, std::min(m->i, m->j),
               std::max(m->i, m->j)};
    auto it = rdv_waiting_.find(key);
    if (it == rdv_waiting_.end()) {
      rdv_waiting_[key] =
          RdvHalf{m->c, m->i, m->j, m->back_host};
      return;
    }
    const RdvHalf first = it->second;
    rdv_waiting_.erase(it);
    // first is copy c_{first.copy_of, first.mid}; m is the other half.
    send_vote(m->session, m->iter, first.copy_of, first.mid,
              /*peer_smaller=*/m->c < first.c, first.back_host);
    send_vote(m->session, m->iter, m->i, m->j,
              /*peer_smaller=*/first.c < m->c, m->back_host);
  }

  void send_vote(std::uint64_t session, std::uint32_t iter, std::uint64_t i,
                 std::uint64_t mid, bool peer_smaller, NodeId back) {
    auto vote = sim::make_payload<VoteMsg>();
    vote->session = session;
    vote->iter = iter;
    vote->i = i;
    vote->mid = mid;
    vote->smaller = peer_smaller ? 1 : 0;
    vote->larger = peer_smaller ? 0 : 1;
    host_.send_direct(back, std::move(vote));
  }

  void tree_node_progress(const TreeKey& key, TreeNode& node) {
    if (--node.waiting > 0) return;
    if (node.is_root) {
      // Order of c_i in C' is L + 1 (Section 4.3); publish it.
      auto put = sim::make_payload<OrderPut>();
      put->session = key.session;
      put->iter = key.iter;
      put->order = node.L + 1;
      put->c = node.c;
      host_.route(point_order(key.session, key.iter, node.L + 1),
                  std::move(put));
    } else {
      auto sum = sim::make_payload<TreeSumMsg>();
      sum->session = key.session;
      sum->iter = key.iter;
      sum->i = key.i;
      sum->parent_mid = node.parent_mid;
      sum->L = node.L;
      sum->R = node.R;
      host_.send_direct(node.parent_host, std::move(sum));
    }
    tree_nodes_.erase(key);
  }

  overlay::OverlayNode& host_;
  KSelectConfig cfg_;
  HashFunction hash_;
  Rng rng_;
  bool rng_seeded_ = false;
  Provider provider_;
  ResultFn on_result_;

  agg::Broadcaster<KStep> steps_;
  agg::Aggregator<KReply, KReply> replies_;  // up-only
  agg::Aggregator<SampleUp, SampleDown> sample_agg_;

  std::map<std::uint64_t, HostSession> host_sessions_;
  std::map<std::uint64_t, AnchorSession> anchor_sessions_;

  std::map<TreeKey, TreeNode> tree_nodes_;
  std::map<RdvKey, RdvHalf> rdv_waiting_;
  std::map<OrderKey, CandidateKey> order_board_;
  std::map<OrderKey, std::vector<std::pair<NodeId, std::uint64_t>>>
      order_waiting_;

  std::vector<IterationStat> stats_;
};

}  // namespace sks::kselect
