// Standalone KSelect harness: n overlay nodes, each holding a local slice
// of the element set (distributed uniformly at random, as the paper
// assumes), driven through complete k-selection sessions. Deployment
// (network, topology, links) is owned by the shared runtime::Cluster;
// KSelect has no membership component, so the churn paths stay compiled
// out.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "kselect/kselect.hpp"
#include "runtime/cluster.hpp"

namespace sks::kselect {

class KSelectNode : public overlay::OverlayNode {
 public:
  KSelectNode(overlay::RouteParams params, KSelectConfig cfg)
      : OverlayNode(params),
        kselect(
            *this, cfg, [this] { return elements; },
            [this](std::uint64_t session, std::optional<CandidateKey> r) {
              results.emplace_back(session, r);
            }) {}

  std::vector<CandidateKey> elements;  ///< v.E
  KSelectComponent kselect;
  std::vector<std::pair<std::uint64_t, std::optional<CandidateKey>>> results;
};

class KSelectSystem {
 public:
  struct Options {
    std::size_t num_nodes = 8;
    std::uint64_t seed = 0x5e1ecULL;
    sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous;
    std::uint64_t max_delay = 8;
    double delta_scale = 0.5;  ///< matches KSelectConfig default
    std::uint32_t phase1_iterations = 0;  ///< 0 = paper's ⌊log2 q⌋ + 1
    std::uint32_t max_iterations = 64;    ///< convergence guard
    /// Channel fault schedule (all-zero = the paper's perfect network).
    sim::FaultPlan faults{};
    /// Reliable transport; enable whenever faults lose messages.
    sim::ReliableConfig reliable{};
  };

  using Cluster = runtime::Cluster<KSelectNode, KSelectConfig>;

  /// The single place the KSelect config is derived from the options.
  static KSelectConfig make_config(const Options& opts,
                                   std::size_t num_nodes) {
    KSelectConfig kcfg;
    kcfg.num_nodes = num_nodes;
    kcfg.hash_seed = opts.seed ^ 0xabcdef123ULL;
    kcfg.rng_seed = opts.seed ^ 0x777ULL;
    kcfg.delta_scale = opts.delta_scale;
    kcfg.phase1_iterations = opts.phase1_iterations;
    kcfg.max_iterations = opts.max_iterations;
    return kcfg;
  }

  static runtime::ClusterOptions cluster_options(const Options& opts) {
    runtime::ClusterOptions c;
    c.num_nodes = opts.num_nodes;
    c.seed = opts.seed;
    c.mode = opts.mode;
    c.max_delay = opts.max_delay;
    c.faults = opts.faults;
    c.reliable = opts.reliable;
    return c;
  }

  explicit KSelectSystem(const Options& opts)
      : opts_(opts),
        cluster_(cluster_options(opts),
                 [opts](std::size_t n) { return make_config(opts, n); }) {}

  /// Distribute the elements uniformly at random over the nodes.
  void seed_elements(const std::vector<CandidateKey>& elements) {
    Rng rng(opts_.seed ^ 0xe1e3e27ULL);
    for (const auto& e : elements) {
      node(static_cast<NodeId>(rng.below(opts_.num_nodes)))
          .elements.push_back(e);
    }
  }

  /// Run one complete selection; returns the k-th smallest element (or
  /// nullopt if k is out of range) plus the number of rounds it took.
  struct Outcome {
    std::optional<CandidateKey> result;
    std::uint64_t rounds = 0;
  };

  Outcome select(std::uint64_t k) {
    const std::uint64_t session = next_session_++;
    anchor_node().kselect.start(session, k);
    Outcome out;
    out.rounds = cluster_.run_until_idle();
    for (const auto& [s, r] : anchor_node().results) {
      if (s == session) out.result = r;
    }
    return out;
  }

  KSelectNode& node(NodeId v) { return cluster_.node(v); }
  KSelectNode& anchor_node() { return cluster_.anchor_node(); }
  sim::Network& net() { return cluster_.net(); }
  Cluster& cluster() { return cluster_; }
  const Options& options() const { return opts_; }

 private:
  Options opts_;
  Cluster cluster_;
  std::uint64_t next_session_ = 1;
};

}  // namespace sks::kselect
