// Standalone KSelect harness: n overlay nodes, each holding a local slice
// of the element set (distributed uniformly at random, as the paper
// assumes), driven through complete k-selection sessions. Deployment
// (network, topology, links) is owned by the shared runtime::Cluster;
// KSelect has no membership component, so the churn paths stay compiled
// out.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "kselect/kselect.hpp"
#include "recovery/recovery.hpp"
#include "runtime/cluster.hpp"

namespace sks::kselect {

/// Deployment config for one standalone KSelect node: the protocol config
/// plus the recovery knobs (kept out of KSelectConfig itself because Seap
/// embeds a nested KSelectComponent that shares its host's recovery).
struct KSelectNodeConfig {
  KSelectConfig kselect;
  recovery::RecoveryConfig recovery{};
};

class KSelectNode : public overlay::OverlayNode {
 public:
  KSelectNode(overlay::RouteParams params, const KSelectNodeConfig& cfg)
      : OverlayNode(params),
        kselect(
            *this, cfg.kselect, [this] { return elements; },
            [this](std::uint64_t session, std::optional<CandidateKey> r) {
              results.emplace_back(session, r);
            }),
        recovery_(*this, cfg.recovery) {}

  std::vector<CandidateKey> elements;  ///< v.E
  KSelectComponent kselect;
  std::vector<std::pair<std::uint64_t, std::optional<CandidateKey>>> results;

  // ---- Crash-recovery hooks (runtime::Cluster coordinator) ------------
  //
  // KSelect's durable state is just the static element slice: there are
  // no epoch deltas (selection never mutates v.E), so mirrors are seeded
  // out-of-band and stay valid until membership changes.

  recovery::RecoveryComponent& recovery() { return recovery_; }
  const recovery::RecoveryComponent& recovery() const { return recovery_; }

  /// The whole slice as a single replicated cell; the key is irrelevant —
  /// after a promotion the slice lands on whichever survivor owns it, and
  /// k-selection does not care where elements live.
  std::vector<recovery::DeltaEntry> full_state_entries() {
    std::vector<recovery::DeltaEntry> out;
    if (!elements.empty()) out.push_back({0, 0, elements});
    return out;
  }

  void absorb_recovered(std::uint8_t, Point, std::vector<Element> elems) {
    elements.insert(elements.end(), elems.begin(), elems.end());
  }

  /// A declared death aborts the in-flight selection on every survivor;
  /// the harness retries it under a fresh session id.
  void rollback_epoch() { kselect.abort_all(); }

 private:
  recovery::RecoveryComponent recovery_;
};

class KSelectSystem {
 public:
  struct Options {
    std::size_t num_nodes = 8;
    std::uint64_t seed = 0x5e1ecULL;
    sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous;
    std::uint64_t max_delay = 8;
    double delta_scale = 0.5;  ///< matches KSelectConfig default
    std::uint32_t phase1_iterations = 0;  ///< 0 = paper's ⌊log2 q⌋ + 1
    std::uint32_t max_iterations = 64;    ///< convergence guard
    /// Channel fault schedule (all-zero = the paper's perfect network).
    sim::FaultPlan faults{};
    /// Reliable transport; enable whenever faults lose messages.
    sim::ReliableConfig reliable{};
    /// Crash recovery (failure detector + k-replication + session retry).
    recovery::RecoveryConfig recovery{};
    /// Wire mode: marshal every send through encode -> bytes -> decode.
    bool wire = sim::wire_mode_default();
    /// Worker threads / execution shards for the round executor (see
    /// sim::NetworkConfig; thread count never changes the trace).
    std::size_t threads = sim::thread_count_default();
    std::size_t shards = sim::shard_count_default();
  };

  using Cluster = runtime::Cluster<KSelectNode, KSelectNodeConfig>;

  /// The single place the KSelect config is derived from the options.
  static KSelectNodeConfig make_config(const Options& opts,
                                       std::size_t num_nodes) {
    KSelectNodeConfig cfg;
    KSelectConfig& kcfg = cfg.kselect;
    kcfg.num_nodes = num_nodes;
    kcfg.hash_seed = opts.seed ^ 0xabcdef123ULL;
    kcfg.rng_seed = opts.seed ^ 0x777ULL;
    kcfg.delta_scale = opts.delta_scale;
    kcfg.phase1_iterations = opts.phase1_iterations;
    kcfg.max_iterations = opts.max_iterations;
    cfg.recovery = opts.recovery;
    return cfg;
  }

  static runtime::ClusterOptions cluster_options(const Options& opts) {
    runtime::ClusterOptions c;
    c.num_nodes = opts.num_nodes;
    c.seed = opts.seed;
    c.mode = opts.mode;
    c.max_delay = opts.max_delay;
    c.faults = opts.faults;
    c.reliable = opts.reliable;
    c.recovery = opts.recovery;
    c.wire = opts.wire;
    c.threads = opts.threads;
    c.shards = opts.shards;
    return c;
  }

  explicit KSelectSystem(const Options& opts)
      : opts_(opts),
        cluster_(cluster_options(opts),
                 [opts](std::size_t n) { return make_config(opts, n); }) {}

  /// Distribute the elements uniformly at random over the nodes.
  void seed_elements(const std::vector<CandidateKey>& elements) {
    Rng rng(opts_.seed ^ 0xe1e3e27ULL);
    for (const auto& e : elements) {
      node(static_cast<NodeId>(rng.below(opts_.num_nodes)))
          .elements.push_back(e);
    }
    // The bootstrap mirrors were taken before any elements existed.
    cluster_.refresh_mirrors();
  }

  /// Run one complete selection; returns the k-th smallest element (or
  /// nullopt if k is out of range) plus the number of rounds it took.
  struct Outcome {
    std::optional<CandidateKey> result;
    std::uint64_t rounds = 0;
  };

  Outcome select(std::uint64_t k) {
    Outcome out;
    if (!cluster_.recovery_enabled()) {
      const std::uint64_t session = next_session_++;
      anchor_node().kselect.start(session, k);
      out.rounds = cluster_.run_until_idle();
      for (const auto& [s, r] : anchor_node().results) {
        if (s == session) out.result = r;
      }
      return out;
    }
    // Under crash recovery a selection is a retryable transaction: if a
    // node is declared dead mid-session, abort everywhere, recover the
    // victim's elements from its mirror, and rerun under a fresh session
    // id (detection + repair rounds count toward the selection's cost).
    for (int attempt = 0; attempt < 16; ++attempt) {
      const std::uint64_t session = next_session_++;
      anchor_node().kselect.start(session, k);
      std::set<NodeId> dead = cluster_.drive_until_idle_or_death(&out.rounds);
      if (dead.empty()) {
        for (const auto& [s, r] : anchor_node().results) {
          if (s == session) out.result = r;
        }
        return out;
      }
      cluster_.recover_from(std::move(dead), &out.rounds);
    }
    SKS_CHECK_MSG(false, "selection failed to complete after 16 recovery "
                         "attempts");
    return out;
  }

  KSelectNode& node(NodeId v) { return cluster_.node(v); }
  KSelectNode& anchor_node() { return cluster_.anchor_node(); }
  sim::Network& net() { return cluster_.net(); }
  Cluster& cluster() { return cluster_; }
  const Options& options() const { return opts_; }

 private:
  Options opts_;
  Cluster cluster_;
  std::uint64_t next_session_ = 1;
};

}  // namespace sks::kselect
