// The shared deployment runtime every protocol harness sits on.
//
// Skeap (§3), KSelect (§4) and Seap (§5) all run on the same substrate —
// the LDB overlay with its aggregation tree, the embedded DHT, and the
// churn protocol of Contribution 4. Cluster owns everything a deployment
// of that substrate needs, so the per-protocol harnesses (SkeapSystem,
// SeapSystem, KSelectSystem, the baselines) stay thin typed wrappers:
//
//   * Network construction from one ClusterOptions (node count, seed,
//     delivery mode, max delay, sizing hints).
//   * Topology bootstrap: build_topology, link installation, membership
//     bootstrap marking, anchor discovery, the active-node set.
//   * Epoch/cycle driving: start_all + run_until_idle, with per-epoch
//     round/message/bit snapshots recorded from sim::Metrics.
//   * Churn between epochs: join_node/leave_node with the anchor-state
//     handover generalized behind AnchorTraits<NodeT>.
//   * Generic trace gathering for the semantics checkers.
//
// Layering:  sim → overlay → runtime → protocols → core facade.
//
// NodeT does not have to be an overlay node: harnesses whose nodes are
// plain sim::Node subclasses (the centralized and gossip baselines) reuse
// the network construction and epoch driving, and the topology steps are
// compiled out via `if constexpr`.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"
#include "overlay/overlay_node.hpp"
#include "overlay/topology.hpp"
#include "recovery/recovery.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "trace/tracer.hpp"

namespace sks::runtime {

/// Deployment knobs shared by every harness. Protocol-specific options
/// structs translate into this (plus a protocol config) once, in their
/// wrapper's make_config/cluster_options helpers.
struct ClusterOptions {
  std::size_t num_nodes = 8;
  std::uint64_t seed = 0x5eedULL;
  sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous;
  std::uint64_t max_delay = 8;  ///< async mode only
  /// Sizing hint for bit accounting (DHT key widths etc.).
  std::uint64_t expected_elements = 1u << 20;
  /// Channel fault schedule (drops, duplicates, spikes, partitions,
  /// crashes). All-zero by default: the paper's perfect network.
  sim::FaultPlan faults{};
  /// Reliable transport (seq/ack/retransmit). Off by default; turn it on
  /// whenever the fault plan loses messages.
  sim::ReliableConfig reliable{};
  /// Crash recovery: failure detector + k-replication + epoch rollback.
  /// Off by default; when enabled the protocol config must carry the same
  /// RecoveryConfig so the nodes' detector/replication components match
  /// what the coordinator expects. Recovery assumes crash-stop faults
  /// (crashed nodes never restart; the coordinator fences them).
  recovery::RecoveryConfig recovery{};
  /// Wire mode: marshal every send through encode -> bytes -> decode.
  /// Defaults from SKS_WIRE (see sim::wire_mode_default).
  bool wire = sim::wire_mode_default();
  /// Worker threads for the sharded round executor. Defaults from
  /// SKS_THREADS (benches: --threads). Thread count never changes the
  /// trace — see sim::NetworkConfig::threads.
  std::size_t threads = sim::thread_count_default();
  /// Execution shards (0 = auto from network size). Defaults from
  /// SKS_SHARDS (benches: --shards).
  std::size_t shards = sim::shard_count_default();
  /// Cap on the network's pending-ring growth, in rounds (see
  /// sim::NetworkConfig::max_pending_rounds). 0 = unbounded.
  std::uint64_t max_pending_rounds = 0;
  /// Adaptive batching (graceful degradation under overload): when
  /// adaptive_batch_max != 0, each epoch snapshots at most batch_limit()
  /// ops per node; the limit doubles (up to max) after an epoch that
  /// left work queued and halves (down to min) after one that drained
  /// everything. Small batches keep per-epoch latency low at light load;
  /// large ones amortize the aggregation tree under pressure. 0 = off:
  /// every epoch drains every buffered op (the default).
  std::size_t adaptive_batch_min = 0;
  std::size_t adaptive_batch_max = 0;
};

/// The one place a simulated network is constructed from deployment
/// options; also used directly by harnesses that need no overlay.
inline std::unique_ptr<sim::Network> make_network(const ClusterOptions& o) {
  sim::NetworkConfig cfg;
  cfg.mode = o.mode;
  cfg.max_delay = o.max_delay;
  cfg.seed = o.seed;
  cfg.faults = o.faults;
  cfg.reliable = o.reliable;
  cfg.wire = o.wire;
  cfg.threads = o.threads;
  cfg.shards = o.shards;
  cfg.max_pending_rounds = o.max_pending_rounds;
  return std::make_unique<sim::Network>(cfg);
}

/// Customization point: the state that rides along when the anchor role
/// moves between hosts (on join, when a smaller label appears; on leave of
/// the anchor host). Skeap hands over its per-priority interval state,
/// Seap its heap-size counter; protocols without anchor state (KSelect,
/// the baselines) use this empty default.
template <class NodeT>
struct AnchorTraits {
  struct Handover {};
  static Handover take(NodeT&) { return {}; }
  static void install(NodeT&, Handover) {}
  /// Synchronize a freshly joined node's epoch/cycle counter with the
  /// number of epochs the cluster has started so far.
  static void sync_counter(NodeT&, std::uint64_t) {}
};

/// One completed recovery, recorded by the coordinator (experiment E15).
struct RecoveryEvent {
  NodeId victim = kNoNode;
  std::uint64_t declared_round = 0;   ///< round the death was declared
  std::uint64_t recovered_round = 0;  ///< round the repair completed
  std::uint64_t epoch = 0;            ///< epoch that was rolled back
};

/// Per-epoch substrate measurements, recorded by run_epoch without
/// disturbing the Metrics window benchmarks may have open.
struct EpochStats {
  std::uint64_t epoch = 0;     ///< cluster-wide epoch/cycle counter
  std::uint64_t rounds = 0;    ///< rounds until quiescence
  std::uint64_t messages = 0;  ///< host-crossing messages delivered
  std::uint64_t bits = 0;      ///< total bits moved
  /// Running congestion high-water mark of the current Metrics window at
  /// the end of the epoch (Metrics tracks the max per window, not per
  /// epoch, so this is a monotone watermark between take() calls).
  std::uint64_t congestion_high_water = 0;
};

/// A complete deployment of `NodeT` processes configured by `ConfigT`.
///
/// The config factory derives the protocol config from the current system
/// size; it is called once at bootstrap and once per join, which keeps the
/// seed-derivation constants in exactly one place per protocol.
template <class NodeT, class ConfigT>
class Cluster {
 public:
  using ConfigFactory = std::function<ConfigT(std::size_t num_nodes)>;
  using NodeFactory = std::function<std::unique_ptr<NodeT>(
      const overlay::RouteParams&, const ConfigT&, std::size_t index)>;

  static constexpr bool kIsOverlay =
      requires(NodeT& n, overlay::NodeLinks l) { n.install_links(std::move(l)); };
  static constexpr bool kHasMembership =
      requires(NodeT& n) { n.membership(); };
  static constexpr bool kHasRecovery =
      requires(NodeT& n) { n.recovery(); };

  Cluster(const ClusterOptions& opts, ConfigFactory make_config,
          NodeFactory make_node = default_node_factory())
      : opts_(opts),
        make_config_(std::move(make_config)),
        make_node_(std::move(make_node)),
        label_hash_(opts.seed),
        net_(make_network(opts)),
        sizing_nodes_(opts.num_nodes) {
    if (opts_.adaptive_batch_max != 0) {
      SKS_CHECK_MSG(opts_.adaptive_batch_min >= 1 &&
                        opts_.adaptive_batch_min <= opts_.adaptive_batch_max,
                    "adaptive batching needs 1 <= adaptive_batch_min <= "
                    "adaptive_batch_max");
      batch_limit_ = opts_.adaptive_batch_min;
    }
    const ConfigT config = make_config_(opts.num_nodes);
    const auto params = overlay::RouteParams::for_system(opts.num_nodes);
    std::vector<overlay::NodeLinks> links;
    if constexpr (kIsOverlay) {
      links = overlay::build_topology(opts.num_nodes, label_hash_);
    }
    for (std::size_t i = 0; i < opts.num_nodes; ++i) {
      const NodeId id = net_->add_node(make_node_(params, config, i));
      NodeT& n = node(id);
      if constexpr (kIsOverlay) {
        n.install_links(links[i]);
        if constexpr (kHasMembership) n.membership().mark_bootstrapped();
        if (n.hosts_anchor()) anchor_ = id;
      }
      active_.insert(id);
    }
    // Deferred epoch starts: a node that is down when an epoch begins
    // gets its start function applied the moment it restarts, so tree
    // protocols that need every member's contribution can still converge
    // (the reliable transport bridges the messages it missed).
    net_->set_restart_hook([this](NodeId v) { on_restart(v); });
    if constexpr (kHasRecovery) {
      if (opts_.recovery.enabled) {
        const std::vector<NodeId> members(active_.begin(), active_.end());
        for (NodeId v : active_) node(v).recovery().set_ring(members);
        refresh_mirrors();
      }
    }
  }

  // ---- Accessors -------------------------------------------------------

  /// Nodes ever deployed (joins included; leavers still count — their
  /// completed operations remain part of the trace).
  std::size_t size() const { return sizing_nodes_; }

  sim::Network& net() { return *net_; }
  const ClusterOptions& options() const { return opts_; }

  NodeT& node(NodeId v) { return net_->node_as<NodeT>(v); }

  NodeId anchor() const { return anchor_; }
  NodeT& anchor_node() { return node(anchor_); }

  /// Nodes currently participating (after churn).
  const std::set<NodeId>& active_nodes() const { return active_; }

  // ---- Epoch / cycle driving -------------------------------------------

  /// Apply a protocol start function (start_batch, start_cycle, ...) to
  /// every active node, without running the network.
  template <class StartFn>
  void start_all(StartFn&& start) {
    for (NodeId v : active_) start(node(v));
  }

  /// Run one complete protocol epoch: start every active node, then run
  /// the network to quiescence. Returns the number of rounds it took and
  /// appends an EpochStats entry to the history.
  ///
  /// With recovery enabled the epoch is transactional: checkpoint, run,
  /// replicate, commit — and on a declared death, fence + rollback +
  /// repair + re-run (see run_epoch_recovered).
  template <class StartFn>
  std::uint64_t run_epoch(StartFn&& start) {
    if constexpr (kHasRecovery) {
      if (opts_.recovery.enabled) return run_epoch_recovered(start);
    }
    const std::uint64_t msgs0 = net_->metrics().total_messages();
    const std::uint64_t bits0 = net_->metrics().total_bits();
    trace::Tracer& tr = net_->tracer();
    if (tr.enabled()) tr.epoch_begin(epochs_started_);
    // Start every live node now; stash the start for crashed ones so the
    // restart hook can apply it when (if) they come back this epoch.
    missed_start_.clear();
    for (NodeId v : active_) {
      if (net_->is_crashed(v)) {
        missed_start_.insert(v);
      } else {
        start(node(v));
      }
    }
    if (!missed_start_.empty()) {
      pending_start_ = std::function<void(NodeT&)>(start);
    }
    const std::uint64_t rounds = net_->run_until_idle();
    pending_start_ = nullptr;
    missed_start_.clear();
    if (tr.enabled()) tr.epoch_end(epochs_started_);
    const sim::Metrics& cur = net_->metrics();
    EpochStats st;
    st.epoch = epochs_started_;
    st.rounds = rounds;
    st.messages = cur.total_messages() - msgs0;
    st.bits = cur.total_bits() - bits0;
    st.congestion_high_water = cur.max_congestion();
    epoch_history_.push_back(st);
    if (epoch_observer_) epoch_observer_(st);
    adapt_batch_limit();
    ++epochs_started_;
    return rounds;
  }

  /// Epochs started so far (the counter joiners are synchronized to).
  std::uint64_t epochs_started() const { return epochs_started_; }

  // ---- Adaptive batching -----------------------------------------------

  /// Per-node op cap the NEXT epoch's snapshot should use; 0 = no cap
  /// (adaptive batching off). Harness start functions pass this to
  /// start_batch(limit)/start_cycle(limit).
  std::size_t batch_limit() const { return batch_limit_; }

  /// Ops buffered across all active nodes (the backlog adaptive batching
  /// reacts to; also the admission-control depth benches bound).
  std::size_t queued_ops() {
    std::size_t total = 0;
    if constexpr (requires(NodeT& n) { n.buffered_ops(); }) {
      for (NodeId v : active_) total += node(v).buffered_ops();
    }
    return total;
  }

  const std::vector<EpochStats>& epoch_history() const {
    return epoch_history_;
  }

  /// Invoked with each epoch's EpochStats right after it is appended to
  /// the history (both the plain and the recovered epoch paths). The
  /// telemetry sampler uses this to cut per-epoch sample points.
  void set_epoch_observer(std::function<void(const EpochStats&)> obs) {
    epoch_observer_ = std::move(obs);
  }

  /// Drive the network to quiescence outside an epoch (bootstrap traffic,
  /// ad-hoc protocol sessions such as KSelect selections).
  std::uint64_t run_until_idle() { return net_->run_until_idle(); }

  // ---- Crash recovery: detection, fencing, repair ----------------------

  /// True when this deployment runs the failure detector + replication.
  bool recovery_enabled() const {
    if constexpr (kHasRecovery) return opts_.recovery.enabled;
    return false;
  }

  /// Completed recoveries (victim, detect/repair rounds, epoch) — the raw
  /// data for time-to-detect / time-to-recover measurements (E15).
  const std::vector<RecoveryEvent>& recovery_log() const {
    return recovery_log_;
  }

  /// Victims declared dead by any live node's failure detector, restricted
  /// to currently-active members (a stale declaration of an already-fenced
  /// node is not a new death).
  std::set<NodeId> poll_declared() {
    std::set<NodeId> dead;
    if constexpr (kHasRecovery) {
      for (NodeId v : active_) {
        if (net_->is_crashed(v)) continue;
        for (NodeId d : node(v).recovery().declared()) {
          if (active_.count(d)) dead.insert(d);
        }
      }
    }
    return dead;
  }

  /// Step the network until it quiesces or some active member is declared
  /// dead. Returns the declared victims (empty on clean quiescence). A
  /// crashed-but-undeclared node can let the network go idle if no traffic
  /// flows toward it; callers that are about to commit must close that
  /// window with drive_until_death (see run_epoch_recovered).
  std::set<NodeId> drive_until_idle_or_death(
      std::uint64_t* rounds_out = nullptr,
      std::uint64_t max_rounds = 1'000'000) {
    std::uint64_t steps = 0;
    for (;;) {
      std::set<NodeId> dead = poll_declared();
      if (!dead.empty()) return dead;
      if (net_->idle()) return {};
      SKS_CHECK_MSG(steps < max_rounds,
                    "network did not quiesce or declare a death after "
                        << steps << " rounds; " << net_->stall_report());
      net_->step();
      ++steps;
      if (rounds_out) ++*rounds_out;
    }
  }

  /// Step (through quiescence) until the failure detector declares a
  /// death. Used when the coordinator already knows some member is down —
  /// background heartbeats keep flowing while the network is data-idle,
  /// so the detector converges in O(suspect_after + declare_after) rounds.
  std::set<NodeId> drive_until_death(std::uint64_t* rounds_out = nullptr,
                                     std::uint64_t max_rounds = 100'000) {
    std::uint64_t steps = 0;
    for (;;) {
      std::set<NodeId> dead = poll_declared();
      if (!dead.empty()) return dead;
      SKS_CHECK_MSG(steps < max_rounds,
                    "a crashed member was never declared dead");
      net_->step();
      ++steps;
      if (rounds_out) ++*rounds_out;
    }
  }

  /// Recover from a set of declared deaths: fence the victims (their
  /// channels are cut and their reliable records purged, so the drain
  /// below terminates), drain the network of the aborted epoch's traffic,
  /// roll every survivor back to its pre-epoch checkpoint, and repair
  /// membership/anchor/mirrors from the replicas. Draining can surface
  /// further declarations; those victims join the same recovery.
  void recover_from(std::set<NodeId> victims,
                    std::uint64_t* rounds_out = nullptr) {
    if constexpr (kHasRecovery) {
      SKS_CHECK(!victims.empty());
      const std::uint64_t declared_round = net_->round();
      std::set<NodeId> fenced;
      for (;;) {
        for (NodeId v : victims) {
          if (fenced.insert(v).second) net_->fence_node(v);
        }
        // Drain in-flight traffic of the aborted epoch. Deliveries land in
        // pre-rollback state; that is safe because delete acknowledgments
        // are deferred until commit and the rollback discards them all.
        std::uint64_t guard = 0;
        bool more = false;
        while (!net_->idle()) {
          SKS_CHECK_MSG(++guard < 1'000'000,
                        "drain after fencing did not quiesce; "
                            << net_->stall_report());
          net_->step();
          if (rounds_out) ++*rounds_out;
          std::set<NodeId> extra = poll_declared();
          for (NodeId d : extra) {
            if (!fenced.count(d) && victims.insert(d).second) more = true;
          }
          if (more) break;
        }
        if (!more) break;
      }
      for (NodeId v : victims) active_.erase(v);
      SKS_CHECK_MSG(!active_.empty(), "every node was declared dead");
      for (NodeId v : active_) {
        node(v).recovery().abort_staged();
        if constexpr (requires(NodeT& n) { n.rollback_epoch(); }) {
          node(v).rollback_epoch();
        }
      }
      repair_membership(victims);
      for (NodeId v : victims) {
        recovery_log_.push_back(RecoveryEvent{v, declared_round,
                                              net_->round(),
                                              epochs_started_});
        if (net_->tracer().enabled()) {
          net_->tracer().lifecycle(trace::EventKind::kNodeLeave, v);
        }
      }
    } else {
      SKS_CHECK_MSG(false, "recover_from on a NodeT without recovery");
    }
  }

  /// (Re)seed every replica mirror from the owners' full durable state.
  /// Bootstrap and post-repair mirror installation are out-of-band direct
  /// state transfers — the incremental delta path covers everything that
  /// happens between repairs.
  void refresh_mirrors() {
    if constexpr (kHasRecovery) {
      if (!opts_.recovery.enabled || opts_.recovery.replication == 0) return;
      if constexpr (requires(NodeT& n) { n.full_state_entries(); }) {
        for (NodeId v : active_) {
          recovery::Mirror m;
          for (auto& e : node(v).full_state_entries()) {
            m.entries[{e.space, e.key}] = std::move(e.elems);
          }
          if constexpr (requires(NodeT& n) { n.anchor_blob(); }) {
            m.anchor_blob = node(v).anchor_blob();
            m.has_anchor = !m.anchor_blob.empty();
          }
          for (NodeId t : node(v).recovery().replica_targets()) {
            node(t).recovery().install_mirror(v, m);
          }
        }
      }
    }
  }

  /// Scrub pass: audit owner vs mirror state digests for every active
  /// owner and repair divergent (or missing) mirrors from the quorum.
  /// Coordinator-side and out-of-band — reads live state and rewrites
  /// mirrors directly, sending no messages and burning no rounds.
  ///
  /// Quorum rule: the majority digest among {owner, its k mirrors}; the
  /// owner wins ties (with k = 1 a flipped mirror is a 1:1 tie, and the
  /// owner's live state — still exercised by the protocol every epoch —
  /// is the trustworthy side). A holder off quorum gets a fresh copy
  /// from a quorum source; an owner off quorum is surfaced through the
  /// digest-mismatch counter and trace event (live protocol state cannot
  /// be rewritten out-of-band) but its mirrors are left on quorum.
  ///
  /// Runs every RecoveryConfig::scrub_every committed epochs from
  /// run_epoch_recovered; public so corruption tests can audit on demand.
  void scrub_mirrors() {
    if constexpr (kHasRecovery) {
      if (!opts_.recovery.enabled || opts_.recovery.replication == 0) return;
      if constexpr (requires(NodeT& n) { n.full_state_entries(); }) {
        sim::Metrics& met = net_->metrics();
        trace::Tracer& tr = net_->tracer();
        for (NodeId v : active_) {
          const auto targets = node(v).recovery().replica_targets();
          if (targets.empty()) continue;
          met.record_scrub();
          if (tr.enabled()) tr.lifecycle(trace::EventKind::kScrub, v);
          // The owner's digest, from its live durable state.
          recovery::Mirror owner_state;
          for (auto& e : node(v).full_state_entries()) {
            owner_state.entries[{e.space, e.key}] = std::move(e.elems);
          }
          if constexpr (requires(NodeT& n) { n.anchor_blob(); }) {
            owner_state.anchor_blob = node(v).anchor_blob();
            owner_state.has_anchor = !owner_state.anchor_blob.empty();
          }
          const std::uint64_t owner_digest =
              recovery::digest_of(owner_state);
          // One digest per holder; a missing mirror gets ~owner_digest, a
          // sentinel guaranteed off quorum so a fresh copy is installed.
          std::vector<std::pair<NodeId, std::uint64_t>> held;
          std::map<std::uint64_t, std::size_t> tally;
          ++tally[owner_digest];
          for (NodeId t : targets) {
            if (!node(t).recovery().has_mirror(v)) {
              held.emplace_back(t, ~owner_digest);
              continue;
            }
            const std::uint64_t d =
                recovery::digest_of(node(t).recovery().mirror_of(v));
            held.emplace_back(t, d);
            ++tally[d];
          }
          std::uint64_t quorum = owner_digest;
          std::size_t best = tally[owner_digest];
          for (const auto& [d, c] : tally) {
            if (c > best) {
              best = c;
              quorum = d;
            }
          }
          const bool owner_on_quorum = quorum == owner_digest;
          if (!owner_on_quorum) {
            met.record_digest_mismatch();
            if (tr.enabled()) {
              tr.lifecycle(trace::EventKind::kDigestMismatch, v);
            }
          }
          // A quorum source to copy from: the owner when it agrees,
          // otherwise any mirror carrying the quorum digest.
          const recovery::Mirror* source =
              owner_on_quorum ? &owner_state : nullptr;
          if (source == nullptr) {
            for (const auto& [t, d] : held) {
              if (d == quorum) {
                source = &node(t).recovery().mirror_of(v);
                break;
              }
            }
          }
          for (const auto& [t, d] : held) {
            if (d == quorum) continue;
            met.record_digest_mismatch();
            if (tr.enabled()) {
              tr.lifecycle(trace::EventKind::kDigestMismatch, t);
            }
            if (source != nullptr) {
              node(t).recovery().install_mirror(v, *source);
              met.record_digest_repair();
            }
          }
        }
      }
    }
  }

  // ---- Churn (Contribution 4): applied lazily between epochs -----------

  /// Add a node to the running system. The join protocol splices it into
  /// the LDB and hands over its share of the keyspace; if its label is the
  /// new minimum, the anchor role (and its state, via AnchorTraits)
  /// migrates. Returns the new node's id. Must be called while no epoch
  /// is in flight.
  NodeId join_node() {
    static_assert(kHasMembership, "NodeT has no membership component");
    SKS_CHECK_MSG(net_->idle(), "join while an epoch is in flight");
    const ConfigT config = make_config_(sizing_nodes_);
    const auto params = overlay::RouteParams::for_system(sizing_nodes_);
    const NodeId id = net_->add_node(make_node_(params, config, sizing_nodes_));
    NodeT& joiner = node(id);
    // Any current member can bootstrap; use the anchor host.
    joiner.membership().join(anchor_, label_hash_);
    net_->run_until_idle();
    SKS_CHECK(joiner.membership().joined());
    AnchorTraits<NodeT>::sync_counter(joiner, epochs_started_);
    active_.insert(id);
    ++sizing_nodes_;
    migrate_anchor_if_needed();
    if (net_->tracer().enabled()) {
      net_->tracer().lifecycle(trace::EventKind::kNodeJoin, id);
    }
    return id;
  }

  /// Remove a node: its keyspace arcs are handed to the neighbours and it
  /// stops participating in epochs. Must be called while no epoch is in
  /// flight; the sole remaining node cannot leave.
  void leave_node(NodeId v) {
    static_assert(kHasMembership, "NodeT has no membership component");
    SKS_CHECK_MSG(net_->idle(), "leave while an epoch is in flight");
    if constexpr (requires(NodeT& n) { n.buffered_ops(); }) {
      SKS_CHECK_MSG(node(v).buffered_ops() == 0,
                    "node has buffered ops; run an epoch first");
    }
    const bool was_anchor = node(v).hosts_anchor();
    typename AnchorTraits<NodeT>::Handover handover{};
    if (was_anchor) handover = AnchorTraits<NodeT>::take(node(v));
    node(v).membership().leave();
    net_->run_until_idle();
    active_.erase(v);
    if (was_anchor) adopt_anchor(std::move(handover));
    if (net_->tracer().enabled()) {
      net_->tracer().lifecycle(trace::EventKind::kNodeLeave, v);
    }
  }

  // ---- Traces ----------------------------------------------------------

  /// All op records from all nodes (the input to the semantics checkers).
  /// Includes departed nodes: their completed operations still count.
  auto gather_trace() {
    using Record = std::decay_t<decltype(std::declval<NodeT&>().trace().front())>;
    std::vector<Record> all;
    for (NodeId v = 0; v < net_->size(); ++v) {
      const auto& tr = node(v).trace();
      std::size_t len = tr.size();
      if constexpr (kHasRecovery) {
        // A fenced victim's records past its last commit belong to an
        // aborted epoch — those operations were never acknowledged.
        if (net_->is_fenced(v)) {
          auto it = committed_trace_len_.find(v);
          len = it == committed_trace_len_.end() ? 0 : it->second;
        }
      }
      for (std::size_t i = 0; i < len; ++i) {
        all.push_back(tr[i]);
        all.back().node = v;
      }
    }
    return all;
  }

 private:
  /// Transactional epoch under crash recovery: checkpoint every member,
  /// run the epoch, replicate the deltas, commit — or, on a declared
  /// death, fence + rollback + repair and re-run the whole epoch. Rounds
  /// accumulate across attempts: detection and repair time is part of the
  /// epoch's cost, which is exactly what E15 measures.
  template <class StartFn>
  std::uint64_t run_epoch_recovered(StartFn&& start) {
    const std::uint64_t msgs0 = net_->metrics().total_messages();
    const std::uint64_t bits0 = net_->metrics().total_bits();
    trace::Tracer& tr = net_->tracer();
    if (tr.enabled()) tr.epoch_begin(epochs_started_);
    std::uint64_t rounds = 0;
    int attempts = 0;
    for (;;) {
      SKS_CHECK_MSG(++attempts <= kMaxEpochAttempts,
                    "epoch " << epochs_started_ << " failed to commit after "
                             << kMaxEpochAttempts << " recovery attempts");
      if constexpr (requires(NodeT& n) { n.begin_epoch_checkpoint(); }) {
        for (NodeId v : active_) node(v).begin_epoch_checkpoint();
      }
      // A node already down never contributes: the reliable transport's
      // retransmissions toward it keep the network non-idle until the
      // detector declares it, so a pre-epoch crash funnels into the same
      // recovery path as a mid-epoch one.
      for (NodeId v : active_) {
        if (!net_->is_crashed(v)) start(node(v));
      }
      // Commit requires every participant alive: if a member is down but
      // the traffic toward it happened to finish (a crash in the epoch's
      // tail), committing would lose its un-replicated epoch changes —
      // wait for the detector to declare it and roll back instead.
      auto any_crashed = [this] {
        for (NodeId v : active_) {
          if (net_->is_crashed(v)) return true;
        }
        return false;
      };
      std::set<NodeId> dead = drive_until_idle_or_death(&rounds);
      if (dead.empty() && any_crashed()) dead = drive_until_death(&rounds);
      if (dead.empty()) {
        if constexpr (requires(NodeT& n) { n.send_epoch_deltas(); }) {
          for (NodeId v : active_) node(v).send_epoch_deltas();
        }
        dead = drive_until_idle_or_death(&rounds);
        if (dead.empty() && any_crashed()) dead = drive_until_death(&rounds);
        if (dead.empty()) {
          // Commit: acknowledged == committed == replicated.
          if constexpr (requires(NodeT& n) { n.commit_epoch(); }) {
            for (NodeId v : active_) node(v).commit_epoch();
          }
          for (NodeId v : active_) node(v).recovery().commit_staged();
          // Post-commit scrub: audit survivor/mirror digests and repair
          // divergence while every mirror is freshly committed.
          if (opts_.recovery.scrub_every != 0 &&
              (epochs_started_ + 1) % opts_.recovery.scrub_every == 0) {
            scrub_mirrors();
          }
          for (NodeId v : active_) {
            committed_trace_len_[v] = node(v).trace().size();
          }
          break;
        }
      }
      recover_from(std::move(dead), &rounds);
    }
    if (tr.enabled()) tr.epoch_end(epochs_started_);
    const sim::Metrics& cur = net_->metrics();
    EpochStats st;
    st.epoch = epochs_started_;
    st.rounds = rounds;
    st.messages = cur.total_messages() - msgs0;
    st.bits = cur.total_bits() - bits0;
    st.congestion_high_water = cur.max_congestion();
    epoch_history_.push_back(st);
    if (epoch_observer_) epoch_observer_(st);
    adapt_batch_limit();
    ++epochs_started_;
    return rounds;
  }

  /// AIMD-flavored batch sizing: backlog left after the epoch means the
  /// cap bit, so double it (amortize the tree over more ops); a clean
  /// drain means light load, so halve back toward the latency-optimal
  /// minimum. Multiplicative in both directions: the limit tracks load
  /// swings within O(log(max/min)) epochs.
  void adapt_batch_limit() {
    if (opts_.adaptive_batch_max == 0) return;
    if (queued_ops() > 0) {
      batch_limit_ = std::min(batch_limit_ * 2, opts_.adaptive_batch_max);
    } else {
      batch_limit_ = std::max(batch_limit_ / 2, opts_.adaptive_batch_min);
    }
  }

  /// Rebuild the overlay for the surviving member set and re-home the
  /// victims' durable state from the replica mirrors. Labels are pure
  /// hashes of node ids, so survivors' labels are unchanged and their
  /// arcs only grow — repair never moves state between survivors.
  void repair_membership(const std::set<NodeId>& victims) {
    if constexpr (kHasRecovery && kIsOverlay) {
      // Pull each victim's committed mirror before touching any links.
      std::map<NodeId, recovery::Mirror> recovered;
      for (NodeId dead : victims) {
        bool found = false;
        for (NodeId v : active_) {
          if (node(v).recovery().has_mirror(dead)) {
            recovered[dead] = node(v).recovery().mirror_of(dead);
            found = true;
            break;
          }
        }
        SKS_CHECK_MSG(found, "no surviving replica of node "
                                 << dead
                                 << ": crashes exceeded the replication "
                                    "factor k");
      }
      const bool anchor_died = victims.count(anchor_) != 0;
      const NodeId old_anchor = anchor_;
      const std::vector<NodeId> members(active_.begin(), active_.end());
      auto links = overlay::build_topology(members, label_hash_);
      for (NodeId v : active_) node(v).install_links(links.at(v));
      // The anchor is the globally minimal left-vertex label; if its host
      // died the role lands on the survivor whose left vertex is now the
      // minimum.
      anchor_ = kNoNode;
      for (NodeId v : active_) {
        if (node(v).hosts_anchor()) {
          anchor_ = v;
          break;
        }
      }
      SKS_CHECK_MSG(anchor_ != kNoNode, "no anchor after recovery repair");
      if (anchor_died) {
        const recovery::Mirror& m = recovered.at(old_anchor);
        // has_anchor=false means the anchor died before its first commit:
        // the new anchor's fresh default state IS the committed state.
        if (m.has_anchor) {
          if constexpr (requires(NodeT& n, std::vector<std::uint64_t> w) {
                          n.install_anchor_blob(w);
                        }) {
            node(anchor_).install_anchor_blob(m.anchor_blob);
          }
        }
      }
      // Re-home every recovered key to whichever survivor's arc absorbed
      // it after the victims' arcs merged into their predecessors'.
      auto owner_of = [&](Point key) -> NodeId {
        for (const auto& [v, nl] : links) {
          for (const auto& st : nl.vstates) {
            if (overlay::arc_contains(st.self.label, st.succ.label, key)) {
              return v;
            }
          }
        }
        SKS_CHECK_MSG(false, "no owner for recovered key");
        return kNoNode;
      };
      if constexpr (requires(NodeT& n, std::uint8_t s, Point p,
                             std::vector<Element> es) {
                      n.absorb_recovered(s, p, std::move(es));
                    }) {
        for (auto& [dead, m] : recovered) {
          for (auto& [sk, elems] : m.entries) {
            if (elems.empty()) continue;
            node(owner_of(sk.second))
                .absorb_recovered(sk.first, sk.second, std::move(elems));
          }
        }
      }
      // Fresh detector rings over the survivors, mirrors of the dead
      // dropped everywhere, then reseed all mirrors for the new topology
      // (replica target sets changed with the ring).
      for (NodeId v : active_) {
        for (NodeId dead : victims) node(v).recovery().drop_mirror(dead);
        node(v).recovery().set_ring(members);
      }
      refresh_mirrors();
    }
  }

  void on_restart(NodeId v) {
    if (missed_start_.erase(v) != 0 && pending_start_) {
      pending_start_(node(v));
    }
  }

  static NodeFactory default_node_factory() {
    return [](const overlay::RouteParams& params, const ConfigT& config,
              std::size_t) { return std::make_unique<NodeT>(params, config); };
  }

  /// After churn the anchor role may sit on a different host (the minimum
  /// label moved); find it and hand over the state taken from the old one.
  void migrate_anchor_if_needed() {
    if (node(anchor_).hosts_anchor()) return;
    adopt_anchor(AnchorTraits<NodeT>::take(node(anchor_)));
  }

  void adopt_anchor(typename AnchorTraits<NodeT>::Handover&& handover) {
    for (NodeId w : active_) {
      if (node(w).hosts_anchor()) {
        AnchorTraits<NodeT>::install(node(w), std::move(handover));
        anchor_ = w;
        return;
      }
    }
    SKS_CHECK_MSG(false, "no anchor after churn");
  }

  ClusterOptions opts_;
  ConfigFactory make_config_;
  NodeFactory make_node_;
  HashFunction label_hash_;
  std::unique_ptr<sim::Network> net_;
  /// System size the config/params derivation sees: grows with every join
  /// (leaves keep their slot in the network and the sizing, matching the
  /// paper's lazy departure handling).
  std::size_t sizing_nodes_ = 0;
  NodeId anchor_ = kNoNode;
  std::set<NodeId> active_;
  std::uint64_t epochs_started_ = 0;
  /// Per-node op cap for the next epoch (0 = uncapped). Only adapted when
  /// ClusterOptions::adaptive_batch_max != 0.
  std::size_t batch_limit_ = 0;
  std::vector<EpochStats> epoch_history_;
  std::function<void(const EpochStats&)> epoch_observer_;
  /// Nodes that were down at start_all time this epoch, and the start
  /// function to apply if they restart before the epoch quiesces.
  std::set<NodeId> missed_start_;
  std::function<void(NodeT&)> pending_start_;
  /// Recovery bookkeeping: completed recoveries, and the per-node trace
  /// length as of the last commit (a fenced node's trace is truncated to
  /// its committed prefix — its aborted-epoch records never happened).
  std::vector<RecoveryEvent> recovery_log_;
  std::map<NodeId, std::size_t> committed_trace_len_;
  static constexpr int kMaxEpochAttempts = 16;
};

}  // namespace sks::runtime
