// Simulation metrics.
//
// The paper's performance claims are about (a) rounds, (b) congestion (the
// maximum number of messages a node must handle in one round, Section 1.1)
// and (c) message sizes in bits. Metrics tracks all three, with windowed
// snapshots so benchmarks can measure a single protocol phase.
//
// The per-delivery path is branch-free and allocation-free: counters are
// accumulated in flat arrays indexed by the payload's dense ActionId (the
// name string was interned once at registration), pre-sized once per round
// (sync_actions) instead of once per call. The string-keyed maps of
// MetricsSnapshot — the stable interface every bench and test reads — are
// materialized only when a window is snapshotted.
//
// Sharded execution (sim/network.hpp): each execution shard accumulates
// into its own MetricsShard — no cross-thread counter contention, and the
// single-shard layout is exactly the pre-shard layout — and the Metrics
// facade folds the shards only when a window is read. Folding is shard-
// order independent for every field (sums, maxima, histogram merges), so
// snapshots are identical for every thread count.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/payload.hpp"

namespace sks::sim {

/// Log2-bucketed histogram of non-negative 64-bit quantities. Bucket b
/// counts values whose bit width is b (i.e. values in [2^(b-1), 2^b));
/// bucket 0 counts zeros. Recording is one array increment — cheap enough
/// for the per-delivery path — and the fixed-size storage keeps the
/// metrics object allocation-free.
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v) { ++buckets_[std::bit_width(v)]; }

  void clear() { buckets_.fill(0); }

  void merge(const Log2Histogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  }

  std::uint64_t total() const {
    std::uint64_t n = 0;
    for (std::uint64_t c : buckets_) n += c;
    return n;
  }

  /// Upper bound of the bucket containing the q-quantile (q in [0, 1]):
  /// the largest value with that bit width. Returns 0 for an empty
  /// histogram.
  std::uint64_t quantile(double q) const {
    const std::uint64_t n = total();
    if (n == 0) return 0;
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen > rank || seen == n) return bucket_upper(b);
    }
    return bucket_upper(kBuckets - 1);
  }

  static std::uint64_t bucket_upper(std::size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return ~0ull;
    return (1ull << b) - 1;
  }

  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  friend bool operator==(const Log2Histogram& a, const Log2Histogram& b) {
    return a.buckets_ == b.buckets_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
};

struct MetricsSnapshot {
  std::uint64_t rounds = 0;            ///< rounds elapsed in the window
  std::uint64_t total_messages = 0;    ///< host-crossing messages delivered
  std::uint64_t total_bits = 0;        ///< sum of message sizes
  std::uint64_t max_message_bits = 0;  ///< largest single message
  std::uint64_t max_congestion = 0;    ///< max msgs one node handled in one round
  Log2Histogram message_bits_hist;     ///< per-message size distribution
  /// Per-node-per-round deliveries (rounds where a node received nothing
  /// are not recorded, so this is the distribution of *busy* node-rounds).
  Log2Histogram congestion_hist;
  std::map<std::string, std::uint64_t> messages_by_type;
  std::map<std::string, std::uint64_t> bits_by_type;
  std::map<std::string, std::uint64_t> max_bits_by_type;
  // Fault-injection / reliable-transport accounting. All zero in a
  // fault-free run.
  std::uint64_t dropped = 0;         ///< lost in the channel (incl. blackholes)
  std::uint64_t duplicated = 0;      ///< extra copies the channel created
  std::uint64_t retransmitted = 0;   ///< reliable-transport re-sends
  std::uint64_t dup_suppressed = 0;  ///< duplicates the transport absorbed
  std::uint64_t abandoned = 0;       ///< records given up after max_attempts
  // Wire-corruption accounting (requires wire mode + a corrupting plan).
  std::uint64_t corrupted = 0;          ///< frames the CRC/decode rejected
  std::uint64_t corrupt_delivered = 0;  ///< mutated frames that passed (2^-32)
  std::uint64_t quarantined = 0;        ///< poison records senders abandoned
  std::map<std::string, std::uint64_t> dropped_by_type;
  std::map<std::string, std::uint64_t> duplicated_by_type;
  std::map<std::string, std::uint64_t> retransmitted_by_type;
  std::map<std::string, std::uint64_t> corrupted_by_type;
  // Wire-mode accounting (all zero when wire mode is off). Body bits are
  // the measured encoding of the logical action only — frame tags and
  // envelope headers are attributed separately — so `wire_bits_by_type`
  // is directly comparable against `wire_accounted_bits_by_type`, the sum
  // of the accounted size_bits() of the same messages.
  std::uint64_t wire_messages = 0;    ///< sends marshaled through bytes
  std::uint64_t wire_body_bits = 0;   ///< measured logical-body bits
  std::uint64_t wire_frame_bits = 0;  ///< outer action tags (framing)
  std::map<std::string, std::uint64_t> wire_messages_by_type;
  std::map<std::string, std::uint64_t> wire_bits_by_type;
  std::map<std::string, std::uint64_t> wire_max_bits_by_type;
  std::map<std::string, std::uint64_t> wire_accounted_bits_by_type;
  /// Envelope header bits (RouteHop/VertexMsg fields + inner tag), keyed
  /// by the envelope type's own action name.
  std::map<std::string, std::uint64_t> wire_envelope_bits_by_type;
  // Failure-detector health events (recovery/recovery.hpp). All zero when
  // no detector is installed.
  std::uint64_t suspects = 0;       ///< liveness suspicions raised
  std::uint64_t declared_dead = 0;  ///< suspicions that hit the death bound
  std::uint64_t recoveries = 0;     ///< suspects that proved alive again
  // Replica-integrity events (recovery digests + the scrub pass). All
  // zero when recovery is off or no replica state ever diverged.
  std::uint64_t scrubs = 0;             ///< owners audited by the scrub pass
  std::uint64_t digest_mismatches = 0;  ///< digest checks that failed
  std::uint64_t digest_repairs = 0;     ///< mirrors rebuilt from quorum
  // Overload accounting. All zero unless flow control (max_in_flight) or
  // admission control (max_buffered_ops) is configured.
  std::uint64_t window_stalls = 0;  ///< sends parked by a full flow window
  std::uint64_t sheds = 0;          ///< inserts rejected/evicted by admission
  // Per-execution-shard load, shard-major (index = shard id). Message
  // counts are deterministic; busy_ns is wall-clock and only nonzero on
  // the multi-shard path. Intentionally NOT part of the determinism
  // contract (tests compare an explicit field list).
  std::vector<std::uint64_t> shard_messages;
  std::vector<std::uint64_t> shard_busy_ns;
};

/// One execution shard's metric accumulators. The network routes every
/// record_* call to the shard that owns the event (deliveries to the
/// destination's shard, send-side fault events to the sending context's
/// shard), so a shard's counters are touched by exactly one thread per
/// round. With one shard this is byte-for-byte the pre-shard Metrics
/// layout and behaviour.
class MetricsShard {
 public:
  /// Size the per-action table for every action registered so far. The
  /// network calls this once per round (before deliveries run): any
  /// payload delivered in round r was registered at its send in some
  /// round < r, so record_delivery — the hot path — never checks the
  /// table size.
  void sync_actions() {
    const std::size_t n = ActionRegistry::instance().size();
    if (by_action_.size() < n) [[unlikely]] by_action_.resize(n);
  }

  /// Guarantee the counter table covers `action` immediately. Send-time
  /// slow paths (fault drops, wire marshaling) index the table before the
  /// next round's sync_actions, so they pre-grow it here.
  void note_action(ActionId action) {
    if (action >= by_action_.size()) [[unlikely]] sync_actions();
  }

  void record_delivery(NodeId to, std::uint64_t bits, ActionId action) {
    ++total_messages_;
    total_bits_ += bits;
    max_message_bits_ = std::max(max_message_bits_, bits);
    message_bits_hist_.record(bits);
    ActionCounters& a = by_action_[action];
    ++a.messages;
    a.bits += bits;
    a.max_bits = std::max(a.max_bits, bits);
    // The shard map is id mod num_shards, so id >> shard_shift is this
    // shard's dense local index of `to`.
    ++received_this_round_[static_cast<std::size_t>(to) >> shard_shift_];
  }

  // Fault/transport events. Only reached when faults or the reliable
  // transport are active, so they stay off the fault-free hot path; the
  // action table is already sized (note_action ran at send time).
  void record_drop(ActionId action) {
    ++dropped_;
    ++by_action_[action].dropped;
  }

  void record_duplicate(ActionId action) {
    ++duplicated_;
    ++by_action_[action].duplicated;
  }

  void record_retransmit(ActionId action) {
    ++retransmitted_;
    ++by_action_[action].retransmitted;
  }

  void record_dup_suppressed() { ++dup_suppressed_; }
  void record_abandoned() { ++abandoned_; }

  /// A send hit a full flow-control window and was staged (send context —
  /// counted on the sending shard, like the fault events above).
  void record_window_stall() { ++window_stalls_; }

  /// A physical frame mutated by channel corruption and rejected by the
  /// receiver's integrity check (CRC trailer or decode). For injected
  /// garbage frames, `action` is the send whose channel carried them.
  void record_corrupt(ActionId action) {
    ++corrupted_;
    ++by_action_[action].corrupted;
  }

  /// A mutated frame that still verified and decoded — the protocol saw
  /// corrupted data. With the CRC32C trailer this needs a 2^-32 collision;
  /// the CI corruption gate asserts it stays zero.
  void record_corrupt_delivered() { ++corrupt_delivered_; }

  /// A reliable record abandoned after max_poison_attempts integrity
  /// failures (the channel corrupts it deterministically).
  void record_quarantined() { ++quarantined_; }

  // Wire-mode events (Network::marshal). Only reached with wire mode on;
  // the caller has run note_action for both ids involved.
  void record_wire(ActionId action, std::uint64_t body_bits,
                   std::uint64_t accounted_bits) {
    ++wire_messages_;
    wire_body_bits_ += body_bits;
    ActionCounters& a = by_action_[action];
    ++a.wire_messages;
    a.wire_bits += body_bits;
    a.max_wire_bits = std::max(a.max_wire_bits, body_bits);
    a.wire_accounted_bits += accounted_bits;
  }

  void record_wire_overhead(ActionId outer, std::uint64_t frame_bits,
                            std::uint64_t envelope_bits) {
    wire_frame_bits_ += frame_bits;
    if (envelope_bits != 0) {
      by_action_[outer].wire_envelope_bits += envelope_bits;
    }
  }

  /// Wall-clock nanoseconds this shard's round_work spent executing.
  /// Written by the owning worker thread between barriers (multi-shard
  /// path only; the sequential path skips the clock reads entirely).
  void add_busy_ns(std::uint64_t ns) { busy_ns_ += ns; }

  /// Fold this round's per-node delivery counts into the congestion
  /// aggregates. Runs at the end of every round, inside the shard.
  void on_round_end() {
    for (auto& c : received_this_round_) {
      if (c != 0) {
        max_congestion_ = std::max(max_congestion_, c);
        congestion_hist_.record(c);
        c = 0;
      }
    }
  }

 private:
  friend class Metrics;

  struct ActionCounters {
    std::uint64_t messages = 0;
    std::uint64_t bits = 0;
    std::uint64_t max_bits = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t retransmitted = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t wire_messages = 0;
    std::uint64_t wire_bits = 0;           ///< measured logical-body bits
    std::uint64_t max_wire_bits = 0;
    std::uint64_t wire_accounted_bits = 0; ///< size_bits() of the same msgs
    std::uint64_t wire_envelope_bits = 0;  ///< as envelope: header overhead
  };

  void reset() {
    total_messages_ = 0;
    total_bits_ = 0;
    max_message_bits_ = 0;
    max_congestion_ = 0;
    dropped_ = 0;
    duplicated_ = 0;
    retransmitted_ = 0;
    dup_suppressed_ = 0;
    abandoned_ = 0;
    corrupted_ = 0;
    corrupt_delivered_ = 0;
    quarantined_ = 0;
    window_stalls_ = 0;
    wire_messages_ = 0;
    wire_body_bits_ = 0;
    wire_frame_bits_ = 0;
    busy_ns_ = 0;
    message_bits_hist_.clear();
    congestion_hist_.clear();
    by_action_.assign(by_action_.size(), ActionCounters{});
  }

  std::uint32_t shard_shift_ = 0;  ///< log2(num_shards)
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bits_ = 0;
  std::uint64_t max_message_bits_ = 0;
  std::uint64_t max_congestion_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t retransmitted_ = 0;
  std::uint64_t dup_suppressed_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t corrupt_delivered_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t window_stalls_ = 0;
  std::uint64_t wire_messages_ = 0;
  std::uint64_t wire_body_bits_ = 0;
  std::uint64_t wire_frame_bits_ = 0;
  std::uint64_t busy_ns_ = 0;
  Log2Histogram message_bits_hist_;
  Log2Histogram congestion_hist_;
  std::vector<ActionCounters> by_action_;  ///< flat, indexed by ActionId
  /// Deliveries this round, indexed by the shard-local node index
  /// (id >> shard_shift_). One slot per node this shard owns.
  std::vector<std::uint64_t> received_this_round_;
};

/// The facade the rest of the repo reads: owns the per-shard accumulators
/// and the global round counter, folds shards into MetricsSnapshots (and
/// scalar totals) on demand. With the default single shard it behaves —
/// field for field — like the pre-shard Metrics.
class Metrics {
 public:
  explicit Metrics(std::size_t num_nodes) : shards_(1) {
    shards_[0].by_action_.resize(ActionRegistry::instance().size());
    shards_[0].received_this_round_.assign(num_nodes, 0);
  }

  // Movable so Network stays movable (the atomic health counters would
  // otherwise delete the defaults). Moves only happen single-threaded,
  // before/ between runs, so relaxed value transfer is enough.
  Metrics(Metrics&& other) noexcept
      : rounds_(other.rounds_),
        shards_(std::move(other.shards_)),
        suspects_(other.suspects_.load(std::memory_order_relaxed)),
        declared_dead_(other.declared_dead_.load(std::memory_order_relaxed)),
        recoveries_(other.recoveries_.load(std::memory_order_relaxed)),
        scrubs_(other.scrubs_.load(std::memory_order_relaxed)),
        digest_mismatches_(
            other.digest_mismatches_.load(std::memory_order_relaxed)),
        digest_repairs_(
            other.digest_repairs_.load(std::memory_order_relaxed)),
        sheds_(other.sheds_.load(std::memory_order_relaxed)) {}

  Metrics& operator=(Metrics&& other) noexcept {
    rounds_ = other.rounds_;
    shards_ = std::move(other.shards_);
    suspects_.store(other.suspects_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    declared_dead_.store(
        other.declared_dead_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    recoveries_.store(other.recoveries_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    scrubs_.store(other.scrubs_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    digest_mismatches_.store(
        other.digest_mismatches_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    digest_repairs_.store(
        other.digest_repairs_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    sheds_.store(other.sheds_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  /// Re-partition the congestion slots across `num_shards` execution
  /// shards (the network's latch step, before any traffic). Node id
  /// lives in shard id & (num_shards - 1) at local index id >> shift.
  void reshape(std::size_t num_shards, std::uint32_t shift) {
    const std::size_t n = shards_[0].received_this_round_.size();
    shards_.resize(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      MetricsShard& sh = shards_[s];
      sh.shard_shift_ = shift;
      sh.by_action_.resize(ActionRegistry::instance().size());
      // Shard s owns nodes s, s + S, s + 2S, ...
      const std::size_t owned = n > s ? (n - s - 1) / num_shards + 1 : 0;
      sh.received_this_round_.assign(owned, 0);
    }
  }

  MetricsShard& shard(std::size_t s) { return shards_[s]; }

  void on_node_added(NodeId id) {
    shards_[static_cast<std::size_t>(id) & (shards_.size() - 1)]
        .received_this_round_.push_back(0);
  }

  /// Once-per-round table sizing for every shard (see
  /// MetricsShard::sync_actions).
  void sync_actions() {
    for (MetricsShard& sh : shards_) sh.sync_actions();
  }

  /// The global round clock (one per round, from the coordinator; the
  /// per-shard on_round_end folds congestion).
  void end_round() { ++rounds_; }

  /// Totals so far in the window (scalar folds for cheap callers).
  std::uint64_t total_messages() const { return sum(&MetricsShard::total_messages_); }
  std::uint64_t total_bits() const { return sum(&MetricsShard::total_bits_); }
  std::uint64_t max_congestion() const {
    std::uint64_t m = 0;
    for (const MetricsShard& sh : shards_) m = std::max(m, sh.max_congestion_);
    return m;
  }
  std::uint64_t dropped() const { return sum(&MetricsShard::dropped_); }
  std::uint64_t duplicated() const { return sum(&MetricsShard::duplicated_); }
  std::uint64_t retransmitted() const { return sum(&MetricsShard::retransmitted_); }
  std::uint64_t dup_suppressed() const { return sum(&MetricsShard::dup_suppressed_); }
  std::uint64_t abandoned() const { return sum(&MetricsShard::abandoned_); }
  std::uint64_t corrupted() const { return sum(&MetricsShard::corrupted_); }
  std::uint64_t corrupt_delivered() const {
    return sum(&MetricsShard::corrupt_delivered_);
  }
  std::uint64_t quarantined() const { return sum(&MetricsShard::quarantined_); }
  std::uint64_t window_stalls() const {
    return sum(&MetricsShard::window_stalls_);
  }
  std::uint64_t wire_messages() const { return sum(&MetricsShard::wire_messages_); }
  std::uint64_t wire_body_bits() const { return sum(&MetricsShard::wire_body_bits_); }

  // Failure-detector health events. Detector ticks run on shard worker
  // threads, so these are relaxed atomics (pure event counts — ordering
  // is irrelevant, only the total is read, at barriers or sample points).
  void record_suspect() { suspects_.fetch_add(1, std::memory_order_relaxed); }
  void record_declared_dead() {
    declared_dead_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_recovery() { recoveries_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t suspects() const {
    return suspects_.load(std::memory_order_relaxed);
  }
  std::uint64_t declared_dead() const {
    return declared_dead_.load(std::memory_order_relaxed);
  }
  std::uint64_t recoveries() const {
    return recoveries_.load(std::memory_order_relaxed);
  }

  // Replica-integrity events. Digest checks run on shard worker threads
  // (delta apply), the scrub pass on the coordinator — same relaxed-
  // atomic treatment as the detector events above.
  void record_scrub() { scrubs_.fetch_add(1, std::memory_order_relaxed); }
  void record_digest_mismatch() {
    digest_mismatches_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_digest_repair() {
    digest_repairs_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t scrubs() const {
    return scrubs_.load(std::memory_order_relaxed);
  }
  std::uint64_t digest_mismatches() const {
    return digest_mismatches_.load(std::memory_order_relaxed);
  }
  std::uint64_t digest_repairs() const {
    return digest_repairs_.load(std::memory_order_relaxed);
  }

  // Admission-control sheds. Recorded at client insert time (any thread
  // may drive a node between rounds), so the same relaxed-atomic
  // treatment as the detector events.
  void record_shed() { sheds_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t sheds() const {
    return sheds_.load(std::memory_order_relaxed);
  }

  /// Per-shard delivery counts / busy wall-ns, shard-major — the cheap
  /// load-balance reads for telemetry (no snapshot maps materialized).
  std::vector<std::uint64_t> shard_message_counts() const {
    std::vector<std::uint64_t> out;
    out.reserve(shards_.size());
    for (const MetricsShard& sh : shards_) out.push_back(sh.total_messages_);
    return out;
  }
  std::vector<std::uint64_t> shard_busy_ns() const {
    std::vector<std::uint64_t> out;
    out.reserve(shards_.size());
    for (const MetricsShard& sh : shards_) out.push_back(sh.busy_ns_);
    return out;
  }

  /// Snapshot the current window and start a fresh one.
  MetricsSnapshot take() {
    MetricsSnapshot out = current();
    rounds_ = 0;
    for (MetricsShard& sh : shards_) sh.reset();
    suspects_.store(0, std::memory_order_relaxed);
    declared_dead_.store(0, std::memory_order_relaxed);
    recoveries_.store(0, std::memory_order_relaxed);
    scrubs_.store(0, std::memory_order_relaxed);
    digest_mismatches_.store(0, std::memory_order_relaxed);
    digest_repairs_.store(0, std::memory_order_relaxed);
    sheds_.store(0, std::memory_order_relaxed);
    return out;
  }

  /// Materialize the current window (string-keyed maps built on demand).
  /// Every fold is commutative and associative across shards — sums,
  /// maxima, histogram merges — so the snapshot does not depend on the
  /// shard count's interleaving of the same events.
  MetricsSnapshot current() const {
    MetricsSnapshot snap;
    snap.rounds = rounds_;
    snap.suspects = suspects();
    snap.declared_dead = declared_dead();
    snap.recoveries = recoveries();
    snap.scrubs = scrubs();
    snap.digest_mismatches = digest_mismatches();
    snap.digest_repairs = digest_repairs();
    snap.sheds = sheds();
    snap.shard_messages.reserve(shards_.size());
    snap.shard_busy_ns.reserve(shards_.size());
    const ActionRegistry& registry = ActionRegistry::instance();
    for (const MetricsShard& m : shards_) {
      snap.shard_messages.push_back(m.total_messages_);
      snap.shard_busy_ns.push_back(m.busy_ns_);
      snap.total_messages += m.total_messages_;
      snap.total_bits += m.total_bits_;
      snap.max_message_bits = std::max(snap.max_message_bits, m.max_message_bits_);
      snap.max_congestion = std::max(snap.max_congestion, m.max_congestion_);
      snap.message_bits_hist.merge(m.message_bits_hist_);
      snap.congestion_hist.merge(m.congestion_hist_);
      snap.dropped += m.dropped_;
      snap.duplicated += m.duplicated_;
      snap.retransmitted += m.retransmitted_;
      snap.dup_suppressed += m.dup_suppressed_;
      snap.abandoned += m.abandoned_;
      snap.corrupted += m.corrupted_;
      snap.corrupt_delivered += m.corrupt_delivered_;
      snap.quarantined += m.quarantined_;
      snap.window_stalls += m.window_stalls_;
      snap.wire_messages += m.wire_messages_;
      snap.wire_body_bits += m.wire_body_bits_;
      snap.wire_frame_bits += m.wire_frame_bits_;
      for (std::size_t a = 0; a < m.by_action_.size(); ++a) {
        const MetricsShard::ActionCounters& c = m.by_action_[a];
        if (c.messages == 0 && c.dropped == 0 && c.duplicated == 0 &&
            c.retransmitted == 0 && c.corrupted == 0 &&
            c.wire_messages == 0 && c.wire_envelope_bits == 0) {
          continue;
        }
        const std::string& name = registry.name(static_cast<ActionId>(a));
        if (c.messages != 0) {
          snap.messages_by_type[name] += c.messages;
          snap.bits_by_type[name] += c.bits;
          auto& type_max = snap.max_bits_by_type[name];
          type_max = std::max(type_max, c.max_bits);
        }
        if (c.dropped != 0) snap.dropped_by_type[name] += c.dropped;
        if (c.duplicated != 0) snap.duplicated_by_type[name] += c.duplicated;
        if (c.retransmitted != 0) {
          snap.retransmitted_by_type[name] += c.retransmitted;
        }
        if (c.corrupted != 0) snap.corrupted_by_type[name] += c.corrupted;
        if (c.wire_messages != 0) {
          snap.wire_messages_by_type[name] += c.wire_messages;
          snap.wire_bits_by_type[name] += c.wire_bits;
          auto& wire_max = snap.wire_max_bits_by_type[name];
          wire_max = std::max(wire_max, c.max_wire_bits);
          snap.wire_accounted_bits_by_type[name] += c.wire_accounted_bits;
        }
        if (c.wire_envelope_bits != 0) {
          snap.wire_envelope_bits_by_type[name] += c.wire_envelope_bits;
        }
      }
    }
    return snap;
  }

 private:
  std::uint64_t sum(std::uint64_t MetricsShard::* field) const {
    std::uint64_t total = 0;
    for (const MetricsShard& sh : shards_) total += sh.*field;
    return total;
  }

  std::uint64_t rounds_ = 0;
  std::vector<MetricsShard> shards_;
  std::atomic<std::uint64_t> suspects_{0};
  std::atomic<std::uint64_t> declared_dead_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> scrubs_{0};
  std::atomic<std::uint64_t> digest_mismatches_{0};
  std::atomic<std::uint64_t> digest_repairs_{0};
  std::atomic<std::uint64_t> sheds_{0};
};

}  // namespace sks::sim
