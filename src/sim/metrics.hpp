// Simulation metrics.
//
// The paper's performance claims are about (a) rounds, (b) congestion (the
// maximum number of messages a node must handle in one round, Section 1.1)
// and (c) message sizes in bits. Metrics tracks all three, with windowed
// snapshots so benchmarks can measure a single protocol phase.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sks::sim {

struct MetricsSnapshot {
  std::uint64_t rounds = 0;            ///< rounds elapsed in the window
  std::uint64_t total_messages = 0;    ///< host-crossing messages delivered
  std::uint64_t total_bits = 0;        ///< sum of message sizes
  std::uint64_t max_message_bits = 0;  ///< largest single message
  std::uint64_t max_congestion = 0;    ///< max msgs one node handled in one round
  std::map<std::string, std::uint64_t> messages_by_type;
  std::map<std::string, std::uint64_t> bits_by_type;
  std::map<std::string, std::uint64_t> max_bits_by_type;
};

class Metrics {
 public:
  explicit Metrics(std::size_t num_nodes) : received_this_round_(num_nodes, 0) {}

  void on_node_added() { received_this_round_.push_back(0); }

  void record_delivery(NodeId to, std::uint64_t bits, const char* type) {
    ++snap_.total_messages;
    snap_.total_bits += bits;
    snap_.max_message_bits = std::max(snap_.max_message_bits, bits);
    ++snap_.messages_by_type[type];
    snap_.bits_by_type[type] += bits;
    auto& type_max = snap_.max_bits_by_type[type];
    type_max = std::max(type_max, bits);
    const auto idx = static_cast<std::size_t>(to);
    if (idx < received_this_round_.size()) {
      ++received_this_round_[idx];
    }
  }

  void on_round_end() {
    ++snap_.rounds;
    for (auto& c : received_this_round_) {
      snap_.max_congestion = std::max(snap_.max_congestion, c);
      c = 0;
    }
  }

  /// Snapshot the current window and start a fresh one.
  MetricsSnapshot take() {
    MetricsSnapshot out = snap_;
    snap_ = MetricsSnapshot{};
    return out;
  }

  const MetricsSnapshot& current() const { return snap_; }

 private:
  MetricsSnapshot snap_;
  std::vector<std::uint64_t> received_this_round_;
};

}  // namespace sks::sim
