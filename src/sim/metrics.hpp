// Simulation metrics.
//
// The paper's performance claims are about (a) rounds, (b) congestion (the
// maximum number of messages a node must handle in one round, Section 1.1)
// and (c) message sizes in bits. Metrics tracks all three, with windowed
// snapshots so benchmarks can measure a single protocol phase.
//
// The per-delivery path is branch-light and allocation-free: counters are
// accumulated in flat arrays indexed by the payload's dense ActionId (the
// name string was interned once at registration). The string-keyed maps of
// MetricsSnapshot — the stable interface every bench and test reads — are
// materialized only when a window is snapshotted.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/payload.hpp"

namespace sks::sim {

/// Log2-bucketed histogram of non-negative 64-bit quantities. Bucket b
/// counts values whose bit width is b (i.e. values in [2^(b-1), 2^b));
/// bucket 0 counts zeros. Recording is one array increment — cheap enough
/// for the per-delivery path — and the fixed-size storage keeps the
/// metrics object allocation-free.
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v) { ++buckets_[std::bit_width(v)]; }

  void clear() { buckets_.fill(0); }

  void merge(const Log2Histogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  }

  std::uint64_t total() const {
    std::uint64_t n = 0;
    for (std::uint64_t c : buckets_) n += c;
    return n;
  }

  /// Upper bound of the bucket containing the q-quantile (q in [0, 1]):
  /// the largest value with that bit width. Returns 0 for an empty
  /// histogram.
  std::uint64_t quantile(double q) const {
    const std::uint64_t n = total();
    if (n == 0) return 0;
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen > rank || seen == n) return bucket_upper(b);
    }
    return bucket_upper(kBuckets - 1);
  }

  static std::uint64_t bucket_upper(std::size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return ~0ull;
    return (1ull << b) - 1;
  }

  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  friend bool operator==(const Log2Histogram& a, const Log2Histogram& b) {
    return a.buckets_ == b.buckets_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
};

struct MetricsSnapshot {
  std::uint64_t rounds = 0;            ///< rounds elapsed in the window
  std::uint64_t total_messages = 0;    ///< host-crossing messages delivered
  std::uint64_t total_bits = 0;        ///< sum of message sizes
  std::uint64_t max_message_bits = 0;  ///< largest single message
  std::uint64_t max_congestion = 0;    ///< max msgs one node handled in one round
  Log2Histogram message_bits_hist;     ///< per-message size distribution
  /// Per-node-per-round deliveries (rounds where a node received nothing
  /// are not recorded, so this is the distribution of *busy* node-rounds).
  Log2Histogram congestion_hist;
  std::map<std::string, std::uint64_t> messages_by_type;
  std::map<std::string, std::uint64_t> bits_by_type;
  std::map<std::string, std::uint64_t> max_bits_by_type;
  // Fault-injection / reliable-transport accounting. All zero in a
  // fault-free run.
  std::uint64_t dropped = 0;         ///< lost in the channel (incl. blackholes)
  std::uint64_t duplicated = 0;      ///< extra copies the channel created
  std::uint64_t retransmitted = 0;   ///< reliable-transport re-sends
  std::uint64_t dup_suppressed = 0;  ///< duplicates the transport absorbed
  std::uint64_t abandoned = 0;       ///< records given up after max_attempts
  std::map<std::string, std::uint64_t> dropped_by_type;
  std::map<std::string, std::uint64_t> duplicated_by_type;
  std::map<std::string, std::uint64_t> retransmitted_by_type;
  // Wire-mode accounting (all zero when wire mode is off). Body bits are
  // the measured encoding of the logical action only — frame tags and
  // envelope headers are attributed separately — so `wire_bits_by_type`
  // is directly comparable against `wire_accounted_bits_by_type`, the sum
  // of the accounted size_bits() of the same messages.
  std::uint64_t wire_messages = 0;    ///< sends marshaled through bytes
  std::uint64_t wire_body_bits = 0;   ///< measured logical-body bits
  std::uint64_t wire_frame_bits = 0;  ///< outer action tags (framing)
  std::map<std::string, std::uint64_t> wire_messages_by_type;
  std::map<std::string, std::uint64_t> wire_bits_by_type;
  std::map<std::string, std::uint64_t> wire_max_bits_by_type;
  std::map<std::string, std::uint64_t> wire_accounted_bits_by_type;
  /// Envelope header bits (RouteHop/VertexMsg fields + inner tag), keyed
  /// by the envelope type's own action name.
  std::map<std::string, std::uint64_t> wire_envelope_bits_by_type;
};

class Metrics {
 public:
  explicit Metrics(std::size_t num_nodes) : received_this_round_(num_nodes, 0) {
    // Pre-size the per-action counters for every action registered so far;
    // note_action() (called at send time, when a payload's tag provably
    // exists) grows the table for late registrations, so record_delivery —
    // the hot path — never branches on the table size.
    by_action_.resize(ActionRegistry::instance().size());
  }

  void on_node_added() {
    received_this_round_.push_back(0);
    by_action_.resize(
        std::max(by_action_.size(), ActionRegistry::instance().size()));
  }

  /// Guarantee the counter table covers `action`. Called once per send
  /// (where new ActionIds first appear); in steady state the branch is
  /// never taken.
  void note_action(ActionId action) {
    if (action >= by_action_.size()) [[unlikely]] {
      by_action_.resize(ActionRegistry::instance().size());
    }
  }

  void record_delivery(NodeId to, std::uint64_t bits, ActionId action) {
    ++total_messages_;
    total_bits_ += bits;
    max_message_bits_ = std::max(max_message_bits_, bits);
    message_bits_hist_.record(bits);
    ActionCounters& a = by_action_[action];
    ++a.messages;
    a.bits += bits;
    a.max_bits = std::max(a.max_bits, bits);
    const auto idx = static_cast<std::size_t>(to);
    // A delivery the congestion tracker has no slot for means the metrics
    // and the topology disagree — fail loudly instead of silently skewing
    // max_congestion.
    SKS_CHECK_MSG(idx < received_this_round_.size(),
                  "delivery to node " << to << " outside the metrics "
                  "topology (" << received_this_round_.size() << " nodes)");
    ++received_this_round_[idx];
  }

  // Fault/transport events. Only reached when faults or the reliable
  // transport are active, so they stay off the fault-free hot path; the
  // action table is already sized (note_action ran at send time).
  void record_drop(ActionId action) {
    ++dropped_;
    ++by_action_[action].dropped;
  }

  void record_duplicate(ActionId action) {
    ++duplicated_;
    ++by_action_[action].duplicated;
  }

  void record_retransmit(ActionId action) {
    ++retransmitted_;
    ++by_action_[action].retransmitted;
  }

  void record_dup_suppressed() { ++dup_suppressed_; }
  void record_abandoned() { ++abandoned_; }

  // Wire-mode events (Network::marshal). Only reached with wire mode on;
  // the caller has run note_action for both ids involved.
  void record_wire(ActionId action, std::uint64_t body_bits,
                   std::uint64_t accounted_bits) {
    ++wire_messages_;
    wire_body_bits_ += body_bits;
    ActionCounters& a = by_action_[action];
    ++a.wire_messages;
    a.wire_bits += body_bits;
    a.max_wire_bits = std::max(a.max_wire_bits, body_bits);
    a.wire_accounted_bits += accounted_bits;
  }

  void record_wire_overhead(ActionId outer, std::uint64_t frame_bits,
                            std::uint64_t envelope_bits) {
    wire_frame_bits_ += frame_bits;
    if (envelope_bits != 0) {
      by_action_[outer].wire_envelope_bits += envelope_bits;
    }
  }

  void on_round_end() {
    ++rounds_;
    for (auto& c : received_this_round_) {
      if (c != 0) {
        max_congestion_ = std::max(max_congestion_, c);
        congestion_hist_.record(c);
        c = 0;
      }
    }
  }

  /// Totals so far in the window (cheap scalar reads for hot callers).
  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t total_bits() const { return total_bits_; }
  std::uint64_t max_congestion() const { return max_congestion_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t retransmitted() const { return retransmitted_; }
  std::uint64_t dup_suppressed() const { return dup_suppressed_; }
  std::uint64_t abandoned() const { return abandoned_; }
  std::uint64_t wire_messages() const { return wire_messages_; }
  std::uint64_t wire_body_bits() const { return wire_body_bits_; }

  /// Snapshot the current window and start a fresh one.
  MetricsSnapshot take() {
    MetricsSnapshot out = current();
    rounds_ = 0;
    total_messages_ = 0;
    total_bits_ = 0;
    max_message_bits_ = 0;
    max_congestion_ = 0;
    dropped_ = 0;
    duplicated_ = 0;
    retransmitted_ = 0;
    dup_suppressed_ = 0;
    abandoned_ = 0;
    wire_messages_ = 0;
    wire_body_bits_ = 0;
    wire_frame_bits_ = 0;
    message_bits_hist_.clear();
    congestion_hist_.clear();
    by_action_.assign(by_action_.size(), ActionCounters{});
    return out;
  }

  /// Materialize the current window (string-keyed maps built on demand).
  MetricsSnapshot current() const {
    MetricsSnapshot snap;
    snap.rounds = rounds_;
    snap.total_messages = total_messages_;
    snap.total_bits = total_bits_;
    snap.max_message_bits = max_message_bits_;
    snap.max_congestion = max_congestion_;
    snap.message_bits_hist = message_bits_hist_;
    snap.congestion_hist = congestion_hist_;
    snap.dropped = dropped_;
    snap.duplicated = duplicated_;
    snap.retransmitted = retransmitted_;
    snap.dup_suppressed = dup_suppressed_;
    snap.abandoned = abandoned_;
    snap.wire_messages = wire_messages_;
    snap.wire_body_bits = wire_body_bits_;
    snap.wire_frame_bits = wire_frame_bits_;
    const ActionRegistry& registry = ActionRegistry::instance();
    for (std::size_t a = 0; a < by_action_.size(); ++a) {
      const ActionCounters& c = by_action_[a];
      if (c.messages == 0 && c.dropped == 0 && c.duplicated == 0 &&
          c.retransmitted == 0 && c.wire_messages == 0 &&
          c.wire_envelope_bits == 0) {
        continue;
      }
      const std::string& name = registry.name(static_cast<ActionId>(a));
      if (c.messages != 0) {
        snap.messages_by_type[name] += c.messages;
        snap.bits_by_type[name] += c.bits;
        auto& type_max = snap.max_bits_by_type[name];
        type_max = std::max(type_max, c.max_bits);
      }
      if (c.dropped != 0) snap.dropped_by_type[name] += c.dropped;
      if (c.duplicated != 0) snap.duplicated_by_type[name] += c.duplicated;
      if (c.retransmitted != 0) {
        snap.retransmitted_by_type[name] += c.retransmitted;
      }
      if (c.wire_messages != 0) {
        snap.wire_messages_by_type[name] += c.wire_messages;
        snap.wire_bits_by_type[name] += c.wire_bits;
        auto& wire_max = snap.wire_max_bits_by_type[name];
        wire_max = std::max(wire_max, c.max_wire_bits);
        snap.wire_accounted_bits_by_type[name] += c.wire_accounted_bits;
      }
      if (c.wire_envelope_bits != 0) {
        snap.wire_envelope_bits_by_type[name] += c.wire_envelope_bits;
      }
    }
    return snap;
  }

 private:
  struct ActionCounters {
    std::uint64_t messages = 0;
    std::uint64_t bits = 0;
    std::uint64_t max_bits = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t retransmitted = 0;
    std::uint64_t wire_messages = 0;
    std::uint64_t wire_bits = 0;           ///< measured logical-body bits
    std::uint64_t max_wire_bits = 0;
    std::uint64_t wire_accounted_bits = 0; ///< size_bits() of the same msgs
    std::uint64_t wire_envelope_bits = 0;  ///< as envelope: header overhead
  };

  std::uint64_t rounds_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bits_ = 0;
  std::uint64_t max_message_bits_ = 0;
  std::uint64_t max_congestion_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t retransmitted_ = 0;
  std::uint64_t dup_suppressed_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t wire_messages_ = 0;
  std::uint64_t wire_body_bits_ = 0;
  std::uint64_t wire_frame_bits_ = 0;
  Log2Histogram message_bits_hist_;
  Log2Histogram congestion_hist_;
  std::vector<ActionCounters> by_action_;  ///< flat, indexed by ActionId
  std::vector<std::uint64_t> received_this_round_;
};

}  // namespace sks::sim
