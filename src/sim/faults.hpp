// Deterministic fault injection for the simulated network.
//
// The paper's model (Section 1.1) assumes a perfect network: no loss, no
// duplication, fair receipt. Production networks offer none of that, so
// this module lets a simulation selectively break each guarantee — per-
// message drop and duplication probabilities, heavy-tail delay spikes,
// scheduled link partitions, and node crash-stop / crash-restart — while
// staying exactly reproducible:
//
//  * All fault randomness draws from dedicated rng streams (seeded from
//    the network seed with kFaultStreamSalt, one stream per execution
//    shard — the shard's Rng is passed into each draw), so enabling
//    faults never perturbs the protocol-visible stream or the async delay
//    stream, and an all-zero FaultPlan reproduces today's fault-free
//    traces byte for byte (the golden-trace tests enforce this).
//  * Crash semantics are crash-stop with optional restart: a crashed node
//    blackholes its channel (messages addressed to it are dropped at
//    delivery time) and is skipped by on_activate; on restart it resumes
//    with its state intact (crash-recovery with durable state). Nothing
//    re-sends lost messages — that is the reliable transport's job
//    (src/sim/reliable.hpp).
//
// The taxonomy follows Skueue's churn model and the standard crash-fault /
// retransmission models (Aspnes, Notes on Theory of Distributed Systems).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace sks::sim {

/// Salts xor'ed into the network seed to derive the per-purpose rng
/// streams (the network further aliases each stream per shard). Exported
/// so tests can reconstruct a stream independently.
inline constexpr std::uint64_t kFaultStreamSalt = 0xfa017a11edULL;
inline constexpr std::uint64_t kDelayStreamSalt = 0xd31a7de1a75eedULL;

/// A scheduled link partition: while `from_round <= round < until_round`,
/// every message between a node in `side_a` and a node in `side_b` (either
/// direction) is dropped at send time. Nodes in neither side are
/// unaffected; list every node in exactly one side for a full partition.
struct Partition {
  std::uint64_t from_round = 0;
  std::uint64_t until_round = 0;  ///< exclusive
  std::vector<NodeId> side_a;
  std::vector<NodeId> side_b;
};

/// A scheduled node crash. `restart_round == 0` means crash-stop (the node
/// never comes back); otherwise the node restarts — with its state intact —
/// at the beginning of `restart_round`.
struct CrashEvent {
  NodeId node = kNoNode;
  std::uint64_t at_round = 0;
  std::uint64_t restart_round = 0;  ///< 0 = crash-stop
};

/// A scheduled straggler window: while `from_round <= round < until_round`,
/// `node` runs on_activate only every `period`-th round (on rounds where
/// `(round - from_round) % period == 0`). Deliveries still arrive on time —
/// only the node's own processing slows down, modeling a CPU-starved or
/// GC-pausing host rather than a slow link. Like partitions, stragglers
/// are pure schedule lookups: they draw no randomness, so a plan whose
/// straggler list is empty stays byte-identical to one built before the
/// knob existed.
struct Straggler {
  NodeId node = kNoNode;
  std::uint64_t period = 2;       ///< activate every period-th round
  std::uint64_t from_round = 0;
  std::uint64_t until_round = 0;  ///< exclusive
};

/// Sustained per-link delay inflation: while active, every message from
/// `from` to `to` (that direction only; add the mirrored entry for both)
/// takes `extra` additional rounds on top of its drawn delay. Unlike the
/// probabilistic spike knob this is deterministic and sustained — the
/// injection for "this link is congested for the next thousand rounds".
struct LinkInflation {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::uint64_t extra = 0;
  std::uint64_t from_round = 0;
  std::uint64_t until_round = 0;  ///< exclusive
};

/// The complete fault schedule of one simulation. Default-constructed
/// (all-zero) plans inject nothing and cost one predictable branch per
/// send/step — runs with an all-zero plan are trace-identical to runs
/// built before fault injection existed.
struct FaultPlan {
  /// Per-message probability that the channel loses the message.
  double drop_prob = 0.0;
  /// Per-message probability that the channel delivers a second copy
  /// (with an independently drawn delay).
  double duplicate_prob = 0.0;
  /// Per-message probability of a heavy-tail delay spike: the delay grows
  /// by spike_min << k rounds, k log-uniform, capped at spike_max.
  double spike_prob = 0.0;
  std::uint64_t spike_min = 4;
  std::uint64_t spike_max = 64;
  /// Per-physical-transmission probability that the channel flips bits in
  /// the encoded frame (1..corrupt_max_flips of them, uniform positions).
  /// Retransmissions and duplicates are separate physical transmissions
  /// and draw independently. Requires wire mode: corruption mutates real
  /// encoded bytes, never in-memory objects.
  double corrupt_prob = 0.0;
  std::uint32_t corrupt_max_flips = 3;
  /// Per-physical-transmission probability that the channel truncates the
  /// frame to a uniformly drawn proper prefix (possibly zero bytes).
  double truncate_prob = 0.0;
  /// Per-physical-transmission probability that the channel injects one
  /// extra garbage frame (1..garbage_max_bytes uniform random bytes)
  /// alongside the carried message.
  double garbage_prob = 0.0;
  std::uint64_t garbage_max_bytes = 64;
  std::vector<Partition> partitions;
  std::vector<CrashEvent> crashes;
  std::vector<Straggler> stragglers;
  std::vector<LinkInflation> link_inflations;

  bool active() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 || spike_prob > 0.0 ||
           corruption_active() || !partitions.empty() || !crashes.empty() ||
           !stragglers.empty() || !link_inflations.empty();
  }

  /// True when any wire-corruption knob is nonzero (these require the
  /// network to run in wire mode; Network's constructor enforces it).
  bool corruption_active() const {
    return corrupt_prob > 0.0 || truncate_prob > 0.0 || garbage_prob > 0.0;
  }
};

/// The network's fault engine: owns the crash schedule cursor and makes
/// all per-message decisions, so the draw order is fixed (partition
/// check, drop, spike, duplicate) and documented in one place. It holds
/// no rng of its own — each draw takes the calling shard's fault stream,
/// which keeps per-shard draw accounting independent of other shards.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {
    for (const Straggler& s : plan_.stragglers) {
      SKS_CHECK_MSG(s.node != kNoNode, "straggler entry without a node");
      SKS_CHECK_MSG(s.period >= 1,
                    "straggler period of node " << s.node << " must be >= 1");
    }
    for (const LinkInflation& li : plan_.link_inflations) {
      SKS_CHECK_MSG(li.from != kNoNode && li.to != kNoNode,
                    "link-inflation entry without both endpoints");
    }
    for (const CrashEvent& c : plan_.crashes) {
      SKS_CHECK_MSG(c.node != kNoNode, "crash event without a node");
      SKS_CHECK_MSG(c.restart_round == 0 || c.restart_round > c.at_round,
                    "crash of node " << c.node << " restarts at round "
                    << c.restart_round << " <= crash round " << c.at_round);
      schedule_.push_back({c.at_round, c.node, false});
      if (c.restart_round != 0) {
        schedule_.push_back({c.restart_round, c.node, true});
        ++pending_restarts_;
      }
    }
    std::sort(schedule_.begin(), schedule_.end(),
              [](const Transition& a, const Transition& b) {
                return a.round < b.round;
              });
  }

  /// Append a crash event at runtime (tests scheduling relative to the
  /// current round). Rounds at or before `current_round` have already
  /// been processed, so the event must lie strictly in the future.
  void add_crash(const CrashEvent& c, std::uint64_t current_round) {
    SKS_CHECK_MSG(c.at_round > current_round,
                  "crash round " << c.at_round << " is not in the future "
                  "(round " << current_round << ")");
    SKS_CHECK_MSG(c.restart_round == 0 || c.restart_round > c.at_round,
                  "restart round must follow the crash round");
    insert_sorted({c.at_round, c.node, false});
    if (c.restart_round != 0) {
      insert_sorted({c.restart_round, c.node, true});
      ++pending_restarts_;
    }
  }

  bool active() const { return plan_.active(); }
  const FaultPlan& plan() const { return plan_; }

  /// True if the channel loses this message (partition cut or random
  /// drop). Must be called exactly once per send while faults are active
  /// so the shard's fault stream stays aligned.
  bool should_drop(Rng& rng, NodeId from, NodeId to, std::uint64_t round) {
    if (partitioned(from, to, round)) return true;
    return plan_.drop_prob > 0.0 && rng.flip(plan_.drop_prob);
  }

  /// Extra delay rounds for this message (0 = no spike). Heavy-tail:
  /// spike_min << k with k drawn uniformly over the doublings that stay
  /// within spike_max (log-uniform), so most spikes are short and a few
  /// are catastrophic — these can exceed NetworkConfig::max_delay, which
  /// is why the pending ring grows on demand.
  std::uint64_t delay_spike(Rng& rng) {
    if (plan_.spike_prob <= 0.0 || !rng.flip(plan_.spike_prob)) return 0;
    const std::uint64_t lo = std::max<std::uint64_t>(plan_.spike_min, 1);
    const std::uint64_t hi = std::max<std::uint64_t>(plan_.spike_max, lo);
    std::uint64_t doublings = 0;
    while ((lo << (doublings + 1)) <= hi && doublings < 63) ++doublings;
    return std::min(lo << rng.below(doublings + 1), hi);
  }

  /// True if the channel duplicates this message.
  bool should_duplicate(Rng& rng) {
    return plan_.duplicate_prob > 0.0 && rng.flip(plan_.duplicate_prob);
  }

  /// One physical transmission's wire-corruption verdict. Drawn once per
  /// physical copy (original, duplicate, retransmission, ack alike).
  struct Corruption {
    std::uint32_t flips = 0;  ///< bit flips to apply (0 = none)
    bool truncate = false;    ///< cut the frame to a proper prefix
    bool garbage = false;     ///< inject one extra random-bytes frame
    bool any() const { return flips != 0 || truncate || garbage; }
  };

  /// Draw the corruption gates for one physical transmission. Draw order
  /// (fixed, after the channel draws drop -> spike -> duplicate): corrupt
  /// gate, then flip count if it fired; truncate gate; garbage gate. Each
  /// gate draws only while its probability is nonzero, so an all-zero
  /// plan consumes no randomness here and replays pre-corruption streams
  /// byte for byte. Flip/cut positions depend on the frame length and are
  /// drawn by the network right where the bytes are mutated.
  Corruption corruption(Rng& rng) {
    Corruption c;
    if (plan_.corrupt_prob > 0.0 && rng.flip(plan_.corrupt_prob)) {
      const std::uint32_t mx = std::max<std::uint32_t>(
          plan_.corrupt_max_flips, 1);
      c.flips = 1 + static_cast<std::uint32_t>(rng.below(mx));
    }
    c.truncate = plan_.truncate_prob > 0.0 && rng.flip(plan_.truncate_prob);
    c.garbage = plan_.garbage_prob > 0.0 && rng.flip(plan_.garbage_prob);
    return c;
  }

  /// True if a straggler window makes node `v` skip its on_activate this
  /// round. Pure schedule lookup — no randomness (see struct Straggler).
  bool straggler_skips(NodeId v, std::uint64_t round) const {
    for (const Straggler& s : plan_.stragglers) {
      if (s.node != v) continue;
      if (round < s.from_round || round >= s.until_round) continue;
      if ((round - s.from_round) % std::max<std::uint64_t>(s.period, 1) != 0) {
        return true;
      }
    }
    return false;
  }

  /// Extra delay rounds every message from -> to takes this round under
  /// sustained link inflation (0 outside all windows). Windows on the same
  /// directed link stack additively.
  std::uint64_t link_inflation(NodeId from, NodeId to,
                               std::uint64_t round) const {
    std::uint64_t extra = 0;
    for (const LinkInflation& li : plan_.link_inflations) {
      if (li.from != from || li.to != to) continue;
      if (round < li.from_round || round >= li.until_round) continue;
      extra += li.extra;
    }
    return extra;
  }

  /// Apply all crash/restart transitions scheduled for `round`. Calls
  /// `crash(node)` / `restart(node)` in schedule order.
  template <class CrashFn, class RestartFn>
  void apply_schedule(std::uint64_t round, CrashFn&& crash,
                      RestartFn&& restart) {
    while (cursor_ < schedule_.size() && schedule_[cursor_].round <= round) {
      const Transition& t = schedule_[cursor_++];
      if (t.is_restart) {
        --pending_restarts_;
        restart(t.node);
      } else {
        crash(t.node);
      }
    }
  }

  /// Restarts scheduled but not yet applied — the network is not done
  /// while one is outstanding even if no message is in flight.
  std::uint64_t pending_restarts() const { return pending_restarts_; }

  /// Drop every not-yet-applied transition of `v` (fencing: a declared-
  /// dead node must not come back, and a pending restart of it must not
  /// keep the network counted as busy).
  void cancel_node(NodeId v) {
    for (std::size_t i = cursor_; i < schedule_.size();) {
      if (schedule_[i].node != v) {
        ++i;
        continue;
      }
      if (schedule_[i].is_restart) --pending_restarts_;
      schedule_.erase(schedule_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

 private:
  struct Transition {
    std::uint64_t round = 0;
    NodeId node = kNoNode;
    bool is_restart = false;
  };

  void insert_sorted(Transition t) {
    auto it = std::lower_bound(
        schedule_.begin() + static_cast<std::ptrdiff_t>(cursor_),
        schedule_.end(), t, [](const Transition& a, const Transition& b) {
          return a.round < b.round;
        });
    schedule_.insert(it, t);
  }

  static bool contains(const std::vector<NodeId>& side, NodeId v) {
    return std::find(side.begin(), side.end(), v) != side.end();
  }

  bool partitioned(NodeId from, NodeId to, std::uint64_t round) const {
    for (const Partition& p : plan_.partitions) {
      if (round < p.from_round || round >= p.until_round) continue;
      if ((contains(p.side_a, from) && contains(p.side_b, to)) ||
          (contains(p.side_a, to) && contains(p.side_b, from))) {
        return true;
      }
    }
    return false;
  }

  FaultPlan plan_;
  std::vector<Transition> schedule_;  ///< sorted by round
  std::size_t cursor_ = 0;
  std::uint64_t pending_restarts_ = 0;  ///< restarts not yet applied
};

}  // namespace sks::sim
