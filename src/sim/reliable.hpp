// Reliable transport over the (optionally faulty) simulated channel.
//
// The paper's model assumes the network loses nothing, so the protocols
// never re-send. Once the fault injector (src/sim/faults.hpp) can drop,
// duplicate and delay messages, the protocols need the standard remedy:
// a sequence-number / acknowledgement / retransmission layer that turns
// the lossy channel back into a reliable one (at-least-once resend +
// receiver-side duplicate suppression = exactly-once delivery to the
// node), after which the protocol-level guarantees hold again because
// the protocols already tolerate arbitrary finite delays and non-FIFO
// delivery (the asynchronous model of Section 1.1).
//
// Mechanics, per tracked message:
//  * The sender side assigns a per-(from,to)-channel sequence number and
//    retains a deep clone of the payload (Payload::clone_payload) so a
//    timeout can re-send it verbatim.
//  * The receiver side acks every copy it sees (acks are cheap, losing
//    one only costs a retransmission) and suppresses duplicates with a
//    per-channel watermark (`delivered_below`) plus a run-length map of
//    out-of-order ranges — bounded by the number of *gaps* in the
//    sequence space, not the number of reordered messages, so sustained
//    reordering cannot grow it without limit.
//  * Retransmission is driven by Network::step: a record whose retry
//    deadline passed is cloned and re-enqueued with doubled backoff
//    (capped at max_backoff). max_attempts = 0 means retry forever; a
//    bounded sender abandons the record after that many sends, which the
//    metrics report so tests can detect give-up behaviour.
//
// The transport is engine state, not a node: it lives inside the Network
// so no protocol code changes when a system opts in via ReliableConfig.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <iterator>
#include <map>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/payload.hpp"

namespace sks::sim {

/// Per-network reliable-delivery knobs. Disabled by default: the zero
/// cost of the flag is the only thing fault-free runs pay.
struct ReliableConfig {
  bool enabled = false;
  /// Rounds to wait for an ack before the first retransmission. Should
  /// exceed one channel round trip (2 * max_delay in async mode) or the
  /// transport re-sends messages that were merely slow.
  std::uint64_t ack_timeout = 4;
  /// Retry interval doubles per attempt up to this cap (rounds).
  std::uint64_t max_backoff = 64;
  /// Total sends (original + retransmissions) before the sender gives up
  /// on a message. 0 = never give up (retry forever).
  std::uint64_t max_attempts = 0;
  /// Integrity failures (receiver-side corrupt rejections) of one record
  /// before the sender quarantines it: the record is abandoned, counted,
  /// and surfaced in the stall report, so a link that corrupts a frame
  /// deterministically degrades gracefully instead of retransmitting
  /// forever. 0 = never quarantine.
  std::uint64_t max_poison_attempts = 16;
  /// Retransmit-storm guard: at most this many retransmissions per
  /// (from, to) channel per round; the surplus is deferred to the next
  /// round without consuming an attempt. 0 = uncapped (the default —
  /// existing fault sweeps pin exact retransmit counts).
  std::uint64_t max_channel_retransmits_per_round = 0;
  /// Uniform extra delay in [0, retransmit_jitter] rounds added to every
  /// rescheduled retry, drawn from the shard's fault rng stream, so
  /// synchronized timeouts (one lost broadcast round) de-correlate
  /// instead of re-firing in lockstep. 0 = no jitter, no rng draws.
  std::uint64_t retransmit_jitter = 0;
  /// Flow control: sliding window of at most this many unacked records
  /// per (from, to) channel. A send past the window is staged (FIFO per
  /// channel) and released as acks open the window; window stalls are
  /// counted in sim::Metrics and surfaced in the stall report. 0 = no
  /// window (the default — existing runs stay byte-identical).
  std::uint64_t max_in_flight = 0;
  /// Bound on each channel's staging buffer when max_in_flight is set.
  /// Exceeding it is a hard SKS_CHECK failure pointing at admission
  /// control — silently dropping a staged record would break the
  /// exactly-once contract. 0 = unbounded staging.
  std::uint64_t max_staged = 0;
};

/// Acknowledgement for one tracked message. A real payload so acks flow
/// through the same faulty channel as data (they can be lost, delayed or
/// duplicated) and show up in metrics and traces — but the Network
/// consumes them at delivery time; nodes never see them.
struct ReliableAck final : Action<ReliableAck> {
  static constexpr const char* kActionName = "transport.ack";
  std::uint64_t acked_seq = 0;
  std::uint64_t size_bits() const override { return 64; }
  void encode(wire::WireWriter& w) const override { w.leb(acked_seq); }
  static Owned<ReliableAck> decode(wire::WireReader& r) {
    auto ack = make_payload<ReliableAck>();
    ack->acked_seq = r.leb();
    return ack;
  }
};

class ReliableTransport {
 public:
  explicit ReliableTransport(const ReliableConfig& cfg) : cfg_(cfg) {}

  const ReliableConfig& config() const { return cfg_; }

  /// Sender-side state of one unacked message.
  struct Record {
    PayloadPtr payload;           ///< retained clone for retransmission
    std::uint64_t bits = 0;       ///< cached size_bits of the original
    ActionId action = 0;          ///< cached metrics_tag of the original
    std::uint64_t next_retry = 0; ///< round the next retransmission fires
    std::uint64_t backoff = 0;    ///< current retry interval (rounds)
    std::uint64_t attempts = 1;   ///< sends so far, original included
    std::uint64_t poisoned = 0;   ///< copies killed by integrity checks
  };

  /// A record the sender gave up on after max_poison_attempts integrity
  /// failures. Kept (channel-then-seq ordered) for the stall report.
  struct Quarantined {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    std::uint64_t seq = 0;
    ActionId action = 0;
    std::uint64_t poisoned = 0;  ///< integrity failures when abandoned
  };

  /// A send the flow-control window would not admit, parked in the
  /// channel's staging buffer until acks open the window.
  struct StagedSend {
    PayloadPtr payload;      ///< owned clone, handed back at release
    std::uint64_t bits = 0;  ///< cached size_bits of the original
    ActionId action = 0;     ///< cached metrics_tag of the original
  };

  /// Track an outgoing message: assign its channel sequence number and
  /// retain a clone. Returns the sequence number to stamp on the wire.
  std::uint64_t register_send(NodeId from, NodeId to, const Payload& payload,
                              std::uint64_t bits, ActionId action,
                              std::uint64_t round) {
    const std::uint64_t seq = next_seq_[ChannelKey{from, to}]++;
    Record r;
    r.payload = payload.clone_payload();
    r.bits = bits;
    r.action = action;
    r.backoff = std::max<std::uint64_t>(cfg_.ack_timeout, 1);
    r.next_retry = round + r.backoff;
    records_.emplace(MsgKey{from, to, seq}, std::move(r));
    if (cfg_.max_in_flight != 0) ++in_flight_[ChannelKey{from, to}];
    return seq;
  }

  /// An ack for (from, to, seq) arrived back at the sender. Idempotent:
  /// duplicate acks and acks for abandoned records are no-ops.
  void ack(NodeId from, NodeId to, std::uint64_t seq) {
    if (records_.erase(MsgKey{from, to, seq}) != 0) {
      dec_in_flight(from, to);
    }
  }

  // ---- Flow control (ReliableConfig::max_in_flight) --------------------

  /// True when the sliding-window knob is on.
  bool flow_control() const { return cfg_.max_in_flight != 0; }

  /// True when the (from, to) window is full — the next send on the
  /// channel must be staged instead of entering the channel.
  bool window_full(NodeId from, NodeId to) const {
    if (cfg_.max_in_flight == 0) return false;
    const auto it = in_flight_.find(ChannelKey{from, to});
    return it != in_flight_.end() && it->second >= cfg_.max_in_flight;
  }

  /// Park a send the window would not admit (FIFO per channel). The
  /// transport takes ownership; the payload is handed back verbatim at
  /// release. Overflowing max_staged is a hard failure: silently dropping
  /// a staged record would break exactly-once, so the diagnostic points
  /// at the knobs that shed load explicitly.
  void stage(NodeId from, NodeId to, PayloadPtr payload, std::uint64_t bits,
             ActionId action) {
    auto& q = staged_[ChannelKey{from, to}];
    SKS_CHECK_MSG(
        cfg_.max_staged == 0 || q.size() < cfg_.max_staged,
        "flow-control staging buffer of channel "
            << from << "->" << to << " overflowed max_staged="
            << cfg_.max_staged
            << "; reduce offered load, raise max_in_flight, or bound the "
               "client with admission control (max_buffered_ops)");
    q.push_back(StagedSend{std::move(payload), bits, action});
    ++staged_total_;
  }

  /// Release staged sends of (from, to) while the window has room, FIFO.
  /// `send(from, to, StagedSend&&)` must register_send + enqueue the
  /// record (register_send re-fills the window, naturally bounding the
  /// loop).
  template <class SendFn>
  void release_staged(NodeId from, NodeId to, SendFn&& send) {
    const auto it = staged_.find(ChannelKey{from, to});
    if (it == staged_.end()) return;
    auto& q = it->second;
    while (!q.empty() && !window_full(from, to)) {
      StagedSend s = std::move(q.front());
      q.pop_front();
      --staged_total_;
      send(from, to, std::move(s));
    }
    if (q.empty()) staged_.erase(it);
  }

  /// Release staged sends on every channel with window room (channel
  /// order, FIFO within a channel). Covers window slots freed outside the
  /// ack path: abandoned and quarantined records.
  template <class SendFn>
  void pump_staged(SendFn&& send) {
    if (staged_total_ == 0) return;
    for (auto it = staged_.begin(); it != staged_.end();) {
      const ChannelKey k = it->first;
      auto& q = it->second;
      while (!q.empty() && !window_full(k.from, k.to)) {
        StagedSend s = std::move(q.front());
        q.pop_front();
        --staged_total_;
        send(k.from, k.to, std::move(s));
      }
      it = q.empty() ? staged_.erase(it) : std::next(it);
    }
  }

  /// Staged-but-unsent records across all channels. Nonzero means the
  /// network is not quiescent: a window slot will eventually free (ack,
  /// abandon or quarantine) and release them.
  std::uint64_t staged_total() const { return staged_total_; }

  /// Staged backlog of one channel.
  std::uint64_t staged_on(NodeId from, NodeId to) const {
    const auto it = staged_.find(ChannelKey{from, to});
    return it == staged_.end() ? 0 : it->second.size();
  }

  /// Unacked records currently occupying the (from, to) window (tracked
  /// only while flow control is on).
  std::uint64_t in_flight_on(NodeId from, NodeId to) const {
    const auto it = in_flight_.find(ChannelKey{from, to});
    return it == in_flight_.end() ? 0 : it->second;
  }

  /// Walk every channel with live window state — in-flight records or a
  /// staged backlog — in channel order, for the stall report:
  /// `fn(from, to, in_flight, staged)`.
  template <class Fn>
  void for_each_channel_window(Fn&& fn) const {
    auto fl = in_flight_.begin();
    auto st = staged_.begin();
    while (fl != in_flight_.end() || st != staged_.end()) {
      if (st == staged_.end() ||
          (fl != in_flight_.end() && fl->first < st->first)) {
        fn(fl->first.from, fl->first.to, fl->second,
           staged_on(fl->first.from, fl->first.to));
        ++fl;
      } else {
        if (fl != in_flight_.end() && fl->first == st->first) ++fl;
        fn(st->first.from, st->first.to,
           in_flight_on(st->first.from, st->first.to), st->second.size());
        ++st;
      }
    }
  }

  /// The channel corrupted a physical copy of (from, to, seq) and the
  /// receiver's integrity check rejected it. Counts toward the record's
  /// poison budget; once max_poison_attempts failures accumulate the
  /// sender quarantines the record (abandons it, keeps it listed for the
  /// stall report). Returns true iff this call quarantined the record.
  bool note_poisoned(NodeId from, NodeId to, std::uint64_t seq) {
    auto it = records_.find(MsgKey{from, to, seq});
    if (it == records_.end()) return false;
    Record& r = it->second;
    ++r.poisoned;
    if (cfg_.max_poison_attempts == 0 ||
        r.poisoned < cfg_.max_poison_attempts) {
      return false;
    }
    quarantined_.push_back(
        Quarantined{from, to, seq, r.action, r.poisoned});
    records_.erase(it);
    dec_in_flight(from, to);
    return true;
  }

  /// Receiver-side duplicate suppression. Returns true iff this is the
  /// first copy of (from, to, seq) — hand it to the node; false means a
  /// duplicate the node must not see (the caller still acks it).
  /// Out-of-order arrivals are stored as inclusive [lo, hi] runs merged
  /// on insert, so the state is proportional to the number of gaps.
  bool mark_delivered(NodeId from, NodeId to, std::uint64_t seq) {
    Receiver& rc = recv_[ChannelKey{from, to}];
    if (seq < rc.delivered_below) return false;
    if (seq == rc.delivered_below) {
      ++rc.delivered_below;
      // The leading run may now touch the watermark: compact it away.
      auto it = rc.out_of_order.begin();
      if (it != rc.out_of_order.end() && it->first == rc.delivered_below) {
        rc.delivered_below = it->second + 1;
        rc.out_of_order.erase(it);
      }
      return true;
    }
    auto next = rc.out_of_order.lower_bound(seq);
    if (next != rc.out_of_order.end() && next->first == seq) return false;
    if (next != rc.out_of_order.begin()) {
      auto prev = std::prev(next);
      if (seq <= prev->second) return false;  // inside an existing run
      if (prev->second + 1 == seq) {          // extends prev upward
        prev->second = seq;
        if (next != rc.out_of_order.end() && next->first == seq + 1) {
          prev->second = next->second;        // bridges prev and next
          rc.out_of_order.erase(next);
        }
        return true;
      }
    }
    if (next != rc.out_of_order.end() && next->first == seq + 1) {
      const std::uint64_t hi = next->second;  // extends next downward
      rc.out_of_order.erase(next);
      rc.out_of_order.emplace(seq, hi);
      return true;
    }
    rc.out_of_order.emplace(seq, seq);
    return true;
  }

  /// Forget every channel touching `v`: unacked records from or to it
  /// (nothing will retransmit to a fenced node), its send counters and
  /// its receiver dedupe state. Called when a declared-dead node is
  /// fenced — it never acks, sends or rejoins again.
  void fence(NodeId v) {
    std::erase_if(records_, [v](const auto& kv) {
      return kv.first.from == v || kv.first.to == v;
    });
    std::erase_if(next_seq_, [v](const auto& kv) {
      return kv.first.from == v || kv.first.to == v;
    });
    std::erase_if(recv_, [v](const auto& kv) {
      return kv.first.from == v || kv.first.to == v;
    });
    std::erase_if(in_flight_, [v](const auto& kv) {
      return kv.first.from == v || kv.first.to == v;
    });
    for (auto it = staged_.begin(); it != staged_.end();) {
      if (it->first.from == v || it->first.to == v) {
        staged_total_ -= it->second.size();
        it = staged_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Disjoint out-of-order runs buffered by the (from, to) receiver —
  /// the regression tests pin that this stays O(#gaps), not O(#messages).
  std::size_t out_of_order_ranges(NodeId from, NodeId to) const {
    const auto it = recv_.find(ChannelKey{from, to});
    return it == recv_.end() ? 0 : it->second.out_of_order.size();
  }

  /// Receiver watermark of the (from, to) channel: all seq below this
  /// were handed to the node exactly once.
  std::uint64_t delivered_below(NodeId from, NodeId to) const {
    const auto it = recv_.find(ChannelKey{from, to});
    return it == recv_.end() ? 0 : it->second.delivered_below;
  }

  /// Walk all records due at `round`. `crashed(node)` pauses records of
  /// down senders (they resume on restart); `resend(from, to, seq, rec)`
  /// re-enqueues one copy (backoff already doubled); `abandon(...)` fires
  /// instead when max_attempts is exhausted and the record is dropped.
  /// With max_channel_retransmits_per_round set, resends past the cap on
  /// one (from, to) channel are deferred one round without consuming an
  /// attempt (the storm guard). `jitter_rng`, when given and
  /// retransmit_jitter is nonzero, adds a uniform [0, jitter] extra delay
  /// to every rescheduled retry — records_ is an ordered map, so the
  /// draw order is channel-then-seq and deterministic.
  template <class Crashed, class Resend, class Abandon>
  void collect_due(std::uint64_t round, Crashed&& crashed, Resend&& resend,
                   Abandon&& abandon, Rng* jitter_rng = nullptr) {
    ChannelKey chan;
    std::uint64_t sent_on_chan = 0;
    for (auto it = records_.begin(); it != records_.end();) {
      const MsgKey& k = it->first;
      Record& r = it->second;
      if (r.next_retry > round || crashed(k.from)) {
        ++it;
        continue;
      }
      if (cfg_.max_attempts != 0 && r.attempts >= cfg_.max_attempts) {
        abandon(k.from, k.to, k.seq, r);
        dec_in_flight(k.from, k.to);
        it = records_.erase(it);
        continue;
      }
      const ChannelKey here{k.from, k.to};
      if (here != chan) {
        chan = here;
        sent_on_chan = 0;
      }
      if (cfg_.max_channel_retransmits_per_round != 0 &&
          sent_on_chan >= cfg_.max_channel_retransmits_per_round) {
        r.next_retry = round + 1 + jitter(jitter_rng);  // defer, no attempt
        ++it;
        continue;
      }
      ++sent_on_chan;
      r.backoff = std::min(r.backoff * 2, std::max<std::uint64_t>(
                                              cfg_.max_backoff, 1));
      r.next_retry = round + r.backoff + jitter(jitter_rng);
      ++r.attempts;
      // The resend callback re-enters the channel, and a corrupted copy
      // can poison-quarantine this very record (note_poisoned erases
      // it). Re-anchor by key instead of advancing a possibly-dead
      // iterator.
      const MsgKey key = k;
      resend(key.from, key.to, key.seq, r);
      it = records_.upper_bound(key);
    }
  }

  /// Messages sent but not yet acked. The network is not quiescent while
  /// one is outstanding — a retransmission may still be coming.
  std::uint64_t unacked() const { return records_.size(); }

  /// Deterministic (channel-then-seq ordered) walk of the unacked
  /// records, for the stall report.
  template <class Fn>
  void for_each_unacked(Fn&& fn) const {
    for (const auto& [k, r] : records_) fn(k.from, k.to, k.seq, r);
  }

  /// Records abandoned as poison (in quarantine order).
  std::size_t quarantined() const { return quarantined_.size(); }
  template <class Fn>
  void for_each_quarantined(Fn&& fn) const {
    for (const Quarantined& q : quarantined_) fn(q);
  }

 private:
  std::uint64_t jitter(Rng* rng) const {
    if (rng == nullptr || cfg_.retransmit_jitter == 0) return 0;
    return rng->below(cfg_.retransmit_jitter + 1);
  }

  /// A record left the channel (ack / abandon / quarantine): free its
  /// window slot. No-op when flow control is off.
  void dec_in_flight(NodeId from, NodeId to) {
    if (cfg_.max_in_flight == 0) return;
    const auto it = in_flight_.find(ChannelKey{from, to});
    if (it == in_flight_.end()) return;
    if (--it->second == 0) in_flight_.erase(it);
  }

  struct ChannelKey {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    auto operator<=>(const ChannelKey&) const = default;
  };
  struct MsgKey {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    std::uint64_t seq = 0;
    auto operator<=>(const MsgKey&) const = default;
  };
  struct Receiver {
    std::uint64_t delivered_below = 0;  ///< all seq < this were delivered
    /// Inclusive [lo, hi] runs of delivered seqs above the watermark,
    /// keyed by lo; adjacent runs are merged on insert.
    std::map<std::uint64_t, std::uint64_t> out_of_order;
  };

  ReliableConfig cfg_;
  std::map<ChannelKey, std::uint64_t> next_seq_;
  std::map<MsgKey, Record> records_;  ///< unacked, sorted for determinism
  std::map<ChannelKey, Receiver> recv_;
  std::vector<Quarantined> quarantined_;
  /// Flow-control state (empty while max_in_flight == 0): unacked records
  /// per channel, and the per-channel FIFO of sends the window refused.
  std::map<ChannelKey, std::uint64_t> in_flight_;
  std::map<ChannelKey, std::deque<StagedSend>> staged_;
  std::uint64_t staged_total_ = 0;
};

}  // namespace sks::sim
