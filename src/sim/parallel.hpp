// Worker pool for the sharded round executor (see sim/network.hpp).
//
// The pool runs one job — "execute fn(i) for every index i in [0, count)"
// — across N-1 persistent worker threads plus the calling thread, then
// barriers. Determinism does not depend on who runs which index: the
// shard map fixes *what* each index does; the pool only decides *where*
// it runs.
//
// All coordination is mutex-ordered (claims, completion counts, the
// generation handshake), which keeps the pool trivially TSan-clean and
// gives the barrier the happens-before edges the executor relies on:
// everything the coordinator wrote before run() is visible to every
// worker executing an index, and everything an index wrote is visible to
// the coordinator after run() returns. Index claims take one short
// critical section each; with at most a few dozen shards per round the
// lock traffic is noise against the per-shard work.
//
// run() accepts a plain function pointer + context so dispatching a job
// allocates nothing (the zero-alloc guarantee covers threaded rounds).
// The first exception thrown by a job is captured and rethrown from
// run() after the barrier; remaining indices still execute, so shard
// state stays consistent (one whole round either ran or threw).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sks::sim {

/// Wall-clock accounting for one pool participant (slot 0 is the calling
/// thread, slots 1..N the persistent workers). busy_ns is time inside
/// job functions; wait_ns is time parked on the pool's condition
/// variables — for workers that includes the idle gap between rounds, so
/// busy/(busy+wait) is utilization over the pool's whole lifetime, and
/// the busy spread across slots is the thread-imbalance signal.
struct WorkerProfile {
  std::uint64_t busy_ns = 0;  ///< inside fn(ctx, i)
  std::uint64_t wait_ns = 0;  ///< parked on wake/done condition variables
  std::uint64_t jobs = 0;     ///< indices executed
};

class WorkerPool {
 public:
  using JobFn = void (*)(void* ctx, std::size_t index);

  explicit WorkerPool(std::size_t num_workers)
      : profiles_(num_workers + 1) {
    threads_.reserve(num_workers);
    for (std::size_t i = 0; i < num_workers; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i + 1); });
    }
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  std::size_t num_workers() const { return threads_.size(); }

  /// Per-slot busy/wait accounting since construction (or the last
  /// reset_profiles). Slot 0 is the calling thread. Copied under the pool
  /// mutex, so it is safe to call between run() invocations.
  std::vector<WorkerProfile> profiles() const {
    std::lock_guard<std::mutex> lock(mu_);
    return profiles_;
  }

  void reset_profiles() {
    std::lock_guard<std::mutex> lock(mu_);
    for (WorkerProfile& p : profiles_) p = WorkerProfile{};
  }

  /// Execute fn(ctx, i) for every i in [0, count), on the workers and the
  /// calling thread; returns after all indices completed (the barrier).
  void run(std::size_t count, void* ctx, JobFn fn) {
    if (count == 0) return;
    std::uint64_t gen;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fn_ = fn;
      ctx_ = ctx;
      count_ = count;
      next_ = 0;
      done_ = 0;
      error_ = nullptr;
      gen = ++generation_;
    }
    wake_cv_.notify_all();
    work(gen, 0);
    std::unique_lock<std::mutex> lock(mu_);
    const auto wait_start = std::chrono::steady_clock::now();
    done_cv_.wait(lock, [this] { return done_ == count_; });
    profiles_[0].wait_ns += elapsed_ns(wait_start);
    if (error_ != nullptr) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  static std::uint64_t elapsed_ns(
      std::chrono::steady_clock::time_point since) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - since)
            .count());
  }

  /// Claim-and-execute loop shared by workers and the calling thread.
  /// The generation check makes a straggler from a finished job bounce
  /// off the next one instead of stealing its indices.
  void work(std::uint64_t gen, std::size_t slot) {
    for (;;) {
      JobFn fn;
      void* ctx;
      std::size_t i;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (generation_ != gen || next_ >= count_) return;
        i = next_++;
        fn = fn_;
        ctx = ctx_;
      }
      const auto job_start = std::chrono::steady_clock::now();
      try {
        fn(ctx, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (error_ == nullptr) error_ = std::current_exception();
      }
      const std::uint64_t busy = elapsed_ns(job_start);
      {
        std::lock_guard<std::mutex> lock(mu_);
        profiles_[slot].busy_ns += busy;
        ++profiles_[slot].jobs;
        ++done_;
        if (done_ == count_) done_cv_.notify_all();
      }
    }
  }

  void worker_loop(std::size_t slot) {
    std::uint64_t seen = 0;
    for (;;) {
      std::uint64_t gen;
      {
        std::unique_lock<std::mutex> lock(mu_);
        const auto wait_start = std::chrono::steady_clock::now();
        wake_cv_.wait(lock,
                      [&] { return stop_ || generation_ != seen; });
        profiles_[slot].wait_ns += elapsed_ns(wait_start);
        if (stop_) return;
        seen = gen = generation_;
      }
      work(gen, slot);
    }
  }

  mutable std::mutex mu_;
  std::condition_variable wake_cv_;  ///< coordinator -> workers: new job
  std::condition_variable done_cv_;  ///< workers -> coordinator: all done
  std::vector<std::thread> threads_;
  JobFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::size_t done_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
  std::vector<WorkerProfile> profiles_;  ///< slot 0 = caller, 1..N = workers
};

}  // namespace sks::sim
