// Worker pool for the sharded round executor (see sim/network.hpp).
//
// The pool runs one job — "execute fn(i) for every index i in [0, count)"
// — across N-1 persistent worker threads plus the calling thread, then
// barriers. Determinism does not depend on who runs which index: the
// shard map fixes *what* each index does; the pool only decides *where*
// it runs.
//
// All coordination is mutex-ordered (claims, completion counts, the
// generation handshake), which keeps the pool trivially TSan-clean and
// gives the barrier the happens-before edges the executor relies on:
// everything the coordinator wrote before run() is visible to every
// worker executing an index, and everything an index wrote is visible to
// the coordinator after run() returns. Index claims take one short
// critical section each; with at most a few dozen shards per round the
// lock traffic is noise against the per-shard work.
//
// run() accepts a plain function pointer + context so dispatching a job
// allocates nothing (the zero-alloc guarantee covers threaded rounds).
// The first exception thrown by a job is captured and rethrown from
// run() after the barrier; remaining indices still execute, so shard
// state stays consistent (one whole round either ran or threw).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sks::sim {

class WorkerPool {
 public:
  using JobFn = void (*)(void* ctx, std::size_t index);

  explicit WorkerPool(std::size_t num_workers) {
    threads_.reserve(num_workers);
    for (std::size_t i = 0; i < num_workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  std::size_t num_workers() const { return threads_.size(); }

  /// Execute fn(ctx, i) for every i in [0, count), on the workers and the
  /// calling thread; returns after all indices completed (the barrier).
  void run(std::size_t count, void* ctx, JobFn fn) {
    if (count == 0) return;
    std::uint64_t gen;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fn_ = fn;
      ctx_ = ctx;
      count_ = count;
      next_ = 0;
      done_ = 0;
      error_ = nullptr;
      gen = ++generation_;
    }
    wake_cv_.notify_all();
    work(gen);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return done_ == count_; });
    if (error_ != nullptr) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  /// Claim-and-execute loop shared by workers and the calling thread.
  /// The generation check makes a straggler from a finished job bounce
  /// off the next one instead of stealing its indices.
  void work(std::uint64_t gen) {
    for (;;) {
      JobFn fn;
      void* ctx;
      std::size_t i;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (generation_ != gen || next_ >= count_) return;
        i = next_++;
        fn = fn_;
        ctx = ctx_;
      }
      try {
        fn(ctx, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (error_ == nullptr) error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++done_;
        if (done_ == count_) done_cv_.notify_all();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::uint64_t gen;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_cv_.wait(lock,
                      [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = gen = generation_;
      }
      work(gen);
    }
  }

  std::mutex mu_;
  std::condition_variable wake_cv_;  ///< coordinator -> workers: new job
  std::condition_variable done_cv_;  ///< workers -> coordinator: all done
  std::vector<std::thread> threads_;
  JobFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::size_t done_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace sks::sim
