// The message-passing system of Section 1.1.
//
// Nodes are processes with channels (unordered message buffers). A message
// is a remote action call; the network guarantees no loss, no duplication
// and fair receipt, but — in asynchronous mode — arbitrary finite delays
// and non-FIFO delivery, exactly the paper's computation model.
//
// For performance analysis the paper switches to the standard synchronous
// model: messages sent in round i are processed in round i+1 and every
// node is activated once per round. Synchronous mode implements that
// verbatim, which is what makes round counts in the benchmarks meaningful.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <typeinfo>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/metrics.hpp"
#include "sim/payload.hpp"
#include "trace/tracer.hpp"

namespace sks::sim {

class Network;

/// A process. Subclasses implement actions by overriding on_message (remote
/// calls) and on_activate (the periodic activation of Section 1.1).
class Node {
 public:
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }

 protected:
  Node() = default;

  /// A request for an action call was taken out of this node's channel.
  /// Ownership of the payload transfers to the node so nested payloads
  /// (e.g. routed messages) can be forwarded without copies.
  virtual void on_message(NodeId from, PayloadPtr payload) = 0;

  /// Periodic activation; called once per round in synchronous mode.
  virtual void on_activate() {}

  /// Send a remote action call to `to`; enqueued into to's channel.
  void send(NodeId to, PayloadPtr payload);

  Network& net() {
    SKS_CHECK(net_ != nullptr);
    return *net_;
  }
  const Network& net() const {
    SKS_CHECK(net_ != nullptr);
    return *net_;
  }

 public:
  /// The network's tracer — public so protocol components (aggregators,
  /// KSelect, DHT) attached to a node can emit phase spans and
  /// annotations. No-cost unless enabled.
  trace::Tracer& tracer();

 private:
  friend class Network;
  Network* net_ = nullptr;
  NodeId id_ = kNoNode;
};

enum class DeliveryMode {
  /// Messages sent in round i are processed in round i+1.
  kSynchronous,
  /// Each message independently delayed uniformly in [1, max_delay]
  /// rounds: arbitrary finite delay, non-FIFO, fair receipt.
  kAsynchronous,
};

struct NetworkConfig {
  DeliveryMode mode = DeliveryMode::kSynchronous;
  std::uint64_t max_delay = 8;   ///< async mode: max per-message delay
  std::uint64_t seed = 0x5eed;   ///< delivery order / delay randomness
};

class Network {
 public:
  explicit Network(NetworkConfig cfg = {})
      : cfg_(cfg),
        rng_(cfg.seed),
        // Delivery delays draw from a dedicated stream so that enabling
        // asynchronous mode never perturbs protocol-visible randomness
        // (nodes draw from rng()): with max_delay = 1 an async run
        // consumes the shared stream exactly like a synchronous one and
        // reproduces its traces round for round.
        delay_rng_(cfg.seed ^ 0xd31a7de1a75eedULL),
        metrics_(0) {
    // Pending messages live in a relative-round ring buffer: a message
    // delayed by d lands d slots ahead of the current one. A power-of-two
    // size strictly greater than the largest possible delay guarantees a
    // slot is drained before any in-flight message can wrap onto it.
    const std::uint64_t horizon =
        cfg_.mode == DeliveryMode::kSynchronous ? 1 : cfg_.max_delay;
    SKS_CHECK_MSG(horizon >= 1, "max_delay must be at least 1");
    pending_.resize(std::bit_ceil(horizon + 1));
  }

  /// Register a node; returns its id. The network owns the node. The
  /// concrete type is remembered so node_as<T> can skip the dynamic_cast
  /// on the (ubiquitous) exact-type access path.
  template <class T>
  NodeId add_node(std::unique_ptr<T> node) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    node->net_ = this;
    node->id_ = id;
    Slot slot;
    slot.typed = node.get();
    slot.type = &typeid(T);
    slot.node = std::move(node);
    nodes_.push_back(std::move(slot));
    metrics_.on_node_added();
    return id;
  }

  std::size_t size() const { return nodes_.size(); }

  Node& node(NodeId id) {
    SKS_CHECK(id < nodes_.size());
    return *nodes_[id].node;
  }

  template <class T>
  T& node_as(NodeId id) {
    SKS_CHECK(id < nodes_.size());
    Slot& slot = nodes_[id];
    if (*slot.type == typeid(T)) return *static_cast<T*>(slot.typed);
    auto* p = dynamic_cast<T*>(slot.node.get());
    SKS_CHECK_MSG(p != nullptr, "node " << id << " has unexpected type");
    return *p;
  }

  void send(NodeId from, NodeId to, PayloadPtr payload) {
    SKS_CHECK(to < nodes_.size());
    SKS_CHECK(payload != nullptr);
    const std::uint64_t delay = cfg_.mode == DeliveryMode::kSynchronous
                                    ? 1
                                    : delay_rng_.range(1, cfg_.max_delay);
    // Size and metrics attribution are sampled once here — the payload is
    // immutable while in flight — so delivery touches no virtual calls.
    Envelope env;
    env.from = from;
    env.to = to;
    env.bits = payload->size_bits();
    env.action = payload->metrics_tag();
    env.payload = std::move(payload);
    // The action tag provably exists here, so the metrics table is grown
    // at send time and the delivery path stays branch-free.
    metrics_.note_action(env.action);
    if (tracer_.enabled()) {
      tracer_.message(trace::EventKind::kSend, from, to, env.action,
                      env.bits);
    }
    slot_for(round_ + delay).push_back(std::move(env));
    ++in_flight_;
  }

  /// Advance one round: deliver all due messages (in randomized order, so
  /// protocols cannot rely on intra-round ordering), then activate every
  /// node once.
  void step() {
    ++round_;
    tracer_.begin_round(round_);
    std::vector<Envelope>& due_slot = slot_for(round_);
    if (!due_slot.empty()) {
      // Swap into a scratch vector (reusing its capacity) so deliveries
      // that send new messages never touch the slot being drained.
      due_.clear();
      due_.swap(due_slot);
      shuffle(due_);
      for (auto& env : due_) {
        --in_flight_;
        metrics_.record_delivery(env.to, env.bits, env.action);
        if (tracer_.enabled()) {
          tracer_.message(trace::EventKind::kDeliver, env.from, env.to,
                          env.action, env.bits);
        }
        nodes_[env.to].node->on_message(env.from, std::move(env.payload));
      }
      due_.clear();
    }
    for (auto& n : nodes_) n.node->on_activate();
    metrics_.on_round_end();
  }

  bool idle() const { return in_flight_ == 0; }

  /// Run until no messages are in flight. Returns the number of rounds
  /// stepped. Throws if max_rounds elapse first (deadlock detector).
  std::uint64_t run_until_idle(std::uint64_t max_rounds = 1'000'000) {
    std::uint64_t steps = 0;
    while (!idle()) {
      SKS_CHECK_MSG(steps < max_rounds, "network did not quiesce");
      step();
      ++steps;
    }
    return steps;
  }

  std::uint64_t round() const { return round_; }

  Metrics& metrics() { return metrics_; }
  const NetworkConfig& config() const { return cfg_; }
  Rng& rng() { return rng_; }

  /// Event tracer for this network's executions. Disabled by default;
  /// enable() before the execution to capture, then trace::build_trace
  /// and an exporter (src/trace/) to render it.
  trace::Tracer& tracer() { return tracer_; }
  const trace::Tracer& tracer() const { return tracer_; }

  /// Materialize the captured events into an exportable Trace.
  trace::Trace take_trace() const {
    return trace::build_trace(tracer_, nodes_.size());
  }

 private:
  struct Envelope {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    std::uint64_t bits = 0;       ///< size_bits(), cached at send time
    ActionId action = 0;          ///< metrics_tag(), cached at send time
    PayloadPtr payload;
  };

  struct Slot {
    std::unique_ptr<Node> node;
    void* typed = nullptr;             ///< pointer to the registered type
    const std::type_info* type = nullptr;
  };

  std::vector<Envelope>& slot_for(std::uint64_t round) {
    return pending_[round & (pending_.size() - 1)];
  }

  void shuffle(std::vector<Envelope>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(rng_.below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  NetworkConfig cfg_;
  Rng rng_;
  Rng delay_rng_;  ///< async per-message delays (see constructor note)
  std::vector<Slot> nodes_;
  std::vector<std::vector<Envelope>> pending_;  ///< ring, indexed by round
  std::vector<Envelope> due_;                   ///< scratch for step()
  std::uint64_t round_ = 0;
  std::uint64_t in_flight_ = 0;
  Metrics metrics_;
  trace::Tracer tracer_;
};

inline void Node::send(NodeId to, PayloadPtr payload) {
  net().send(id_, to, std::move(payload));
}

inline trace::Tracer& Node::tracer() { return net().tracer(); }

}  // namespace sks::sim
