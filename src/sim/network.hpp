// The message-passing system of Section 1.1.
//
// Nodes are processes with channels (unordered message buffers). A message
// is a remote action call; the network guarantees no loss, no duplication
// and fair receipt, but — in asynchronous mode — arbitrary finite delays
// and non-FIFO delivery, exactly the paper's computation model.
//
// For performance analysis the paper switches to the standard synchronous
// model: messages sent in round i are processed in round i+1 and every
// node is activated once per round. Synchronous mode implements that
// verbatim, which is what makes round counts in the benchmarks meaningful.
//
// Beyond the paper's perfect network, two opt-in layers make executions
// adversarial and survivable:
//
//  * FaultPlan (src/sim/faults.hpp) breaks the channel guarantees:
//    per-message drops, duplicates, heavy-tail delay spikes, scheduled
//    partitions, and node crash-stop / crash-restart. A crashed node
//    blackholes its channel and is skipped by on_activate.
//  * ReliableConfig (src/sim/reliable.hpp) restores exactly-once delivery
//    on top: sequence numbers, acks and timeout-driven retransmission
//    with exponential backoff, all inside the network so protocol code
//    is untouched.
//
// Both default off; with both off the hot path is byte-for-byte the
// pre-fault behaviour (the golden-trace tests pin this down) and pays one
// predictable branch per send/step.
#pragma once

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <typeinfo>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/faults.hpp"
#include "sim/metrics.hpp"
#include "sim/payload.hpp"
#include "sim/reliable.hpp"
#include "trace/tracer.hpp"

namespace sks::sim {

class Network;

/// A process. Subclasses implement actions by overriding on_message (remote
/// calls) and on_activate (the periodic activation of Section 1.1).
class Node {
 public:
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }

 protected:
  Node() = default;

  /// A request for an action call was taken out of this node's channel.
  /// Ownership of the payload transfers to the node so nested payloads
  /// (e.g. routed messages) can be forwarded without copies.
  virtual void on_message(NodeId from, PayloadPtr payload) = 0;

  /// Periodic activation; called once per round in synchronous mode.
  /// Crashed nodes are not activated until they restart.
  virtual void on_activate() {}

  /// Send a remote action call to `to`; enqueued into to's channel.
  void send(NodeId to, PayloadPtr payload);

  Network& net() {
    SKS_CHECK(net_ != nullptr);
    return *net_;
  }
  const Network& net() const {
    SKS_CHECK(net_ != nullptr);
    return *net_;
  }

 public:
  /// The network's tracer — public so protocol components (aggregators,
  /// KSelect, DHT) attached to a node can emit phase spans and
  /// annotations. No-cost unless enabled.
  trace::Tracer& tracer();

 private:
  friend class Network;
  Network* net_ = nullptr;
  NodeId id_ = kNoNode;
};

enum class DeliveryMode {
  /// Messages sent in round i are processed in round i+1.
  kSynchronous,
  /// Each message independently delayed uniformly in [1, max_delay]
  /// rounds: arbitrary finite delay, non-FIFO, fair receipt.
  kAsynchronous,
};

/// Wire mode's process-wide default: SKS_WIRE=1 (any value other than
/// empty or "0") opts the whole binary in, which is how CI re-runs the
/// test suite over the marshaling path without touching each test. A config
/// that sets `wire` explicitly always wins over the environment.
inline bool wire_mode_default() {
  static const bool enabled = [] {
    const char* e = std::getenv("SKS_WIRE");
    return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
  }();
  return enabled;
}

struct NetworkConfig {
  DeliveryMode mode = DeliveryMode::kSynchronous;
  std::uint64_t max_delay = 8;   ///< async mode: max per-message delay
  std::uint64_t seed = 0x5eed;   ///< delivery order / delay randomness
  FaultPlan faults{};            ///< all-zero = the paper's perfect network
  ReliableConfig reliable{};     ///< off = raw channel (the default)
  /// Marshal every send through encode -> bytes -> decode and deliver the
  /// decoded object (see Network::marshal). Off = today's object path,
  /// byte for byte.
  bool wire = wire_mode_default();
};

class Network {
 public:
  explicit Network(NetworkConfig cfg = {})
      : cfg_(cfg),
        rng_(cfg.seed),
        // Delivery delays draw from a dedicated stream so that enabling
        // asynchronous mode never perturbs protocol-visible randomness
        // (nodes draw from rng()): with max_delay = 1 an async run
        // consumes the shared stream exactly like a synchronous one and
        // reproduces its traces round for round.
        delay_rng_(cfg.seed ^ 0xd31a7de1a75eedULL),
        // Fault decisions draw from a third stream for the same reason:
        // an all-zero FaultPlan takes no draws and runs trace-identical
        // to a network built before fault injection existed.
        faults_(cfg.faults, cfg.seed),
        faults_active_(cfg.faults.active()),
        crash_possible_(!cfg.faults.crashes.empty()),
        reliable_(cfg.reliable),
        reliable_enabled_(cfg.reliable.enabled),
        wire_enabled_(cfg.wire),
        metrics_(0) {
    // Pending messages live in a relative-round ring buffer: a message
    // delayed by d lands d slots ahead of the current one. A power-of-two
    // size strictly greater than the largest possible delay guarantees a
    // slot is drained before any in-flight message can wrap onto it.
    // Fault-injected delay spikes can exceed max_delay; ensure_capacity
    // grows the ring on demand when one does.
    const std::uint64_t horizon =
        cfg_.mode == DeliveryMode::kSynchronous ? 1 : cfg_.max_delay;
    SKS_CHECK_MSG(horizon >= 1, "max_delay must be at least 1");
    pending_.resize(std::bit_ceil(horizon + 1));
  }

  /// Register a node; returns its id. The network owns the node. The
  /// concrete type is remembered so node_as<T> can skip the dynamic_cast
  /// on the (ubiquitous) exact-type access path.
  template <class T>
  NodeId add_node(std::unique_ptr<T> node) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    node->net_ = this;
    node->id_ = id;
    Slot slot;
    slot.typed = node.get();
    slot.type = &typeid(T);
    slot.node = std::move(node);
    nodes_.push_back(std::move(slot));
    crashed_.push_back(0);
    fenced_.push_back(0);
    metrics_.on_node_added();
    return id;
  }

  std::size_t size() const { return nodes_.size(); }

  Node& node(NodeId id) {
    SKS_CHECK(id < nodes_.size());
    return *nodes_[id].node;
  }

  template <class T>
  T& node_as(NodeId id) {
    SKS_CHECK(id < nodes_.size());
    Slot& slot = nodes_[id];
    if (*slot.type == typeid(T)) return *static_cast<T*>(slot.typed);
    auto* p = dynamic_cast<T*>(slot.node.get());
    SKS_CHECK_MSG(p != nullptr, "node " << id << " has unexpected type");
    return *p;
  }

  void send(NodeId from, NodeId to, PayloadPtr payload) {
    SKS_CHECK(to < nodes_.size());
    SKS_CHECK(payload != nullptr);
    // Size and metrics attribution are sampled once here — the payload is
    // immutable while in flight — so delivery touches no virtual calls.
    // In wire mode they are sampled from the ORIGINAL payload, before the
    // round trip: the accounted size is a property of the logical message.
    const std::uint64_t bits = payload->size_bits();
    const ActionId action = payload->metrics_tag();
    if (wire_enabled_) [[unlikely]] {
      payload = marshal(std::move(payload), action, bits);
    }
    if (reliable_enabled_ || faults_active_) [[unlikely]] {
      slow_send(from, to, std::move(payload), bits, action);
      return;
    }
    // Fast path (transport off, plan inactive): build the envelope in
    // place — this is the pre-fault message path, branch for branch.
    metrics_.note_action(action);
    if (tracer_.enabled()) {
      tracer_.message(trace::EventKind::kSend, from, to, action, bits);
    }
    Envelope& env = slot_for(round_ + base_delay()).emplace_back();
    env.from = from;
    env.to = to;
    env.bits = bits;
    env.action = action;
    env.payload = std::move(payload);
    ++in_flight_;
  }

  /// Fire-and-forget background traffic (failure-detector heartbeats and
  /// probes): bypasses the reliable transport — a lost heartbeat is
  /// superseded by the next one — runs through the same fault model and
  /// metrics/trace as data, and is excluded from quiescence. Delivery to
  /// a crashed or fenced destination blackholes like any other message.
  void send_background(NodeId from, NodeId to, PayloadPtr payload) {
    SKS_CHECK(to < nodes_.size());
    SKS_CHECK(payload != nullptr);
    const std::uint64_t bits = payload->size_bits();
    const ActionId action = payload->metrics_tag();
    if (wire_enabled_) [[unlikely]] {
      payload = marshal(std::move(payload), action, bits);
    }
    enqueue(from, to, std::move(payload), MsgKind::kBackground, 0, bits,
            action);
  }

  /// Advance one round: apply scheduled crashes/restarts, deliver all due
  /// messages (in randomized order, so protocols cannot rely on
  /// intra-round ordering), fire due retransmissions, then activate every
  /// live node once.
  void step() {
    ++round_;
    tracer_.begin_round(round_);
    if (crash_possible_) [[unlikely]] {
      faults_.apply_schedule(
          round_, [this](NodeId v) { do_crash(v); },
          [this](NodeId v) { do_restart(v); });
    }
    std::vector<Envelope>& due_slot = slot_for(round_);
    if (!due_slot.empty()) {
      // Swap into a scratch vector (reusing its capacity) so deliveries
      // that send new messages never touch the slot being drained.
      due_.clear();
      due_.swap(due_slot);
      shuffle(due_);
      for (auto& env : due_) {
        --in_flight_;
        // Fast path: plain data to a live node — the pre-fault delivery.
        // Transport traffic and blackholed destinations take the slow
        // path (possible only when the respective feature is armed).
        if (env.kind != MsgKind::kData ||
            (crash_possible_ && crashed_[env.to])) [[unlikely]] {
          deliver_slow(env);
          continue;
        }
        metrics_.record_delivery(env.to, env.bits, env.action);
        if (tracer_.enabled()) {
          tracer_.message(trace::EventKind::kDeliver, env.from, env.to,
                          env.action, env.bits);
        }
        nodes_[env.to].node->on_message(env.from, std::move(env.payload));
      }
      due_.clear();
    }
    if (reliable_enabled_) [[unlikely]] retransmit_due();
    if (crash_possible_) [[unlikely]] {
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (!crashed_[i]) nodes_[i].node->on_activate();
      }
    } else {
      for (auto& n : nodes_) n.node->on_activate();
    }
    metrics_.on_round_end();
  }

  /// Quiescence. Pure ack traffic does not count — acks chase messages
  /// that were already delivered, so waiting for them would let transport
  /// bookkeeping spin run_until_idle (leftover acks are delivered
  /// harmlessly whenever stepping resumes). Background detector traffic
  /// does not count either: heartbeats flow for as long as the system
  /// lives, so counting them would make quiescence unreachable. Unacked
  /// reliable records and scheduled-but-unapplied restarts do count: a
  /// retransmission or a revived node may still create work.
  bool idle() const {
    if (in_flight_ != ack_in_flight_ + bg_in_flight_) return false;
    if (reliable_enabled_ && reliable_.unacked() != 0) return false;
    if (crash_possible_ && faults_.pending_restarts() != 0) return false;
    return true;
  }

  /// Run until quiescent (see idle()). Returns the number of rounds
  /// stepped. Throws if max_rounds elapse first, with a stall report
  /// listing what is still in flight and why (the deadlock detector —
  /// and, under crash-stop faults, the failure detector: a message
  /// retried against a node that never restarts keeps the network
  /// non-idle by design).
  std::uint64_t run_until_idle(std::uint64_t max_rounds = 1'000'000) {
    std::uint64_t steps = 0;
    while (!idle()) {
      SKS_CHECK_MSG(steps < max_rounds, "network did not quiesce after "
                                            << steps << " rounds; "
                                            << stall_report());
      step();
      ++steps;
    }
    return steps;
  }

  /// What is keeping the network busy: in-flight messages grouped by
  /// action and destination, unacked reliable records with their retry
  /// state, and crashed nodes. This is the payload of the quiescence
  /// failure — the first question about a hung run is always "what is
  /// still in flight, and to whom".
  std::string stall_report() const {
    std::ostringstream os;
    os << "in flight: " << in_flight_ << " message(s), " << ack_in_flight_
       << " of them acks";
    const ActionRegistry& reg = ActionRegistry::instance();
    std::map<std::pair<ActionId, NodeId>, std::uint64_t> groups;
    for (const auto& slot : pending_) {
      for (const Envelope& env : slot) ++groups[{env.action, env.to}];
    }
    for (const auto& [key, count] : groups) {
      os << "\n  " << count << "x " << reg.name(key.first) << " -> v"
         << key.second << (is_crashed(key.second) ? " (crashed)" : "");
    }
    if (reliable_enabled_ && reliable_.unacked() != 0) {
      os << "\nunacked reliable record(s): " << reliable_.unacked();
      std::size_t shown = 0;
      reliable_.for_each_unacked([&](NodeId f, NodeId t, std::uint64_t seq,
                                     const ReliableTransport::Record& r) {
        if (shown++ >= kStallReportRecords) return;
        os << "\n  v" << f << "->v" << t << " seq=" << seq << " "
           << reg.name(r.action) << " attempts=" << r.attempts
           << " next_retry=r" << r.next_retry
           << (is_crashed(t) ? " (dest crashed)" : "")
           << (is_crashed(f) ? " (sender crashed)" : "");
      });
      if (shown > kStallReportRecords) {
        os << "\n  ... " << (shown - kStallReportRecords) << " more";
      }
    }
    if (crash_possible_) {
      os << "\ncrashed node(s):";
      bool any = false;
      for (std::size_t i = 0; i < crashed_.size(); ++i) {
        if (crashed_[i]) {
          os << " v" << i;
          any = true;
        }
      }
      if (!any) os << " none";
      os << "; scheduled restarts pending: " << faults_.pending_restarts();
    }
    return os.str();
  }

  std::uint64_t round() const { return round_; }

  Metrics& metrics() { return metrics_; }
  const NetworkConfig& config() const { return cfg_; }
  bool wire_enabled() const { return wire_enabled_; }
  Rng& rng() { return rng_; }

  // ---- Faults & crash control -----------------------------------------

  const FaultInjector& faults() const { return faults_; }
  const ReliableTransport& reliable() const { return reliable_; }

  /// Crash `v` immediately: its channel blackholes (messages addressed to
  /// it are dropped at delivery time) and it stops being activated. State
  /// is kept — restart_node resumes it where it stopped.
  void crash_node(NodeId v) {
    SKS_CHECK(v < nodes_.size());
    crash_possible_ = true;
    do_crash(v);
  }

  /// Revive a crashed node (state intact). Fires the restart hook.
  void restart_node(NodeId v) {
    SKS_CHECK(v < nodes_.size());
    do_restart(v);
  }

  /// Schedule a crash (and optional restart) relative to the running
  /// simulation — the dynamic counterpart of FaultPlan::crashes.
  void schedule_crash(const CrashEvent& c) {
    SKS_CHECK(c.node < nodes_.size());
    faults_.add_crash(c, round_);
    crash_possible_ = true;
  }

  bool is_crashed(NodeId v) const {
    return v < crashed_.size() && crashed_[v] != 0;
  }

  /// Permanently retire `v`: crash it (idempotent), refuse any future
  /// restart, cancel its scheduled crash/restart transitions, and purge
  /// every reliable-transport record touching it so retransmissions
  /// against the dead node stop and quiescence is reachable again. New
  /// sends addressed to it are dropped at send time (no reliable record
  /// is created that would retry forever). The recovery coordinator
  /// calls this when the failure detector declares a death.
  void fence_node(NodeId v) {
    SKS_CHECK(v < nodes_.size());
    crash_possible_ = true;
    do_crash(v);
    fenced_[v] = 1;
    fenced_possible_ = true;
    faults_.cancel_node(v);
    if (reliable_enabled_) reliable_.fence(v);
  }

  bool is_fenced(NodeId v) const {
    return v < fenced_.size() && fenced_[v] != 0;
  }

  /// Invoked (with the node id) whenever a crashed node restarts, before
  /// its next activation. The cluster runtime uses this to apply epoch
  /// starts the node missed while it was down.
  void set_restart_hook(std::function<void(NodeId)> hook) {
    restart_hook_ = std::move(hook);
  }

  /// Event tracer for this network's executions. Disabled by default;
  /// enable() before the execution to capture, then trace::build_trace
  /// and an exporter (src/trace/) to render it.
  trace::Tracer& tracer() { return tracer_; }
  const trace::Tracer& tracer() const { return tracer_; }

  /// Materialize the captured events into an exportable Trace.
  trace::Trace take_trace() const {
    return trace::build_trace(tracer_, nodes_.size());
  }

  /// Current pending-ring capacity (tests: ring growth under delay
  /// spikes).
  std::size_t pending_capacity() const { return pending_.size(); }

 private:
  static constexpr std::size_t kStallReportRecords = 16;

  /// What an envelope is to the transport. Data is the paper's traffic;
  /// reliable data additionally carries a channel seq and is acked and
  /// dedup'd; acks are consumed by the network and never reach a node;
  /// background traffic (failure-detector heartbeats/probes) is
  /// fire-and-forget — never tracked by the transport and excluded from
  /// quiescence so a permanently running detector cannot keep
  /// run_until_idle spinning.
  enum class MsgKind : std::uint8_t { kData, kReliableData, kAck,
                                      kBackground };

  struct Envelope {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    std::uint64_t bits = 0;       ///< size_bits(), cached at send time
    std::uint64_t seq = 0;        ///< reliable-channel sequence number
    ActionId action = 0;          ///< metrics_tag(), cached at send time
    MsgKind kind = MsgKind::kData;
    PayloadPtr payload;
  };

  struct Slot {
    std::unique_ptr<Node> node;
    void* typed = nullptr;             ///< pointer to the registered type
    const std::type_info* type = nullptr;
  };

  /// send() with the transport or fault plan armed: register the reliable
  /// record (sequence number + retained copy for retransmission), then
  /// run the channel fault model. Out of line to keep send()'s fast path
  /// compact.
  void slow_send(NodeId from, NodeId to, PayloadPtr payload,
                 std::uint64_t bits, ActionId action) {
    if (fenced_possible_ && fenced_[to]) [[unlikely]] {
      // A fenced destination is permanently dead: drop at send time so
      // the reliable transport never creates a record that would retry
      // forever against it.
      metrics_.note_action(action);
      metrics_.record_drop(action);
      if (tracer_.enabled()) {
        tracer_.message(trace::EventKind::kSend, from, to, action, bits);
        tracer_.message(trace::EventKind::kDrop, from, to, action, bits);
      }
      return;
    }
    if (reliable_enabled_) {
      const std::uint64_t seq =
          reliable_.register_send(from, to, *payload, bits, action, round_);
      enqueue(from, to, std::move(payload), MsgKind::kReliableData, seq,
              bits, action);
      return;
    }
    enqueue(from, to, std::move(payload), MsgKind::kData, 0, bits, action);
  }

  /// Channel entry point shared by faulty/reliable first sends,
  /// retransmissions and acks: applies the fault model (drop / delay
  /// spike / duplicate, in that fixed draw order) and enqueues the
  /// surviving copies.
  void enqueue(NodeId from, NodeId to, PayloadPtr payload, MsgKind kind,
               std::uint64_t seq, std::uint64_t bits, ActionId action) {
    // The action tag provably exists here, so the metrics table is grown
    // at send time and the delivery path stays branch-free.
    metrics_.note_action(action);
    if (tracer_.enabled()) {
      tracer_.message(trace::EventKind::kSend, from, to, action, bits);
    }
    if (faults_active_) [[unlikely]] {
      if (faults_.should_drop(from, to, round_)) {
        metrics_.record_drop(action);
        if (tracer_.enabled()) {
          tracer_.message(trace::EventKind::kDrop, from, to, action, bits);
        }
        return;  // the channel ate it; retransmission is reliable_'s job
      }
      std::uint64_t delay = base_delay();
      const std::uint64_t spike = faults_.delay_spike();
      if (spike != 0) {
        delay += spike;
        ensure_capacity(delay);
      }
      if (faults_.should_duplicate()) {
        metrics_.record_duplicate(action);
        if (tracer_.enabled()) {
          tracer_.message(trace::EventKind::kDuplicate, from, to, action,
                          bits);
        }
        // The copy gets an independent delay from the fault stream so the
        // protocol-visible and async-delay streams stay aligned with
        // duplicate-free runs.
        const std::uint64_t dup_delay =
            cfg_.mode == DeliveryMode::kSynchronous
                ? 1
                : faults_.rng().range(1, cfg_.max_delay);
        Envelope dup;
        dup.from = from;
        dup.to = to;
        dup.bits = bits;
        dup.action = action;
        dup.seq = seq;
        dup.kind = kind;
        dup.payload = payload->clone_payload();
        push_envelope(std::move(dup), round_ + dup_delay);
      }
      Envelope env;
      env.from = from;
      env.to = to;
      env.bits = bits;
      env.action = action;
      env.seq = seq;
      env.kind = kind;
      env.payload = std::move(payload);
      push_envelope(std::move(env), round_ + delay);
      return;
    }
    Envelope env;
    env.from = from;
    env.to = to;
    env.bits = bits;
    env.action = action;
    env.seq = seq;
    env.kind = kind;
    env.payload = std::move(payload);
    push_envelope(std::move(env), round_ + base_delay());
  }

  std::uint64_t base_delay() {
    return cfg_.mode == DeliveryMode::kSynchronous
               ? 1
               : delay_rng_.range(1, cfg_.max_delay);
  }

  void push_envelope(Envelope env, std::uint64_t due_round) {
    const MsgKind kind = env.kind;
    slot_for(due_round).push_back(std::move(env));
    ++in_flight_;
    if (kind == MsgKind::kAck) ++ack_in_flight_;
    if (kind == MsgKind::kBackground) ++bg_in_flight_;
  }

  /// Delivery of anything the step() fast path rejects: transport frames
  /// (reliable data, acks) and messages addressed to a crashed node. The
  /// caller has already decremented in_flight_.
  void deliver_slow(Envelope& env) {
    if (env.kind == MsgKind::kBackground) --bg_in_flight_;
    if (crash_possible_ && crashed_[env.to]) [[unlikely]] {
      // Blackhole: the crashed node's channel discards everything. For
      // reliable data the sender-side record survives and retries until
      // the node restarts (or forever, surfacing in the stall report).
      if (env.kind == MsgKind::kAck) --ack_in_flight_;
      metrics_.record_drop(env.action);
      if (tracer_.enabled()) {
        tracer_.message(trace::EventKind::kDrop, env.from, env.to,
                        env.action, env.bits);
      }
      return;
    }
    if (env.kind != MsgKind::kData && env.kind != MsgKind::kBackground)
        [[unlikely]] {
      if (env.kind == MsgKind::kAck) {
        --ack_in_flight_;
        // Acks are counted like any delivery (the sender does process
        // them) but consumed here; nodes never see transport traffic.
        metrics_.record_delivery(env.to, env.bits, env.action);
        if (tracer_.enabled()) {
          tracer_.message(trace::EventKind::kDeliver, env.from, env.to,
                          env.action, env.bits);
        }
        reliable_.ack(/*from=*/env.to, /*to=*/env.from, env.seq);
        return;
      }
      // Reliable data: ack every copy (ack loss only costs a
      // retransmission), suppress duplicates before the node sees them.
      send_ack(/*from=*/env.to, /*to=*/env.from, env.seq);
      if (!reliable_.mark_delivered(env.from, env.to, env.seq)) {
        metrics_.record_dup_suppressed();
        return;
      }
    }
    metrics_.record_delivery(env.to, env.bits, env.action);
    if (tracer_.enabled()) {
      tracer_.message(trace::EventKind::kDeliver, env.from, env.to,
                      env.action, env.bits);
    }
    nodes_[env.to].node->on_message(env.from, std::move(env.payload));
  }

  void send_ack(NodeId from, NodeId to, std::uint64_t seq) {
    auto ack = make_payload<ReliableAck>();
    ack->acked_seq = seq;
    const std::uint64_t bits = ack->size_bits();
    const ActionId action = ack->tag();
    PayloadPtr payload = std::move(ack);
    if (wire_enabled_) [[unlikely]] {
      payload = marshal(std::move(payload), action, bits);
    }
    enqueue(from, to, std::move(payload), MsgKind::kAck, seq, bits, action);
  }

  /// Wire mode: the payload makes a full encode -> bytes -> decode round
  /// trip, and the *decoded* object — not the original — is what travels
  /// and what the destination processes. The decoded object is re-encoded
  /// and must reproduce the frame byte for byte, so any codec asymmetry
  /// (a field dropped, an order swapped, a non-canonical container) fails
  /// loudly at the offending send instead of corrupting the run downstream.
  ///
  /// Runs once per logical send: retransmissions and channel duplicates
  /// clone the already-marshaled object, which is exactly what a real
  /// transport would retransmit.
  ///
  /// Measured-size attribution (wire counters in Metrics): the gamma
  /// outer tag is global framing; an envelope's own fields plus the inner
  /// tag (everything between frame_header_end and inner_start) belong to
  /// the envelope type; the rest is the logical action's body, compared
  /// against `accounted_bits` = size_bits() of the original payload.
  PayloadPtr marshal(PayloadPtr payload, ActionId action,
                     std::uint64_t accounted_bits) {
    wire::WireWriter w(wire_buf_);
    encode_frame(*payload, w);
    const std::uint64_t frame_bits = w.frame_header_end();
    const std::uint64_t inner_start = w.inner_start();
    const std::uint64_t total_bits = w.bit_count();
    wire::WireReader r(wire_buf_);
    PayloadPtr decoded = decode_frame(r);
    wire::WireWriter w2(wire_reencode_buf_);
    encode_frame(*decoded, w2);
    SKS_CHECK_MSG(wire_reencode_buf_ == wire_buf_,
                  "wire: re-encode of decoded '"
                      << ActionRegistry::instance().name(payload->tag())
                      << "' does not reproduce the original frame ("
                      << w.bit_count() << " vs " << w2.bit_count()
                      << " bits)");
    metrics_.note_action(action);
    metrics_.note_action(payload->tag());
    const std::uint64_t body_start =
        inner_start != 0 ? inner_start : frame_bits;
    metrics_.record_wire(action, total_bits - body_start, accounted_bits);
    metrics_.record_wire_overhead(
        payload->tag(), frame_bits,
        inner_start != 0 ? inner_start - frame_bits : 0);
    return decoded;
  }

  void retransmit_due() {
    reliable_.collect_due(
        round_,
        [this](NodeId v) { return crash_possible_ && crashed_[v]; },
        [this](NodeId from, NodeId to, std::uint64_t seq,
               const ReliableTransport::Record& r) {
          metrics_.record_retransmit(r.action);
          enqueue(from, to, r.payload->clone_payload(),
                  MsgKind::kReliableData, seq, r.bits, r.action);
        },
        [this](NodeId, NodeId, std::uint64_t,
               const ReliableTransport::Record&) {
          metrics_.record_abandoned();
        });
  }

  void do_crash(NodeId v) {
    if (crashed_[v]) return;
    crashed_[v] = 1;
    tracer_.lifecycle(trace::EventKind::kCrash, v);
  }

  void do_restart(NodeId v) {
    if (fenced_[v]) return;  // fencing is permanent; restarts are refused
    if (!crashed_[v]) return;
    crashed_[v] = 0;
    tracer_.lifecycle(trace::EventKind::kRestart, v);
    if (restart_hook_) restart_hook_(v);
  }

  std::vector<Envelope>& slot_for(std::uint64_t round) {
    return pending_[round & (pending_.size() - 1)];
  }

  /// Grow the pending ring so a message `delay` rounds out has a slot of
  /// its own (delay spikes can exceed max_delay). Live slots are remapped
  /// by their due round; amortized cost is nil — the ring only ever grows
  /// to the largest spike seen.
  void ensure_capacity(std::uint64_t delay) {
    const std::uint64_t old_size = pending_.size();
    if (delay < old_size) return;
    std::vector<std::vector<Envelope>> grown(
        std::bit_ceil(std::uint64_t{delay + 1}));
    for (std::uint64_t d = 1; d < old_size; ++d) {
      const std::uint64_t r = round_ + d;
      grown[r & (grown.size() - 1)] =
          std::move(pending_[r & (old_size - 1)]);
    }
    pending_ = std::move(grown);
  }

  void shuffle(std::vector<Envelope>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(rng_.below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  NetworkConfig cfg_;
  Rng rng_;
  Rng delay_rng_;  ///< async per-message delays (see constructor note)
  FaultInjector faults_;
  bool faults_active_;    ///< cached FaultPlan::active()
  bool crash_possible_;   ///< crashes scheduled or injected at runtime
  ReliableTransport reliable_;
  bool reliable_enabled_;
  bool wire_enabled_;             ///< cached NetworkConfig::wire
  bool fenced_possible_ = false;  ///< any node ever fenced
  std::vector<Slot> nodes_;
  std::vector<char> crashed_;                   ///< per-node down flag
  std::vector<char> fenced_;                    ///< per-node fenced flag
  std::vector<std::vector<Envelope>> pending_;  ///< ring, indexed by round
  std::vector<Envelope> due_;                   ///< scratch for step()
  std::uint64_t round_ = 0;
  std::uint64_t in_flight_ = 0;
  std::uint64_t ack_in_flight_ = 0;  ///< subset of in_flight_ that is acks
  std::uint64_t bg_in_flight_ = 0;   ///< subset that is background traffic
  Metrics metrics_;
  trace::Tracer tracer_;
  std::function<void(NodeId)> restart_hook_;
  // Wire-mode scratch. Member vectors reach a steady-state capacity after
  // the first few sends, so marshaling itself allocates nothing.
  std::vector<std::uint8_t> wire_buf_;
  std::vector<std::uint8_t> wire_reencode_buf_;
};

inline void Node::send(NodeId to, PayloadPtr payload) {
  net().send(id_, to, std::move(payload));
}

inline trace::Tracer& Node::tracer() { return net().tracer(); }

}  // namespace sks::sim
