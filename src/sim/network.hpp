// The message-passing system of Section 1.1.
//
// Nodes are processes with channels (unordered message buffers). A message
// is a remote action call; the network guarantees no loss, no duplication
// and fair receipt, but — in asynchronous mode — arbitrary finite delays
// and non-FIFO delivery, exactly the paper's computation model.
//
// For performance analysis the paper switches to the standard synchronous
// model: messages sent in round i are processed in round i+1 and every
// node is activated once per round. Synchronous mode implements that
// verbatim, which is what makes round counts in the benchmarks meaningful.
//
// Beyond the paper's perfect network, two opt-in layers make executions
// adversarial and survivable:
//
//  * FaultPlan (src/sim/faults.hpp) breaks the channel guarantees:
//    per-message drops, duplicates, heavy-tail delay spikes, scheduled
//    partitions, and node crash-stop / crash-restart. A crashed node
//    blackholes its channel and is skipped by on_activate.
//  * ReliableConfig (src/sim/reliable.hpp) restores exactly-once delivery
//    on top: sequence numbers, acks and timeout-driven retransmission
//    with exponential backoff, all inside the network so protocol code
//    is untouched.
//
// Both default off; with both off the hot path is byte-for-byte the
// pre-fault behaviour (the golden-trace tests pin this down) and pays one
// predictable branch per send/step.
//
// Parallel round engine (see DESIGN.md "Parallel execution"): nodes are
// partitioned into S execution shards by the seed-independent map
// shard_of(id) = id mod S (S a power of two, fixed at the first
// send/step — by config, SKS_SHARDS, or automatically from the network
// size). Each shard owns a segment of every round: its nodes'
// activations, deliveries addressed to its nodes, a private pending ring,
// private rng streams (protocol / delay / fault), its senders' reliable-
// transport records, a trace sink and a metrics accumulator. Within a
// round, shards run independently — on a worker pool when
// NetworkConfig::threads > 1 — and a send crossing shards is parked in
// the sender's per-destination outbox. At the round barrier the outboxes
// are merged into the destination rings in shard-major, send-order-minor
// order and the trace sinks are folded the same way, so the merged
// execution is a pure function of the shard map: any thread count replays
// the single-thread trace byte for byte. With one shard (the default
// below ~2k nodes) the engine collapses to exactly the sequential path.
#pragma once

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <typeinfo>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/faults.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel.hpp"
#include "sim/payload.hpp"
#include "sim/reliable.hpp"
#include "trace/tracer.hpp"

namespace sks::sim {

class Network;

/// A process. Subclasses implement actions by overriding on_message (remote
/// calls) and on_activate (the periodic activation of Section 1.1).
class Node {
 public:
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }

 protected:
  Node() = default;

  /// A request for an action call was taken out of this node's channel.
  /// Ownership of the payload transfers to the node so nested payloads
  /// (e.g. routed messages) can be forwarded without copies.
  virtual void on_message(NodeId from, PayloadPtr payload) = 0;

  /// Periodic activation; called once per round in synchronous mode.
  /// Crashed nodes are not activated until they restart.
  virtual void on_activate() {}

  /// Send a remote action call to `to`; enqueued into to's channel.
  void send(NodeId to, PayloadPtr payload);

  Network& net() {
    SKS_CHECK(net_ != nullptr);
    return *net_;
  }
  const Network& net() const {
    SKS_CHECK(net_ != nullptr);
    return *net_;
  }

 public:
  /// The network's tracer — public so protocol components (aggregators,
  /// KSelect, DHT) attached to a node can emit phase spans and
  /// annotations. No-cost unless enabled.
  trace::Tracer& tracer();

 private:
  friend class Network;
  Network* net_ = nullptr;
  NodeId id_ = kNoNode;
};

enum class DeliveryMode {
  /// Messages sent in round i are processed in round i+1.
  kSynchronous,
  /// Each message independently delayed uniformly in [1, max_delay]
  /// rounds: arbitrary finite delay, non-FIFO, fair receipt.
  kAsynchronous,
};

/// Wire mode's process-wide default: SKS_WIRE=1 (any value other than
/// empty or "0") opts the whole binary in, which is how CI re-runs the
/// test suite over the marshaling path without touching each test. A config
/// that sets `wire` explicitly always wins over the environment.
inline bool wire_mode_default() {
  static const bool enabled = [] {
    const char* e = std::getenv("SKS_WIRE");
    return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
  }();
  return enabled;
}

/// Worker-thread default: SKS_THREADS=N opts the whole binary into the
/// threaded executor (benches set it from --threads). 0/unset = 1, the
/// serial path.
inline std::size_t thread_count_default() {
  static const std::size_t count = [] {
    const char* e = std::getenv("SKS_THREADS");
    const std::size_t n =
        e == nullptr ? 0 : static_cast<std::size_t>(std::strtoull(e, nullptr, 10));
    return n == 0 ? std::size_t{1} : n;
  }();
  return count;
}

/// Shard-count default: SKS_SHARDS=S forces S execution shards (rounded
/// down to a power of two) regardless of network size — how CI reruns the
/// test suite sharded without touching each test. 0/unset = automatic
/// (scale with the network size; 1 below ~2k nodes).
inline std::size_t shard_count_default() {
  static const std::size_t count = [] {
    const char* e = std::getenv("SKS_SHARDS");
    return e == nullptr
               ? std::size_t{0}
               : static_cast<std::size_t>(std::strtoull(e, nullptr, 10));
  }();
  return count;
}

/// Per-shard rng-stream aliasing: shard s of a stream seeded `base` draws
/// from base xor s * golden-gamma. Shard 0 is `base` itself, so a
/// one-shard network consumes exactly the pre-shard streams.
inline std::uint64_t shard_seed(std::uint64_t base, std::size_t shard) {
  return base ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(shard));
}

struct NetworkConfig {
  DeliveryMode mode = DeliveryMode::kSynchronous;
  std::uint64_t max_delay = 8;   ///< async mode: max per-message delay
  std::uint64_t seed = 0x5eed;   ///< delivery order / delay randomness
  FaultPlan faults{};            ///< all-zero = the paper's perfect network
  ReliableConfig reliable{};     ///< off = raw channel (the default)
  /// Marshal every send through encode -> bytes -> decode and deliver the
  /// decoded object (see Network::marshal). Off = today's object path,
  /// byte for byte.
  bool wire = wire_mode_default();
  /// Worker threads for the round executor. Only decides *where* shards
  /// run, never what they do: the trace is identical for every value.
  /// Clamped to the shard count (1 shard => serial).
  std::size_t threads = thread_count_default();
  /// Execution shards (power of two; other values round down). 0 = pick
  /// from the network size at the first send/step: 1 below 2048 nodes,
  /// then one shard per 1024 nodes up to 64. The shard count changes the
  /// canonical trace (per-shard rng streams), so it must be configuration
  /// — never derived from the thread count.
  std::size_t shards = shard_count_default();
  /// Cap on the pending ring's grow-on-demand path: the largest lookahead
  /// (in rounds) a delayed message may claim before the run fails loudly.
  /// Heavy-tail delay spikes and sustained link inflation grow the ring;
  /// without a cap a hostile plan can grow it without bound. 0 = unbounded
  /// growth (today's behaviour, the default).
  std::uint64_t max_pending_rounds = 0;
};

class Network {
 public:
  explicit Network(NetworkConfig cfg = {})
      : cfg_(cfg),
        faults_(cfg.faults),
        faults_active_(cfg.faults.active()),
        crash_possible_(!cfg.faults.crashes.empty()),
        corrupt_possible_(cfg.faults.corruption_active()),
        reliable_enabled_(cfg.reliable.enabled),
        wire_enabled_(cfg.wire),
        flow_control_(cfg.reliable.enabled && cfg.reliable.max_in_flight != 0),
        stragglers_possible_(!cfg.faults.stragglers.empty()),
        inflation_possible_(!cfg.faults.link_inflations.empty()),
        metrics_(0) {
    // Corruption mutates encoded frame bytes; without the wire path there
    // are no bytes to flip and the integrity layer (CRC trailer) that the
    // fault model exercises never runs.
    SKS_CHECK_MSG(!corrupt_possible_ || wire_enabled_,
                  "FaultPlan corruption requires wire mode "
                  "(NetworkConfig::wire)");
    // The flow-control window stages sends inside the reliable transport;
    // without the transport there is nothing to window.
    SKS_CHECK_MSG(cfg.reliable.max_in_flight == 0 || cfg.reliable.enabled,
                  "ReliableConfig::max_in_flight requires the reliable "
                  "transport (ReliableConfig::enabled)");
    // Pending messages live in relative-round ring buffers (one per
    // shard): a message delayed by d lands d slots ahead of the current
    // one. A power-of-two size strictly greater than the largest possible
    // delay guarantees a slot is drained before any in-flight message can
    // wrap onto it. Fault-injected delay spikes can exceed max_delay;
    // ensure_capacity grows a ring on demand when one does.
    const std::uint64_t horizon =
        cfg_.mode == DeliveryMode::kSynchronous ? 1 : cfg_.max_delay;
    SKS_CHECK_MSG(horizon >= 1, "max_delay must be at least 1");
    SKS_CHECK_MSG(cfg_.max_pending_rounds == 0 ||
                      cfg_.max_pending_rounds > horizon,
                  "NetworkConfig::max_pending_rounds ("
                      << cfg_.max_pending_rounds
                      << ") must exceed the base delivery horizon ("
                      << horizon << ") or every plain send would trip it");
    ring_size_ = std::bit_ceil(horizon + 1);
    // Shard 0 exists from birth (its streams are the pre-shard network's
    // streams: protocol rng, the dedicated delay stream so enabling async
    // mode never perturbs protocol-visible randomness, and the fault
    // stream so an all-zero FaultPlan runs trace-identical to a network
    // built before fault injection existed). Further shards appear at
    // latch() once the node count is known.
    shards_.emplace_back(cfg_.seed, 0, cfg_.reliable, ring_size_);
    shards_[0].sink.owner = &tracer_;
  }

  /// Register a node; returns its id. The network owns the node. The
  /// concrete type is remembered so node_as<T> can skip the dynamic_cast
  /// on the (ubiquitous) exact-type access path.
  template <class T>
  NodeId add_node(std::unique_ptr<T> node) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    node->net_ = this;
    node->id_ = id;
    Slot slot;
    slot.typed = node.get();
    slot.type = &typeid(T);
    slot.node = std::move(node);
    nodes_.push_back(std::move(slot));
    crashed_.push_back(0);
    fenced_.push_back(0);
    metrics_.on_node_added(id);
    return id;
  }

  std::size_t size() const { return nodes_.size(); }

  Node& node(NodeId id) {
    SKS_CHECK(id < nodes_.size());
    return *nodes_[id].node;
  }

  template <class T>
  T& node_as(NodeId id) {
    SKS_CHECK(id < nodes_.size());
    Slot& slot = nodes_[id];
    if (*slot.type == typeid(T)) return *static_cast<T*>(slot.typed);
    auto* p = dynamic_cast<T*>(slot.node.get());
    SKS_CHECK_MSG(p != nullptr, "node " << id << " has unexpected type");
    return *p;
  }

  void send(NodeId from, NodeId to, PayloadPtr payload) {
    SKS_CHECK(to < nodes_.size());
    SKS_CHECK(payload != nullptr);
    if (!latched_) [[unlikely]] latch();
    // Size and metrics attribution are sampled once here — the payload is
    // immutable while in flight — so delivery touches no virtual calls.
    // In wire mode they are sampled from the ORIGINAL payload, before the
    // round trip: the accounted size is a property of the logical message.
    const std::uint64_t bits = payload->size_bits();
    const ActionId action = payload->metrics_tag();
    // Every send is attributed to the sender's shard: its delay/fault/
    // reliable streams are consumed there, which is what makes per-shard
    // draw accounting independent of other shards. In a shard execution
    // context this *is* the executing shard (nodes send as themselves).
    Shard& sh = shards_[static_cast<std::size_t>(from) & shard_mask_];
    if (wire_enabled_) [[unlikely]] {
      payload = marshal(sh, std::move(payload), action, bits);
    }
    if (reliable_enabled_ || faults_active_) [[unlikely]] {
      slow_send(sh, from, to, std::move(payload), bits, action);
      return;
    }
    // Fast path (transport off, plan inactive): build the envelope in
    // place — the pre-fault message path. No metrics call at all: the
    // action table is pre-sized once per round (Metrics::sync_actions)
    // before any delivery can index it.
    if (tracer_.enabled()) {
      tracer_.message(trace::EventKind::kSend, from, to, action, bits);
    }
    const std::uint64_t due = round_ + base_delay(sh);
    const std::size_t dest = static_cast<std::size_t>(to) & shard_mask_;
    if (dest == sh.index || !in_exec()) {
      // Same shard (always, with one shard) or coordinator context:
      // straight into the destination ring. base_delay <= max_delay, so
      // the ring always has the slot.
      Shard& dsh = shards_[dest];
      Envelope& env = slot_for(dsh, due).emplace_back();
      env.from = from;
      env.to = to;
      env.bits = bits;
      env.action = action;
      env.payload = std::move(payload);
      ++dsh.in_flight;
      return;
    }
    // Cross-shard from inside a shard execution: park in the outbox; the
    // barrier merge moves it into the destination ring deterministically.
    OutboxEntry& entry = sh.outbox[dest].emplace_back();
    entry.due = due;
    entry.env.from = from;
    entry.env.to = to;
    entry.env.bits = bits;
    entry.env.action = action;
    entry.env.payload = std::move(payload);
  }

  /// Fire-and-forget background traffic (failure-detector heartbeats and
  /// probes): bypasses the reliable transport — a lost heartbeat is
  /// superseded by the next one — runs through the same fault model and
  /// metrics/trace as data, and is excluded from quiescence. Delivery to
  /// a crashed or fenced destination blackholes like any other message.
  void send_background(NodeId from, NodeId to, PayloadPtr payload) {
    SKS_CHECK(to < nodes_.size());
    SKS_CHECK(payload != nullptr);
    if (!latched_) [[unlikely]] latch();
    const std::uint64_t bits = payload->size_bits();
    const ActionId action = payload->metrics_tag();
    Shard& sh = shards_[static_cast<std::size_t>(from) & shard_mask_];
    if (wire_enabled_) [[unlikely]] {
      payload = marshal(sh, std::move(payload), action, bits);
    }
    enqueue(sh, from, to, std::move(payload), MsgKind::kBackground, 0, bits,
            action);
  }

  /// Advance one round: apply scheduled crashes/restarts, then — per
  /// shard — deliver all due messages (in randomized order, so protocols
  /// cannot rely on intra-round ordering), fire due retransmissions and
  /// activate every live node once; finally merge cross-shard sends and
  /// fold the trace sinks at the barrier.
  void step() {
    if (!latched_) [[unlikely]] latch();
    ++round_;
    tracer_.begin_round(round_);
    if (crash_possible_) [[unlikely]] {
      // Coordinator-context: restart hooks may send (epoch catch-up);
      // those land in round_ + 1, safely ahead of this round's shard
      // execution.
      faults_.apply_schedule(
          round_, [this](NodeId v) { do_crash(v); },
          [this](NodeId v) { do_restart(v); });
    }
    metrics_.sync_actions();
    const std::size_t num_shards = shards_.size();
    if (num_shards == 1) {
      // The sequential engine: no exec context, no sinks, no merge.
      round_work(shards_[0]);
    } else {
      if (pool_ != nullptr) {
        pool_->run(num_shards, this, [](void* ctx, std::size_t s) {
          static_cast<Network*>(ctx)->run_shard(s);
        });
        pool_->run(num_shards, this, [](void* ctx, std::size_t d) {
          static_cast<Network*>(ctx)->merge_into(d);
        });
      } else {
        for (std::size_t s = 0; s < num_shards; ++s) run_shard(s);
        for (std::size_t d = 0; d < num_shards; ++d) merge_into(d);
      }
      // Fold order = shard-major: this is the canonical global trace
      // order, identical for every thread count.
      for (Shard& sh : shards_) tracer_.fold(sh.sink);
    }
    metrics_.end_round();
    if (round_observer_) round_observer_(round_);
  }

  /// Quiescence. Pure ack traffic does not count — acks chase messages
  /// that were already delivered, so waiting for them would let transport
  /// bookkeeping spin run_until_idle (leftover acks are delivered
  /// harmlessly whenever stepping resumes). Background detector traffic
  /// does not count either: heartbeats flow for as long as the system
  /// lives, so counting them would make quiescence unreachable. Unacked
  /// reliable records and scheduled-but-unapplied restarts do count: a
  /// retransmission or a revived node may still create work.
  bool idle() const {
    std::uint64_t in = 0, ack = 0, bg = 0;
    for (const Shard& sh : shards_) {
      in += sh.in_flight;
      ack += sh.ack_in_flight;
      bg += sh.bg_in_flight;
    }
    if (in != ack + bg) return false;
    if (reliable_enabled_) {
      for (const Shard& sh : shards_) {
        if (sh.reliable.unacked() != 0) return false;
      }
    }
    if (flow_control_) {
      // A staged send has not entered the channel yet; an ack, abandon or
      // quarantine will free a window slot and release it.
      for (const Shard& sh : shards_) {
        if (sh.reliable.staged_total() != 0) return false;
      }
    }
    if (crash_possible_ && faults_.pending_restarts() != 0) return false;
    return true;
  }

  /// Run until quiescent (see idle()). Returns the number of rounds
  /// stepped. Throws if max_rounds elapse first, with a stall report
  /// listing what is still in flight and why (the deadlock detector —
  /// and, under crash-stop faults, the failure detector: a message
  /// retried against a node that never restarts keeps the network
  /// non-idle by design).
  std::uint64_t run_until_idle(std::uint64_t max_rounds = 1'000'000) {
    std::uint64_t steps = 0;
    while (!idle()) {
      SKS_CHECK_MSG(steps < max_rounds, "network did not quiesce after "
                                            << steps << " rounds; "
                                            << stall_report());
      step();
      ++steps;
    }
    return steps;
  }

  /// What is keeping the network busy: in-flight messages grouped by
  /// action and destination, unacked reliable records with their retry
  /// state, and crashed nodes. This is the payload of the quiescence
  /// failure — the first question about a hung run is always "what is
  /// still in flight, and to whom".
  std::string stall_report() const {
    std::ostringstream os;
    std::uint64_t in = 0, ack = 0, unacked = 0;
    for (const Shard& sh : shards_) {
      in += sh.in_flight;
      ack += sh.ack_in_flight;
      unacked += sh.reliable.unacked();
    }
    os << "in flight: " << in << " message(s), " << ack << " of them acks";
    const ActionRegistry& reg = ActionRegistry::instance();
    std::map<std::pair<ActionId, NodeId>, std::uint64_t> groups;
    for (const Shard& sh : shards_) {
      for (const auto& slot : sh.pending) {
        for (const Envelope& env : slot) ++groups[{env.action, env.to}];
      }
    }
    for (const auto& [key, count] : groups) {
      os << "\n  " << count << "x " << reg.name(key.first) << " -> v"
         << key.second << (is_crashed(key.second) ? " (crashed)" : "");
    }
    if (reliable_enabled_ && unacked != 0) {
      os << "\nunacked reliable record(s): " << unacked;
      std::size_t shown = 0;
      for (const Shard& sh : shards_) {
        sh.reliable.for_each_unacked(
            [&](NodeId f, NodeId t, std::uint64_t seq,
                const ReliableTransport::Record& r) {
              if (shown++ >= kStallReportRecords) return;
              os << "\n  v" << f << "->v" << t << " seq=" << seq << " "
                 << reg.name(r.action) << " attempts=" << r.attempts
                 << " next_retry=r" << r.next_retry
                 << (is_crashed(t) ? " (dest crashed)" : "")
                 << (is_crashed(f) ? " (sender crashed)" : "");
            });
      }
      if (shown > kStallReportRecords) {
        os << "\n  ... " << (shown - kStallReportRecords) << " more";
      }
    }
    if (flow_control_) {
      std::uint64_t staged = 0;
      for (const Shard& sh : shards_) staged += sh.reliable.staged_total();
      os << "\nflow control (max_in_flight="
         << cfg_.reliable.max_in_flight << "): " << staged
         << " staged record(s); channels with window state:";
      std::size_t shown = 0;
      for (const Shard& sh : shards_) {
        sh.reliable.for_each_channel_window(
            [&](NodeId f, NodeId t, std::uint64_t in_flight,
                std::uint64_t backlog) {
              if (shown++ >= kStallReportRecords) return;
              os << "\n  v" << f << "->v" << t << " in_flight=" << in_flight
                 << "/" << cfg_.reliable.max_in_flight
                 << " staged=" << backlog
                 << (is_crashed(t) ? " (dest crashed)" : "");
            });
      }
      if (shown > kStallReportRecords) {
        os << "\n  ... " << (shown - kStallReportRecords) << " more";
      }
      if (shown == 0) os << " none";
    }
    std::size_t quarantined = 0;
    for (const Shard& sh : shards_) quarantined += sh.reliable.quarantined();
    if (quarantined != 0) {
      os << "\nquarantined poison record(s): " << quarantined;
      std::size_t shown = 0;
      for (const Shard& sh : shards_) {
        sh.reliable.for_each_quarantined(
            [&](const ReliableTransport::Quarantined& q) {
              if (shown++ >= kStallReportRecords) return;
              os << "\n  v" << q.from << "->v" << q.to << " seq=" << q.seq
                 << " " << reg.name(q.action)
                 << " poisoned=" << q.poisoned;
            });
      }
      if (shown > kStallReportRecords) {
        os << "\n  ... " << (shown - kStallReportRecords) << " more";
      }
    }
    if (crash_possible_) {
      os << "\ncrashed node(s):";
      bool any = false;
      for (std::size_t i = 0; i < crashed_.size(); ++i) {
        if (crashed_[i]) {
          os << " v" << i;
          any = true;
        }
      }
      if (!any) os << " none";
      os << "; scheduled restarts pending: " << faults_.pending_restarts();
    }
    return os.str();
  }

  std::uint64_t round() const { return round_; }

  Metrics& metrics() { return metrics_; }
  const NetworkConfig& config() const { return cfg_; }
  bool wire_enabled() const { return wire_enabled_; }

  /// Protocol-visible randomness. Inside a shard execution this is the
  /// executing shard's stream (each shard draws independently — the
  /// determinism contract); from the coordinator it is shard 0's stream,
  /// which with one shard is the pre-shard network stream.
  Rng& rng() {
    if (in_exec()) return shards_[tls_exec_.shard].rng;
    return shards_[0].rng;
  }

  /// Shard/thread topology actually in use (post-latch; before the first
  /// send/step num_shards() reports the shard-0-only bootstrap state).
  std::size_t num_shards() const { return shards_.size(); }
  std::size_t num_threads() const { return threads_; }

  // ---- Faults & crash control -----------------------------------------

  const FaultInjector& faults() const { return faults_; }

  /// Aggregated view over the per-shard reliable transports (tests /
  /// callers only ever need totals; per-record iteration stays internal
  /// to stall_report).
  class ReliableView {
   public:
    explicit ReliableView(const Network& net) : net_(&net) {}
    std::uint64_t unacked() const {
      std::uint64_t total = 0;
      for (const Shard& sh : net_->shards_) total += sh.reliable.unacked();
      return total;
    }
    /// Poison records abandoned after repeated corruption (see
    /// ReliableConfig::max_poison_attempts).
    std::uint64_t quarantined() const {
      std::uint64_t total = 0;
      for (const Shard& sh : net_->shards_) {
        total += sh.reliable.quarantined();
      }
      return total;
    }
    /// Sends parked by a full flow-control window, not yet in the channel
    /// (see ReliableConfig::max_in_flight). Zero without flow control.
    std::uint64_t staged() const {
      std::uint64_t total = 0;
      for (const Shard& sh : net_->shards_) {
        total += sh.reliable.staged_total();
      }
      return total;
    }
    /// Window occupancy of one (from, to) channel (tracked only while
    /// flow control is on).
    std::uint64_t in_flight_on(NodeId from, NodeId to) const {
      return net_->shards_[static_cast<std::size_t>(from) &
                           net_->shard_mask_]
          .reliable.in_flight_on(from, to);
    }
    /// Staged backlog of one (from, to) channel.
    std::uint64_t staged_on(NodeId from, NodeId to) const {
      return net_->shards_[static_cast<std::size_t>(from) &
                           net_->shard_mask_]
          .reliable.staged_on(from, to);
    }

   private:
    const Network* net_;
  };

  ReliableView reliable() const { return ReliableView(*this); }

  /// Crash `v` immediately: its channel blackholes (messages addressed to
  /// it are dropped at delivery time) and it stops being activated. State
  /// is kept — restart_node resumes it where it stopped.
  void crash_node(NodeId v) {
    SKS_CHECK(v < nodes_.size());
    crash_possible_ = true;
    do_crash(v);
  }

  /// Revive a crashed node (state intact). Fires the restart hook.
  void restart_node(NodeId v) {
    SKS_CHECK(v < nodes_.size());
    do_restart(v);
  }

  /// Schedule a crash (and optional restart) relative to the running
  /// simulation — the dynamic counterpart of FaultPlan::crashes.
  void schedule_crash(const CrashEvent& c) {
    SKS_CHECK(c.node < nodes_.size());
    faults_.add_crash(c, round_);
    crash_possible_ = true;
  }

  bool is_crashed(NodeId v) const {
    return v < crashed_.size() && crashed_[v] != 0;
  }

  /// Permanently retire `v`: crash it (idempotent), refuse any future
  /// restart, cancel its scheduled crash/restart transitions, and purge
  /// every reliable-transport record touching it so retransmissions
  /// against the dead node stop and quiescence is reachable again. New
  /// sends addressed to it are dropped at send time (no reliable record
  /// is created that would retry forever). The recovery coordinator
  /// calls this when the failure detector declares a death.
  void fence_node(NodeId v) {
    SKS_CHECK(v < nodes_.size());
    crash_possible_ = true;
    do_crash(v);
    fenced_[v] = 1;
    fenced_possible_ = true;
    faults_.cancel_node(v);
    if (reliable_enabled_) {
      for (Shard& sh : shards_) sh.reliable.fence(v);
    }
  }

  bool is_fenced(NodeId v) const {
    return v < fenced_.size() && fenced_[v] != 0;
  }

  /// Invoked (with the node id) whenever a crashed node restarts, before
  /// its next activation. The cluster runtime uses this to apply epoch
  /// starts the node missed while it was down.
  void set_restart_hook(std::function<void(NodeId)> hook) {
    restart_hook_ = std::move(hook);
  }

  /// Invoked (with the round number) at the end of every step(), after
  /// the barrier — coordinator context, all shard state folded. The
  /// telemetry sampler (src/obs/) hangs off this; unset it costs one
  /// predictable branch per round.
  void set_round_observer(std::function<void(std::uint64_t)> obs) {
    round_observer_ = std::move(obs);
  }

  /// Per-slot busy/wait profile of the worker pool (slot 0 = the thread
  /// driving step()). Empty when the engine runs without a pool.
  std::vector<WorkerProfile> worker_profiles() const {
    if (pool_ == nullptr) return {};
    return pool_->profiles();
  }

  /// Data messages currently in flight (excludes acks and background
  /// detector traffic) — the live backlog gauge telemetry exports.
  std::uint64_t data_in_flight() const {
    std::uint64_t in = 0, ack = 0, bg = 0;
    for (const Shard& sh : shards_) {
      in += sh.in_flight;
      ack += sh.ack_in_flight;
      bg += sh.bg_in_flight;
    }
    return in - ack - bg;
  }

  /// Event tracer for this network's executions. Disabled by default;
  /// enable() before the execution to capture, then trace::build_trace
  /// and an exporter (src/trace/) to render it.
  trace::Tracer& tracer() { return tracer_; }
  const trace::Tracer& tracer() const { return tracer_; }

  /// Materialize the captured events into an exportable Trace.
  trace::Trace take_trace() const {
    return trace::build_trace(tracer_, nodes_.size());
  }

  /// Current pending-ring capacity of shard 0 (tests: ring growth under
  /// delay spikes; with one shard this is the whole network's ring).
  std::size_t pending_capacity() const { return shards_[0].pending.size(); }

 private:
  static constexpr std::size_t kStallReportRecords = 16;
  // Automatic shard sizing (cfg.shards == 0): sharding only pays once a
  // shard has enough nodes to amortize the barrier, so small networks —
  // which includes the whole unit-test tier — stay on the sequential
  // single-shard engine.
  static constexpr std::size_t kAutoShardMinNodes = 2048;
  static constexpr std::size_t kAutoShardNodesPerShard = 1024;
  static constexpr std::size_t kMaxAutoShards = 64;

  /// What an envelope is to the transport. Data is the paper's traffic;
  /// reliable data additionally carries a channel seq and is acked and
  /// dedup'd; acks are consumed by the network and never reach a node;
  /// background traffic (failure-detector heartbeats/probes) is
  /// fire-and-forget — never tracked by the transport and excluded from
  /// quiescence so a permanently running detector cannot keep
  /// run_until_idle spinning.
  enum class MsgKind : std::uint8_t { kData, kReliableData, kAck,
                                      kBackground };

  struct Envelope {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    std::uint64_t bits = 0;       ///< size_bits(), cached at send time
    std::uint64_t seq = 0;        ///< reliable-channel sequence number
    ActionId action = 0;          ///< metrics_tag(), cached at send time
    MsgKind kind = MsgKind::kData;
    PayloadPtr payload;
  };

  struct Slot {
    std::unique_ptr<Node> node;
    void* typed = nullptr;             ///< pointer to the registered type
    const std::type_info* type = nullptr;
  };

  /// A cross-shard send parked in the sender's outbox until the barrier
  /// merge (the due round travels with the envelope because the merge —
  /// not the send — places it in the destination ring).
  struct OutboxEntry {
    std::uint64_t due = 0;
    Envelope env;
  };

  /// One execution shard: everything a slice of the network needs to run
  /// a round without touching shared state. Shard s owns nodes with
  /// id mod S == s — their activations, the deliveries addressed to them
  /// (pending ring + due scratch), the rng streams their sends draw from,
  /// their outgoing reliable-transport records plus their incoming dedup
  /// state (disjoint halves of one ReliableTransport, both only ever
  /// touched while shard s executes), the trace sink, and wire-mode
  /// scratch buffers.
  struct Shard {
    Shard(std::uint64_t seed, std::size_t idx, const ReliableConfig& rc,
          std::size_t ring_size)
        : index(idx),
          rng(shard_seed(seed, idx)),
          delay_rng(shard_seed(seed ^ kDelayStreamSalt, idx)),
          fault_rng(shard_seed(seed ^ kFaultStreamSalt, idx)),
          reliable(rc) {
      pending.resize(ring_size);
    }

    std::size_t index;
    Rng rng;        ///< protocol-visible draws of this shard's nodes
    Rng delay_rng;  ///< async per-message delays of this shard's sends
    Rng fault_rng;  ///< fault decisions for this shard's sends
    ReliableTransport reliable;
    trace::TraceSink sink;
    std::vector<std::vector<Envelope>> pending;  ///< ring, by due round
    std::vector<Envelope> due;                   ///< drain scratch
    std::vector<std::vector<OutboxEntry>> outbox;  ///< by dest shard
    std::uint64_t in_flight = 0;       ///< envelopes in this shard's ring
    std::uint64_t ack_in_flight = 0;   ///< subset that is acks
    std::uint64_t bg_in_flight = 0;    ///< subset that is background
    std::vector<std::uint8_t> wire_buf;
    std::vector<std::uint8_t> wire_reencode_buf;
    std::vector<std::uint8_t> corrupt_buf;  ///< mutated-frame scratch
  };

  /// Which network/shard the current thread is executing (run_shard). A
  /// plain thread_local pair — checked against `this` so nested networks
  /// (a simulation driving another simulation) never cross-route.
  struct ExecContext {
    Network* net;
    std::size_t shard;
  };

  bool in_exec() const { return tls_exec_.net == this; }

  /// RAII for a shard execution: installs the exec context and the
  /// shard's trace sink, restores both on scope exit (exception-safe, so
  /// a throwing node leaves the thread usable).
  class ExecGuard {
   public:
    ExecGuard(Network* net, std::size_t shard, trace::TraceSink* sink)
        : prev_exec_(tls_exec_),
          prev_sink_(trace::Tracer::exchange_thread_sink(sink)) {
      tls_exec_ = ExecContext{net, shard};
    }
    ExecGuard(const ExecGuard&) = delete;
    ExecGuard& operator=(const ExecGuard&) = delete;
    ~ExecGuard() {
      tls_exec_ = prev_exec_;
      trace::Tracer::exchange_thread_sink(prev_sink_);
    }

   private:
    ExecContext prev_exec_;
    trace::TraceSink* prev_sink_;
  };

  /// Fix the shard topology. Runs once, at the first send or step, when
  /// the node count is known; everything before (node adds, rng draws)
  /// is single-threaded coordinator work on shard 0. The shard count is
  /// a pure function of configuration and network size — never of the
  /// thread count — because each shard owns rng streams and the stream
  /// assignment defines the canonical trace.
  void latch() {
    latched_ = true;
    std::size_t target = 1;
    if (cfg_.shards != 0) {
      target = std::bit_floor(cfg_.shards);
    } else if (nodes_.size() >= kAutoShardMinNodes) {
      target = std::bit_floor(std::min<std::size_t>(
          nodes_.size() / kAutoShardNodesPerShard, kMaxAutoShards));
    }
    if (target <= 1) return;
    shards_.reserve(target);
    for (std::size_t s = 1; s < target; ++s) {
      shards_.emplace_back(cfg_.seed, s, cfg_.reliable, ring_size_);
      shards_[s].sink.owner = &tracer_;
    }
    for (Shard& sh : shards_) sh.outbox.resize(target);
    shard_mask_ = target - 1;
    shard_shift_ = static_cast<std::uint32_t>(std::countr_zero(target));
    metrics_.reshape(target, shard_shift_);
    threads_ = std::min(cfg_.threads == 0 ? std::size_t{1} : cfg_.threads,
                        target);
    if (threads_ > 1) pool_ = std::make_unique<WorkerPool>(threads_ - 1);
  }

  MetricsShard& met(const Shard& sh) { return metrics_.shard(sh.index); }

  /// One shard's slice of a round, run under its exec context (worker
  /// pool or serial loop — same result by construction).
  void run_shard(std::size_t s) {
    Shard& sh = shards_[s];
    ExecGuard guard(this, s, &sh.sink);
    // Per-shard wall-clock attribution (multi-shard path only — the
    // sequential engine never reaches here, keeping its round loop free
    // of clock reads). Two steady_clock calls against a whole shard
    // round is noise; the resulting busy spread is the load-imbalance
    // signal the --scaling bench reports.
    const auto start = std::chrono::steady_clock::now();
    round_work(sh);
    metrics_.shard(s).add_busy_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }

  /// The round body proper. With one shard this is called directly (no
  /// exec context, no sink) and is the sequential engine, branch for
  /// branch.
  void round_work(Shard& sh) {
    deliver_due(sh);
    if (reliable_enabled_) [[unlikely]] {
      retransmit_due(sh);
      // Window slots freed outside the ack path (abandoned or quarantined
      // records) release their staged backlog here; the common ack-driven
      // release already ran inside deliver_due.
      if (flow_control_ && sh.reliable.staged_total() != 0) {
        sh.reliable.pump_staged(
            [this, &sh](NodeId f, NodeId t,
                        ReliableTransport::StagedSend&& s) {
              release_send(sh, f, t, std::move(s));
            });
      }
    }
    activate(sh);
    met(sh).on_round_end();
  }

  void deliver_due(Shard& sh) {
    std::vector<Envelope>& due_slot = slot_for(sh, round_);
    if (due_slot.empty()) return;
    // Swap into a scratch vector (reusing its capacity) so deliveries
    // that send new messages never touch the slot being drained.
    sh.due.clear();
    sh.due.swap(due_slot);
    shuffle(sh, sh.due);
    for (auto& env : sh.due) {
      --sh.in_flight;
      // Fast path: plain data to a live node — the pre-fault delivery.
      // Transport traffic and blackholed destinations take the slow
      // path (possible only when the respective feature is armed).
      if (env.kind != MsgKind::kData ||
          (crash_possible_ && crashed_[env.to])) [[unlikely]] {
        deliver_slow(sh, env);
        continue;
      }
      met(sh).record_delivery(env.to, env.bits, env.action);
      if (tracer_.enabled()) {
        tracer_.message(trace::EventKind::kDeliver, env.from, env.to,
                        env.action, env.bits);
      }
      nodes_[env.to].node->on_message(env.from, std::move(env.payload));
    }
    sh.due.clear();
  }

  void activate(Shard& sh) {
    const std::size_t stride = shards_.size();
    if (crash_possible_ || stragglers_possible_) [[unlikely]] {
      for (std::size_t i = sh.index; i < nodes_.size(); i += stride) {
        if (crash_possible_ && crashed_[i]) continue;
        // A straggling node keeps receiving (deliveries above already
        // ran) but is too CPU-starved to take its activation step this
        // round. Schedule-based: zero rng draws, so an all-zero plan
        // stays byte-identical.
        if (stragglers_possible_ &&
            faults_.straggler_skips(static_cast<NodeId>(i), round_)) {
          continue;
        }
        nodes_[i].node->on_activate();
      }
    } else {
      for (std::size_t i = sh.index; i < nodes_.size(); i += stride) {
        nodes_[i].node->on_activate();
      }
    }
  }

  /// Barrier merge for destination shard `d`: drain every source shard's
  /// outbox bin for d, in source-shard-major, send-order-minor order.
  /// Each (source, dest) bin is read by exactly one merge task, so the
  /// merge phase runs on the pool with no shared writes; the order is
  /// fixed by the shard map, so it is thread-count-invariant. Within a
  /// destination slot, a shard's own (same-shard) sends precede merged
  /// cross-shard sends — they were pushed during execution.
  void merge_into(std::size_t d) {
    Shard& dst = shards_[d];
    for (Shard& src : shards_) {
      auto& bin = src.outbox[d];
      for (OutboxEntry& entry : bin) {
        ring_push(dst, std::move(entry.env), entry.due);
      }
      bin.clear();
    }
  }

  /// send() with the transport or fault plan armed: register the reliable
  /// record (sequence number + retained copy for retransmission), then
  /// run the channel fault model. Out of line to keep send()'s fast path
  /// compact.
  void slow_send(Shard& sh, NodeId from, NodeId to, PayloadPtr payload,
                 std::uint64_t bits, ActionId action) {
    if (fenced_possible_ && fenced_[to]) [[unlikely]] {
      // A fenced destination is permanently dead: drop at send time so
      // the reliable transport never creates a record that would retry
      // forever against it.
      MetricsShard& met_sh = met(sh);
      met_sh.note_action(action);
      met_sh.record_drop(action);
      if (tracer_.enabled()) {
        tracer_.message(trace::EventKind::kSend, from, to, action, bits);
        tracer_.message(trace::EventKind::kDrop, from, to, action, bits);
      }
      return;
    }
    if (reliable_enabled_) {
      if (flow_control_ && sh.reliable.window_full(from, to)) [[unlikely]] {
        // Sliding window full: park the record in the channel's staging
        // buffer instead of registering it. It is released verbatim (in
        // FIFO order) as acks open the window, so delivery order per
        // channel is preserved and the unacked set stays bounded.
        met(sh).record_window_stall();
        if (tracer_.enabled()) {
          tracer_.message(trace::EventKind::kStall, from, to, action, bits);
        }
        sh.reliable.stage(from, to, std::move(payload), bits, action);
        return;
      }
      const std::uint64_t seq = sh.reliable.register_send(
          from, to, *payload, bits, action, round_);
      enqueue(sh, from, to, std::move(payload), MsgKind::kReliableData, seq,
              bits, action);
      return;
    }
    enqueue(sh, from, to, std::move(payload), MsgKind::kData, 0, bits,
            action);
  }

  /// Channel entry point shared by faulty/reliable first sends,
  /// retransmissions and acks: applies the fault model (drop / delay
  /// spike / duplicate, in that fixed draw order, all from the sending
  /// shard's fault stream) and enqueues the surviving copies. Wire-level
  /// corruption draws come last, one group per physical copy in push
  /// order (the duplicated copy first, then the original), so every
  /// retransmission and duplicate faces the corrupting channel
  /// independently.
  void enqueue(Shard& sh, NodeId from, NodeId to, PayloadPtr payload,
               MsgKind kind, std::uint64_t seq, std::uint64_t bits,
               ActionId action) {
    // The action tag provably exists here; grow the sending shard's
    // metrics table now because the fault path below may index it in
    // this same round (record_drop/record_duplicate).
    met(sh).note_action(action);
    if (tracer_.enabled()) {
      tracer_.message(trace::EventKind::kSend, from, to, action, bits);
    }
    if (faults_active_) [[unlikely]] {
      if (faults_.should_drop(sh.fault_rng, from, to, round_)) {
        met(sh).record_drop(action);
        if (tracer_.enabled()) {
          tracer_.message(trace::EventKind::kDrop, from, to, action, bits);
        }
        return;  // the channel ate it; retransmission is reliable's job
      }
      // Sustained link inflation is additive on top of the base delay and
      // any spike; schedule-based, so it costs no rng draws.
      const std::uint64_t inflation =
          inflation_possible_ ? faults_.link_inflation(from, to, round_) : 0;
      const std::uint64_t delay =
          base_delay(sh) + faults_.delay_spike(sh.fault_rng) + inflation;
      if (faults_.should_duplicate(sh.fault_rng)) {
        met(sh).record_duplicate(action);
        if (tracer_.enabled()) {
          tracer_.message(trace::EventKind::kDuplicate, from, to, action,
                          bits);
        }
        // The copy gets an independent delay from the fault stream so the
        // protocol-visible and async-delay streams stay aligned with
        // duplicate-free runs.
        const std::uint64_t dup_delay =
            (cfg_.mode == DeliveryMode::kSynchronous
                 ? 1
                 : sh.fault_rng.range(1, cfg_.max_delay)) +
            inflation;
        Envelope dup;
        dup.from = from;
        dup.to = to;
        dup.bits = bits;
        dup.action = action;
        dup.seq = seq;
        dup.kind = kind;
        dup.payload = payload->clone_payload();
        if (!corrupt_possible_ ||
            corrupt_copy(sh, from, to, *dup.payload, kind, seq, bits,
                         action)) {
          push_envelope(sh, std::move(dup), round_ + dup_delay);
        }
      }
      if (corrupt_possible_ &&
          !corrupt_copy(sh, from, to, *payload, kind, seq, bits, action)) {
        return;  // the channel mangled it and the CRC caught it
      }
      Envelope env;
      env.from = from;
      env.to = to;
      env.bits = bits;
      env.action = action;
      env.seq = seq;
      env.kind = kind;
      env.payload = std::move(payload);
      push_envelope(sh, std::move(env), round_ + delay);
      return;
    }
    Envelope env;
    env.from = from;
    env.to = to;
    env.bits = bits;
    env.action = action;
    env.seq = seq;
    env.kind = kind;
    env.payload = std::move(payload);
    push_envelope(sh, std::move(env), round_ + base_delay(sh));
  }

  std::uint64_t base_delay(Shard& sh) {
    return cfg_.mode == DeliveryMode::kSynchronous
               ? 1
               : sh.delay_rng.range(1, cfg_.max_delay);
  }

  /// Wire-corruption model for one physical copy of `p` on the channel
  /// from->to. Draws the corruption decisions from the sending shard's
  /// fault stream (gates first — see FaultInjector::corruption — then
  /// positions: the truncation cut point, then one bit index per flip
  /// over the post-cut length). The copy is re-encoded (wire mode
  /// guarantees a byte-exact frame), mutated, and run through the
  /// receiver's integrity check:
  ///
  ///  * decode_frame rejects (CRC mismatch / malformed body) — the normal
  ///    case: counted + traced as kCorrupt and, for reliable data, charged
  ///    against the sender's poison budget (quarantine when exhausted).
  ///    The copy is dropped; retransmission restores exactly-once.
  ///  * the mutation cancelled out (even flips on one bit) — the channel
  ///    was a no-op; the copy travels untouched.
  ///  * the mutated frame still decodes (CRC slip-through, ~2^-32) — a
  ///    protocol-visible corruption: counted as corrupt_delivered (the CI
  ///    gate asserts zero) on top of the kCorrupt drop accounting.
  ///
  /// Returns true iff the copy survives and may be enqueued.
  bool corrupt_copy(Shard& sh, NodeId from, NodeId to, const Payload& p,
                    MsgKind kind, std::uint64_t seq, std::uint64_t bits,
                    ActionId action) {
    const FaultInjector::Corruption c = faults_.corruption(sh.fault_rng);
    if (c.garbage) inject_garbage(sh, from, to, action);
    if (c.flips == 0 && !c.truncate) return true;
    // Pristine frame in wire_reencode_buf, mutable copy in corrupt_buf.
    wire::WireWriter w(sh.wire_reencode_buf);
    encode_frame(p, w);
    sh.corrupt_buf.assign(sh.wire_reencode_buf.begin(),
                          sh.wire_reencode_buf.end());
    if (c.truncate && !sh.corrupt_buf.empty()) {
      sh.corrupt_buf.resize(static_cast<std::size_t>(
          sh.fault_rng.below(sh.corrupt_buf.size())));
    }
    const std::uint64_t nbits = sh.corrupt_buf.size() * 8;
    for (std::uint32_t i = 0; i < c.flips && nbits != 0; ++i) {
      const std::uint64_t b = sh.fault_rng.below(nbits);
      sh.corrupt_buf[b / 8] ^= static_cast<std::uint8_t>(0x80u >> (b % 8));
    }
    if (sh.corrupt_buf == sh.wire_reencode_buf) return true;  // cancelled
    bool slipped = false;
    try {
      wire::WireReader r(sh.corrupt_buf.data(), sh.corrupt_buf.size());
      (void)decode_frame(r);
      slipped = true;  // mutated bytes passed CRC *and* decoded
    } catch (const CheckFailure&) {
      // The integrity layer rejected the frame — the designed outcome.
    }
    MetricsShard& met_sh = met(sh);
    met_sh.record_corrupt(action);
    if (slipped) met_sh.record_corrupt_delivered();
    if (tracer_.enabled()) {
      tracer_.message(trace::EventKind::kCorrupt, from, to, action, bits);
    }
    if (kind == MsgKind::kReliableData && reliable_enabled_ &&
        sh.reliable.note_poisoned(from, to, seq)) {
      met_sh.record_quarantined();
      if (tracer_.enabled()) {
        tracer_.message(trace::EventKind::kQuarantine, from, to, action,
                        bits);
      }
    }
    return false;
  }

  /// Garbage-frame injection: the channel conjures 1..garbage_max_bytes
  /// random bytes alongside a real transmission and the receiver tries to
  /// decode them. Attributed to the carrying send's action (the garbage
  /// has no identity of its own). A decode success would be a
  /// protocol-visible corruption (corrupt_delivered); the frame is never
  /// handed to a node either way — the effect under test is the integrity
  /// layer, not random payload semantics.
  void inject_garbage(Shard& sh, NodeId from, NodeId to, ActionId action) {
    const std::uint64_t max_bytes =
        std::max<std::uint64_t>(faults_.plan().garbage_max_bytes, 1);
    const std::size_t len =
        1 + static_cast<std::size_t>(sh.fault_rng.below(max_bytes));
    sh.corrupt_buf.resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      sh.corrupt_buf[i] =
          static_cast<std::uint8_t>(sh.fault_rng.below(256));
    }
    bool slipped = false;
    try {
      wire::WireReader r(sh.corrupt_buf.data(), sh.corrupt_buf.size());
      (void)decode_frame(r);
      slipped = true;
    } catch (const CheckFailure&) {
    }
    MetricsShard& met_sh = met(sh);
    met_sh.record_corrupt(action);
    if (slipped) met_sh.record_corrupt_delivered();
    if (tracer_.enabled()) {
      tracer_.message(trace::EventKind::kCorrupt, from, to, action,
                      len * 8);
    }
  }

  /// Route a fully built envelope from sending shard `sh` toward its
  /// destination: same shard (or coordinator context) goes straight into
  /// the destination ring; cross-shard from inside an execution parks in
  /// the outbox for the barrier merge.
  void push_envelope(Shard& sh, Envelope env, std::uint64_t due_round) {
    const std::size_t dest = static_cast<std::size_t>(env.to) & shard_mask_;
    if (dest == sh.index || !in_exec()) {
      ring_push(shards_[dest], std::move(env), due_round);
      return;
    }
    sh.outbox[dest].push_back(OutboxEntry{due_round, std::move(env)});
  }

  /// Place an envelope in `sh`'s ring (only ever called by the thread
  /// that owns `sh`: its own sends, coordinator sends, or its barrier
  /// merge task). Delay spikes can outrun the ring, so capacity is
  /// checked per push here — the fault-free fast path in send() skips
  /// this because base delays always fit.
  void ring_push(Shard& sh, Envelope env, std::uint64_t due_round) {
    if (due_round - round_ >= sh.pending.size()) [[unlikely]] {
      ensure_capacity(sh, due_round - round_);
    }
    const MsgKind kind = env.kind;
    slot_for(sh, due_round).push_back(std::move(env));
    ++sh.in_flight;
    if (kind == MsgKind::kAck) ++sh.ack_in_flight;
    if (kind == MsgKind::kBackground) ++sh.bg_in_flight;
  }

  /// Delivery of anything the per-shard fast path rejects: transport
  /// frames (reliable data, acks) and messages addressed to a crashed
  /// node. `sh` is the executing (= destination's) shard; the caller has
  /// already decremented its in_flight.
  void deliver_slow(Shard& sh, Envelope& env) {
    if (env.kind == MsgKind::kBackground) --sh.bg_in_flight;
    if (crash_possible_ && crashed_[env.to]) [[unlikely]] {
      // Blackhole: the crashed node's channel discards everything. For
      // reliable data the sender-side record survives and retries until
      // the node restarts (or forever, surfacing in the stall report).
      if (env.kind == MsgKind::kAck) --sh.ack_in_flight;
      met(sh).record_drop(env.action);
      if (tracer_.enabled()) {
        tracer_.message(trace::EventKind::kDrop, env.from, env.to,
                        env.action, env.bits);
      }
      return;
    }
    if (env.kind != MsgKind::kData && env.kind != MsgKind::kBackground)
        [[unlikely]] {
      if (env.kind == MsgKind::kAck) {
        --sh.ack_in_flight;
        // Acks are counted like any delivery (the sender does process
        // them) but consumed here; nodes never see transport traffic.
        // The ack's destination is the original sender, so `sh` is the
        // shard whose reliable transport registered the record.
        met(sh).record_delivery(env.to, env.bits, env.action);
        if (tracer_.enabled()) {
          tracer_.message(trace::EventKind::kDeliver, env.from, env.to,
                          env.action, env.bits);
        }
        sh.reliable.ack(/*from=*/env.to, /*to=*/env.from, env.seq);
        // The ack just opened a window slot on channel (env.to ->
        // env.from); release its staged backlog eagerly so flow control
        // costs no extra round of latency on the common path.
        if (flow_control_) {
          sh.reliable.release_staged(
              /*from=*/env.to, /*to=*/env.from,
              [this, &sh](NodeId f, NodeId t,
                          ReliableTransport::StagedSend&& s) {
                release_send(sh, f, t, std::move(s));
              });
        }
        return;
      }
      // Reliable data: ack every copy (ack loss only costs a
      // retransmission), suppress duplicates before the node sees them.
      // The receiver-side dedup state lives in the receiver's shard —
      // this one.
      send_ack(sh, /*from=*/env.to, /*to=*/env.from, env.seq);
      if (!sh.reliable.mark_delivered(env.from, env.to, env.seq)) {
        met(sh).record_dup_suppressed();
        return;
      }
    }
    met(sh).record_delivery(env.to, env.bits, env.action);
    if (tracer_.enabled()) {
      tracer_.message(trace::EventKind::kDeliver, env.from, env.to,
                      env.action, env.bits);
    }
    nodes_[env.to].node->on_message(env.from, std::move(env.payload));
  }

  /// Put a staged record on the wire now that its channel window has
  /// room. The caller (release_staged / pump_staged) guarantees room, so
  /// this registers and enqueues directly instead of going back through
  /// slow_send's staging check.
  void release_send(Shard& sh, NodeId from, NodeId to,
                    ReliableTransport::StagedSend&& s) {
    const std::uint64_t seq = sh.reliable.register_send(
        from, to, *s.payload, s.bits, s.action, round_);
    enqueue(sh, from, to, std::move(s.payload), MsgKind::kReliableData, seq,
            s.bits, s.action);
  }

  void send_ack(Shard& sh, NodeId from, NodeId to, std::uint64_t seq) {
    auto ack = make_payload<ReliableAck>();
    ack->acked_seq = seq;
    const std::uint64_t bits = ack->size_bits();
    const ActionId action = ack->tag();
    PayloadPtr payload = std::move(ack);
    if (wire_enabled_) [[unlikely]] {
      payload = marshal(sh, std::move(payload), action, bits);
    }
    enqueue(sh, from, to, std::move(payload), MsgKind::kAck, seq, bits,
            action);
  }

  /// Wire mode: the payload makes a full encode -> bytes -> decode round
  /// trip, and the *decoded* object — not the original — is what travels
  /// and what the destination processes. The decoded object is re-encoded
  /// and must reproduce the frame byte for byte, so any codec asymmetry
  /// (a field dropped, an order swapped, a non-canonical container) fails
  /// loudly at the offending send instead of corrupting the run downstream.
  ///
  /// Runs once per logical send: retransmissions and channel duplicates
  /// clone the already-marshaled object, which is exactly what a real
  /// transport would retransmit.
  ///
  /// Measured-size attribution (wire counters in Metrics): the gamma
  /// outer tag is global framing; an envelope's own fields plus the inner
  /// tag (everything between frame_header_end and inner_start) belong to
  /// the envelope type; the rest is the logical action's body, compared
  /// against `accounted_bits` = size_bits() of the original payload.
  PayloadPtr marshal(Shard& sh, PayloadPtr payload, ActionId action,
                     std::uint64_t accounted_bits) {
    wire::WireWriter w(sh.wire_buf);
    encode_frame(*payload, w);
    const std::uint64_t frame_bits = w.frame_header_end();
    const std::uint64_t inner_start = w.inner_start();
    const std::uint64_t total_bits = w.bit_count();
    wire::WireReader r(sh.wire_buf);
    PayloadPtr decoded = decode_frame(r);
    wire::WireWriter w2(sh.wire_reencode_buf);
    encode_frame(*decoded, w2);
    SKS_CHECK_MSG(sh.wire_reencode_buf == sh.wire_buf,
                  "wire: re-encode of decoded '"
                      << ActionRegistry::instance().name(payload->tag())
                      << "' does not reproduce the original frame ("
                      << w.bit_count() << " vs " << w2.bit_count()
                      << " bits)");
    MetricsShard& met_sh = met(sh);
    met_sh.note_action(action);
    met_sh.note_action(payload->tag());
    // total_bits includes the CRC32C trailer appended after the pad;
    // the trailer is global framing, not body, so it moves with the
    // outer-tag bits into the frame-overhead bucket.
    const std::uint64_t body_start =
        inner_start != 0 ? inner_start : frame_bits;
    met_sh.record_wire(action,
                       total_bits - body_start - wire::kCrcTrailerBits,
                       accounted_bits);
    met_sh.record_wire_overhead(
        payload->tag(), frame_bits + wire::kCrcTrailerBits,
        inner_start != 0 ? inner_start - frame_bits : 0);
    return decoded;
  }

  /// Fire retransmissions due this round from `sh`'s records (it
  /// registered them: records belong to the sender's shard, so the clone
  /// re-enters the channel through the same streams as the original).
  void retransmit_due(Shard& sh) {
    sh.reliable.collect_due(
        round_,
        [this](NodeId v) { return crash_possible_ && crashed_[v]; },
        [this, &sh](NodeId from, NodeId to, std::uint64_t seq,
                    const ReliableTransport::Record& r) {
          met(sh).record_retransmit(r.action);
          enqueue(sh, from, to, r.payload->clone_payload(),
                  MsgKind::kReliableData, seq, r.bits, r.action);
        },
        [this, &sh](NodeId, NodeId, std::uint64_t,
                    const ReliableTransport::Record&) {
          met(sh).record_abandoned();
        },
        // Jitter (when configured) comes from the shard's fault stream:
        // it models channel behavior, and with retransmit_jitter == 0 the
        // transport draws nothing, keeping jitter-free runs byte-stable.
        &sh.fault_rng);
  }

  void do_crash(NodeId v) {
    if (crashed_[v]) return;
    crashed_[v] = 1;
    tracer_.lifecycle(trace::EventKind::kCrash, v);
  }

  void do_restart(NodeId v) {
    if (fenced_[v]) return;  // fencing is permanent; restarts are refused
    if (!crashed_[v]) return;
    crashed_[v] = 0;
    tracer_.lifecycle(trace::EventKind::kRestart, v);
    if (restart_hook_) restart_hook_(v);
  }

  std::vector<Envelope>& slot_for(Shard& sh, std::uint64_t round) {
    return sh.pending[round & (sh.pending.size() - 1)];
  }

  /// Grow a shard's pending ring so a message `delay` rounds out has a
  /// slot of its own (delay spikes can exceed max_delay). Live slots are
  /// remapped by their due round; amortized cost is nil — the ring only
  /// ever grows to the largest spike seen.
  void ensure_capacity(Shard& sh, std::uint64_t delay) {
    const std::uint64_t old_size = sh.pending.size();
    if (delay < old_size) return;
    SKS_CHECK_MSG(
        cfg_.max_pending_rounds == 0 || delay < cfg_.max_pending_rounds,
        "pending-ring growth to cover a delivery " +
            std::to_string(delay) +
            " rounds out exceeds max_pending_rounds=" +
            std::to_string(cfg_.max_pending_rounds) +
            "; lower FaultPlan::spike_max / link-inflation extras or raise "
            "NetworkConfig::max_pending_rounds");
    std::vector<std::vector<Envelope>> grown(
        std::bit_ceil(std::uint64_t{delay + 1}));
    for (std::uint64_t d = 1; d < old_size; ++d) {
      const std::uint64_t r = round_ + d;
      grown[r & (grown.size() - 1)] =
          std::move(sh.pending[r & (old_size - 1)]);
    }
    sh.pending = std::move(grown);
  }

  /// Per-round delivery shuffle, drawing from the shard's protocol
  /// stream (with one shard: the pre-shard draw order, draw for draw).
  void shuffle(Shard& sh, std::vector<Envelope>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(sh.rng.below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  inline static thread_local ExecContext tls_exec_{nullptr, 0};

  NetworkConfig cfg_;
  FaultInjector faults_;
  bool faults_active_;    ///< cached FaultPlan::active()
  bool crash_possible_;   ///< crashes scheduled or injected at runtime
  bool corrupt_possible_; ///< cached FaultPlan::corruption_active()
  bool reliable_enabled_;
  bool wire_enabled_;             ///< cached NetworkConfig::wire
  bool flow_control_;         ///< reliable enabled and max_in_flight != 0
  bool stragglers_possible_;  ///< any straggler schedule in the plan
  bool inflation_possible_;   ///< any link-inflation schedule in the plan
  bool fenced_possible_ = false;  ///< any node ever fenced
  bool latched_ = false;          ///< shard topology fixed
  std::size_t shard_mask_ = 0;    ///< num_shards - 1 (power of two)
  std::uint32_t shard_shift_ = 0; ///< log2(num_shards)
  std::size_t ring_size_ = 0;     ///< base pending-ring size per shard
  std::size_t threads_ = 1;       ///< executor width (post-latch)
  std::vector<Slot> nodes_;
  std::vector<char> crashed_;  ///< per-node down flag
  std::vector<char> fenced_;   ///< per-node fenced flag
  std::vector<Shard> shards_;  ///< shard 0 always exists
  std::unique_ptr<WorkerPool> pool_;  ///< only when threads_ > 1
  std::uint64_t round_ = 0;
  Metrics metrics_;
  trace::Tracer tracer_;
  std::function<void(NodeId)> restart_hook_;
  std::function<void(std::uint64_t)> round_observer_;
};

inline void Node::send(NodeId to, PayloadPtr payload) {
  net().send(id_, to, std::move(payload));
}

inline trace::Tracer& Node::tracer() { return net().tracer(); }

}  // namespace sks::sim
