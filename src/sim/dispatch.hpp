// Type-directed action dispatch.
//
// A node that handles many remote action types registers one handler per
// payload type instead of writing a dynamic_cast ladder. Registration
// happens in the subclass constructor; dispatch is a hash lookup on the
// payload's dynamic type. Handlers receive ownership of the payload so
// nested payloads (routed messages) can be forwarded without copies.
#pragma once

#include <functional>
#include <memory>
#include <typeindex>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "sim/network.hpp"
#include "sim/payload.hpp"

namespace sks::sim {

class DispatchingNode : public Node {
 protected:
  /// Register an action handler for payload type T. The handler signature
  /// is void(NodeId from, std::unique_ptr<T> payload).
  template <class T, class F>
  void on(F&& handler) {
    auto [it, inserted] = handlers_.emplace(
        std::type_index(typeid(T)),
        [h = std::forward<F>(handler)](NodeId from, PayloadPtr p) {
          h(from, std::unique_ptr<T>(static_cast<T*>(p.release())));
        });
    SKS_CHECK_MSG(inserted, "duplicate handler for payload type");
    (void)it;
  }

  void on_message(NodeId from, PayloadPtr payload) final {
    SKS_CHECK(payload != nullptr);
    const Payload& ref = *payload;
    const auto it = handlers_.find(std::type_index(typeid(ref)));
    SKS_CHECK_MSG(it != handlers_.end(),
                  "node " << id() << " has no handler for action '"
                          << ref.name() << "'");
    it->second(from, std::move(payload));
  }

 private:
  std::unordered_map<std::type_index, std::function<void(NodeId, PayloadPtr)>>
      handlers_;
};

}  // namespace sks::sim
