// Tag-directed action dispatch.
//
// A node that handles many remote action types registers one handler per
// payload type instead of writing a dynamic_cast ladder. Registration
// happens in the subclass constructor; dispatch indexes a flat table with
// the payload's dense action tag — no typeid, no hashing on the hot path.
// Handlers receive ownership of the payload so nested payloads (routed
// messages) can be forwarded without copies.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "sim/network.hpp"
#include "sim/payload.hpp"

namespace sks::sim {

class DispatchingNode : public Node {
 protected:
  /// Register an action handler for payload type T. The handler signature
  /// is void(NodeId from, sim::Owned<T> payload).
  template <class T, class F>
  void on(F&& handler) {
    const ActionId tag = action_tag_of<T>();
    if (handlers_.size() <= tag) handlers_.resize(tag + 1);
    SKS_CHECK_MSG(!handlers_[tag],
                  "duplicate handler for action '" << T::kActionName << "'");
    handlers_[tag] = [h = std::forward<F>(handler)](NodeId from, PayloadPtr p) {
      h(from, Owned<T>(static_cast<T*>(p.release())));
    };
  }

  void on_message(NodeId from, PayloadPtr payload) final {
    SKS_CHECK(payload != nullptr);
    const ActionId tag = payload->tag();
    SKS_CHECK_MSG(tag < handlers_.size() && handlers_[tag],
                  "node " << id() << " has no handler for action '"
                          << payload->name() << "'");
    handlers_[tag](from, std::move(payload));
  }

 private:
  /// Flat table indexed by ActionId (dense and small by construction).
  std::vector<std::function<void(NodeId, PayloadPtr)>> handlers_;
};

}  // namespace sks::sim
