// Message payloads.
//
// Every message in the system is a remote action call (Section 1.1): it
// names the action via its concrete payload type and carries the call's
// parameters. Payloads report their encoded size in bits so the simulator
// can account message sizes exactly as the paper's lemmas do.
#pragma once

#include <cstdint>
#include <memory>
#include <typeindex>

namespace sks::sim {

struct Payload {
  virtual ~Payload() = default;

  /// Encoded size of this message in bits, per the paper's accounting
  /// (numbers cost ceil(log2 range) bits; see common/bits.hpp).
  virtual std::uint64_t size_bits() const = 0;

  /// Human-readable action name, used for per-type metrics and debugging.
  virtual const char* name() const = 0;
};

using PayloadPtr = std::unique_ptr<Payload>;

}  // namespace sks::sim
