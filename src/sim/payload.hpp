// Message payloads and the action registry.
//
// Every message in the system is a remote action call (Section 1.1): it
// names the action via its concrete payload type and carries the call's
// parameters. Payloads report their encoded size in bits so the simulator
// can account message sizes exactly as the paper's lemmas do.
//
// The hot send→deliver path is allocation- and RTTI-free:
//
//  * Each concrete payload type registers once with the ActionRegistry and
//    receives a small dense ActionId (its "tag"). Dispatch tables and
//    per-type metrics are flat arrays indexed by tag — no typeid hashing,
//    no string-keyed map lookups per message.
//  * Payload instances come from a per-type PayloadPool: a freelist of raw
//    storage blocks recycled through the deleter baked into PayloadPtr, so
//    steady-state traffic performs zero heap allocations.
//
// Deriving a payload type:
//
//   struct PutRequest final : sim::Action<PutRequest> {
//     static constexpr const char* kActionName = "dht.put";
//     ...fields...
//     std::uint64_t size_bits() const override { return ...; }
//   };
//   auto req = sim::make_payload<PutRequest>();
//
// Wrapper payloads that carry another payload (routing hops, vertex
// envelopes) override metrics_tag()/name() to attribute traffic to the
// payload being carried.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/wire.hpp"

namespace sks::sim {

/// Dense sequential identifier of one action (concrete payload type).
using ActionId = std::uint32_t;

struct Payload;
template <class T>
class PayloadPool;

/// Deleter baked into every owning payload pointer: returns pooled
/// payloads to their type's freelist, frees plain heap payloads.
struct PayloadDeleter {
  void operator()(Payload* p) const;
};

/// Owning pointer to a concrete payload type (pool-aware).
template <class T>
using Owned = std::unique_ptr<T, PayloadDeleter>;

/// Owning pointer to a type-erased payload (pool-aware).
using PayloadPtr = Owned<Payload>;

/// Decodes one payload body (the frame tag already consumed) back into a
/// typed, pool-allocated payload. One per registered action.
using DecodeFn = PayloadPtr (*)(wire::WireReader&);

/// Process-wide table of registered actions. Registration happens once per
/// concrete payload type (on first use, from action_tag_of<T>()); the name
/// string is interned here so the hot path never touches it. Registration
/// is serialized by a mutex (first use can race across threads in static
/// init) and duplicate names are rejected — two payload types sharing a
/// name would make the wire tag ambiguous.
class ActionRegistry {
 public:
  static ActionRegistry& instance() {
    static ActionRegistry registry;
    return registry;
  }

  ActionId intern(const char* name, DecodeFn decode_fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& existing : names_) {
      SKS_CHECK_MSG(existing != name,
                    "duplicate action name '" << name << "' registered");
    }
    names_.emplace_back(name);
    decoders_.push_back(decode_fn);
    return static_cast<ActionId>(names_.size() - 1);
  }

  const std::string& name(ActionId id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    SKS_CHECK(id < names_.size());
    return names_[id];  // deque: reference stays valid past the lock
  }

  /// Decode the body of the action tagged `id` from `r`. Unknown tags
  /// (corrupt frames) are rejected with a catchable CheckFailure.
  PayloadPtr decode(ActionId id, wire::WireReader& r) const {
    DecodeFn fn;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      SKS_CHECK_MSG(id < decoders_.size(), "wire: unknown action tag");
      fn = decoders_[id];
    }
    return fn(r);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return names_.size();
  }

 private:
  ActionRegistry() = default;
  mutable std::mutex mutex_;
  // deque, not vector: name() hands out references that must survive
  // later registrations.
  std::deque<std::string> names_;
  std::deque<DecodeFn> decoders_;
};

struct Payload {
  virtual ~Payload() = default;

  // Copies never inherit the source's pool linkage: a copy is a distinct
  // allocation with its own recycling route (set by whoever allocates it).
  Payload(const Payload& other) : tag_(other.tag_) {}
  Payload& operator=(const Payload& other) {
    tag_ = other.tag_;
    return *this;
  }

  /// Dense tag of this payload's concrete type; index into dispatch
  /// tables. Set at construction, no virtual call needed to read it.
  ActionId tag() const { return tag_; }

  /// Encoded size of this message in bits, per the paper's accounting
  /// (numbers cost ceil(log2 range) bits; see common/bits.hpp). Sampled
  /// once at send time and cached in the network envelope.
  virtual std::uint64_t size_bits() const = 0;

  /// Human-readable action name, used for diagnostics.
  virtual const char* name() const = 0;

  /// Byte-exact wire encoding of this payload's body (the frame tag is
  /// written by encode_frame). Pure virtual: every payload type must ship
  /// a real encoder, so the wire format is exhaustive by construction.
  virtual void encode(wire::WireWriter& w) const = 0;

  /// Tag metrics attribute this message to. Wrapper payloads (RouteHop,
  /// VertexMsg) forward to the payload they carry, so per-type counters
  /// charge the logical action rather than the transport envelope.
  virtual ActionId metrics_tag() const { return tag_; }

  /// Deep copy of this payload (pool-allocated). The reliable transport
  /// retains a clone of every tracked message so timeouts can retransmit
  /// it; Action<T> derives the implementation from T's copy constructor,
  /// so wrapper payloads holding a nested PayloadPtr only need a copy
  /// constructor that clones the carried payload (see overlay::RouteHop).
  virtual PayloadPtr clone_payload() const = 0;

 protected:
  explicit Payload(ActionId tag) : tag_(tag) {}

 private:
  friend struct PayloadDeleter;
  template <class T>
  friend class PayloadPool;

  ActionId tag_;
  /// Non-null iff this instance came from a PayloadPool.
  void (*recycle_)(Payload*) = nullptr;
};

/// The dense tag of payload type T; registers T (name + decoder) on first
/// use. The function-local static makes first-use registration race-free;
/// the registry's mutex serializes distinct types registering concurrently.
template <class T>
ActionId action_tag_of() {
  static const ActionId id = ActionRegistry::instance().intern(
      T::kActionName,
      +[](wire::WireReader& r) -> PayloadPtr { return T::decode(r); });
  return id;
}

/// CRTP base wiring a concrete payload type to the registry: stamps the
/// type's tag into every instance and derives name() from T::kActionName.
template <class T>
struct Action : Payload {
  Action() : Payload(action_tag_of<T>()) {}
  const char* name() const override { return T::kActionName; }
  PayloadPtr clone_payload() const override {
    if constexpr (std::is_copy_constructible_v<T>) {
      return PayloadPool<T>::make(static_cast<const T&>(*this));
    } else {
      SKS_CHECK_MSG(false, "payload type '" << T::kActionName
                           << "' is not copy-constructible; it cannot be "
                              "sent over the reliable transport");
      return nullptr;  // unreachable
    }
  }
};

/// Per-type freelist of payload storage. Blocks are raw storage between
/// uses (the object is destroyed on release, placement-constructed on
/// acquire), so payload state never leaks across messages. Single-threaded
/// by design, like the simulator itself.
template <class T>
class PayloadPool {
 public:
  template <class... Args>
  static Owned<T> make(Args&&... args) {
    Freelist& fl = freelist();
    void* mem;
    if (!fl.blocks.empty()) {
      mem = fl.blocks.back();
      fl.blocks.pop_back();
    } else {
      mem = ::operator new(sizeof(T));
    }
    T* p;
    try {
      p = new (mem) T(std::forward<Args>(args)...);
    } catch (...) {
      fl.blocks.push_back(mem);
      throw;
    }
    p->recycle_ = &PayloadPool::recycle;
    return Owned<T>(p);
  }

  /// Blocks currently parked in the freelist (diagnostics/tests).
  static std::size_t free_blocks() { return freelist().blocks.size(); }

 private:
  static void recycle(Payload* base) {
    T* p = static_cast<T*>(base);
    p->~T();
    freelist().blocks.push_back(p);
  }

  struct Freelist {
    std::vector<void*> blocks;
    ~Freelist() {
      for (void* b : blocks) ::operator delete(b);
    }
  };

  static Freelist& freelist() {
    static Freelist fl;
    return fl;
  }
};

/// Allocate a payload from its type's pool. Drop-in replacement for the
/// former std::make_unique<T>() on every send path.
template <class T, class... Args>
Owned<T> make_payload(Args&&... args) {
  return PayloadPool<T>::make(std::forward<Args>(args)...);
}

inline void PayloadDeleter::operator()(Payload* p) const {
  if (p->recycle_ != nullptr) {
    p->recycle_(p);
  } else {
    delete p;
  }
}

/// Serialize one payload into a self-describing frame:
/// [gamma(tag)][body...][pad to byte]. Envelope payloads (RouteHop,
/// VertexMsg) recursively frame-tag the payload they carry.
inline void encode_frame(const Payload& p, wire::WireWriter& w) {
  w.gamma(p.tag());
  w.note_frame_header_end();
  p.encode(w);
  w.finish();
}

/// Inverse of encode_frame: rejects unknown tags, truncated buffers and
/// nonzero padding with a catchable CheckFailure.
inline PayloadPtr decode_frame(wire::WireReader& r) {
  const std::uint64_t tag = r.gamma();
  SKS_CHECK_MSG(tag <= 0xffffffffull, "wire: action tag out of range");
  PayloadPtr p = ActionRegistry::instance().decode(
      static_cast<ActionId>(tag), r);
  r.finish();
  return p;
}

}  // namespace sks::sim
