// Message payloads and the action registry.
//
// Every message in the system is a remote action call (Section 1.1): it
// names the action via its concrete payload type and carries the call's
// parameters. Payloads report their encoded size in bits so the simulator
// can account message sizes exactly as the paper's lemmas do.
//
// The hot send→deliver path is allocation- and RTTI-free:
//
//  * Each concrete payload type registers once with the ActionRegistry and
//    receives a small dense ActionId (its "tag"). Dispatch tables and
//    per-type metrics are flat arrays indexed by tag — no typeid hashing,
//    no string-keyed map lookups per message.
//  * Payload instances come from a per-type PayloadPool: a freelist of raw
//    storage blocks recycled through the deleter baked into PayloadPtr, so
//    steady-state traffic performs zero heap allocations.
//
// Deriving a payload type:
//
//   struct PutRequest final : sim::Action<PutRequest> {
//     static constexpr const char* kActionName = "dht.put";
//     ...fields...
//     std::uint64_t size_bits() const override { return ...; }
//   };
//   auto req = sim::make_payload<PutRequest>();
//
// Wrapper payloads that carry another payload (routing hops, vertex
// envelopes) override metrics_tag()/name() to attribute traffic to the
// payload being carried.
#pragma once

#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace sks::sim {

/// Dense sequential identifier of one action (concrete payload type).
using ActionId = std::uint32_t;

/// Process-wide table of registered actions. Registration happens once per
/// concrete payload type (on first use, from action_tag_of<T>()); the name
/// string is interned here so the hot path never touches it.
class ActionRegistry {
 public:
  static ActionRegistry& instance() {
    static ActionRegistry registry;
    return registry;
  }

  ActionId intern(const char* name) {
    names_.emplace_back(name);
    return static_cast<ActionId>(names_.size() - 1);
  }

  const std::string& name(ActionId id) const {
    SKS_CHECK(id < names_.size());
    return names_[id];
  }

  std::size_t size() const { return names_.size(); }

 private:
  ActionRegistry() = default;
  std::vector<std::string> names_;
};

struct Payload;
template <class T>
class PayloadPool;

/// Deleter baked into every owning payload pointer: returns pooled
/// payloads to their type's freelist, frees plain heap payloads.
struct PayloadDeleter {
  void operator()(Payload* p) const;
};

/// Owning pointer to a concrete payload type (pool-aware).
template <class T>
using Owned = std::unique_ptr<T, PayloadDeleter>;

/// Owning pointer to a type-erased payload (pool-aware).
using PayloadPtr = Owned<Payload>;

struct Payload {
  virtual ~Payload() = default;

  // Copies never inherit the source's pool linkage: a copy is a distinct
  // allocation with its own recycling route (set by whoever allocates it).
  Payload(const Payload& other) : tag_(other.tag_) {}
  Payload& operator=(const Payload& other) {
    tag_ = other.tag_;
    return *this;
  }

  /// Dense tag of this payload's concrete type; index into dispatch
  /// tables. Set at construction, no virtual call needed to read it.
  ActionId tag() const { return tag_; }

  /// Encoded size of this message in bits, per the paper's accounting
  /// (numbers cost ceil(log2 range) bits; see common/bits.hpp). Sampled
  /// once at send time and cached in the network envelope.
  virtual std::uint64_t size_bits() const = 0;

  /// Human-readable action name, used for diagnostics.
  virtual const char* name() const = 0;

  /// Tag metrics attribute this message to. Wrapper payloads (RouteHop,
  /// VertexMsg) forward to the payload they carry, so per-type counters
  /// charge the logical action rather than the transport envelope.
  virtual ActionId metrics_tag() const { return tag_; }

  /// Deep copy of this payload (pool-allocated). The reliable transport
  /// retains a clone of every tracked message so timeouts can retransmit
  /// it; Action<T> derives the implementation from T's copy constructor,
  /// so wrapper payloads holding a nested PayloadPtr only need a copy
  /// constructor that clones the carried payload (see overlay::RouteHop).
  virtual PayloadPtr clone_payload() const = 0;

 protected:
  explicit Payload(ActionId tag) : tag_(tag) {}

 private:
  friend struct PayloadDeleter;
  template <class T>
  friend class PayloadPool;

  ActionId tag_;
  /// Non-null iff this instance came from a PayloadPool.
  void (*recycle_)(Payload*) = nullptr;
};

/// The dense tag of payload type T; registers T on first use.
template <class T>
ActionId action_tag_of() {
  static const ActionId id = ActionRegistry::instance().intern(T::kActionName);
  return id;
}

/// CRTP base wiring a concrete payload type to the registry: stamps the
/// type's tag into every instance and derives name() from T::kActionName.
template <class T>
struct Action : Payload {
  Action() : Payload(action_tag_of<T>()) {}
  const char* name() const override { return T::kActionName; }
  PayloadPtr clone_payload() const override {
    if constexpr (std::is_copy_constructible_v<T>) {
      return PayloadPool<T>::make(static_cast<const T&>(*this));
    } else {
      SKS_CHECK_MSG(false, "payload type '" << T::kActionName
                           << "' is not copy-constructible; it cannot be "
                              "sent over the reliable transport");
      return nullptr;  // unreachable
    }
  }
};

/// Per-type freelist of payload storage. Blocks are raw storage between
/// uses (the object is destroyed on release, placement-constructed on
/// acquire), so payload state never leaks across messages. Single-threaded
/// by design, like the simulator itself.
template <class T>
class PayloadPool {
 public:
  template <class... Args>
  static Owned<T> make(Args&&... args) {
    Freelist& fl = freelist();
    void* mem;
    if (!fl.blocks.empty()) {
      mem = fl.blocks.back();
      fl.blocks.pop_back();
    } else {
      mem = ::operator new(sizeof(T));
    }
    T* p;
    try {
      p = new (mem) T(std::forward<Args>(args)...);
    } catch (...) {
      fl.blocks.push_back(mem);
      throw;
    }
    p->recycle_ = &PayloadPool::recycle;
    return Owned<T>(p);
  }

  /// Blocks currently parked in the freelist (diagnostics/tests).
  static std::size_t free_blocks() { return freelist().blocks.size(); }

 private:
  static void recycle(Payload* base) {
    T* p = static_cast<T*>(base);
    p->~T();
    freelist().blocks.push_back(p);
  }

  struct Freelist {
    std::vector<void*> blocks;
    ~Freelist() {
      for (void* b : blocks) ::operator delete(b);
    }
  };

  static Freelist& freelist() {
    static Freelist fl;
    return fl;
  }
};

/// Allocate a payload from its type's pool. Drop-in replacement for the
/// former std::make_unique<T>() on every send path.
template <class T, class... Args>
Owned<T> make_payload(Args&&... args) {
  return PayloadPool<T>::make(std::forward<Args>(args)...);
}

inline void PayloadDeleter::operator()(Payload* p) const {
  if (p->recycle_ != nullptr) {
    p->recycle_(p);
  } else {
    delete p;
  }
}

}  // namespace sks::sim
