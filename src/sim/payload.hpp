// Message payloads and the action registry.
//
// Every message in the system is a remote action call (Section 1.1): it
// names the action via its concrete payload type and carries the call's
// parameters. Payloads report their encoded size in bits so the simulator
// can account message sizes exactly as the paper's lemmas do.
//
// The hot send→deliver path is allocation- and RTTI-free:
//
//  * Each concrete payload type registers once with the ActionRegistry and
//    receives a small dense ActionId (its "tag"). Dispatch tables and
//    per-type metrics are flat arrays indexed by tag — no typeid hashing,
//    no string-keyed map lookups per message.
//  * Payload instances come from a per-type PayloadPool: a freelist of raw
//    storage blocks recycled through the deleter baked into PayloadPtr, so
//    steady-state traffic performs zero heap allocations.
//
// Deriving a payload type:
//
//   struct PutRequest final : sim::Action<PutRequest> {
//     static constexpr const char* kActionName = "dht.put";
//     ...fields...
//     std::uint64_t size_bits() const override { return ...; }
//   };
//   auto req = sim::make_payload<PutRequest>();
//
// Wrapper payloads that carry another payload (routing hops, vertex
// envelopes) override metrics_tag()/name() to attribute traffic to the
// payload being carried.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/wire.hpp"

namespace sks::sim {

/// Dense sequential identifier of one action (concrete payload type).
using ActionId = std::uint32_t;

struct Payload;
template <class T>
class PayloadPool;

/// Deleter baked into every owning payload pointer: returns pooled
/// payloads to their type's freelist, frees plain heap payloads.
struct PayloadDeleter {
  void operator()(Payload* p) const;
};

/// Owning pointer to a concrete payload type (pool-aware).
template <class T>
using Owned = std::unique_ptr<T, PayloadDeleter>;

/// Owning pointer to a type-erased payload (pool-aware).
using PayloadPtr = Owned<Payload>;

/// Decodes one payload body (the frame tag already consumed) back into a
/// typed, pool-allocated payload. One per registered action.
using DecodeFn = PayloadPtr (*)(wire::WireReader&);

/// Process-wide table of registered actions. Registration happens once per
/// concrete payload type (on first use, from action_tag_of<T>()) and is
/// serialized by a mutex; duplicate names are rejected — two payload types
/// sharing a name would make the wire tag ambiguous.
///
/// Reads are lock-free: entries live in a fixed-capacity array (stable
/// addresses, no reallocation) published through an acquire/release
/// counter, so name()/decode()/size() may run concurrently with a late
/// registration from another thread. A reader can never observe an id at
/// or above the count it loaded, and every id below it refers to a fully
/// constructed entry (the release store in intern() happens after the
/// entry is written).
class ActionRegistry {
 public:
  /// Hard cap on distinct payload types in one process. The repo defines
  /// a few dozen; the cap exists so the entry array can be a fixed block
  /// that is never reallocated (lock-free readers keep raw references).
  static constexpr std::size_t kMaxActions = 1024;

  static ActionRegistry& instance() {
    static ActionRegistry registry;
    return registry;
  }

  ActionId intern(const char* name, DecodeFn decode_fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint32_t n = count_.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < n; ++i) {
      SKS_CHECK_MSG(entries_[i].name != name,
                    "duplicate action name '" << name << "' registered");
    }
    SKS_CHECK_MSG(n < kMaxActions, "action registry full (" << kMaxActions
                                       << " types)");
    entries_[n].name = name;
    entries_[n].decode = decode_fn;
    count_.store(n + 1, std::memory_order_release);
    return static_cast<ActionId>(n);
  }

  const std::string& name(ActionId id) const {
    SKS_CHECK(id < count_.load(std::memory_order_acquire));
    return entries_[id].name;  // fixed array: reference stays valid
  }

  /// Decode the body of the action tagged `id` from `r`. Unknown tags
  /// (corrupt frames) are rejected with a catchable CheckFailure.
  PayloadPtr decode(ActionId id, wire::WireReader& r) const {
    SKS_CHECK_MSG(id < count_.load(std::memory_order_acquire),
                  "wire: unknown action tag");
    return entries_[id].decode(r);
  }

  std::size_t size() const {
    return count_.load(std::memory_order_acquire);
  }

 private:
  struct Entry {
    std::string name;
    DecodeFn decode = nullptr;
  };

  ActionRegistry() : entries_(kMaxActions) {}

  std::mutex mutex_;  ///< serializes intern() only; reads are lock-free
  std::vector<Entry> entries_;  ///< sized once, never reallocated
  std::atomic<std::uint32_t> count_{0};
};

/// Point-in-time occupancy of one payload type's pool. `allocated` is
/// cumulative heap blocks ever created for the type (a warmed-up run
/// holds it flat — the zero-alloc property, now observable as a gauge);
/// `parked_global` is blocks currently in the shared overflow list.
struct PoolStats {
  std::uint64_t allocated = 0;
  std::uint64_t parked_global = 0;
};

/// Process-wide directory of payload pools, so telemetry can read pool
/// occupancy without naming payload types. Registration happens once per
/// type (from the pool's shared-state constructor); the stat callbacks
/// read only static-duration atomics, so querying is safe at any point
/// in the process lifetime, including during static destruction. Layout
/// follows ActionRegistry: fixed entry array published through an
/// acquire/release counter, lock-free reads.
class PoolDirectory {
 public:
  using StatFn = PoolStats (*)();

  static PoolDirectory& instance() {
    static PoolDirectory dir;
    return dir;
  }

  void register_pool(const char* name, StatFn fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint32_t n = count_.load(std::memory_order_relaxed);
    SKS_CHECK_MSG(n < ActionRegistry::kMaxActions, "pool directory full");
    entries_[n].name = name;
    entries_[n].fn = fn;
    count_.store(n + 1, std::memory_order_release);
  }

  std::size_t size() const { return count_.load(std::memory_order_acquire); }

  const char* name(std::size_t i) const { return entries_[i].name; }
  PoolStats stats(std::size_t i) const { return entries_[i].fn(); }

  /// Fold every registered pool into one occupancy gauge pair.
  PoolStats totals() const {
    PoolStats out;
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      const PoolStats s = entries_[i].fn();
      out.allocated += s.allocated;
      out.parked_global += s.parked_global;
    }
    return out;
  }

 private:
  struct Entry {
    const char* name = nullptr;
    StatFn fn = nullptr;
  };

  PoolDirectory() : entries_(ActionRegistry::kMaxActions) {}

  std::mutex mutex_;
  std::vector<Entry> entries_;
  std::atomic<std::uint32_t> count_{0};
};

struct Payload {
  virtual ~Payload() = default;

  // Copies never inherit the source's pool linkage: a copy is a distinct
  // allocation with its own recycling route (set by whoever allocates it).
  Payload(const Payload& other) : tag_(other.tag_) {}
  Payload& operator=(const Payload& other) {
    tag_ = other.tag_;
    return *this;
  }

  /// Dense tag of this payload's concrete type; index into dispatch
  /// tables. Set at construction, no virtual call needed to read it.
  ActionId tag() const { return tag_; }

  /// Encoded size of this message in bits, per the paper's accounting
  /// (numbers cost ceil(log2 range) bits; see common/bits.hpp). Sampled
  /// once at send time and cached in the network envelope.
  virtual std::uint64_t size_bits() const = 0;

  /// Human-readable action name, used for diagnostics.
  virtual const char* name() const = 0;

  /// Byte-exact wire encoding of this payload's body (the frame tag is
  /// written by encode_frame). Pure virtual: every payload type must ship
  /// a real encoder, so the wire format is exhaustive by construction.
  virtual void encode(wire::WireWriter& w) const = 0;

  /// Tag metrics attribute this message to. Wrapper payloads (RouteHop,
  /// VertexMsg) forward to the payload they carry, so per-type counters
  /// charge the logical action rather than the transport envelope.
  virtual ActionId metrics_tag() const { return tag_; }

  /// Deep copy of this payload (pool-allocated). The reliable transport
  /// retains a clone of every tracked message so timeouts can retransmit
  /// it; Action<T> derives the implementation from T's copy constructor,
  /// so wrapper payloads holding a nested PayloadPtr only need a copy
  /// constructor that clones the carried payload (see overlay::RouteHop).
  virtual PayloadPtr clone_payload() const = 0;

 protected:
  explicit Payload(ActionId tag) : tag_(tag) {}

 private:
  friend struct PayloadDeleter;
  template <class T>
  friend class PayloadPool;

  ActionId tag_;
  /// Non-null iff this instance came from a PayloadPool.
  void (*recycle_)(Payload*) = nullptr;
};

/// The dense tag of payload type T; registers T (name + decoder) on first
/// use. The function-local static makes first-use registration race-free;
/// the registry's mutex serializes distinct types registering concurrently.
template <class T>
ActionId action_tag_of() {
  static const ActionId id = ActionRegistry::instance().intern(
      T::kActionName,
      +[](wire::WireReader& r) -> PayloadPtr { return T::decode(r); });
  return id;
}

/// CRTP base wiring a concrete payload type to the registry: stamps the
/// type's tag into every instance and derives name() from T::kActionName.
template <class T>
struct Action : Payload {
  Action() : Payload(action_tag_of<T>()) {}
  const char* name() const override { return T::kActionName; }
  PayloadPtr clone_payload() const override {
    if constexpr (std::is_copy_constructible_v<T>) {
      return PayloadPool<T>::make(static_cast<const T&>(*this));
    } else {
      SKS_CHECK_MSG(false, "payload type '" << T::kActionName
                           << "' is not copy-constructible; it cannot be "
                              "sent over the reliable transport");
      return nullptr;  // unreachable
    }
  }
};

/// Per-type freelist of payload storage. Blocks are raw storage between
/// uses (the object is destroyed on release, placement-constructed on
/// acquire), so payload state never leaks across messages.
///
/// Two levels keep the guarantee under the sharded executor: each thread
/// owns a private freelist (no synchronization on make/recycle — the
/// steady-state path is identical to the single-threaded pool), and a
/// mutex-protected global overflow list rebalances blocks between threads
/// in batches. A block allocated on one thread and recycled on another
/// migrates through the overflow list; the steady-state block population
/// is bounded by the live peak plus kLocalCap per thread, so a warmed-up
/// run performs zero heap allocations on every thread.
template <class T>
class PayloadPool {
 public:
  template <class... Args>
  static Owned<T> make(Args&&... args) {
    Freelist& fl = freelist();
    void* mem = acquire(fl);
    T* p;
    try {
      p = new (mem) T(std::forward<Args>(args)...);
    } catch (...) {
      fl.blocks.push_back(mem);
      throw;
    }
    p->recycle_ = &PayloadPool::recycle;
    return Owned<T>(p);
  }

  /// Blocks currently parked in this thread's freelist plus the shared
  /// overflow list (diagnostics/tests).
  static std::size_t free_blocks() {
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    return freelist().blocks.size() + g.blocks.size();
  }

  /// Occupancy gauges for the pool directory: reads only the static
  /// atomics, never the lists, so it is callable from any thread at any
  /// time (telemetry samples mid-run).
  static PoolStats stats() {
    return PoolStats{allocated_.load(std::memory_order_relaxed),
                     parked_global_.load(std::memory_order_relaxed)};
  }

 private:
  /// Per-thread freelist bound; beyond it a batch spills to the global
  /// overflow list so blocks stranded on a mostly-recycling thread flow
  /// back to the allocating threads.
  static constexpr std::size_t kLocalCap = 256;
  static constexpr std::size_t kBatch = 128;

  /// Shared overflow list. Owns its parked blocks; per-thread freelists
  /// flush here on thread exit (thread-local destructors run before
  /// static-duration destructors, so the global outlives every freelist).
  struct Global {
    std::mutex mu;
    std::vector<void*> blocks;
    Global() {
      PoolDirectory::instance().register_pool(T::kActionName,
                                              &PayloadPool::stats);
    }
    ~Global() {
      for (void* b : blocks) ::operator delete(b);
    }
  };

  struct Freelist {
    // Touch the global first so it is constructed (and therefore
    // destroyed) before/after every per-thread freelist respectively.
    Freelist() { (void)global(); }
    std::vector<void*> blocks;
    ~Freelist() {
      Global& g = global();
      std::lock_guard<std::mutex> lock(g.mu);
      g.blocks.insert(g.blocks.end(), blocks.begin(), blocks.end());
      parked_global_.fetch_add(blocks.size(), std::memory_order_relaxed);
    }
  };

  static void recycle(Payload* base) {
    T* p = static_cast<T*>(base);
    p->~T();
    Freelist& fl = freelist();
    fl.blocks.push_back(p);
    if (fl.blocks.size() > kLocalCap) [[unlikely]] {
      Global& g = global();
      std::lock_guard<std::mutex> lock(g.mu);
      g.blocks.insert(g.blocks.end(),
                      fl.blocks.end() - static_cast<std::ptrdiff_t>(kBatch),
                      fl.blocks.end());
      fl.blocks.resize(fl.blocks.size() - kBatch);
      parked_global_.fetch_add(kBatch, std::memory_order_relaxed);
    }
  }

  static void* acquire(Freelist& fl) {
    if (!fl.blocks.empty()) [[likely]] {
      void* mem = fl.blocks.back();
      fl.blocks.pop_back();
      return mem;
    }
    Global& g = global();
    {
      std::lock_guard<std::mutex> lock(g.mu);
      if (!g.blocks.empty()) {
        const std::size_t take = std::min(kBatch, g.blocks.size());
        fl.blocks.insert(fl.blocks.end(), g.blocks.end() - static_cast<std::ptrdiff_t>(take),
                         g.blocks.end());
        g.blocks.resize(g.blocks.size() - take);
        parked_global_.fetch_sub(take, std::memory_order_relaxed);
      }
    }
    if (!fl.blocks.empty()) {
      void* mem = fl.blocks.back();
      fl.blocks.pop_back();
      return mem;
    }
    allocated_.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(sizeof(T));
  }

  static Global& global() {
    static Global g;
    return g;
  }

  static Freelist& freelist() {
    thread_local Freelist fl;
    return fl;
  }

  // Directory-visible gauges; trivially destructible so StatFn reads
  // stay valid through static destruction.
  static inline std::atomic<std::uint64_t> allocated_{0};
  static inline std::atomic<std::uint64_t> parked_global_{0};
};

/// Allocate a payload from its type's pool. Drop-in replacement for the
/// former std::make_unique<T>() on every send path.
template <class T, class... Args>
Owned<T> make_payload(Args&&... args) {
  return PayloadPool<T>::make(std::forward<Args>(args)...);
}

inline void PayloadDeleter::operator()(Payload* p) const {
  if (p->recycle_ != nullptr) {
    p->recycle_(p);
  } else {
    delete p;
  }
}

/// Serialize one payload into a self-describing, integrity-checked frame:
/// [gamma(tag)][body...][pad to byte][crc32c]. Envelope payloads
/// (RouteHop, VertexMsg) recursively frame-tag the payload they carry.
/// The 4-byte CRC32C trailer covers the whole padded frame, so a receiver
/// detects corruption instead of mis-decoding; it is transport framing,
/// not body, for the wire-measurement accounting (wire::kCrcTrailerBits).
inline void encode_frame(const Payload& p, wire::WireWriter& w) {
  w.gamma(p.tag());
  w.note_frame_header_end();
  p.encode(w);
  w.finish();
  w.append_crc32c();
}

/// Inverse of encode_frame: rejects checksum mismatches, unknown tags,
/// truncated buffers and nonzero padding with a catchable CheckFailure.
inline PayloadPtr decode_frame(wire::WireReader& r) {
  r.verify_crc32c_trailer();
  const std::uint64_t tag = r.gamma();
  SKS_CHECK_MSG(tag <= 0xffffffffull, "wire: action tag out of range");
  PayloadPtr p = ActionRegistry::instance().decode(
      static_cast<ActionId>(tag), r);
  r.finish();
  return p;
}

}  // namespace sks::sim
