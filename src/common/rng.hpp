// Deterministic, seedable random number generation.
//
// Every stochastic choice in the system (overlay labels, DHT keys, KSelect
// sampling, asynchronous delivery delays) draws from an explicitly seeded
// Rng so that simulations, tests and benchmarks are exactly reproducible.
#pragma once

#include <cstdint>
#include <array>

#include "common/check.hpp"

namespace sks {

/// SplitMix64 step: the standard 64-bit finalizer-based generator, used
/// both for seeding and as a stateless mixing function.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t below(std::uint64_t bound) {
    SKS_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    SKS_CHECK(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool flip(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return unit() < p;
  }

  /// Derive an independent child generator; useful for giving each node
  /// its own stream without sharing state.
  Rng fork() { return Rng(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace sks
