// Position-interval algebra.
//
// Skeap's anchor assigns every heap operation a pair (p, pos) by carving
// contiguous position intervals out of per-priority ranges (Section 3.2.2)
// and then recursively decomposing them down the aggregation tree (Section
// 3.2.3). Seap reuses the same decomposition for its [1,k] DeleteMin
// interval (Section 5.2). This header provides the exact carving
// primitives: closed intervals, priority-tagged span lists, and delete
// assignments that may include ⊥ ("heap was empty") slots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "common/wire.hpp"

namespace sks {

/// Closed interval [lo, hi] of 1-based positions; empty iff lo > hi.
/// Matches the paper's convention |[first, last]| = last - first + 1.
struct Interval {
  Position lo = 1;
  Position hi = 0;

  static Interval empty_interval() { return Interval{1, 0}; }

  bool empty() const { return lo > hi; }

  std::uint64_t cardinality() const { return empty() ? 0 : hi - lo + 1; }

  bool contains(Position p) const { return !empty() && lo <= p && p <= hi; }

  friend bool operator==(const Interval&, const Interval&) = default;

  /// Remove and return the first `count` positions (or fewer if not
  /// available). Mutates this interval to the remainder.
  Interval take_front(std::uint64_t count) {
    if (empty() || count == 0) return empty_interval();
    const std::uint64_t take = count < cardinality() ? count : cardinality();
    Interval front{lo, lo + take - 1};
    lo += take;
    return front;
  }

  /// Wire layout: 1 flag bit for the canonical empty {1, 0}; otherwise
  /// lo and the length as varints (delta-packed, exact mod 2^64 so even
  /// non-canonical empties lo = hi + 1 round-trip).
  void encode(wire::WireWriter& w) const {
    const bool canonical_empty = lo == 1 && hi == 0;
    w.boolean(canonical_empty);
    if (!canonical_empty) w.interval(lo, hi);
  }

  static Interval decode(wire::WireReader& r) {
    if (r.boolean()) return empty_interval();
    const auto iv = r.interval();
    return Interval{iv.lo, iv.hi};
  }
};

inline std::string to_string(const Interval& iv) {
  if (iv.empty()) return "[]";
  return "[" + std::to_string(iv.lo) + "," + std::to_string(iv.hi) + "]";
}

/// A contiguous run of positions inside priority class `prio`.
struct PrioritySpan {
  Priority prio = 0;
  Interval iv;

  friend bool operator==(const PrioritySpan&, const PrioritySpan&) = default;
};

/// An ordered list of priority-tagged spans. Order is semantic: it is the
/// order in which positions are consumed when carving (most-prioritized
/// first for deletes, batch order for decomposition).
class SpanList {
 public:
  SpanList() = default;

  void push_back(Priority prio, Interval iv) {
    if (iv.empty()) return;
    if (!spans_.empty() && spans_.back().prio == prio &&
        spans_.back().iv.hi + 1 == iv.lo) {
      spans_.back().iv.hi = iv.hi;  // coalesce adjacent runs
      return;
    }
    spans_.push_back(PrioritySpan{prio, iv});
  }

  void append(const SpanList& other) {
    for (const auto& s : other.spans_) push_back(s.prio, s.iv);
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& s : spans_) t += s.iv.cardinality();
    return t;
  }

  bool empty() const { return spans_.empty(); }

  const std::vector<PrioritySpan>& spans() const { return spans_; }

  /// Carve the first `count` positions into a new SpanList, preserving
  /// span order; mutates this list to the remainder. Returns fewer than
  /// `count` positions only if the list runs out.
  SpanList take_front(std::uint64_t count) {
    SpanList front;
    std::size_t consumed = 0;
    for (auto& s : spans_) {
      if (count == 0) break;
      Interval taken = s.iv.take_front(count);
      count -= taken.cardinality();
      front.push_back(s.prio, taken);
      if (s.iv.empty()) ++consumed;
    }
    spans_.erase(spans_.begin(),
                 spans_.begin() + static_cast<std::ptrdiff_t>(consumed));
    return front;
  }

  friend bool operator==(const SpanList&, const SpanList&) = default;

  /// Wire layout: span count, then (prio - 1, interval) per span. Spans
  /// are written verbatim (decode bypasses push_back's coalescing so the
  /// re-encoded bytes match the original exactly).
  void encode(wire::WireWriter& w) const {
    w.gamma(spans_.size());
    for (const auto& s : spans_) {
      SKS_CHECK_MSG(s.prio >= 1, "span priority must be 1-based");
      w.gamma(s.prio - 1);
      s.iv.encode(w);
    }
  }

  static SpanList decode(wire::WireReader& r) {
    SpanList out;
    const std::uint64_t count = r.gamma();
    out.spans_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const Priority prio = r.gamma() + 1;
      out.spans_.push_back(PrioritySpan{prio, Interval::decode(r)});
    }
    return out;
  }

 private:
  std::vector<PrioritySpan> spans_;
};

inline std::string to_string(const SpanList& sl) {
  std::string out = "{";
  bool first = true;
  for (const auto& s : sl.spans()) {
    if (!first) out += ", ";
    first = false;
    out += "p" + std::to_string(s.prio) + ":" + to_string(s.iv);
  }
  return out + "}";
}

/// The positions handed to a group of DeleteMin() requests: real (p, pos)
/// spans first, then `bottoms` requests that receive ⊥ because the heap
/// ran out of elements (Definition 1.2 property (2) still holds: ⊥ is
/// returned only when nothing is left).
struct DeleteAssignment {
  SpanList spans;
  std::uint64_t bottoms = 0;

  std::uint64_t total() const { return spans.total() + bottoms; }

  /// Carve the assignment for the first `count` deletes, preserving the
  /// rule that real positions are consumed before ⊥ slots.
  DeleteAssignment take_front(std::uint64_t count) {
    DeleteAssignment front;
    front.spans = spans.take_front(count);
    const std::uint64_t got = front.spans.total();
    SKS_CHECK(got <= count);
    const std::uint64_t need_bottoms = count - got;
    front.bottoms = need_bottoms < bottoms ? need_bottoms : bottoms;
    bottoms -= front.bottoms;
    return front;
  }

  friend bool operator==(const DeleteAssignment&,
                         const DeleteAssignment&) = default;

  void encode(wire::WireWriter& w) const {
    spans.encode(w);
    w.gamma(bottoms);
  }

  static DeleteAssignment decode(wire::WireReader& r) {
    DeleteAssignment out;
    out.spans = SpanList::decode(r);
    out.bottoms = r.gamma();
    return out;
  }
};

/// Per-priority insert intervals for one batch entry: intervals[p] is the
/// run of fresh positions for the entry's inserts of priority p.
/// Priorities are 1-based as in the paper (P = {1, ..., c}).
class InsertAssignment {
 public:
  InsertAssignment() = default;
  explicit InsertAssignment(std::size_t num_priorities)
      : intervals_(num_priorities + 1, Interval::empty_interval()) {}

  std::size_t num_priorities() const {
    return intervals_.empty() ? 0 : intervals_.size() - 1;
  }

  Interval& at(Priority p) {
    SKS_CHECK_MSG(p >= 1 && p < intervals_.size(), "priority " << p);
    return intervals_[static_cast<std::size_t>(p)];
  }
  const Interval& at(Priority p) const {
    SKS_CHECK_MSG(p >= 1 && p < intervals_.size(), "priority " << p);
    return intervals_[static_cast<std::size_t>(p)];
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& iv : intervals_) t += iv.cardinality();
    return t;
  }

  /// Carve, per priority, the first counts[p] positions.
  InsertAssignment take_front(const std::vector<std::uint64_t>& counts) {
    InsertAssignment front(num_priorities());
    for (Priority p = 1; p <= num_priorities(); ++p) {
      const auto idx = static_cast<std::size_t>(p);
      const std::uint64_t want = idx < counts.size() ? counts[idx] : 0;
      front.at(p) = at(p).take_front(want);
      SKS_CHECK_MSG(front.at(p).cardinality() == want,
                    "insert interval underflow at priority " << p);
    }
    return front;
  }

  friend bool operator==(const InsertAssignment&,
                         const InsertAssignment&) = default;

  /// Wire layout: priority count, then one interval per priority (slot 0
  /// is the unused 1-based pad and is not sent). A default-constructed
  /// (zero-priority) assignment encodes as count 0.
  void encode(wire::WireWriter& w) const {
    w.gamma(num_priorities());
    for (Priority p = 1; p <= num_priorities(); ++p) at(p).encode(w);
  }

  static InsertAssignment decode(wire::WireReader& r) {
    const std::uint64_t num = r.gamma();
    if (num == 0) return InsertAssignment();
    InsertAssignment out(num);
    for (Priority p = 1; p <= num; ++p) out.at(p) = Interval::decode(r);
    return out;
  }

 private:
  std::vector<Interval> intervals_;  // index 0 unused; priorities 1-based
};

}  // namespace sks
