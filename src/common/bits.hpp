// Message-size accounting in bits.
//
// The paper's complexity claims are stated in message *bits* (e.g. Skeap
// messages are O(Λ log² n) bits, Seap and KSelect messages O(log n) bits).
// Every simulator payload reports its encoded size through these helpers so
// benchmarks E3/E6/E8 can measure exactly what the theorems bound: numbers
// are charged ceil(log2(range)) bits, just as in the paper's encoding
// arguments (Lemma 3.8: "each entry is a number in O(n), so it has to be
// encoded via O(log n) bits").
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>

namespace sks {

/// Bits needed to encode a value drawn from [0, max_value], at least 1.
constexpr std::uint64_t bits_for_max(std::uint64_t max_value) {
  return max_value == 0
             ? 1
             : static_cast<std::uint64_t>(std::bit_width(max_value));
}

/// Bits needed to encode this specific value (its own magnitude).
constexpr std::uint64_t bits_for_value(std::uint64_t value) {
  return bits_for_max(value);
}

/// Bits for a count of items each of fixed width.
constexpr std::uint64_t bits_for_items(std::size_t count,
                                       std::uint64_t bits_each) {
  return static_cast<std::uint64_t>(count) * bits_each;
}

/// Conventional widths used throughout the simulation. A real deployment
/// would size these to the live system; the simulator uses the paper's
/// asymptotic accounting with n and m up to 2^48.
struct Widths {
  std::uint64_t node_id_bits;    ///< log n
  std::uint64_t priority_bits;   ///< log |P| = q log n for Seap
  std::uint64_t position_bits;   ///< log m
  std::uint64_t counter_bits;    ///< log(poly(n)) counters

  static Widths for_system(std::uint64_t n, std::uint64_t max_priority,
                           std::uint64_t max_elements) {
    return Widths{bits_for_max(n), bits_for_max(max_priority),
                  bits_for_max(max_elements), bits_for_max(max_elements)};
  }
};

}  // namespace sks
