// Lightweight always-on invariant checking.
//
// Protocol code asserts structural invariants (interval algebra, tree
// shape, state-machine phases) with SKS_CHECK; violations throw so tests
// can assert on them and the simulator never continues from a corrupt
// state. These stay enabled in release builds: the simulator is the
// product, and silent corruption would invalidate every measurement.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sks {

class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "SKS_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace sks

#define SKS_CHECK(expr)                                          \
  do {                                                           \
    if (!(expr)) ::sks::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define SKS_CHECK_MSG(expr, msg)                                 \
  do {                                                           \
    if (!(expr)) {                                               \
      std::ostringstream sks_os_;                                \
      sks_os_ << msg;                                            \
      ::sks::check_failed(#expr, __FILE__, __LINE__, sks_os_.str()); \
    }                                                            \
  } while (0)
