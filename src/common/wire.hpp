// Byte-exact wire encoding primitives.
//
// Every payload in the system serializes through WireWriter/WireReader so
// the paper's bit-complexity accounting (`size_bits()`) can be checked
// against a real encoding, and so the protocol code can later run over a
// socket transport unchanged. The format is bit-granular: fields are
// appended MSB-first into a caller-owned byte buffer, padded to a whole
// byte only when a frame is finished.
//
// Primitive menu (see DESIGN.md "Wire format"):
//  * bits(v, w)     — raw w-bit field, for values with a known fixed width
//  * leb(v)         — LEB128 varint at bit granularity (7 value bits + 1
//                     continuation bit per group), for ids and counters
//  * zz64(x)        — zigzag-64 then LEB, for u64s that cluster near 0 or
//                     near 2^64 (sentinels like kNoNode, kMaxKey)
//  * gamma(v)       — Elias gamma of v+1, for tags, enums and tiny counts
//                     (cost 2*floor(log2(v+1))+1 bits; 1 bit for v = 0)
//  * interval       — delta-packed [lo, hi]: zz(lo) then zz(hi - lo + 1),
//                     exact for every representable interval including the
//                     canonical empty {1, 0} (length encodes as zz(0))
//
// Truncated or corrupt input raises sks::CheckFailure (catchable), never
// undefined behaviour: the reader refuses to run past the buffer end.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace sks::wire {

namespace detail {

/// Byte-at-a-time CRC32C (Castagnoli, reflected polynomial 0x82F63B78)
/// lookup table, generated at compile time. Software-only on purpose: the
/// simulator needs a portable, deterministic check, not throughput.
inline constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? (c >> 1) ^ 0x82F63B78u : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable =
    make_crc32c_table();

}  // namespace detail

/// CRC32C over a byte range. Used as the frame integrity trailer: CRC32C
/// has Hamming distance 4 over any frame length this repo produces, so
/// every 1-, 2- and 3-bit corruption of a frame is detected; random
/// corruption slips through with probability 2^-32.
inline std::uint32_t crc32c(const std::uint8_t* data, std::size_t n) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ detail::kCrc32cTable[(crc ^ data[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

/// Width of the frame integrity trailer appended by append_crc32c() /
/// consumed by verify_crc32c_trailer(). Counted as transport framing (not
/// payload body) in the wire-measurement metrics.
inline constexpr std::uint32_t kCrcTrailerBits = 32;

/// Appends bit-granular fields to a caller-owned byte vector. The writer
/// never shrinks the buffer's capacity, so a pool-recycled scratch vector
/// reaches a steady state with no hot-path allocation.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& buf) : buf_(buf) {
    buf_.clear();
  }

  /// Append the low `width` bits of `v`, MSB first. width in [0, 64].
  void bits(std::uint64_t v, std::uint32_t width) {
    SKS_CHECK_MSG(width <= 64, "wire: field wider than 64 bits");
    for (std::uint32_t i = width; i-- > 0;) {
      push_bit((v >> i) & 1u);
    }
  }

  /// LEB128 varint, 8 bits per group (7 value + 1 continuation), written
  /// at bit granularity (no byte alignment between fields).
  void leb(std::uint64_t v) {
    do {
      std::uint64_t group = v & 0x7f;
      v >>= 7;
      bits(group | (v != 0 ? 0x80u : 0x00u), 8);
    } while (v != 0);
  }

  /// Zigzag-64 then LEB: maps x near 0 and near 2^64 to short varints.
  void zz64(std::uint64_t x) {
    const std::uint64_t s = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(x) >> 63);
    leb((x << 1) ^ s);
  }

  /// Elias gamma of v + 1: floor(log2(v+1)) zero bits, then v + 1 in
  /// binary. Encodes v = 0 in a single bit — ideal for tags and enums.
  void gamma(std::uint64_t v) {
    SKS_CHECK_MSG(v != ~0ull, "wire: gamma overflow");
    const std::uint64_t n = v + 1;
    std::uint32_t w = 0;
    // w = floor(log2(n)), capped so the shift below stays defined: n is
    // 64-bit, so w maxes out at 63 (n >> 64 would be UB, not 0).
    while (w < 63 && (n >> (w + 1)) != 0) ++w;
    bits(0, w);
    bits(n, w + 1);
  }

  /// Total-domain gamma: like gamma() but also admits ~0 via a reserved
  /// 65-bit escape (64 zeros, then the terminating 1). Use for fields
  /// that are usually tiny but may hold an all-ones sentinel.
  void gammau(std::uint64_t v) {
    if (v == ~0ull) {
      bits(0, 64);
      bits(1, 1);
      return;
    }
    gamma(v);
  }

  /// Elias delta of v + 1: gamma of the bit length, then the value with
  /// its implicit leading 1 dropped. Cheaper than gamma beyond ~4 bits
  /// (a b-bit value costs b + 2 log b instead of 2b). Total: v = ~0
  /// escapes via the out-of-range length 64.
  void delta(std::uint64_t v) {
    if (v == ~0ull) {
      gamma(64);
      return;
    }
    const std::uint64_t x = v + 1;
    std::uint32_t len = 0;
    // len = floor(log2(x)), capped at 63 (see gamma; x >> 64 is UB).
    while (len < 63 && (x >> (len + 1)) != 0) ++len;
    gamma(len);
    bits(x, len);  // low len bits; the leading 1 is implicit
  }

  /// Zigzag then Elias gamma: a signed-ish delta near 0 costs 1–3 bits.
  void gamma_zz(std::uint64_t x) {
    const std::uint64_t s = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(x) >> 63);
    gamma((x << 1) ^ s);
  }

  void boolean(bool b) { push_bit(b ? 1u : 0u); }

  /// Closed interval [lo, hi] with the empty convention lo = hi + 1:
  /// zz(lo) then zz(hi - lo + 1). Exact mod 2^64 for any (lo, hi) pair.
  void interval(std::uint64_t lo, std::uint64_t hi) {
    zz64(lo);
    zz64(hi - lo + 1);
  }

  /// Mark the end of the outer frame header (after the outer action tag):
  /// everything before this is transport framing, everything after up to
  /// the inner split is envelope payload. Used for metrics attribution.
  void note_frame_header_end() { frame_header_end_ = bit_count_; }

  /// Mark the start of the innermost (logical) payload body, called by
  /// envelope encoders (RouteHop/VertexMsg) right before encoding the
  /// carried payload. Absent for non-envelope payloads.
  void note_inner_start() { inner_start_ = bit_count_; }

  std::uint64_t bit_count() const { return bit_count_; }
  std::uint64_t frame_header_end() const { return frame_header_end_; }
  /// 0 when no envelope marked an inner split.
  std::uint64_t inner_start() const { return inner_start_; }

  /// Pad to a whole byte. Call exactly once, after the last field.
  void finish() {
    while ((bit_count_ % 8) != 0) push_bit(0);
  }

  /// Append the CRC32C of every byte written so far as a 4-byte
  /// big-endian trailer. Call after finish(): the trailer must start (and
  /// end) byte-aligned so the protected region is a whole-byte prefix.
  void append_crc32c() {
    SKS_CHECK_MSG((bit_count_ % 8) == 0, "wire: crc trailer before finish");
    bits(crc32c(buf_.data(), buf_.size()), kCrcTrailerBits);
  }

 private:
  void push_bit(std::uint64_t b) {
    const std::size_t byte = static_cast<std::size_t>(bit_count_ / 8);
    if (byte == buf_.size()) buf_.push_back(0);
    if (b != 0) {
      buf_[byte] = static_cast<std::uint8_t>(
          buf_[byte] | (0x80u >> (bit_count_ % 8)));
    }
    ++bit_count_;
  }

  std::vector<std::uint8_t>& buf_;
  std::uint64_t bit_count_ = 0;
  std::uint64_t frame_header_end_ = 0;
  std::uint64_t inner_start_ = 0;
};

/// Reads bit-granular fields back out of a byte buffer. Every read is
/// bounds-checked: running past the end raises CheckFailure.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), bit_limit_(static_cast<std::uint64_t>(size) * 8) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  std::uint64_t bits(std::uint32_t width) {
    SKS_CHECK_MSG(width <= 64, "wire: field wider than 64 bits");
    std::uint64_t v = 0;
    for (std::uint32_t i = 0; i < width; ++i) {
      v = (v << 1) | pull_bit();
    }
    return v;
  }

  std::uint64_t leb() {
    std::uint64_t v = 0;
    std::uint32_t shift = 0;
    for (;;) {
      const std::uint64_t group = bits(8);
      SKS_CHECK_MSG(shift < 64, "wire: varint overlong");
      v |= (group & 0x7f) << shift;
      if ((group & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  std::uint64_t zz64() {
    const std::uint64_t z = leb();
    return (z >> 1) ^ (~(z & 1) + 1);
  }

  std::uint64_t gamma() {
    std::uint32_t w = 0;
    while (bits(1) == 0) {
      // < 63: a 64-zero prefix is the gammau escape, invalid in plain
      // gamma — and n << 64 below would be UB anyway.
      SKS_CHECK_MSG(w < 63, "wire: gamma runaway");
      ++w;
    }
    std::uint64_t n = 1;
    if (w > 0) n = (n << w) | bits(w);
    return n - 1;
  }

  std::uint64_t gammau() {
    std::uint32_t w = 0;
    while (bits(1) == 0) {
      SKS_CHECK_MSG(w < 64, "wire: gamma runaway");
      ++w;
    }
    if (w == 64) return ~0ull;
    std::uint64_t n = 1;
    if (w > 0) n = (n << w) | bits(w);
    return n - 1;
  }

  std::uint64_t delta() {
    const std::uint64_t len = gamma();
    if (len == 64) return ~0ull;
    SKS_CHECK_MSG(len < 64, "wire: delta length out of range");
    const std::uint64_t x =
        (std::uint64_t{1} << len) | bits(static_cast<std::uint32_t>(len));
    return x - 1;
  }

  std::uint64_t gamma_zz() {
    const std::uint64_t z = gamma();
    return (z >> 1) ^ (~(z & 1) + 1);
  }

  bool boolean() { return bits(1) != 0; }

  struct Iv {
    std::uint64_t lo;
    std::uint64_t hi;
  };
  Iv interval() {
    const std::uint64_t lo = zz64();
    const std::uint64_t len = zz64();
    return Iv{lo, lo + len - 1};
  }

  std::uint64_t bit_pos() const { return bit_pos_; }
  std::uint64_t bits_remaining() const { return bit_limit_ - bit_pos_; }

  /// Verify and strip the CRC32C trailer: the final 4 bytes of the buffer
  /// must equal the CRC32C of everything before them. Call before the
  /// first field read; on success the readable window shrinks to the
  /// protected region so finish() audits the real frame padding. A short
  /// buffer or a mismatch raises CheckFailure, like any other corruption.
  void verify_crc32c_trailer() {
    SKS_CHECK_MSG(bit_pos_ == 0, "wire: crc check after reads started");
    SKS_CHECK_MSG((bit_limit_ % 8) == 0 &&
                      bit_limit_ >= 8 + kCrcTrailerBits,
                  "wire: frame too short for crc trailer");
    const std::size_t body = static_cast<std::size_t>(bit_limit_ / 8) - 4;
    const std::uint32_t stored = (std::uint32_t{data_[body]} << 24) |
                                 (std::uint32_t{data_[body + 1]} << 16) |
                                 (std::uint32_t{data_[body + 2]} << 8) |
                                 std::uint32_t{data_[body + 3]};
    SKS_CHECK_MSG(stored == crc32c(data_, body),
                  "wire: frame crc mismatch");
    bit_limit_ = static_cast<std::uint64_t>(body) * 8;
  }

  /// After the last field: only zero padding (< 8 bits) may remain.
  void finish() {
    SKS_CHECK_MSG(bits_remaining() < 8, "wire: trailing bytes after frame");
    while (bit_pos_ < bit_limit_) {
      SKS_CHECK_MSG(pull_bit() == 0, "wire: nonzero frame padding");
    }
  }

 private:
  std::uint64_t pull_bit() {
    SKS_CHECK_MSG(bit_pos_ < bit_limit_, "wire: truncated buffer");
    const std::uint64_t b =
        (data_[bit_pos_ / 8] >> (7 - (bit_pos_ % 8))) & 1u;
    ++bit_pos_;
    return b;
  }

  const std::uint8_t* data_;
  std::uint64_t bit_limit_;
  std::uint64_t bit_pos_ = 0;
};

}  // namespace sks::wire
