// Core domain types shared by every module of the Skeap/Seap reproduction.
//
// Positions, priorities and DHT points are all 64-bit integers. Points live
// in the fixed-point unit interval [0, 2^64) so overlay labels (the paper's
// real-valued labels in [0,1)) are exact and portable: the paper's
// l(v) = m(v)/2 and r(v) = (m(v)+1)/2 become m/2 and m/2 + 2^63.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <optional>
#include <string>

#include "common/wire.hpp"

namespace sks {

/// Index of a real node (process) in the simulated system.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Priority of a heap element. Smaller value = higher priority (min-heap),
/// exactly as in the paper where DeleteMin() retrieves the minimum.
using Priority = std::uint64_t;

/// Unique identifier of a heap element; used as the tiebreaker that turns
/// the priority order into the total order on elements (Section 1.2).
using ElementId = std::uint64_t;

/// A point on the overlay's unit cycle [0,1), represented in fixed point:
/// the real value is Point / 2^64.
using Point = std::uint64_t;

/// A 1-based position inside a per-priority interval (Skeap Phase 2) or the
/// [1,k] DeleteMin interval (Seap).
using Position = std::uint64_t;

/// A heap element: payload-free for the simulation, identified by its
/// priority plus unique id.
struct Element {
  Priority prio = 0;
  ElementId id = 0;

  /// Total order on elements (Section 1.2): priority first, id tiebreaker.
  friend constexpr auto operator<=>(const Element&, const Element&) = default;

  /// Wire layout: gamma priority (tiny for Skeap's constant classes),
  /// Elias-delta id (ids are dense sequence numbers). Both codes admit
  /// the all-ones sentinels used by the key-space baselines.
  void encode(wire::WireWriter& w) const {
    w.gammau(prio);
    w.delta(id);
  }

  static Element decode(wire::WireReader& r) {
    Element e;
    e.prio = r.gammau();
    e.id = r.delta();
    return e;
  }
};

/// The key under which elements are compared in KSelect; identical layout
/// to Element but semantically "the total-order key".
using ElementKey = Element;

/// Outcome of an insert under admission control (node-level
/// max_buffered_ops caps). Without a cap this is always
/// {accepted=true, shed=nullopt}. When the buffer is full, `shed` names
/// the element sacrificed: either a previously buffered insert evicted
/// to make room (accepted=true) or the incoming element itself
/// (accepted=false). The shed element is rejected client-visibly — it
/// will never be returned by a DeleteMin.
struct AdmitResult {
  bool accepted = true;
  std::optional<Element> shed;
};

inline std::string to_string(const Element& e) {
  return "(" + std::to_string(e.prio) + "#" + std::to_string(e.id) + ")";
}

}  // namespace sks
