// The "publicly known pseudorandom hash function" h of the paper.
//
// Realized as a keyed SplitMix64-based mixing family: every party that
// knows the seed computes identical values, and outputs are uniform on the
// 64-bit fixed-point cycle [0, 2^64) that overlay labels live on.
//
// Used for:
//  * overlay labels m(v) = h(v.id)                        (Appendix A)
//  * Skeap DHT keys h(p, pos)                             (Section 3.2.4)
//  * Seap random insert keys and DeleteMin keys h(pos)    (Section 5)
//  * KSelect rendezvous keys h(i, j) = h(j, i)            (Section 4.3)
#pragma once

#include <cstdint>
#include <initializer_list>
#include <utility>

#include "common/types.hpp"

namespace sks {

/// Stateless keyed hash of one 64-bit word.
constexpr std::uint64_t hash_u64(std::uint64_t seed, std::uint64_t x) {
  std::uint64_t s = seed ^ (x + 0x9e3779b97f4a7c15ULL);
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// A named hash function instance, seeded once per simulated system so all
/// nodes agree ("publicly known").
class HashFunction {
 public:
  explicit HashFunction(std::uint64_t seed = 0xb1a5edULL) : seed_(seed) {}

  /// Hash an arbitrary sequence of words to a point on the unit cycle.
  Point point(std::initializer_list<std::uint64_t> words) const {
    std::uint64_t acc = seed_;
    for (std::uint64_t w : words) acc = hash_u64(acc, w);
    return acc;
  }

  Point point(std::uint64_t a) const { return point({a}); }
  Point point(std::uint64_t a, std::uint64_t b) const { return point({a, b}); }

  /// Symmetric pair hash: h(i, j) == h(j, i), required by KSelect Phase 2b
  /// so that copies c_{i,j} and c_{j,i} meet at the same node.
  Point symmetric_point(std::uint64_t i, std::uint64_t j) const {
    if (i > j) std::swap(i, j);
    return point({i, j});
  }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace sks
