// Baseline: a centralized coordinator heap.
//
// The contrast the paper's introduction draws: concurrent priority queues
// store the data structure "at a central instance", so every operation is
// one message to a coordinator that serializes them on a local heap. Round
// complexity per op is O(1) — but the coordinator's congestion grows as
// n·Λ, which is exactly what experiment E10 measures against Skeap/Seap's
// Õ(Λ) per-node congestion.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "runtime/cluster.hpp"
#include "sim/dispatch.hpp"
#include "sim/network.hpp"

namespace sks::baselines {

struct CentralInsert final : sim::Action<CentralInsert> {
  static constexpr const char* kActionName = "central.insert";
  Element element{};
  std::uint64_t size_bits() const override { return 64; }

  void encode(wire::WireWriter& w) const override { element.encode(w); }

  static sim::Owned<CentralInsert> decode(wire::WireReader& r) {
    auto m = sim::make_payload<CentralInsert>();
    m->element = Element::decode(r);
    return m;
  }
};

struct CentralDelete final : sim::Action<CentralDelete> {
  static constexpr const char* kActionName = "central.delete";
  std::uint64_t request_id = 0;
  std::uint64_t size_bits() const override { return 48; }

  void encode(wire::WireWriter& w) const override { w.delta(request_id); }

  static sim::Owned<CentralDelete> decode(wire::WireReader& r) {
    auto m = sim::make_payload<CentralDelete>();
    m->request_id = r.delta();
    return m;
  }
};

struct CentralReply final : sim::Action<CentralReply> {
  static constexpr const char* kActionName = "central.reply";
  std::uint64_t request_id = 0;
  bool has_element = false;
  Element element{};
  std::uint64_t size_bits() const override { return 64; }

  void encode(wire::WireWriter& w) const override {
    w.delta(request_id);
    w.boolean(has_element);
    if (has_element) element.encode(w);
  }

  static sim::Owned<CentralReply> decode(wire::WireReader& r) {
    auto m = sim::make_payload<CentralReply>();
    m->request_id = r.delta();
    m->has_element = r.boolean();
    if (m->has_element) m->element = Element::decode(r);
    return m;
  }
};

class CentralNode : public sim::DispatchingNode {
 public:
  using DeleteCallback = std::function<void(std::optional<Element>)>;

  explicit CentralNode(NodeId coordinator) : coordinator_(coordinator) {
    on<CentralInsert>([this](NodeId, sim::Owned<CentralInsert> m) {
      heap_.insert(m->element);
    });
    on<CentralDelete>([this](NodeId from, sim::Owned<CentralDelete> m) {
      auto rep = sim::make_payload<CentralReply>();
      rep->request_id = m->request_id;
      if (!heap_.empty()) {
        rep->has_element = true;
        rep->element = *heap_.begin();
        heap_.erase(heap_.begin());
      }
      send(from, std::move(rep));
    });
    on<CentralReply>([this](NodeId, sim::Owned<CentralReply> m) {
      auto it = callbacks_.find(m->request_id);
      SKS_CHECK(it != callbacks_.end());
      auto cb = std::move(it->second);
      callbacks_.erase(it);
      if (cb) {
        cb(m->has_element ? std::optional<Element>(m->element)
                          : std::nullopt);
      }
    });
  }

  void insert(const Element& e) {
    auto m = sim::make_payload<CentralInsert>();
    m->element = e;
    // Even the coordinator's own ops go through its channel so that the
    // serialization point (and its congestion) is honest.
    send(coordinator_, std::move(m));
  }

  void delete_min(DeleteCallback cb) {
    auto m = sim::make_payload<CentralDelete>();
    m->request_id = next_request_id_++;
    callbacks_.emplace(m->request_id, std::move(cb));
    // Even the coordinator's own deletes go through its channel so the
    // serialization point is honest.
    send(coordinator_, std::move(m));
  }

  std::size_t heap_size() const { return heap_.size(); }

 private:
  NodeId coordinator_;
  std::set<Element> heap_;  // coordinator only
  std::uint64_t next_request_id_ = 1;
  std::map<std::uint64_t, DeleteCallback> callbacks_;
};

/// Harness mirroring SkeapSystem's shape for the comparison benches.
/// CentralNode is a plain sim node — no overlay — so the Cluster's
/// topology/bootstrap paths compile out and only the shared network
/// construction and run-to-quiescence driving remain.
class CentralizedSystem {
 public:
  struct Options {
    std::size_t num_nodes = 8;
    std::uint64_t seed = 1;
    sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous;
  };

  struct Config {};  ///< the coordinator baseline has no tunables
  using Cluster = runtime::Cluster<CentralNode, Config>;

  static runtime::ClusterOptions cluster_options(const Options& opts) {
    runtime::ClusterOptions c;
    c.num_nodes = opts.num_nodes;
    c.seed = opts.seed;
    c.mode = opts.mode;
    return c;
  }

  explicit CentralizedSystem(const Options& opts)
      : cluster_(cluster_options(opts), [](std::size_t) { return Config{}; },
                 [](const overlay::RouteParams&, const Config&, std::size_t) {
                   return std::make_unique<CentralNode>(/*coordinator=*/0);
                 }) {}

  CentralNode& node(NodeId v) { return cluster_.node(v); }
  sim::Network& net() { return cluster_.net(); }

  Element insert(NodeId v, Priority prio) {
    const Element e{prio, next_element_id_++};
    node(v).insert(e);
    return e;
  }

  void delete_min(NodeId v, CentralNode::DeleteCallback cb = nullptr) {
    node(v).delete_min(std::move(cb));
  }

  std::uint64_t run() { return cluster_.run_until_idle(); }

 private:
  Cluster cluster_;
  ElementId next_element_id_ = 1;
};

}  // namespace sks::baselines
