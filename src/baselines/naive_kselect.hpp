// Baseline: k-selection by binary search over the priority domain.
//
// The textbook distributed approach: binary-search the value domain,
// counting |{e : e <= mid}| with one aggregation phase per probe. With
// priorities from {1, ..., n^q} this needs Θ(log |P|) = Θ(q log n)
// aggregation phases of Θ(log n) rounds each — total Θ(log|P|·log n),
// against KSelect's O(log n) (Theorem 4.2, experiment E11). Ties are
// resolved by a second search over element ids, preserving exactness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "aggregation/aggregator.hpp"
#include "aggregation/broadcast.hpp"
#include "common/check.hpp"
#include "common/types.hpp"
#include "overlay/overlay_node.hpp"

namespace sks::baselines {

struct ProbeStep {
  static constexpr const char* kName = "naive.probe";
  std::uint64_t session = 0;
  bool snapshot = false;  ///< first step: snapshot local elements
  Element pivot{};        ///< count elements <= pivot
  std::uint64_t size_bits() const { return 32 + 48; }

  void encode(wire::WireWriter& w) const {
    w.leb(session);
    w.boolean(snapshot);
    pivot.encode(w);
  }

  static ProbeStep decode(wire::WireReader& r) {
    ProbeStep s;
    s.session = r.leb();
    s.snapshot = r.boolean();
    s.pivot = Element::decode(r);
    return s;
  }
};

struct ProbeCount {
  static constexpr const char* kName = "naive.count";
  std::uint64_t count = 0;
  std::uint64_t size_bits() const { return 32; }

  void encode(wire::WireWriter& w) const { w.delta(count); }
  static ProbeCount decode(wire::WireReader& r) { return ProbeCount{r.delta()}; }
};

class NaiveKSelectComponent {
 public:
  using Provider = std::function<std::vector<Element>()>;
  using ResultFn =
      std::function<void(std::uint64_t session, std::optional<Element>)>;

  struct Config {
    Priority max_priority = ~0ULL >> 16;
    ElementId max_id = ~0ULL >> 16;
  };

  NaiveKSelectComponent(overlay::OverlayNode& host, Config cfg,
                        Provider provider, ResultFn on_result)
      : host_(host),
        cfg_(cfg),
        provider_(std::move(provider)),
        on_result_(std::move(on_result)),
        steps_(host,
               [this](std::uint64_t epoch, const ProbeStep& step) {
                 on_step(epoch, step);
               }),
        counts_(host,
                [](ProbeCount& a, const ProbeCount& b) { a.count += b.count; },
                [this](std::uint64_t epoch, const ProbeCount& total) {
                  on_count(epoch, total.count);
                }) {}

  /// Anchor only. Binary-searches for the k-th smallest element.
  void start(std::uint64_t session, std::uint64_t k) {
    SKS_CHECK(host_.hosts_anchor());
    Session& s = sessions_[session];
    s.k = k;
    s.lo = Element{0, 0};
    s.hi = Element{cfg_.max_priority, cfg_.max_id};
    ProbeStep step;
    step.session = session;
    step.snapshot = true;
    step.pivot = s.hi;  // first probe: count everything (gives m)
    steps_.broadcast(next_epoch(session), step);
  }

  std::uint64_t probes_used(std::uint64_t session) const {
    auto it = probes_.find(session);
    return it == probes_.end() ? 0 : it->second;
  }

 private:
  struct Session {
    std::uint64_t k = 0;
    Element lo{}, hi{};
    Element last_pivot{};
    bool sized = false;
    std::uint64_t m = 0;
  };

  std::uint64_t next_epoch(std::uint64_t session) {
    return session * 65536 + epoch_counter_[session]++;
  }

  void on_step(std::uint64_t epoch, const ProbeStep& step) {
    if (step.snapshot) {
      auto elems = provider_();
      std::sort(elems.begin(), elems.end());
      local_[step.session] = std::move(elems);
    }
    const auto& elems = local_.at(step.session);
    ProbeCount c;
    c.count = static_cast<std::uint64_t>(
        std::upper_bound(elems.begin(), elems.end(), step.pivot) -
        elems.begin());
    counts_.contribute(epoch, c);
  }

  void on_count(std::uint64_t epoch, std::uint64_t count) {
    const std::uint64_t session = epoch / 65536;
    Session& s = sessions_.at(session);
    ++probes_[session];

    if (!s.sized) {
      s.sized = true;
      s.m = count;
      if (s.k < 1 || s.k > s.m) {
        finish(session, std::nullopt);
        return;
      }
      probe(session);
      return;
    }

    // count = |{e <= mid}| for the previous pivot mid.
    if (count >= s.k) {
      s.hi = s.last_pivot;
    } else {
      s.lo = successor(s.last_pivot);
    }
    if (s.lo == s.hi) {
      finish(session, s.lo);
      return;
    }
    probe(session);
  }

  void probe(std::uint64_t session) {
    Session& s = sessions_.at(session);
    s.last_pivot = midpoint(s.lo, s.hi);
    ProbeStep step;
    step.session = session;
    step.pivot = s.last_pivot;
    steps_.broadcast(next_epoch(session), step);
  }

  void finish(std::uint64_t session, std::optional<Element> result) {
    sessions_.erase(session);
    if (on_result_) on_result_(session, result);
  }

  // Treat (prio, id) as one wide integer for the search arithmetic.
  static Element successor(const Element& e) {
    if (e.id == ~0ULL) return Element{e.prio + 1, 0};
    return Element{e.prio, e.id + 1};
  }

  Element midpoint(const Element& lo, const Element& hi) const {
    // Average of the flattened values; exact enough for a binary search
    // (always within (lo, hi]).
    const unsigned __int128 span = static_cast<unsigned __int128>(cfg_.max_id) + 1;
    const unsigned __int128 a =
        static_cast<unsigned __int128>(lo.prio) * span + lo.id;
    const unsigned __int128 b =
        static_cast<unsigned __int128>(hi.prio) * span + hi.id;
    const unsigned __int128 mid = a + (b - a) / 2;
    return Element{static_cast<Priority>(mid / span),
                   static_cast<ElementId>(mid % span)};
  }

  overlay::OverlayNode& host_;
  Config cfg_;
  Provider provider_;
  ResultFn on_result_;
  agg::Broadcaster<ProbeStep> steps_;
  agg::Aggregator<ProbeCount, ProbeCount> counts_;  // up-only

  std::map<std::uint64_t, Session> sessions_;
  std::map<std::uint64_t, std::uint64_t> epoch_counter_;
  std::map<std::uint64_t, std::uint64_t> probes_;
  std::map<std::uint64_t, std::vector<Element>> local_;
};

}  // namespace sks::baselines
