// Baseline: Skeap without aggregation-tree batching.
//
// Every heap operation travels to the anchor as its own message, hopping
// along the aggregation-tree parent links; the anchor assigns its (p, pos)
// pair from the same interval state Skeap uses and replies directly; the
// issuer then performs the DHT operation. Semantics are unchanged — what
// changes is scalability: the vertices near the anchor must forward every
// single operation, so their congestion grows with the *total* injection
// rate n·Λ instead of Skeap's Õ(Λ). Experiment E10 isolates exactly this
// difference (it is the ablation "batching off").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "dht/dht.hpp"
#include "overlay/overlay_node.hpp"
#include "runtime/cluster.hpp"
#include "skeap/assignment.hpp"

namespace sks::baselines {

/// A single operation climbing the tree to the anchor.
struct NoBatchOp final : sim::Action<NoBatchOp> {
  static constexpr const char* kActionName = "nobatch.op";
  bool is_insert = false;
  Priority prio = 0;
  NodeId origin = kNoNode;
  std::uint64_t request_id = 0;
  overlay::VKind at_kind = overlay::VKind::kRight;
  std::uint64_t size_bits() const override { return 64; }

  void encode(wire::WireWriter& w) const override {
    w.boolean(is_insert);
    w.gammau(prio);
    w.leb(origin);
    w.delta(request_id);
    w.bits(static_cast<std::uint64_t>(at_kind), 2);
  }

  static sim::Owned<NoBatchOp> decode(wire::WireReader& r) {
    auto m = sim::make_payload<NoBatchOp>();
    m->is_insert = r.boolean();
    m->prio = r.gammau();
    m->origin = static_cast<NodeId>(r.leb());
    m->request_id = r.delta();
    const std::uint64_t kind = r.bits(2);
    SKS_CHECK_MSG(kind <= 2, "wire: bad VKind");
    m->at_kind = static_cast<overlay::VKind>(kind);
    return m;
  }
};

/// The anchor's position grant, sent straight back to the issuer.
struct NoBatchGrant final : sim::Action<NoBatchGrant> {
  static constexpr const char* kActionName = "nobatch.grant";
  std::uint64_t request_id = 0;
  bool bottom = false;
  Priority prio = 0;
  Position pos = 0;
  std::uint64_t size_bits() const override { return 72; }

  void encode(wire::WireWriter& w) const override {
    w.delta(request_id);
    w.boolean(bottom);
    w.gammau(prio);
    w.delta(pos);
  }

  static sim::Owned<NoBatchGrant> decode(wire::WireReader& r) {
    auto m = sim::make_payload<NoBatchGrant>();
    m->request_id = r.delta();
    m->bottom = r.boolean();
    m->prio = r.gammau();
    m->pos = r.delta();
    return m;
  }
};

class NoBatchNode : public overlay::OverlayNode {
 public:
  using DeleteCallback = std::function<void(std::optional<Element>)>;

  struct Config {
    std::size_t num_priorities = 2;
    std::uint64_t hash_seed = 0xb1a5edULL;
    dht::DhtWidths widths;
  };

  NoBatchNode(overlay::RouteParams params, Config config)
      : OverlayNode(params),
        config_(config),
        hash_(config.hash_seed),
        dht_(*this, config.widths) {
    on_direct_payload<NoBatchOp>(
        [this](NodeId, sim::Owned<NoBatchOp> op) {
          forward_or_serve(std::move(op));
        });
    on_direct_payload<NoBatchGrant>(
        [this](NodeId, sim::Owned<NoBatchGrant> g) {
          on_grant(std::move(g));
        });
  }

  void insert(const Element& e) {
    auto op = sim::make_payload<NoBatchOp>();
    op->is_insert = true;
    op->prio = e.prio;
    op->origin = id();
    op->request_id = next_request_id_++;
    pending_inserts_.emplace(op->request_id, e);
    start_climb(std::move(op));
  }

  void delete_min(DeleteCallback cb) {
    auto op = sim::make_payload<NoBatchOp>();
    op->is_insert = false;
    op->origin = id();
    op->request_id = next_request_id_++;
    pending_deletes_.emplace(op->request_id, std::move(cb));
    start_climb(std::move(op));
  }

  std::size_t completed_ops() const { return completed_; }
  const dht::DhtComponent& dht() const { return dht_; }

 private:
  void start_climb(sim::Owned<NoBatchOp> op) {
    op->at_kind = overlay::VKind::kRight;  // start at our leaf
    forward_or_serve(std::move(op));
  }

  void forward_or_serve(sim::Owned<NoBatchOp> op) {
    // Climb parent links until the anchor; local virtual hops are free.
    overlay::VKind at = op->at_kind;
    for (;;) {
      const overlay::VirtualState& st = vstate(at);
      if (st.is_anchor) {
        serve_at_anchor(std::move(op));
        return;
      }
      SKS_CHECK(st.parent.valid());
      if (st.parent.host == id()) {
        at = st.parent.kind;
        continue;
      }
      op->at_kind = st.parent.kind;
      send(st.parent.host, std::move(op));
      return;
    }
  }

  void serve_at_anchor(sim::Owned<NoBatchOp> op) {
    if (!anchor_state_) anchor_state_.emplace(config_.num_priorities);
    // A batch of exactly one operation.
    skeap::Batch one(config_.num_priorities);
    if (op->is_insert) {
      one.record_insert(op->prio);
    } else {
      one.record_delete();
    }
    skeap::BatchAssignment asg = anchor_state_->assign(one);
    auto grant = sim::make_payload<NoBatchGrant>();
    grant->request_id = op->request_id;
    if (op->is_insert) {
      const Interval iv = asg.entries[0].inserts.at(op->prio);
      grant->prio = op->prio;
      grant->pos = iv.lo;
    } else if (asg.entries[0].deletes.bottoms > 0) {
      grant->bottom = true;
    } else {
      const PrioritySpan& span = asg.entries[0].deletes.spans.spans()[0];
      grant->prio = span.prio;
      grant->pos = span.iv.lo;
    }
    send_direct(op->origin, std::move(grant));
  }

  void on_grant(sim::Owned<NoBatchGrant> g) {
    auto ins = pending_inserts_.find(g->request_id);
    if (ins != pending_inserts_.end()) {
      const Element e = ins->second;
      pending_inserts_.erase(ins);
      dht_.put(key_for(g->prio, g->pos), e);
      ++completed_;
      return;
    }
    auto dit = pending_deletes_.find(g->request_id);
    SKS_CHECK(dit != pending_deletes_.end());
    auto cb = std::move(dit->second);
    pending_deletes_.erase(dit);
    if (g->bottom) {
      ++completed_;
      if (cb) cb(std::nullopt);
      return;
    }
    dht_.get(key_for(g->prio, g->pos), [this, cb](const Element& e) {
      ++completed_;
      if (cb) cb(e);
    });
  }

  Point key_for(Priority p, Position pos) const {
    return hash_.point({0xb07c40001ULL, p, pos});
  }

  Config config_;
  HashFunction hash_;
  dht::DhtComponent dht_;
  std::uint64_t next_request_id_ = 1;
  std::map<std::uint64_t, Element> pending_inserts_;
  std::map<std::uint64_t, DeleteCallback> pending_deletes_;
  std::optional<skeap::AnchorState> anchor_state_;
  std::size_t completed_ = 0;
};

/// Harness mirroring SkeapSystem for the comparison benches; deployment is
/// the shared runtime::Cluster (no membership component — no churn).
class NoBatchSystem {
 public:
  struct Options {
    std::size_t num_nodes = 8;
    std::size_t num_priorities = 2;
    std::uint64_t seed = 1;
    sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous;
  };

  using Cluster = runtime::Cluster<NoBatchNode, NoBatchNode::Config>;

  static NoBatchNode::Config make_config(const Options& opts,
                                         std::size_t num_nodes) {
    NoBatchNode::Config config;
    config.num_priorities = opts.num_priorities;
    config.hash_seed = opts.seed ^ 0x9e3779b97f4a7c15ULL;
    config.widths =
        dht::DhtWidths::for_system(num_nodes, opts.num_priorities, 1u << 20);
    return config;
  }

  static runtime::ClusterOptions cluster_options(const Options& opts) {
    runtime::ClusterOptions c;
    c.num_nodes = opts.num_nodes;
    c.seed = opts.seed;
    c.mode = opts.mode;
    return c;
  }

  explicit NoBatchSystem(const Options& opts)
      : cluster_(cluster_options(opts),
                 [opts](std::size_t n) { return make_config(opts, n); }) {}

  NoBatchNode& node(NodeId v) { return cluster_.node(v); }
  sim::Network& net() { return cluster_.net(); }

  Element insert(NodeId v, Priority prio) {
    const Element e{prio, next_element_id_++};
    node(v).insert(e);
    return e;
  }

  void delete_min(NodeId v, NoBatchNode::DeleteCallback cb = nullptr) {
    node(v).delete_min(std::move(cb));
  }

  std::uint64_t run() { return cluster_.run_until_idle(); }

 private:
  Cluster cluster_;
  ElementId next_element_id_ = 1;
};

}  // namespace sks::baselines
