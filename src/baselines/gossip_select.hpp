// Baseline: sampling-based gossip selection in the spirit of [HMS18]
// (Haeupler, Mohapatra, Su: "Optimal gossip algorithms for exact and
// approximate quantile computations", PODC 2018).
//
// The uniform gossip model: any node may contact a uniformly random node
// each round. [HMS18] solve k-selection for n elements (one per node) in
// O(log n) rounds with O(log n)-bit messages by interleaving sampled rank
// estimation with interval shrinking. This implementation keeps their
// structure — iterative pruning with pivots drawn by uniform sampling —
// but performs the exact rank counts with direct star aggregation at the
// initiator (allowed in the gossip model, at the cost of Θ(n) congestion
// there). It mirrors [HMS18]'s restriction to m = n elements, which is
// exactly how the paper's related-work section contrasts it with KSelect
// (KSelect handles m = poly(n)); experiment E11 measures both.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "runtime/cluster.hpp"
#include "sim/dispatch.hpp"
#include "sim/network.hpp"

namespace sks::baselines {

struct GossipSampleReq final : sim::Action<GossipSampleReq> {
  static constexpr const char* kActionName = "gossip.sample_req";
  std::uint64_t session = 0;
  std::uint64_t size_bits() const override { return 32; }

  void encode(wire::WireWriter& w) const override { w.leb(session); }

  static sim::Owned<GossipSampleReq> decode(wire::WireReader& r) {
    auto m = sim::make_payload<GossipSampleReq>();
    m->session = r.leb();
    return m;
  }
};

struct GossipSampleRep final : sim::Action<GossipSampleRep> {
  static constexpr const char* kActionName = "gossip.sample_rep";
  std::uint64_t session = 0;
  bool alive = false;  ///< value still a candidate?
  Element value{};
  std::uint64_t size_bits() const override { return 64; }

  void encode(wire::WireWriter& w) const override {
    w.leb(session);
    w.boolean(alive);
    value.encode(w);
  }

  static sim::Owned<GossipSampleRep> decode(wire::WireReader& r) {
    auto m = sim::make_payload<GossipSampleRep>();
    m->session = r.leb();
    m->alive = r.boolean();
    m->value = Element::decode(r);
    return m;
  }
};

struct GossipCountReq final : sim::Action<GossipCountReq> {
  static constexpr const char* kActionName = "gossip.count_req";
  std::uint64_t session = 0;
  Element pivot{};
  std::uint64_t size_bits() const override { return 64; }

  void encode(wire::WireWriter& w) const override {
    w.leb(session);
    pivot.encode(w);
  }

  static sim::Owned<GossipCountReq> decode(wire::WireReader& r) {
    auto m = sim::make_payload<GossipCountReq>();
    m->session = r.leb();
    m->pivot = Element::decode(r);
    return m;
  }
};

struct GossipCountRep final : sim::Action<GossipCountRep> {
  static constexpr const char* kActionName = "gossip.count_rep";
  std::uint64_t session = 0;
  std::uint32_t leq = 0;    ///< 1 iff my value <= pivot and alive
  std::uint32_t alive = 0;  ///< 1 iff my value is still a candidate
  std::uint64_t size_bits() const override { return 34; }

  void encode(wire::WireWriter& w) const override {
    w.leb(session);
    w.leb(leq);
    w.leb(alive);
  }

  static sim::Owned<GossipCountRep> decode(wire::WireReader& r) {
    auto m = sim::make_payload<GossipCountRep>();
    m->session = r.leb();
    m->leq = static_cast<std::uint32_t>(r.leb());
    m->alive = static_cast<std::uint32_t>(r.leb());
    return m;
  }
};

struct GossipPrune final : sim::Action<GossipPrune> {
  static constexpr const char* kActionName = "gossip.prune";
  std::uint64_t session = 0;
  Element lo{}, hi{};
  std::uint64_t size_bits() const override { return 96; }

  void encode(wire::WireWriter& w) const override {
    w.leb(session);
    lo.encode(w);
    hi.encode(w);
  }

  static sim::Owned<GossipPrune> decode(wire::WireReader& r) {
    auto m = sim::make_payload<GossipPrune>();
    m->session = r.leb();
    m->lo = Element::decode(r);
    m->hi = Element::decode(r);
    return m;
  }
};

/// One node holding one value (the [HMS18] setting).
class GossipNode : public sim::DispatchingNode {
 public:
  using ResultFn = std::function<void(std::optional<Element>)>;

  GossipNode(std::size_t n, std::uint64_t seed) : n_(n), rng_(seed) {
    on<GossipSampleReq>([this](NodeId from,
                               sim::Owned<GossipSampleReq> m) {
      auto rep = sim::make_payload<GossipSampleRep>();
      rep->session = m->session;
      rep->alive = alive_;
      rep->value = value_;
      send(from, std::move(rep));
    });
    on<GossipSampleRep>([this](NodeId, sim::Owned<GossipSampleRep> m) {
      if (m->alive) samples_.push_back(m->value);
      if (++sample_replies_ == sample_requests_) counting_round();
    });
    on<GossipCountReq>([this](NodeId from,
                              sim::Owned<GossipCountReq> m) {
      auto rep = sim::make_payload<GossipCountRep>();
      rep->session = m->session;
      rep->alive = alive_ ? 1 : 0;
      rep->leq = (alive_ && value_ <= m->pivot) ? 1 : 0;
      send(from, std::move(rep));
    });
    on<GossipCountRep>([this](NodeId, sim::Owned<GossipCountRep> m) {
      count_leq_ += m->leq;
      count_alive_ += m->alive;
      if (++count_replies_ == n_) on_exact_count();
    });
    on<GossipPrune>([this](NodeId, sim::Owned<GossipPrune> m) {
      if (alive_ && (value_ < m->lo || m->hi < value_)) alive_ = false;
    });
  }

  void set_value(const Element& e) {
    value_ = e;
    alive_ = true;
  }

  /// Run a selection from this node (the initiator).
  void select(std::uint64_t session, std::uint64_t k, ResultFn on_result) {
    session_ = session;
    k_ = k;
    on_result_ = std::move(on_result);
    iterations_ = 0;
    sampling_round();
  }

  std::uint64_t iterations() const { return iterations_; }

 private:
  // Draw Θ(log n)-many uniform samples of alive values.
  void sampling_round() {
    ++iterations_;
    SKS_CHECK_MSG(iterations_ < 200, "gossip selection failed to converge");
    samples_.clear();
    sample_replies_ = 0;
    sample_requests_ = 4 * bits_for_samples();
    for (std::uint64_t i = 0; i < sample_requests_; ++i) {
      auto req = sim::make_payload<GossipSampleReq>();
      req->session = session_;
      send(static_cast<NodeId>(rng_.below(n_)), std::move(req));
    }
  }

  std::uint64_t bits_for_samples() const {
    std::uint64_t b = 1, v = n_;
    while (v >>= 1) ++b;
    return b;
  }

  // Pick the sampled quantile nearest k/alive as pivot; count exactly.
  void counting_round() {
    if (samples_.empty()) {
      sampling_round();  // everyone we asked was already pruned; retry
      return;
    }
    std::sort(samples_.begin(), samples_.end());
    // Estimate the pivot as the sample quantile matching k among alive.
    const double frac =
        alive_estimate_ > 0
            ? static_cast<double>(k_) / static_cast<double>(alive_estimate_)
            : 0.5;
    auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(samples_.size() - 1) + 0.5);
    idx = std::min(idx, samples_.size() - 1);
    pivot_ = samples_[idx];
    count_leq_ = count_alive_ = 0;
    count_replies_ = 0;
    for (NodeId v = 0; v < n_; ++v) {
      auto req = sim::make_payload<GossipCountReq>();
      req->session = session_;
      req->pivot = pivot_;
      send(v, std::move(req));
    }
  }

  void on_exact_count() {
    alive_estimate_ = count_alive_;
    if (count_alive_ == 0 || k_ < 1 || k_ > count_alive_ + removed_below_) {
      finish(std::nullopt);
      return;
    }
    const std::uint64_t rank_pivot = removed_below_ + count_leq_;
    if (rank_pivot == k_global()) {
      // Need the largest value <= pivot... the pivot itself is a real
      // sampled value, so it is the k-th element exactly when its global
      // rank equals k.
      finish(pivot_);
      return;
    }
    // Prune the side that cannot contain the k-th element.
    auto prune = sim::make_payload<GossipPrune>();
    prune->session = session_;
    if (rank_pivot > k_global()) {
      prune->lo = Element{0, 0};
      prune->hi = pivot_;  // keep <= pivot
    } else {
      removed_below_ += count_leq_;
      prune->lo = successor(pivot_);
      prune->hi = Element{~0ULL, ~0ULL};
    }
    for (NodeId v = 0; v < n_; ++v) {
      auto copy = sim::make_payload<GossipPrune>(*prune);
      send(v, std::move(copy));
    }
    sampling_round();
  }

  std::uint64_t k_global() const { return k_; }

  static Element successor(const Element& e) {
    if (e.id == ~0ULL) return Element{e.prio + 1, 0};
    return Element{e.prio, e.id + 1};
  }

  void finish(std::optional<Element> result) {
    if (on_result_) {
      auto cb = std::move(on_result_);
      on_result_ = nullptr;
      cb(result);
    }
  }

  std::size_t n_;
  Rng rng_;
  Element value_{};
  bool alive_ = false;

  // Initiator state.
  std::uint64_t session_ = 0;
  std::uint64_t k_ = 0;
  ResultFn on_result_;
  std::uint64_t iterations_ = 0;
  std::vector<Element> samples_;
  std::uint64_t sample_requests_ = 0, sample_replies_ = 0;
  Element pivot_{};
  std::uint64_t count_leq_ = 0, count_alive_ = 0, count_replies_ = 0;
  std::uint64_t alive_estimate_ = 0;
  std::uint64_t removed_below_ = 0;
};

class GossipSystem {
 public:
  struct Options {
    std::size_t num_nodes = 8;
    std::uint64_t seed = 1;
    sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous;
  };

  struct Config {};  ///< per-node seeds derive from the node index instead
  using Cluster = runtime::Cluster<GossipNode, Config>;

  static runtime::ClusterOptions cluster_options(const Options& opts) {
    runtime::ClusterOptions c;
    c.num_nodes = opts.num_nodes;
    c.seed = opts.seed;
    c.mode = opts.mode;
    return c;
  }

  explicit GossipSystem(const Options& opts)
      : opts_(opts),
        cluster_(cluster_options(opts), [](std::size_t) { return Config{}; },
                 [opts](const overlay::RouteParams&, const Config&,
                        std::size_t i) {
                   return std::make_unique<GossipNode>(opts.num_nodes,
                                                       opts.seed + i * 7919);
                 }) {}

  GossipNode& node(NodeId v) { return cluster_.node(v); }
  sim::Network& net() { return cluster_.net(); }

  /// One value per node, [HMS18]-style.
  void seed_values(const std::vector<Element>& values) {
    SKS_CHECK(values.size() == opts_.num_nodes);
    for (NodeId v = 0; v < opts_.num_nodes; ++v) {
      node(v).set_value(values[v]);
    }
  }

  struct Outcome {
    std::optional<Element> result;
    std::uint64_t rounds = 0;
    std::uint64_t iterations = 0;
  };

  Outcome select(std::uint64_t k, NodeId initiator = 0) {
    Outcome out;
    bool done = false;
    node(initiator).select(next_session_++, k, [&](std::optional<Element> r) {
      out.result = r;
      done = true;
    });
    out.rounds = cluster_.run_until_idle();
    out.iterations = node(initiator).iterations();
    SKS_CHECK_MSG(done, "gossip selection did not finish");
    return out;
  }

 private:
  Options opts_;
  Cluster cluster_;
  std::uint64_t next_session_ = 1;
};

}  // namespace sks::baselines
