// Anchor-initiated broadcast over the aggregation tree.
//
// Unlike Aggregator (whose down pass decomposes against a preceding up
// pass), a Broadcaster simply replicates a value from the anchor to every
// host: each vertex forwards to its children, and each host delivers once
// at its leaf (every host owns exactly one leaf — its right virtual node).
// KSelect uses this for its per-iteration instructions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "common/check.hpp"
#include "overlay/overlay_node.hpp"

namespace sks::agg {

template <class V>
struct BroadcastMsg final : sim::Action<BroadcastMsg<V>> {
  static constexpr const char* kActionName = V::kName;
  std::uint64_t epoch = 0;
  V value{};
  std::uint64_t size_bits() const override { return 16 + value.size_bits(); }

  void encode(wire::WireWriter& w) const override {
    w.leb(epoch);
    value.encode(w);
  }

  static sim::Owned<BroadcastMsg<V>> decode(wire::WireReader& r) {
    auto msg = sim::make_payload<BroadcastMsg<V>>();
    msg->epoch = r.leb();
    msg->value = V::decode(r);
    return msg;
  }
};

template <class V>
class Broadcaster {
 public:
  using DeliverFn = std::function<void(std::uint64_t epoch, const V&)>;

  Broadcaster(overlay::OverlayNode& host, DeliverFn deliver)
      : host_(host), deliver_(std::move(deliver)) {
    host_.on_vertex_payload<BroadcastMsg<V>>(
        [this](overlay::VKind at, const overlay::VirtualId&,
               sim::Owned<BroadcastMsg<V>> msg) {
          push_down(at, *msg);
        });
  }

  /// Start a broadcast; must be called on the anchor host.
  void broadcast(std::uint64_t epoch, const V& value) {
    SKS_CHECK_MSG(host_.hosts_anchor(), "broadcast() requires the anchor");
    BroadcastMsg<V> msg;
    msg.epoch = epoch;
    msg.value = value;
    push_down(overlay::VKind::kLeft, msg);
  }

 private:
  void push_down(overlay::VKind at, const BroadcastMsg<V>& msg) {
    const overlay::VirtualState& st = host_.vstate(at);
    if (st.children.empty()) {
      deliver_(msg.epoch, msg.value);
      return;
    }
    for (const auto& child : st.children) {
      auto copy = sim::make_payload<BroadcastMsg<V>>(msg);
      host_.send_to_vertex(at, child, std::move(copy));
    }
  }

  overlay::OverlayNode& host_;
  DeliverFn deliver_;
};

}  // namespace sks::agg
