// The aggregation-phase engine (Section 2.2).
//
// Every protocol in the paper is built from "aggregation phases" on the
// tree of Lemma 2.2: values flow from the leaves to the anchor, combined
// at every inner vertex; results flow back down, decomposed at every
// vertex. This engine implements one reusable, epoch-keyed instance of
// that pattern.
//
// Conventions:
//  * Each real node hosts exactly one leaf of the tree (its right virtual
//    node), so "one contribution per host" and "one delivery per host"
//    hold by construction.
//  * Inner vertices contribute nothing; the combined value at a vertex is
//    the fold of its children's values in fixed child order. This order
//    is what makes Skeap's serialization (the value(OP) construction in
//    Section 3.3) deterministic.
//  * Sessions are keyed by an epoch number, so consecutive batches can
//    pipeline and asynchronous delivery cannot mix generations.
//
// Up must be a value type with size_bits(); Down likewise. The three
// user hooks are:
//   combine(Up&, const Up&)             — fold one more child value in
//   split(Down, span of child Ups) → vector<Down> — one Down per child
//   deliver(epoch, Down)                — runs at every host's leaf
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "overlay/overlay_node.hpp"

namespace sks::agg {

template <class Up>
struct AggUpMsg final : sim::Action<AggUpMsg<Up>> {
  static constexpr const char* kActionName = Up::kName;
  std::uint64_t epoch = 0;
  Up value{};
  std::uint64_t size_bits() const override { return 16 + value.size_bits(); }

  void encode(wire::WireWriter& w) const override {
    w.leb(epoch);
    value.encode(w);
  }

  static sim::Owned<AggUpMsg<Up>> decode(wire::WireReader& r) {
    auto msg = sim::make_payload<AggUpMsg<Up>>();
    msg->epoch = r.leb();
    msg->value = Up::decode(r);
    return msg;
  }
};

template <class Down>
struct AggDownMsg final : sim::Action<AggDownMsg<Down>> {
  static constexpr const char* kActionName = Down::kName;
  std::uint64_t epoch = 0;
  Down value{};
  std::uint64_t size_bits() const override { return 16 + value.size_bits(); }

  void encode(wire::WireWriter& w) const override {
    w.leb(epoch);
    value.encode(w);
  }

  static sim::Owned<AggDownMsg<Down>> decode(wire::WireReader& r) {
    auto msg = sim::make_payload<AggDownMsg<Down>>();
    msg->epoch = r.leb();
    msg->value = Down::decode(r);
    return msg;
  }
};

/// One converge-cast / broadcast channel over the aggregation tree.
///
/// Exactly one Aggregator per (Up, Down) type pair may be attached to a
/// host; define distinct wrapper types per protocol phase.
template <class Up, class Down>
class Aggregator {
 public:
  using CombineFn = std::function<void(Up&, const Up&)>;
  using SplitFn =
      std::function<std::vector<Down>(const Down&, const std::vector<Up>&)>;
  using RootFn = std::function<void(std::uint64_t epoch, const Up&)>;
  using DeliverFn = std::function<void(std::uint64_t epoch, Down)>;

  /// Up-only aggregator: values converge to the anchor and sessions are
  /// discarded immediately (no down pass). Pair with a Broadcaster when
  /// the anchor needs to disseminate the outcome.
  Aggregator(overlay::OverlayNode& host, CombineFn combine, RootFn on_root)
      : Aggregator(host, std::move(combine), nullptr, std::move(on_root),
                   nullptr) {}

  Aggregator(overlay::OverlayNode& host, CombineFn combine, SplitFn split,
             RootFn on_root, DeliverFn deliver)
      : host_(host),
        combine_(std::move(combine)),
        split_(std::move(split)),
        on_root_(std::move(on_root)),
        deliver_(std::move(deliver)) {
    host_.on_vertex_payload<AggUpMsg<Up>>(
        [this](overlay::VKind at, const overlay::VirtualId& from,
               sim::Owned<AggUpMsg<Up>> msg) {
          handle_up(at, from, std::move(msg));
        });
    // Up-only aggregators (split == nullptr) never send a down message;
    // registering AggDownMsg<Down> anyway would intern Down::kName a
    // second time when Up and Down are the same type — which the registry
    // now rejects as an ambiguous wire tag.
    if (split_ != nullptr) {
      host_.on_vertex_payload<AggDownMsg<Down>>(
          [this](overlay::VKind at, const overlay::VirtualId&,
                 sim::Owned<AggDownMsg<Down>> msg) {
            handle_down(at, std::move(msg));
          });
    }
  }

  /// Contribute this host's value for `epoch`; starts the up pass at the
  /// host's leaf (its right virtual node).
  void contribute(std::uint64_t epoch, Up value) {
    const auto& leaf = host_.vstate(overlay::VKind::kRight);
    SKS_CHECK(leaf.children.empty());
    send_up(leaf, epoch, std::move(value));
  }

  /// Start the down pass; must be called on the anchor host after on_root.
  void distribute(std::uint64_t epoch, Down root_value) {
    SKS_CHECK_MSG(host_.hosts_anchor(), "distribute() requires the anchor");
    push_down(host_.vstate(overlay::VKind::kLeft), epoch,
              std::move(root_value));
  }

  /// Sessions still buffered (diagnostics; should drain to 0).
  std::size_t open_sessions() const {
    std::size_t total = 0;
    for (const auto& m : sessions_) total += m.size();
    return total;
  }

  /// Discard every buffered session. Part of an epoch rollback after a
  /// declared crash: the aborted epoch's partial up-passes must not
  /// survive into the re-run (they reference the dead tree shape).
  void abort_all() {
    for (auto& m : sessions_) m.clear();
  }

 private:
  struct Session {
    std::vector<std::optional<Up>> child_values;
  };

  std::map<std::uint64_t, Session>& sessions(overlay::VKind k) {
    return sessions_[static_cast<std::size_t>(k)];
  }

  void handle_up(overlay::VKind at, const overlay::VirtualId& from,
                 sim::Owned<AggUpMsg<Up>> msg) {
    const overlay::VirtualState& st = host_.vstate(at);
    SKS_CHECK_MSG(!st.children.empty(), "leaf received an up message");

    auto& session = sessions(at)[msg->epoch];
    session.child_values.resize(st.children.size());
    bool matched = false;
    for (std::size_t i = 0; i < st.children.size(); ++i) {
      if (st.children[i] == from) {
        SKS_CHECK_MSG(!session.child_values[i].has_value(),
                      "duplicate child contribution");
        session.child_values[i] = std::move(msg->value);
        matched = true;
        break;
      }
    }
    SKS_CHECK_MSG(matched, "up message from a non-child vertex");

    for (const auto& cv : session.child_values) {
      if (!cv.has_value()) return;  // still waiting
    }

    // All children reported: fold in order and pass up (or surface at the
    // anchor). Child values are kept until the down pass needs them —
    // unless this is an up-only aggregation (no split function), in which
    // case the session is discarded right away.
    Up combined = *session.child_values[0];
    for (std::size_t i = 1; i < session.child_values.size(); ++i) {
      combine_(combined, *session.child_values[i]);
    }
    if (split_ == nullptr) sessions(at).erase(msg->epoch);
    if (st.is_anchor) {
      SKS_CHECK(on_root_ != nullptr);
      on_root_(msg->epoch, combined);
    } else {
      send_up(st, msg->epoch, std::move(combined));
    }
  }

  void send_up(const overlay::VirtualState& st, std::uint64_t epoch,
               Up value) {
    SKS_CHECK_MSG(st.parent.valid(), "vertex has no parent to send up to");
    auto msg = sim::make_payload<AggUpMsg<Up>>();
    msg->epoch = epoch;
    msg->value = std::move(value);
    host_.send_to_vertex(st.self.kind, st.parent, std::move(msg));
  }

  void handle_down(overlay::VKind at, sim::Owned<AggDownMsg<Down>> msg) {
    push_down(host_.vstate(at), msg->epoch, std::move(msg->value));
  }

  void push_down(const overlay::VirtualState& st, std::uint64_t epoch,
                 Down value) {
    if (st.children.empty()) {
      SKS_CHECK(deliver_ != nullptr);
      deliver_(epoch, std::move(value));
      return;
    }
    auto& by_epoch = sessions(st.self.kind);
    auto it = by_epoch.find(epoch);
    SKS_CHECK_MSG(it != by_epoch.end(), "down pass without matching up pass");
    std::vector<Up> child_values;
    child_values.reserve(it->second.child_values.size());
    for (auto& cv : it->second.child_values) child_values.push_back(*cv);
    by_epoch.erase(it);

    std::vector<Down> parts = split_(value, child_values);
    SKS_CHECK_MSG(parts.size() == st.children.size(),
                  "split produced " << parts.size() << " parts for "
                                    << st.children.size() << " children");
    for (std::size_t i = 0; i < st.children.size(); ++i) {
      auto out = sim::make_payload<AggDownMsg<Down>>();
      out->epoch = epoch;
      out->value = std::move(parts[i]);
      host_.send_to_vertex(st.self.kind, st.children[i], std::move(out));
    }
  }

  overlay::OverlayNode& host_;
  CombineFn combine_;
  SplitFn split_;
  RootFn on_root_;
  DeliverFn deliver_;
  std::array<std::map<std::uint64_t, Session>, 3> sessions_;
};

}  // namespace sks::agg
