// Protocol Seap (Section 5): a serializable distributed heap for an
// arbitrary number of priorities, with O(log n)-bit messages independent
// of the injection rate — the headline improvement over Skeap.
//
// A cycle alternates two global phases (Algorithm 4):
//
//  Insert phase
//   1. Every host snapshots its buffered operations; the number of inserts
//      is aggregated to the anchor, which updates v0.m and broadcasts the
//      go-signal.
//   2. Hosts store each inserted element under a uniformly random DHT key
//      and wait for the owners' confirmations.
//
//  DeleteMin phase
//   3. Once its puts are confirmed, each host contributes its DeleteMin
//      count; the anchor learns k.
//   4. The anchor finds the k-th smallest element (KSelect) — skipped when
//      k >= m (threshold = +inf) or k = 0 — and broadcasts the threshold
//      key T together with k_eff = min(k, m).
//   5. Hosts count their stored elements <= T; the interval [1, k_eff] is
//      decomposed over those counts, and each host moves its eligible
//      elements to positional keys h(cycle, pos).
//   6. The interval [1, k] is decomposed over the deleters' counts; each
//      deleter fetches h(cycle, pos) for its positions <= k_eff and
//      returns ⊥ for positions beyond the heap size.
//
// Cycles are phase-barriered (the paper: "we wait until all Insert()
// requests have been processed before we start processing all DeleteMin()
// requests"); the harness starts cycle t+1 after cycle t quiesces.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "aggregation/aggregator.hpp"
#include "aggregation/broadcast.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "dht/dht.hpp"
#include "kselect/kselect.hpp"
#include "overlay/membership.hpp"
#include "overlay/overlay_node.hpp"
#include "recovery/recovery.hpp"
#include "trace/tracer.hpp"

namespace sks::seap {

/// DHT keyspaces: inserted elements live under random keys in the main
/// space; the DeleteMin phase moves the k smallest into positional keys.
inline constexpr std::uint8_t kMainSpace = 0;
inline constexpr std::uint8_t kPositionSpace = 1;

struct SeapConfig {
  std::size_t num_nodes = 8;
  std::uint64_t hash_seed = 0x5ea9ULL;
  std::uint64_t rng_seed = 0x5eed5ULL;
  dht::DhtWidths widths;
  kselect::KSelectConfig kselect;
  /// The Conclusion's sketch of a sequentially consistent Seap: per cycle,
  /// a node submits only its leading run of inserts followed by the
  /// adjacent run of deletes (or, if a delete comes first, only that
  /// delete run), deferring the rest. Each node's operations then appear
  /// in ≺ in issue order — local consistency — at the cost of throughput
  /// under alternating workloads ("batches may grow infinitely long for
  /// high injection rates"). Message sizes stay O(log n).
  bool sequentially_consistent = false;
  recovery::RecoveryConfig recovery;
  /// Admission control: cap on buffered (not yet cycled) inserts per
  /// node. Same policy as Skeap — at the cap the worst pending insert
  /// (largest key, the element a correct heap would return last) is
  /// shed, or the incoming one when it is the worst. Deletes are never
  /// shed. 0 = unbounded (the default).
  std::size_t max_buffered_ops = 0;
};

// ---- aggregation value types ----------------------------------------------

struct InsCountUp {
  static constexpr const char* kName = "seap.ins_up";
  std::uint64_t count = 0;
  std::uint64_t size_bits() const { return 32; }
  void encode(wire::WireWriter& w) const { w.delta(count); }
  static InsCountUp decode(wire::WireReader& r) {
    return InsCountUp{r.delta()};
  }
};

struct InsGo {
  static constexpr const char* kName = "seap.ins_go";
  std::uint64_t cycle = 0;
  std::uint64_t size_bits() const { return 32; }
  void encode(wire::WireWriter& w) const { w.leb(cycle); }
  static InsGo decode(wire::WireReader& r) { return InsGo{r.leb()}; }
};

struct DelCountUp {
  static constexpr const char* kName = "seap.del_up";
  std::uint64_t count = 0;
  std::uint64_t size_bits() const { return 32; }
  void encode(wire::WireWriter& w) const { w.delta(count); }
  static DelCountUp decode(wire::WireReader& r) {
    return DelCountUp{r.delta()};
  }
};

/// Deleter sub-interval of [1, k] plus k_eff so hosts can decide which of
/// their positions map to real elements and which return ⊥.
struct DelDown {
  static constexpr const char* kName = "seap.del_down";
  Interval iv = Interval::empty_interval();
  std::uint64_t k_eff = 0;
  std::uint64_t size_bits() const { return 96; }
  void encode(wire::WireWriter& w) const {
    iv.encode(w);
    w.delta(k_eff);
  }
  static DelDown decode(wire::WireReader& r) {
    DelDown d;
    d.iv = Interval::decode(r);
    d.k_eff = r.delta();
    return d;
  }
};

/// The k_eff-th smallest key (threshold) broadcast before the move.
struct Thresh {
  static constexpr const char* kName = "seap.thresh";
  std::uint64_t cycle = 0;
  Element threshold{};
  std::uint64_t k_eff = 0;
  std::uint64_t size_bits() const { return 32 + 48 + 32; }
  void encode(wire::WireWriter& w) const {
    w.leb(cycle);
    threshold.encode(w);
    w.delta(k_eff);
  }
  static Thresh decode(wire::WireReader& r) {
    Thresh t;
    t.cycle = r.leb();
    t.threshold = Element::decode(r);
    t.k_eff = r.delta();
    return t;
  }
};

struct MoveCountUp {
  static constexpr const char* kName = "seap.move_up";
  std::uint64_t count = 0;
  std::uint64_t size_bits() const { return 32; }
  void encode(wire::WireWriter& w) const { w.delta(count); }
  static MoveCountUp decode(wire::WireReader& r) {
    return MoveCountUp{r.delta()};
  }
};

struct MoveDown {
  static constexpr const char* kName = "seap.move_down";
  Interval iv = Interval::empty_interval();
  std::uint64_t size_bits() const { return 64; }
  void encode(wire::WireWriter& w) const { iv.encode(w); }
  static MoveDown decode(wire::WireReader& r) {
    return MoveDown{Interval::decode(r)};
  }
};

/// One completed heap operation, for the serializability checker.
struct SeapOpRecord {
  NodeId node = kNoNode;
  std::uint64_t issue_seq = 0;
  std::uint64_t cycle = 0;
  bool is_insert = false;
  bool bottom = false;
  Position pos = 0;  ///< deletes: the fetched position in [1, k_eff]
  Element element{};
  bool completed = false;
};

class SeapNode : public overlay::OverlayNode {
 public:
  using DeleteCallback = std::function<void(std::optional<Element>)>;

  SeapNode(overlay::RouteParams params, SeapConfig config)
      : OverlayNode(params),
        config_(config),
        hash_(config.hash_seed),
        rng_(config.rng_seed),
        dht_(*this, config.widths),
        membership_(*this, dht_),
        kselect_(
            *this, config.kselect,
            [this] { return dht_.elements_in(kMainSpace); },
            [this](std::uint64_t cycle,
                   std::optional<kselect::CandidateKey> kth) {
              on_kselect_result(cycle, kth);
            }),
        ins_agg_(*this,
                 [](InsCountUp& a, const InsCountUp& b) { a.count += b.count; },
                 [this](std::uint64_t cycle, const InsCountUp& total) {
                   on_insert_total(cycle, total.count);
                 }),
        ins_go_(*this,
                [this](std::uint64_t cycle, const InsGo&) {
                  on_insert_go(cycle);
                }),
        del_agg_(
            *this,
            [](DelCountUp& a, const DelCountUp& b) { a.count += b.count; },
            [](const DelDown& d, const std::vector<DelCountUp>& children) {
              std::vector<DelDown> parts(children.size());
              Interval rest = d.iv;
              for (std::size_t c = 0; c < children.size(); ++c) {
                parts[c].iv = rest.take_front(children[c].count);
                parts[c].k_eff = d.k_eff;
              }
              SKS_CHECK(rest.empty());
              return parts;
            },
            [this](std::uint64_t cycle, const DelCountUp& total) {
              on_delete_total(cycle, total.count);
            },
            [this](std::uint64_t cycle, DelDown down) {
              on_delete_interval(cycle, down);
            }),
        thresh_(*this,
                [this](std::uint64_t cycle, const Thresh& t) {
                  on_threshold(cycle, t);
                }),
        move_agg_(
            *this,
            [](MoveCountUp& a, const MoveCountUp& b) { a.count += b.count; },
            [](const MoveDown& d, const std::vector<MoveCountUp>& children) {
              std::vector<MoveDown> parts(children.size());
              Interval rest = d.iv;
              for (std::size_t c = 0; c < children.size(); ++c) {
                parts[c].iv = rest.take_front(children[c].count);
              }
              SKS_CHECK(rest.empty());
              return parts;
            },
            [this](std::uint64_t cycle, const MoveCountUp& total) {
              on_move_total(cycle, total.count);
            },
            [this](std::uint64_t cycle, MoveDown down) {
              on_move_interval(cycle, down.iv);
            }),
        recovery_(*this, config.recovery) {}

  // ---- Client API ------------------------------------------------------

  /// Buffer an Insert(e). Under admission control
  /// (SeapConfig::max_buffered_ops) the returned AdmitResult reports
  /// whether e was buffered and which element, if any, was shed.
  AdmitResult insert(const Element& e) {
    AdmitResult out;
    if (config_.max_buffered_ops != 0 &&
        buffered_inserts_ >= config_.max_buffered_ops) [[unlikely]] {
      // Shed the worst pending insert: largest (priority, issue order)
      // over stored ∪ incoming; the incoming op loses ties (it is the
      // newest, hence the max on a priority tie).
      auto victim = buffered_.end();
      for (auto it = buffered_.begin(); it != buffered_.end(); ++it) {
        if (!it->is_insert) continue;
        if (victim == buffered_.end() ||
            it->element.prio > victim->element.prio ||
            (it->element.prio == victim->element.prio &&
             it->issue_seq > victim->issue_seq)) {
          victim = it;
        }
      }
      net().metrics().record_shed();
      if (victim == buffered_.end() || victim->element.prio <= e.prio) {
        out.accepted = false;
        out.shed = e;
        return out;
      }
      out.shed = victim->element;
      buffered_.erase(victim);
      --buffered_inserts_;
    }
    PendingOp op;
    op.is_insert = true;
    op.element = e;
    op.issue_seq = next_issue_seq_++;
    buffered_.push_back(std::move(op));
    ++buffered_inserts_;
    return out;
  }

  void delete_min(DeleteCallback cb) {
    PendingOp op;
    op.is_insert = false;
    op.callback = std::move(cb);
    op.issue_seq = next_issue_seq_++;
    buffered_.push_back(std::move(op));
  }

  std::size_t buffered_ops() const { return buffered_.size(); }

  // ---- Cycle driver ----------------------------------------------------

  /// Snapshot buffered operations and start the Insert phase of the next
  /// cycle. Cycles are phase-barriered: call only when the previous cycle
  /// has quiesced.
  std::uint64_t start_cycle() { return start_cycle(0); }

  /// start_cycle with a cycle-size cap: snapshot at most `limit` buffered
  /// ops (0 = all), oldest first; the rest stay buffered for a later
  /// cycle. In sequentially consistent mode the cap truncates the
  /// insert-run/delete-run prefix, which preserves local issue order.
  std::uint64_t start_cycle(std::size_t limit) {
    const std::uint64_t cycle = next_cycle_++;
    CycleState& cs = cycles_[cycle];
    std::size_t budget = limit == 0 ? buffered_.size() : limit;
    if (!config_.sequentially_consistent) {
      while (!buffered_.empty() && budget > 0) {
        PendingOp op = std::move(buffered_.front());
        buffered_.pop_front();
        --budget;
        if (op.is_insert) {
          --buffered_inserts_;
          cs.inserts.push_back(std::move(op));
        } else {
          cs.deletes.push_back(std::move(op));
        }
      }
    } else {
      // Leading insert run (possibly empty, but only when the buffer does
      // not start with a delete) followed by the adjacent delete run —
      // this prefix is the largest piece that one insert-then-delete
      // cycle can serialize without reordering this node's operations.
      while (!buffered_.empty() && buffered_.front().is_insert &&
             budget > 0) {
        --buffered_inserts_;
        cs.inserts.push_back(std::move(buffered_.front()));
        buffered_.pop_front();
        --budget;
      }
      while (!buffered_.empty() && !buffered_.front().is_insert &&
             budget > 0) {
        cs.deletes.push_back(std::move(buffered_.front()));
        buffered_.pop_front();
        --budget;
      }
    }
    // Insert-phase span: from this host's contribution until its puts are
    // confirmed and it moves on to the DeleteMin phase.
    trace::Tracer& tr = tracer();
    if (tr.enabled()) tr.phase_begin(id(), "seap.phase1.insert", cycle);
    ins_agg_.contribute(cycle, InsCountUp{cs.inserts.size()});
    return cycle;
  }

  // ---- Introspection ---------------------------------------------------

  const std::vector<SeapOpRecord>& trace() const { return trace_; }
  const dht::DhtComponent& dht() const { return dht_; }
  dht::DhtComponent& dht() { return dht_; }
  const kselect::KSelectComponent& kselect() const { return kselect_; }
  overlay::MembershipComponent& membership() { return membership_; }

  // ---- Churn support (driver-coordinated, between cycles) --------------

  /// Synchronize a freshly joined node's cycle counter with the system's.
  void set_next_cycle(std::uint64_t cycle) {
    SKS_CHECK(cycles_.empty());
    next_cycle_ = cycle;
  }

  /// Hand the anchor's heap-size counter to a node that became the anchor
  /// after churn. Must be called between cycles.
  std::uint64_t take_anchor_size() {
    SKS_CHECK_MSG(anchor_cycles_.empty(),
                  "anchor handover during an active cycle");
    const std::uint64_t m = anchor_m_;
    anchor_m_ = 0;
    return m;
  }
  void install_anchor_size(std::uint64_t m) { anchor_m_ = m; }

  /// Heap size as tracked by the anchor (anchor host only).
  std::uint64_t anchor_heap_size() const { return anchor_m_; }

  // ---- Crash recovery (coordinated by runtime/cluster.hpp) -------------
  //
  // Same transactional-cycle contract as SkeapNode: callbacks defer to
  // commit, checkpoint/rollback bracket each attempt. The per-node rng_
  // is deliberately NOT checkpointed — a re-run draws fresh random DHT
  // keys, which is just another admissible execution.

  recovery::RecoveryComponent& recovery() { return recovery_; }
  const recovery::RecoveryComponent& recovery() const { return recovery_; }

  void begin_epoch_checkpoint() {
    EpochCheckpoint c;
    c.dht = dht_.take_snapshot();
    c.buffered = buffered_;
    c.next_cycle = next_cycle_;
    c.next_issue_seq = next_issue_seq_;
    c.anchor_m = anchor_m_;
    c.trace_len = trace_.size();
    ckpt_ = std::move(c);
  }

  void rollback_epoch() {
    SKS_CHECK_MSG(ckpt_.has_value(), "rollback without a checkpoint");
    const EpochCheckpoint& c = *ckpt_;
    dht_.restore_snapshot(c.dht);
    dht_.clear_client_state();
    kselect_.abort_all();
    ins_agg_.abort_all();
    del_agg_.abort_all();
    move_agg_.abort_all();
    buffered_ = c.buffered;
    buffered_inserts_ = static_cast<std::size_t>(std::count_if(
        buffered_.begin(), buffered_.end(),
        [](const PendingOp& op) { return op.is_insert; }));
    cycles_.clear();
    pending_thresholds_.clear();
    anchor_cycles_.clear();
    next_cycle_ = c.next_cycle;
    next_issue_seq_ = c.next_issue_seq;
    anchor_m_ = c.anchor_m;
    trace_.resize(c.trace_len);
    deferred_.clear();
  }

  void commit_epoch() {
    for (auto& [cb, e] : deferred_) {
      if (cb) cb(e);
    }
    deferred_.clear();
  }

  void send_epoch_deltas() {
    if (recovery_.replica_targets().empty()) return;
    SKS_CHECK_MSG(ckpt_.has_value(), "epoch delta without a checkpoint");
    std::vector<recovery::DeltaEntry> entries;
    dht_.delta_since(ckpt_->dht, [&](std::uint8_t space, Point key,
                                     const std::deque<Element>& elems) {
      entries.push_back(
          recovery::DeltaEntry{space, key, {elems.begin(), elems.end()}});
    });
    auto blob = anchor_blob();
    if (entries.empty() && blob.empty()) return;
    // Fingerprint the FULL post-epoch state (not the delta): the mirror
    // holders audit their staged mirrors against it on apply.
    const std::uint64_t digest =
        recovery::state_digest(full_state_entries(), blob, hosts_anchor());
    recovery_.send_delta(std::move(entries), std::move(blob),
                         hosts_anchor(), digest);
  }

  std::vector<recovery::DeltaEntry> full_state_entries() const {
    std::vector<recovery::DeltaEntry> out;
    dht_.full_entries([&](std::uint8_t space, Point key,
                          const std::deque<Element>& elems) {
      out.push_back(
          recovery::DeltaEntry{space, key, {elems.begin(), elems.end()}});
    });
    return out;
  }

  void absorb_recovered(std::uint8_t space, Point key,
                        std::vector<Element> elems) {
    for (overlay::VKind k : overlay::kAllKinds) {
      const overlay::VirtualState& st = vstate(k);
      if (overlay::arc_contains(st.self.label, st.succ.label, key)) {
        dht_.absorb_entry(space, k, key, std::move(elems));
        return;
      }
    }
    SKS_CHECK_MSG(false, "recovered key " << key << " not owned by node "
                                          << id());
  }

  /// The anchor's replicable metadata: just the heap-size counter.
  std::vector<std::uint64_t> anchor_blob() const {
    if (!hosts_anchor()) return {};
    return {anchor_m_};
  }

  void install_anchor_blob(const std::vector<std::uint64_t>& w) {
    SKS_CHECK_MSG(w.size() == 1, "malformed seap anchor blob");
    anchor_m_ = w[0];
  }

 private:
  struct PendingOp {
    bool is_insert = false;
    Element element{};
    DeleteCallback callback;
    std::uint64_t issue_seq = 0;
  };

  struct CycleState {
    std::vector<PendingOp> inserts;
    std::vector<PendingOp> deletes;
    std::size_t unacked_puts = 0;
    bool contributed_deletes = false;
  };

  // -- anchor side --

  void on_insert_total(std::uint64_t cycle, std::uint64_t k_ins) {
    anchor_m_ += k_ins;
    ins_go_.broadcast(cycle, InsGo{cycle});
  }

  void on_delete_total(std::uint64_t cycle, std::uint64_t k_del) {
    AnchorCycle& ac = anchor_cycles_[cycle];
    ac.k_del = k_del;
    ac.k_eff = k_del < anchor_m_ ? k_del : anchor_m_;
    if (ac.k_eff == 0) {
      // Nothing to move; deleters (if any) all receive ⊥.
      finish_anchor_cycle(cycle);
      return;
    }
    if (ac.k_eff == anchor_m_) {
      // Every element is deleted: no selection needed, T = +inf.
      ac.threshold = kselect::kMaxKey;
      finish_anchor_cycle(cycle);
      return;
    }
    kselect_.start(cycle, ac.k_eff);
  }

  void on_kselect_result(std::uint64_t cycle,
                         std::optional<kselect::CandidateKey> kth) {
    SKS_CHECK_MSG(kth.has_value(), "KSelect failed for a valid k");
    AnchorCycle& ac = anchor_cycles_.at(cycle);
    ac.threshold = *kth;
    finish_anchor_cycle(cycle);
  }

  void finish_anchor_cycle(std::uint64_t cycle) {
    AnchorCycle& ac = anchor_cycles_.at(cycle);
    anchor_m_ -= ac.k_eff;
    if (ac.k_eff > 0) {
      thresh_.broadcast(cycle, Thresh{cycle, ac.threshold, ac.k_eff});
    }
    // Hand the deleters their sub-intervals of [1, k_del]; positions
    // beyond k_eff return ⊥.
    del_agg_.distribute(cycle, DelDown{Interval{1, ac.k_del}, ac.k_eff});
    anchor_cycles_.erase(cycle);
  }

  // -- host side --

  void on_insert_go(std::uint64_t cycle) {
    CycleState& cs = cycles_.at(cycle);
    if (!rng_seeded_) {
      // Host id is assigned after construction; derive the per-node
      // stream lazily.
      rng_.reseed(config_.rng_seed ^ (0x9e3779b97f4a7c15ULL * (id() + 1)));
      rng_seeded_ = true;
    }
    cs.unacked_puts = cs.inserts.size();
    if (cs.unacked_puts == 0) {
      contribute_deletes(cycle);
      return;
    }
    for (auto& op : cs.inserts) {
      const Point key = rng_.next();
      SeapOpRecord rec;
      rec.issue_seq = op.issue_seq;
      rec.cycle = cycle;
      rec.is_insert = true;
      rec.element = op.element;
      rec.completed = true;
      trace_.push_back(rec);
      dht_.put(key, op.element,
               [this, cycle] {
                 CycleState& s = cycles_.at(cycle);
                 SKS_CHECK(s.unacked_puts > 0);
                 if (--s.unacked_puts == 0) contribute_deletes(cycle);
               },
               kMainSpace);
    }
  }

  void contribute_deletes(std::uint64_t cycle) {
    CycleState& cs = cycles_.at(cycle);
    SKS_CHECK(!cs.contributed_deletes);
    cs.contributed_deletes = true;
    // This host's inserts are all confirmed: the Insert phase ends here
    // and the DeleteMin phase begins.
    trace::Tracer& tr = tracer();
    if (tr.enabled()) {
      tr.phase_end(id(), "seap.phase1.insert", cycle);
      tr.phase_begin(id(), "seap.phase2.deletemin", cycle);
    }
    del_agg_.contribute(cycle, DelCountUp{cs.deletes.size()});
  }

  void on_threshold(std::uint64_t cycle, const Thresh& t) {
    // Count eligible elements now; the move happens when the interval
    // arrives. No put can interleave (the insert phase is globally done),
    // so the count stays valid.
    const std::size_t eligible = dht_.count_leq(kMainSpace, t.threshold);
    trace::Tracer& tr = tracer();
    if (tr.enabled()) tr.annotate(id(), "seap.eligible", eligible, cycle);
    pending_thresholds_[cycle] = t.threshold;
    move_agg_.contribute(cycle, MoveCountUp{eligible});
  }

  void on_move_total(std::uint64_t cycle, std::uint64_t total) {
    // total == k_eff by construction (exactly k_eff keys are <= T).
    move_agg_.distribute(cycle, MoveDown{Interval{1, total}});
  }

  void on_move_interval(std::uint64_t cycle, Interval iv) {
    auto it = pending_thresholds_.find(cycle);
    SKS_CHECK(it != pending_thresholds_.end());
    const Element threshold = it->second;
    pending_thresholds_.erase(it);
    std::vector<Element> moved = dht_.take_leq(kMainSpace, threshold);
    SKS_CHECK_MSG(moved.size() == iv.cardinality(),
                  "move interval does not match eligible count");
    trace::Tracer& tr = tracer();
    if (tr.enabled()) tr.annotate(id(), "seap.moved", moved.size(), cycle);
    Position pos = iv.lo;
    for (const auto& e : moved) {
      dht_.put(position_key(cycle, pos), e, nullptr, kPositionSpace);
      ++pos;
    }
  }

  void on_delete_interval(std::uint64_t cycle, const DelDown& down) {
    CycleState& cs = cycles_.at(cycle);
    SKS_CHECK(down.iv.cardinality() == cs.deletes.size());
    Position pos = down.iv.lo;
    for (auto& op : cs.deletes) {
      SeapOpRecord rec;
      rec.issue_seq = op.issue_seq;
      rec.cycle = cycle;
      rec.is_insert = false;
      rec.pos = pos;
      if (pos > down.k_eff) {
        rec.bottom = true;
        rec.completed = true;
        trace_.push_back(rec);
        finish_delete(std::move(op.callback), std::nullopt);
      } else {
        const std::size_t rec_idx = trace_.size();
        trace_.push_back(rec);
        auto cb = std::move(op.callback);
        dht_.get(position_key(cycle, pos),
                 [this, rec_idx, cb](const Element& e) {
                   trace_[rec_idx].element = e;
                   trace_[rec_idx].completed = true;
                   finish_delete(cb, e);
                 },
                 kPositionSpace);
      }
      ++pos;
    }
    // The deleters' fetches are issued; this host's part of the DeleteMin
    // phase is done.
    trace::Tracer& tr = tracer();
    if (tr.enabled()) tr.phase_end(id(), "seap.phase2.deletemin", cycle);
    cycles_.erase(cycle);
  }

  Point position_key(std::uint64_t cycle, Position pos) const {
    return hash_.point({0x5ea90002ULL, cycle, pos});
  }

  /// Acknowledge a delete: immediate without recovery, deferred to cycle
  /// commit with it (an acknowledgement must never be retracted).
  void finish_delete(DeleteCallback cb, std::optional<Element> e) {
    if (recovery_.enabled()) {
      deferred_.emplace_back(std::move(cb), e);
    } else if (cb) {
      cb(e);
    }
  }

  /// Everything a cycle may mutate, snapshotted at its start.
  struct EpochCheckpoint {
    dht::DhtComponent::Snapshot dht;
    std::deque<PendingOp> buffered;
    std::uint64_t next_cycle = 0;
    std::uint64_t next_issue_seq = 0;
    std::uint64_t anchor_m = 0;
    std::size_t trace_len = 0;
  };

  SeapConfig config_;
  HashFunction hash_;
  Rng rng_;
  bool rng_seeded_ = false;
  dht::DhtComponent dht_;
  overlay::MembershipComponent membership_;
  kselect::KSelectComponent kselect_;

  agg::Aggregator<InsCountUp, InsCountUp> ins_agg_;  // up-only
  agg::Broadcaster<InsGo> ins_go_;
  agg::Aggregator<DelCountUp, DelDown> del_agg_;
  agg::Broadcaster<Thresh> thresh_;
  agg::Aggregator<MoveCountUp, MoveDown> move_agg_;
  recovery::RecoveryComponent recovery_;

  std::optional<EpochCheckpoint> ckpt_;
  std::vector<std::pair<DeleteCallback, std::optional<Element>>> deferred_;

  std::deque<PendingOp> buffered_;
  std::size_t buffered_inserts_ = 0;  ///< inserts within buffered_
  std::map<std::uint64_t, CycleState> cycles_;
  std::map<std::uint64_t, Element> pending_thresholds_;
  std::uint64_t next_cycle_ = 0;
  std::uint64_t next_issue_seq_ = 0;

  // Anchor-only state.
  struct AnchorCycle {
    std::uint64_t k_del = 0;
    std::uint64_t k_eff = 0;
    Element threshold{};
  };
  std::uint64_t anchor_m_ = 0;
  std::map<std::uint64_t, AnchorCycle> anchor_cycles_;

  std::vector<SeapOpRecord> trace_;
};

}  // namespace sks::seap
