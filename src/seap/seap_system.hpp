// Harness for a complete Seap deployment: builds the overlay, drives
// phase-barriered cycles and gathers traces for the semantics checkers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "overlay/topology.hpp"
#include "seap/seap_node.hpp"
#include "sim/network.hpp"

namespace sks::seap {

class SeapSystem {
 public:
  struct Options {
    std::size_t num_nodes = 8;
    std::uint64_t seed = 0x5ea9edULL;
    sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous;
    std::uint64_t max_delay = 8;
    std::uint64_t expected_elements = 1u << 20;
    std::uint64_t max_priority = ~0ULL >> 16;  ///< arbitrary priorities
    /// Enable the Conclusion's sequentially consistent variant (see
    /// SeapConfig::sequentially_consistent).
    bool sequentially_consistent = false;
  };

  explicit SeapSystem(const Options& opts) : opts_(opts) {
    sim::NetworkConfig cfg;
    cfg.mode = opts.mode;
    cfg.max_delay = opts.max_delay;
    cfg.seed = opts.seed;
    net_ = std::make_unique<sim::Network>(cfg);

    HashFunction label_hash(opts.seed);
    const auto links = overlay::build_topology(opts.num_nodes, label_hash);
    const auto params = overlay::RouteParams::for_system(opts.num_nodes);

    SeapConfig config;
    config.num_nodes = opts.num_nodes;
    config.hash_seed = opts.seed ^ 0x5ea9000ULL;
    config.rng_seed = opts.seed ^ 0x5eed000ULL;
    config.widths = dht::DhtWidths::for_system(
        opts.num_nodes, opts.max_priority, opts.expected_elements);
    config.kselect.num_nodes = opts.num_nodes;
    config.kselect.hash_seed = opts.seed ^ 0xca11ULL;
    config.kselect.rng_seed = opts.seed ^ 0x5a317ULL;
    config.sequentially_consistent = opts.sequentially_consistent;

    for (std::size_t i = 0; i < opts.num_nodes; ++i) {
      const NodeId id =
          net_->add_node(std::make_unique<SeapNode>(params, config));
      auto& node = net_->node_as<SeapNode>(id);
      node.install_links(links[i]);
      node.membership().mark_bootstrapped();
      if (node.hosts_anchor()) anchor_ = id;
      active_.insert(id);
    }
  }

  std::size_t size() const { return opts_.num_nodes; }
  sim::Network& net() { return *net_; }
  SeapNode& node(NodeId v) { return net_->node_as<SeapNode>(v); }
  NodeId anchor() const { return anchor_; }
  SeapNode& anchor_node() { return node(anchor_); }

  Element insert(NodeId v, Priority prio) {
    const Element e{prio, next_element_id_++};
    node(v).insert(e);
    return e;
  }

  void delete_min(NodeId v, SeapNode::DeleteCallback cb = nullptr) {
    node(v).delete_min(std::move(cb));
  }

  /// Run one full cycle (Insert phase + DeleteMin phase) to quiescence;
  /// returns the number of rounds it took.
  std::uint64_t run_cycle() {
    for (NodeId v : active_) node(v).start_cycle();
    ++cycles_run_;
    return net_->run_until_idle();
  }

  // ---- Churn (Contribution 4): applied lazily between cycles -----------

  /// Add a node to the running system; see SkeapSystem::join_node.
  NodeId join_node() {
    SKS_CHECK_MSG(net_->idle(), "join while a cycle is in flight");
    SeapConfig config;
    config.num_nodes = opts_.num_nodes;
    config.hash_seed = opts_.seed ^ 0x5ea9000ULL;
    config.rng_seed = opts_.seed ^ 0x5eed000ULL;
    config.widths = dht::DhtWidths::for_system(
        opts_.num_nodes, opts_.max_priority, opts_.expected_elements);
    config.kselect.num_nodes = opts_.num_nodes;
    config.kselect.hash_seed = opts_.seed ^ 0xca11ULL;
    config.kselect.rng_seed = opts_.seed ^ 0x5a317ULL;
    config.sequentially_consistent = opts_.sequentially_consistent;
    const auto params = overlay::RouteParams::for_system(opts_.num_nodes);
    const NodeId id =
        net_->add_node(std::make_unique<SeapNode>(params, config));
    auto& joiner = net_->node_as<SeapNode>(id);
    HashFunction label_hash(opts_.seed);
    joiner.membership().join(anchor_, label_hash);
    net_->run_until_idle();
    SKS_CHECK(joiner.membership().joined());
    joiner.set_next_cycle(next_cycle_counter());
    active_.insert(id);
    ++opts_.num_nodes;
    migrate_anchor_if_needed();
    return id;
  }

  /// Remove a node; see SkeapSystem::leave_node.
  void leave_node(NodeId v) {
    SKS_CHECK_MSG(net_->idle(), "leave while a cycle is in flight");
    SKS_CHECK_MSG(node(v).buffered_ops() == 0,
                  "node has buffered ops; run a cycle first");
    const bool was_anchor = node(v).hosts_anchor();
    std::uint64_t m = 0;
    if (was_anchor) m = node(v).take_anchor_size();
    node(v).membership().leave();
    net_->run_until_idle();
    active_.erase(v);
    if (was_anchor) {
      for (NodeId w : active_) {
        if (node(w).hosts_anchor()) {
          node(w).install_anchor_size(m);
          anchor_ = w;
          break;
        }
      }
    }
  }

  const std::set<NodeId>& active_nodes() const { return active_; }

  /// Ops still buffered across all nodes (the SC variant defers work).
  std::size_t total_buffered() {
    std::size_t total = 0;
    for (NodeId v : active_) total += node(v).buffered_ops();
    return total;
  }

  std::vector<SeapOpRecord> gather_trace() {
    std::vector<SeapOpRecord> all;
    for (NodeId v = 0; v < net_->size(); ++v) {
      for (const auto& r : node(v).trace()) {
        all.push_back(r);
        all.back().node = v;
      }
    }
    return all;
  }

  const Options& options() const { return opts_; }

 private:
  std::uint64_t next_cycle_counter() {
    // All active nodes share the same cycle counter; read it off any one
    // of them by starting no cycle — we track it here instead.
    return cycles_run_;
  }

  void migrate_anchor_if_needed() {
    if (node(anchor_).hosts_anchor()) return;
    const std::uint64_t m = node(anchor_).take_anchor_size();
    for (NodeId w : active_) {
      if (node(w).hosts_anchor()) {
        node(w).install_anchor_size(m);
        anchor_ = w;
        return;
      }
    }
    SKS_CHECK_MSG(false, "no anchor after churn");
  }

  Options opts_;
  std::unique_ptr<sim::Network> net_;
  NodeId anchor_ = kNoNode;
  std::set<NodeId> active_;
  std::uint64_t cycles_run_ = 0;
  ElementId next_element_id_ = 1;
};

}  // namespace sks::seap
