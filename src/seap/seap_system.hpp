// Harness for a complete Seap deployment: a thin typed wrapper over the
// shared runtime::Cluster engine, which owns the network, topology
// bootstrap, cycle driving and churn; this file only adds the Seap config
// derivation and the cycle-specific conveniences.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "runtime/cluster.hpp"
#include "seap/seap_node.hpp"

namespace sks::runtime {

/// Seap's anchor carries only the heap-size counter m; a joiner's cycle
/// counter is synchronized to the cycles started so far.
template <>
struct AnchorTraits<seap::SeapNode> {
  using Handover = std::uint64_t;
  static Handover take(seap::SeapNode& n) { return n.take_anchor_size(); }
  static void install(seap::SeapNode& n, Handover m) {
    n.install_anchor_size(m);
  }
  static void sync_counter(seap::SeapNode& n, std::uint64_t cycles) {
    n.set_next_cycle(cycles);
  }
};

}  // namespace sks::runtime

namespace sks::seap {

class SeapSystem {
 public:
  struct Options {
    std::size_t num_nodes = 8;
    std::uint64_t seed = 0x5ea9edULL;
    sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous;
    std::uint64_t max_delay = 8;
    std::uint64_t expected_elements = 1u << 20;
    std::uint64_t max_priority = ~0ULL >> 16;  ///< arbitrary priorities
    /// Enable the Conclusion's sequentially consistent variant (see
    /// SeapConfig::sequentially_consistent).
    bool sequentially_consistent = false;
    /// Channel fault schedule (all-zero = the paper's perfect network).
    sim::FaultPlan faults{};
    /// Reliable transport; enable whenever faults lose messages.
    sim::ReliableConfig reliable{};
    /// Crash recovery (failure detector + k-replication + epoch rollback).
    recovery::RecoveryConfig recovery{};
    /// Wire mode: marshal every send through encode -> bytes -> decode.
    bool wire = sim::wire_mode_default();
    /// Worker threads / execution shards for the round executor (see
    /// sim::NetworkConfig; thread count never changes the trace).
    std::size_t threads = sim::thread_count_default();
    std::size_t shards = sim::shard_count_default();
    /// Admission control: per-node cap on buffered inserts (see
    /// SeapConfig::max_buffered_ops). 0 = unbounded.
    std::size_t max_buffered_ops = 0;
    /// Bound the network's pending-ring growth in rounds (see
    /// sim::NetworkConfig::max_pending_rounds). 0 = unbounded.
    std::uint64_t max_pending_rounds = 0;
    /// Adaptive batching (see runtime::ClusterOptions). max == 0 = off.
    std::size_t adaptive_batch_min = 0;
    std::size_t adaptive_batch_max = 0;
  };

  using Cluster = runtime::Cluster<SeapNode, SeapConfig>;

  /// The single place the protocol config (seed-derivation constants, DHT
  /// widths, nested KSelect config) is derived from the options — used at
  /// bootstrap and for every later join.
  static SeapConfig make_config(const Options& opts, std::size_t num_nodes) {
    SeapConfig config;
    config.num_nodes = num_nodes;
    config.hash_seed = opts.seed ^ 0x5ea9000ULL;
    config.rng_seed = opts.seed ^ 0x5eed000ULL;
    config.widths = dht::DhtWidths::for_system(
        num_nodes, opts.max_priority, opts.expected_elements);
    config.kselect.num_nodes = num_nodes;
    config.kselect.hash_seed = opts.seed ^ 0xca11ULL;
    config.kselect.rng_seed = opts.seed ^ 0x5a317ULL;
    config.sequentially_consistent = opts.sequentially_consistent;
    config.recovery = opts.recovery;
    config.max_buffered_ops = opts.max_buffered_ops;
    return config;
  }

  static runtime::ClusterOptions cluster_options(const Options& opts) {
    runtime::ClusterOptions c;
    c.num_nodes = opts.num_nodes;
    c.seed = opts.seed;
    c.mode = opts.mode;
    c.max_delay = opts.max_delay;
    c.expected_elements = opts.expected_elements;
    c.faults = opts.faults;
    c.reliable = opts.reliable;
    c.recovery = opts.recovery;
    c.wire = opts.wire;
    c.threads = opts.threads;
    c.shards = opts.shards;
    c.max_pending_rounds = opts.max_pending_rounds;
    c.adaptive_batch_min = opts.adaptive_batch_min;
    c.adaptive_batch_max = opts.adaptive_batch_max;
    return c;
  }

  explicit SeapSystem(const Options& opts)
      : opts_(opts),
        cluster_(cluster_options(opts),
                 [opts](std::size_t n) { return make_config(opts, n); }) {}

  std::size_t size() const { return cluster_.size(); }
  sim::Network& net() { return cluster_.net(); }
  SeapNode& node(NodeId v) { return cluster_.node(v); }
  NodeId anchor() const { return cluster_.anchor(); }
  SeapNode& anchor_node() { return cluster_.anchor_node(); }

  /// The underlying runtime engine (epoch history, start_all, ...).
  Cluster& cluster() { return cluster_; }

  /// Insert with an auto-assigned unique element id; returns the element.
  /// With admission control on, use try_insert — this asserts acceptance.
  Element insert(NodeId v, Priority prio) {
    const Element e{prio, next_element_id_++};
    const AdmitResult r = node(v).insert(e);
    SKS_CHECK_MSG(r.accepted && !r.shed,
                  "insert shed under admission control; use try_insert");
    return e;
  }

  /// Outcome of try_insert: `element` is the buffered element (nullopt
  /// when the insert itself was rejected); `shed` is whichever element —
  /// this one or a previously buffered one — admission control rejected.
  struct InsertOutcome {
    std::optional<Element> element;
    std::optional<Element> shed;
  };

  /// Admission-control-aware insert: never throws on overload, reporting
  /// the shed element instead so callers (and the shed-aware oracle) can
  /// account for every rejected operation.
  InsertOutcome try_insert(NodeId v, Priority prio) {
    const Element e{prio, next_element_id_++};
    AdmitResult r = node(v).insert(e);
    InsertOutcome out;
    if (r.accepted) out.element = e;
    out.shed = std::move(r.shed);
    return out;
  }

  void delete_min(NodeId v, SeapNode::DeleteCallback cb = nullptr) {
    node(v).delete_min(std::move(cb));
  }

  /// Run one full cycle (Insert phase + DeleteMin phase) to quiescence;
  /// returns the number of rounds it took.
  std::uint64_t run_cycle() {
    const std::size_t limit = cluster_.batch_limit();
    return cluster_.run_epoch(
        [limit](SeapNode& n) { n.start_cycle(limit); });
  }

  // ---- Churn (Contribution 4): applied lazily between cycles -----------

  /// Add a node to the running system; see runtime::Cluster::join_node.
  NodeId join_node() { return cluster_.join_node(); }

  /// Remove a node; see runtime::Cluster::leave_node.
  void leave_node(NodeId v) { cluster_.leave_node(v); }

  const std::set<NodeId>& active_nodes() const {
    return cluster_.active_nodes();
  }

  /// Ops still buffered across all nodes (the SC variant defers work).
  std::size_t total_buffered() {
    std::size_t total = 0;
    for (NodeId v : active_nodes()) total += node(v).buffered_ops();
    return total;
  }

  std::vector<SeapOpRecord> gather_trace() { return cluster_.gather_trace(); }

  const Options& options() const { return opts_; }

 private:
  Options opts_;
  Cluster cluster_;
  ElementId next_element_id_ = 1;
};

}  // namespace sks::seap
