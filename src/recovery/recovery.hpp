// Crash recovery: failure detection and state replication (robustness
// layer for Section 5's churn discussion, specialised to crash-stop).
//
// Three pieces cooperate to survive the crash-stop of up to f = k nodes:
//
//  * A lease/heartbeat failure detector. Every node heartbeats its
//    max(1, k) id-ring successors as *background* messages (fire-and-
//    forget, excluded from quiescence — see Network::send_background) and
//    monitors its predecessors. Silence for `suspect_after` rounds moves
//    a monitor alive → suspect (probes are sent while suspect); another
//    `declare_after` silent rounds moves suspect → declared-dead. A
//    heartbeat or probe reply while merely suspected reintegrates the
//    node with no data loss — suspicion has no side effects; only a
//    declaration does.
//
//  * A replication layer. Each node mirrors its durable state (DHT heap
//    cells plus the anchor's metadata blob) on its k id-ring successors.
//    Mirrors are updated incrementally: at every epoch boundary the owner
//    diffs its DHT stores against the pre-epoch snapshot and ships only
//    the changed cells as one ReplicaDelta per mirror. Deltas are staged
//    at the receiver and committed only when the epoch commits, so an
//    aborted epoch cannot corrupt a mirror.
//
//  * A recovery coordinator (runtime/cluster.hpp) that, on a declared
//    death, fences the dead node, rolls the survivors back to the
//    pre-epoch checkpoint, promotes a mirror, re-homes the recovered
//    cells, repairs the overlay, and re-runs the epoch.
//
// Timing comes from the tracer's round clock (begin_round stamps it even
// when tracing is disabled), driven via the host's activate hook.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"
#include "overlay/overlay_node.hpp"
#include "sim/payload.hpp"
#include "trace/tracer.hpp"

namespace sks::recovery {

struct RecoveryConfig {
  bool enabled = false;          ///< master switch (detector + replication)
  std::uint32_t replication = 0;  ///< k: mirrors per node (f = k tolerated)
  std::uint32_t heartbeat_every = 2;  ///< rounds between heartbeats/probes
  std::uint32_t suspect_after = 8;    ///< silent rounds: alive -> suspect
  std::uint32_t declare_after = 12;   ///< further silence: suspect -> dead
  /// Scrub cadence: every `scrub_every` committed epochs the coordinator
  /// audits owner vs mirror state digests and repairs divergent mirrors
  /// from the quorum (see Cluster::scrub_mirrors). Coordinator-side and
  /// out-of-band — a scrub sends no messages and burns no rounds, so
  /// enabling it never perturbs protocol traffic. 0 = never scrub.
  std::uint32_t scrub_every = 1;
};

/// One replicated DHT cell. `elems` empty encodes removal of the cell.
/// The virtual-node kind is deliberately absent: within one owner each
/// point belongs to exactly one of its three arcs, and after a promotion
/// the recovered key is re-homed by an arc scan anyway.
struct DeltaEntry {
  std::uint8_t space = 0;
  Point key = 0;
  std::vector<Element> elems;

  bool operator==(const DeltaEntry&) const = default;
};

// ---- State digests ---------------------------------------------------
//
// A 64-bit fingerprint of one node's durable state (its DHT heap cells
// plus the anchor metadata blob), computable identically by the owner
// (from its live stores), by a mirror holder (from its Mirror map), and
// by the coordinator's scrub pass. Cells combine with a commutative sum
// so iteration order — std::map at the holder, arc scans at the owner —
// never matters; elements *within* a cell and the anchor-blob words are
// order-dependent chains because their order is part of the state.

/// Seed for the digest hash chain — fixed so every party agrees.
inline constexpr std::uint64_t kDigestSeed = 0xd16e575c2ab5ULL;

/// Digest of one durable cell. Empty cells are absent cells and must not
/// be folded in (an owner never materialises them; a mirror erases them).
inline std::uint64_t cell_digest(std::uint8_t space, Point key,
                                 const std::vector<Element>& elems) {
  std::uint64_t h = hash_u64(kDigestSeed, space);
  h = hash_u64(h, key);
  for (const Element& el : elems) {
    h = hash_u64(h, el.prio);
    h = hash_u64(h, el.id);
  }
  return h;
}

/// Digest of a full durable state given as owner-side cell entries.
inline std::uint64_t state_digest(
    const std::vector<DeltaEntry>& entries,
    const std::vector<std::uint64_t>& anchor_blob, bool has_anchor) {
  std::uint64_t sum = 0;
  for (const DeltaEntry& e : entries) {
    if (e.elems.empty()) continue;
    sum += cell_digest(e.space, e.key, e.elems);
  }
  std::uint64_t a = hash_u64(kDigestSeed, has_anchor ? 1 : 0);
  for (std::uint64_t w : anchor_blob) a = hash_u64(a, w);
  return sum + a;
}

/// Periodic lease renewal, node -> each of its monitors (successors).
struct Heartbeat final : sim::Action<Heartbeat> {
  static constexpr const char* kActionName = "recovery.heartbeat";
  std::uint64_t size_bits() const override { return 16; }

  void encode(wire::WireWriter&) const override {}
  static sim::Owned<Heartbeat> decode(wire::WireReader&) {
    return sim::make_payload<Heartbeat>();
  }
};

/// Monitor -> suspect: "prove you are alive before I declare you dead".
struct SuspectProbe final : sim::Action<SuspectProbe> {
  static constexpr const char* kActionName = "recovery.probe";
  std::uint64_t size_bits() const override { return 16; }

  void encode(wire::WireWriter&) const override {}
  static sim::Owned<SuspectProbe> decode(wire::WireReader&) {
    return sim::make_payload<SuspectProbe>();
  }
};

/// Suspect -> monitor: refutation of the suspicion.
struct ProbeReply final : sim::Action<ProbeReply> {
  static constexpr const char* kActionName = "recovery.probe_reply";
  std::uint64_t size_bits() const override { return 16; }

  void encode(wire::WireWriter&) const override {}
  static sim::Owned<ProbeReply> decode(wire::WireReader&) {
    return sim::make_payload<ProbeReply>();
  }
};

/// Incremental mirror update, owner -> each of its k mirror holders,
/// shipped over the reliable transport at every epoch boundary.
struct ReplicaDelta final : sim::Action<ReplicaDelta> {
  static constexpr const char* kActionName = "recovery.delta";
  NodeId owner = kNoNode;
  std::vector<DeltaEntry> entries;
  std::vector<std::uint64_t> anchor_blob;
  bool has_anchor = false;
  /// state_digest of the owner's FULL post-epoch durable state (not of
  /// this delta): the holder re-derives it from the staged mirror after
  /// applying the delta, so any divergence — a corrupted mirror, a lost
  /// delta, a replication bug — is caught at apply time.
  std::uint64_t digest = 0;

  std::uint64_t size_bits() const override {
    std::uint64_t bits = 128;  // owner + counts + flags + digest
    for (const auto& e : entries) {
      bits += 72 + 128 * static_cast<std::uint64_t>(e.elems.size());
    }
    bits += 64 * static_cast<std::uint64_t>(anchor_blob.size());
    return bits;
  }

  void encode(wire::WireWriter& w) const override {
    w.leb(owner);
    w.gamma(entries.size());
    for (const auto& e : entries) {
      w.bits(e.space, 1);
      w.bits(e.key, 64);
      w.gamma(e.elems.size());
      for (const auto& el : e.elems) el.encode(w);
    }
    w.gamma(anchor_blob.size());
    for (std::uint64_t word : anchor_blob) w.bits(word, 64);
    w.boolean(has_anchor);
    w.bits(digest, 64);
  }

  static sim::Owned<ReplicaDelta> decode(wire::WireReader& r) {
    auto d = sim::make_payload<ReplicaDelta>();
    d->owner = static_cast<NodeId>(r.leb());
    const std::uint64_t num = r.gamma();
    d->entries.reserve(num);
    for (std::uint64_t i = 0; i < num; ++i) {
      DeltaEntry e;
      e.space = static_cast<std::uint8_t>(r.bits(1));
      e.key = r.bits(64);
      const std::uint64_t cnt = r.gamma();
      e.elems.reserve(cnt);
      for (std::uint64_t j = 0; j < cnt; ++j) {
        e.elems.push_back(Element::decode(r));
      }
      d->entries.push_back(std::move(e));
    }
    const std::uint64_t words = r.gamma();
    d->anchor_blob.reserve(words);
    for (std::uint64_t i = 0; i < words; ++i) d->anchor_blob.push_back(r.bits(64));
    d->has_anchor = r.boolean();
    d->digest = r.bits(64);
    return d;
  }
};

/// The state a mirror holder keeps on behalf of one owner.
struct Mirror {
  /// (space, key) -> elements. Kept ordered so promotion is deterministic.
  std::map<std::pair<std::uint8_t, Point>, std::vector<Element>> entries;
  std::vector<std::uint64_t> anchor_blob;
  bool has_anchor = false;
};

/// Digest of a held mirror — matches state_digest over the owner's full
/// state when (and only when) the mirror is faithful.
inline std::uint64_t digest_of(const Mirror& m) {
  std::uint64_t sum = 0;
  for (const auto& [key, elems] : m.entries) {
    if (elems.empty()) continue;
    sum += cell_digest(key.first, key.second, elems);
  }
  std::uint64_t a = hash_u64(kDigestSeed, m.has_anchor ? 1 : 0);
  for (std::uint64_t w : m.anchor_blob) a = hash_u64(a, w);
  return sum + a;
}

/// Per-node failure detector + mirror store. One per protocol node,
/// attached to its OverlayNode host. Inert (no handlers fire, no
/// background traffic) unless cfg.enabled.
class RecoveryComponent {
 public:
  enum class MonitorState { kAlive, kSuspect };

  RecoveryComponent(overlay::OverlayNode& host, RecoveryConfig cfg)
      : host_(host), cfg_(cfg) {
    host_.on_direct_payload<Heartbeat>(
        [this](NodeId from, sim::Owned<Heartbeat>) { note_alive(from); });
    host_.on_direct_payload<SuspectProbe>(
        [this](NodeId from, sim::Owned<SuspectProbe>) {
          // Answer even while we suspect others: liveness is symmetric.
          host_.send_background(from, sim::make_payload<ProbeReply>());
        });
    host_.on_direct_payload<ProbeReply>(
        [this](NodeId from, sim::Owned<ProbeReply>) { note_alive(from); });
    host_.on_direct_payload<ReplicaDelta>(
        [this](NodeId, sim::Owned<ReplicaDelta> d) {
          apply_delta(std::move(d));
        });
    if (cfg_.enabled) {
      host_.set_activate_hook([this] { on_tick(); });
    }
  }

  const RecoveryConfig& config() const { return cfg_; }
  bool enabled() const { return cfg_.enabled; }

  /// (Re)install the id ring this node monitors and replicates over.
  /// Called at bootstrap and after every membership repair. Resets the
  /// detector (fresh leases from the current round) and clears any
  /// pending declarations — the coordinator has already acted on them.
  void set_ring(std::vector<NodeId> members) {
    std::sort(members.begin(), members.end());
    ring_ = std::move(members);
    declared_.clear();
    heartbeat_targets_ = neighbours(/*forward=*/true);
    watch_.clear();
    const std::uint64_t now = host_.tracer().round();
    for (NodeId v : neighbours(/*forward=*/false)) {
      Monitor m;
      m.last_heard = now;
      m.last_probe = now;
      watch_.emplace(v, m);
    }
  }

  const std::vector<NodeId>& ring() const { return ring_; }
  const std::vector<NodeId>& heartbeat_targets() const {
    return heartbeat_targets_;
  }

  /// The k ring successors holding this node's mirror (empty when k = 0).
  std::vector<NodeId> replica_targets() const {
    if (cfg_.replication == 0) return {};
    auto succ = neighbours(/*forward=*/true);
    if (succ.size() > cfg_.replication) succ.resize(cfg_.replication);
    return succ;
  }

  /// Nodes this monitor has declared dead (and not yet been told about
  /// via set_ring). The coordinator polls this after every step.
  const std::set<NodeId>& declared() const { return declared_; }

  MonitorState monitor_state(NodeId v) const {
    auto it = watch_.find(v);
    SKS_CHECK_MSG(it != watch_.end(), "node " << v << " is not monitored");
    return it->second.state;
  }

  // ---- Replication: owner side. -------------------------------------

  /// Ship one epoch's delta to every mirror holder (reliable traffic).
  /// `digest` fingerprints the owner's full post-epoch durable state
  /// (state_digest over everything, not just the changed cells) so each
  /// holder can audit its staged mirror on apply.
  void send_delta(std::vector<DeltaEntry> entries,
                  std::vector<std::uint64_t> anchor_blob, bool has_anchor,
                  std::uint64_t digest) {
    for (NodeId to : replica_targets()) {
      auto d = sim::make_payload<ReplicaDelta>();
      d->owner = host_.id();
      d->entries = entries;
      d->anchor_blob = anchor_blob;
      d->has_anchor = has_anchor;
      d->digest = digest;
      host_.send_direct(to, std::move(d));
    }
  }

  // ---- Replication: holder side. ------------------------------------

  /// Promote the staged deltas into the committed mirrors. Called by the
  /// coordinator once the epoch (including the delta exchange) completed
  /// with no declared death.
  void commit_staged() {
    for (auto& [owner, m] : staged_) mirrors_[owner] = std::move(m);
    staged_.clear();
  }

  /// Discard the staged deltas of an aborted epoch.
  void abort_staged() { staged_.clear(); }

  bool has_mirror(NodeId owner) const { return mirrors_.count(owner) != 0; }
  const Mirror& mirror_of(NodeId owner) const {
    auto it = mirrors_.find(owner);
    SKS_CHECK_MSG(it != mirrors_.end(),
                  "no mirror for node " << owner << " held here");
    return it->second;
  }

  /// Out-of-band (re)seed of a mirror — bootstrap and post-repair resync,
  /// where the coordinator rebuilds mirrors from the owners' live state
  /// rather than replaying message history.
  void install_mirror(NodeId owner, Mirror m) {
    mirrors_[owner] = std::move(m);
  }
  void drop_mirror(NodeId owner) {
    mirrors_.erase(owner);
    staged_.erase(owner);
  }
  void clear_mirrors() {
    mirrors_.clear();
    staged_.clear();
  }

 private:
  struct Monitor {
    std::uint64_t last_heard = 0;
    std::uint64_t last_probe = 0;
    std::uint64_t suspected_at = 0;
    MonitorState state = MonitorState::kAlive;
    bool declared = false;
  };

  /// The max(1, k) distinct ring neighbours in the given direction.
  std::vector<NodeId> neighbours(bool forward) const {
    std::vector<NodeId> out;
    const std::size_t n = ring_.size();
    if (n < 2) return out;
    auto it = std::find(ring_.begin(), ring_.end(), host_.id());
    SKS_CHECK_MSG(it != ring_.end(), "node not a member of its own ring");
    std::size_t pos = static_cast<std::size_t>(it - ring_.begin());
    const std::size_t want =
        std::min<std::size_t>(std::max<std::uint32_t>(1, cfg_.replication),
                              n - 1);
    for (std::size_t i = 1; out.size() < want; ++i) {
      const std::size_t j = forward ? (pos + i) % n : (pos + n - i % n) % n;
      out.push_back(ring_[j]);
    }
    return out;
  }

  void on_tick() {
    const std::uint64_t now = host_.tracer().round();
    if (!heartbeat_targets_.empty() &&
        now % std::max<std::uint32_t>(1, cfg_.heartbeat_every) == 0) {
      for (NodeId to : heartbeat_targets_) {
        host_.send_background(to, sim::make_payload<Heartbeat>());
      }
    }
    for (auto& [v, m] : watch_) {
      if (m.declared) continue;
      if (m.state == MonitorState::kAlive) {
        if (now - m.last_heard >= cfg_.suspect_after) {
          m.state = MonitorState::kSuspect;
          m.suspected_at = now;
          m.last_probe = now;
          host_.tracer().lifecycle(trace::EventKind::kSuspect, v);
          host_.metrics().record_suspect();
          host_.send_background(v, sim::make_payload<SuspectProbe>());
        }
        continue;
      }
      // Suspect: keep probing; declare after the grace period expires.
      if (now - m.suspected_at >= cfg_.declare_after) {
        m.declared = true;
        declared_.insert(v);
        host_.tracer().lifecycle(trace::EventKind::kDeclareDead, v);
        host_.metrics().record_declared_dead();
        continue;
      }
      if (now - m.last_probe >=
          std::max<std::uint32_t>(1, cfg_.heartbeat_every)) {
        m.last_probe = now;
        host_.send_background(v, sim::make_payload<SuspectProbe>());
      }
    }
  }

  void note_alive(NodeId from) {
    auto it = watch_.find(from);
    if (it == watch_.end()) return;  // stale traffic from an old ring
    Monitor& m = it->second;
    if (m.declared) return;  // too late: the coordinator owns it now
    m.last_heard = host_.tracer().round();
    if (m.state == MonitorState::kSuspect) {
      m.state = MonitorState::kAlive;
      host_.tracer().lifecycle(trace::EventKind::kRecover, from);
      host_.metrics().record_recovery();
    }
  }

  void apply_delta(sim::Owned<ReplicaDelta> d) {
    // Stage on a copy of the committed mirror so an abort is a no-op.
    auto it = staged_.find(d->owner);
    if (it == staged_.end()) {
      Mirror base;
      auto cit = mirrors_.find(d->owner);
      if (cit != mirrors_.end()) base = cit->second;
      it = staged_.emplace(d->owner, std::move(base)).first;
    }
    Mirror& m = it->second;
    for (auto& e : d->entries) {
      const auto key = std::make_pair(e.space, e.key);
      if (e.elems.empty()) {
        m.entries.erase(key);
      } else {
        m.entries[key] = std::move(e.elems);
      }
    }
    if (d->has_anchor) {
      m.anchor_blob = std::move(d->anchor_blob);
      m.has_anchor = true;
    }
    // Audit the staged mirror against the owner's full-state digest. A
    // mismatch means the mirror has silently diverged (corruption that
    // slipped every lower check, or a replication bug); refuse to stage
    // it — the committed mirror stays at its last good state and the
    // next scrub pass repairs from quorum.
    if (digest_of(m) != d->digest) {
      host_.metrics().record_digest_mismatch();
      host_.tracer().lifecycle(trace::EventKind::kDigestMismatch,
                               host_.id());
      staged_.erase(it);
    }
  }

  overlay::OverlayNode& host_;
  RecoveryConfig cfg_;
  std::vector<NodeId> ring_;
  std::vector<NodeId> heartbeat_targets_;
  std::map<NodeId, Monitor> watch_;
  std::set<NodeId> declared_;
  std::map<NodeId, Mirror> mirrors_;  ///< committed, keyed by owner
  std::map<NodeId, Mirror> staged_;   ///< this epoch's pending deltas
};

}  // namespace sks::recovery
