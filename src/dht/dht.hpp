// The DHT embedded in the overlay (Lemma 2.2 (ii)–(iv)).
//
// Put(k, e) routes e to the virtual node owning the key point and stores
// it there; Get(k, v) routes to the same owner, removes the element and
// delivers it back to v. Because hash keys are pseudorandom, elements are
// distributed uniformly over the nodes (fairness, Lemma 2.2(iv)).
//
// Asynchrony rule from Skeap Phase 4: a Get may arrive before its matching
// Put; in that case the Get *waits at the owner* until the Put arrives —
// which eventually happens because messages are never lost.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/types.hpp"
#include "overlay/overlay_node.hpp"

namespace sks::dht {

/// Bit-size model for DHT messages: a key point plus an element, both
/// O(log n)-bit quantities in the paper's accounting.
struct DhtWidths {
  std::uint64_t key_bits = 24;
  std::uint64_t element_bits = 40;
  std::uint64_t node_id_bits = 12;

  static DhtWidths for_system(std::uint64_t n, std::uint64_t max_priority,
                              std::uint64_t max_elements) {
    DhtWidths w;
    w.node_id_bits = bits_for_max(n);
    w.element_bits = bits_for_max(max_priority) + bits_for_max(max_elements);
    w.key_bits = bits_for_max(max_elements) + bits_for_max(max_priority);
    return w;
  }
};

struct PutRequest final : sim::Action<PutRequest> {
  static constexpr const char* kActionName = "dht.put";
  Element element;
  NodeId requester = kNoNode;
  std::uint64_t request_id = 0;
  bool want_ack = false;
  std::uint8_t space = 0;
  std::uint64_t bits = 64;
  std::uint64_t size_bits() const override { return bits; }

  // Requests encode their accounted `bits`: they are re-routed hop by hop
  // and each hop re-charges the cached size. Replies/acks are terminal
  // and leave it off the wire (see GetReply).
  void encode(wire::WireWriter& w) const override {
    element.encode(w);
    w.leb(requester);
    w.delta(request_id);
    w.boolean(want_ack);
    w.bits(space, 1);
    w.leb(bits);
  }

  static sim::Owned<PutRequest> decode(wire::WireReader& r) {
    auto req = sim::make_payload<PutRequest>();
    req->element = Element::decode(r);
    req->requester = static_cast<NodeId>(r.leb());
    req->request_id = r.delta();
    req->want_ack = r.boolean();
    req->space = static_cast<std::uint8_t>(r.bits(1));
    req->bits = r.leb();
    return req;
  }
};

struct GetRequest final : sim::Action<GetRequest> {
  static constexpr const char* kActionName = "dht.get";
  NodeId requester = kNoNode;
  std::uint64_t request_id = 0;
  std::uint8_t space = 0;
  std::uint64_t bits = 48;
  std::uint64_t size_bits() const override { return bits; }

  void encode(wire::WireWriter& w) const override {
    w.leb(requester);
    w.delta(request_id);
    w.bits(space, 1);
    w.leb(bits);
  }

  static sim::Owned<GetRequest> decode(wire::WireReader& r) {
    auto req = sim::make_payload<GetRequest>();
    req->requester = static_cast<NodeId>(r.leb());
    req->request_id = r.delta();
    req->space = static_cast<std::uint8_t>(r.bits(1));
    req->bits = r.leb();
    return req;
  }
};

struct GetReply final : sim::Action<GetReply> {
  static constexpr const char* kActionName = "dht.get_reply";
  Element element;
  std::uint64_t request_id = 0;
  std::uint64_t bits = 48;
  std::uint64_t size_bits() const override { return bits; }

  // `bits` is accounting metadata, not message content: a reply is never
  // re-sent, and the network samples the accounted size from the original
  // payload before marshaling. Keeping it off the wire is what fits the
  // reply inside its own element_bits + log(request_id) budget.
  void encode(wire::WireWriter& w) const override {
    element.encode(w);
    w.delta(request_id);
  }

  static sim::Owned<GetReply> decode(wire::WireReader& r) {
    auto rep = sim::make_payload<GetReply>();
    rep->element = Element::decode(r);
    rep->request_id = r.delta();
    rep->bits = 0;  // not wired; see encode()
    return rep;
  }
};

struct PutAck final : sim::Action<PutAck> {
  static constexpr const char* kActionName = "dht.put_ack";
  std::uint64_t request_id = 0;
  std::uint64_t bits = 24;
  std::uint64_t size_bits() const override { return bits; }

  void encode(wire::WireWriter& w) const override { w.delta(request_id); }

  static sim::Owned<PutAck> decode(wire::WireReader& r) {
    auto ack = sim::make_payload<PutAck>();
    ack->request_id = r.delta();
    ack->bits = 0;  // not wired; see GetReply
    return ack;
  }
};

/// Attachable DHT role for an OverlayNode: both the client side (put/get
/// with local callbacks) and the server side (per-virtual-node storage and
/// waiting Gets).
class DhtComponent {
 public:
  using GetCallback = std::function<void(const Element&)>;
  using PutCallback = std::function<void()>;

  /// Independent keyspaces: protocols can keep several logical stores on
  /// the same DHT (Seap separates the main element store from the
  /// per-phase positional store of its DeleteMin phase).
  static constexpr std::size_t kNumSpaces = 2;

  /// A Get parked at an owner, waiting for its Put (public so membership
  /// handover can relocate it together with the stored data).
  struct WaitingGet {
    NodeId requester;
    std::uint64_t request_id;
  };

  /// Everything one virtual node stores for one arc of the cycle — moved
  /// wholesale during join/leave handover.
  struct ArcData {
    std::array<std::unordered_map<Point, std::deque<Element>>, kNumSpaces>
        elements;
    std::array<std::unordered_map<Point, std::deque<WaitingGet>>, kNumSpaces>
        waiting;

    std::size_t element_count() const {
      std::size_t total = 0;
      for (const auto& space : elements) {
        for (const auto& [key, elems] : space) total += elems.size();
      }
      return total;
    }

    /// Wire layout, per space: key-sorted (key, element list) cells, then
    /// key-sorted (key, waiting-get list) cells. Sorting makes the bytes
    /// canonical — the hash maps' iteration order is not.
    void encode(wire::WireWriter& w) const {
      for (std::size_t space = 0; space < kNumSpaces; ++space) {
        encode_cells(w, elements[space], [&](const Element& e) {
          e.encode(w);
        });
        encode_cells(w, waiting[space], [&](const WaitingGet& g) {
          w.leb(g.requester);
          w.delta(g.request_id);
        });
      }
    }

    static ArcData decode(wire::WireReader& r) {
      ArcData arc;
      for (std::size_t space = 0; space < kNumSpaces; ++space) {
        decode_cells(r, arc.elements[space], [&] {
          return Element::decode(r);
        });
        decode_cells(r, arc.waiting[space], [&] {
          WaitingGet g;
          g.requester = static_cast<NodeId>(r.leb());
          g.request_id = r.delta();
          return g;
        });
      }
      return arc;
    }

   private:
    template <class Map, class Fn>
    static void encode_cells(wire::WireWriter& w, const Map& cells, Fn emit) {
      std::vector<Point> keys;
      keys.reserve(cells.size());
      for (const auto& [key, items] : cells) keys.push_back(key);
      std::sort(keys.begin(), keys.end());
      w.gamma(keys.size());
      for (const Point key : keys) {
        w.bits(key, 64);
        const auto& items = cells.at(key);
        w.gamma(items.size());
        for (const auto& item : items) emit(item);
      }
    }

    template <class Map, class Fn>
    static void decode_cells(wire::WireReader& r, Map& cells, Fn read) {
      const std::uint64_t num_keys = r.gamma();
      for (std::uint64_t i = 0; i < num_keys; ++i) {
        const Point key = r.bits(64);
        auto& items = cells[key];
        const std::uint64_t count = r.gamma();
        for (std::uint64_t j = 0; j < count; ++j) items.push_back(read());
      }
    }
  };

  DhtComponent(overlay::OverlayNode& host, DhtWidths widths)
      : host_(host), widths_(widths) {
    host_.on_routed_payload<PutRequest>(
        [this](Point key, overlay::VKind owner, NodeId,
               sim::Owned<PutRequest> req) {
          handle_put(key, owner, std::move(req));
        });
    host_.on_routed_payload<GetRequest>(
        [this](Point key, overlay::VKind owner, NodeId,
               sim::Owned<GetRequest> req) {
          handle_get(key, owner, std::move(req));
        });
    host_.on_direct_payload<GetReply>(
        [this](NodeId, sim::Owned<GetReply> rep) {
          auto it = get_callbacks_.find(rep->request_id);
          SKS_CHECK_MSG(it != get_callbacks_.end(), "unexpected get reply");
          auto cb = std::move(it->second);
          get_callbacks_.erase(it);
          cb(rep->element);
        });
    host_.on_direct_payload<PutAck>(
        [this](NodeId, sim::Owned<PutAck> ack) {
          auto it = put_callbacks_.find(ack->request_id);
          SKS_CHECK_MSG(it != put_callbacks_.end(), "unexpected put ack");
          auto cb = std::move(it->second);
          put_callbacks_.erase(it);
          cb();
        });
  }

  /// Store `e` under `key`. If `ack` is given, the owner confirms the
  /// write and `ack` runs locally when the confirmation arrives (Seap's
  /// Insert phase requires these confirmations).
  void put(Point key, const Element& e, PutCallback ack = nullptr,
           std::uint8_t space = 0) {
    SKS_CHECK(space < kNumSpaces);
    auto req = sim::make_payload<PutRequest>();
    req->element = e;
    req->requester = host_.id();
    req->space = space;
    req->bits = widths_.key_bits + widths_.element_bits + widths_.node_id_bits;
    if (ack) {
      req->want_ack = true;
      req->request_id = next_request_id_++;
      put_callbacks_.emplace(req->request_id, std::move(ack));
    }
    host_.route(key, std::move(req));
  }

  /// Fetch-and-remove the element stored under `key`; waits at the owner
  /// if the Put has not arrived yet.
  void get(Point key, GetCallback cb, std::uint8_t space = 0) {
    SKS_CHECK(cb != nullptr);
    SKS_CHECK(space < kNumSpaces);
    auto req = sim::make_payload<GetRequest>();
    req->requester = host_.id();
    req->request_id = next_request_id_++;
    req->space = space;
    req->bits = widths_.key_bits + widths_.node_id_bits +
                bits_for_max(next_request_id_);
    get_callbacks_.emplace(req->request_id, std::move(cb));
    host_.route(key, std::move(req));
  }

  /// Number of elements currently stored by this host (all 3 virtual
  /// nodes, all spaces); used by the fairness experiment E9.
  std::size_t stored_count() const {
    std::size_t total = 0;
    for (const auto& by_kind : stores_) {
      for (const auto& store : by_kind) {
        for (const auto& [key, elems] : store) total += elems.size();
      }
    }
    return total;
  }

  /// All elements this host stores in one keyspace (KSelect's v.E).
  std::vector<Element> elements_in(std::uint8_t space) const {
    SKS_CHECK(space < kNumSpaces);
    std::vector<Element> out;
    for (const auto& store : stores_[space]) {
      for (const auto& [key, elems] : store) {
        out.insert(out.end(), elems.begin(), elems.end());
      }
    }
    return out;
  }

  /// Count of locally stored elements with key <= threshold in a space.
  std::size_t count_leq(std::uint8_t space, const Element& threshold) const {
    SKS_CHECK(space < kNumSpaces);
    std::size_t count = 0;
    for (const auto& store : stores_[space]) {
      for (const auto& [key, elems] : store) {
        for (const auto& e : elems) count += (e <= threshold);
      }
    }
    return count;
  }

  /// Remove and return (sorted ascending) every locally stored element
  /// with key <= threshold in a space — Seap's DeleteMin phase moves
  /// these to positional keys.
  std::vector<Element> take_leq(std::uint8_t space, const Element& threshold) {
    SKS_CHECK(space < kNumSpaces);
    std::vector<Element> out;
    for (auto& store : stores_[space]) {
      for (auto it = store.begin(); it != store.end();) {
        auto& elems = it->second;
        for (auto eit = elems.begin(); eit != elems.end();) {
          if (*eit <= threshold) {
            out.push_back(*eit);
            eit = elems.erase(eit);
          } else {
            ++eit;
          }
        }
        it = elems.empty() ? store.erase(it) : ++it;
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Number of Gets parked here waiting for their Put.
  std::size_t waiting_gets() const {
    std::size_t total = 0;
    for (const auto& by_kind : waiting_) {
      for (const auto& w : by_kind) {
        for (const auto& [key, gets] : w) total += gets.size();
      }
    }
    return total;
  }

  std::size_t pending_client_ops() const {
    return get_callbacks_.size() + put_callbacks_.size();
  }

  /// Remove and return everything stored at virtual node `k` whose key
  /// lies in the cyclic arc [lo, hi) — the ownership range that moves to a
  /// joining neighbour. Pass lo == hi to take the whole store (leave).
  ArcData extract_arc(overlay::VKind k, Point lo, Point hi) {
    ArcData out;
    const bool take_all = (lo == hi);
    for (std::size_t space = 0; space < kNumSpaces; ++space) {
      auto move_matching = [&](auto& from, auto& to) {
        for (auto it = from.begin(); it != from.end();) {
          if (take_all || overlay::arc_contains(lo, hi, it->first)) {
            to.emplace(it->first, std::move(it->second));
            it = from.erase(it);
          } else {
            ++it;
          }
        }
      };
      move_matching(store(static_cast<std::uint8_t>(space), k),
                    out.elements[space]);
      move_matching(waiting(static_cast<std::uint8_t>(space), k),
                    out.waiting[space]);
    }
    return out;
  }

  // ---- Recovery support (src/recovery) --------------------------------

  /// Deep copy of the server-side state, taken at an epoch boundary. It
  /// doubles as the rollback point when a mid-epoch crash aborts the
  /// epoch and as the baseline the replication layer diffs against to
  /// compute incremental deltas (so no write-through hooks are needed on
  /// the hot path).
  struct Snapshot {
    std::array<std::array<std::unordered_map<Point, std::deque<Element>>, 3>,
               kNumSpaces>
        stores;
    std::array<std::array<std::unordered_map<Point, std::deque<WaitingGet>>,
                          3>,
               kNumSpaces>
        waiting;
  };

  Snapshot take_snapshot() const { return Snapshot{stores_, waiting_}; }

  /// Rewind the server state to `snap` (kept by value at the cluster so
  /// one checkpoint survives repeated rollbacks of the same epoch).
  void restore_snapshot(const Snapshot& snap) {
    stores_ = snap.stores;
    waiting_ = snap.waiting;
  }

  /// Drop all pending client-side callbacks (outstanding put acks / get
  /// replies). Part of an epoch rollback: the re-run reissues every
  /// request, and the drain-to-idle before the rollback guarantees no
  /// stale reply is still in flight.
  void clear_client_state() {
    get_callbacks_.clear();
    put_callbacks_.clear();
  }

  /// Emit every (space, key, elements) cell whose contents differ from
  /// the snapshot — including emptied cells (emitted with an empty list,
  /// encoding removal). `emit(space, key, const std::deque<Element>&)`.
  /// Called at epoch commit, where no Get may still be parked.
  template <class Fn>
  void delta_since(const Snapshot& snap, Fn&& emit) const {
    SKS_CHECK_MSG(waiting_gets() == 0,
                  "delta at a non-quiescent point: gets still waiting");
    static const std::deque<Element> kEmpty;
    for (std::size_t space = 0; space < kNumSpaces; ++space) {
      for (std::size_t k = 0; k < 3; ++k) {
        const auto& cur = stores_[space][k];
        const auto& old = snap.stores[space][k];
        for (const auto& [key, elems] : cur) {
          auto it = old.find(key);
          if (it == old.end() || it->second != elems) {
            emit(static_cast<std::uint8_t>(space), key, elems);
          }
        }
        for (const auto& [key, elems] : old) {
          (void)elems;
          if (!cur.count(key)) {
            emit(static_cast<std::uint8_t>(space), key, kEmpty);
          }
        }
      }
    }
  }

  /// Emit every non-empty (space, key, elements) cell currently stored —
  /// the full-state variant of delta_since, used to (re)seed a replica
  /// mirror out-of-band (bootstrap, post-recovery repair).
  template <class Fn>
  void full_entries(Fn&& emit) const {
    for (std::size_t space = 0; space < kNumSpaces; ++space) {
      for (std::size_t k = 0; k < 3; ++k) {
        for (const auto& [key, elems] : stores_[space][k]) {
          emit(static_cast<std::uint8_t>(space), key, elems);
        }
      }
    }
  }

  /// Install one recovered cell into virtual node `k`'s store. The
  /// recovered keys are provably disjoint from the holder's own stored
  /// keys (they lived on the dead node's arcs, which the promotion
  /// re-homed), so this replaces rather than merges.
  void absorb_entry(std::uint8_t space, overlay::VKind k, Point key,
                    std::vector<Element> elems) {
    SKS_CHECK(space < kNumSpaces);
    auto& st = store(space, k);
    SKS_CHECK_MSG(!st.count(key), "recovered key collides with live store");
    if (elems.empty()) return;
    st.emplace(key, std::deque<Element>(elems.begin(), elems.end()));
  }

  /// Merge handed-over arc data into virtual node `k`'s store, matching
  /// any waiting Gets against newly available elements.
  void absorb_arc(overlay::VKind k, ArcData arc) {
    for (std::size_t space = 0; space < kNumSpaces; ++space) {
      auto& st = store(static_cast<std::uint8_t>(space), k);
      auto& wt = waiting(static_cast<std::uint8_t>(space), k);
      for (auto& [key, elems] : arc.elements[space]) {
        auto& dst = st[key];
        dst.insert(dst.end(), elems.begin(), elems.end());
      }
      for (auto& [key, gets] : arc.waiting[space]) {
        auto& dst = wt[key];
        dst.insert(dst.end(), gets.begin(), gets.end());
      }
      // Serve any gets that now have matching elements. All map surgery
      // happens before any reply is sent: a locally delivered reply can
      // re-enter this component and mutate these maps.
      std::vector<std::pair<WaitingGet, Element>> to_serve;
      for (auto wit = wt.begin(); wit != wt.end();) {
        auto sit = st.find(wit->first);
        while (sit != st.end() && !sit->second.empty() &&
               !wit->second.empty()) {
          to_serve.emplace_back(wit->second.front(), sit->second.front());
          wit->second.pop_front();
          sit->second.pop_front();
        }
        if (sit != st.end() && sit->second.empty()) st.erase(sit);
        wit = wit->second.empty() ? wt.erase(wit) : std::next(wit);
      }
      for (auto& [get, elem] : to_serve) reply_get(get, elem);
    }
  }

 private:

  std::unordered_map<Point, std::deque<Element>>& store(std::uint8_t space,
                                                         overlay::VKind k) {
    return stores_[space][static_cast<std::size_t>(k)];
  }
  std::unordered_map<Point, std::deque<WaitingGet>>& waiting(
      std::uint8_t space, overlay::VKind k) {
    return waiting_[space][static_cast<std::size_t>(k)];
  }

  void handle_put(Point key, overlay::VKind owner,
                  sim::Owned<PutRequest> req) {
    // Resolve all map state before sending anything: a reply delivered
    // locally can re-enter this component and mutate the maps.
    auto& wmap = waiting(req->space, owner);
    auto wit = wmap.find(key);
    std::optional<WaitingGet> matched;
    if (wit != wmap.end() && !wit->second.empty()) {
      matched = wit->second.front();
      wit->second.pop_front();
      if (wit->second.empty()) wmap.erase(wit);
    } else {
      store(req->space, owner)[key].push_back(req->element);
    }
    if (matched) {
      // A Get outran this Put: serve it immediately.
      reply_get(*matched, req->element);
    }
    if (req->want_ack) {
      auto ack = sim::make_payload<PutAck>();
      ack->request_id = req->request_id;
      ack->bits = bits_for_max(req->request_id) + widths_.node_id_bits;
      host_.send_direct(req->requester, std::move(ack));
    }
  }

  void handle_get(Point key, overlay::VKind owner,
                  sim::Owned<GetRequest> req) {
    auto& st = store(req->space, owner);
    auto it = st.find(key);
    if (it != st.end() && !it->second.empty()) {
      const Element e = it->second.front();
      it->second.pop_front();
      if (it->second.empty()) st.erase(it);
      reply_get(WaitingGet{req->requester, req->request_id}, e);
    } else {
      // Wait until the corresponding Put arrives (Skeap Phase 4).
      waiting(req->space, owner)[key].push_back(
          WaitingGet{req->requester, req->request_id});
    }
  }

  void reply_get(const WaitingGet& w, const Element& e) {
    auto rep = sim::make_payload<GetReply>();
    rep->element = e;
    rep->request_id = w.request_id;
    rep->bits = widths_.element_bits + bits_for_max(w.request_id);
    host_.send_direct(w.requester, std::move(rep));
  }

  overlay::OverlayNode& host_;
  DhtWidths widths_;
  std::uint64_t next_request_id_ = 1;

  // Server state, one slot per (keyspace, hosted virtual node).
  std::array<std::array<std::unordered_map<Point, std::deque<Element>>, 3>,
             kNumSpaces>
      stores_;
  std::array<std::array<std::unordered_map<Point, std::deque<WaitingGet>>, 3>,
             kNumSpaces>
      waiting_;

  // Client state.
  std::unordered_map<std::uint64_t, GetCallback> get_callbacks_;
  std::unordered_map<std::uint64_t, PutCallback> put_callbacks_;
};

}  // namespace sks::dht
