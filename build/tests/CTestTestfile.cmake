# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_overlay[1]_include.cmake")
include("/root/repo/build/tests/test_dht[1]_include.cmake")
include("/root/repo/build/tests/test_aggregation[1]_include.cmake")
include("/root/repo/build/tests/test_skeap[1]_include.cmake")
include("/root/repo/build/tests/test_kselect[1]_include.cmake")
include("/root/repo/build/tests/test_seap[1]_include.cmake")
include("/root/repo/build/tests/test_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_distributed_heap[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
