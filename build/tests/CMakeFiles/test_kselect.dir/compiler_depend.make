# Empty compiler generated dependencies file for test_kselect.
# This may be replaced when dependencies are built.
