# Empty dependencies file for test_distributed_heap.
# This may be replaced when dependencies are built.
