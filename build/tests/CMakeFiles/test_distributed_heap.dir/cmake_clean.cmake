file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_heap.dir/core/test_distributed_heap.cpp.o"
  "CMakeFiles/test_distributed_heap.dir/core/test_distributed_heap.cpp.o.d"
  "test_distributed_heap"
  "test_distributed_heap.pdb"
  "test_distributed_heap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
