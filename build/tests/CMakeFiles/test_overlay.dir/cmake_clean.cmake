file(REMOVE_RECURSE
  "CMakeFiles/test_overlay.dir/overlay/test_membership.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/test_membership.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/test_routing.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/test_routing.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/test_routing_properties.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/test_routing_properties.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/test_topology.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/test_topology.cpp.o.d"
  "test_overlay"
  "test_overlay.pdb"
  "test_overlay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
