# Empty compiler generated dependencies file for test_aggregation.
# This may be replaced when dependencies are built.
