file(REMOVE_RECURSE
  "CMakeFiles/test_skeap.dir/skeap/test_assignment.cpp.o"
  "CMakeFiles/test_skeap.dir/skeap/test_assignment.cpp.o.d"
  "CMakeFiles/test_skeap.dir/skeap/test_batch.cpp.o"
  "CMakeFiles/test_skeap.dir/skeap/test_batch.cpp.o.d"
  "CMakeFiles/test_skeap.dir/skeap/test_skeap.cpp.o"
  "CMakeFiles/test_skeap.dir/skeap/test_skeap.cpp.o.d"
  "CMakeFiles/test_skeap.dir/skeap/test_skeap_churn.cpp.o"
  "CMakeFiles/test_skeap.dir/skeap/test_skeap_churn.cpp.o.d"
  "CMakeFiles/test_skeap.dir/skeap/test_skeap_properties.cpp.o"
  "CMakeFiles/test_skeap.dir/skeap/test_skeap_properties.cpp.o.d"
  "test_skeap"
  "test_skeap.pdb"
  "test_skeap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skeap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
