# Empty compiler generated dependencies file for test_skeap.
# This may be replaced when dependencies are built.
