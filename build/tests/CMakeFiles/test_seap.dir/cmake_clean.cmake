file(REMOVE_RECURSE
  "CMakeFiles/test_seap.dir/seap/test_seap.cpp.o"
  "CMakeFiles/test_seap.dir/seap/test_seap.cpp.o.d"
  "CMakeFiles/test_seap.dir/seap/test_seap_churn.cpp.o"
  "CMakeFiles/test_seap.dir/seap/test_seap_churn.cpp.o.d"
  "CMakeFiles/test_seap.dir/seap/test_seap_sc.cpp.o"
  "CMakeFiles/test_seap.dir/seap/test_seap_sc.cpp.o.d"
  "test_seap"
  "test_seap.pdb"
  "test_seap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
