# Empty dependencies file for test_seap.
# This may be replaced when dependencies are built.
