# Empty compiler generated dependencies file for sks_overlay.
# This may be replaced when dependencies are built.
