file(REMOVE_RECURSE
  "libsks_overlay.a"
)
