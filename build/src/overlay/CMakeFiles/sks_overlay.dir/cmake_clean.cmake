file(REMOVE_RECURSE
  "CMakeFiles/sks_overlay.dir/topology.cpp.o"
  "CMakeFiles/sks_overlay.dir/topology.cpp.o.d"
  "libsks_overlay.a"
  "libsks_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sks_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
