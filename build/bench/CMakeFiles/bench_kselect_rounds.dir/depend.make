# Empty dependencies file for bench_kselect_rounds.
# This may be replaced when dependencies are built.
