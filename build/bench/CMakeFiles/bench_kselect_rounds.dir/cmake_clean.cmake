file(REMOVE_RECURSE
  "CMakeFiles/bench_kselect_rounds.dir/bench_kselect_rounds.cpp.o"
  "CMakeFiles/bench_kselect_rounds.dir/bench_kselect_rounds.cpp.o.d"
  "bench_kselect_rounds"
  "bench_kselect_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kselect_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
