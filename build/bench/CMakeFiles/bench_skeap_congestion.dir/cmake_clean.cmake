file(REMOVE_RECURSE
  "CMakeFiles/bench_skeap_congestion.dir/bench_skeap_congestion.cpp.o"
  "CMakeFiles/bench_skeap_congestion.dir/bench_skeap_congestion.cpp.o.d"
  "bench_skeap_congestion"
  "bench_skeap_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skeap_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
