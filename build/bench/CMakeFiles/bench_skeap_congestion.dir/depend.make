# Empty dependencies file for bench_skeap_congestion.
# This may be replaced when dependencies are built.
