# Empty compiler generated dependencies file for bench_kselect_baselines.
# This may be replaced when dependencies are built.
