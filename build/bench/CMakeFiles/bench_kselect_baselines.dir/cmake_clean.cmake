file(REMOVE_RECURSE
  "CMakeFiles/bench_kselect_baselines.dir/bench_kselect_baselines.cpp.o"
  "CMakeFiles/bench_kselect_baselines.dir/bench_kselect_baselines.cpp.o.d"
  "bench_kselect_baselines"
  "bench_kselect_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kselect_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
