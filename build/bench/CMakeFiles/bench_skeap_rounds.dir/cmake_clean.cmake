file(REMOVE_RECURSE
  "CMakeFiles/bench_skeap_rounds.dir/bench_skeap_rounds.cpp.o"
  "CMakeFiles/bench_skeap_rounds.dir/bench_skeap_rounds.cpp.o.d"
  "bench_skeap_rounds"
  "bench_skeap_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skeap_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
