# Empty compiler generated dependencies file for bench_skeap_rounds.
# This may be replaced when dependencies are built.
