# Empty dependencies file for bench_seap_vs_skeap_msgsize.
# This may be replaced when dependencies are built.
