file(REMOVE_RECURSE
  "CMakeFiles/bench_skeap_msgsize.dir/bench_skeap_msgsize.cpp.o"
  "CMakeFiles/bench_skeap_msgsize.dir/bench_skeap_msgsize.cpp.o.d"
  "bench_skeap_msgsize"
  "bench_skeap_msgsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skeap_msgsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
