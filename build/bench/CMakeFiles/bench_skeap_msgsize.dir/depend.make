# Empty dependencies file for bench_skeap_msgsize.
# This may be replaced when dependencies are built.
