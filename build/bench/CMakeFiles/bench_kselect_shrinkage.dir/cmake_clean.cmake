file(REMOVE_RECURSE
  "CMakeFiles/bench_kselect_shrinkage.dir/bench_kselect_shrinkage.cpp.o"
  "CMakeFiles/bench_kselect_shrinkage.dir/bench_kselect_shrinkage.cpp.o.d"
  "bench_kselect_shrinkage"
  "bench_kselect_shrinkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kselect_shrinkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
