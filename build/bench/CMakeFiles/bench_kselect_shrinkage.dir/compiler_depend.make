# Empty compiler generated dependencies file for bench_kselect_shrinkage.
# This may be replaced when dependencies are built.
