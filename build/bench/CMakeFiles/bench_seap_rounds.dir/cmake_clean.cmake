file(REMOVE_RECURSE
  "CMakeFiles/bench_seap_rounds.dir/bench_seap_rounds.cpp.o"
  "CMakeFiles/bench_seap_rounds.dir/bench_seap_rounds.cpp.o.d"
  "bench_seap_rounds"
  "bench_seap_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seap_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
