# Empty compiler generated dependencies file for bench_seap_rounds.
# This may be replaced when dependencies are built.
