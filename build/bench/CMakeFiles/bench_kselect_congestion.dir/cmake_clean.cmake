file(REMOVE_RECURSE
  "CMakeFiles/bench_kselect_congestion.dir/bench_kselect_congestion.cpp.o"
  "CMakeFiles/bench_kselect_congestion.dir/bench_kselect_congestion.cpp.o.d"
  "bench_kselect_congestion"
  "bench_kselect_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kselect_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
