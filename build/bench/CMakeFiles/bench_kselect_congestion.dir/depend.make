# Empty dependencies file for bench_kselect_congestion.
# This may be replaced when dependencies are built.
