file(REMOVE_RECURSE
  "CMakeFiles/job_scheduler.dir/job_scheduler.cpp.o"
  "CMakeFiles/job_scheduler.dir/job_scheduler.cpp.o.d"
  "job_scheduler"
  "job_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
