# Empty dependencies file for kselect_demo.
# This may be replaced when dependencies are built.
