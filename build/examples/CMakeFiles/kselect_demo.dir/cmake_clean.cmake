file(REMOVE_RECURSE
  "CMakeFiles/kselect_demo.dir/kselect_demo.cpp.o"
  "CMakeFiles/kselect_demo.dir/kselect_demo.cpp.o.d"
  "kselect_demo"
  "kselect_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kselect_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
