file(REMOVE_RECURSE
  "CMakeFiles/distributed_sorting.dir/distributed_sorting.cpp.o"
  "CMakeFiles/distributed_sorting.dir/distributed_sorting.cpp.o.d"
  "distributed_sorting"
  "distributed_sorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
