# Empty compiler generated dependencies file for distributed_sorting.
# This may be replaced when dependencies are built.
