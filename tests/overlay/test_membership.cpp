#include "overlay/membership.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "overlay/topology.hpp"
#include "sim/network.hpp"

namespace sks::overlay {
namespace {

class MemberNode : public OverlayNode {
 public:
  MemberNode(RouteParams params, dht::DhtWidths widths)
      : OverlayNode(params), dht(*this, widths), membership(*this, dht) {}

  dht::DhtComponent dht;
  MembershipComponent membership;
};

struct Fixture {
  explicit Fixture(std::size_t initial, std::size_t capacity,
                   std::uint64_t seed = 5,
                   sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous) {
    sim::NetworkConfig cfg;
    cfg.mode = mode;
    cfg.seed = seed;
    net = std::make_unique<sim::Network>(cfg);
    hash = std::make_unique<HashFunction>(seed);
    // Register all nodes up front (so joiners can receive messages), but
    // install overlay links only for the initial members.
    const auto params = RouteParams::for_system(capacity);
    const auto widths = dht::DhtWidths::for_system(capacity, 1u << 20, 1u << 20);
    auto links = build_topology(initial, *hash);
    for (std::size_t i = 0; i < capacity; ++i) {
      const NodeId id =
          net->add_node(std::make_unique<MemberNode>(params, widths));
      if (i < initial) {
        auto& n = net->node_as<MemberNode>(id);
        n.install_links(links[i]);
        n.membership.mark_bootstrapped();
        members.insert(id);
      }
    }
  }

  MemberNode& node(NodeId v) { return net->node_as<MemberNode>(v); }

  void join(NodeId v, NodeId bootstrap) {
    node(v).membership.join(bootstrap, *hash);
    net->run_until_idle();
    ASSERT_TRUE(node(v).membership.joined());
    members.insert(v);
  }

  void leave(NodeId v) {
    node(v).membership.leave();
    net->run_until_idle();
    members.erase(v);
  }

  /// Validate the cycle and tree against ground truth (all members).
  void check_topology() {
    // Collect all virtual states of members.
    std::vector<VirtualState> all;
    for (NodeId v : members) {
      for (VKind k : kAllKinds) all.push_back(node(v).vstate(k));
    }
    std::sort(all.begin(), all.end(),
              [](const VirtualState& a, const VirtualState& b) {
                return a.self.label < b.self.label;
              });
    // pred/succ must form the sorted cycle.
    for (std::size_t i = 0; i < all.size(); ++i) {
      const auto& st = all[i];
      const auto& next = all[(i + 1) % all.size()];
      EXPECT_EQ(st.succ, next.self)
          << to_string(st.self) << " succ wrong after churn";
      EXPECT_EQ(next.pred, st.self)
          << to_string(next.self) << " pred wrong after churn";
    }
    // Exactly one anchor, at the minimum label, and tree invariants hold.
    int anchors = 0;
    for (const auto& st : all) anchors += st.is_anchor;
    EXPECT_EQ(anchors, 1);
    EXPECT_TRUE(all[0].is_anchor);
    for (const auto& st : all) {
      if (!st.is_anchor) {
        ASSERT_TRUE(st.parent.valid()) << to_string(st.self);
        EXPECT_LT(st.parent.label, st.self.label);
      }
    }
  }

  std::size_t stored_total() {
    std::size_t total = 0;
    for (NodeId v : members) total += node(v).dht.stored_count();
    return total;
  }

  std::unique_ptr<sim::Network> net;
  std::unique_ptr<HashFunction> hash;
  std::set<NodeId> members;
};

TEST(Membership, SingleJoinRestoresTopology) {
  Fixture f(4, 5);
  f.join(4, /*bootstrap=*/0);
  f.check_topology();
}

TEST(Membership, SingleLeaveRestoresTopology) {
  Fixture f(5, 5);
  f.leave(2);
  f.check_topology();
}

TEST(Membership, JoinPreservesStoredElements) {
  Fixture f(4, 5);
  // Fill the DHT before the join.
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    f.node(static_cast<NodeId>(rng.below(4)))
        .dht.put(rng.next(), Element{rng.next(), static_cast<ElementId>(i)});
  }
  f.net->run_until_idle();
  EXPECT_EQ(f.stored_total(), 200u);

  f.join(4, 1);
  f.check_topology();
  EXPECT_EQ(f.stored_total(), 200u);
  // The joiner should have taken over part of the keyspace.
  EXPECT_GT(f.node(4).dht.stored_count(), 0u);
}

TEST(Membership, LeavePreservesStoredElements) {
  Fixture f(6, 6);
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    f.node(static_cast<NodeId>(rng.below(6)))
        .dht.put(rng.next(), Element{rng.next(), static_cast<ElementId>(i)});
  }
  f.net->run_until_idle();
  const std::size_t leaver_held = f.node(3).dht.stored_count();
  EXPECT_GT(leaver_held, 0u);

  f.leave(3);
  f.check_topology();
  EXPECT_EQ(f.stored_total(), 300u);
  EXPECT_EQ(f.node(3).dht.stored_count(), 0u);
}

TEST(Membership, GetsStillWorkAfterChurn) {
  Fixture f(4, 6);
  Rng rng(13);
  std::vector<std::pair<Point, Element>> stored;
  for (int i = 0; i < 100; ++i) {
    const Point key = rng.next();
    const Element e{rng.next(), static_cast<ElementId>(i + 1)};
    stored.emplace_back(key, e);
    f.node(static_cast<NodeId>(rng.below(4))).dht.put(key, e);
  }
  f.net->run_until_idle();

  f.join(4, 0);
  f.join(5, 2);
  f.leave(1);
  f.check_topology();

  // Every element must still be retrievable from the new topology.
  std::vector<Element> got;
  for (const auto& [key, e] : stored) {
    f.node(0).dht.get(key, [&got](const Element& x) { got.push_back(x); });
  }
  f.net->run_until_idle();
  ASSERT_EQ(got.size(), stored.size());
  std::sort(got.begin(), got.end());
  std::vector<Element> want;
  for (const auto& [key, e] : stored) want.push_back(e);
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(Membership, WaitingGetsSurviveHandover) {
  Fixture f(4, 5);
  const Point key = f.hash->point(424242);
  std::vector<Element> got;
  f.node(0).dht.get(key, [&](const Element& e) { got.push_back(e); });
  f.net->run_until_idle();
  EXPECT_TRUE(got.empty());  // parked, waiting for the put

  // Churn moves arcs around; the waiting get must move with its arc.
  f.join(4, 0);
  f.leave(2);
  f.check_topology();

  f.node(3).dht.put(key, Element{7, 77});
  f.net->run_until_idle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Element{7, 77}));
}

TEST(Membership, AnchorMigratesWhenSmallerLabelJoins) {
  // Find a capacity/seed where one of the later nodes hashes below the
  // initial minimum so the anchor must move.
  for (std::uint64_t seed = 1; seed < 200; ++seed) {
    HashFunction h(seed);
    Point min_initial = ~0ULL;
    for (NodeId v = 0; v < 4; ++v) {
      min_initial = std::min(min_initial, h.point(v) >> 1);
    }
    const Point joiner_left = h.point(4) >> 1;
    if (joiner_left >= min_initial) continue;

    Fixture f(4, 5, seed);
    NodeId old_anchor = kNoNode;
    for (NodeId v = 0; v < 4; ++v) {
      if (f.node(v).hosts_anchor()) old_anchor = v;
    }
    ASSERT_NE(old_anchor, kNoNode);
    f.join(4, old_anchor);
    f.check_topology();
    EXPECT_TRUE(f.node(4).hosts_anchor());
    EXPECT_FALSE(f.node(old_anchor).hosts_anchor());
    return;
  }
  FAIL() << "no seed produced an anchor-displacing join";
}

TEST(Membership, ChurnStormKeepsInvariants) {
  const std::size_t capacity = 24;
  Fixture f(8, capacity, /*seed=*/17);
  Rng rng(99);
  std::vector<NodeId> outside;
  for (NodeId v = 8; v < capacity; ++v) outside.push_back(v);

  // Store data to shuffle around.
  for (int i = 0; i < 300; ++i) {
    const auto members = std::vector<NodeId>(f.members.begin(), f.members.end());
    f.node(members[rng.below(members.size())])
        .dht.put(rng.next(), Element{rng.next(), static_cast<ElementId>(i)});
  }
  f.net->run_until_idle();

  for (int step = 0; step < 30; ++step) {
    const bool do_join = !outside.empty() && (f.members.size() <= 3 ||
                                              rng.flip(0.5));
    if (do_join) {
      const NodeId v = outside.back();
      outside.pop_back();
      const auto members =
          std::vector<NodeId>(f.members.begin(), f.members.end());
      f.join(v, members[rng.below(members.size())]);
    } else {
      auto members = std::vector<NodeId>(f.members.begin(), f.members.end());
      const NodeId v = members[rng.below(members.size())];
      f.leave(v);
      outside.push_back(v);
    }
    f.check_topology();
    EXPECT_EQ(f.stored_total(), 300u) << "after churn step " << step;
  }
}

TEST(Membership, JoinCompletesInLogarithmicRounds) {
  for (std::size_t n : {16u, 64u, 256u}) {
    Fixture f(n, n + 1, /*seed=*/23);
    f.node(static_cast<NodeId>(n)).membership.join(0, *f.hash);
    const auto rounds = f.net->run_until_idle();
    const double logn = std::log2(static_cast<double>(n));
    EXPECT_LT(static_cast<double>(rounds), 15.0 * logn + 70.0) << "n=" << n;
  }
}

}  // namespace
}  // namespace sks::overlay
