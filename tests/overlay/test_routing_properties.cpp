// Property sweeps for the overlay routing layer: exact ownership delivery
// across sizes/seeds/modes, the debruijn_hop primitive (one emulated
// halving edge), and routing stability across repeated runs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "overlay/overlay_node.hpp"
#include "overlay/topology.hpp"
#include "sim/network.hpp"

namespace sks::overlay {
namespace {

struct Probe final : sim::Action<Probe> {
  // Distinct from test_routing.cpp's "probe": both TUs are linked into the
  // same test binary, and the registry rejects duplicate action names.
  static constexpr const char* kActionName = "probe.props";
  std::uint64_t tag = 0;
  std::uint64_t size_bits() const override { return 16; }

  void encode(sks::wire::WireWriter& w) const override { w.leb(tag); }
  static sim::Owned<Probe> decode(sks::wire::WireReader& r) {
    auto p = sim::make_payload<Probe>();
    p->tag = r.leb();
    return p;
  }
};

class ProbeNode : public OverlayNode {
 public:
  explicit ProbeNode(RouteParams params) : OverlayNode(params) {
    on_routed_payload<Probe>([this](Point target, VKind owner, NodeId,
                                    sim::Owned<Probe> p) {
      deliveries.emplace_back(target, owner, p->tag);
    });
  }
  std::vector<std::tuple<Point, VKind, std::uint64_t>> deliveries;
};

struct Fixture {
  Fixture(std::size_t n, std::uint64_t seed, sim::DeliveryMode mode) {
    sim::NetworkConfig cfg;
    cfg.mode = mode;
    cfg.seed = seed;
    net = std::make_unique<sim::Network>(cfg);
    HashFunction h(seed);
    links = build_topology(n, h);
    const auto params = RouteParams::for_system(n);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = net->add_node(std::make_unique<ProbeNode>(params));
      net->node_as<ProbeNode>(id).install_links(links[i]);
    }
  }

  VirtualId expected_owner(Point p) const {
    VirtualId best;
    Point best_dist = ~0ULL;
    for (const auto& nl : links) {
      for (VKind k : kAllKinds) {
        const Point d = forward_distance(nl.at(k).self.label, p);
        if (d < best_dist) {
          best_dist = d;
          best = nl.at(k).self;
        }
      }
    }
    return best;
  }

  ProbeNode& node(NodeId id) { return net->node_as<ProbeNode>(id); }

  std::unique_ptr<sim::Network> net;
  std::vector<NodeLinks> links;
};

class RoutingSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::uint64_t, sim::DeliveryMode>> {};

TEST_P(RoutingSweep, EveryProbeReachesItsOwner) {
  const auto [n, seed, mode] = GetParam();
  Fixture f(n, seed, mode);
  Rng rng(seed ^ 0xfeedULL);

  constexpr int kProbes = 60;
  std::vector<std::pair<Point, std::uint64_t>> sent;
  for (int i = 0; i < kProbes; ++i) {
    auto p = sim::make_payload<Probe>();
    p->tag = static_cast<std::uint64_t>(i);
    const Point target = rng.next();
    sent.emplace_back(target, p->tag);
    f.node(static_cast<NodeId>(rng.below(n))).route(target, std::move(p));
  }
  f.net->run_until_idle();

  std::size_t delivered = 0;
  for (NodeId v = 0; v < n; ++v) delivered += f.node(v).deliveries.size();
  ASSERT_EQ(delivered, static_cast<std::size_t>(kProbes));

  for (const auto& [target, tag] : sent) {
    const VirtualId owner = f.expected_owner(target);
    bool found = false;
    for (const auto& [t, kind, dtag] : f.node(owner.host).deliveries) {
      found |= (t == target && dtag == tag && kind == owner.kind);
    }
    EXPECT_TRUE(found) << "probe " << tag << " misdelivered";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoutingSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 5u, 16u, 100u, 333u),
                       ::testing::Values(3u, 17u),
                       ::testing::Values(sim::DeliveryMode::kSynchronous,
                                         sim::DeliveryMode::kAsynchronous)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "s" +
             std::to_string(std::get<1>(param_info.param)) +
             (std::get<2>(param_info.param) ==
                      sim::DeliveryMode::kSynchronous
                  ? "Sync"
                  : "Async");
    });

TEST(DebruijnHop, DeliversToHalfPointOwner) {
  // debruijn_hop(at, b) must deliver to owner((label(at) + b) / 2) —
  // KSelect's copy trees depend on this being exact.
  Fixture f(64, 5, sim::DeliveryMode::kSynchronous);
  Rng rng(6);
  for (int i = 0; i < 120; ++i) {
    const auto src = static_cast<NodeId>(rng.below(64));
    const VKind at = kAllKinds[rng.below(3)];
    const bool bit = rng.flip(0.5);
    const Point w = f.links[src].at(at).self.label;
    const Point half = (w >> 1) | (bit ? kHalf : Point{0});

    auto p = sim::make_payload<Probe>();
    p->tag = static_cast<std::uint64_t>(i);
    f.node(src).debruijn_hop(at, bit, std::move(p));
    f.net->run_until_idle();

    const VirtualId owner = f.expected_owner(half);
    bool found = false;
    for (const auto& [t, kind, tag] : f.node(owner.host).deliveries) {
      found |= (tag == static_cast<std::uint64_t>(i) && kind == owner.kind);
    }
    EXPECT_TRUE(found) << "hop " << i << " from " << to_string(at) << "("
                       << src << ") bit=" << bit;
  }
}

TEST(DebruijnHop, CostsFewHostCrossings) {
  // The primitive must be O(1)-ish hops in expectation (walk to a middle,
  // halve, short final walk) — that is what keeps the copy trees cheap.
  Fixture f(512, 7, sim::DeliveryMode::kSynchronous);
  Rng rng(8);
  std::uint64_t total_rounds = 0;
  constexpr int kHops = 100;
  for (int i = 0; i < kHops; ++i) {
    const auto src = static_cast<NodeId>(rng.below(512));
    f.node(src).debruijn_hop(kAllKinds[rng.below(3)], rng.flip(0.5),
                             sim::make_payload<Probe>());
    total_rounds += f.net->run_until_idle();
  }
  const double avg = static_cast<double>(total_rounds) / kHops;
  EXPECT_LT(avg, 12.0) << "debruijn_hop should not pay full-route latency";
}

TEST(RoutingDeterminism, IdenticalRunsProduceIdenticalDeliveries) {
  auto run = [](std::uint64_t seed) {
    Fixture f(48, seed, sim::DeliveryMode::kAsynchronous);
    Rng rng(123);
    for (int i = 0; i < 40; ++i) {
      auto p = sim::make_payload<Probe>();
      p->tag = static_cast<std::uint64_t>(i);
      f.node(static_cast<NodeId>(rng.below(48))).route(rng.next(), std::move(p));
    }
    f.net->run_until_idle();
    std::vector<std::tuple<NodeId, Point, std::uint64_t>> log;
    for (NodeId v = 0; v < 48; ++v) {
      for (const auto& [t, k, tag] : f.node(v).deliveries) {
        log.emplace_back(v, t, tag);
      }
    }
    return log;
  };
  EXPECT_EQ(run(9), run(9));
}

}  // namespace
}  // namespace sks::overlay
