#include "overlay/topology.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/hash.hpp"

namespace sks::overlay {
namespace {

TEST(Labels, LeftAndRightDerivedFromMiddle) {
  const Point m = 0x8000'0000'0000'0000ULL;  // 0.5 in fixed point
  EXPECT_EQ(label_of(m, VKind::kLeft), 0x4000'0000'0000'0000ULL);    // 0.25
  EXPECT_EQ(label_of(m, VKind::kMiddle), m);
  EXPECT_EQ(label_of(m, VKind::kRight), 0xC000'0000'0000'0000ULL);   // 0.75
}

TEST(Labels, LeftInLowerHalfRightInUpperHalf) {
  HashFunction h(3);
  for (std::uint64_t x = 0; x < 1000; ++x) {
    const Point m = h.point(x);
    EXPECT_LT(label_of(m, VKind::kLeft), kHalf);
    EXPECT_GE(label_of(m, VKind::kRight), kHalf);
  }
}

TEST(Arc, ContainsAndWraparound) {
  EXPECT_TRUE(arc_contains(10, 20, 10));
  EXPECT_TRUE(arc_contains(10, 20, 19));
  EXPECT_FALSE(arc_contains(10, 20, 20));
  EXPECT_FALSE(arc_contains(10, 20, 9));
  // Wrapping arc [2^64-5, 3).
  const Point hi = ~0ULL - 4;
  EXPECT_TRUE(arc_contains(hi, 3, hi));
  EXPECT_TRUE(arc_contains(hi, 3, ~0ULL));
  EXPECT_TRUE(arc_contains(hi, 3, 0));
  EXPECT_TRUE(arc_contains(hi, 3, 2));
  EXPECT_FALSE(arc_contains(hi, 3, 3));
  EXPECT_FALSE(arc_contains(hi, 3, 100));
}

class TopologyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopologyTest, CycleIsConsistent) {
  const std::size_t n = GetParam();
  HashFunction h(42);
  const auto links = build_topology(n, h);
  ASSERT_EQ(links.size(), n);

  // pred/succ must be mutually consistent over all 3n virtual nodes.
  std::size_t count = 0;
  for (const auto& nl : links) {
    for (VKind k : kAllKinds) {
      const VirtualState& st = nl.at(k);
      ++count;
      const VirtualState& succ_st = links[st.succ.host].at(st.succ.kind);
      EXPECT_EQ(succ_st.pred, st.self);
      const VirtualState& pred_st = links[st.pred.host].at(st.pred.kind);
      EXPECT_EQ(pred_st.succ, st.self);
    }
  }
  EXPECT_EQ(count, 3 * n);
}

TEST_P(TopologyTest, ExactlyOneAnchorAndItIsTheMinimum) {
  const std::size_t n = GetParam();
  HashFunction h(43);
  const auto links = build_topology(n, h);

  Point min_label = ~0ULL;
  for (const auto& nl : links) {
    for (VKind k : kAllKinds) min_label = std::min(min_label, nl.at(k).self.label);
  }
  int anchors = 0;
  for (const auto& nl : links) {
    for (VKind k : kAllKinds) {
      if (nl.at(k).is_anchor) {
        ++anchors;
        EXPECT_EQ(nl.at(k).self.label, min_label);
        EXPECT_EQ(k, VKind::kLeft);  // the minimum is always a left node
      }
    }
  }
  EXPECT_EQ(anchors, 1);
}

TEST_P(TopologyTest, ParentChildLinksAreMutual) {
  const std::size_t n = GetParam();
  HashFunction h(44);
  const auto links = build_topology(n, h);

  for (const auto& nl : links) {
    for (VKind k : kAllKinds) {
      const VirtualState& st = nl.at(k);
      if (!st.is_anchor) {
        ASSERT_TRUE(st.parent.valid()) << to_string(st.self);
        const VirtualState& pst = links[st.parent.host].at(st.parent.kind);
        bool found = false;
        for (const auto& c : pst.children) found |= (c == st.self);
        EXPECT_TRUE(found) << to_string(st.self) << " not a child of its parent";
      }
      for (const auto& c : st.children) {
        const VirtualState& cst = links[c.host].at(c.kind);
        EXPECT_EQ(cst.parent, st.self);
      }
    }
  }
}

TEST_P(TopologyTest, LabelsStrictlyDecreaseTowardsRoot) {
  const std::size_t n = GetParam();
  HashFunction h(45);
  const auto links = build_topology(n, h);
  for (const auto& nl : links) {
    for (VKind k : kAllKinds) {
      const VirtualState& st = nl.at(k);
      if (!st.is_anchor) {
        EXPECT_LT(st.parent.label, st.self.label);
      }
    }
  }
}

TEST_P(TopologyTest, RightNodesAreExactlyTheLeaves) {
  const std::size_t n = GetParam();
  HashFunction h(46);
  const auto links = build_topology(n, h);
  for (const auto& nl : links) {
    EXPECT_TRUE(nl.at(VKind::kRight).children.empty());
    EXPECT_FALSE(nl.at(VKind::kLeft).children.empty());
    EXPECT_FALSE(nl.at(VKind::kMiddle).children.empty());
  }
}

TEST_P(TopologyTest, TreeSpansAllVirtualNodes) {
  const std::size_t n = GetParam();
  HashFunction h(47);
  const auto links = build_topology(n, h);
  const auto stats = analyze_topology(links);  // throws on broken chains
  EXPECT_EQ(stats.num_virtual, 3 * n);
  EXPECT_LE(stats.max_tree_degree, 2u);
  EXPECT_NE(stats.anchor_host, kNoNode);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologyTest,
                         ::testing::Values(1, 2, 3, 4, 7, 16, 33, 100, 256,
                                           1000));

TEST(Topology, HeightGrowsLogarithmically) {
  HashFunction h(48);
  // Height should be O(log n): check it stays under c*log2(n) for a
  // generous c across two orders of magnitude.
  for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
    const auto links = build_topology(n, h);
    const auto stats = analyze_topology(links);
    const double logn = std::log2(static_cast<double>(n));
    EXPECT_LT(static_cast<double>(stats.tree_height), 8.0 * logn)
        << "n=" << n << " height=" << stats.tree_height;
    EXPECT_GE(static_cast<double>(stats.tree_height), logn / 2.0);
  }
}

TEST(Topology, Figure2TwoNodeExample) {
  // Figure 2 of the paper: two real nodes u, v yield 6 virtual nodes with
  // bold tree edges l(u)-m(u), m(u)-r(u), l(u)-l(v) (linear), l(v)-m(v),
  // m(v)-r(v) when labels are ordered l(u) < l(v) < m(u) < m(v) < r(u) <
  // r(v). We search for a seed giving that ordering, then check the tree.
  for (std::uint64_t seed = 0; seed < 5000; ++seed) {
    HashFunction h(seed);
    Point mu = h.point(0), mv = h.point(1);
    NodeId u = 0, v = 1;
    if (mu > mv) {
      std::swap(mu, mv);
      std::swap(u, v);
    }
    const Point lu = mu >> 1, lv = mv >> 1;
    const Point ru = (mu >> 1) + kHalf, rv = (mv >> 1) + kHalf;
    // Figure 2 ordering.
    if (!(lu < lv && lv < mu && mu < mv && mv < ru && ru < rv)) continue;

    const auto links = build_topology(2, h);
    const auto& Lu = links[u].at(VKind::kLeft);
    const auto& Lv = links[v].at(VKind::kLeft);
    const auto& Mu = links[u].at(VKind::kMiddle);
    const auto& Mv = links[v].at(VKind::kMiddle);
    const auto& Ru = links[u].at(VKind::kRight);
    const auto& Rv = links[v].at(VKind::kRight);

    EXPECT_TRUE(Lu.is_anchor);
    // l(u): children m(u) and l(v) (its successor is a left node).
    ASSERT_EQ(Lu.children.size(), 2u);
    EXPECT_EQ(Lu.children[0], Mu.self);
    EXPECT_EQ(Lu.children[1], Lv.self);
    // l(v): child m(v); successor is m(u), not a left node.
    ASSERT_EQ(Lv.children.size(), 1u);
    EXPECT_EQ(Lv.children[0], Mv.self);
    // middles have their rights as children; successors m(v), r(u) are not
    // left nodes, so no extra child.
    ASSERT_EQ(Mu.children.size(), 1u);
    EXPECT_EQ(Mu.children[0], Ru.self);
    ASSERT_EQ(Mv.children.size(), 1u);
    EXPECT_EQ(Mv.children[0], Rv.self);
    EXPECT_TRUE(Ru.children.empty());
    EXPECT_TRUE(Rv.children.empty());
    return;  // reproduced the figure
  }
  FAIL() << "no seed produced the Figure 2 label ordering";
}

}  // namespace
}  // namespace sks::overlay
