#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/hash.hpp"
#include "overlay/overlay_node.hpp"
#include "overlay/topology.hpp"
#include "sim/network.hpp"

namespace sks::overlay {
namespace {

struct Probe final : sim::Action<Probe> {
  static constexpr const char* kActionName = "probe";
  std::uint64_t tag = 0;
  std::uint64_t size_bits() const override { return 16; }

  void encode(sks::wire::WireWriter& w) const override { w.leb(tag); }
  static sim::Owned<Probe> decode(sks::wire::WireReader& r) {
    auto p = sim::make_payload<Probe>();
    p->tag = r.leb();
    return p;
  }
};

/// Minimal overlay node that records routed deliveries.
class ProbeNode : public OverlayNode {
 public:
  explicit ProbeNode(RouteParams params) : OverlayNode(params) {
    on_routed_payload<Probe>([this](Point target, VKind owner, NodeId origin,
                                    sim::Owned<Probe> p) {
      deliveries.push_back(Delivery{target, owner, origin, p->tag});
    });
  }

  struct Delivery {
    Point target;
    VKind owner_kind;
    NodeId origin;
    std::uint64_t tag;
  };
  std::vector<Delivery> deliveries;
};

struct Fixture {
  explicit Fixture(std::size_t n, std::uint64_t seed = 7,
                   sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous) {
    sim::NetworkConfig cfg;
    cfg.mode = mode;
    cfg.seed = seed;
    net = std::make_unique<sim::Network>(cfg);
    HashFunction h(seed);
    links = build_topology(n, h);
    params = RouteParams::for_system(n);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = net->add_node(std::make_unique<ProbeNode>(params));
      net->node_as<ProbeNode>(id).install_links(links[i]);
    }
  }

  /// The virtual node owning point p, computed from global knowledge.
  VirtualId expected_owner(Point p) const {
    VirtualId best;
    Point best_dist = ~0ULL;
    for (const auto& nl : links) {
      for (VKind k : kAllKinds) {
        const auto& st = nl.at(k);
        // owner = greatest label <= p cyclically = smallest forward
        // distance from label to p.
        const Point d = forward_distance(st.self.label, p);
        if (d < best_dist) {
          best_dist = d;
          best = st.self;
        }
      }
    }
    return best;
  }

  ProbeNode& node(NodeId id) { return net->node_as<ProbeNode>(id); }

  std::unique_ptr<sim::Network> net;
  std::vector<NodeLinks> links;
  RouteParams params;
};

TEST(Routing, DeliversToTheOwnerOfTheTarget) {
  Fixture f(32);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const Point target = rng.next();
    const NodeId src = static_cast<NodeId>(rng.below(32));
    auto p = sim::make_payload<Probe>();
    p->tag = static_cast<std::uint64_t>(i);
    f.node(src).route(target, std::move(p));
    f.net->run_until_idle();

    const VirtualId owner = f.expected_owner(target);
    auto& dels = f.node(owner.host).deliveries;
    ASSERT_FALSE(dels.empty()) << "delivery " << i << " missing";
    const auto d = dels.back();
    EXPECT_EQ(d.target, target);
    EXPECT_EQ(d.owner_kind, owner.kind);
    EXPECT_EQ(d.origin, src);
    EXPECT_EQ(d.tag, static_cast<std::uint64_t>(i));
    dels.clear();
  }
}

TEST(Routing, WorksOnTinySystems) {
  for (std::size_t n : {1u, 2u, 3u}) {
    Fixture f(n, /*seed=*/11);
    Rng rng(13);
    for (int i = 0; i < 20; ++i) {
      const Point target = rng.next();
      f.node(0).route(target, sim::make_payload<Probe>());
      f.net->run_until_idle();
      const VirtualId owner = f.expected_owner(target);
      auto& dels = f.node(owner.host).deliveries;
      ASSERT_EQ(dels.size(), 1u) << "n=" << n << " i=" << i;
      EXPECT_EQ(dels[0].owner_kind, owner.kind);
      dels.clear();
    }
  }
}

TEST(Routing, WorksUnderAsynchrony) {
  Fixture f(64, /*seed=*/21, sim::DeliveryMode::kAsynchronous);
  Rng rng(23);
  std::vector<std::pair<Point, std::uint64_t>> sent;
  for (int i = 0; i < 50; ++i) {
    const Point target = rng.next();
    const NodeId src = static_cast<NodeId>(rng.below(64));
    auto p = sim::make_payload<Probe>();
    p->tag = static_cast<std::uint64_t>(i);
    sent.emplace_back(target, p->tag);
    f.node(src).route(target, std::move(p));
  }
  f.net->run_until_idle();
  std::size_t total = 0;
  for (NodeId v = 0; v < 64; ++v) total += f.node(v).deliveries.size();
  EXPECT_EQ(total, 50u);
  for (const auto& [target, tag] : sent) {
    const VirtualId owner = f.expected_owner(target);
    bool found = false;
    for (const auto& d : f.node(owner.host).deliveries) {
      found |= (d.target == target && d.tag == tag);
    }
    EXPECT_TRUE(found) << "tag " << tag;
  }
}

TEST(Routing, HopCountIsLogarithmic) {
  // Lemma A.2: routing takes O(log n) rounds w.h.p. In synchronous mode
  // one route in isolation advances one hop per round, so rounds == hops.
  Rng rng(31);
  double prev_avg = 0;
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    Fixture f(n, /*seed=*/33);
    std::uint64_t total_rounds = 0;
    constexpr int kProbes = 40;
    for (int i = 0; i < kProbes; ++i) {
      const NodeId src = static_cast<NodeId>(rng.below(n));
      f.node(src).route(rng.next(), sim::make_payload<Probe>());
      total_rounds += f.net->run_until_idle();
    }
    const double avg =
        static_cast<double>(total_rounds) / static_cast<double>(kProbes);
    // Each de Bruijn step costs a few host crossings (virtual hop plus the
    // cycle walk to the next middle node), so the envelope is affine in
    // log n with a moderate slope — but far from linear in n.
    const double logn = std::log2(static_cast<double>(n));
    EXPECT_LT(avg, 10.0 * logn + 20.0) << "n=" << n;
    // Growth from 16 to 1024 nodes should be roughly additive in log n,
    // far below linear growth in n.
    if (prev_avg > 0) {
      EXPECT_LT(avg, prev_avg * 3.0) << "n=" << n;
    }
    prev_avg = avg;
  }
}

TEST(Routing, HopGuardCatchesCorruptLinks) {
  Fixture f(8, /*seed=*/41);
  // Corrupt one node's successor pointers to point at itself, creating a
  // walk loop; the hop guard must fire instead of hanging.
  NodeLinks broken = f.links[3];
  for (VKind k : kAllKinds) {
    broken.at(k).succ = broken.at(k).self;
    broken.at(k).pred = broken.at(k).self;
  }
  f.node(3).install_links(broken);
  bool threw = false;
  try {
    for (int i = 0; i < 200 && !threw; ++i) {
      f.node(3).route(Rng(static_cast<std::uint64_t>(i)).next(),
                      sim::make_payload<Probe>());
      f.net->run_until_idle();
    }
  } catch (const CheckFailure&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace sks::overlay
