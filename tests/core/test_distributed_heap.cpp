#include "core/distributed_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

namespace sks::core {
namespace {

class HeapBackends
    : public ::testing::TestWithParam<DistributedHeap::Backend> {};

TEST_P(HeapBackends, InsertDeleteRoundTrip) {
  DistributedHeap heap({.backend = GetParam(), .num_nodes = 8, .seed = 1});
  const Element e = heap.insert(3, 2);
  std::optional<Element> got;
  heap.delete_min(5, [&](std::optional<Element> x) { got = x; });
  heap.run_batch();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, e);
}

TEST_P(HeapBackends, MinFirstAcrossBatches) {
  DistributedHeap heap({.backend = GetParam(),
                        .num_nodes = 16,
                        .num_priorities = 4,
                        .seed = 2});
  Rng rng(22);
  std::vector<Element> inserted;
  for (NodeId v = 0; v < 16; ++v) {
    inserted.push_back(heap.insert(v, rng.range(1, 4)));
  }
  heap.run_batch();

  std::vector<Element> got;
  for (NodeId v = 0; v < 16; ++v) {
    heap.delete_min(v, [&](std::optional<Element> x) {
      ASSERT_TRUE(x.has_value());
      got.push_back(*x);
    });
  }
  heap.run_batch();
  std::sort(got.begin(), got.end());
  std::sort(inserted.begin(), inserted.end());
  EXPECT_EQ(got, inserted);

  const auto check = heap.verify_semantics();
  EXPECT_TRUE(check.ok) << check.error;
}

TEST_P(HeapBackends, SemanticsHoldUnderAsyncMixedLoad) {
  DistributedHeap heap({.backend = GetParam(),
                        .num_nodes = 12,
                        .num_priorities = 3,
                        .seed = 3,
                        .mode = sim::DeliveryMode::kAsynchronous,
                        .max_delay = 10});
  Rng rng(33);
  for (int batch = 0; batch < 4; ++batch) {
    for (NodeId v = 0; v < 12; ++v) {
      for (int i = 0; i < 3; ++i) {
        if (rng.flip(0.6)) {
          heap.insert(v, rng.range(1, 3));
        } else {
          heap.delete_min(v);
        }
      }
    }
    heap.run_batch();
  }
  const auto check = heap.verify_semantics();
  EXPECT_TRUE(check.ok) << check.error;
}

TEST_P(HeapBackends, StoredElementsTracksHeapContents) {
  DistributedHeap heap({.backend = GetParam(), .num_nodes = 8, .seed = 4});
  for (NodeId v = 0; v < 8; ++v) heap.insert(v, 1 + v % 2);
  heap.run_batch();
  EXPECT_EQ(heap.stored_elements(), 8u);
  for (NodeId v = 0; v < 4; ++v) heap.delete_min(v);
  heap.run_batch();
  EXPECT_EQ(heap.stored_elements(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Backends, HeapBackends,
                         ::testing::Values(DistributedHeap::Backend::kSkeap,
                                           DistributedHeap::Backend::kSeap),
                         [](const auto& param_info) {
                           return param_info.param ==
                                          DistributedHeap::Backend::kSkeap
                                      ? "Skeap"
                                      : "Seap";
                         });

TEST(DistributedHeap, SkeapRejectsOutOfRangePriorities) {
  DistributedHeap heap({.backend = DistributedHeap::Backend::kSkeap,
                        .num_nodes = 4,
                        .num_priorities = 2,
                        .seed = 5});
  EXPECT_THROW(heap.insert(0, 0), CheckFailure);
  EXPECT_THROW(heap.insert(0, 3), CheckFailure);
}

TEST_P(HeapBackends, MaxHeapOrderingReturnsLargestFirst) {
  DistributedHeap heap({.backend = GetParam(),
                        .ordering = DistributedHeap::Ordering::kMax,
                        .num_nodes = 8,
                        .num_priorities = 4,
                        .seed = 7});
  heap.insert(0, 2);
  heap.insert(1, 4);
  heap.insert(2, 1);
  heap.insert(3, 3);
  heap.run_batch();

  // One node drains sequentially; priorities must come back descending.
  std::vector<Priority> got;
  for (int i = 0; i < 4; ++i) {
    heap.delete_min(0, [&](std::optional<Element> e) {
      ASSERT_TRUE(e.has_value());
      got.push_back(e->prio);
    });
    heap.run_batch();
  }
  EXPECT_EQ(got, (std::vector<Priority>{4, 3, 2, 1}));
  const auto check = heap.verify_semantics();
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(DistributedHeap, MaxHeapSeapWithHugePriorities) {
  DistributedHeap heap({.backend = DistributedHeap::Backend::kSeap,
                        .ordering = DistributedHeap::Ordering::kMax,
                        .num_nodes = 4,
                        .seed = 8});
  heap.insert(0, 10);
  heap.insert(1, ~0ULL >> 3);
  heap.insert(2, 12345);
  heap.run_batch();
  std::optional<Element> got;
  heap.delete_min(3, [&](std::optional<Element> e) { got = e; });
  heap.run_batch();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->prio, ~0ULL >> 3);  // the maximum, with its original value
}

TEST(DistributedHeap, SeapAcceptsHugePriorities) {
  DistributedHeap heap({.backend = DistributedHeap::Backend::kSeap,
                        .num_nodes = 4,
                        .seed = 6});
  heap.insert(0, ~0ULL >> 17);
  std::optional<Element> got;
  heap.delete_min(1, [&](std::optional<Element> x) { got = x; });
  heap.run_batch();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->prio, ~0ULL >> 17);
}

}  // namespace
}  // namespace sks::core
