// The semantics checkers are themselves load-bearing test infrastructure,
// so they get adversarial tests: hand-built traces with known violations
// of Definitions 1.1/1.2 must be rejected with the right diagnosis.
#include "core/semantics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sks::core {
namespace {

// ---------------------------------------------------------------------------
// Skeap traces
// ---------------------------------------------------------------------------

skeap::OpRecord ins(NodeId node, std::uint64_t seq, std::uint64_t epoch,
                    std::uint64_t entry, Priority p, Position pos,
                    ElementId id) {
  skeap::OpRecord r;
  r.node = node;
  r.issue_seq = seq;
  r.epoch = epoch;
  r.entry = entry;
  r.is_insert = true;
  r.prio = p;
  r.pos = pos;
  r.element = Element{p, id};
  r.completed = true;
  return r;
}

skeap::OpRecord del(NodeId node, std::uint64_t seq, std::uint64_t epoch,
                    std::uint64_t entry, Priority p, Position pos,
                    ElementId id) {
  skeap::OpRecord r;
  r.node = node;
  r.issue_seq = seq;
  r.epoch = epoch;
  r.entry = entry;
  r.is_insert = false;
  r.prio = p;
  r.pos = pos;
  r.element = Element{p, id};
  r.completed = true;
  return r;
}

skeap::OpRecord bot(NodeId node, std::uint64_t seq, std::uint64_t epoch,
                    std::uint64_t entry) {
  skeap::OpRecord r;
  r.node = node;
  r.issue_seq = seq;
  r.epoch = epoch;
  r.entry = entry;
  r.is_insert = false;
  r.bottom = true;
  r.completed = true;
  return r;
}

TEST(SkeapChecker, AcceptsValidTrace) {
  std::vector<skeap::OpRecord> t{
      ins(0, 0, 0, 0, 1, 1, 10),
      ins(1, 0, 0, 0, 2, 1, 11),
      del(0, 1, 0, 0, 1, 1, 10),  // removes the p1 element
      del(1, 1, 1, 0, 2, 1, 11),  // next epoch removes the p2 element
      bot(2, 0, 1, 0),            // and a third delete gets ⊥
  };
  const auto res = check_skeap_trace(t);
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(SkeapChecker, RejectsIncompleteOps) {
  auto r = ins(0, 0, 0, 0, 1, 1, 10);
  r.completed = false;
  const auto res = check_skeap_trace({r});
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("incomplete"), std::string::npos);
}

TEST(SkeapChecker, RejectsDeleteOfNeverInsertedPosition) {
  const auto res = check_skeap_trace({del(0, 0, 0, 0, 1, 1, 10)});
  EXPECT_FALSE(res.ok);
}

TEST(SkeapChecker, RejectsBottomWhileHeapNonEmpty) {
  std::vector<skeap::OpRecord> t{
      ins(0, 0, 0, 0, 1, 1, 10),
      bot(1, 0, 1, 0),  // ⊥ although an element is available
  };
  const auto res = check_skeap_trace(t);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("⊥"), std::string::npos);
}

TEST(SkeapChecker, RejectsDeleteThatSkipsTheMinimum) {
  std::vector<skeap::OpRecord> t{
      ins(0, 0, 0, 0, 1, 1, 10),
      ins(1, 0, 0, 0, 2, 1, 11),
      del(2, 0, 1, 0, 2, 1, 11),  // removes p2 although p1 exists
  };
  const auto res = check_skeap_trace(t);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("minimum"), std::string::npos);
}

TEST(SkeapChecker, RejectsDoubleInsertOfSameElement) {
  std::vector<skeap::OpRecord> t{
      ins(0, 0, 0, 0, 1, 1, 10),
      ins(1, 0, 0, 0, 1, 2, 10),  // same element id
  };
  const auto res = check_skeap_trace(t);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("twice"), std::string::npos);
}

TEST(SkeapChecker, RejectsPositionAssignedTwice) {
  std::vector<skeap::OpRecord> t{
      ins(0, 0, 0, 0, 1, 1, 10),
      ins(1, 0, 0, 0, 1, 1, 11),  // same (p, pos)
  };
  const auto res = check_skeap_trace(t);
  EXPECT_FALSE(res.ok);
}

TEST(SkeapChecker, RejectsLocalOrderViolation) {
  // Node 0 issues an epoch-1 op before an epoch-0 op (issue_seq says the
  // epoch-1 op came first) — ≺ cannot respect node 0's program order.
  std::vector<skeap::OpRecord> t{
      ins(0, 0, 1, 0, 1, 2, 10),  // issued first but serialized later
      ins(0, 1, 0, 0, 1, 1, 11),
  };
  const auto res = check_skeap_trace(t);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("local consistency"), std::string::npos);
}

TEST(SkeapChecker, RejectsMatchingMismatch) {
  std::vector<skeap::OpRecord> t{
      ins(0, 0, 0, 0, 1, 1, 10),
      del(1, 0, 1, 0, 1, 1, 99),  // returns an element never stored there
  };
  const auto res = check_skeap_trace(t);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("mismatch"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Seap traces
// ---------------------------------------------------------------------------

seap::SeapOpRecord sins(NodeId node, std::uint64_t seq, std::uint64_t cycle,
                        Priority p, ElementId id) {
  seap::SeapOpRecord r;
  r.node = node;
  r.issue_seq = seq;
  r.cycle = cycle;
  r.is_insert = true;
  r.element = Element{p, id};
  r.completed = true;
  return r;
}

seap::SeapOpRecord sdel(NodeId node, std::uint64_t seq, std::uint64_t cycle,
                        Position pos, Priority p, ElementId id) {
  seap::SeapOpRecord r;
  r.node = node;
  r.issue_seq = seq;
  r.cycle = cycle;
  r.is_insert = false;
  r.pos = pos;
  r.element = Element{p, id};
  r.completed = true;
  return r;
}

seap::SeapOpRecord sbot(NodeId node, std::uint64_t seq, std::uint64_t cycle,
                        Position pos) {
  seap::SeapOpRecord r;
  r.node = node;
  r.issue_seq = seq;
  r.cycle = cycle;
  r.is_insert = false;
  r.bottom = true;
  r.pos = pos;
  r.completed = true;
  return r;
}

TEST(SeapChecker, AcceptsValidTrace) {
  std::vector<seap::SeapOpRecord> t{
      sins(0, 0, 0, 5, 1), sins(1, 0, 0, 3, 2), sins(2, 0, 0, 9, 3),
      sdel(0, 1, 0, 1, 3, 2),  // the two smallest, any position order
      sdel(3, 0, 0, 2, 5, 1),
      sdel(1, 1, 1, 1, 9, 3),  // next cycle takes the last element
      sbot(2, 1, 1, 2),        // and one more delete gets ⊥
  };
  const auto res = check_seap_trace(t);
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(SeapChecker, RejectsNonMinimalRemoval) {
  std::vector<seap::SeapOpRecord> t{
      sins(0, 0, 0, 5, 1),
      sins(1, 0, 0, 3, 2),
      sdel(0, 1, 0, 1, 5, 1),  // removes p5 while p3 remains unmatched
  };
  const auto res = check_seap_trace(t);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("smallest"), std::string::npos);
}

TEST(SeapChecker, RejectsBottomWhileElementsRemain) {
  std::vector<seap::SeapOpRecord> t{
      sins(0, 0, 0, 5, 1),
      sbot(1, 0, 0, 1),
  };
  const auto res = check_seap_trace(t);
  EXPECT_FALSE(res.ok);
}

TEST(SeapChecker, RejectsDuplicatePositionInACycle) {
  std::vector<seap::SeapOpRecord> t{
      sins(0, 0, 0, 5, 1), sins(1, 0, 0, 3, 2),
      sdel(0, 1, 0, 1, 3, 2), sdel(1, 1, 0, 1, 5, 1),  // pos 1 twice
  };
  const auto res = check_seap_trace(t);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("twice"), std::string::npos);
}

TEST(SeapChecker, RejectsDeleteOfForeignElement) {
  std::vector<seap::SeapOpRecord> t{
      sins(0, 0, 0, 5, 1),
      sdel(1, 0, 0, 1, 4, 99),  // element 99 was never inserted
  };
  const auto res = check_seap_trace(t);
  EXPECT_FALSE(res.ok);
}

TEST(SeapChecker, RejectsElementDeletedTwice) {
  std::vector<seap::SeapOpRecord> t{
      sins(0, 0, 0, 5, 1), sins(1, 0, 0, 6, 2),
      sdel(0, 1, 0, 1, 5, 1),
      sdel(1, 1, 1, 1, 5, 1),  // same element again next cycle
  };
  const auto res = check_seap_trace(t);
  EXPECT_FALSE(res.ok);
}

}  // namespace
}  // namespace sks::core
