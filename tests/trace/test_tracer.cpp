// Unit tests of the tracing core: the zero-cost-when-disabled contract,
// causal ordering, the Log2Histogram, and the three exporters (text,
// binary round-trip, Perfetto JSON shape).
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/dispatch.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "trace/binary.hpp"
#include "trace/perfetto.hpp"
#include "trace/summary.hpp"
#include "trace/text.hpp"
#include "trace/tracer.hpp"

namespace sks {
namespace {

TEST(Tracer, DisabledRecordsNothingButKeepsTheRoundClock) {
  trace::Tracer t;
  EXPECT_FALSE(t.enabled());
  t.begin_round(7);
  t.message(trace::EventKind::kSend, 0, 1, 0, 64);
  t.epoch_begin(0);
  t.phase_begin(0, "x.phase", 0);
  t.annotate(0, "x.value", 42);
  t.lifecycle(trace::EventKind::kNodeJoin, 3);
  EXPECT_EQ(t.num_events(), 0u);
  // The round clock advances even while disabled, so a mid-run enable()
  // stamps subsequent events with the correct round.
  EXPECT_EQ(t.round(), 7u);
  t.enable();
  t.message(trace::EventKind::kDeliver, 0, 1, 0, 64);
  ASSERT_EQ(t.num_events(), 1u);
  EXPECT_EQ(t.category(trace::Category::kMessage)[0].round, 7u);
}

TEST(Tracer, BuildTraceMergesCategoriesInCausalOrder) {
  trace::Tracer t;
  t.enable();
  t.begin_round(1);
  t.phase_begin(0, "p", 0);                               // seq 1 (kSpan)
  t.message(trace::EventKind::kSend, 0, 1, 0, 8);         // seq 2 (kMessage)
  t.begin_round(2);                                       // seq 3 (kLifecycle)
  t.message(trace::EventKind::kDeliver, 0, 1, 0, 8);      // seq 4
  t.phase_end(0, "p", 0);                                 // seq 5
  const trace::Trace trace = trace::build_trace(t, 2);
  ASSERT_EQ(trace.events.size(), 6u);
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(trace.events[i].seq, i);
  }
  EXPECT_EQ(trace.events[1].kind, trace::EventKind::kPhaseBegin);
  EXPECT_EQ(trace.events[4].kind, trace::EventKind::kDeliver);
  EXPECT_EQ(trace.events[4].node, 1u);  // deliver: node = receiver
  EXPECT_EQ(trace.events[4].peer, 0u);
}

TEST(Tracer, SpanNamesInternToStableIds) {
  trace::Tracer t;
  const trace::SpanId a = t.span_id("alpha");
  const trace::SpanId b = t.span_id("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.span_id("alpha"), a);
  // Same content through a different pointer still dedupes.
  const std::string alpha_copy = "alpha";
  EXPECT_EQ(t.span_id(alpha_copy.c_str()), a);
  t.clear();
  EXPECT_EQ(t.span_id("beta"), b) << "ids must survive clear()";
}

TEST(Log2Histogram, BucketsByBitWidth) {
  sim::Log2Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1000);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.buckets()[0], 1u);  // 0
  EXPECT_EQ(h.buckets()[1], 1u);  // 1
  EXPECT_EQ(h.buckets()[2], 2u);  // 2, 3
  EXPECT_EQ(h.buckets()[10], 1u);  // 1000 (bit width 10)
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 3u);       // upper bound of bucket 2
  EXPECT_EQ(h.quantile(0.99), 1023u);   // upper bound of bucket 10
  sim::Log2Histogram other;
  other.record(1000);
  h.merge(other);
  EXPECT_EQ(h.buckets()[10], 2u);
  h.clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

// ---- network-integrated capture -------------------------------------------

struct PingPayload final : sim::Action<PingPayload> {
  static constexpr const char* kActionName = "trace.ping";
  std::uint64_t size_bits() const override { return 24; }

  void encode(sks::wire::WireWriter&) const override {}
  static sim::Owned<PingPayload> decode(sks::wire::WireReader&) {
    return sim::make_payload<PingPayload>();
  }
};

class PingNode : public sim::DispatchingNode {
 public:
  PingNode() {
    on<PingPayload>([](NodeId, sim::Owned<PingPayload>) {});
  }
  void fire(NodeId to) { send(to, sim::make_payload<PingPayload>()); }
};

trace::Trace captured_ping_trace() {
  sim::Network net;
  const NodeId a = net.add_node(std::make_unique<PingNode>());
  const NodeId b = net.add_node(std::make_unique<PingNode>());
  net.tracer().enable();
  net.tracer().epoch_begin(0);
  net.node_as<PingNode>(a).fire(b);
  net.node_as<PingNode>(b).fire(a);
  net.run_until_idle();
  net.tracer().epoch_end(0);
  return net.take_trace();
}

TEST(Tracer, NetworkHooksCaptureSendsAndDeliveries) {
  const trace::Trace t = captured_ping_trace();
  EXPECT_EQ(t.num_nodes, 2u);
  std::size_t sends = 0, delivers = 0;
  for (const auto& e : t.events) {
    if (e.kind == trace::EventKind::kSend) {
      ++sends;
      EXPECT_EQ(e.value, 24u);
      EXPECT_EQ(trace::action_name(t, e.label), "trace.ping");
    }
    if (e.kind == trace::EventKind::kDeliver) ++delivers;
  }
  EXPECT_EQ(sends, 2u);
  EXPECT_EQ(delivers, 2u);
}

TEST(Exporters, BinaryDumpRoundTrips) {
  const trace::Trace t = captured_ping_trace();
  const std::string path = testing::TempDir() + "sks_trace_roundtrip.bin";
  trace::write_binary(t, path);
  const trace::Trace back = trace::load_binary(path);
  ASSERT_EQ(back.events.size(), t.events.size());
  EXPECT_EQ(std::memcmp(back.events.data(), t.events.data(),
                        t.events.size() * sizeof(trace::Event)),
            0);
  EXPECT_EQ(back.num_nodes, t.num_nodes);
  EXPECT_EQ(back.action_names, t.action_names);
  EXPECT_EQ(back.span_names, t.span_names);
  EXPECT_EQ(trace::to_text(back), trace::to_text(t));
  std::remove(path.c_str());
}

TEST(Exporters, PerfettoJsonHasPerNodeTracks) {
  const trace::Trace t = captured_ping_trace();
  const std::string path = testing::TempDir() + "sks_trace_perfetto.json";
  trace::write_perfetto_json(t, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  std::remove(path.c_str());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"cluster\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node 1\""), std::string::npos);
  EXPECT_NE(json.find("trace.ping"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"epoch 0\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(Summary, AttributesDeliveriesToTheOpenPhase) {
  trace::Tracer t;
  t.enable();
  t.begin_round(1);
  t.epoch_begin(5);
  t.phase_begin(0, "work", 5);
  t.message(trace::EventKind::kSend, 1, 0, 0, 10);
  t.begin_round(2);
  t.message(trace::EventKind::kDeliver, 1, 0, 0, 10);   // inside "work"
  t.message(trace::EventKind::kDeliver, 0, 1, 0, 10);   // node 1: no phase
  t.begin_round(3);
  t.phase_end(0, "work", 5);
  t.epoch_end(5);
  const trace::Trace trace = trace::build_trace(t, 2);
  const trace::TraceSummary s = trace::summarize(trace);

  EXPECT_EQ(s.sends, 1u);
  EXPECT_EQ(s.deliveries, 2u);
  EXPECT_EQ(s.total_bits, 20u);
  ASSERT_EQ(s.phases.size(), 2u);  // "(no phase)" + "work" (sorted)
  EXPECT_EQ(s.phases[0].phase, "(no phase)");
  EXPECT_EQ(s.phases[0].messages, 1u);
  EXPECT_EQ(s.phases[1].phase, "work");
  EXPECT_EQ(s.phases[1].messages, 1u);
  EXPECT_EQ(s.phases[1].rounds, 2u);  // opened round 1, closed round 3
  EXPECT_EQ(s.phases[1].max_congestion, 1u);
  ASSERT_EQ(s.epochs.size(), 1u);
  EXPECT_EQ(s.epochs[0].epoch, 5u);
  EXPECT_EQ(s.epochs[0].messages, 2u);
  EXPECT_EQ(s.epochs[0].rounds, 2u);
}

}  // namespace
}  // namespace sks
