// Golden-trace and invariance tests of the tracing subsystem, on the
// paper's Figure 1 scenario: n = 3 nodes, P = {1, 2}, per-node batches
// ((1,0),0), ((1,0),2) and ((2,1),1), one full Skeap batch.
//
//  * The captured text trace must match the checked-in golden file
//    byte for byte (regenerate with SKS_REGEN_GOLDEN=1 after an
//    intentional protocol change).
//  * The capture is deterministic: the same seed yields a byte-identical
//    trace, in synchronous and asynchronous delivery modes alike.
//  * Tracing is observation only: enabling it must leave the metrics of
//    an identical run byte-identical.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/metrics.hpp"
#include "skeap/skeap_system.hpp"
#include "trace/summary.hpp"
#include "trace/text.hpp"
#include "trace/tracer.hpp"

namespace sks {
namespace {

skeap::SkeapSystem make_figure1_system(sim::DeliveryMode mode) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = 3;
  opts.num_priorities = 2;
  opts.seed = 42;
  opts.mode = mode;
  return skeap::SkeapSystem(opts);
}

/// Queue Figure 1's per-node batches and run the batch. v0: one Insert(1);
/// v1: one Insert(1) and two DeleteMin; v2: two Insert(1), one Insert(2)
/// and one DeleteMin.
void run_figure1_batch(skeap::SkeapSystem& sys) {
  sys.insert(0, 1);
  sys.insert(1, 1);
  sys.delete_min(1);
  sys.delete_min(1);
  sys.insert(2, 1);
  sys.insert(2, 1);
  sys.insert(2, 2);
  sys.delete_min(2);
  sys.run_batch();
}

std::string figure1_trace_text(sim::DeliveryMode mode) {
  skeap::SkeapSystem sys = make_figure1_system(mode);
  sys.net().tracer().enable();
  run_figure1_batch(sys);
  return trace::to_text(sys.net().take_trace());
}

std::string golden_path() {
  return std::string(SKS_TEST_DATA_DIR) + "/golden/figure1_trace.txt";
}

TEST(GoldenTrace, Figure1MatchesCheckedInTrace) {
  const std::string text = figure1_trace_text(sim::DeliveryMode::kSynchronous);
  if (std::getenv("SKS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << text;
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " (run with SKS_REGEN_GOLDEN=1 to create it)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(text, buf.str())
      << "trace differs from the golden Figure 1 capture; if the protocol "
         "change is intentional, regenerate with SKS_REGEN_GOLDEN=1";
}

TEST(GoldenTrace, Figure1CoversAllFourSkeapPhases) {
  skeap::SkeapSystem sys = make_figure1_system(sim::DeliveryMode::kSynchronous);
  sys.net().tracer().enable();
  run_figure1_batch(sys);
  const trace::TraceSummary s = trace::summarize(sys.net().take_trace());
  bool p1 = false, p2 = false, p3 = false, p4 = false;
  for (const auto& p : s.phases) {
    if (p.phase == "skeap.phase1.aggregate") p1 = p.spans == 3;  // every node
    if (p.phase == "skeap.phase2.assign") p2 = p.spans == 1;     // anchor only
    if (p.phase == "skeap.phase3.decompose") p3 = p.spans == 1;
    if (p.phase == "skeap.phase4.dht") p4 = p.spans == 3;
  }
  EXPECT_TRUE(p1 && p2 && p3 && p4)
      << "expected all four Skeap phase spans in the Figure 1 trace";
  ASSERT_EQ(s.epochs.size(), 1u);
  EXPECT_GT(s.epochs[0].rounds, 0u);
}

// The fault substrate must be invisible until armed: an explicitly
// constructed all-zero FaultPlan (and a disabled reliable transport) takes
// zero draws from the fault rng stream, so the capture stays byte-identical
// to the default-options run — in both delivery modes.
TEST(GoldenTrace, AllZeroFaultPlanLeavesTraceByteIdentical) {
  for (const sim::DeliveryMode mode : {sim::DeliveryMode::kSynchronous,
                                       sim::DeliveryMode::kAsynchronous}) {
    skeap::SkeapSystem::Options opts;
    opts.num_nodes = 3;
    opts.num_priorities = 2;
    opts.seed = 42;
    opts.mode = mode;
    opts.faults = sim::FaultPlan{};        // explicit, still all-zero
    opts.reliable = sim::ReliableConfig{}; // explicit, still disabled
    ASSERT_FALSE(opts.faults.active());
    skeap::SkeapSystem sys(opts);
    sys.net().tracer().enable();
    run_figure1_batch(sys);
    EXPECT_EQ(trace::to_text(sys.net().take_trace()),
              figure1_trace_text(mode))
        << "an inactive FaultPlan must not perturb the schedule (mode "
        << static_cast<int>(mode) << ")";
  }
}

// The recovery substrate must be equally invisible when disabled: an
// explicitly constructed (still-disabled) RecoveryConfig sends no
// heartbeats, takes no rng draws and replicates nothing, so the capture
// stays byte-identical to the default-options run in both delivery modes.
TEST(GoldenTrace, DisabledRecoveryLeavesTraceByteIdentical) {
  for (const sim::DeliveryMode mode : {sim::DeliveryMode::kSynchronous,
                                       sim::DeliveryMode::kAsynchronous}) {
    skeap::SkeapSystem::Options opts;
    opts.num_nodes = 3;
    opts.num_priorities = 2;
    opts.seed = 42;
    opts.mode = mode;
    opts.recovery = recovery::RecoveryConfig{};  // explicit, still disabled
    ASSERT_FALSE(opts.recovery.enabled);
    skeap::SkeapSystem sys(opts);
    sys.net().tracer().enable();
    run_figure1_batch(sys);
    EXPECT_EQ(trace::to_text(sys.net().take_trace()),
              figure1_trace_text(mode))
        << "a disabled RecoveryConfig must not perturb the schedule (mode "
        << static_cast<int>(mode) << ")";
  }
}

TEST(GoldenTrace, CaptureIsDeterministicSync) {
  EXPECT_EQ(figure1_trace_text(sim::DeliveryMode::kSynchronous),
            figure1_trace_text(sim::DeliveryMode::kSynchronous));
}

TEST(GoldenTrace, CaptureIsDeterministicAsync) {
  const std::string a = figure1_trace_text(sim::DeliveryMode::kAsynchronous);
  EXPECT_EQ(a, figure1_trace_text(sim::DeliveryMode::kAsynchronous));
  EXPECT_NE(a, figure1_trace_text(sim::DeliveryMode::kSynchronous))
      << "async delays should reshape the schedule";
}

void expect_snapshots_identical(const sim::MetricsSnapshot& a,
                                const sim::MetricsSnapshot& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.max_message_bits, b.max_message_bits);
  EXPECT_EQ(a.max_congestion, b.max_congestion);
  EXPECT_TRUE(a.message_bits_hist == b.message_bits_hist);
  EXPECT_TRUE(a.congestion_hist == b.congestion_hist);
  EXPECT_EQ(a.messages_by_type, b.messages_by_type);
  EXPECT_EQ(a.bits_by_type, b.bits_by_type);
  EXPECT_EQ(a.max_bits_by_type, b.max_bits_by_type);
}

TEST(GoldenTrace, TracingLeavesMetricsInvariant) {
  skeap::SkeapSystem untraced =
      make_figure1_system(sim::DeliveryMode::kSynchronous);
  run_figure1_batch(untraced);
  EXPECT_EQ(untraced.net().tracer().num_events(), 0u);

  skeap::SkeapSystem traced =
      make_figure1_system(sim::DeliveryMode::kSynchronous);
  traced.net().tracer().enable();
  run_figure1_batch(traced);
  EXPECT_GT(traced.net().tracer().num_events(), 0u);

  expect_snapshots_identical(untraced.net().metrics().current(),
                             traced.net().metrics().current());
}

}  // namespace
}  // namespace sks
