// Tests for the shared bench helpers (bench/bench_util.hpp): the --json
// and --telemetry path resolution (including arguments shorter than the
// extension, which must be treated as directories rather than read out
// of bounds), the --repeat median selection, and a TelemetryScope
// round trip through the ndjson stream and OpenMetrics exposition.
#include "bench/bench_util.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/timeline.hpp"
#include "sim/dispatch.hpp"
#include "sim/network.hpp"

namespace sks::bench {
namespace {

TEST(JsonOutputPath, EmptyArgDefaultsToCurrentDirectory) {
  EXPECT_EQ(json_output_path("faults", ""), "./BENCH_faults.json");
}

TEST(JsonOutputPath, DirectoryArgGetsDefaultFileName) {
  EXPECT_EQ(json_output_path("faults", "out"), "out/BENCH_faults.json");
  EXPECT_EQ(json_output_path("faults", "/tmp/results"),
            "/tmp/results/BENCH_faults.json");
}

TEST(JsonOutputPath, ExplicitJsonFileIsKeptVerbatim) {
  EXPECT_EQ(json_output_path("faults", "/tmp/custom.json"),
            "/tmp/custom.json");
  // The extension alone is a (degenerate) explicit file, not a directory.
  EXPECT_EQ(json_output_path("faults", ".json"), ".json");
}

TEST(JsonOutputPath, ArgsShorterThanTheExtensionAreDirectories) {
  // Regression guard: the suffix check must not inspect path.size()-5
  // when the argument has fewer than 5 characters.
  EXPECT_EQ(json_output_path("x", "a"), "a/BENCH_x.json");
  EXPECT_EQ(json_output_path("x", "ab"), "ab/BENCH_x.json");
  EXPECT_EQ(json_output_path("x", "abcd"), "abcd/BENCH_x.json");
  EXPECT_EQ(json_output_path("x", "v.js"), "v.js/BENCH_x.json");
}

TEST(TelemetryOutputPath, MirrorsTheJsonRules) {
  EXPECT_EQ(telemetry_output_path("skeap_rounds", ""),
            "./TELEMETRY_skeap_rounds.ndjson");
  EXPECT_EQ(telemetry_output_path("skeap_rounds", "/tmp"),
            "/tmp/TELEMETRY_skeap_rounds.ndjson");
  EXPECT_EQ(telemetry_output_path("skeap_rounds", "/tmp/t.ndjson"),
            "/tmp/t.ndjson");
  EXPECT_EQ(telemetry_output_path("x", "abc"), "abc/TELEMETRY_x.ndjson");
}

TEST(MedianOfRepeats, DefaultSingleRepetitionIsAPlainCall) {
  repeat_count() = 1;
  int calls = 0;
  const double r = median_of_repeats(
      [&](int) {
        ++calls;
        return 42.0;
      },
      [](double v) { return v; });
  EXPECT_EQ(calls, 1);
  EXPECT_DOUBLE_EQ(r, 42.0);
}

TEST(MedianOfRepeats, OddCountPicksTheMiddleByKey) {
  repeat_count() = 5;
  const std::vector<double> walls = {5.0, 1.0, 9.0, 3.0, 7.0};
  int calls = 0;
  struct Result {
    int rep;
    double wall;
  };
  const Result r = median_of_repeats(
      [&](int rep) {
        ++calls;
        return Result{rep, walls[static_cast<std::size_t>(rep)]};
      },
      [](const Result& x) { return x.wall; });
  EXPECT_EQ(calls, 5);
  EXPECT_DOUBLE_EQ(r.wall, 5.0);  // sorted keys 1,3,5,7,9 -> median 5
  EXPECT_EQ(r.rep, 0);
  repeat_count() = 1;
}

TEST(MedianOfRepeats, EvenCountPicksTheLowerMiddle) {
  repeat_count() = 4;
  const std::vector<double> walls = {4.0, 1.0, 3.0, 2.0};
  const double r = median_of_repeats(
      [&](int rep) { return walls[static_cast<std::size_t>(rep)]; },
      [](double v) { return v; });
  EXPECT_DOUBLE_EQ(r, 2.0);  // sorted 1,2,3,4 -> index (4-1)/2 = 1
  repeat_count() = 1;
}

/// A node with no handlers — enough to make the network tick rounds.
class IdleNode : public sim::DispatchingNode {};

TEST(TelemetryScope, StreamsNdjsonAndWritesOpenMetrics) {
  const std::string ndjson = "test_bench_util_telemetry.ndjson";
  const std::string om = "test_bench_util_telemetry.om";
  telemetry().enabled = true;
  telemetry().name = "unit";
  telemetry().path = ndjson;
  telemetry().interval = 2;

  {
    sim::Network net;
    net.add_node(std::make_unique<IdleNode>());
    TelemetryScope tel(net, "unit-scope");
    ASSERT_NE(tel.sampler(), nullptr);
    for (int i = 0; i < 5; ++i) net.step();
    // Samples fired at rounds 2 and 4; finish() (via the destructor)
    // cuts the final partial interval and writes the exposition.
  }
  telemetry().enabled = false;

  std::ifstream in(ndjson);
  ASSERT_TRUE(in.is_open());
  const std::vector<obs::TimelineRow> rows = obs::read_timeline(in);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].t, 2u);
  EXPECT_EQ(rows[1].t, 4u);
  EXPECT_EQ(rows[2].t, 5u);

  std::ifstream omf(om);
  ASSERT_TRUE(omf.is_open());
  std::stringstream buf;
  buf << omf.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("sks_rounds_total{run=\"unit-scope\"} 5"),
            std::string::npos);
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

  std::remove(ndjson.c_str());
  std::remove(om.c_str());
}

TEST(TelemetryScope, IsANoOpWhenDisabled) {
  telemetry().enabled = false;
  sim::Network net;
  net.add_node(std::make_unique<IdleNode>());
  TelemetryScope tel(net);
  EXPECT_EQ(tel.sampler(), nullptr);
  for (int i = 0; i < 3; ++i) net.step();  // no observer, no stream
}

}  // namespace
}  // namespace sks::bench
