#include "skeap/assignment.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sks::skeap {
namespace {

Batch make_batch(std::uint64_t i1, std::uint64_t i2, std::uint64_t d) {
  Batch b(2);
  for (std::uint64_t k = 0; k < i1; ++k) b.record_insert(1);
  for (std::uint64_t k = 0; k < i2; ++k) b.record_insert(2);
  for (std::uint64_t k = 0; k < d; ++k) b.record_delete();
  return b;
}

TEST(AnchorState, StartsEmpty) {
  AnchorState st(3);
  EXPECT_EQ(st.total_occupancy(), 0u);
  for (Priority p = 1; p <= 3; ++p) {
    EXPECT_EQ(st.first(p), 1u);
    EXPECT_EQ(st.last(p), 0u);
    EXPECT_EQ(st.occupancy(p), 0u);
  }
}

// Figure 1 of the paper, phases 2 and 3: combined batch ((4,1),3) on an
// empty heap with P = {1,2}.
TEST(AnchorState, Figure1Phase2) {
  AnchorState st(2);
  const Batch combined = make_batch(4, 1, 3);
  const BatchAssignment asg = st.assign(combined);

  ASSERT_EQ(asg.entries.size(), 1u);
  const auto& e = asg.entries[0];
  // Inserts: priority 1 gets [1,4], priority 2 gets [1,1].
  EXPECT_EQ(e.inserts.at(1), (Interval{1, 4}));
  EXPECT_EQ(e.inserts.at(2), (Interval{1, 1}));
  // Deletes: [1,3] from priority 1, nothing from priority 2, no ⊥.
  ASSERT_EQ(e.deletes.spans.spans().size(), 1u);
  EXPECT_EQ(e.deletes.spans.spans()[0], (PrioritySpan{1, {1, 3}}));
  EXPECT_EQ(e.deletes.bottoms, 0u);

  // Anchor state as in Figure 1(c)/(d): first1=4, last1=4, first2=1,
  // last2=1.
  EXPECT_EQ(st.first(1), 4u);
  EXPECT_EQ(st.last(1), 4u);
  EXPECT_EQ(st.first(2), 1u);
  EXPECT_EQ(st.last(2), 1u);
  EXPECT_EQ(st.total_occupancy(), 2u);
}

TEST(AnchorState, Figure1Phase3Decomposition) {
  AnchorState st(2);
  const Batch combined = make_batch(4, 1, 3);
  const BatchAssignment asg = st.assign(combined);

  // Sub-batches in combination order: ((1,0),0), ((1,0),2), ((2,1),1) —
  // the three per-node batches of Figure 1(a).
  const std::vector<Batch> children{make_batch(1, 0, 0), make_batch(1, 0, 2),
                                    make_batch(2, 1, 1)};
  const auto parts = split_assignment(asg, children);
  ASSERT_EQ(parts.size(), 3u);

  // Node with ((1,0),0): insert [1,1] at priority 1, nothing else.
  EXPECT_EQ(parts[0].entries[0].inserts.at(1), (Interval{1, 1}));
  EXPECT_TRUE(parts[0].entries[0].inserts.at(2).empty());
  EXPECT_EQ(parts[0].entries[0].deletes.total(), 0u);

  // Node with ((1,0),2): insert [2,2] at priority 1, deletes [1,2].
  EXPECT_EQ(parts[1].entries[0].inserts.at(1), (Interval{2, 2}));
  ASSERT_EQ(parts[1].entries[0].deletes.spans.spans().size(), 1u);
  EXPECT_EQ(parts[1].entries[0].deletes.spans.spans()[0],
            (PrioritySpan{1, {1, 2}}));

  // Node with ((2,1),1): inserts [3,4] at p1 and [1,1] at p2, delete [3,3].
  EXPECT_EQ(parts[2].entries[0].inserts.at(1), (Interval{3, 4}));
  EXPECT_EQ(parts[2].entries[0].inserts.at(2), (Interval{1, 1}));
  ASSERT_EQ(parts[2].entries[0].deletes.spans.spans().size(), 1u);
  EXPECT_EQ(parts[2].entries[0].deletes.spans.spans()[0],
            (PrioritySpan{1, {3, 3}}));
}

TEST(AnchorState, DeletesSpillToLowerPriorities) {
  AnchorState st(3);
  Batch fill(3);
  for (int i = 0; i < 2; ++i) fill.record_insert(1);
  for (int i = 0; i < 3; ++i) fill.record_insert(2);
  (void)st.assign(fill);
  EXPECT_EQ(st.total_occupancy(), 5u);

  Batch del(3);
  for (int i = 0; i < 4; ++i) del.record_delete();
  const auto asg = st.assign(del);
  const auto& spans = asg.entries[0].deletes.spans.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0], (PrioritySpan{1, {1, 2}}));  // both p1 elements
  EXPECT_EQ(spans[1], (PrioritySpan{2, {1, 2}}));  // then two p2 elements
  EXPECT_EQ(asg.entries[0].deletes.bottoms, 0u);
  EXPECT_EQ(st.total_occupancy(), 1u);
}

TEST(AnchorState, EmptyHeapYieldsBottoms) {
  AnchorState st(2);
  Batch del(2);
  del.record_delete();
  del.record_delete();
  const auto asg = st.assign(del);
  EXPECT_EQ(asg.entries[0].deletes.spans.total(), 0u);
  EXPECT_EQ(asg.entries[0].deletes.bottoms, 2u);
}

TEST(AnchorState, SameEntryInsertsFeedSameEntryDeletes) {
  // Within one entry the inserts are assigned before the deletes, so a
  // batch ((1,0),1) on an empty heap matches the delete to the insert.
  AnchorState st(2);
  const auto asg = st.assign(make_batch(1, 0, 1));
  EXPECT_EQ(asg.entries[0].inserts.at(1), (Interval{1, 1}));
  ASSERT_EQ(asg.entries[0].deletes.spans.spans().size(), 1u);
  EXPECT_EQ(asg.entries[0].deletes.spans.spans()[0],
            (PrioritySpan{1, {1, 1}}));
  EXPECT_EQ(asg.entries[0].deletes.bottoms, 0u);
  EXPECT_EQ(st.total_occupancy(), 0u);
}

TEST(AnchorState, LaterEntriesSeeEarlierEntriesEffects) {
  AnchorState st(1);
  Batch b(1);
  b.record_insert(1);  // entry 0
  b.record_delete();   // entry 0
  b.record_insert(1);  // entry 1
  b.record_delete();   // entry 1
  const auto asg = st.assign(b);
  ASSERT_EQ(asg.entries.size(), 2u);
  EXPECT_EQ(asg.entries[0].inserts.at(1), (Interval{1, 1}));
  EXPECT_EQ(asg.entries[0].deletes.spans.spans()[0],
            (PrioritySpan{1, {1, 1}}));
  EXPECT_EQ(asg.entries[1].inserts.at(1), (Interval{2, 2}));
  EXPECT_EQ(asg.entries[1].deletes.spans.spans()[0],
            (PrioritySpan{1, {2, 2}}));
}

TEST(SplitAssignment, ThreeWayCarvePreservesEverything) {
  Rng rng(777);
  for (int trial = 0; trial < 100; ++trial) {
    AnchorState st(2);
    std::vector<Batch> children;
    Batch combined(2);
    for (int c = 0; c < 3; ++c) {
      Batch b(2);
      const int ops = static_cast<int>(rng.range(0, 6));
      for (int i = 0; i < ops; ++i) {
        if (rng.flip(0.6)) {
          b.record_insert(rng.range(1, 2));
        } else {
          b.record_delete();
        }
      }
      combined.combine(b);
      children.push_back(std::move(b));
    }
    const auto asg = st.assign(combined);
    const auto parts = split_assignment(asg, children);

    // Per entry and priority, child parts partition the combined interval.
    std::uint64_t total = 0;
    for (const auto& part : parts) {
      for (const auto& e : part.entries) {
        total += e.inserts.total() + e.deletes.total();
      }
    }
    EXPECT_EQ(total, asg.total_ops()) << "trial " << trial;
    // Child op counts match their sub-batches.
    for (std::size_t c = 0; c < 3; ++c) {
      std::uint64_t child_ops = 0;
      for (const auto& e : parts[c].entries) {
        child_ops += e.inserts.total() + e.deletes.total();
      }
      EXPECT_EQ(child_ops, children[c].total_ops()) << "trial " << trial;
    }
  }
}

TEST(BatchAssignment, SizeBitsTracksContent) {
  AnchorState st(2);
  const auto small = st.assign(make_batch(1, 0, 0));
  AnchorState st2(2);
  const auto large = st2.assign(make_batch(500, 500, 400));
  EXPECT_LT(small.size_bits(), large.size_bits());
}

}  // namespace
}  // namespace sks::skeap
