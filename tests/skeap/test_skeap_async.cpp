// Async mode with max_delay = 1 degenerates to the synchronous model:
// every message is delayed exactly one round, so a Skeap epoch must take
// the same number of rounds as in synchronous mode — even though the rng
// stream (and hence intra-round delivery order) differs. Round counts are
// driven by message depth, not by intra-round ordering, so any divergence
// here means the pending-queue or activation machinery treats the two
// modes differently.
#include <cstdint>
#include <optional>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "skeap/skeap_system.hpp"

namespace sks::skeap {
namespace {

std::uint64_t run_epochs(sim::DeliveryMode mode,
                         std::uint64_t* per_epoch, int epochs) {
  constexpr std::size_t kNodes = 32;
  SkeapSystem sys({.num_nodes = kNodes,
                   .num_priorities = 4,
                   .seed = 77,
                   .mode = mode,
                   .max_delay = 1});
  Rng workload(123);
  std::uint64_t total = 0;
  for (int e = 0; e < epochs; ++e) {
    for (NodeId v = 0; v < kNodes; ++v) {
      for (int i = 0; i < 3; ++i) {
        if (workload.flip(0.6)) {
          sys.insert(v, workload.range(1, 4));
        } else {
          sys.delete_min(v);
        }
      }
    }
    per_epoch[e] = sys.run_batch();
    total += per_epoch[e];
  }
  return total;
}

TEST(SkeapAsync, MaxDelayOneMatchesSynchronousRoundCounts) {
  constexpr int kEpochs = 4;
  std::uint64_t sync_rounds[kEpochs] = {};
  std::uint64_t async_rounds[kEpochs] = {};
  const std::uint64_t sync_total =
      run_epochs(sim::DeliveryMode::kSynchronous, sync_rounds, kEpochs);
  const std::uint64_t async_total =
      run_epochs(sim::DeliveryMode::kAsynchronous, async_rounds, kEpochs);
  for (int e = 0; e < kEpochs; ++e) {
    EXPECT_EQ(sync_rounds[e], async_rounds[e]) << "epoch " << e;
  }
  EXPECT_EQ(sync_total, async_total);
  EXPECT_GT(sync_total, 0u);
}

}  // namespace
}  // namespace sks::skeap
