#include "skeap/skeap_system.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <optional>
#include <vector>

#include "core/semantics.hpp"

namespace sks::skeap {
namespace {

TEST(Skeap, SingleNodeInsertDelete) {
  SkeapSystem sys({.num_nodes = 1, .num_priorities = 2, .seed = 1});
  const Element e = sys.insert(0, 1);
  std::vector<std::optional<Element>> got;
  sys.delete_min(0, [&](std::optional<Element> x) { got.push_back(x); });
  sys.run_batch();
  ASSERT_EQ(got.size(), 1u);
  ASSERT_TRUE(got[0].has_value());
  EXPECT_EQ(*got[0], e);
}

TEST(Skeap, DeleteMinPrefersHigherPriority) {
  SkeapSystem sys({.num_nodes = 4, .num_priorities = 3, .seed = 2});
  sys.insert(0, 3);
  sys.insert(1, 1);
  sys.insert(2, 2);
  sys.run_batch();

  std::vector<std::optional<Element>> got;
  for (NodeId v = 0; v < 3; ++v) {
    sys.delete_min(0, [&](std::optional<Element> x) { got.push_back(x); });
  }
  sys.run_batch();
  ASSERT_EQ(got.size(), 3u);
  // Callbacks arrive in network order, but the *serialization* must match
  // the carve order: in node 0's trace (issue order) the three deletes
  // come back with ascending priority.
  std::vector<Priority> by_issue;
  for (const auto& r : sys.trace_of(0)) {
    if (!r.is_insert) by_issue.push_back(r.element.prio);
  }
  ASSERT_EQ(by_issue.size(), 3u);
  EXPECT_EQ(by_issue[0], 1u);
  EXPECT_EQ(by_issue[1], 2u);
  EXPECT_EQ(by_issue[2], 3u);
  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Skeap, EmptyHeapReturnsBottom) {
  SkeapSystem sys({.num_nodes = 4, .num_priorities = 2, .seed = 3});
  std::vector<std::optional<Element>> got;
  sys.delete_min(1, [&](std::optional<Element> x) { got.push_back(x); });
  sys.delete_min(2, [&](std::optional<Element> x) { got.push_back(x); });
  sys.run_batch();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_FALSE(got[0].has_value());
  EXPECT_FALSE(got[1].has_value());

  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Skeap, MoreDeletesThanElements) {
  SkeapSystem sys({.num_nodes = 4, .num_priorities = 2, .seed = 4});
  sys.insert(0, 1);
  sys.insert(0, 2);
  int bottoms = 0, matched = 0;
  for (int i = 0; i < 5; ++i) {
    sys.delete_min(static_cast<NodeId>(i % 4),
                   [&](std::optional<Element> x) {
                     if (x) {
                       ++matched;
                     } else {
                       ++bottoms;
                     }
                   });
  }
  sys.run_batch();
  EXPECT_EQ(matched, 2);
  EXPECT_EQ(bottoms, 3);
  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Skeap, BatchAcrossManyNodesIsHeapConsistent) {
  SkeapSystem sys({.num_nodes = 16, .num_priorities = 4, .seed = 5});
  Rng rng(55);
  // Two epochs of mixed operations from every node.
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (NodeId v = 0; v < 16; ++v) {
      for (int i = 0; i < 5; ++i) {
        if (rng.flip(0.6)) {
          sys.insert(v, rng.range(1, 4));
        } else {
          sys.delete_min(v);
        }
      }
    }
    sys.run_batch();
  }
  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Skeap, SequentialConsistencyUnderAsynchrony) {
  SkeapSystem sys({.num_nodes = 12,
                   .num_priorities = 3,
                   .seed = 6,
                   .mode = sim::DeliveryMode::kAsynchronous,
                   .max_delay = 12});
  Rng rng(66);
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (NodeId v = 0; v < 12; ++v) {
      const int ops = static_cast<int>(rng.range(0, 4));
      for (int i = 0; i < ops; ++i) {
        if (rng.flip(0.55)) {
          sys.insert(v, rng.range(1, 3));
        } else {
          sys.delete_min(v);
        }
      }
    }
    sys.run_batch();
  }
  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Skeap, PipelinedEpochsUnderAsynchronyDoNotMix) {
  SkeapSystem sys({.num_nodes = 8,
                   .num_priorities = 2,
                   .seed = 7,
                   .mode = sim::DeliveryMode::kAsynchronous,
                   .max_delay = 10});
  Rng rng(77);
  // Start three epochs back-to-back without waiting for quiescence.
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (NodeId v = 0; v < 8; ++v) {
      for (int i = 0; i < 3; ++i) {
        if (rng.flip(0.5)) {
          sys.insert(v, rng.range(1, 2));
        } else {
          sys.delete_min(v);
        }
      }
      sys.node(v).start_batch();
    }
  }
  sys.net().run_until_idle();
  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Skeap, ElementsSurviveAcrossEpochs) {
  SkeapSystem sys({.num_nodes = 8, .num_priorities = 2, .seed = 8});
  std::vector<Element> inserted;
  for (NodeId v = 0; v < 8; ++v) inserted.push_back(sys.insert(v, 1 + v % 2));
  sys.run_batch();
  sys.run_batch();  // an empty epoch in between

  std::vector<Element> got;
  for (NodeId v = 0; v < 8; ++v) {
    sys.delete_min(v, [&](std::optional<Element> x) {
      ASSERT_TRUE(x.has_value());
      got.push_back(*x);
    });
  }
  sys.run_batch();
  ASSERT_EQ(got.size(), 8u);
  std::sort(got.begin(), got.end());
  std::sort(inserted.begin(), inserted.end());
  EXPECT_EQ(got, inserted);
}

TEST(Skeap, FairnessElementsSpreadOverNodes) {
  SkeapSystem sys({.num_nodes = 32, .num_priorities = 2, .seed = 9});
  for (int i = 0; i < 32 * 20; ++i) {
    sys.insert(static_cast<NodeId>(i % 32), static_cast<Priority>(1 + i % 2));
  }
  sys.run_batch();
  std::size_t total = 0, max_load = 0, nodes_with_elements = 0;
  for (NodeId v = 0; v < 32; ++v) {
    const std::size_t load = sys.node(v).dht().stored_count();
    total += load;
    max_load = std::max(max_load, load);
    nodes_with_elements += (load > 0);
  }
  EXPECT_EQ(total, 32u * 20u);
  EXPECT_GT(nodes_with_elements, 24u);  // almost all nodes hold something
  EXPECT_LT(max_load, 8u * 20u);        // no node hoards
}

TEST(Skeap, RoundsPerBatchGrowLogarithmically) {
  // Theorem 3.2(3): batches are processed in O(log n) rounds w.h.p.
  std::vector<double> avg_rounds;
  for (std::size_t n : {8u, 32u, 128u, 512u}) {
    SkeapSystem sys({.num_nodes = n, .num_priorities = 2, .seed = 10});
    Rng rng(100 + n);
    std::uint64_t total = 0;
    constexpr int kBatches = 5;
    for (int b = 0; b < kBatches; ++b) {
      for (NodeId v = 0; v < n; ++v) {
        if (rng.flip(0.7)) sys.insert(v, rng.range(1, 2));
        if (rng.flip(0.3)) sys.delete_min(v);
      }
      total += sys.run_batch();
    }
    avg_rounds.push_back(static_cast<double>(total) / kBatches);
  }
  // Each 4x growth in n should add roughly a constant number of rounds;
  // certainly the ratio of successive measurements must stay near 1.
  for (std::size_t i = 1; i < avg_rounds.size(); ++i) {
    EXPECT_LT(avg_rounds[i], avg_rounds[i - 1] * 2.0)
        << "rounds not logarithmic: " << avg_rounds[i - 1] << " -> "
        << avg_rounds[i];
  }
  const double log512 = std::log2(512.0);
  EXPECT_LT(avg_rounds.back(), 30.0 * log512);
}

TEST(Skeap, TraceRecordsMatchCallbacks) {
  SkeapSystem sys({.num_nodes = 4, .num_priorities = 2, .seed = 11});
  sys.insert(0, 2);
  sys.insert(1, 1);
  std::map<NodeId, Element> results;
  sys.delete_min(2, [&](std::optional<Element> x) { results[2] = *x; });
  sys.delete_min(3, [&](std::optional<Element> x) { results[3] = *x; });
  sys.run_batch();

  const auto trace = sys.gather_trace();
  ASSERT_EQ(trace.size(), 4u);
  for (const auto& r : trace) {
    EXPECT_TRUE(r.completed);
    if (!r.is_insert) {
      ASSERT_TRUE(results.count(r.node));
      EXPECT_EQ(results[r.node], r.element);
    }
  }
}

}  // namespace
}  // namespace sks::skeap
