// Heap-level churn (Contribution 4): nodes join and leave a live Skeap
// system between batches; semantics and data survive, and the anchor role
// migrates with its interval state when the minimum label changes hands.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/semantics.hpp"
#include "skeap/skeap_system.hpp"

namespace sks::skeap {
namespace {

TEST(SkeapChurn, JoinedNodeParticipatesInHeap) {
  SkeapSystem sys({.num_nodes = 8, .num_priorities = 2, .seed = 31});
  for (NodeId v = 0; v < 8; ++v) sys.insert(v, 1 + v % 2);
  sys.run_batch();

  const NodeId newbie = sys.join_node();
  EXPECT_EQ(sys.active_nodes().size(), 9u);

  // The new node can insert and delete.
  sys.insert(newbie, 1);
  std::optional<Element> got;
  sys.delete_min(newbie, [&](std::optional<Element> x) { got = x; });
  sys.run_batch();
  ASSERT_TRUE(got.has_value());

  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(SkeapChurn, LeaveKeepsElementsRetrievable) {
  SkeapSystem sys({.num_nodes = 8, .num_priorities = 2, .seed = 32});
  std::vector<Element> inserted;
  for (NodeId v = 0; v < 8; ++v) {
    inserted.push_back(sys.insert(v, 1 + v % 2));
  }
  sys.run_batch();

  // Two non-issuing nodes leave; all elements must survive the handover.
  sys.leave_node(3);
  sys.leave_node(6);
  EXPECT_EQ(sys.active_nodes().size(), 6u);

  std::vector<Element> got;
  for (NodeId v : sys.active_nodes()) {
    sys.delete_min(v, [&](std::optional<Element> x) {
      ASSERT_TRUE(x.has_value());
      got.push_back(*x);
    });
  }
  sys.run_batch();
  ASSERT_EQ(got.size(), 6u);  // 6 deleters for 8 elements
  // Same-priority elements come back in position (not id) order, so
  // compare the returned *priority* multiset with the 6 smallest.
  std::vector<Priority> got_prios, want_prios;
  for (const auto& e : got) got_prios.push_back(e.prio);
  std::sort(inserted.begin(), inserted.end());
  for (std::size_t i = 0; i < 6; ++i) want_prios.push_back(inserted[i].prio);
  std::sort(got_prios.begin(), got_prios.end());
  EXPECT_EQ(got_prios, want_prios);

  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(SkeapChurn, AnchorLeaveMigratesIntervalState) {
  SkeapSystem sys({.num_nodes = 8, .num_priorities = 2, .seed = 33});
  for (NodeId v = 0; v < 8; ++v) sys.insert(v, 1);
  sys.run_batch();

  const NodeId old_anchor = sys.anchor();
  sys.leave_node(old_anchor);
  EXPECT_NE(sys.anchor(), old_anchor);
  EXPECT_EQ(sys.node(sys.anchor()).anchor_heap_size(), 8u);

  // Heap still orders correctly after the migration.
  std::vector<Element> got;
  for (NodeId v : sys.active_nodes()) {
    sys.delete_min(v, [&](std::optional<Element> x) {
      if (x) got.push_back(*x);
    });
  }
  sys.run_batch();
  EXPECT_EQ(got.size(), 7u);
  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(SkeapChurn, ChurnStormWithTraffic) {
  SkeapSystem sys({.num_nodes = 10, .num_priorities = 3, .seed = 34});
  Rng rng(77);
  int matched = 0, bottoms = 0;
  for (int step = 0; step < 8; ++step) {
    // Traffic from every active node.
    for (NodeId v : sys.active_nodes()) {
      if (rng.flip(0.7)) sys.insert(v, rng.range(1, 3));
      if (rng.flip(0.4)) {
        sys.delete_min(v, [&](std::optional<Element> x) {
          (x ? matched : bottoms)++;
        });
      }
    }
    sys.run_batch();
    // Churn between batches.
    if (step % 2 == 0) {
      sys.join_node();
    } else if (sys.active_nodes().size() > 4) {
      // Leave a random active non-buffering node.
      auto nodes = std::vector<NodeId>(sys.active_nodes().begin(),
                                       sys.active_nodes().end());
      sys.leave_node(nodes[rng.below(nodes.size())]);
    }
  }
  sys.run_batch();
  EXPECT_GT(matched, 0);
  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

}  // namespace
}  // namespace sks::skeap
