#include "skeap/batch.hpp"

#include <gtest/gtest.h>

namespace sks::skeap {
namespace {

TEST(Batch, PaperExampleFromSection31) {
  // Insert(e1), Insert(e2), DeleteMin(), Insert(e3), DeleteMin() with
  // prio(e1)=prio(e2)=1, prio(e3)=2 is represented by ((2,0),1,(0,1),1).
  Batch b(2);
  EXPECT_EQ(b.record_insert(1), 0u);
  EXPECT_EQ(b.record_insert(1), 0u);
  EXPECT_EQ(b.record_delete(), 0u);
  EXPECT_EQ(b.record_insert(2), 1u);
  EXPECT_EQ(b.record_delete(), 1u);

  ASSERT_EQ(b.length(), 2u);
  EXPECT_EQ(b.entries()[0].inserts[1], 2u);
  EXPECT_EQ(b.entries()[0].inserts[2], 0u);
  EXPECT_EQ(b.entries()[0].deletes, 1u);
  EXPECT_EQ(b.entries()[1].inserts[1], 0u);
  EXPECT_EQ(b.entries()[1].inserts[2], 1u);
  EXPECT_EQ(b.entries()[1].deletes, 1u);
  EXPECT_EQ(to_string(b), "((2,0),1, (0,1),1)");
}

TEST(Batch, LeadingDeleteOpensZeroInsertEntry) {
  Batch b(1);
  EXPECT_EQ(b.record_delete(), 0u);
  EXPECT_EQ(b.record_insert(1), 1u);  // insert after delete: new entry
  ASSERT_EQ(b.length(), 2u);
  EXPECT_EQ(b.entries()[0].inserts[1], 0u);
  EXPECT_EQ(b.entries()[0].deletes, 1u);
  EXPECT_EQ(b.entries()[1].inserts[1], 1u);
  EXPECT_EQ(b.entries()[1].deletes, 0u);
}

TEST(Batch, ConsecutiveDeletesShareAnEntry) {
  Batch b(1);
  b.record_insert(1);
  b.record_delete();
  b.record_delete();
  b.record_delete();
  ASSERT_EQ(b.length(), 1u);
  EXPECT_EQ(b.entries()[0].deletes, 3u);
}

TEST(Batch, CombineEntrywiseWithZeroPadding) {
  Batch b1(2);
  b1.record_insert(1);
  b1.record_delete();
  b1.record_insert(2);  // entry 1

  Batch b2(2);
  b2.record_insert(2);
  b2.record_insert(2);
  b2.record_delete();

  b1.combine(b2);
  ASSERT_EQ(b1.length(), 2u);
  EXPECT_EQ(b1.entries()[0].inserts[1], 1u);
  EXPECT_EQ(b1.entries()[0].inserts[2], 2u);
  EXPECT_EQ(b1.entries()[0].deletes, 2u);
  EXPECT_EQ(b1.entries()[1].inserts[2], 1u);
  EXPECT_EQ(b1.entries()[1].deletes, 0u);
}

TEST(Batch, CombinePadsWhenOtherIsLonger) {
  Batch b1(1);
  b1.record_insert(1);

  Batch b2(1);
  b2.record_delete();
  b2.record_insert(1);
  b2.record_delete();
  ASSERT_EQ(b2.length(), 2u);

  b1.combine(b2);
  ASSERT_EQ(b1.length(), 2u);
  EXPECT_EQ(b1.entries()[0].inserts[1], 1u);
  EXPECT_EQ(b1.entries()[0].deletes, 1u);
  EXPECT_EQ(b1.entries()[1].inserts[1], 1u);
  EXPECT_EQ(b1.entries()[1].deletes, 1u);
}

TEST(Batch, CombineWithEmptyIsIdentity) {
  Batch b1(2);
  b1.record_insert(1);
  b1.record_delete();
  const Batch saved = b1;
  b1.combine(Batch(2));
  EXPECT_EQ(b1, saved);

  Batch empty(2);
  empty.combine(saved);
  EXPECT_EQ(empty, saved);
}

TEST(Batch, TotalOpsCountsEverything) {
  Batch b(3);
  b.record_insert(1);
  b.record_insert(3);
  b.record_delete();
  b.record_insert(2);
  EXPECT_EQ(b.total_ops(), 4u);
}

TEST(Batch, FigureOneExampleBatches) {
  // Figure 1(a): three nodes with batches ((1,0),2), ((1,0),0), ((2,1),1)
  // combine to ((4,1),3).
  auto make = [](std::uint64_t i1, std::uint64_t i2, std::uint64_t d) {
    Batch b(2);
    for (std::uint64_t k = 0; k < i1; ++k) b.record_insert(1);
    for (std::uint64_t k = 0; k < i2; ++k) b.record_insert(2);
    for (std::uint64_t k = 0; k < d; ++k) b.record_delete();
    return b;
  };
  Batch combined = make(1, 0, 2);
  combined.combine(make(1, 0, 0));
  combined.combine(make(2, 1, 1));
  ASSERT_EQ(combined.length(), 1u);
  EXPECT_EQ(combined.entries()[0].inserts[1], 4u);
  EXPECT_EQ(combined.entries()[0].inserts[2], 1u);
  EXPECT_EQ(combined.entries()[0].deletes, 3u);
}

TEST(Batch, SizeBitsGrowsWithContent) {
  Batch small(2);
  small.record_insert(1);
  Batch large(2);
  for (int i = 0; i < 1000; ++i) {
    large.record_insert(1);
    large.record_delete();
  }
  EXPECT_LT(small.size_bits(), large.size_bits());
}

TEST(Batch, OutOfRangePriorityRejected) {
  Batch b(2);
  EXPECT_THROW(b.record_insert(0), CheckFailure);
  EXPECT_THROW(b.record_insert(3), CheckFailure);
}

}  // namespace
}  // namespace sks::skeap
