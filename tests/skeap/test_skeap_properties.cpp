// Property-based Skeap testing: a counting reference model predicts, for
// any combined batch, exactly which priority classes each epoch's deletes
// drain (the anchor's interval arithmetic depends only on the combined
// batch, which is order-independent). Randomized workloads across many
// epochs must match the model op-for-op, under both delivery modes.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "core/semantics.hpp"
#include "skeap/skeap_system.hpp"

namespace sks::skeap {
namespace {

/// Reference model: per-priority occupancy counts plus entrywise batch
/// replay, mirroring AnchorState's math without intervals.
class ReferenceModel {
 public:
  explicit ReferenceModel(std::size_t num_priorities)
      : occupancy_(num_priorities + 1, 0) {}

  struct EpochOutcome {
    std::map<Priority, std::uint64_t> deleted_per_priority;
    std::uint64_t bottoms = 0;
  };

  EpochOutcome apply(const Batch& combined) {
    EpochOutcome out;
    for (const auto& entry : combined.entries()) {
      for (Priority p = 1; p < occupancy_.size(); ++p) {
        occupancy_[p] += entry.inserts[p];
      }
      std::uint64_t remaining = entry.deletes;
      for (Priority p = 1; p < occupancy_.size() && remaining > 0; ++p) {
        const std::uint64_t take = std::min(remaining, occupancy_[p]);
        if (take == 0) continue;
        occupancy_[p] -= take;
        out.deleted_per_priority[p] += take;
        remaining -= take;
      }
      out.bottoms += remaining;
    }
    return out;
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto c : occupancy_) t += c;
    return t;
  }

 private:
  std::vector<std::uint64_t> occupancy_;  // index = priority, 0 unused
};

struct EpochObservation {
  std::map<Priority, std::uint64_t> deleted_per_priority;
  std::uint64_t bottoms = 0;
};

class SkeapDifferential
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, sim::DeliveryMode, std::uint64_t>> {};

TEST_P(SkeapDifferential, MatchesReferenceModelOverManyEpochs) {
  const auto [n, mode, seed] = GetParam();
  constexpr std::size_t kPriorities = 4;
  SkeapSystem sys({.num_nodes = n,
                   .num_priorities = kPriorities,
                   .seed = seed,
                   .mode = mode,
                   .max_delay = 9});
  ReferenceModel model(kPriorities);
  Rng rng(seed * 7 + 3);

  for (int epoch = 0; epoch < 6; ++epoch) {
    Batch combined(kPriorities);
    EpochObservation observed;
    // Build the epoch's workload, mirroring each node's local batch into
    // the model's combined batch.
    std::vector<Batch> local(n, Batch(kPriorities));
    for (NodeId v = 0; v < n; ++v) {
      const int ops = static_cast<int>(rng.range(0, 5));
      for (int i = 0; i < ops; ++i) {
        if (rng.flip(0.55)) {
          const Priority p = rng.range(1, kPriorities);
          sys.insert(v, p);
          local[v].record_insert(p);
        } else {
          sys.delete_min(v, [&observed](std::optional<Element> e) {
            if (e) {
              ++observed.deleted_per_priority[e->prio];
            } else {
              ++observed.bottoms;
            }
          });
          local[v].record_delete();
        }
      }
    }
    for (const auto& b : local) combined.combine(b);
    const auto expected = model.apply(combined);

    sys.run_batch();
    EXPECT_EQ(observed.deleted_per_priority, expected.deleted_per_priority)
        << "epoch " << epoch;
    EXPECT_EQ(observed.bottoms, expected.bottoms) << "epoch " << epoch;

    // The stored element count must track the model's occupancy.
    std::size_t stored = 0;
    for (NodeId v = 0; v < n; ++v) stored += sys.node(v).dht().stored_count();
    EXPECT_EQ(stored, model.total()) << "epoch " << epoch;
  }

  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkeapDifferential,
    ::testing::Combine(::testing::Values(3u, 8u, 21u, 64u),
                       ::testing::Values(sim::DeliveryMode::kSynchronous,
                                         sim::DeliveryMode::kAsynchronous),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) +
             (std::get<1>(param_info.param) ==
                      sim::DeliveryMode::kSynchronous
                  ? "Sync"
                  : "Async") +
             "s" + std::to_string(std::get<2>(param_info.param));
    });

TEST(SkeapProperties, SinglePriorityBehavesAsFifoQueue) {
  // With |P| = 1 Skeap degenerates to the Skueue distributed queue: one
  // node's sequential inserts come back to it in insertion order.
  SkeapSystem sys({.num_nodes = 6, .num_priorities = 1, .seed = 91});
  std::vector<Element> inserted;
  for (int i = 0; i < 5; ++i) inserted.push_back(sys.insert(0, 1));
  sys.run_batch();

  for (int i = 0; i < 5; ++i) sys.delete_min(0);
  sys.run_batch();
  // Positions are assigned in issue order for a single issuer, and
  // deletes drain positions first-to-last: FIFO. Callbacks arrive in
  // network order, so verify via the issue-ordered trace instead.
  std::vector<Element> got;
  for (const auto& r : sys.trace_of(0)) {
    if (!r.is_insert) {
      EXPECT_TRUE(r.completed);
      got.push_back(r.element);
    }
  }
  EXPECT_EQ(got, inserted);
}

TEST(SkeapProperties, EmptyBatchesAreCheapAndHarmless) {
  SkeapSystem sys({.num_nodes = 16, .num_priorities = 2, .seed = 92});
  const auto r1 = sys.run_batch();  // nothing buffered anywhere
  const auto r2 = sys.run_batch();
  EXPECT_GT(r1, 0u);
  EXPECT_LE(r2, r1 + 5);  // no state accumulates across empty epochs
  sys.insert(3, 1);
  std::optional<Element> got;
  sys.delete_min(9, [&](std::optional<Element> e) { got = e; });
  sys.run_batch();
  ASSERT_TRUE(got.has_value());
}

TEST(SkeapProperties, InterleavedBottomsAndMatchesWithinOneEpoch) {
  // A node issuing D I D I D against an empty heap: the first delete gets
  // ⊥ (nothing inserted yet in entry 0), the later ones consume the
  // same-epoch inserts entry by entry.
  SkeapSystem sys({.num_nodes = 4, .num_priorities = 2, .seed = 93});
  std::vector<int> results;  // 1 = matched, 0 = bottom
  auto cb = [&](std::optional<Element> e) { results.push_back(e ? 1 : 0); };
  sys.delete_min(0, cb);
  sys.insert(0, 1);
  sys.delete_min(0, cb);
  sys.insert(0, 2);
  sys.delete_min(0, cb);
  sys.run_batch();
  EXPECT_EQ(results, (std::vector<int>{0, 1, 1}));
  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

}  // namespace
}  // namespace sks::skeap
