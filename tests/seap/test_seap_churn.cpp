// Seap under churn (Contribution 4): join/leave between cycles with the
// anchor's heap-size counter migrating alongside the anchor role.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/semantics.hpp"
#include "seap/seap_system.hpp"

namespace sks::seap {
namespace {

TEST(SeapChurn, JoinedNodeParticipates) {
  SeapSystem sys({.num_nodes = 8, .seed = 61});
  for (NodeId v = 0; v < 8; ++v) sys.insert(v, 100 + v);
  sys.run_cycle();

  const NodeId newbie = sys.join_node();
  sys.insert(newbie, 5);  // the most urgent element now
  std::optional<Element> got;
  sys.delete_min(newbie, [&](std::optional<Element> x) { got = x; });
  sys.run_cycle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->prio, 5u);

  const auto check = core::check_seap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(SeapChurn, LeavePreservesElementsAndHeapSize) {
  SeapSystem sys({.num_nodes = 8, .seed = 62});
  for (NodeId v = 0; v < 8; ++v) sys.insert(v, 1000 + v);
  sys.run_cycle();
  EXPECT_EQ(sys.anchor_node().anchor_heap_size(), 8u);

  sys.leave_node(sys.anchor() == 2 ? NodeId{3} : NodeId{2});
  EXPECT_EQ(sys.anchor_node().anchor_heap_size(), 8u);

  std::vector<Element> got;
  for (NodeId v : sys.active_nodes()) {
    sys.delete_min(v, [&](std::optional<Element> x) {
      if (x) got.push_back(*x);
    });
  }
  sys.run_cycle();
  EXPECT_EQ(got.size(), 7u);  // 7 deleters, 8 elements
  const auto check = core::check_seap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(SeapChurn, AnchorLeaveMigratesHeapSize) {
  SeapSystem sys({.num_nodes = 8, .seed = 63});
  for (NodeId v = 0; v < 8; ++v) sys.insert(v, 77 + v);
  sys.run_cycle();

  const NodeId old_anchor = sys.anchor();
  sys.leave_node(old_anchor);
  EXPECT_NE(sys.anchor(), old_anchor);
  EXPECT_EQ(sys.anchor_node().anchor_heap_size(), 8u);

  int matched = 0;
  for (NodeId v : sys.active_nodes()) {
    sys.delete_min(v, [&](std::optional<Element> x) { matched += !!x; });
  }
  sys.run_cycle();
  EXPECT_EQ(matched, 7);
  const auto check = core::check_seap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(SeapChurn, StormWithTraffic) {
  SeapSystem sys({.num_nodes = 10, .seed = 64});
  Rng rng(65);
  int matched = 0, bottoms = 0;
  for (int step = 0; step < 6; ++step) {
    for (NodeId v : sys.active_nodes()) {
      if (rng.flip(0.7)) sys.insert(v, rng.range(1, ~0ULL >> 20));
      if (rng.flip(0.4)) {
        sys.delete_min(v, [&](std::optional<Element> x) {
          (x ? matched : bottoms)++;
        });
      }
    }
    sys.run_cycle();
    if (step % 2 == 0) {
      sys.join_node();
    } else if (sys.active_nodes().size() > 4) {
      std::vector<NodeId> nodes(sys.active_nodes().begin(),
                                sys.active_nodes().end());
      sys.leave_node(nodes[rng.below(nodes.size())]);
    }
  }
  sys.run_cycle();
  EXPECT_GT(matched, 0);
  const auto check = core::check_seap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

}  // namespace
}  // namespace sks::seap
