#include "seap/seap_system.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "core/semantics.hpp"

namespace sks::seap {
namespace {

TEST(Seap, SingleInsertDelete) {
  SeapSystem sys({.num_nodes = 4, .seed = 1});
  const Element e = sys.insert(0, 123456789);
  std::vector<std::optional<Element>> got;
  sys.delete_min(2, [&](std::optional<Element> x) { got.push_back(x); });
  sys.run_cycle();
  ASSERT_EQ(got.size(), 1u);
  ASSERT_TRUE(got[0].has_value());
  EXPECT_EQ(*got[0], e);
}

TEST(Seap, DeletesReturnTheSmallestElements) {
  SeapSystem sys({.num_nodes = 8, .seed = 2});
  Rng rng(22);
  std::vector<Element> inserted;
  for (int i = 0; i < 40; ++i) {
    inserted.push_back(
        sys.insert(static_cast<NodeId>(rng.below(8)), rng.range(1, 1u << 30)));
  }
  sys.run_cycle();

  std::vector<Element> got;
  for (int i = 0; i < 10; ++i) {
    sys.delete_min(static_cast<NodeId>(i % 8),
                   [&](std::optional<Element> x) {
                     ASSERT_TRUE(x.has_value());
                     got.push_back(*x);
                   });
  }
  sys.run_cycle();
  ASSERT_EQ(got.size(), 10u);
  std::sort(inserted.begin(), inserted.end());
  std::sort(got.begin(), got.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)],
                                         inserted[static_cast<std::size_t>(i)]);
}

TEST(Seap, EmptyHeapReturnsBottom) {
  SeapSystem sys({.num_nodes = 4, .seed = 3});
  int bottoms = 0;
  sys.delete_min(1, [&](std::optional<Element> x) { bottoms += !x; });
  sys.delete_min(3, [&](std::optional<Element> x) { bottoms += !x; });
  sys.run_cycle();
  EXPECT_EQ(bottoms, 2);
  const auto check = core::check_seap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Seap, MoreDeletesThanElements) {
  SeapSystem sys({.num_nodes = 4, .seed = 4});
  sys.insert(0, 5);
  sys.insert(1, 7);
  int matched = 0, bottoms = 0;
  for (int i = 0; i < 6; ++i) {
    sys.delete_min(static_cast<NodeId>(i % 4), [&](std::optional<Element> x) {
      (x ? matched : bottoms)++;
    });
  }
  sys.run_cycle();
  EXPECT_EQ(matched, 2);
  EXPECT_EQ(bottoms, 4);
  const auto check = core::check_seap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Seap, InsertsAndDeletesInTheSameCycle) {
  // Inserts of a cycle are serialized before its deletes (Lemma 5.2), so
  // same-cycle deletes see same-cycle inserts.
  SeapSystem sys({.num_nodes = 8, .seed = 5});
  for (NodeId v = 0; v < 8; ++v) sys.insert(v, 100 + v);
  int matched = 0;
  for (NodeId v = 0; v < 4; ++v) {
    sys.delete_min(v, [&](std::optional<Element> x) { matched += !!x; });
  }
  sys.run_cycle();
  EXPECT_EQ(matched, 4);
  const auto check = core::check_seap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Seap, ManyCyclesAreSerializableAndHeapConsistent) {
  SeapSystem sys({.num_nodes = 16, .seed = 6});
  Rng rng(66);
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (NodeId v = 0; v < 16; ++v) {
      for (int i = 0; i < 3; ++i) {
        if (rng.flip(0.6)) {
          sys.insert(v, rng.range(1, ~0ULL >> 20));
        } else {
          sys.delete_min(v);
        }
      }
    }
    sys.run_cycle();
  }
  const auto check = core::check_seap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Seap, SerializableUnderAsynchrony) {
  SeapSystem sys({.num_nodes = 12,
                  .seed = 7,
                  .mode = sim::DeliveryMode::kAsynchronous,
                  .max_delay = 10});
  Rng rng(77);
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (NodeId v = 0; v < 12; ++v) {
      const int ops = static_cast<int>(rng.range(0, 4));
      for (int i = 0; i < ops; ++i) {
        if (rng.flip(0.55)) {
          sys.insert(v, rng.range(1, ~0ULL >> 24));
        } else {
          sys.delete_min(v);
        }
      }
    }
    sys.run_cycle();
  }
  const auto check = core::check_seap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Seap, ElementsSurviveAcrossCycles) {
  SeapSystem sys({.num_nodes = 8, .seed = 8});
  std::vector<Element> inserted;
  for (NodeId v = 0; v < 8; ++v) {
    inserted.push_back(sys.insert(v, 1000 + v));
  }
  sys.run_cycle();
  sys.run_cycle();  // idle cycle

  std::vector<Element> got;
  for (NodeId v = 0; v < 8; ++v) {
    sys.delete_min(v, [&](std::optional<Element> x) {
      ASSERT_TRUE(x.has_value());
      got.push_back(*x);
    });
  }
  sys.run_cycle();
  std::sort(got.begin(), got.end());
  std::sort(inserted.begin(), inserted.end());
  EXPECT_EQ(got, inserted);
}

TEST(Seap, ArbitraryPriorityRangeWithDuplicates) {
  SeapSystem sys({.num_nodes = 8, .seed = 9});
  // Many duplicates across the full 64-bit-ish priority space.
  std::vector<Element> inserted;
  for (int i = 0; i < 60; ++i) {
    inserted.push_back(
        sys.insert(static_cast<NodeId>(i % 8),
                   (static_cast<Priority>(i) % 5) * 1'000'000'007ULL));
  }
  sys.run_cycle();
  std::vector<Element> got;
  for (int i = 0; i < 60; ++i) {
    sys.delete_min(static_cast<NodeId>(i % 8),
                   [&](std::optional<Element> x) {
                     ASSERT_TRUE(x.has_value());
                     got.push_back(*x);
                   });
  }
  sys.run_cycle();
  std::sort(got.begin(), got.end());
  std::sort(inserted.begin(), inserted.end());
  EXPECT_EQ(got, inserted);
  const auto check = core::check_seap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Seap, AnchorTracksHeapSize) {
  SeapSystem sys({.num_nodes = 8, .seed = 10});
  for (NodeId v = 0; v < 8; ++v) sys.insert(v, v + 1);
  sys.run_cycle();
  EXPECT_EQ(sys.anchor_node().anchor_heap_size(), 8u);
  for (NodeId v = 0; v < 3; ++v) sys.delete_min(v);
  sys.run_cycle();
  EXPECT_EQ(sys.anchor_node().anchor_heap_size(), 5u);
}

TEST(Seap, RoundsPerCycleGrowLogarithmically) {
  // Theorem 5.1(3): both phases finish in O(log n) rounds w.h.p.
  std::vector<double> rounds;
  for (std::size_t n : {32u, 128u, 512u}) {
    SeapSystem sys({.num_nodes = n, .seed = 11});
    Rng rng(100 + n);
    // Preload so KSelect has real work.
    for (NodeId v = 0; v < n; ++v) {
      for (int i = 0; i < 5; ++i) sys.insert(v, rng.range(1, ~0ULL >> 16));
    }
    sys.run_cycle();
    std::uint64_t total = 0;
    constexpr int kCycles = 3;
    for (int c = 0; c < kCycles; ++c) {
      for (NodeId v = 0; v < n; ++v) {
        if (rng.flip(0.5)) sys.insert(v, rng.range(1, ~0ULL >> 16));
        if (rng.flip(0.5)) sys.delete_min(v);
      }
      total += sys.run_cycle();
    }
    rounds.push_back(static_cast<double>(total) / kCycles);
  }
  for (std::size_t i = 1; i < rounds.size(); ++i) {
    EXPECT_LT(rounds[i], rounds[i - 1] * 2.0)
        << "rounds grow too fast: " << rounds[i - 1] << " -> " << rounds[i];
  }
}

TEST(Seap, FairnessElementsSpreadOverNodes) {
  SeapSystem sys({.num_nodes = 32, .seed = 12});
  for (int i = 0; i < 32 * 20; ++i) {
    sys.insert(static_cast<NodeId>(i % 32),
               static_cast<Priority>(i * 977 + 1));
  }
  sys.run_cycle();
  std::size_t total = 0, max_load = 0;
  for (NodeId v = 0; v < 32; ++v) {
    const std::size_t load = sys.node(v).dht().stored_count();
    total += load;
    max_load = std::max(max_load, load);
  }
  EXPECT_EQ(total, 32u * 20u);
  EXPECT_LT(max_load, 8u * 20u);
}

}  // namespace
}  // namespace sks::seap
