// The sequentially consistent Seap variant (Conclusion): per cycle each
// node submits only its leading insert run plus the adjacent delete run,
// preserving local order at the cost of deferring the rest of the buffer.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/semantics.hpp"
#include "seap/seap_system.hpp"

namespace sks::seap {
namespace {

SeapSystem::Options sc_options(std::size_t n, std::uint64_t seed) {
  SeapSystem::Options opts;
  opts.num_nodes = n;
  opts.seed = seed;
  opts.sequentially_consistent = true;
  return opts;
}

TEST(SeapSC, PrefixRuleDefersAlternatingOps) {
  SeapSystem sys(sc_options(4, 71));
  // Node 0 issues I D I D: one cycle may take only (I, D); the second
  // (I, D) must wait for the next cycle.
  sys.insert(0, 10);
  sys.delete_min(0);
  sys.insert(0, 20);
  sys.delete_min(0);
  sys.run_cycle();
  EXPECT_EQ(sys.total_buffered(), 2u);
  sys.run_cycle();
  EXPECT_EQ(sys.total_buffered(), 0u);

  const auto check = core::check_seap_sc_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(SeapSC, DeleteFirstBufferTakesOnlyDeleteRun) {
  SeapSystem sys(sc_options(4, 72));
  sys.insert(1, 5);
  sys.run_cycle();

  // Node 0's buffer starts with a delete, then an insert: only the delete
  // may go into this cycle (inserts serialize before deletes within one).
  sys.delete_min(0, [](std::optional<Element> e) {
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->prio, 5u);
  });
  sys.insert(0, 1);
  sys.run_cycle();
  EXPECT_EQ(sys.total_buffered(), 1u);  // the insert waits
  sys.run_cycle();
  EXPECT_EQ(sys.total_buffered(), 0u);

  const auto check = core::check_seap_sc_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(SeapSC, LocalOrderHoldsUnderMixedLoad) {
  SeapSystem sys(sc_options(12, 73));
  Rng rng(74);
  // Issue random mixed workloads; drain over enough cycles.
  for (NodeId v = 0; v < 12; ++v) {
    for (int i = 0; i < 6; ++i) {
      if (rng.flip(0.55)) {
        sys.insert(v, rng.range(1, ~0ULL >> 20));
      } else {
        sys.delete_min(v);
      }
    }
  }
  int guard = 0;
  do {
    sys.run_cycle();
    ASSERT_LT(++guard, 50);
  } while (sys.total_buffered() > 0);

  const auto check = core::check_seap_sc_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(SeapSC, LocalOrderHoldsUnderAsynchrony) {
  auto opts = sc_options(8, 75);
  opts.mode = sim::DeliveryMode::kAsynchronous;
  opts.max_delay = 10;
  SeapSystem sys(opts);
  Rng rng(76);
  for (int round = 0; round < 3; ++round) {
    for (NodeId v = 0; v < 8; ++v) {
      for (int i = 0; i < 4; ++i) {
        if (rng.flip(0.5)) {
          sys.insert(v, rng.range(1, ~0ULL >> 20));
        } else {
          sys.delete_min(v);
        }
      }
    }
    int guard = 0;
    do {
      sys.run_cycle();
      ASSERT_LT(++guard, 50);
    } while (sys.total_buffered() > 0);
  }
  const auto check = core::check_seap_sc_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(SeapSC, DefaultSeapViolatesLocalConsistencyEventually) {
  // Control experiment: the *default* Seap (whole buffer per cycle) can
  // serialize a node's delete-before-insert pair as insert-first, which
  // the SC checker must catch — demonstrating the checker's teeth and the
  // semantic difference the paper trades away.
  SeapSystem sys({.num_nodes = 4, .seed = 77});
  sys.insert(1, 5);
  sys.run_cycle();
  // Node 0 issues Delete then Insert; default Seap puts both in one cycle
  // where inserts are serialized first -> local order inverted.
  sys.delete_min(0);
  sys.insert(0, 99);
  sys.run_cycle();

  const auto trace = sys.gather_trace();
  EXPECT_TRUE(core::check_seap_trace(trace).ok);        // serializable: yes
  EXPECT_FALSE(core::check_seap_sc_trace(trace).ok);    // seq cons: no
}

TEST(SeapSC, ThroughputCostOfAlternatingWorkload) {
  // The paper's warning: alternating workloads drain one (I, D) pair per
  // node per cycle under the prefix rule.
  SeapSystem sys(sc_options(4, 78));
  constexpr int kPairs = 5;
  for (NodeId v = 0; v < 4; ++v) {
    for (int i = 0; i < kPairs; ++i) {
      sys.insert(v, 100 + static_cast<Priority>(i));
      sys.delete_min(v);
    }
  }
  int cycles = 0;
  do {
    sys.run_cycle();
    ++cycles;
    ASSERT_LT(cycles, 50);
  } while (sys.total_buffered() > 0);
  EXPECT_EQ(cycles, kPairs);  // exactly one alternation per cycle

  const auto check = core::check_seap_sc_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

}  // namespace
}  // namespace sks::seap
