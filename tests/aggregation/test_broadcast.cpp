// Broadcaster coverage (KSelect's instruction channel) plus a mixed-mode
// soak: many pipelined aggregation epochs under asynchronous delivery.
#include "aggregation/broadcast.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/hash.hpp"
#include "overlay/topology.hpp"
#include "sim/network.hpp"

namespace sks::agg {
namespace {

struct Announcement {
  static constexpr const char* kName = "test.announce";
  std::uint64_t value = 0;
  std::uint64_t size_bits() const { return 32; }

  void encode(sks::wire::WireWriter& w) const { w.leb(value); }
  static Announcement decode(sks::wire::WireReader& r) {
    return Announcement{r.leb()};
  }
};

class BcastNode : public overlay::OverlayNode {
 public:
  explicit BcastNode(overlay::RouteParams params)
      : OverlayNode(params),
        bcast(*this, [this](std::uint64_t epoch, const Announcement& a) {
          received.emplace_back(epoch, a.value);
        }) {}

  Broadcaster<Announcement> bcast;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> received;
};

struct Fixture {
  explicit Fixture(std::size_t n, std::uint64_t seed = 3,
                   sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous) {
    sim::NetworkConfig cfg;
    cfg.mode = mode;
    cfg.seed = seed;
    net = std::make_unique<sim::Network>(cfg);
    HashFunction h(seed);
    auto links = overlay::build_topology(n, h);
    const auto params = overlay::RouteParams::for_system(n);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = net->add_node(std::make_unique<BcastNode>(params));
      auto& node = net->node_as<BcastNode>(id);
      node.install_links(links[i]);
      if (node.hosts_anchor()) anchor = id;
    }
    this->n = n;
  }
  BcastNode& node(NodeId v) { return net->node_as<BcastNode>(v); }
  std::unique_ptr<sim::Network> net;
  NodeId anchor = kNoNode;
  std::size_t n = 0;
};

TEST(Broadcaster, ReachesEveryHostExactlyOnce) {
  Fixture f(50);
  f.node(f.anchor).bcast.broadcast(7, Announcement{123});
  f.net->run_until_idle();
  for (NodeId v = 0; v < 50; ++v) {
    ASSERT_EQ(f.node(v).received.size(), 1u) << "node " << v;
    EXPECT_EQ(f.node(v).received[0], (std::pair<std::uint64_t,
                                                std::uint64_t>{7, 123}));
  }
}

TEST(Broadcaster, SingleNodeDeliversToItself) {
  Fixture f(1);
  f.node(0).bcast.broadcast(0, Announcement{9});
  f.net->run_until_idle();
  ASSERT_EQ(f.node(0).received.size(), 1u);
}

TEST(Broadcaster, ManyEpochsUnderAsynchronyAllArrive) {
  Fixture f(24, 11, sim::DeliveryMode::kAsynchronous);
  constexpr std::uint64_t kEpochs = 20;
  for (std::uint64_t e = 0; e < kEpochs; ++e) {
    f.node(f.anchor).bcast.broadcast(e, Announcement{e * e});
  }
  f.net->run_until_idle();
  for (NodeId v = 0; v < 24; ++v) {
    auto got = f.node(v).received;
    ASSERT_EQ(got.size(), kEpochs) << "node " << v;
    std::map<std::uint64_t, std::uint64_t> by_epoch(got.begin(), got.end());
    for (std::uint64_t e = 0; e < kEpochs; ++e) {
      EXPECT_EQ(by_epoch.at(e), e * e);
    }
  }
}

TEST(Broadcaster, NonAnchorCannotBroadcast) {
  Fixture f(8);
  const NodeId not_anchor = f.anchor == 0 ? 1 : 0;
  EXPECT_THROW(f.node(not_anchor).bcast.broadcast(0, Announcement{1}),
               CheckFailure);
}

TEST(Broadcaster, CompletesInLogarithmicRounds) {
  for (std::size_t n : {16u, 256u}) {
    Fixture f(n, 13);
    f.node(f.anchor).bcast.broadcast(0, Announcement{1});
    const auto rounds = f.net->run_until_idle();
    EXPECT_LT(rounds, 10 * 10 + 10u) << "n=" << n;  // ~tree height
  }
}

}  // namespace
}  // namespace sks::agg
