#include "aggregation/aggregator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <numeric>
#include <vector>

#include "common/hash.hpp"
#include "overlay/topology.hpp"
#include "sim/network.hpp"

namespace sks::agg {
namespace {

/// Up value: a sum of per-host counts.
struct CountUp {
  static constexpr const char* kName = "agg.count_up";
  std::uint64_t count = 0;
  std::uint64_t size_bits() const { return 32; }

  void encode(sks::wire::WireWriter& w) const { w.leb(count); }
  static CountUp decode(sks::wire::WireReader& r) { return CountUp{r.leb()}; }
};

/// Down value: an interval [lo, hi] decomposed by child counts.
struct IntervalDown {
  static constexpr const char* kName = "agg.interval_down";
  std::uint64_t lo = 1, hi = 0;
  std::uint64_t size_bits() const { return 64; }
  std::uint64_t cardinality() const { return lo > hi ? 0 : hi - lo + 1; }

  void encode(sks::wire::WireWriter& w) const {
    w.leb(lo);
    w.leb(hi);
  }

  static IntervalDown decode(sks::wire::WireReader& r) {
    IntervalDown d;
    d.lo = r.leb();
    d.hi = r.leb();
    return d;
  }
};

class CountNode : public overlay::OverlayNode {
 public:
  explicit CountNode(overlay::RouteParams params)
      : OverlayNode(params),
        agg(*this,
            // combine: add counts
            [](CountUp& a, const CountUp& b) { a.count += b.count; },
            // split: carve the interval by child counts, in child order
            [](const IntervalDown& d, const std::vector<CountUp>& children) {
              std::vector<IntervalDown> parts;
              std::uint64_t next = d.lo;
              for (const auto& c : children) {
                IntervalDown part;
                part.lo = next;
                part.hi = next + c.count - 1;
                next += c.count;
                parts.push_back(part);
              }
              return parts;
            },
            // root
            [this](std::uint64_t epoch, const CountUp& total) {
              root_totals.emplace_back(epoch, total.count);
              IntervalDown all;
              all.lo = 1;
              all.hi = total.count;
              agg.distribute(epoch, all);
            },
            // deliver
            [this](std::uint64_t epoch, IntervalDown d) {
              delivered.emplace_back(epoch, d);
            }) {}

  Aggregator<CountUp, IntervalDown> agg;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> root_totals;
  std::vector<std::pair<std::uint64_t, IntervalDown>> delivered;
};

struct Fixture {
  explicit Fixture(std::size_t num_nodes, std::uint64_t seed = 3,
                   sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous) {
    sim::NetworkConfig cfg;
    cfg.mode = mode;
    cfg.seed = seed;
    net = std::make_unique<sim::Network>(cfg);
    HashFunction h(seed);
    auto links = overlay::build_topology(num_nodes, h);
    const auto params = overlay::RouteParams::for_system(num_nodes);
    for (std::size_t i = 0; i < num_nodes; ++i) {
      const NodeId id = net->add_node(std::make_unique<CountNode>(params));
      net->node_as<CountNode>(id).install_links(links[i]);
    }
    this->n = num_nodes;
  }

  CountNode& node(NodeId id) { return net->node_as<CountNode>(id); }
  CountNode* anchor() {
    for (NodeId v = 0; v < n; ++v) {
      if (node(v).hosts_anchor()) return &node(v);
    }
    return nullptr;
  }

  std::unique_ptr<sim::Network> net;
  std::size_t n = 0;
};

TEST(Aggregator, SumsAllContributionsAtTheRoot) {
  Fixture f(20);
  for (NodeId v = 0; v < 20; ++v) {
    f.node(v).agg.contribute(0, CountUp{v + 1});  // 1+2+...+20 = 210
  }
  f.net->run_until_idle();
  auto* anchor = f.anchor();
  ASSERT_NE(anchor, nullptr);
  ASSERT_EQ(anchor->root_totals.size(), 1u);
  EXPECT_EQ(anchor->root_totals[0].second, 210u);
}

TEST(Aggregator, DecompositionAssignsDisjointCoveringIntervals) {
  Fixture f(20);
  for (NodeId v = 0; v < 20; ++v) f.node(v).agg.contribute(0, CountUp{3});
  f.net->run_until_idle();

  // Every host received exactly one interval of cardinality 3; together
  // they tile [1, 60].
  std::vector<bool> covered(61, false);
  for (NodeId v = 0; v < 20; ++v) {
    ASSERT_EQ(f.node(v).delivered.size(), 1u);
    const auto& [epoch, d] = f.node(v).delivered[0];
    EXPECT_EQ(epoch, 0u);
    EXPECT_EQ(d.cardinality(), 3u);
    for (std::uint64_t p = d.lo; p <= d.hi; ++p) {
      ASSERT_LE(p, 60u);
      EXPECT_FALSE(covered[p]) << "position " << p << " double-assigned";
      covered[p] = true;
    }
  }
  for (std::uint64_t p = 1; p <= 60; ++p) EXPECT_TRUE(covered[p]);
}

TEST(Aggregator, ZeroContributionsYieldEmptyIntervals) {
  Fixture f(7);
  for (NodeId v = 0; v < 7; ++v) f.node(v).agg.contribute(4, CountUp{0});
  f.net->run_until_idle();
  for (NodeId v = 0; v < 7; ++v) {
    ASSERT_EQ(f.node(v).delivered.size(), 1u);
    EXPECT_EQ(f.node(v).delivered[0].second.cardinality(), 0u);
  }
}

TEST(Aggregator, EpochsDoNotMixUnderAsynchrony) {
  Fixture f(16, /*seed=*/9, sim::DeliveryMode::kAsynchronous);
  // Launch three epochs back to back without waiting.
  for (std::uint64_t e = 0; e < 3; ++e) {
    for (NodeId v = 0; v < 16; ++v) {
      f.node(v).agg.contribute(e, CountUp{e + 1});
    }
  }
  f.net->run_until_idle();

  auto* anchor = f.anchor();
  ASSERT_NE(anchor, nullptr);
  ASSERT_EQ(anchor->root_totals.size(), 3u);
  std::map<std::uint64_t, std::uint64_t> by_epoch(anchor->root_totals.begin(),
                                                  anchor->root_totals.end());
  EXPECT_EQ(by_epoch[0], 16u);
  EXPECT_EQ(by_epoch[1], 32u);
  EXPECT_EQ(by_epoch[2], 48u);

  for (NodeId v = 0; v < 16; ++v) {
    ASSERT_EQ(f.node(v).delivered.size(), 3u);
    EXPECT_EQ(f.node(v).agg.open_sessions(), 0u);
  }
}

TEST(Aggregator, WorksOnSingleNode) {
  Fixture f(1);
  f.node(0).agg.contribute(0, CountUp{5});
  f.net->run_until_idle();
  ASSERT_EQ(f.node(0).root_totals.size(), 1u);
  EXPECT_EQ(f.node(0).root_totals[0].second, 5u);
  ASSERT_EQ(f.node(0).delivered.size(), 1u);
  EXPECT_EQ(f.node(0).delivered[0].second.cardinality(), 5u);
}

TEST(Aggregator, CompletesInLogarithmicRounds) {
  for (std::size_t n : {16u, 64u, 256u}) {
    Fixture f(n, /*seed=*/13);
    for (NodeId v = 0; v < n; ++v) f.node(v).agg.contribute(0, CountUp{1});
    const auto rounds = f.net->run_until_idle();
    const double logn = std::log2(static_cast<double>(n));
    EXPECT_LT(static_cast<double>(rounds), 10.0 * logn + 10.0) << "n=" << n;
  }
}

}  // namespace
}  // namespace sks::agg
