#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "baselines/centralized.hpp"
#include "baselines/gossip_select.hpp"
#include "baselines/naive_kselect.hpp"
#include "baselines/nobatch.hpp"
#include "common/rng.hpp"
#include "kselect/kselect_system.hpp"
#include "overlay/topology.hpp"

namespace sks::baselines {
namespace {

// ---------------------------------------------------------------------------
// CentralizedSystem
// ---------------------------------------------------------------------------

TEST(Centralized, InsertDeleteRoundTrip) {
  CentralizedSystem sys({.num_nodes = 8, .seed = 1});
  const Element e = sys.insert(3, 42);
  sys.run();
  std::optional<Element> got;
  sys.delete_min(5, [&](std::optional<Element> x) { got = x; });
  sys.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, e);
}

TEST(Centralized, ReturnsElementsInPriorityOrder) {
  CentralizedSystem sys({.num_nodes = 4, .seed = 2});
  sys.insert(0, 30);
  sys.insert(1, 10);
  sys.insert(2, 20);
  sys.run();
  std::vector<Priority> prios;
  for (int i = 0; i < 3; ++i) {
    sys.delete_min(0, [&](std::optional<Element> x) {
      ASSERT_TRUE(x.has_value());
      prios.push_back(x->prio);
    });
    sys.run();
  }
  EXPECT_EQ(prios, (std::vector<Priority>{10, 20, 30}));
}

TEST(Centralized, EmptyHeapReturnsBottom) {
  CentralizedSystem sys({.num_nodes = 4, .seed = 3});
  bool bottom = false;
  sys.delete_min(2, [&](std::optional<Element> x) { bottom = !x; });
  sys.run();
  EXPECT_TRUE(bottom);
}

TEST(Centralized, CoordinatorCongestionGrowsWithN) {
  // The bottleneck E10 quantifies: all ops of one round land on node 0.
  std::vector<std::uint64_t> congestion;
  for (std::size_t n : {8u, 32u, 128u}) {
    CentralizedSystem sys({.num_nodes = n, .seed = 4});
    (void)sys.net().metrics().take();
    for (NodeId v = 0; v < n; ++v) sys.insert(v, v + 1);
    sys.run();
    congestion.push_back(sys.net().metrics().take().max_congestion);
  }
  EXPECT_GE(congestion[1], congestion[0] * 3);
  EXPECT_GE(congestion[2], congestion[1] * 3);
}

// ---------------------------------------------------------------------------
// NoBatchSystem
// ---------------------------------------------------------------------------

TEST(NoBatch, InsertDeleteRoundTrip) {
  NoBatchSystem sys({.num_nodes = 8, .num_priorities = 3, .seed = 5});
  const Element e = sys.insert(2, 2);
  sys.run();
  std::optional<Element> got;
  sys.delete_min(6, [&](std::optional<Element> x) { got = x; });
  sys.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, e);
}

TEST(NoBatch, PrioritiesComeBackAscendingWhenSequential) {
  NoBatchSystem sys({.num_nodes = 8, .num_priorities = 3, .seed = 6});
  sys.insert(0, 3);
  sys.insert(1, 1);
  sys.insert(2, 2);
  sys.run();
  std::vector<Priority> prios;
  for (int i = 0; i < 3; ++i) {
    sys.delete_min(0, [&](std::optional<Element> x) {
      ASSERT_TRUE(x.has_value());
      prios.push_back(x->prio);
    });
    sys.run();
  }
  EXPECT_EQ(prios, (std::vector<Priority>{1, 2, 3}));
}

TEST(NoBatch, BottomOnEmpty) {
  NoBatchSystem sys({.num_nodes = 4, .num_priorities = 2, .seed = 7});
  bool bottom = false;
  sys.delete_min(1, [&](std::optional<Element> x) { bottom = !x; });
  sys.run();
  EXPECT_TRUE(bottom);
}

TEST(NoBatch, AnchorCongestionGrowsWithLoad) {
  // Without batching the anchor handles every op individually.
  std::vector<std::uint64_t> congestion;
  for (std::size_t n : {8u, 32u, 128u}) {
    NoBatchSystem sys({.num_nodes = n, .num_priorities = 2, .seed = 8});
    (void)sys.net().metrics().take();
    for (NodeId v = 0; v < n; ++v) sys.insert(v, 1 + v % 2);
    sys.run();
    congestion.push_back(sys.net().metrics().take().max_congestion);
  }
  EXPECT_GT(congestion[2], congestion[0] * 2);
}

// ---------------------------------------------------------------------------
// NaiveKSelect
// ---------------------------------------------------------------------------

class NaiveNode : public overlay::OverlayNode {
 public:
  NaiveNode(overlay::RouteParams params, NaiveKSelectComponent::Config cfg)
      : OverlayNode(params),
        naive(*this, cfg, [this] { return elements; },
              [this](std::uint64_t, std::optional<Element> r) {
                results.push_back(r);
              }) {}
  std::vector<Element> elements;
  NaiveKSelectComponent naive;
  std::vector<std::optional<Element>> results;
};

struct NaiveFixture {
  explicit NaiveFixture(std::size_t num_nodes, std::uint64_t seed = 9) {
    sim::NetworkConfig cfg;
    cfg.seed = seed;
    net = std::make_unique<sim::Network>(cfg);
    HashFunction h(seed);
    auto links = overlay::build_topology(num_nodes, h);
    const auto params = overlay::RouteParams::for_system(num_nodes);
    NaiveKSelectComponent::Config ncfg;
    ncfg.max_priority = 1u << 20;
    ncfg.max_id = 1u << 20;
    for (std::size_t i = 0; i < num_nodes; ++i) {
      const NodeId id = net->add_node(std::make_unique<NaiveNode>(params, ncfg));
      auto& node = net->node_as<NaiveNode>(id);
      node.install_links(links[i]);
      if (node.hosts_anchor()) anchor = id;
    }
    this->n = num_nodes;
  }

  NaiveNode& node(NodeId v) { return net->node_as<NaiveNode>(v); }

  std::unique_ptr<sim::Network> net;
  NodeId anchor = kNoNode;
  std::size_t n = 0;
};

TEST(NaiveKSelect, ExactSelection) {
  NaiveFixture f(16);
  Rng rng(10);
  std::vector<Element> all;
  for (std::uint64_t i = 1; i <= 300; ++i) {
    Element e{rng.range(1, 1u << 20), i};
    all.push_back(e);
    f.node(static_cast<NodeId>(rng.below(16))).elements.push_back(e);
  }
  std::sort(all.begin(), all.end());
  for (std::uint64_t k : {1ULL, 150ULL, 300ULL}) {
    f.node(f.anchor).naive.start(k, k);
    f.net->run_until_idle();
    const auto& results = f.node(f.anchor).results;
    ASSERT_FALSE(results.empty());
    ASSERT_TRUE(results.back().has_value()) << "k=" << k;
    EXPECT_EQ(*results.back(), all[k - 1]) << "k=" << k;
  }
}

TEST(NaiveKSelect, OutOfRangeK) {
  NaiveFixture f(8);
  f.node(2).elements.push_back(Element{5, 1});
  f.node(f.anchor).naive.start(1, 2);  // k=2 > m=1
  f.net->run_until_idle();
  const auto& results = f.node(f.anchor).results;
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].has_value());
}

TEST(NaiveKSelect, ProbeCountScalesWithDomainBits) {
  // The whole point of the comparison: probes ~ log |P| per selection.
  NaiveFixture f(8);
  Rng rng(11);
  for (std::uint64_t i = 1; i <= 100; ++i) {
    f.node(static_cast<NodeId>(rng.below(8)))
        .elements.push_back(Element{rng.range(1, 1u << 20), i});
  }
  f.node(f.anchor).naive.start(7, 50);
  f.net->run_until_idle();
  const auto probes = f.node(f.anchor).naive.probes_used(7);
  EXPECT_GT(probes, 20u);   // ~ log2(2^20 * 2^20) probes
  EXPECT_LT(probes, 100u);
}

// ---------------------------------------------------------------------------
// GossipSelect
// ---------------------------------------------------------------------------

TEST(GossipSelect, ExactOnOneValuePerNode) {
  const std::size_t n = 64;
  GossipSystem sys({.num_nodes = n, .seed = 12});
  Rng rng(13);
  std::vector<Element> values;
  for (std::uint64_t i = 1; i <= n; ++i) {
    values.push_back(Element{rng.range(1, 1u << 30), i});
  }
  sys.seed_values(values);
  std::sort(values.begin(), values.end());
  for (std::uint64_t k : {1ULL, 17ULL, 32ULL, 64ULL}) {
    GossipSystem fresh({.num_nodes = n, .seed = 12 + k});
    std::vector<Element> vals2;
    Rng rng2(13);
    for (std::uint64_t i = 1; i <= n; ++i) {
      vals2.push_back(Element{rng2.range(1, 1u << 30), i});
    }
    fresh.seed_values(vals2);
    const auto out = fresh.select(k);
    ASSERT_TRUE(out.result.has_value()) << "k=" << k;
    EXPECT_EQ(*out.result, values[k - 1]) << "k=" << k;
  }
}

TEST(GossipSelect, OutOfRangeK) {
  GossipSystem sys({.num_nodes = 16, .seed = 14});
  std::vector<Element> values;
  for (std::uint64_t i = 1; i <= 16; ++i) values.push_back(Element{i, i});
  sys.seed_values(values);
  EXPECT_FALSE(sys.select(0).result.has_value());
  GossipSystem sys2({.num_nodes = 16, .seed = 15});
  sys2.seed_values(values);
  EXPECT_FALSE(sys2.select(17).result.has_value());
}

}  // namespace
}  // namespace sks::baselines
