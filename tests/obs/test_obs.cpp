// Tests for the continuous-telemetry layer (src/obs/): time-series
// rings, the sampler's delta/cadence semantics, the OpenMetrics and
// ndjson exporters, the timeline reader, and the phase profiler's
// no-perturbation contract.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/openmetrics.hpp"
#include "obs/profile.hpp"
#include "obs/sampler.hpp"
#include "obs/series.hpp"
#include "obs/timeline.hpp"
#include "sim/dispatch.hpp"
#include "sim/network.hpp"
#include "skeap/skeap_system.hpp"

namespace sks {
namespace {

struct ObsPing final : sim::Action<ObsPing> {
  static constexpr const char* kActionName = "obs.ping";
  std::uint64_t hops = 0;
  std::uint64_t size_bits() const override { return 24; }
  void encode(wire::WireWriter& w) const override { w.leb(hops); }
  static sim::Owned<ObsPing> decode(wire::WireReader& r) {
    auto p = sim::make_payload<ObsPing>();
    p->hops = r.leb();
    return p;
  }
};

/// Bounces a token to the next node for a fixed number of hops, so a
/// run generates a known message count.
class RelayNode : public sim::DispatchingNode {
 public:
  RelayNode() {
    on<ObsPing>([this](NodeId, sim::Owned<ObsPing> p) {
      if (p->hops == 0) return;
      auto next = sim::make_payload<ObsPing>();
      next->hops = p->hops - 1;
      send((id() + 1) % static_cast<NodeId>(net().size()), std::move(next));
    });
  }

  void kick(std::uint64_t hops) {
    auto p = sim::make_payload<ObsPing>();
    p->hops = hops;
    send((id() + 1) % static_cast<NodeId>(net().size()), std::move(p));
  }
};

sim::Network make_relay_net(std::size_t n) {
  sim::Network net;
  for (std::size_t i = 0; i < n; ++i) {
    net.add_node(std::make_unique<RelayNode>());
  }
  return net;
}

TEST(TimeSeries, DropsOldestBeyondCapacity) {
  obs::TimeSeries s(4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    s.push(i, static_cast<double>(i * 10));
  }
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.capacity(), 4u);
  EXPECT_EQ(s[0].t, 3u);  // 1 and 2 dropped
  EXPECT_EQ(s[3].t, 6u);
  EXPECT_DOUBLE_EQ(s.back().value, 60.0);
  EXPECT_DOUBLE_EQ(s.min(), 30.0);
  EXPECT_DOUBLE_EQ(s.max(), 60.0);
  EXPECT_DOUBLE_EQ(s.sum(), 30.0 + 40.0 + 50.0 + 60.0);
}

TEST(Sampler, PerSampleDeltasAndCumulativeTotals) {
  sim::Network net = make_relay_net(4);
  net.node_as<RelayNode>(0).kick(10);
  obs::Sampler sampler(net);
  net.run_until_idle();
  sampler.sample(/*epoch=*/1);
  const double first =
      sampler.series(obs::SeriesId::kMessages).back().value;
  // The kick delivery plus its 10 relay hops.
  EXPECT_DOUBLE_EQ(first, 11.0);

  net.node_as<RelayNode>(0).kick(5);
  net.run_until_idle();
  sampler.sample(/*epoch=*/2);
  EXPECT_DOUBLE_EQ(sampler.series(obs::SeriesId::kMessages).back().value,
                   6.0);  // the kick itself + 5 hops
  EXPECT_EQ(sampler.cumulative().messages, 17u);
  EXPECT_EQ(sampler.cumulative().samples, 2u);
  EXPECT_GT(sampler.cumulative().rounds, 0u);
}

TEST(Sampler, SurvivesMetricsWindowReset) {
  sim::Network net = make_relay_net(4);
  obs::Sampler sampler(net);
  net.node_as<RelayNode>(0).kick(8);
  net.run_until_idle();
  net.metrics().take();  // bench-style window reset: counters restart at 0
  net.node_as<RelayNode>(0).kick(3);
  net.run_until_idle();
  sampler.sample();
  // Post-reset the current total (4 = kick + 3 hops) IS the delta; the
  // pre-reset 9 messages are unobservable but must not underflow.
  EXPECT_DOUBLE_EQ(sampler.series(obs::SeriesId::kMessages).back().value,
                   4.0);
}

TEST(Sampler, RoundObserverCadence) {
  sim::Network net = make_relay_net(2);
  obs::Sampler::Options opts;
  opts.every_rounds = 4;
  obs::Sampler sampler(net, opts);
  for (int i = 0; i < 10; ++i) net.step();
  EXPECT_EQ(sampler.series(obs::SeriesId::kMessages).size(), 2u);  // r4, r8
  sampler.detach();
  for (int i = 0; i < 10; ++i) net.step();
  EXPECT_EQ(sampler.series(obs::SeriesId::kMessages).size(), 2u);
}

TEST(Sampler, NdjsonStreamMatchesTimelineReader) {
  std::ostringstream stream;
  sim::Network net = make_relay_net(4);
  obs::Sampler sampler(net, {}, &stream);
  net.node_as<RelayNode>(0).kick(7);
  net.run_until_idle();
  sampler.sample(/*epoch=*/3);
  net.node_as<RelayNode>(0).kick(2);
  net.run_until_idle();
  sampler.sample(/*epoch=*/4);

  std::istringstream in(stream.str());
  const std::vector<obs::TimelineRow> rows = obs::read_timeline(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].epoch, 3u);
  EXPECT_EQ(rows[1].epoch, 4u);
  EXPECT_DOUBLE_EQ(
      rows[0].values[static_cast<std::size_t>(obs::SeriesId::kMessages)],
      8.0);
  EXPECT_DOUBLE_EQ(
      rows[1].values[static_cast<std::size_t>(obs::SeriesId::kMessages)],
      3.0);
  EXPECT_EQ(rows[1].t, net.round());

  // The renderer shows every row plus a header.
  std::ostringstream table;
  obs::render_timeline(table, rows);
  EXPECT_NE(table.str().find("epoch"), std::string::npos);
  EXPECT_NE(table.str().find("messages"), std::string::npos);
}

TEST(Timeline, SkipsMalformedLines) {
  std::istringstream in(
      "{\"t\":5,\"epoch\":1,\"rounds\":5,\"wall_ms\":1.5,\"messages\":2}\n"
      "not json\n"
      "{\"t\":9,\"epo");  // truncated mid-write
  const std::vector<obs::TimelineRow> rows = obs::read_timeline(in);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].t, 5u);
  EXPECT_DOUBLE_EQ(
      rows[0].values[static_cast<std::size_t>(obs::SeriesId::kMessages)],
      2.0);
}

TEST(OpenMetrics, ExpositionFormat) {
  sim::Network net = make_relay_net(4);
  obs::Sampler::Options opts;
  opts.label = "unit \"test\"";
  obs::Sampler sampler(net, opts);
  net.node_as<RelayNode>(0).kick(6);
  net.run_until_idle();
  sampler.sample();

  std::ostringstream os;
  obs::write_openmetrics(os, sampler);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE sks_messages counter"), std::string::npos);
  EXPECT_NE(text.find("sks_messages_total{run=\"unit \\\"test\\\"\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sks_rounds_per_sec gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sks_pool_allocated_blocks gauge"),
            std::string::npos);
  // The exposition must end with the OpenMetrics terminator.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(Series, OverloadSeriesAreRegistered) {
  EXPECT_STREQ(obs::series_name(obs::SeriesId::kWindowStalls),
               "window_stalls");
  EXPECT_STREQ(obs::series_name(obs::SeriesId::kSheds), "sheds");
  EXPECT_STREQ(obs::series_name(obs::SeriesId::kQueueDepth), "queue_depth");
  EXPECT_STREQ(obs::series_name(obs::SeriesId::kBatchSize), "batch_size");
  EXPECT_TRUE(obs::series_is_counter(obs::SeriesId::kWindowStalls));
  EXPECT_TRUE(obs::series_is_counter(obs::SeriesId::kSheds));
  EXPECT_FALSE(obs::series_is_counter(obs::SeriesId::kQueueDepth));
  EXPECT_FALSE(obs::series_is_counter(obs::SeriesId::kBatchSize));
}

TEST(Sampler, OverloadCountersAndProbeGauges) {
  sim::NetworkConfig cfg;
  cfg.reliable.enabled = true;
  cfg.reliable.max_in_flight = 1;
  sim::Network net(cfg);
  net.add_node(std::make_unique<RelayNode>());
  net.add_node(std::make_unique<RelayNode>());

  obs::Sampler sampler(net);
  // Queue depth and batch limit live above the network; harnesses inject
  // them as probes read at each sample.
  std::uint64_t depth = 42, batch = 7;
  sampler.set_queue_depth_probe([&] { return depth; });
  sampler.set_batch_size_probe([&] { return batch; });

  // 5 sends into a window of 1: four of them stall.
  for (int i = 0; i < 5; ++i) {
    net.send(0, 1, sim::make_payload<ObsPing>());
  }
  net.run_until_idle();
  net.metrics().record_shed();  // as a protocol node would on admission
  sampler.sample(/*epoch=*/1);

  auto latest = [&](obs::SeriesId id) {
    return sampler.series(id).back().value;
  };
  EXPECT_DOUBLE_EQ(latest(obs::SeriesId::kWindowStalls), 4.0);
  EXPECT_DOUBLE_EQ(latest(obs::SeriesId::kSheds), 1.0);
  EXPECT_DOUBLE_EQ(latest(obs::SeriesId::kQueueDepth), 42.0);
  EXPECT_DOUBLE_EQ(latest(obs::SeriesId::kBatchSize), 7.0);
  EXPECT_EQ(sampler.cumulative().window_stalls, 4u);
  EXPECT_EQ(sampler.cumulative().sheds, 1u);

  // Counters are per-sample deltas; gauges track the probes.
  depth = 3;
  batch = 14;
  sampler.sample(/*epoch=*/2);
  EXPECT_DOUBLE_EQ(latest(obs::SeriesId::kWindowStalls), 0.0);
  EXPECT_DOUBLE_EQ(latest(obs::SeriesId::kSheds), 0.0);
  EXPECT_DOUBLE_EQ(latest(obs::SeriesId::kQueueDepth), 3.0);
  EXPECT_DOUBLE_EQ(latest(obs::SeriesId::kBatchSize), 14.0);

  // All four series reach the OpenMetrics exposition and the timeline.
  std::ostringstream os;
  obs::write_openmetrics(os, sampler);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE sks_window_stalls counter"),
            std::string::npos);
  EXPECT_NE(text.find("sks_window_stalls_total{run=\"run\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sks_sheds counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sks_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("sks_queue_depth{run=\"run\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sks_batch_size gauge"), std::string::npos);

  std::ostringstream table;
  std::vector<obs::TimelineRow> rows;
  obs::TimelineRow row;
  row.values[static_cast<std::size_t>(obs::SeriesId::kWindowStalls)] = 4.0;
  rows.push_back(row);
  obs::render_timeline(table, rows);
  EXPECT_NE(table.str().find("stall"), std::string::npos);
  EXPECT_NE(table.str().find("shed"), std::string::npos);
  EXPECT_NE(table.str().find("qdepth"), std::string::npos);
  EXPECT_NE(table.str().find("batch"), std::string::npos);
}

TEST(PhaseProfiler, AttributesWallTimeWithoutPerturbingTrace) {
  sim::Network net = make_relay_net(2);
  trace::Tracer& tr = net.tracer();
  EXPECT_FALSE(tr.enabled());
  {
    obs::PhaseProfiler prof(tr);
    // Attaching flips enabled() so guarded call sites reach the hooks...
    EXPECT_TRUE(tr.enabled());
    tr.phase_begin(0, "unit.phase", 1);
    tr.phase_end(0, "unit.phase", 1);
    tr.phase_begin(1, "unit.phase", 1);
    tr.phase_end(1, "unit.phase", 1);
    const auto totals = prof.totals();
    ASSERT_EQ(totals.count("unit.phase"), 1u);
    EXPECT_EQ(totals.at("unit.phase").begins, 2u);
    EXPECT_EQ(totals.at("unit.phase").ends, 2u);
    // ...but records nothing: the trace stays empty (recording is off).
    EXPECT_EQ(tr.num_events(), 0u);
  }
  // Destruction detaches.
  EXPECT_FALSE(tr.enabled());
}

TEST(PhaseProfiler, ObservesSkeapPhasesInARealRun) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = 16;
  skeap::SkeapSystem sys(opts);
  obs::PhaseProfiler prof(sys.net().tracer());
  for (NodeId v = 0; v < 16; ++v) sys.insert(v, 1 + (v % 2));
  sys.run_batch();
  const auto totals = prof.totals();
  EXPECT_FALSE(totals.empty());
  std::uint64_t begins = 0;
  for (const auto& [name, t] : totals) {
    begins += t.begins;
    EXPECT_LE(t.ends, t.begins);
  }
  EXPECT_GT(begins, 0u);
  // No trace was recorded (tracing stayed disabled).
  EXPECT_EQ(sys.net().tracer().num_events(), 0u);
}

TEST(ClusterEpochObserver, FiresPerEpoch) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = 8;
  skeap::SkeapSystem sys(opts);
  std::vector<std::uint64_t> epochs;
  sys.cluster().set_epoch_observer(
      [&](const runtime::EpochStats& st) { epochs.push_back(st.epoch); });
  for (NodeId v = 0; v < 8; ++v) sys.insert(v, 1 + (v % 2));
  sys.run_batch();
  sys.run_batch();
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0] + 1, epochs[1]);
}

TEST(PoolDirectory, TracksAllocations) {
  const sim::PoolStats before = sim::PoolDirectory::instance().totals();
  {
    auto p = sim::make_payload<ObsPing>();
    (void)p;
  }
  const sim::PoolStats after = sim::PoolDirectory::instance().totals();
  EXPECT_GE(after.allocated, before.allocated);
  EXPECT_GT(sim::PoolDirectory::instance().size(), 0u);
}

TEST(WorkerProfiles, ScalingRunReportsBusyAndWait) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = 64;
  opts.threads = 4;
  opts.shards = 8;
  skeap::SkeapSystem sys(opts);
  for (NodeId v = 0; v < 64; ++v) sys.insert(v, 1 + (v % 2));
  sys.run_batch();
  const auto profiles = sys.net().worker_profiles();
  ASSERT_EQ(profiles.size(), 4u);  // calling thread + 3 workers
  std::uint64_t jobs = 0, busy = 0;
  for (const auto& p : profiles) {
    jobs += p.jobs;
    busy += p.busy_ns;
  }
  EXPECT_GT(jobs, 0u);
  EXPECT_GT(busy, 0u);
  // Per-shard busy attribution rode along in the metrics shards.
  const auto shard_busy = sys.net().metrics().shard_busy_ns();
  ASSERT_EQ(shard_busy.size(), 8u);
  std::uint64_t total_shard_busy = 0;
  for (std::uint64_t ns : shard_busy) total_shard_busy += ns;
  EXPECT_GT(total_shard_busy, 0u);
}

}  // namespace
}  // namespace sks
