#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace sks {
namespace {

TEST(Bits, BitsForMax) {
  EXPECT_EQ(bits_for_max(0), 1u);
  EXPECT_EQ(bits_for_max(1), 1u);
  EXPECT_EQ(bits_for_max(2), 2u);
  EXPECT_EQ(bits_for_max(3), 2u);
  EXPECT_EQ(bits_for_max(4), 3u);
  EXPECT_EQ(bits_for_max(255), 8u);
  EXPECT_EQ(bits_for_max(256), 9u);
  EXPECT_EQ(bits_for_max(~0ULL), 64u);
}

TEST(Bits, Items) {
  EXPECT_EQ(bits_for_items(0, 10), 0u);
  EXPECT_EQ(bits_for_items(5, 10), 50u);
}

TEST(Bits, WidthsForSystem) {
  const auto w = Widths::for_system(1024, 1u << 20, 1u << 30);
  EXPECT_EQ(w.node_id_bits, 11u);
  EXPECT_EQ(w.priority_bits, 21u);
  EXPECT_EQ(w.position_bits, 31u);
}

TEST(Bits, GrowsLogarithmically) {
  EXPECT_EQ(bits_for_max(1ULL << 10), 11u);
  EXPECT_EQ(bits_for_max(1ULL << 20), 21u);
  EXPECT_EQ(bits_for_max(1ULL << 40), 41u);
}

}  // namespace
}  // namespace sks
