#include "common/interval.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sks {
namespace {

TEST(Interval, EmptyAndCardinality) {
  Interval e = Interval::empty_interval();
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.cardinality(), 0u);

  Interval one{5, 5};
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one.cardinality(), 1u);

  Interval many{3, 10};
  EXPECT_EQ(many.cardinality(), 8u);
}

TEST(Interval, Contains) {
  Interval iv{4, 7};
  EXPECT_FALSE(iv.contains(3));
  EXPECT_TRUE(iv.contains(4));
  EXPECT_TRUE(iv.contains(7));
  EXPECT_FALSE(iv.contains(8));
  EXPECT_FALSE(Interval::empty_interval().contains(1));
}

TEST(Interval, TakeFrontExact) {
  Interval iv{1, 10};
  Interval f = iv.take_front(4);
  EXPECT_EQ(f, (Interval{1, 4}));
  EXPECT_EQ(iv, (Interval{5, 10}));
}

TEST(Interval, TakeFrontMoreThanAvailable) {
  Interval iv{1, 3};
  Interval f = iv.take_front(10);
  EXPECT_EQ(f, (Interval{1, 3}));
  EXPECT_TRUE(iv.empty());
}

TEST(Interval, TakeFrontZero) {
  Interval iv{2, 5};
  Interval f = iv.take_front(0);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(iv, (Interval{2, 5}));
}

TEST(SpanList, PushCoalescesAdjacentSamePriority) {
  SpanList sl;
  sl.push_back(1, {1, 3});
  sl.push_back(1, {4, 6});
  EXPECT_EQ(sl.spans().size(), 1u);
  EXPECT_EQ(sl.total(), 6u);
  sl.push_back(2, {7, 7});  // different priority: new span
  EXPECT_EQ(sl.spans().size(), 2u);
  sl.push_back(1, {10, 12});  // gap: new span even with same priority
  EXPECT_EQ(sl.spans().size(), 3u);
}

TEST(SpanList, TakeFrontAcrossSpans) {
  SpanList sl;
  sl.push_back(1, {1, 3});   // 3 positions
  sl.push_back(2, {1, 4});   // 4 positions
  SpanList front = sl.take_front(5);
  EXPECT_EQ(front.total(), 5u);
  ASSERT_EQ(front.spans().size(), 2u);
  EXPECT_EQ(front.spans()[0], (PrioritySpan{1, {1, 3}}));
  EXPECT_EQ(front.spans()[1], (PrioritySpan{2, {1, 2}}));
  EXPECT_EQ(sl.total(), 2u);
  ASSERT_EQ(sl.spans().size(), 1u);
  EXPECT_EQ(sl.spans()[0], (PrioritySpan{2, {3, 4}}));
}

TEST(SpanList, TakeFrontEverything) {
  SpanList sl;
  sl.push_back(3, {10, 12});
  SpanList front = sl.take_front(99);
  EXPECT_EQ(front.total(), 3u);
  EXPECT_TRUE(sl.empty());
}

TEST(DeleteAssignment, BottomsAfterSpans) {
  DeleteAssignment da;
  da.spans.push_back(1, {1, 2});
  da.bottoms = 3;
  EXPECT_EQ(da.total(), 5u);

  DeleteAssignment first = da.take_front(3);
  EXPECT_EQ(first.spans.total(), 2u);
  EXPECT_EQ(first.bottoms, 1u);
  EXPECT_EQ(da.spans.total(), 0u);
  EXPECT_EQ(da.bottoms, 2u);

  DeleteAssignment second = da.take_front(5);
  EXPECT_EQ(second.spans.total(), 0u);
  EXPECT_EQ(second.bottoms, 2u);
  EXPECT_EQ(da.total(), 0u);
}

TEST(InsertAssignment, PerPriorityCarving) {
  InsertAssignment ia(2);
  ia.at(1) = Interval{1, 10};
  ia.at(2) = Interval{5, 8};
  EXPECT_EQ(ia.total(), 14u);

  // counts indexed by priority (index 0 unused).
  InsertAssignment front = ia.take_front({0, 3, 2});
  EXPECT_EQ(front.at(1), (Interval{1, 3}));
  EXPECT_EQ(front.at(2), (Interval{5, 6}));
  EXPECT_EQ(ia.at(1), (Interval{4, 10}));
  EXPECT_EQ(ia.at(2), (Interval{7, 8}));
}

TEST(InsertAssignment, UnderflowIsAnError) {
  InsertAssignment ia(1);
  ia.at(1) = Interval{1, 2};
  EXPECT_THROW(ia.take_front({0, 5}), CheckFailure);
}

// Property: carving a random SpanList into random chunks preserves the
// total and the exact sequence of positions.
TEST(SpanList, PropertyCarvingPreservesSequence) {
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    SpanList sl;
    std::vector<std::pair<Priority, Position>> flat;
    Position next = 1;
    const int nspans = static_cast<int>(rng.range(1, 6));
    for (int s = 0; s < nspans; ++s) {
      const Priority p = rng.range(1, 4);
      const Position len = rng.range(1, 8);
      next += rng.range(0, 2);  // occasional gaps
      Interval iv{next, next + len - 1};
      // Flatten only if this doesn't coalesce ambiguity — record positions.
      for (Position pos = iv.lo; pos <= iv.hi; ++pos) flat.emplace_back(p, pos);
      sl.push_back(p, iv);
      next = iv.hi + 1;
    }

    std::vector<std::pair<Priority, Position>> carved;
    while (sl.total() > 0) {
      SpanList chunk = sl.take_front(rng.range(1, 5));
      for (const auto& sp : chunk.spans()) {
        for (Position pos = sp.iv.lo; pos <= sp.iv.hi; ++pos) {
          carved.emplace_back(sp.prio, pos);
        }
      }
    }
    EXPECT_EQ(carved, flat) << "trial " << trial;
  }
}

}  // namespace
}  // namespace sks
