// Client-side semantics oracle shared by the chaos and recovery tests.
//
// The trace checkers in core/semantics.hpp validate a protocol run from
// the *inside* (per-node op records, position assignments, phase order).
// This oracle validates it from the *outside*: it records exactly what a
// client would observe — acknowledged inserts and deleteMin results, per
// epoch — and replays the epochs to verify element conservation:
//
//   * every non-⊥ delete returns an element that was acknowledged and is
//     still live (a lost insert surfaces as a phantom-free ⊥ shortfall, a
//     duplicated delivery as a second delete of the same element),
//   * ⊥ results are legal only when an epoch issues more deletes than
//     there are live elements,
//   * in kExact mode (Seap: a cycle's deletes receive the globally m
//     smallest elements) each epoch's returned multiset must equal the
//     smallest elements available,
//   * in kPriority mode (Skeap: deletes return most-prioritized elements,
//     ids within a priority are arbitrary) the returned *priorities* must
//     equal the smallest priorities available.
//
// "Available" to an epoch's deletes means the live set plus that same
// epoch's inserts — both Skeap batches and Seap cycles apply inserts
// before (or interleaved with) the deletes they are combined with. The
// per-epoch minimality checks are exact for workloads whose outcome does
// not depend on the batch-entry order (all of ours; the entry-order-
// sensitive corner cases are the trace checkers' job).
//
// Under crash recovery, acknowledged == committed: only inserts whose
// epoch committed may be fed to note_insert. A victim's operations from
// the epoch that was rolled back were never acknowledged and must not be
// recorded — that is the recovery contract the oracle verifies.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sks::test {

class HistoryOracle {
 public:
  enum class Mode {
    kExact,     ///< deletes return the exact smallest elements (Seap)
    kPriority,  ///< deletes return the smallest priorities (Skeap)
  };

  explicit HistoryOracle(Mode mode) : mode_(mode) {}

  /// Record an insert acknowledged as part of `epoch`.
  void note_insert(Element e, std::uint64_t epoch) {
    epochs_[epoch].inserts.push_back(e);
  }

  /// Record the result of a deleteMin issued in `epoch` (⊥ = nullopt).
  void note_delete_result(std::uint64_t epoch, std::optional<Element> r) {
    epochs_[epoch].deletes.push_back(r);
  }

  /// Record that admission control shed a previously acknowledged insert
  /// during `epoch` (the eviction case of AdmitResult). The shed is
  /// client-visible: the oracle removes the element from the live set
  /// before the epoch's deletes and fails if any later delete returns
  /// it. Inserts rejected outright (accepted=false) are simply never
  /// note_insert-ed — there is nothing to retract.
  void note_shed(Element e, std::uint64_t epoch) {
    epochs_[epoch].sheds.push_back(e);
  }

  struct Verdict {
    bool ok = true;
    std::string error;
  };

  /// Replay all recorded epochs in order and verify conservation and
  /// per-epoch minimality. Idempotent; call as often as convenient.
  Verdict check() const {
    Verdict v;
    std::vector<Element> live;
    std::vector<Element> shed;  ///< everything admission control rejected
    for (const auto& [epoch, ops] : epochs_) {
      live.insert(live.end(), ops.inserts.begin(), ops.inserts.end());
      std::sort(live.begin(), live.end());
      // Sheds retract acknowledged-but-unbatched inserts: the element
      // must still be live (a shed of a never-inserted or already-deleted
      // element is an accounting bug in the run, not overload).
      for (const Element& s : ops.sheds) {
        auto it = std::lower_bound(live.begin(), live.end(), s);
        if (it == live.end() || !(*it == s)) {
          return fail("epoch ", epoch, ": shed element {prio=", s.prio,
                      ", id=", s.id,
                      "} was not live (never acknowledged, shed twice, or "
                      "already deleted)");
        }
        live.erase(it);
        shed.insert(std::lower_bound(shed.begin(), shed.end(), s), s);
      }
      std::vector<Element> returned;
      std::size_t bottoms = 0;
      for (const auto& r : ops.deletes) {
        if (!r.has_value()) {
          ++bottoms;
          continue;
        }
        auto it = std::lower_bound(live.begin(), live.end(), *r);
        if (it == live.end() || !(*it == *r)) {
          if (std::binary_search(shed.begin(), shed.end(), *r)) {
            return fail("epoch ", epoch,
                        ": delete returned element {prio=", r->prio,
                        ", id=", r->id,
                        "} that admission control shed — a rejected "
                        "insert leaked back into the heap");
          }
          return fail("epoch ", epoch, ": delete returned element {prio=",
                      r->prio, ", id=", r->id,
                      "} that is not live (phantom, duplicate delivery, or "
                      "an unacknowledged insert)");
        }
        returned.push_back(*r);
        live.erase(it);
      }
      // ⊥ only when the epoch's deletes outnumber what was available.
      const std::size_t available = live.size() + returned.size();
      const std::size_t expect_bottoms =
          ops.deletes.size() > available ? ops.deletes.size() - available : 0;
      if (bottoms != expect_bottoms) {
        return fail("epoch ", epoch, ": ", bottoms, " ⊥ results but ",
                    expect_bottoms, " expected (", ops.deletes.size(),
                    " deletes, ", available,
                    " elements available — a ⊥ with live elements is a "
                    "lost element)");
      }
      if (!returned.empty()) {
        // The returned multiset must be minimal among what was available:
        // compare against the smallest |returned| of live ∪ returned.
        std::vector<Element> avail = live;
        avail.insert(avail.end(), returned.begin(), returned.end());
        std::sort(avail.begin(), avail.end());
        std::sort(returned.begin(), returned.end());
        for (std::size_t i = 0; i < returned.size(); ++i) {
          const bool match = mode_ == Mode::kExact
                                 ? returned[i] == avail[i]
                                 : returned[i].prio == avail[i].prio;
          if (!match) {
            return fail("epoch ", epoch, ": delete #", i, " returned ",
                        mode_ == Mode::kExact ? "element" : "priority",
                        " {prio=", returned[i].prio, ", id=",
                        returned[i].id, "} but {prio=", avail[i].prio,
                        ", id=", avail[i].id, "} was available");
          }
        }
      }
    }
    return v;
  }

  /// Acknowledged elements never returned by a delete, after replaying
  /// everything — the survivors a drain loop should still be able to pull.
  std::size_t live_after_replay() const {
    std::size_t inserts = 0, hits = 0;
    for (const auto& [epoch, ops] : epochs_) {
      inserts += ops.inserts.size() - ops.sheds.size();
      for (const auto& r : ops.deletes) hits += r.has_value() ? 1u : 0u;
    }
    return inserts - hits;
  }

 private:
  struct EpochOps {
    std::vector<Element> inserts;
    std::vector<Element> sheds;
    std::vector<std::optional<Element>> deletes;
  };

  template <class... Parts>
  static Verdict fail(Parts&&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    return Verdict{false, os.str()};
  }

  Mode mode_;
  std::map<std::uint64_t, EpochOps> epochs_;  ///< replayed in epoch order
};

}  // namespace sks::test
