#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace sks {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = r.range(5, 8);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 8u);
    saw_lo |= (x == 5);
    saw_hi |= (x == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(13);
  std::map<std::uint64_t, int> counts;
  constexpr int kTrials = 60000;
  for (int i = 0; i < kTrials; ++i) ++counts[r.below(6)];
  for (std::uint64_t v = 0; v < 6; ++v) {
    EXPECT_GT(counts[v], kTrials / 6 - 800) << "value " << v;
    EXPECT_LT(counts[v], kTrials / 6 + 800) << "value " << v;
  }
}

TEST(Rng, FlipExtremes) {
  Rng r(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.flip(0.0));
    EXPECT_TRUE(r.flip(1.0));
  }
}

TEST(Rng, FlipProbability) {
  Rng r(19);
  int heads = 0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) heads += r.flip(0.25);
  EXPECT_NEAR(static_cast<double>(heads) / kTrials, 0.25, 0.02);
}

TEST(Rng, ForkIndependent) {
  Rng parent(23);
  Rng child = parent.fork();
  // Child stream should not just replay the parent stream.
  Rng parent2(23);
  (void)parent2.next();  // same advancement as fork consumed
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child.next() == parent2.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowOfOneIsZero) {
  Rng r(29);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.below(1), 0u);
}

}  // namespace
}  // namespace sks
