#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sks {
namespace {

TEST(Hash, DeterministicAcrossInstances) {
  HashFunction h1(99), h2(99);
  for (std::uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(h1.point(x), h2.point(x));
    EXPECT_EQ(h1.point(x, x + 1), h2.point(x, x + 1));
  }
}

TEST(Hash, SeedChangesOutputs) {
  HashFunction h1(1), h2(2);
  int same = 0;
  for (std::uint64_t x = 0; x < 100; ++x) same += (h1.point(x) == h2.point(x));
  EXPECT_LT(same, 2);
}

TEST(Hash, SymmetricPairHash) {
  HashFunction h(5);
  for (std::uint64_t i = 0; i < 30; ++i) {
    for (std::uint64_t j = 0; j < 30; ++j) {
      EXPECT_EQ(h.symmetric_point(i, j), h.symmetric_point(j, i));
    }
  }
}

TEST(Hash, NoCollisionsOnSmallDomain) {
  HashFunction h(7);
  std::set<Point> seen;
  for (std::uint64_t x = 0; x < 100000; ++x) seen.insert(h.point(x));
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(Hash, RoughlyUniformOverCycle) {
  HashFunction h(11);
  // Bucket the top 3 bits; each of the 8 buckets should get ~1/8.
  std::vector<int> buckets(8, 0);
  constexpr int kTrials = 80000;
  for (std::uint64_t x = 0; x < kTrials; ++x) ++buckets[h.point(x) >> 61];
  for (int b = 0; b < 8; ++b) {
    EXPECT_GT(buckets[static_cast<std::size_t>(b)], kTrials / 8 - 900);
    EXPECT_LT(buckets[static_cast<std::size_t>(b)], kTrials / 8 + 900);
  }
}

TEST(Hash, MultiWordDiffersFromSingleWord) {
  HashFunction h(13);
  EXPECT_NE(h.point(1), h.point(1, 0));
  EXPECT_NE(h.point(0, 1), h.point(1, 0));
}

}  // namespace
}  // namespace sks
