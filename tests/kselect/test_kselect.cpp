#include "kselect/kselect_system.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace sks::kselect {
namespace {

std::vector<CandidateKey> make_elements(std::size_t m, std::uint64_t seed,
                                        std::uint64_t max_priority) {
  Rng rng(seed);
  std::vector<CandidateKey> out;
  out.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    out.push_back(CandidateKey{rng.range(1, max_priority), i + 1});
  }
  return out;
}

CandidateKey expected_kth(std::vector<CandidateKey> elements,
                          std::uint64_t k) {
  std::sort(elements.begin(), elements.end());
  return elements[k - 1];
}

TEST(KSelect, FindsTheMinimum) {
  KSelectSystem sys({.num_nodes = 16, .seed = 1});
  auto elements = make_elements(200, 11, 1000);
  sys.seed_elements(elements);
  const auto out = sys.select(1);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(*out.result, expected_kth(elements, 1));
}

TEST(KSelect, FindsTheMaximum) {
  KSelectSystem sys({.num_nodes = 16, .seed = 2});
  auto elements = make_elements(200, 12, 1000);
  sys.seed_elements(elements);
  const auto out = sys.select(200);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(*out.result, expected_kth(elements, 200));
}

TEST(KSelect, FindsTheMedian) {
  KSelectSystem sys({.num_nodes = 32, .seed = 3});
  auto elements = make_elements(999, 13, 1 << 20);
  sys.seed_elements(elements);
  const auto out = sys.select(500);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(*out.result, expected_kth(elements, 500));
}

TEST(KSelect, OutOfRangeKReturnsNothing) {
  KSelectSystem sys({.num_nodes = 8, .seed = 4});
  auto elements = make_elements(50, 14, 100);
  sys.seed_elements(elements);
  EXPECT_FALSE(sys.select(0).result.has_value());
  EXPECT_FALSE(sys.select(51).result.has_value());
  // In-range still works afterwards.
  const auto out = sys.select(25);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(*out.result, expected_kth(elements, 25));
}

TEST(KSelect, EmptyElementSet) {
  KSelectSystem sys({.num_nodes = 8, .seed = 5});
  EXPECT_FALSE(sys.select(1).result.has_value());
}

TEST(KSelect, DuplicatePrioritiesAreTotallyOrderedById) {
  KSelectSystem sys({.num_nodes = 16, .seed = 6});
  // All elements share one priority; ranks are decided by element id.
  std::vector<CandidateKey> elements;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    elements.push_back(CandidateKey{42, i});
  }
  sys.seed_elements(elements);
  for (std::uint64_t k : {1ULL, 37ULL, 100ULL}) {
    const auto out = sys.select(k);
    ASSERT_TRUE(out.result.has_value()) << "k=" << k;
    EXPECT_EQ(*out.result, (CandidateKey{42, k})) << "k=" << k;
  }
}

class KSelectSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(KSelectSweep, ExactForRandomKs) {
  const auto [n, m] = GetParam();
  KSelectSystem sys({.num_nodes = n, .seed = 7 + n + m});
  auto elements = make_elements(m, 100 + m, 1u << 16);
  sys.seed_elements(elements);
  Rng rng(999);
  for (int trial = 0; trial < 5; ++trial) {
    const std::uint64_t k = rng.range(1, m);
    const auto out = sys.select(k);
    ASSERT_TRUE(out.result.has_value()) << "n=" << n << " m=" << m << " k=" << k;
    EXPECT_EQ(*out.result, expected_kth(elements, k))
        << "n=" << n << " m=" << m << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, KSelectSweep,
    ::testing::Values(std::make_tuple(4u, 30u), std::make_tuple(8u, 200u),
                      std::make_tuple(16u, 64u), std::make_tuple(32u, 2000u),
                      std::make_tuple(64u, 5000u),
                      std::make_tuple(128u, 1000u)));

TEST(KSelect, WorksUnderAsynchrony) {
  KSelectSystem sys({.num_nodes = 24,
                     .seed = 8,
                     .mode = sim::DeliveryMode::kAsynchronous,
                     .max_delay = 12});
  auto elements = make_elements(500, 21, 1u << 18);
  sys.seed_elements(elements);
  Rng rng(22);
  for (int trial = 0; trial < 5; ++trial) {
    const std::uint64_t k = rng.range(1, 500);
    const auto out = sys.select(k);
    ASSERT_TRUE(out.result.has_value()) << "k=" << k;
    EXPECT_EQ(*out.result, expected_kth(elements, k)) << "k=" << k;
  }
}

TEST(KSelect, CandidateSetShrinksPerPhase) {
  // Lemma 4.4 / 4.7: after phase 1, N = O(n^{3/2} log n); after phase 2,
  // N = O(sqrt n). We check the recorded per-iteration stats respect the
  // envelopes (with generous constants).
  const std::size_t n = 64;
  const std::size_t m = 20000;  // m ≈ n^{2.2}
  KSelectSystem sys({.num_nodes = n, .seed = 9});
  auto elements = make_elements(m, 31, ~0ULL >> 8);
  sys.seed_elements(elements);
  const auto out = sys.select(m / 2);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(*out.result, expected_kth(elements, m / 2));

  const auto& stats = sys.anchor_node().kselect.stats();
  ASSERT_FALSE(stats.empty());
  const double envelope =
      std::pow(static_cast<double>(n), 1.5) * std::log2(double(n)) * 8.0;
  std::uint64_t after_phase1 = m;
  for (const auto& s : stats) {
    if (s.phase == 1) after_phase1 = s.n_after;
  }
  EXPECT_LT(static_cast<double>(after_phase1), envelope);
  // Shrinkage should be monotone over iterations.
  for (const auto& s : stats) {
    EXPECT_LE(s.n_after, s.n_before);
  }
}

TEST(KSelect, RoundsGrowLogarithmically) {
  // Theorem 4.2: O(log n) rounds w.h.p. At small n the iteration count is
  // noisy, so we compare sizes in the stable regime: a 16x growth in n
  // (and 16x in m) must not even double the rounds.
  std::vector<double> rounds;
  for (std::size_t n : {64u, 256u, 1024u}) {
    const std::size_t m = n * 20;
    KSelectSystem sys({.num_nodes = n, .seed = 10 + n});
    sys.seed_elements(make_elements(m, 41 + n, 1u << 20));
    const auto out = sys.select(m / 3);
    ASSERT_TRUE(out.result.has_value());
    rounds.push_back(static_cast<double>(out.rounds));
  }
  for (std::size_t i = 1; i < rounds.size(); ++i) {
    EXPECT_LT(rounds[i], rounds[i - 1] * 2.0)
        << "rounds grow too fast: " << rounds[i - 1] << " -> " << rounds[i];
  }
}

TEST(KSelect, RepeatedSessionsOnSameSystem) {
  KSelectSystem sys({.num_nodes = 16, .seed = 11});
  auto elements = make_elements(300, 51, 1000);
  sys.seed_elements(elements);
  for (std::uint64_t k = 50; k <= 250; k += 50) {
    const auto out = sys.select(k);
    ASSERT_TRUE(out.result.has_value()) << "k=" << k;
    EXPECT_EQ(*out.result, expected_kth(elements, k)) << "k=" << k;
  }
}

TEST(KSelect, SingleNodeDegenerateCase) {
  KSelectSystem sys({.num_nodes = 1, .seed = 12});
  auto elements = make_elements(40, 61, 100);
  sys.seed_elements(elements);
  const auto out = sys.select(17);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(*out.result, expected_kth(elements, 17));
}

TEST(KSelect, SkewedDistributionStillExact) {
  // All elements on one node: the w.h.p. assumptions behind the pruning
  // break, but the verification steps must keep the answer exact.
  KSelectSystem sys({.num_nodes = 16, .seed = 13});
  auto elements = make_elements(400, 71, 1u << 16);
  for (const auto& e : elements) sys.node(3).elements.push_back(e);
  const auto out = sys.select(123);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(*out.result, expected_kth(elements, 123));
}

}  // namespace
}  // namespace sks::kselect
