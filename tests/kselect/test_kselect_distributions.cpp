// KSelect under adversarial input distributions. The paper's w.h.p.
// analysis assumes uniformly distributed elements; this implementation's
// verification steps make *correctness* unconditional, so every
// distribution here must yield the exact k-th element — only the running
// time may vary.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "kselect/kselect_system.hpp"

namespace sks::kselect {
namespace {

enum class Dist {
  kUniform,
  kAllEqualPriority,   // total order decided purely by element ids
  kTwoClusters,        // bimodal: tiny values and huge values
  kGeometric,          // heavy skew toward small values
  kFewDistinct,        // only 5 distinct priorities, many duplicates
  kSequential,         // priorities 1..m in insertion order
};

const char* name_of(Dist d) {
  switch (d) {
    case Dist::kUniform: return "Uniform";
    case Dist::kAllEqualPriority: return "AllEqual";
    case Dist::kTwoClusters: return "TwoClusters";
    case Dist::kGeometric: return "Geometric";
    case Dist::kFewDistinct: return "FewDistinct";
    case Dist::kSequential: return "Sequential";
  }
  return "?";
}

std::vector<CandidateKey> generate(Dist d, std::size_t m,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CandidateKey> out;
  out.reserve(m);
  for (std::uint64_t i = 1; i <= m; ++i) {
    Priority p = 0;
    switch (d) {
      case Dist::kUniform:
        p = rng.range(1, ~0ULL >> 8);
        break;
      case Dist::kAllEqualPriority:
        p = 42;
        break;
      case Dist::kTwoClusters:
        p = rng.flip(0.5) ? rng.range(1, 1000)
                          : rng.range(~0ULL >> 9, ~0ULL >> 8);
        break;
      case Dist::kGeometric: {
        p = 1;
        while (rng.flip(0.5) && p < (1ULL << 40)) p <<= 1;
        p += rng.below(p);
        break;
      }
      case Dist::kFewDistinct:
        p = (rng.below(5) + 1) * 1'000'003;
        break;
      case Dist::kSequential:
        p = i;
        break;
    }
    out.push_back(CandidateKey{p, i});
  }
  return out;
}

class KSelectDistributions
    : public ::testing::TestWithParam<std::tuple<Dist, std::size_t>> {};

TEST_P(KSelectDistributions, ExactAtEveryQuartile) {
  const auto [dist, n] = GetParam();
  const std::size_t m = 25 * n;
  KSelectSystem sys({.num_nodes = n,
                     .seed = 1000 + n + static_cast<std::size_t>(dist)});
  auto elements = generate(dist, m, 77 + static_cast<std::uint64_t>(dist));
  sys.seed_elements(elements);

  auto sorted = elements;
  std::sort(sorted.begin(), sorted.end());

  for (const std::uint64_t k :
       {std::uint64_t{1}, m / 4, m / 2, 3 * m / 4, m}) {
    const auto out = sys.select(k);
    ASSERT_TRUE(out.result.has_value())
        << name_of(dist) << " n=" << n << " k=" << k;
    EXPECT_EQ(*out.result, sorted[k - 1])
        << name_of(dist) << " n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KSelectDistributions,
    ::testing::Combine(::testing::Values(Dist::kUniform,
                                         Dist::kAllEqualPriority,
                                         Dist::kTwoClusters, Dist::kGeometric,
                                         Dist::kFewDistinct,
                                         Dist::kSequential),
                       ::testing::Values(8u, 32u)),
    [](const auto& param_info) {
      return std::string(name_of(std::get<0>(param_info.param))) + "n" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(KSelectDistributions, AdversarialPlacementAllOnTwoNodes) {
  // Everything on nodes 0 and 1 with disjoint value ranges: Phase 1's
  // per-node quantiles are maximally misleading; verification must keep
  // the result exact.
  KSelectSystem sys({.num_nodes = 16, .seed = 2001});
  std::vector<CandidateKey> elements;
  for (std::uint64_t i = 1; i <= 150; ++i) {
    const CandidateKey low{i, i};
    const CandidateKey high{1'000'000 + i, 1000 + i};
    sys.node(0).elements.push_back(low);
    sys.node(1).elements.push_back(high);
    elements.push_back(low);
    elements.push_back(high);
  }
  std::sort(elements.begin(), elements.end());
  for (const std::uint64_t k : {1ULL, 150ULL, 151ULL, 300ULL}) {
    const auto out = sys.select(k);
    ASSERT_TRUE(out.result.has_value()) << "k=" << k;
    EXPECT_EQ(*out.result, elements[k - 1]) << "k=" << k;
  }
}

TEST(KSelectDistributions, ChangingElementSetsBetweenSessions) {
  // Elements added between sessions are picked up by the next snapshot.
  KSelectSystem sys({.num_nodes = 8, .seed = 2002});
  sys.node(2).elements.push_back(CandidateKey{10, 1});
  auto out = sys.select(1);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(out.result->prio, 10u);

  sys.node(5).elements.push_back(CandidateKey{3, 2});
  out = sys.select(1);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(out.result->prio, 3u);
}

}  // namespace
}  // namespace sks::kselect
