// The shared Cluster runtime, exercised directly (not through the
// protocol wrappers) over both SkeapNode and SeapNode: bootstrap →
// batch/cycle → join → batch/cycle → anchor leave (migration) →
// batch/cycle. Asserts no element loss and — via golden-seed hashes
// captured from the pre-refactor SkeapSystem/SeapSystem harnesses —
// that the runtime reproduces the exact same traces and round counts
// those harnesses produced (behaviour preservation).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "runtime/cluster.hpp"
#include "seap/seap_system.hpp"
#include "skeap/skeap_system.hpp"

namespace sks::runtime {
namespace {

std::uint64_t fnv(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::uint64_t kFnvSeed = 0xcbf29ce484222325ULL;

// ---- Per-protocol adapters for the typed test --------------------------

struct SkeapProto {
  using Node = skeap::SkeapNode;
  using Config = skeap::SkeapConfig;
  using Cluster = runtime::Cluster<Node, Config>;

  static Cluster make(std::size_t n, std::uint64_t seed) {
    skeap::SkeapSystem::Options o;
    o.num_nodes = n;
    o.num_priorities = 3;
    o.seed = seed;
    return Cluster(skeap::SkeapSystem::cluster_options(o), [o](std::size_t m) {
      return skeap::SkeapSystem::make_config(o, m);
    });
  }
  static void start(Node& n) { n.start_batch(); }
  /// Priorities for the scripted scenario (Skeap needs P = {1..3}).
  static Priority first_prio(std::uint64_t i) { return 1 + i % 3; }
  static Priority joiner_prio() { return 2; }
  static Priority final_prio() { return 3; }

  static std::uint64_t hash_trace(const std::vector<skeap::OpRecord>& t) {
    std::uint64_t h = kFnvSeed;
    for (const auto& r : t) {
      h = fnv(h, r.node);
      h = fnv(h, r.issue_seq);
      h = fnv(h, r.epoch);
      h = fnv(h, r.entry);
      h = fnv(h, r.is_insert ? 1 : 0);
      h = fnv(h, r.bottom ? 1 : 0);
      h = fnv(h, r.prio);
      h = fnv(h, r.pos);
      h = fnv(h, r.element.prio);
      h = fnv(h, r.element.id);
      h = fnv(h, r.completed ? 1 : 0);
    }
    return h;
  }

  // Golden values recorded from the pre-refactor SkeapSystem at the same
  // seed and op script (tools: see CHANGES.md, PR 1).
  static constexpr std::uint64_t kSeed = 0x90de;
  static constexpr std::uint64_t kGoldenTraceHash = 0xa7290e5877364c69ULL;
  static constexpr std::uint64_t kGoldenRounds[3] = {41, 53, 41};
  static constexpr NodeId kGoldenAnchorAfterLeave = 3;
};

struct SeapProto {
  using Node = seap::SeapNode;
  using Config = seap::SeapConfig;
  using Cluster = runtime::Cluster<Node, Config>;

  static Cluster make(std::size_t n, std::uint64_t seed) {
    seap::SeapSystem::Options o;
    o.num_nodes = n;
    o.seed = seed;
    return Cluster(seap::SeapSystem::cluster_options(o), [o](std::size_t m) {
      return seap::SeapSystem::make_config(o, m);
    });
  }
  static void start(Node& n) { n.start_cycle(); }
  static Priority first_prio(std::uint64_t i) { return 1000 + 137 * i; }
  static Priority joiner_prio() { return 42; }
  static Priority final_prio() { return 7; }

  static std::uint64_t hash_trace(const std::vector<seap::SeapOpRecord>& t) {
    std::uint64_t h = kFnvSeed;
    for (const auto& r : t) {
      h = fnv(h, r.node);
      h = fnv(h, r.issue_seq);
      h = fnv(h, r.cycle);
      h = fnv(h, r.is_insert ? 1 : 0);
      h = fnv(h, r.bottom ? 1 : 0);
      h = fnv(h, r.element.prio);
      h = fnv(h, r.element.id);
      h = fnv(h, r.completed ? 1 : 0);
    }
    return h;
  }

  static constexpr std::uint64_t kSeed = 0x90df;
  static constexpr std::uint64_t kGoldenTraceHash = 0xeb1a50a3335a76fdULL;
  static constexpr std::uint64_t kGoldenRounds[3] = {63, 120, 50};
  static constexpr NodeId kGoldenAnchorAfterLeave = 4;
};

template <class Proto>
class ClusterTypedTest : public ::testing::Test {};

using Protocols = ::testing::Types<SkeapProto, SeapProto>;
TYPED_TEST_SUITE(ClusterTypedTest, Protocols);

TYPED_TEST(ClusterTypedTest, BootstrapFindsAnchorAndActivatesAll) {
  auto cluster = TypeParam::make(6, TypeParam::kSeed);
  EXPECT_EQ(cluster.active_nodes().size(), 6u);
  EXPECT_EQ(cluster.size(), 6u);
  ASSERT_NE(cluster.anchor(), kNoNode);
  EXPECT_TRUE(cluster.anchor_node().hosts_anchor());
  // Exactly one active node hosts the anchor.
  std::size_t anchors = 0;
  for (NodeId v : cluster.active_nodes()) {
    if (cluster.node(v).hosts_anchor()) ++anchors;
  }
  EXPECT_EQ(anchors, 1u);
}

TYPED_TEST(ClusterTypedTest, JoinEpochLeaveMatchesGoldenPreRefactorTrace) {
  auto cluster = TypeParam::make(6, TypeParam::kSeed);
  ElementId next_id = 1;  // mirrors the wrappers' element-id assignment
  std::uint64_t inserted = 0;
  std::vector<std::uint64_t> rounds;

  for (NodeId v = 0; v < 6; ++v) {
    cluster.node(v).insert(
        Element{TypeParam::first_prio(v), next_id++});
    ++inserted;
  }
  rounds.push_back(cluster.run_epoch(
      [](typename TypeParam::Node& n) { TypeParam::start(n); }));

  const NodeId newbie = cluster.join_node();
  EXPECT_EQ(cluster.active_nodes().size(), 7u);
  EXPECT_EQ(cluster.size(), 7u);
  cluster.node(newbie).insert(Element{TypeParam::joiner_prio(), next_id++});
  ++inserted;
  int matched = 0, bottoms = 0;
  for (NodeId v : cluster.active_nodes()) {
    cluster.node(v).delete_min([&](std::optional<Element> x) {
      (x ? matched : bottoms)++;
    });
  }
  rounds.push_back(cluster.run_epoch(
      [](typename TypeParam::Node& n) { TypeParam::start(n); }));

  const NodeId old_anchor = cluster.anchor();
  cluster.leave_node(old_anchor);
  EXPECT_NE(cluster.anchor(), old_anchor);
  EXPECT_EQ(cluster.active_nodes().size(), 6u);
  for (NodeId v : cluster.active_nodes()) {
    cluster.node(v).insert(Element{TypeParam::final_prio(), next_id++});
    ++inserted;
  }
  rounds.push_back(cluster.run_epoch(
      [](typename TypeParam::Node& n) { TypeParam::start(n); }));

  // All seven deletes matched (the heap held enough elements).
  EXPECT_EQ(matched, 7);
  EXPECT_EQ(bottoms, 0);

  // No element loss across join, leave and anchor migration: everything
  // inserted and not deleted is still stored in some active node's DHT
  // shard, and the migrated anchor agrees on the heap size.
  std::uint64_t stored = 0;
  for (NodeId v : cluster.active_nodes()) {
    stored += cluster.node(v).dht().stored_count();
  }
  EXPECT_EQ(stored, inserted - static_cast<std::uint64_t>(matched));
  EXPECT_EQ(cluster.anchor_node().anchor_heap_size(),
            inserted - static_cast<std::uint64_t>(matched));

  // Golden-seed comparison against the pre-refactor harnesses: identical
  // serialization (trace), identical round counts, same migrated anchor.
  EXPECT_EQ(TypeParam::hash_trace(cluster.gather_trace()),
            TypeParam::kGoldenTraceHash);
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_EQ(rounds[0], TypeParam::kGoldenRounds[0]);
  EXPECT_EQ(rounds[1], TypeParam::kGoldenRounds[1]);
  EXPECT_EQ(rounds[2], TypeParam::kGoldenRounds[2]);
  EXPECT_EQ(cluster.anchor(), TypeParam::kGoldenAnchorAfterLeave);

  // The runtime recorded one EpochStats entry per epoch.
  const auto& history = cluster.epoch_history();
  ASSERT_EQ(history.size(), 3u);
  for (std::size_t e = 0; e < 3; ++e) {
    EXPECT_EQ(history[e].epoch, e);
    EXPECT_EQ(history[e].rounds, rounds[e]);
    EXPECT_GT(history[e].messages, 0u);
    EXPECT_GT(history[e].bits, 0u);
  }
  EXPECT_EQ(cluster.epochs_started(), 3u);
}

TYPED_TEST(ClusterTypedTest, StartAllReachesOnlyActiveNodes) {
  auto cluster = TypeParam::make(6, TypeParam::kSeed + 100);
  cluster.leave_node(5);
  std::size_t started = 0;
  cluster.start_all([&](typename TypeParam::Node&) { ++started; });
  EXPECT_EQ(started, 5u);
  cluster.run_until_idle();
}

TEST(ClusterAdaptive, BatchLimitDoublesOnBacklogAndHalvesOnDrain) {
  skeap::SkeapSystem::Options o;
  o.num_nodes = 4;
  o.num_priorities = 3;
  o.seed = 0x90e1;
  o.adaptive_batch_min = 2;
  o.adaptive_batch_max = 16;
  skeap::SkeapSystem sys(o);
  EXPECT_EQ(sys.cluster().batch_limit(), 2u);

  // 20 ops on one node against a per-epoch limit that starts at 2: the
  // AIMD trajectory is 2 -> 4 -> 8 -> 16 while backlogged, then halves
  // once the buffer drains.
  for (std::size_t i = 0; i < 20; ++i) sys.insert(0, 1 + i % 3);
  std::vector<std::size_t> limits;
  std::vector<std::size_t> queued;
  while (sys.cluster().queued_ops() > 0) {
    sys.run_batch();
    limits.push_back(sys.cluster().batch_limit());
    queued.push_back(sys.cluster().queued_ops());
  }
  ASSERT_EQ(limits.size(), 4u);  // batches of 2, 4, 8, 6
  EXPECT_EQ(limits, (std::vector<std::size_t>{4, 8, 16, 8}));
  EXPECT_EQ(queued, (std::vector<std::size_t>{18, 14, 6, 0}));

  // Idle epochs keep decaying the limit down to the floor.
  sys.run_batch();
  EXPECT_EQ(sys.cluster().batch_limit(), 4u);
  sys.run_batch();
  EXPECT_EQ(sys.cluster().batch_limit(), 2u);
  sys.run_batch();
  EXPECT_EQ(sys.cluster().batch_limit(), 2u);

  // Nothing was lost to the partial batches: all 20 elements drain.
  std::size_t matched = 0;
  for (int i = 0; i < 20; ++i) {
    sys.delete_min(static_cast<NodeId>(i % 4),
                   [&](std::optional<Element> x) { matched += x ? 1u : 0u; });
  }
  while (sys.cluster().queued_ops() > 0) sys.run_batch();
  EXPECT_EQ(matched, 20u);
}

TEST(ClusterAdaptive, PartialBatchesPreserveLocalIssueOrder) {
  // With a batch cap the later ops of one client node stay buffered for
  // a later epoch, but the snapshot takes oldest-first — so all 8
  // inserts commit before or alongside the first delete epoch. No
  // delete may see an empty heap (⊥), nothing may be lost, and each
  // epoch's deletes return priorities no smaller than any earlier
  // epoch's (within one epoch the slot order is a protocol detail).
  skeap::SkeapSystem::Options o;
  o.num_nodes = 4;
  o.num_priorities = 3;
  o.seed = 0x90e2;
  o.adaptive_batch_min = 1;
  o.adaptive_batch_max = 4;
  skeap::SkeapSystem sys(o);
  std::vector<Priority> inserted;
  for (std::size_t i = 0; i < 8; ++i) {
    inserted.push_back(3 - i % 3);
    sys.insert(0, inserted.back());
  }
  std::vector<Element> got;
  std::size_t bottoms = 0;
  for (int i = 0; i < 8; ++i) {
    sys.delete_min(0, [&](std::optional<Element> x) {
      if (x) {
        got.push_back(*x);
      } else {
        ++bottoms;
      }
    });
  }
  std::vector<std::size_t> epoch_end;  ///< got.size() after each epoch
  while (sys.cluster().queued_ops() > 0) {
    sys.run_batch();
    epoch_end.push_back(got.size());
  }
  EXPECT_EQ(bottoms, 0u) << "all inserts precede all deletes in issue order";
  ASSERT_EQ(got.size(), 8u);
  // Sort within each epoch's slice; across epochs the drain must be
  // monotone (an epoch removes the globally smallest priorities).
  std::vector<Priority> prios;
  std::size_t begin = 0;
  for (const std::size_t end : epoch_end) {
    std::sort(got.begin() + static_cast<std::ptrdiff_t>(begin),
              got.begin() + static_cast<std::ptrdiff_t>(end));
    begin = end;
  }
  for (const Element& e : got) prios.push_back(e.prio);
  EXPECT_TRUE(std::is_sorted(prios.begin(), prios.end()))
      << "later epochs returned smaller priorities than earlier ones";
  std::sort(inserted.begin(), inserted.end());
  std::vector<Priority> sorted_prios = prios;
  std::sort(sorted_prios.begin(), sorted_prios.end());
  EXPECT_EQ(sorted_prios, inserted) << "drain lost or invented an element";
}

TEST(ClusterAdaptive, DisabledByDefaultAndValidated) {
  skeap::SkeapSystem::Options o;
  o.num_nodes = 2;
  o.num_priorities = 2;
  o.seed = 0x90e3;
  {
    skeap::SkeapSystem sys(o);
    EXPECT_EQ(sys.cluster().batch_limit(), 0u) << "0 = drain everything";
  }
  o.adaptive_batch_max = 8;  // min stays 0: invalid
  EXPECT_THROW((skeap::SkeapSystem(o)), CheckFailure);
  o.adaptive_batch_min = 16;  // min > max: invalid
  EXPECT_THROW((skeap::SkeapSystem(o)), CheckFailure);
}

// The wrappers expose the same engine (not a parallel code path): the
// wrapper-driven run must agree with the direct Cluster run above.
TEST(ClusterWrappers, SkeapSystemSharesTheRuntimeEngine) {
  skeap::SkeapSystem sys(
      {.num_nodes = 6, .num_priorities = 3, .seed = SkeapProto::kSeed});
  for (NodeId v = 0; v < 6; ++v) sys.insert(v, SkeapProto::first_prio(v));
  const std::uint64_t rounds = sys.run_batch();
  EXPECT_EQ(rounds, SkeapProto::kGoldenRounds[0]);
  ASSERT_EQ(sys.cluster().epoch_history().size(), 1u);
  EXPECT_EQ(sys.cluster().epoch_history()[0].rounds, rounds);
}

}  // namespace
}  // namespace sks::runtime
