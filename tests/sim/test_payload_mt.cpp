// Thread-safety of the payload subsystem under the parallel round engine:
// the ActionRegistry must survive first-use registration racing across
// worker threads (the old function-local static registration was only
// safe per type, not across the registry's internal table), and the
// two-level PayloadPool must hand out and recycle blocks from many
// threads at once without corruption or cross-type mixups.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/payload.hpp"

namespace sks::sim {
namespace {

// One distinct name literal per instantiation (I in [0, 32)).
constexpr const char* kMtNames[] = {
    "mt.a00", "mt.a01", "mt.a02", "mt.a03", "mt.a04", "mt.a05",
    "mt.a06", "mt.a07", "mt.a08", "mt.a09", "mt.a10", "mt.a11",
    "mt.a12", "mt.a13", "mt.a14", "mt.a15", "mt.a16", "mt.a17",
    "mt.a18", "mt.a19", "mt.a20", "mt.a21", "mt.a22", "mt.a23",
    "mt.a24", "mt.a25", "mt.a26", "mt.a27", "mt.a28", "mt.a29",
    "mt.a30", "mt.a31"};

// A family of distinct payload types so concurrent *first-use*
// registration actually exercises the registry's table, not just the
// per-type function-local static.
template <int I>
struct MtPayload final : Action<MtPayload<I>> {
  static constexpr const char* kActionName = kMtNames[I];
  std::uint64_t value = 0;
  std::uint64_t size_bits() const override { return 64; }
  void encode(wire::WireWriter& w) const override { w.leb(value); }
  static Owned<MtPayload> decode(wire::WireReader& r) {
    auto p = make_payload<MtPayload>();
    p->value = r.leb();
    return p;
  }
};

template <int I>
void touch_type(std::vector<ActionId>& ids) {
  // First use registers the type; later uses must return the same tag.
  auto p = make_payload<MtPayload<I>>();
  p->value = static_cast<std::uint64_t>(I);
  ids.push_back(p->tag());
}

// Registers a block of 4 types and immediately exercises their pools.
// Thread t starts at type 4*(t%8), so every type's first registration is
// contended by at least two threads when 8+ threads run.
void worker(int t, std::atomic<bool>& go, std::vector<ActionId>& ids) {
  while (!go.load(std::memory_order_acquire)) {
  }
  const auto touch_block = [&ids](int base) {
    switch (base) {
      case 0:  touch_type<0>(ids);  touch_type<1>(ids);
               touch_type<2>(ids);  touch_type<3>(ids);  break;
      case 4:  touch_type<4>(ids);  touch_type<5>(ids);
               touch_type<6>(ids);  touch_type<7>(ids);  break;
      case 8:  touch_type<8>(ids);  touch_type<9>(ids);
               touch_type<10>(ids); touch_type<11>(ids); break;
      case 12: touch_type<12>(ids); touch_type<13>(ids);
               touch_type<14>(ids); touch_type<15>(ids); break;
      case 16: touch_type<16>(ids); touch_type<17>(ids);
               touch_type<18>(ids); touch_type<19>(ids); break;
      case 20: touch_type<20>(ids); touch_type<21>(ids);
               touch_type<22>(ids); touch_type<23>(ids); break;
      case 24: touch_type<24>(ids); touch_type<25>(ids);
               touch_type<26>(ids); touch_type<27>(ids); break;
      default: touch_type<28>(ids); touch_type<29>(ids);
               touch_type<30>(ids); touch_type<31>(ids); break;
    }
  };
  // Every thread eventually touches every block; the starting offset
  // staggers which first-registration each thread contends on.
  for (int round = 0; round < 8; ++round) {
    touch_block(4 * ((t + round) % 8));
  }
}

TEST(ParallelPayload, ConcurrentRegistrationAndPooling) {
  const std::size_t before = ActionRegistry::instance().size();
  std::atomic<bool> go{false};
  constexpr int kThreads = 8;
  std::vector<std::vector<ActionId>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &go, &ids] { worker(t, go, ids[static_cast<std::size_t>(t)]); });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  // Exactly 32 new actions, each with a unique dense id and its name
  // resolvable from any thread.
  EXPECT_EQ(ActionRegistry::instance().size(), before + 32);

  // Every thread observed the same tag for the same type: thread 0's
  // sorted unique tag set must equal every other thread's.
  for (auto& v : ids) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    EXPECT_EQ(v.size(), 32u);
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[static_cast<std::size_t>(t)], ids[0]) << "thread " << t
        << " observed different action tags";
  }

  // Names resolve to the right literals after the dust settles.
  EXPECT_EQ(ActionRegistry::instance().name(ids[0][0]).substr(0, 3), "mt.");
}

// Blocks recycled on one thread must be reusable from another (the
// global overflow list migrates them); hammer make/release from 8
// threads and verify payload state never leaks across instances.
TEST(ParallelPayload, CrossThreadRecyclingKeepsPayloadsIsolated) {
  (void)make_payload<MtPayload<0>>();  // ensure registration is done
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t, &go, &failures] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < 2000; ++i) {
        auto p = make_payload<MtPayload<0>>();
        // A freshly constructed payload must always carry the default
        // value — recycled storage is re-constructed, never reused raw.
        if (p->value != 0) failures.fetch_add(1);
        p->value = static_cast<std::uint64_t>(t) << 32 |
                   static_cast<std::uint64_t>(i);
        if ((i & 15) == 0) {
          // Hold a clone briefly so live blocks interleave with frees.
          PayloadPtr c = p->clone_payload();
          if (static_cast<MtPayload<0>&>(*c).value != p->value) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace sks::sim
