// Wire-mode equivalence: running a full cluster with every send marshaled
// through encode -> bytes -> decode must be observably identical to the
// in-memory object path — same trace, same logical metrics, same results —
// for each protocol family (Skeap, Seap, KSelect) and under chaos
// (faults + reliable transport + crash recovery). Wire mode may only add
// the wire-measurement counters; everything else is pinned.
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/semantics.hpp"
#include "kselect/kselect_system.hpp"
#include "seap/seap_system.hpp"
#include "sim/metrics.hpp"
#include "skeap/skeap_system.hpp"
#include "trace/text.hpp"
#include "trace/tracer.hpp"

namespace sks {
namespace {

/// The logical metrics that must not move when wire mode turns on. (The
/// wire_* counters are excluded by construction: they are the one thing
/// wire mode is allowed — required — to add.)
void expect_logical_metrics_identical(const sim::MetricsSnapshot& a,
                                      const sim::MetricsSnapshot& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.max_message_bits, b.max_message_bits);
  EXPECT_EQ(a.max_congestion, b.max_congestion);
  EXPECT_TRUE(a.message_bits_hist == b.message_bits_hist);
  EXPECT_TRUE(a.congestion_hist == b.congestion_hist);
  EXPECT_EQ(a.messages_by_type, b.messages_by_type);
  EXPECT_EQ(a.bits_by_type, b.bits_by_type);
  EXPECT_EQ(a.max_bits_by_type, b.max_bits_by_type);
}

// ---------------------------------------------------------------------------
// Skeap: the paper's Figure 1 scenario (the golden-trace workload)
// ---------------------------------------------------------------------------

struct SkeapRun {
  std::string trace;
  sim::MetricsSnapshot metrics;
};

SkeapRun run_figure1(bool wire, sim::DeliveryMode mode) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = 3;
  opts.num_priorities = 2;
  opts.seed = 42;
  opts.mode = mode;
  opts.wire = wire;
  skeap::SkeapSystem sys(opts);
  sys.net().tracer().enable();
  sys.insert(0, 1);
  sys.insert(1, 1);
  sys.delete_min(1);
  sys.delete_min(1);
  sys.insert(2, 1);
  sys.insert(2, 1);
  sys.insert(2, 2);
  sys.delete_min(2);
  sys.run_batch();
  SkeapRun run;
  run.metrics = sys.net().metrics().current();
  run.trace = trace::to_text(sys.net().take_trace());
  return run;
}

TEST(WireMode, SkeapFigure1TraceIsByteIdentical) {
  for (const sim::DeliveryMode mode : {sim::DeliveryMode::kSynchronous,
                                       sim::DeliveryMode::kAsynchronous}) {
    const SkeapRun object = run_figure1(false, mode);
    const SkeapRun wired = run_figure1(true, mode);
    EXPECT_EQ(wired.trace, object.trace)
        << "wire marshaling must not perturb the schedule (mode "
        << static_cast<int>(mode) << ")";
    expect_logical_metrics_identical(object.metrics, wired.metrics);
    EXPECT_EQ(object.metrics.wire_messages, 0u);
    EXPECT_GT(wired.metrics.wire_messages, 0u);
    EXPECT_GT(wired.metrics.wire_body_bits, 0u);
    EXPECT_GT(wired.metrics.wire_frame_bits, 0u);
    // Every marshaled action's measured bytes stay within the paper's
    // size_bits() accounting — the invariant the CI bench check enforces
    // fleet-wide.
    for (const auto& [name, bits] : wired.metrics.wire_bits_by_type) {
      const auto it = wired.metrics.wire_accounted_bits_by_type.find(name);
      ASSERT_NE(it, wired.metrics.wire_accounted_bits_by_type.end()) << name;
      EXPECT_LE(bits, it->second)
          << "action '" << name << "' encodes larger than it accounts";
    }
  }
}

// ---------------------------------------------------------------------------
// Seap: arbitrary priorities over the DHT
// ---------------------------------------------------------------------------

struct SeapRun {
  std::string trace;
  std::vector<Element> deleted;
  sim::MetricsSnapshot metrics;
};

SeapRun run_seap(bool wire) {
  seap::SeapSystem::Options opts;
  opts.num_nodes = 4;
  opts.seed = 0x5ea9edULL;
  opts.wire = wire;
  seap::SeapSystem sys(opts);
  sys.net().tracer().enable();
  SeapRun run;
  for (NodeId v = 0; v < 4; ++v) {
    sys.insert(v, 1000 + 17 * v);
    sys.insert(v, 5 + v);
  }
  sys.run_cycle();
  for (NodeId v = 0; v < 4; ++v) {
    sys.delete_min(v, [&run](std::optional<Element> x) {
      if (x) run.deleted.push_back(*x);
    });
  }
  sys.run_cycle();
  run.metrics = sys.net().metrics().current();
  run.trace = trace::to_text(sys.net().take_trace());
  return run;
}

TEST(WireMode, SeapCyclesAreByteIdentical) {
  const SeapRun object = run_seap(false);
  const SeapRun wired = run_seap(true);
  EXPECT_EQ(wired.trace, object.trace);
  EXPECT_EQ(wired.deleted, object.deleted);
  expect_logical_metrics_identical(object.metrics, wired.metrics);
  EXPECT_EQ(object.metrics.wire_messages, 0u);
  EXPECT_GT(wired.metrics.wire_messages, 0u);
}

// ---------------------------------------------------------------------------
// KSelect: full selection sessions
// ---------------------------------------------------------------------------

struct KSelectRun {
  std::string trace;
  std::optional<Element> result;
  std::uint64_t rounds = 0;
};

KSelectRun run_kselect(bool wire) {
  kselect::KSelectSystem::Options opts;
  opts.num_nodes = 6;
  opts.seed = 0x5e1ecULL;
  opts.wire = wire;
  kselect::KSelectSystem sys(opts);
  std::vector<Element> elements;
  for (std::uint64_t i = 1; i <= 200; ++i) {
    elements.push_back(Element{(i * 7919) % 1000, i});
  }
  sys.seed_elements(elements);
  sys.net().tracer().enable();
  const auto outcome = sys.select(42);
  KSelectRun run;
  run.result = outcome.result;
  run.rounds = outcome.rounds;
  run.trace = trace::to_text(sys.net().take_trace());
  return run;
}

TEST(WireMode, KSelectSessionIsByteIdentical) {
  const KSelectRun object = run_kselect(false);
  const KSelectRun wired = run_kselect(true);
  ASSERT_TRUE(object.result.has_value());
  EXPECT_EQ(wired.result, object.result);
  EXPECT_EQ(wired.rounds, object.rounds);
  EXPECT_EQ(wired.trace, object.trace);
}

// ---------------------------------------------------------------------------
// Chaos: faults + reliable transport + crash recovery
// ---------------------------------------------------------------------------

struct ChaosRun {
  std::string trace;
  std::vector<Element> got;
  bool semantics_ok = false;
  std::string semantics_error;
};

ChaosRun run_chaos(bool wire) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = 8;
  opts.num_priorities = 2;
  opts.seed = 41;
  opts.faults.drop_prob = 0.05;
  opts.faults.duplicate_prob = 0.02;
  opts.reliable.enabled = true;
  opts.wire = wire;
  skeap::SkeapSystem sys(opts);
  sys.net().tracer().enable();
  for (NodeId v = 0; v < 8; ++v) sys.insert(v, 1 + v % 2);
  // A crash-restart window inside the batch: the reliable transport
  // bridges the outage, so wire marshaling must survive retransmitted
  // clones too.
  const std::uint64_t r = sys.net().round();
  sys.net().schedule_crash({1, r + 3, r + 15});
  sys.run_batch();
  ChaosRun run;
  for (NodeId v = 0; v < 8; ++v) {
    sys.delete_min(v, [&run](std::optional<Element> x) {
      if (x) run.got.push_back(*x);
    });
  }
  sys.run_batch();
  const auto check = core::check_skeap_trace(sys.gather_trace());
  run.semantics_ok = check.ok;
  run.semantics_error = check.error;
  run.trace = trace::to_text(sys.net().take_trace());
  return run;
}

// Crash recovery proper: a permanently dead node, its slice promoted from
// a mirror (ReplicaDelta over the wire), the session retried. The decoded
// replica payloads must reconstruct the exact same survivor state.
struct RecoveryRun {
  std::string trace;
  std::optional<Element> result;
  std::uint64_t rounds = 0;
  std::size_t deaths = 0;
};

RecoveryRun run_recovery(bool wire) {
  kselect::KSelectSystem::Options opts;
  opts.num_nodes = 8;
  opts.seed = 0x2ec0e2ULL;
  opts.reliable.enabled = true;
  opts.recovery.enabled = true;
  opts.recovery.replication = 2;
  opts.wire = wire;
  kselect::KSelectSystem sys(opts);
  std::vector<Element> elements;
  for (std::uint64_t i = 1; i <= 200; ++i) {
    elements.push_back(Element{(i * 6151) % 50000, i});
  }
  sys.seed_elements(elements);
  sys.net().tracer().enable();
  // Permanent crash (restart = 0) of a non-anchor node shortly after the
  // session starts: the failure detector declares it dead, mirrors promote
  // its slice, and the selection is retried under a fresh session id.
  NodeId victim = kNoNode;
  for (NodeId v : sys.cluster().active_nodes()) {
    if (v != sys.cluster().anchor()) {
      victim = v;
      break;
    }
  }
  sys.net().schedule_crash({victim, sys.net().round() + 3, /*restart=*/0});
  const auto outcome = sys.select(57);
  RecoveryRun run;
  run.result = outcome.result;
  run.rounds = outcome.rounds;
  run.deaths = sys.cluster().recovery_log().size();
  run.trace = trace::to_text(sys.net().take_trace());
  return run;
}

TEST(WireMode, CrashRecoveryPromotionIsByteIdentical) {
  const RecoveryRun object = run_recovery(false);
  const RecoveryRun wired = run_recovery(true);
  ASSERT_TRUE(object.result.has_value());
  EXPECT_EQ(object.deaths, 1u) << "the scenario must exercise a promotion";
  EXPECT_EQ(wired.result, object.result);
  EXPECT_EQ(wired.rounds, object.rounds);
  EXPECT_EQ(wired.deaths, object.deaths);
  EXPECT_EQ(wired.trace, object.trace);
}

TEST(WireMode, ChaosWithCrashRecoveryIsByteIdentical) {
  const ChaosRun object = run_chaos(false);
  const ChaosRun wired = run_chaos(true);
  EXPECT_TRUE(object.semantics_ok) << object.semantics_error;
  EXPECT_TRUE(wired.semantics_ok) << wired.semantics_error;
  EXPECT_EQ(wired.got, object.got);
  EXPECT_EQ(wired.trace, object.trace);
  EXPECT_EQ(object.got.size(), 8u);
}

}  // namespace
}  // namespace sks
