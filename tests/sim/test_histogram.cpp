// Edge-case coverage for sim::Log2Histogram — the distribution store
// behind every message-size and congestion report. Pins the quantile
// semantics at the boundaries (empty, q=0, q=1, single bucket, all mass
// in the top bucket) and that the extreme recordable values land in
// valid buckets.
#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace sks::sim {
namespace {

TEST(Log2Histogram, EmptyHistogramQuantilesAreZero) {
  Log2Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(Log2Histogram, RecordZeroLandsInBucketZero) {
  Log2Histogram h;
  h.record(0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.buckets()[0], 1u);
  // The q-quantile of {0} is 0 for every q.
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(Log2Histogram, RecordMaxLandsInTopBucket) {
  Log2Histogram h;
  h.record(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.buckets()[Log2Histogram::kBuckets - 1], 1u);
  EXPECT_EQ(h.quantile(1.0), std::numeric_limits<std::uint64_t>::max());
}

TEST(Log2Histogram, SingleBucketAllQuantilesAgree) {
  Log2Histogram h;
  for (int i = 0; i < 10; ++i) h.record(100);  // bit width 7: (64, 127]
  EXPECT_EQ(h.quantile(0.0), 127u);
  EXPECT_EQ(h.quantile(0.5), 127u);
  EXPECT_EQ(h.quantile(1.0), 127u);
}

TEST(Log2Histogram, QuantileBoundariesAcrossTwoBuckets) {
  Log2Histogram h;
  for (int i = 0; i < 50; ++i) h.record(3);    // bucket 2, upper 3
  for (int i = 0; i < 50; ++i) h.record(200);  // bucket 8, upper 255
  // q=0 is the first non-empty bucket, q=1 the last.
  EXPECT_EQ(h.quantile(0.0), 3u);
  EXPECT_EQ(h.quantile(1.0), 255u);
  // The median rank (50) falls just past the low bucket's 50 values.
  EXPECT_EQ(h.quantile(0.5), 255u);
  EXPECT_EQ(h.quantile(0.49), 3u);
}

TEST(Log2Histogram, AllMassInTopBucketEveryQuantileIsMax) {
  Log2Histogram h;
  for (int i = 0; i < 5; ++i) {
    h.record(std::numeric_limits<std::uint64_t>::max());
    h.record(~0ull - 1);
  }
  EXPECT_EQ(h.quantile(0.0), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.quantile(0.5), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.quantile(1.0), std::numeric_limits<std::uint64_t>::max());
}

TEST(Log2Histogram, BucketUpperBounds) {
  EXPECT_EQ(Log2Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Log2Histogram::bucket_upper(63), (1ull << 63) - 1);
  EXPECT_EQ(Log2Histogram::bucket_upper(64),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Log2Histogram, MergePreservesTotalsAndQuantiles) {
  Log2Histogram a, b;
  for (int i = 0; i < 8; ++i) a.record(10);
  for (int i = 0; i < 8; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.total(), 16u);
  EXPECT_EQ(a.quantile(0.0), 15u);     // bucket of 10: (8, 15]
  EXPECT_EQ(a.quantile(1.0), 1023u);   // bucket of 1000: (512, 1023]
}

}  // namespace
}  // namespace sks::sim
