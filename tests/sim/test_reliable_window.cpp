// Regression tests for the reliable transport's receiver-side duplicate
// suppression: the out-of-order buffer must stay proportional to the
// number of *gaps* in the sequence space (run-length ranges compacted
// against the watermark), not the number of reordered messages — the
// original std::set grew one entry per message under sustained
// reordering. Also covers fence(), which recovery uses to retire every
// channel of a declared-dead node.
#include <cstdint>

#include <gtest/gtest.h>

#include "sim/reliable.hpp"

namespace sks::sim {
namespace {

constexpr NodeId kA = 0;
constexpr NodeId kB = 1;

TEST(ReliableWindow, SustainedReorderingIsBoundedByGapCount) {
  ReliableTransport t({.enabled = true});
  // Deliver 1..N with 0 missing: one contiguous run above the watermark,
  // regardless of N. The unbounded-set implementation held N entries.
  constexpr std::uint64_t kN = 10'000;
  for (std::uint64_t seq = 1; seq <= kN; ++seq) {
    EXPECT_TRUE(t.mark_delivered(kA, kB, seq));
  }
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 1u);
  EXPECT_EQ(t.delivered_below(kA, kB), 0u);

  // The gap fills: everything compacts into the watermark.
  EXPECT_TRUE(t.mark_delivered(kA, kB, 0));
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 0u);
  EXPECT_EQ(t.delivered_below(kA, kB), kN + 1);

  // Every copy replayed after compaction is a duplicate.
  for (std::uint64_t seq = 0; seq <= kN; ++seq) {
    EXPECT_FALSE(t.mark_delivered(kA, kB, seq));
  }
}

TEST(ReliableWindow, RunsMergeInEveryDirection) {
  ReliableTransport t({.enabled = true});
  // Build disjoint runs {2}, {6}, then bridge and extend them.
  EXPECT_TRUE(t.mark_delivered(kA, kB, 2));
  EXPECT_TRUE(t.mark_delivered(kA, kB, 6));
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 2u);
  EXPECT_TRUE(t.mark_delivered(kA, kB, 3));   // extend {2} up -> {2,3}
  EXPECT_TRUE(t.mark_delivered(kA, kB, 5));   // extend {6} down -> {5,6}
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 2u);
  EXPECT_TRUE(t.mark_delivered(kA, kB, 4));   // bridge -> {2..6}
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 1u);

  // Duplicates inside, at the edges of, and keyed at a run are rejected.
  EXPECT_FALSE(t.mark_delivered(kA, kB, 2));
  EXPECT_FALSE(t.mark_delivered(kA, kB, 4));
  EXPECT_FALSE(t.mark_delivered(kA, kB, 6));
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 1u);

  // 0 advances the watermark but 1 is still missing; then 1 drains all.
  EXPECT_TRUE(t.mark_delivered(kA, kB, 0));
  EXPECT_EQ(t.delivered_below(kA, kB), 1u);
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 1u);
  EXPECT_TRUE(t.mark_delivered(kA, kB, 1));
  EXPECT_EQ(t.delivered_below(kA, kB), 7u);
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 0u);
}

TEST(ReliableWindow, AlternatingGapsHoldOneRangePerGap) {
  ReliableTransport t({.enabled = true});
  // Odd seqs only: every arrival opens its own gap-bounded run.
  for (std::uint64_t seq = 1; seq <= 99; seq += 2) {
    EXPECT_TRUE(t.mark_delivered(kA, kB, seq));
  }
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 50u);
  // Even seqs arrive: runs merge pairwise and drain at the watermark.
  for (std::uint64_t seq = 0; seq <= 98; seq += 2) {
    EXPECT_TRUE(t.mark_delivered(kA, kB, seq));
  }
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 0u);
  EXPECT_EQ(t.delivered_below(kA, kB), 100u);
}

TEST(ReliableWindow, FenceRetiresEveryChannelOfANode) {
  ReliableTransport t({.enabled = true});
  const ReliableAck payload;
  t.register_send(kA, kB, payload, 64, 0, /*round=*/0);
  t.register_send(kB, kA, payload, 64, 0, /*round=*/0);
  t.register_send(kA, 2, payload, 64, 0, /*round=*/0);
  EXPECT_TRUE(t.mark_delivered(kB, kA, 5));
  EXPECT_TRUE(t.mark_delivered(kA, 2, 5));
  ASSERT_EQ(t.unacked(), 3u);

  t.fence(kB);
  // Both directions touching kB are gone; the kA->2 channel survives.
  EXPECT_EQ(t.unacked(), 1u);
  EXPECT_EQ(t.out_of_order_ranges(kB, kA), 0u);
  EXPECT_EQ(t.out_of_order_ranges(kA, 2), 1u);
}

}  // namespace
}  // namespace sks::sim
