// Regression tests for the reliable transport's receiver-side duplicate
// suppression: the out-of-order buffer must stay proportional to the
// number of *gaps* in the sequence space (run-length ranges compacted
// against the watermark), not the number of reordered messages — the
// original std::set grew one entry per message under sustained
// reordering. Also covers fence(), which recovery uses to retire every
// channel of a declared-dead node.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/reliable.hpp"

namespace sks::sim {
namespace {

constexpr NodeId kA = 0;
constexpr NodeId kB = 1;

TEST(ReliableWindow, SustainedReorderingIsBoundedByGapCount) {
  ReliableTransport t({.enabled = true});
  // Deliver 1..N with 0 missing: one contiguous run above the watermark,
  // regardless of N. The unbounded-set implementation held N entries.
  constexpr std::uint64_t kN = 10'000;
  for (std::uint64_t seq = 1; seq <= kN; ++seq) {
    EXPECT_TRUE(t.mark_delivered(kA, kB, seq));
  }
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 1u);
  EXPECT_EQ(t.delivered_below(kA, kB), 0u);

  // The gap fills: everything compacts into the watermark.
  EXPECT_TRUE(t.mark_delivered(kA, kB, 0));
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 0u);
  EXPECT_EQ(t.delivered_below(kA, kB), kN + 1);

  // Every copy replayed after compaction is a duplicate.
  for (std::uint64_t seq = 0; seq <= kN; ++seq) {
    EXPECT_FALSE(t.mark_delivered(kA, kB, seq));
  }
}

TEST(ReliableWindow, RunsMergeInEveryDirection) {
  ReliableTransport t({.enabled = true});
  // Build disjoint runs {2}, {6}, then bridge and extend them.
  EXPECT_TRUE(t.mark_delivered(kA, kB, 2));
  EXPECT_TRUE(t.mark_delivered(kA, kB, 6));
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 2u);
  EXPECT_TRUE(t.mark_delivered(kA, kB, 3));   // extend {2} up -> {2,3}
  EXPECT_TRUE(t.mark_delivered(kA, kB, 5));   // extend {6} down -> {5,6}
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 2u);
  EXPECT_TRUE(t.mark_delivered(kA, kB, 4));   // bridge -> {2..6}
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 1u);

  // Duplicates inside, at the edges of, and keyed at a run are rejected.
  EXPECT_FALSE(t.mark_delivered(kA, kB, 2));
  EXPECT_FALSE(t.mark_delivered(kA, kB, 4));
  EXPECT_FALSE(t.mark_delivered(kA, kB, 6));
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 1u);

  // 0 advances the watermark but 1 is still missing; then 1 drains all.
  EXPECT_TRUE(t.mark_delivered(kA, kB, 0));
  EXPECT_EQ(t.delivered_below(kA, kB), 1u);
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 1u);
  EXPECT_TRUE(t.mark_delivered(kA, kB, 1));
  EXPECT_EQ(t.delivered_below(kA, kB), 7u);
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 0u);
}

TEST(ReliableWindow, AlternatingGapsHoldOneRangePerGap) {
  ReliableTransport t({.enabled = true});
  // Odd seqs only: every arrival opens its own gap-bounded run.
  for (std::uint64_t seq = 1; seq <= 99; seq += 2) {
    EXPECT_TRUE(t.mark_delivered(kA, kB, seq));
  }
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 50u);
  // Even seqs arrive: runs merge pairwise and drain at the watermark.
  for (std::uint64_t seq = 0; seq <= 98; seq += 2) {
    EXPECT_TRUE(t.mark_delivered(kA, kB, seq));
  }
  EXPECT_EQ(t.out_of_order_ranges(kA, kB), 0u);
  EXPECT_EQ(t.delivered_below(kA, kB), 100u);
}

TEST(ReliableWindow, FenceRetiresEveryChannelOfANode) {
  ReliableTransport t({.enabled = true});
  const ReliableAck payload;
  t.register_send(kA, kB, payload, 64, 0, /*round=*/0);
  t.register_send(kB, kA, payload, 64, 0, /*round=*/0);
  t.register_send(kA, 2, payload, 64, 0, /*round=*/0);
  EXPECT_TRUE(t.mark_delivered(kB, kA, 5));
  EXPECT_TRUE(t.mark_delivered(kA, 2, 5));
  ASSERT_EQ(t.unacked(), 3u);

  t.fence(kB);
  // Both directions touching kB are gone; the kA->2 channel survives.
  EXPECT_EQ(t.unacked(), 1u);
  EXPECT_EQ(t.out_of_order_ranges(kB, kA), 0u);
  EXPECT_EQ(t.out_of_order_ranges(kA, 2), 1u);
}

TEST(ReliableWindow, FlowControlWindowFillsAndDrainsWithAcks) {
  ReliableTransport t({.enabled = true, .max_in_flight = 2});
  ASSERT_TRUE(t.flow_control());
  const ReliableAck payload;
  EXPECT_FALSE(t.window_full(kA, kB));
  const std::uint64_t s0 = t.register_send(kA, kB, payload, 64, 0, 0);
  EXPECT_FALSE(t.window_full(kA, kB));
  const std::uint64_t s1 = t.register_send(kA, kB, payload, 64, 0, 0);
  EXPECT_TRUE(t.window_full(kA, kB));
  EXPECT_EQ(t.in_flight_on(kA, kB), 2u);
  // The reverse channel has its own window.
  EXPECT_FALSE(t.window_full(kB, kA));

  t.ack(kA, kB, s0);
  EXPECT_FALSE(t.window_full(kA, kB));
  EXPECT_EQ(t.in_flight_on(kA, kB), 1u);
  // Duplicate acks must not free a second slot.
  t.ack(kA, kB, s0);
  EXPECT_EQ(t.in_flight_on(kA, kB), 1u);
  t.ack(kA, kB, s1);
  EXPECT_EQ(t.in_flight_on(kA, kB), 0u);
}

TEST(ReliableWindow, StagedSendsReleaseInFifoOrderAsTheWindowOpens) {
  ReliableTransport t({.enabled = true, .max_in_flight = 1});
  const ReliableAck payload;
  const std::uint64_t s0 = t.register_send(kA, kB, payload, 64, 0, 0);
  ASSERT_TRUE(t.window_full(kA, kB));

  // Park two sends; bits doubles as a FIFO marker.
  t.stage(kA, kB, make_payload<ReliableAck>(), /*bits=*/100, /*action=*/0);
  t.stage(kA, kB, make_payload<ReliableAck>(), /*bits=*/200, /*action=*/0);
  EXPECT_EQ(t.staged_total(), 2u);
  EXPECT_EQ(t.staged_on(kA, kB), 2u);

  // Window still full: nothing releases.
  std::vector<std::uint64_t> released;
  auto sink = [&](NodeId from, NodeId to, ReliableTransport::StagedSend&& s) {
    released.push_back(s.bits);
    t.register_send(from, to, *s.payload, s.bits, s.action, 0);
  };
  t.release_staged(kA, kB, sink);
  EXPECT_TRUE(released.empty());

  // One ack frees one slot; exactly the oldest staged send re-fills it.
  t.ack(kA, kB, s0);
  t.release_staged(kA, kB, sink);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], 100u);
  EXPECT_EQ(t.staged_total(), 1u);
  EXPECT_TRUE(t.window_full(kA, kB));

  // pump_staged covers the same drain across all channels.
  t.ack(kA, kB, 1);
  t.pump_staged(sink);
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[1], 200u);
  EXPECT_EQ(t.staged_total(), 0u);
  EXPECT_EQ(t.staged_on(kA, kB), 0u);
}

TEST(ReliableWindow, FenceDropsWindowAndStagedStateOfTheDeadNode) {
  ReliableTransport t({.enabled = true, .max_in_flight = 1});
  const ReliableAck payload;
  t.register_send(kA, kB, payload, 64, 0, 0);
  t.register_send(kA, 2, payload, 64, 0, 0);
  t.stage(kA, kB, make_payload<ReliableAck>(), 64, 0);
  t.stage(kA, 2, make_payload<ReliableAck>(), 64, 0);
  ASSERT_EQ(t.staged_total(), 2u);

  t.fence(kB);
  // kB's window slot and staged backlog are gone; kA->2 is untouched.
  EXPECT_EQ(t.in_flight_on(kA, kB), 0u);
  EXPECT_EQ(t.staged_on(kA, kB), 0u);
  EXPECT_FALSE(t.window_full(kA, kB));
  EXPECT_EQ(t.staged_total(), 1u);
  EXPECT_EQ(t.staged_on(kA, 2), 1u);
  EXPECT_TRUE(t.window_full(kA, 2));
}

TEST(ReliableWindow, ChannelWindowWalkMergesInFlightAndStagedChannels) {
  ReliableTransport t({.enabled = true, .max_in_flight = 1});
  const ReliableAck payload;
  t.register_send(kA, kB, payload, 64, 0, 0);        // in-flight only
  t.register_send(kB, kA, payload, 64, 0, 0);        // in-flight + staged
  t.stage(kB, kA, make_payload<ReliableAck>(), 64, 0);
  t.ack(kA, 2, 0);  // no-op: never creates channel state
  t.stage(2, kA, make_payload<ReliableAck>(), 64, 0);  // staged only

  struct Row {
    NodeId from, to;
    std::uint64_t in_flight, staged;
  };
  std::vector<Row> rows;
  t.for_each_channel_window([&](NodeId from, NodeId to,
                                std::uint64_t in_flight,
                                std::uint64_t staged) {
    rows.push_back({from, to, in_flight, staged});
  });
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].from, kA);
  EXPECT_EQ(rows[0].to, kB);
  EXPECT_EQ(rows[0].in_flight, 1u);
  EXPECT_EQ(rows[0].staged, 0u);
  EXPECT_EQ(rows[1].from, kB);
  EXPECT_EQ(rows[1].in_flight, 1u);
  EXPECT_EQ(rows[1].staged, 1u);
  EXPECT_EQ(rows[2].from, 2u);
  EXPECT_EQ(rows[2].in_flight, 0u);
  EXPECT_EQ(rows[2].staged, 1u);
}

}  // namespace
}  // namespace sks::sim
