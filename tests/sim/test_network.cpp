#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/dispatch.hpp"

namespace sks::sim {
namespace {

struct Ping final : Action<Ping> {
  static constexpr const char* kActionName = "ping";
  std::uint64_t value = 0;
  std::uint64_t bits = 16;
  std::uint64_t size_bits() const override { return bits; }

  void encode(wire::WireWriter& w) const override {
    w.leb(value);
    w.leb(bits);
  }

  static Owned<Ping> decode(wire::WireReader& r) {
    auto p = make_payload<Ping>();
    p->value = r.leb();
    p->bits = r.leb();
    return p;
  }
};

struct Pong final : Action<Pong> {
  static constexpr const char* kActionName = "pong";
  std::uint64_t value = 0;
  std::uint64_t size_bits() const override { return 16; }

  void encode(wire::WireWriter& w) const override { w.leb(value); }
  static Owned<Pong> decode(wire::WireReader& r) {
    auto p = make_payload<Pong>();
    p->value = r.leb();
    return p;
  }
};

class EchoNode : public DispatchingNode {
 public:
  EchoNode() {
    on<Ping>([this](NodeId from, Owned<Ping> p) {
      received_pings.push_back(p->value);
      auto reply = make_payload<Pong>();
      reply->value = p->value;
      send(from, std::move(reply));
    });
    on<Pong>([this](NodeId, Owned<Pong> p) {
      received_pongs.push_back(p->value);
    });
  }

  void ping(NodeId to, std::uint64_t v) {
    auto p = make_payload<Ping>();
    p->value = v;
    send(to, std::move(p));
  }

  std::vector<std::uint64_t> received_pings;
  std::vector<std::uint64_t> received_pongs;
};

TEST(Network, SynchronousDeliveryTakesOneRound) {
  Network net;
  const NodeId a = net.add_node(std::make_unique<EchoNode>());
  const NodeId b = net.add_node(std::make_unique<EchoNode>());

  net.node_as<EchoNode>(a).ping(b, 7);
  EXPECT_FALSE(net.idle());
  net.step();  // ping delivered, pong sent
  EXPECT_EQ(net.node_as<EchoNode>(b).received_pings,
            std::vector<std::uint64_t>{7});
  EXPECT_TRUE(net.node_as<EchoNode>(a).received_pongs.empty());
  net.step();  // pong delivered
  EXPECT_EQ(net.node_as<EchoNode>(a).received_pongs,
            std::vector<std::uint64_t>{7});
  EXPECT_TRUE(net.idle());
}

TEST(Network, RunUntilIdleCountsRounds) {
  Network net;
  const NodeId a = net.add_node(std::make_unique<EchoNode>());
  const NodeId b = net.add_node(std::make_unique<EchoNode>());
  net.node_as<EchoNode>(a).ping(b, 1);
  const auto rounds = net.run_until_idle();
  EXPECT_EQ(rounds, 2u);  // ping, then pong
}

TEST(Network, NoMessagesLostUnderLoad) {
  Network net;
  const NodeId a = net.add_node(std::make_unique<EchoNode>());
  const NodeId b = net.add_node(std::make_unique<EchoNode>());
  for (std::uint64_t i = 0; i < 500; ++i) net.node_as<EchoNode>(a).ping(b, i);
  net.run_until_idle();
  auto& pings = net.node_as<EchoNode>(b).received_pings;
  auto& pongs = net.node_as<EchoNode>(a).received_pongs;
  EXPECT_EQ(pings.size(), 500u);
  EXPECT_EQ(pongs.size(), 500u);
  std::sort(pings.begin(), pings.end());
  for (std::uint64_t i = 0; i < 500; ++i) EXPECT_EQ(pings[i], i);
}

TEST(Network, AsynchronousModeIsNonFifoButLossless) {
  NetworkConfig cfg;
  cfg.mode = DeliveryMode::kAsynchronous;
  cfg.max_delay = 16;
  cfg.seed = 99;
  Network net(cfg);
  const NodeId a = net.add_node(std::make_unique<EchoNode>());
  const NodeId b = net.add_node(std::make_unique<EchoNode>());
  for (std::uint64_t i = 0; i < 200; ++i) net.node_as<EchoNode>(a).ping(b, i);
  net.run_until_idle();
  auto pings = net.node_as<EchoNode>(b).received_pings;
  EXPECT_EQ(pings.size(), 200u);
  // Non-FIFO: the arrival order should differ from the send order.
  EXPECT_FALSE(std::is_sorted(pings.begin(), pings.end()));
  std::sort(pings.begin(), pings.end());
  for (std::uint64_t i = 0; i < 200; ++i) EXPECT_EQ(pings[i], i);
}

TEST(Network, MetricsCountMessagesBitsAndCongestion) {
  Network net;
  const NodeId a = net.add_node(std::make_unique<EchoNode>());
  const NodeId b = net.add_node(std::make_unique<EchoNode>());
  const NodeId c = net.add_node(std::make_unique<EchoNode>());
  (void)net.metrics().take();  // reset window

  // b receives two pings in the same round: congestion 2.
  net.node_as<EchoNode>(a).ping(b, 1);
  net.node_as<EchoNode>(c).ping(b, 2);
  net.run_until_idle();

  const auto snap = net.metrics().take();
  EXPECT_EQ(snap.total_messages, 4u);  // 2 pings + 2 pongs
  EXPECT_EQ(snap.total_bits, 4u * 16u);
  EXPECT_EQ(snap.max_message_bits, 16u);
  EXPECT_EQ(snap.max_congestion, 2u);
  EXPECT_EQ(snap.messages_by_type.at("ping"), 2u);
  EXPECT_EQ(snap.messages_by_type.at("pong"), 2u);
}

TEST(Network, MetricsWindowsReset) {
  Network net;
  const NodeId a = net.add_node(std::make_unique<EchoNode>());
  const NodeId b = net.add_node(std::make_unique<EchoNode>());
  net.node_as<EchoNode>(a).ping(b, 1);
  net.run_until_idle();
  (void)net.metrics().take();
  const auto snap = net.metrics().take();
  EXPECT_EQ(snap.total_messages, 0u);
  EXPECT_EQ(snap.rounds, 0u);
}

TEST(Network, DeterministicAcrossRunsWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    NetworkConfig cfg;
    cfg.mode = DeliveryMode::kAsynchronous;
    cfg.seed = seed;
    Network net(cfg);
    const NodeId a = net.add_node(std::make_unique<EchoNode>());
    const NodeId b = net.add_node(std::make_unique<EchoNode>());
    for (std::uint64_t i = 0; i < 100; ++i) {
      net.node_as<EchoNode>(a).ping(b, i);
    }
    net.run_until_idle();
    return net.node_as<EchoNode>(b).received_pings;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Network, RingBufferSurvivesManyRoundsOfTrickledTraffic) {
  // The pending queue is a relative-round ring buffer; exercise many
  // wrap-arounds with staggered async delays and verify nothing is lost,
  // duplicated, or delivered out of its scheduled horizon.
  NetworkConfig cfg;
  cfg.mode = DeliveryMode::kAsynchronous;
  cfg.max_delay = 5;  // small ring => frequent wrap-around
  cfg.seed = 7;
  Network net(cfg);
  const NodeId a = net.add_node(std::make_unique<EchoNode>());
  const NodeId b = net.add_node(std::make_unique<EchoNode>());
  std::uint64_t sent = 0;
  for (int wave = 0; wave < 50; ++wave) {
    for (int i = 0; i < 3; ++i) net.node_as<EchoNode>(a).ping(b, sent++);
    net.step();  // interleave stepping with sending to force wraps
  }
  net.run_until_idle();
  auto pings = net.node_as<EchoNode>(b).received_pings;
  EXPECT_EQ(pings.size(), sent);
  std::sort(pings.begin(), pings.end());
  for (std::uint64_t i = 0; i < sent; ++i) EXPECT_EQ(pings[i], i);
  EXPECT_EQ(net.node_as<EchoNode>(a).received_pongs.size(), sent);
}

TEST(Network, NodeAsResolvesViaBaseClassRegistration) {
  // node_as<T> serves the exact registered type from its cached pointer
  // and falls back to dynamic_cast for base-class requests.
  Network net;
  const NodeId a = net.add_node(std::make_unique<EchoNode>());
  EXPECT_EQ(&net.node_as<EchoNode>(a), &net.node(a));
  EXPECT_EQ(&net.node_as<DispatchingNode>(a), &net.node(a));
  // Registering through a base-class pointer still yields the derived
  // type via the dynamic_cast fallback.
  std::unique_ptr<DispatchingNode> erased = std::make_unique<EchoNode>();
  const NodeId b = net.add_node(std::move(erased));
  EXPECT_EQ(&net.node_as<EchoNode>(b), &net.node(b));
}

struct Mystery final : Action<Mystery> {
  static constexpr const char* kActionName = "mystery";
  std::uint64_t size_bits() const override { return 1; }

  void encode(wire::WireWriter&) const override {}
  static Owned<Mystery> decode(wire::WireReader&) {
    return make_payload<Mystery>();
  }
};

TEST(Network, UnhandledPayloadTypeThrows) {
  Network net;
  const NodeId a = net.add_node(std::make_unique<EchoNode>());
  const NodeId b = net.add_node(std::make_unique<EchoNode>());
  (void)a;
  net.send(a, b, make_payload<Mystery>());
  EXPECT_THROW(net.step(), CheckFailure);
}

}  // namespace
}  // namespace sks::sim
