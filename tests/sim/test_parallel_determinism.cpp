// Determinism contract of the parallel round engine: the thread count
// NEVER changes observable behavior. For a fixed shard count the executor
// produces the same trace, the same metrics and the same protocol results
// whether the shards run on 1, 2 or 8 worker threads — cross-shard
// messages are exchanged at the round barrier in shard-major, send-order-
// minor order, so the merged schedule is a pure function of (seed, shard
// count).
//
// The matrix covers the four workloads the repo cares about: the paper's
// Figure 1 Skeap batch, one Seap cycle, one KSelect session, and one
// chaos seed (drops + duplicates + spikes under the reliable transport),
// each executed at threads ∈ {1, 2, 8} with shards forced to 4.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kselect/kselect_system.hpp"
#include "seap/seap_system.hpp"
#include "sim/metrics.hpp"
#include "skeap/skeap_system.hpp"
#include "trace/text.hpp"

namespace sks {
namespace {

constexpr std::size_t kThreadMatrix[] = {1, 2, 8};

void expect_snapshots_identical(const sim::MetricsSnapshot& a,
                                const sim::MetricsSnapshot& b,
                                std::size_t threads) {
  EXPECT_EQ(a.rounds, b.rounds) << "threads=" << threads;
  EXPECT_EQ(a.total_messages, b.total_messages) << "threads=" << threads;
  EXPECT_EQ(a.total_bits, b.total_bits) << "threads=" << threads;
  EXPECT_EQ(a.max_message_bits, b.max_message_bits) << "threads=" << threads;
  EXPECT_EQ(a.max_congestion, b.max_congestion) << "threads=" << threads;
  EXPECT_TRUE(a.message_bits_hist == b.message_bits_hist)
      << "threads=" << threads;
  EXPECT_TRUE(a.congestion_hist == b.congestion_hist)
      << "threads=" << threads;
  EXPECT_EQ(a.messages_by_type, b.messages_by_type) << "threads=" << threads;
  EXPECT_EQ(a.bits_by_type, b.bits_by_type) << "threads=" << threads;
  EXPECT_EQ(a.dropped, b.dropped) << "threads=" << threads;
  EXPECT_EQ(a.duplicated, b.duplicated) << "threads=" << threads;
  EXPECT_EQ(a.retransmitted, b.retransmitted) << "threads=" << threads;
  EXPECT_EQ(a.dup_suppressed, b.dup_suppressed) << "threads=" << threads;
}

// ---- Figure 1 (Skeap batch) -------------------------------------------

struct Capture {
  std::string trace;
  sim::MetricsSnapshot metrics;
};

Capture run_figure1(std::size_t shards, std::size_t threads) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = 3;
  opts.num_priorities = 2;
  opts.seed = 42;
  opts.shards = shards;
  opts.threads = threads;
  skeap::SkeapSystem sys(opts);
  sys.net().tracer().enable();
  sys.insert(0, 1);
  sys.insert(1, 1);
  sys.delete_min(1);
  sys.delete_min(1);
  sys.insert(2, 1);
  sys.insert(2, 1);
  sys.insert(2, 2);
  sys.delete_min(2);
  sys.run_batch();
  Capture cap;
  cap.metrics = sys.net().metrics().current();
  cap.trace = trace::to_text(sys.net().take_trace());
  return cap;
}

TEST(ParallelDeterminism, Figure1TraceInvariantAcrossThreads) {
  const Capture base = run_figure1(4, 1);
  EXPECT_FALSE(base.trace.empty());
  for (const std::size_t threads : kThreadMatrix) {
    const Capture cap = run_figure1(4, threads);
    EXPECT_EQ(cap.trace, base.trace)
        << "Figure 1 trace diverged at threads=" << threads;
    expect_snapshots_identical(cap.metrics, base.metrics, threads);
  }
}

// With the shard count left at its default the executor picks the same
// partition regardless of the thread count (threads are clamped to the
// shard count) — so even the *default-shards* schedule is thread-
// invariant, which is what makes `--threads` safe to set on any bench.
TEST(ParallelDeterminism, Figure1DefaultShardsThreadInvariant) {
  skeap::SkeapSystem::Options defaults;
  const Capture base = run_figure1(defaults.shards, 1);
  for (const std::size_t threads : kThreadMatrix) {
    const Capture cap = run_figure1(defaults.shards, threads);
    EXPECT_EQ(cap.trace, base.trace) << "threads=" << threads;
    expect_snapshots_identical(cap.metrics, base.metrics, threads);
  }
}

// ---- One Seap cycle ---------------------------------------------------

Capture run_seap_cycle(std::size_t threads) {
  seap::SeapSystem::Options opts;
  opts.num_nodes = 8;
  opts.seed = 0x5ea9c0deULL;
  opts.shards = 4;
  opts.threads = threads;
  seap::SeapSystem sys(opts);
  sys.net().tracer().enable();
  for (NodeId v = 0; v < 8; ++v) {
    sys.insert(v, 100 + v);
    if (v % 2 == 0) sys.delete_min(v);
  }
  sys.run_cycle();
  Capture cap;
  cap.metrics = sys.net().metrics().current();
  cap.trace = trace::to_text(sys.net().take_trace());
  return cap;
}

TEST(ParallelDeterminism, SeapCycleInvariantAcrossThreads) {
  const Capture base = run_seap_cycle(1);
  EXPECT_FALSE(base.trace.empty());
  for (const std::size_t threads : kThreadMatrix) {
    const Capture cap = run_seap_cycle(threads);
    EXPECT_EQ(cap.trace, base.trace)
        << "Seap cycle trace diverged at threads=" << threads;
    expect_snapshots_identical(cap.metrics, base.metrics, threads);
  }
}

// ---- One KSelect session ----------------------------------------------

struct KSelectCapture {
  Capture cap;
  std::optional<kselect::CandidateKey> result;
  std::uint64_t rounds = 0;
};

KSelectCapture run_kselect_session(std::size_t threads) {
  kselect::KSelectSystem::Options opts;
  opts.num_nodes = 8;
  opts.seed = 0x5e1ec7ULL;
  opts.shards = 4;
  opts.threads = threads;
  kselect::KSelectSystem sys(opts);
  std::vector<kselect::CandidateKey> elements;
  Rng rng(99);
  for (std::uint64_t i = 0; i < 400; ++i) {
    elements.push_back(kselect::CandidateKey{rng.range(1, 1u << 20), i + 1});
  }
  sys.seed_elements(elements);
  sys.net().tracer().enable();
  KSelectCapture out;
  const auto sel = sys.select(133);
  out.result = sel.result;
  out.rounds = sel.rounds;
  out.cap.metrics = sys.net().metrics().current();
  out.cap.trace = trace::to_text(sys.net().take_trace());
  return out;
}

TEST(ParallelDeterminism, KSelectSessionInvariantAcrossThreads) {
  const KSelectCapture base = run_kselect_session(1);
  ASSERT_TRUE(base.result.has_value());
  for (const std::size_t threads : kThreadMatrix) {
    const KSelectCapture got = run_kselect_session(threads);
    ASSERT_TRUE(got.result.has_value()) << "threads=" << threads;
    EXPECT_EQ(*got.result, *base.result) << "threads=" << threads;
    EXPECT_EQ(got.rounds, base.rounds) << "threads=" << threads;
    EXPECT_EQ(got.cap.trace, base.cap.trace)
        << "KSelect trace diverged at threads=" << threads;
    expect_snapshots_identical(got.cap.metrics, base.cap.metrics, threads);
  }
}

// ---- One chaos seed (faults + reliable transport) ---------------------

Capture run_chaos_seed(std::size_t threads) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = 8;
  opts.num_priorities = 4;
  opts.seed = 0xc4a05ULL;
  opts.shards = 4;
  opts.threads = threads;
  opts.faults.drop_prob = 0.05;
  opts.faults.duplicate_prob = 0.03;
  opts.faults.spike_prob = 0.02;
  opts.reliable.enabled = true;
  opts.reliable.ack_timeout = 6;
  skeap::SkeapSystem sys(opts);
  sys.net().tracer().enable();
  Rng rng(7);
  for (NodeId v = 0; v < 8; ++v) {
    for (int i = 0; i < 2; ++i) {
      if (rng.flip(0.6)) {
        sys.insert(v, rng.range(1, 4));
      } else {
        sys.delete_min(v);
      }
    }
  }
  sys.run_batch();
  Capture cap;
  cap.metrics = sys.net().metrics().current();
  cap.trace = trace::to_text(sys.net().take_trace());
  return cap;
}

TEST(ParallelDeterminism, ChaosSeedInvariantAcrossThreads) {
  const Capture base = run_chaos_seed(1);
  EXPECT_FALSE(base.trace.empty());
  EXPECT_GT(base.metrics.dropped + base.metrics.duplicated, 0u)
      << "chaos plan should actually inject faults";
  for (const std::size_t threads : kThreadMatrix) {
    const Capture cap = run_chaos_seed(threads);
    EXPECT_EQ(cap.trace, base.trace)
        << "chaos trace diverged at threads=" << threads;
    expect_snapshots_identical(cap.metrics, base.metrics, threads);
  }
}

// ---- Repeatability under a fixed thread count -------------------------

// Same (seed, shards, threads) twice → byte-identical capture; the worker
// pool introduces no run-to-run nondeterminism of its own.
TEST(ParallelDeterminism, RepeatedRunIsByteIdentical) {
  const Capture a = run_figure1(4, 8);
  const Capture b = run_figure1(4, 8);
  EXPECT_EQ(a.trace, b.trace);
  expect_snapshots_identical(a.metrics, b.metrics, 8);
}

}  // namespace
}  // namespace sks
